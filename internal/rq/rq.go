// Package rq implements μManycore's hardware Request Queue (paper §4.3): a
// circular buffer of request entries with head/tail pointers, a Request
// Context Memory holding per-request state (inputs, destination, and — with
// the §4.4 hardware context-switch support — saved processor state), and the
// atomic Dequeue / Complete / ContextSwitch instruction semantics. The NIC
// overflow buffer and rejection path are modeled too.
//
// The queue is a pure data structure; instruction *timing* (the ~tens of
// cycles a hardware dequeue costs vs thousands for software scheduling) is
// charged by the machine model in internal/machine.
package rq

import "fmt"

// Status of a request entry, per Fig 13.
type Status int

// Entry states.
const (
	Ready Status = iota // ready to run
	Running
	Blocked // waiting on an RPC/storage response
	Finished
)

func (s Status) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Finished:
		return "finished"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Context is a Request Context Memory entry: the request's input, where the
// result goes, and the saved process state for hardware context switching
// ("a few hundreds of bytes", §4.4).
type Context struct {
	// RequestID identifies the request across the machine.
	RequestID uint64
	// DestVillage / DestService say where the response is delivered.
	DestVillage int
	DestService int
	// SavedStateBytes is the size of the saved processor state; zero until
	// the first ContextSwitch.
	SavedStateBytes int
	// StateSaved reports whether processor state is currently saved here.
	StateSaved bool
	// Core is the core the request last ran on (-1 if never scheduled).
	Core int
	// UserData carries the machine model's per-request payload.
	UserData any
}

// Entry is one RQ slot.
type Entry struct {
	Status    Status
	ServiceID int
	Ctx       *Context
	// seq is the FCFS arrival order stamp.
	seq uint64
}

// RQ is the per-village hardware request queue.
type RQ struct {
	capacity int
	ring     []*Entry
	head     int // index of oldest live entry
	count    int // live entries (not yet reclaimed)
	nextSeq  uint64

	// Optional RQ_Map partitioning (§4.3 "more advanced design"): when set,
	// each service has a private entry budget.
	partition map[int]int
	perSvc    map[int]int

	// Statistics.
	Enqueued  uint64
	Rejected  uint64
	Completed uint64
}

// New builds an RQ with the given capacity (the paper uses 64 entries per
// village).
func New(capacity int) *RQ {
	if capacity <= 0 {
		panic("rq: capacity must be positive")
	}
	return &RQ{
		capacity: capacity,
		ring:     make([]*Entry, capacity),
		perSvc:   make(map[int]int),
	}
}

// Capacity returns the configured size.
func (q *RQ) Capacity() int { return q.capacity }

// Len returns the number of live (unreclaimed) entries.
func (q *RQ) Len() int { return q.count }

// Free returns remaining slots.
func (q *RQ) Free() int { return q.capacity - q.count }

// SetPartition enables RQ_Map mode: serviceID -> max entries. Services not
// listed share the remaining space. Pass nil to disable.
func (q *RQ) SetPartition(p map[int]int) {
	if p == nil {
		q.partition = nil
		return
	}
	cp := make(map[int]int, len(p))
	total := 0
	for k, v := range p {
		cp[k] = v
		total += v
	}
	if total > q.capacity {
		panic(fmt.Sprintf("rq: partition total %d exceeds capacity %d", total, q.capacity))
	}
	q.partition = cp
}

// Enqueue appends a ready entry for serviceID with the given context,
// returning the entry, or nil if the queue (or the service's partition) is
// full — the caller then spills to the NIC buffer.
func (q *RQ) Enqueue(serviceID int, ctx *Context) *Entry {
	if q.count >= q.capacity {
		q.Rejected++
		return nil
	}
	if q.partition != nil {
		if limit, ok := q.partition[serviceID]; ok && q.perSvc[serviceID] >= limit {
			q.Rejected++
			return nil
		}
	}
	e := &Entry{Status: Ready, ServiceID: serviceID, Ctx: ctx, seq: q.nextSeq}
	q.nextSeq++
	pos := (q.head + q.count) % q.capacity
	q.ring[pos] = e
	q.count++
	q.perSvc[serviceID]++
	q.Enqueued++
	return e
}

// at returns the i-th live entry from the head.
func (q *RQ) at(i int) *Entry { return q.ring[(q.head+i)%q.capacity] }

// HasReady reports whether a ready entry for serviceID exists (serviceID < 0
// matches any service) — the per-core Work flag.
func (q *RQ) HasReady(serviceID int) bool {
	for i := 0; i < q.count; i++ {
		e := q.at(i)
		if e.Status == Ready && (serviceID < 0 || e.ServiceID == serviceID) {
			return true
		}
	}
	return false
}

// Dequeue implements the Dequeue instruction: atomically find the
// highest-priority (closest to head) ready entry matching serviceID
// (serviceID < 0 matches any), mark it running, and return it. Returns nil
// when no entry qualifies. Restoring saved state is signalled by clearing
// Ctx.StateSaved; the machine model charges the restore cost.
func (q *RQ) Dequeue(serviceID int, core int) *Entry {
	for i := 0; i < q.count; i++ {
		e := q.at(i)
		if e.Status == Ready && (serviceID < 0 || e.ServiceID == serviceID) {
			e.Status = Running
			if e.Ctx != nil {
				e.Ctx.Core = core
				e.Ctx.StateSaved = false
			}
			return e
		}
	}
	return nil
}

// ContextSwitch implements the ContextSwitch instruction: the running entry
// blocks on an RPC, its processor state is saved into the Request Context
// Memory, and the core is freed.
func (q *RQ) ContextSwitch(e *Entry, stateBytes int) {
	if e.Status != Running {
		panic(fmt.Sprintf("rq: ContextSwitch on %v entry", e.Status))
	}
	e.Status = Blocked
	if e.Ctx != nil {
		e.Ctx.StateSaved = true
		e.Ctx.SavedStateBytes = stateBytes
	}
}

// Unblock marks a blocked entry ready (the NIC received its RPC response and
// deposited it in the context memory).
func (q *RQ) Unblock(e *Entry) {
	if e.Status != Blocked {
		panic(fmt.Sprintf("rq: Unblock on %v entry", e.Status))
	}
	e.Status = Ready
}

// Complete implements the Complete instruction: mark the entry finished and,
// if it is at the head, advance the head past finished entries, reclaiming
// their slots.
func (q *RQ) Complete(e *Entry) {
	if e.Status != Running {
		panic(fmt.Sprintf("rq: Complete on %v entry", e.Status))
	}
	e.Status = Finished
	q.Completed++
	q.perSvc[e.ServiceID]--
	for q.count > 0 && q.at(0).Status == Finished {
		q.ring[q.head] = nil
		q.head = (q.head + 1) % q.capacity
		q.count--
	}
}

// ReadyCount returns the number of ready entries (for load reporting).
func (q *RQ) ReadyCount() int {
	n := 0
	for i := 0; i < q.count; i++ {
		if q.at(i).Status == Ready {
			n++
		}
	}
	return n
}

// NICBuffer is the village NIC's overflow staging area: requests that find
// the RQ full wait here; beyond its capacity they are rejected (§4.3).
type NICBuffer struct {
	capacity int
	fifo     []pendingReq
	// Rejected counts drops.
	Rejected uint64
}

type pendingReq struct {
	serviceID int
	ctx       *Context
}

// NewNICBuffer builds a buffer; the paper does not size it, we default to
// 4× the RQ in the machine model.
func NewNICBuffer(capacity int) *NICBuffer {
	if capacity < 0 {
		panic("rq: negative NIC buffer capacity")
	}
	return &NICBuffer{capacity: capacity}
}

// Len returns the queued count.
func (b *NICBuffer) Len() int { return len(b.fifo) }

// Offer tries to stage a request, returning false (and counting a
// rejection) when full.
func (b *NICBuffer) Offer(serviceID int, ctx *Context) bool {
	if len(b.fifo) >= b.capacity {
		b.Rejected++
		return false
	}
	b.fifo = append(b.fifo, pendingReq{serviceID, ctx})
	return true
}

// Drain moves as many staged requests as fit into the RQ, in FIFO order,
// returning the entries created.
func (b *NICBuffer) Drain(q *RQ) []*Entry {
	var moved []*Entry
	for len(b.fifo) > 0 {
		p := b.fifo[0]
		e := q.Enqueue(p.serviceID, p.ctx)
		if e == nil {
			// Enqueue counted a rejection, but the request is merely still
			// staged; undo the stat.
			q.Rejected--
			break
		}
		moved = append(moved, e)
		b.fifo = b.fifo[1:]
	}
	return moved
}
