package rq

import (
	"testing"
	"testing/quick"
)

func TestStatusString(t *testing.T) {
	if Ready.String() != "ready" || Running.String() != "running" ||
		Blocked.String() != "blocked" || Finished.String() != "finished" {
		t.Fatal("status strings")
	}
	if Status(42).String() == "" {
		t.Fatal("unknown status string")
	}
}

func TestEnqueueDequeueFCFS(t *testing.T) {
	q := New(8)
	a := q.Enqueue(1, &Context{RequestID: 1})
	b := q.Enqueue(1, &Context{RequestID: 2})
	if a == nil || b == nil {
		t.Fatal("enqueue failed")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	got := q.Dequeue(1, 0)
	if got != a {
		t.Fatal("FCFS violated: oldest ready entry not returned")
	}
	if got.Status != Running || got.Ctx.Core != 0 {
		t.Fatalf("dequeued entry = %+v", got)
	}
	if q.Dequeue(1, 1) != b {
		t.Fatal("second dequeue wrong")
	}
}

func TestDequeueServiceFilter(t *testing.T) {
	q := New(8)
	q.Enqueue(1, &Context{})
	e2 := q.Enqueue(2, &Context{})
	if got := q.Dequeue(2, 0); got != e2 {
		t.Fatal("service filter failed")
	}
	if q.Dequeue(3, 0) != nil {
		t.Fatal("dequeue for absent service should be nil")
	}
	// Wildcard matches the remaining service-1 entry.
	if q.Dequeue(-1, 0) == nil {
		t.Fatal("wildcard dequeue failed")
	}
}

func TestCapacityAndRejection(t *testing.T) {
	q := New(2)
	q.Enqueue(1, &Context{})
	q.Enqueue(1, &Context{})
	if q.Enqueue(1, &Context{}) != nil {
		t.Fatal("over-capacity enqueue succeeded")
	}
	if q.Rejected != 1 || q.Free() != 0 {
		t.Fatalf("rejected=%d free=%d", q.Rejected, q.Free())
	}
}

func TestCompleteAdvancesHead(t *testing.T) {
	q := New(4)
	a := q.Enqueue(1, &Context{})
	b := q.Enqueue(1, &Context{})
	c := q.Enqueue(1, &Context{})
	q.Dequeue(1, 0) // a
	q.Dequeue(1, 1) // b
	// Complete b first: head (a) is running, so no reclaim yet.
	q.Complete(b)
	if q.Len() != 3 {
		t.Fatalf("Len after mid-complete = %d", q.Len())
	}
	// Complete a: head advances past a AND the already-finished b.
	q.Complete(a)
	if q.Len() != 1 {
		t.Fatalf("Len after head complete = %d", q.Len())
	}
	if q.Free() != 3 {
		t.Fatalf("Free = %d", q.Free())
	}
	_ = c
	if q.Completed != 2 {
		t.Fatalf("Completed = %d", q.Completed)
	}
}

func TestRingWraparound(t *testing.T) {
	q := New(3)
	for round := 0; round < 10; round++ {
		e := q.Enqueue(1, &Context{RequestID: uint64(round)})
		if e == nil {
			t.Fatalf("round %d enqueue failed", round)
		}
		got := q.Dequeue(1, 0)
		if got.Ctx.RequestID != uint64(round) {
			t.Fatalf("round %d got request %d", round, got.Ctx.RequestID)
		}
		q.Complete(got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestContextSwitchLifecycle(t *testing.T) {
	q := New(4)
	e := q.Enqueue(7, &Context{RequestID: 99})
	got := q.Dequeue(7, 3)
	q.ContextSwitch(got, 320)
	if got.Status != Blocked || !got.Ctx.StateSaved || got.Ctx.SavedStateBytes != 320 {
		t.Fatalf("after ContextSwitch: %+v ctx %+v", got, got.Ctx)
	}
	// Blocked entries are not dequeued.
	if q.Dequeue(7, 0) != nil {
		t.Fatal("blocked entry dequeued")
	}
	if q.HasReady(7) {
		t.Fatal("HasReady true while blocked")
	}
	q.Unblock(got)
	if !q.HasReady(7) {
		t.Fatal("HasReady false after unblock")
	}
	again := q.Dequeue(7, 5)
	if again != e || again.Ctx.Core != 5 || again.Ctx.StateSaved {
		t.Fatalf("re-dequeue: %+v ctx %+v", again, again.Ctx)
	}
	q.Complete(again)
	if q.Len() != 0 {
		t.Fatal("not reclaimed")
	}
}

func TestLifecyclePanics(t *testing.T) {
	q := New(2)
	e := q.Enqueue(1, &Context{})
	mustPanic(t, "ContextSwitch on ready", func() { q.ContextSwitch(e, 1) })
	mustPanic(t, "Unblock on ready", func() { q.Unblock(e) })
	mustPanic(t, "Complete on ready", func() { q.Complete(e) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestHasReadyWildcard(t *testing.T) {
	q := New(4)
	if q.HasReady(-1) {
		t.Fatal("empty queue has ready")
	}
	q.Enqueue(5, &Context{})
	if !q.HasReady(-1) || !q.HasReady(5) || q.HasReady(6) {
		t.Fatal("HasReady filters wrong")
	}
	if q.ReadyCount() != 1 {
		t.Fatalf("ReadyCount = %d", q.ReadyCount())
	}
}

func TestPartitionedRQ(t *testing.T) {
	q := New(8)
	q.SetPartition(map[int]int{1: 2, 2: 4})
	q.Enqueue(1, &Context{})
	q.Enqueue(1, &Context{})
	if q.Enqueue(1, &Context{}) != nil {
		t.Fatal("partition limit not enforced")
	}
	if q.Enqueue(2, &Context{}) == nil {
		t.Fatal("other service blocked by partition")
	}
	// Completing frees partition budget.
	e := q.Dequeue(1, 0)
	q.Complete(e)
	if q.Enqueue(1, &Context{}) == nil {
		t.Fatal("partition budget not released")
	}
	q.SetPartition(nil)
	for i := 0; i < 5; i++ {
		q.Enqueue(1, &Context{})
	}
	if q.Len() > q.Capacity() {
		t.Fatal("capacity violated after partition removal")
	}
}

func TestPartitionTooBigPanics(t *testing.T) {
	q := New(4)
	mustPanic(t, "oversized partition", func() { q.SetPartition(map[int]int{1: 3, 2: 3}) })
}

func TestInvalidCapacityPanics(t *testing.T) {
	mustPanic(t, "zero capacity", func() { New(0) })
}

func TestNICBufferOfferDrain(t *testing.T) {
	q := New(2)
	b := NewNICBuffer(3)
	q.Enqueue(1, &Context{RequestID: 1})
	q.Enqueue(1, &Context{RequestID: 2})
	// RQ full: spill to NIC buffer.
	for i := uint64(3); i <= 5; i++ {
		if !b.Offer(1, &Context{RequestID: i}) {
			t.Fatalf("offer %d failed", i)
		}
	}
	if b.Offer(1, &Context{RequestID: 6}) {
		t.Fatal("over-capacity offer succeeded")
	}
	if b.Rejected != 1 {
		t.Fatalf("Rejected = %d", b.Rejected)
	}
	// Drain with no RQ space: nothing moves, and no spurious RQ rejections.
	rejBefore := q.Rejected
	if got := b.Drain(q); len(got) != 0 {
		t.Fatal("drain into full RQ moved entries")
	}
	if q.Rejected != rejBefore {
		t.Fatal("drain inflated RQ rejection stats")
	}
	// Free one slot: exactly one staged request moves, FIFO order.
	e := q.Dequeue(1, 0)
	q.Complete(e)
	moved := b.Drain(q)
	if len(moved) != 1 || moved[0].Ctx.RequestID != 3 {
		t.Fatalf("drain moved %v", moved)
	}
	if b.Len() != 2 {
		t.Fatalf("buffer len = %d", b.Len())
	}
}

// Property: under arbitrary interleavings of enqueue/dequeue/complete, the
// queue never exceeds capacity, never loses a request, and dequeues within a
// service are FCFS.
func TestRQInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		q := New(8)
		var running []*Entry
		var lastSeq uint64
		enq, comp := 0, 0
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if q.Enqueue(int(op)%2, &Context{RequestID: uint64(enq)}) != nil {
					enq++
				}
			case 1:
				if e := q.Dequeue(-1, 0); e != nil {
					// FCFS within the whole queue for wildcard dequeues.
					if e.seq < lastSeq {
						return false
					}
					lastSeq = e.seq
					running = append(running, e)
				}
			case 2:
				if len(running) > 0 {
					q.Complete(running[0])
					running = running[1:]
					comp++
				}
			}
			if q.Len() > q.Capacity() {
				return false
			}
		}
		// Conservation: enqueued = completed + still live.
		return int(q.Enqueued) == enq && enq == comp+q.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
