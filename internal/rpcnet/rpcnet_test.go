package rpcnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"umanycore/internal/sim"
)

func TestMsgKindString(t *testing.T) {
	for _, k := range []MsgKind{KindRequest, KindResponse, KindStorageRead, KindStorageWrite, KindAck} {
		if k.String() == "" || k.String()[0] == 'k' {
			t.Fatalf("kind %d string = %q", k, k.String())
		}
	}
	if MsgKind(99).String() == "" {
		t.Fatal("unknown kind string")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{
			Kind: KindRequest, ServiceID: 7, RequestID: 123456789,
			SrcVillage: 3, DstVillage: 99, Seq: 42,
		},
		Payload: []byte("hello microservice"),
	}
	buf := Encode(m, nil)
	if len(buf) != m.WireSize() {
		t.Fatalf("wire size %d vs %d", len(buf), m.WireSize())
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Kind != KindRequest || got.Header.ServiceID != 7 ||
		got.Header.RequestID != 123456789 || got.Header.SrcVillage != 3 ||
		got.Header.DstVillage != 99 || got.Header.Seq != 42 {
		t.Fatalf("header mismatch: %+v", got.Header)
	}
	if string(got.Payload) != "hello microservice" {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestEncodeReusesBuffer(t *testing.T) {
	m := &Message{Header: Header{Kind: KindAck}, Payload: []byte("x")}
	buf := make([]byte, 0, 128)
	out := Encode(m, buf)
	if &out[0] != &buf[:1][0] {
		t.Fatal("Encode did not reuse capacity")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 3)); err != ErrShortBuffer {
		t.Fatalf("short buffer: %v", err)
	}
	m := &Message{Header: Header{Kind: KindRequest}, Payload: []byte("abc")}
	buf := Encode(m, nil)
	buf[0] = 200
	if _, err := Decode(buf); err != ErrBadKind {
		t.Fatalf("bad kind: %v", err)
	}
	buf[0] = byte(KindRequest)
	if _, err := Decode(buf[:len(buf)-1]); err != ErrLenMismatch {
		t.Fatalf("len mismatch: %v", err)
	}
}

// Property: Encode/Decode round-trips arbitrary headers and payloads.
func TestRoundTripProperty(t *testing.T) {
	f := func(svc uint16, req uint64, src, dst uint16, seq uint32, payload []byte) bool {
		m := &Message{
			Header:  Header{Kind: KindResponse, ServiceID: svc, RequestID: req, SrcVillage: src, DstVillage: dst, Seq: seq},
			Payload: payload,
		}
		got, err := Decode(Encode(m, nil))
		if err != nil {
			return false
		}
		if got.Header.ServiceID != svc || got.Header.RequestID != req ||
			got.Header.SrcVillage != src || got.Header.DstVillage != dst || got.Header.Seq != seq {
			return false
		}
		if len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServiceMapRoundRobin(t *testing.T) {
	sm := NewServiceMap()
	if _, ok := sm.Dispatch(1); ok {
		t.Fatal("dispatch to empty map succeeded")
	}
	sm.Register(1, 10)
	sm.Register(1, 11)
	sm.Register(1, 12)
	sm.Register(1, 11) // duplicate is idempotent
	if sm.Instances(1) != 3 {
		t.Fatalf("instances = %d", sm.Instances(1))
	}
	var got []uint16
	for i := 0; i < 6; i++ {
		v, ok := sm.Dispatch(1)
		if !ok {
			t.Fatal("dispatch failed")
		}
		got = append(got, v)
	}
	want := []uint16{10, 11, 12, 10, 11, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin = %v", got)
		}
	}
	sm.Deregister(1, 11)
	if sm.Instances(1) != 2 {
		t.Fatal("deregister failed")
	}
	sm.Deregister(1, 99) // absent: no-op
	if sm.Instances(1) != 2 {
		t.Fatal("deregister of absent village changed map")
	}
}

func TestLNICBackpressure(t *testing.T) {
	n := &LNIC{PsPerByte: 100, ProcDelay: 10}
	a := n.Send(0, 1000) // 100k ps serialization + 10 proc
	if a != 100*1000+10 {
		t.Fatalf("first send done = %d", a)
	}
	b := n.Send(0, 1000)
	if b <= a {
		t.Fatal("second send should queue behind the first")
	}
	if n.Backlog(0) == 0 {
		t.Fatal("no backlog reported")
	}
	if n.Sent != 2 {
		t.Fatalf("sent = %d", n.Sent)
	}
}

func TestRNICLossless(t *testing.T) {
	n := NewRNIC(100, 1000, 0)
	r := rand.New(rand.NewSource(1))
	done := n.Send(0, 100, r.Float64)
	// serialization (10k) + RTT (1000).
	if done != 100*100+1000 {
		t.Fatalf("lossless send done = %d", done)
	}
	if n.Retransmit != 0 {
		t.Fatal("spurious retransmission")
	}
	// Window grows on success.
	if n.Cwnd() <= 8 {
		t.Fatalf("cwnd = %v, want growth", n.Cwnd())
	}
}

func TestRNICRetransmission(t *testing.T) {
	n := NewRNIC(100, 1000, 0.5)
	r := rand.New(rand.NewSource(7))
	var sumLossy sim.Time
	for i := 0; i < 200; i++ {
		sumLossy += n.Send(sim.Time(i)*1_000_000, 100, r.Float64)
	}
	if n.Retransmit == 0 {
		t.Fatal("no retransmissions at 50% loss")
	}
	// Retransmissions shrink the window from its ceiling.
	clean := NewRNIC(100, 1000, 0)
	for i := 0; i < 200; i++ {
		clean.Send(sim.Time(i)*1_000_000, 100, r.Float64)
	}
	if n.Cwnd() >= clean.Cwnd() {
		t.Fatalf("lossy cwnd %v !< clean cwnd %v", n.Cwnd(), clean.Cwnd())
	}
}

func TestRNICLossMakesSlower(t *testing.T) {
	r1 := rand.New(rand.NewSource(3))
	r2 := rand.New(rand.NewSource(3))
	clean := NewRNIC(100, 1000, 0)
	lossy := NewRNIC(100, 1000, 0.3)
	var cleanSum, lossySum int64
	for i := 0; i < 500; i++ {
		now := sim.Time(i) * 1_000_000
		cleanSum += int64(clean.Send(now, 200, r1.Float64) - now)
		lossySum += int64(lossy.Send(now, 200, r2.Float64) - now)
	}
	if lossySum <= cleanSum {
		t.Fatalf("loss did not slow delivery: %d vs %d", lossySum, cleanSum)
	}
}

func TestRNICPanicsOnBadLoss(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRNIC(1, 1, 1.0)
}

func TestVillagePort(t *testing.T) {
	p := NewVillagePort(0.01)
	if p.Remote == nil || p.Local.PsPerByte == 0 {
		t.Fatal("port defaults missing")
	}
	a := p.BulkTransfer(0, 1<<20) // 1MB at 10ps/B = ~10.5us
	if a != sim.Time(1<<20)*10 {
		t.Fatalf("bulk transfer done = %d", a)
	}
	b := p.BulkTransfer(0, 1<<20)
	if b != 2*a {
		t.Fatal("bulk transfers should serialize on the MEM engine")
	}
}

// Property: the wire format is self-describing — WireSize equals encoded
// length for arbitrary payload sizes.
func TestWireSizeProperty(t *testing.T) {
	f := func(n uint16) bool {
		m := &Message{Header: Header{Kind: KindStorageRead}, Payload: make([]byte, int(n)%4096)}
		return len(Encode(m, nil)) == m.WireSize()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNICWireByteCounters(t *testing.T) {
	l := &LNIC{PsPerByte: 10, ProcDelay: 100}
	l.Send(0, 64)
	l.Send(0, 200)
	if l.Sent != 2 || l.Bytes != 264 {
		t.Fatalf("LNIC sent=%d bytes=%d, want 2, 264", l.Sent, l.Bytes)
	}

	// Lossless R-NIC counts exactly the payload bytes.
	clean := NewRNIC(100, 1000, 0)
	r := rand.New(rand.NewSource(5))
	clean.Send(0, 128, r.Float64)
	if clean.Bytes != 128 {
		t.Fatalf("lossless RNIC bytes = %d, want 128", clean.Bytes)
	}

	// Lossy R-NIC counts every transmission attempt: payload bytes once per
	// original send plus once per retransmission.
	lossy := NewRNIC(100, 1000, 0.5)
	for i := 0; i < 100; i++ {
		lossy.Send(sim.Time(i)*1_000_000, 100, r.Float64)
	}
	want := (lossy.Sent + lossy.Retransmit) * 100
	if lossy.Retransmit == 0 {
		t.Fatal("no retransmissions at 50% loss")
	}
	if lossy.Bytes != want {
		t.Fatalf("lossy RNIC bytes = %d, want %d (%d sends + %d retx)",
			lossy.Bytes, want, lossy.Sent, lossy.Retransmit)
	}
}
