package rpcnet

import (
	"fmt"

	"umanycore/internal/sim"
)

// LNIC models a village's local I/O port (§4.1): it runs on the lossless
// on-package network with back-pressure, so it needs no retransmission,
// flow control or congestion control — a message is accepted when the
// egress pipe has room and is then guaranteed to arrive. The pipe is a
// serial resource; Send returns the time the message has fully left the
// NIC (the back-pressure point).
type LNIC struct {
	// PsPerByte is the egress serialization rate.
	PsPerByte sim.Time
	// ProcDelay is the fixed hardware processing time per message (header
	// parse / build, RQ hand-off).
	ProcDelay sim.Time
	pipe      sim.Resource
	// Sent counts accepted messages; Bytes the wire bytes they carried.
	Sent  uint64
	Bytes uint64
}

// Send enqueues a message of wireBytes at time now; the returned time is
// when the sender may consider it handed to the network.
func (n *LNIC) Send(now sim.Time, wireBytes int) sim.Time {
	n.Sent++
	n.Bytes += uint64(wireBytes)
	ser := n.PsPerByte * sim.Time(wireBytes)
	return n.pipe.Acquire(now, ser) + n.ProcDelay
}

// Backlog reports the current back-pressure delay.
func (n *LNIC) Backlog(now sim.Time) sim.Time { return n.pipe.QueueDelay(now) }

// RNIC models a village's remote I/O port: it talks to the lossy external
// world, so it keeps per-flow sequence state, retransmits on timeout, and
// runs an AIMD congestion window sized by acknowledgments (§4.1: "it
// estimates congestion using ACK packets, e.g., in TCP or RDMA").
//
// The model is analytic rather than packet-replayed: given a loss
// probability and base RTT, Send computes the expected completion time of a
// message — serialization, congestion-window pacing, and the geometric
// retransmission tail — and updates the window the way AIMD would on the
// realized outcome. Determinism comes from the caller's random stream.
type RNIC struct {
	PsPerByte sim.Time
	BaseRTT   sim.Time
	// LossProb is the external network's per-transmission drop rate.
	LossProb float64
	// RTOMultiple scales the retransmission timeout over BaseRTT.
	RTOMultiple int

	pipe sim.Resource
	cwnd float64 // congestion window in messages

	// Stats. Bytes counts wire bytes over every transmission attempt, so it
	// includes retransmitted bytes (the external network's real load).
	Sent       uint64
	Retransmit uint64
	Bytes      uint64
}

// NewRNIC builds a remote NIC with sane defaults filled in.
func NewRNIC(psPerByte, baseRTT sim.Time, lossProb float64) *RNIC {
	if lossProb < 0 || lossProb >= 1 {
		panic(fmt.Sprintf("rpcnet: loss probability %v out of range", lossProb))
	}
	return &RNIC{
		PsPerByte:   psPerByte,
		BaseRTT:     baseRTT,
		LossProb:    lossProb,
		RTOMultiple: 3,
		cwnd:        8,
	}
}

// Cwnd exposes the current congestion window (messages in flight).
func (n *RNIC) Cwnd() float64 { return n.cwnd }

// Send transmits a message of wireBytes at now, using rand01 draws in
// [0,1) to realize losses, and returns the time the message is known
// delivered (ACK received). The congestion window halves on loss and grows
// additively on success.
func (n *RNIC) Send(now sim.Time, wireBytes int, rand01 func() float64) sim.Time {
	n.Sent++
	n.Bytes += uint64(wireBytes)
	ser := n.PsPerByte * sim.Time(wireBytes)
	// Window pacing: a full window ahead of us delays our first
	// transmission by its serialization time.
	pacing := sim.Time(0)
	if n.cwnd < 1 {
		n.cwnd = 1
	}
	if backlog := n.pipe.QueueDelay(now); backlog > 0 {
		pacing = backlog / sim.Time(int64(n.cwnd))
	}
	t := n.pipe.Acquire(now+pacing, ser)
	// Transmission attempts until one survives.
	for rand01() < n.LossProb {
		n.Retransmit++
		n.Bytes += uint64(wireBytes)
		// Timeout, multiplicative decrease, retransmit.
		n.cwnd = n.cwnd / 2
		if n.cwnd < 1 {
			n.cwnd = 1
		}
		t += sim.Time(n.RTOMultiple) * n.BaseRTT
		t = n.pipe.Acquire(t, ser)
	}
	// Delivered; ACK returns half an RTT after arrival.
	n.cwnd += 1 / n.cwnd
	return t + n.BaseRTT
}

// VillagePort bundles the two ports of a village plus the MEM engines'
// bulk-transfer rate (the L-MEM/R-MEM modules of Fig 10).
type VillagePort struct {
	Local  LNIC
	Remote *RNIC
	// BulkPsPerByte is the MEM engine's DMA rate for prefetch/write-back
	// of data chunks.
	BulkPsPerByte sim.Time
	bulk          sim.Resource
}

// NewVillagePort builds a port pair with the default timings: L-NIC at the
// on-package link rate with 200ns hardware processing; R-NIC at 25GB/s with
// a 1μs external RTT and the given loss rate.
func NewVillagePort(lossProb float64) *VillagePort {
	return &VillagePort{
		Local:         LNIC{PsPerByte: 600, ProcDelay: 200 * sim.Nanosecond},
		Remote:        NewRNIC(40, 1*sim.Microsecond, lossProb),
		BulkPsPerByte: 10,
	}
}

// BulkTransfer schedules a MEM-engine DMA of size bytes and returns its
// completion time.
func (p *VillagePort) BulkTransfer(now sim.Time, sizeBytes int) sim.Time {
	return p.bulk.Acquire(now, p.BulkPsPerByte*sim.Time(sizeBytes))
}
