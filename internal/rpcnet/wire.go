// Package rpcnet models the paper's RPC/NIC layer (§4.1–§4.3): a compact
// binary wire format for service requests and responses (the work a
// software stack spends "header parsing, payload de-serialization, and
// service dispatching" on, which μManycore's village NIC performs in
// hardware), the two village I/O ports — the lossless on-package L-NIC with
// back-pressure and the lossy off-package R-NIC with acknowledgments,
// retransmission and congestion control — and the top-level NIC's
// ServiceMap dispatch table (§4.2).
package rpcnet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgKind distinguishes wire messages.
type MsgKind uint8

// Message kinds.
const (
	KindRequest MsgKind = iota + 1
	KindResponse
	KindStorageRead
	KindStorageWrite
	KindAck
)

func (k MsgKind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindResponse:
		return "response"
	case KindStorageRead:
		return "storage-read"
	case KindStorageWrite:
		return "storage-write"
	case KindAck:
		return "ack"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Header is the fixed RPC header. The hardware NIC parses it and dispatches
// to the Request Queue without core involvement.
type Header struct {
	Kind      MsgKind
	ServiceID uint16
	RequestID uint64
	// SrcVillage / DstVillage address villages within the package; external
	// endpoints use the reserved village 0xFFFF.
	SrcVillage uint16
	DstVillage uint16
	// Seq orders packets of one flow (R-NIC retransmission).
	Seq uint32
	// PayloadLen is the body size in bytes.
	PayloadLen uint32
}

// ExternalVillage is the reserved address for off-package endpoints.
const ExternalVillage = 0xFFFF

// HeaderSize is the encoded header length in bytes.
const HeaderSize = 1 + 2 + 8 + 2 + 2 + 4 + 4

// Message is a header plus payload.
type Message struct {
	Header  Header
	Payload []byte
}

// WireSize is the total encoded size.
func (m *Message) WireSize() int { return HeaderSize + len(m.Payload) }

// Errors returned by Decode.
var (
	ErrShortBuffer = errors.New("rpcnet: buffer too short")
	ErrBadKind     = errors.New("rpcnet: unknown message kind")
	ErrLenMismatch = errors.New("rpcnet: payload length mismatch")
)

// Encode serializes the message into buf (allocating when buf is too
// small) and returns the encoded bytes.
func Encode(m *Message, buf []byte) []byte {
	n := m.WireSize()
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	buf[0] = byte(m.Header.Kind)
	binary.LittleEndian.PutUint16(buf[1:], m.Header.ServiceID)
	binary.LittleEndian.PutUint64(buf[3:], m.Header.RequestID)
	binary.LittleEndian.PutUint16(buf[11:], m.Header.SrcVillage)
	binary.LittleEndian.PutUint16(buf[13:], m.Header.DstVillage)
	binary.LittleEndian.PutUint32(buf[15:], m.Header.Seq)
	binary.LittleEndian.PutUint32(buf[19:], uint32(len(m.Payload)))
	copy(buf[HeaderSize:], m.Payload)
	return buf
}

// Decode parses a wire buffer into a Message. The payload aliases buf.
func Decode(buf []byte) (*Message, error) {
	if len(buf) < HeaderSize {
		return nil, ErrShortBuffer
	}
	k := MsgKind(buf[0])
	if k < KindRequest || k > KindAck {
		return nil, ErrBadKind
	}
	h := Header{
		Kind:       k,
		ServiceID:  binary.LittleEndian.Uint16(buf[1:]),
		RequestID:  binary.LittleEndian.Uint64(buf[3:]),
		SrcVillage: binary.LittleEndian.Uint16(buf[11:]),
		DstVillage: binary.LittleEndian.Uint16(buf[13:]),
		Seq:        binary.LittleEndian.Uint32(buf[15:]),
		PayloadLen: binary.LittleEndian.Uint32(buf[19:]),
	}
	if int(h.PayloadLen) != len(buf)-HeaderSize {
		return nil, ErrLenMismatch
	}
	return &Message{Header: h, Payload: buf[HeaderSize:]}, nil
}

// ServiceMap is the top-level NIC's dispatch table (§4.2): service ID → the
// villages hosting an instance, with round-robin selection in hardware. The
// system software populates it at instance creation.
type ServiceMap struct {
	villages map[uint16][]uint16
	cursor   map[uint16]int
}

// NewServiceMap returns an empty table.
func NewServiceMap() *ServiceMap {
	return &ServiceMap{
		villages: make(map[uint16][]uint16),
		cursor:   make(map[uint16]int),
	}
}

// Register adds a village hosting an instance of the service. Duplicate
// registrations are idempotent.
func (s *ServiceMap) Register(serviceID, village uint16) {
	for _, v := range s.villages[serviceID] {
		if v == village {
			return
		}
	}
	s.villages[serviceID] = append(s.villages[serviceID], village)
}

// Deregister removes a village's instance (instance teardown).
func (s *ServiceMap) Deregister(serviceID, village uint16) {
	vs := s.villages[serviceID]
	for i, v := range vs {
		if v == village {
			s.villages[serviceID] = append(vs[:i], vs[i+1:]...)
			return
		}
	}
}

// Instances returns the number of villages hosting the service.
func (s *ServiceMap) Instances(serviceID uint16) int { return len(s.villages[serviceID]) }

// Dispatch selects the next village for the service round-robin, returning
// false when no instance exists (the NIC then rejects the request).
func (s *ServiceMap) Dispatch(serviceID uint16) (uint16, bool) {
	vs := s.villages[serviceID]
	if len(vs) == 0 {
		return 0, false
	}
	i := s.cursor[serviceID] % len(vs)
	s.cursor[serviceID]++
	return vs[i], true
}
