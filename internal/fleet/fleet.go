// Package fleet models the paper's 10-server evaluation cluster (§5): each
// server runs one of the three processors, client load is balanced across
// servers, and a fraction of child RPCs cross servers over the inter-server
// network (Table 2: 1μs round trip, 200GB/s).
//
// Servers are statistically identical under the load balancer, so the fleet
// simulates each server independently (with its share of the load, a
// distinct seed, and cross-server RPC latency applied probabilistically)
// and merges the latency samples. This symmetric-server approximation is
// exact in distribution for a balanced fleet of identical machines.
package fleet

import (
	"umanycore/internal/machine"
	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
	"umanycore/internal/sweep"
	"umanycore/internal/telemetry"
	"umanycore/internal/workload"
)

// Config describes the fleet.
type Config struct {
	// Servers is the fleet size (paper: 10).
	Servers int
	// Machine is the per-server processor configuration.
	Machine machine.Config
	// CrossServerFrac is the probability a child RPC targets another
	// server. With instances spread over N servers and uniform routing it
	// is (N-1)/N, but deployments keep call chains local; 0.5 is the
	// default.
	CrossServerFrac float64
	// InterServerRTT is the server-to-server round trip (Table 2: 1μs).
	InterServerRTT sim.Time
	// Parallel caps the worker count for the per-server fan-out (0 = one
	// worker per CPU). Results are identical for any value; tests use it to
	// check merge order-independence.
	Parallel int
}

// DefaultConfig returns the paper's 10-server fleet around the given
// machine.
func DefaultConfig(m machine.Config) Config {
	return Config{
		Servers:         10,
		Machine:         m,
		CrossServerFrac: 0.5,
		InterServerRTT:  1 * sim.Microsecond,
	}
}

// Result aggregates per-server results.
type Result struct {
	Machine                        string
	App                            string
	TotalRPS                       float64
	Latency                        stats.Summary
	TailToAvg                      float64
	Submitted, Completed, Rejected uint64
	Unfinished                     int64
	// MeanUtilization averages server core utilization.
	MeanUtilization float64
	// PerServer keeps the individual results.
	PerServer []*machine.Result
	// Obs merges the per-server observability runs (in server order) when
	// the RunConfig enabled the layer; nil otherwise.
	Obs *obs.Run
	// Telemetry merges the per-server telemetry runs (in server order) when
	// the RunConfig enabled the sampler; nil otherwise.
	Telemetry *telemetry.Run
}

// Run drives the fleet at totalRPS (split evenly across servers) and merges
// the results.
func Run(fc Config, app *workload.App, totalRPS float64, rc machine.RunConfig, seed int64) *Result {
	if fc.Servers <= 0 {
		panic("fleet: need at least one server")
	}
	mcfg := fc.Machine
	mcfg.RemoteCallFrac = fc.CrossServerFrac
	mcfg.RemoteRTT = fc.InterServerRTT

	merged := &stats.Sample{}
	out := &Result{Machine: mcfg.Name, App: app.Name, TotalRPS: totalRPS}
	var utilSum float64
	// Servers are independent simulations with per-server seeds; fan them
	// out and merge in server order, so the fleet result is identical for
	// any worker count.
	servers := make([]int, fc.Servers)
	for s := range servers {
		servers[s] = s
	}
	perServer := sweep.Map(fc.Parallel, servers, func(_ int, s int) *machine.Result {
		srun := rc
		srun.App = app
		srun.RPS = totalRPS / float64(fc.Servers)
		srun.Seed = seed + int64(s)*7919
		return machine.Run(mcfg, srun)
	})
	for _, res := range perServer {
		out.PerServer = append(out.PerServer, res)
		out.Submitted += res.Submitted
		out.Completed += res.Completed
		out.Rejected += res.Rejected
		out.Unfinished += res.Unfinished
		utilSum += res.Utilization
		for _, v := range res.Sample.UnsafeValues() {
			merged.Add(v)
		}
	}
	out.Latency = merged.Summarize()
	out.TailToAvg = merged.TailToAvg()
	out.MeanUtilization = utilSum / float64(fc.Servers)
	if rc.Obs != nil {
		// Per-worker collectors merge on the reassembled (server-order)
		// results, so the fleet trace is identical for any Parallel value.
		runs := make([]*obs.Run, len(perServer))
		for i, res := range perServer {
			runs[i] = res.Obs
		}
		out.Obs = obs.Merge(runs)
	}
	if rc.Telemetry != nil {
		// Same order contract as Obs: merge on the server-order slice, never
		// on completion order, so Parallel doesn't change the result.
		runs := make([]*telemetry.Run, len(perServer))
		for i, res := range perServer {
			runs[i] = res.Telemetry
		}
		out.Telemetry = telemetry.Merge(runs)
	}
	return out
}
