// Package fleet models the paper's 10-server evaluation cluster (§5): N
// servers behind a front-end load balancer, with a fraction of child RPCs
// crossing servers over the inter-server network (Table 2: 1μs round trip,
// 200GB/s).
//
// Run couples the whole fleet: a fleet-level dispatcher routes each
// arriving request to a server through a pluggable Balancer policy
// (round-robin, uniform-random, least-outstanding, power-of-two-choices),
// and a child RPC that draws the cross-server lottery actually lands on a
// peer server's run queue — it competes for the peer's cores and queues,
// pays the inter-server RTT both ways, and its response resumes the parent
// on the originating server. Per-server Slowdown factors model stragglers
// and heterogeneous fleets.
//
// Multi-server fleets execute as a conservative-lookahead parallel
// discrete-event simulation (internal/pdes): the dispatcher and every
// server are shards with private engines, synchronized in time windows
// bounded by half the inter-server RTT — the minimum latency of any
// cross-server interaction. Cross-server RPCs and dispatches travel as
// timestamped inter-shard messages delivered at window barriers, and the
// balancer routes on queue views snapshotted at barriers (at most one wire
// delay stale — exactly what a physical front-end would know). Shards can
// advance concurrently on Config.ShardWorkers workers; results are
// bit-identical for every worker count, for repeat runs, and to the
// single-engine reference execution (ShardWorkers = -1). A one-server
// fleet degenerates to one engine and reproduces a plain machine.Run
// exactly.
//
// RunIndependent keeps the older symmetric-server fast path: each server
// simulates alone with its share of the load and cross-server RPCs
// approximated by a probabilistic latency add on locally-executed children.
// That approximation ignores the load the peers would actually absorb and
// the queueing correlation it creates, so it underestimates cross-server
// tail effects — it is a throughput-cheap screening tool (servers fan out
// across sweep workers), not an exact model.
package fleet

import (
	"time"

	"umanycore/internal/control"
	"umanycore/internal/machine"
	"umanycore/internal/obs"
	"umanycore/internal/pdes"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
	"umanycore/internal/svcgraph"
	"umanycore/internal/sweep"
	"umanycore/internal/telemetry"
	"umanycore/internal/workload"
)

// Config describes the fleet.
type Config struct {
	// Servers is the fleet size (paper: 10).
	Servers int
	// Machine is the per-server processor configuration.
	Machine machine.Config
	// CrossServerFrac is the probability a child RPC targets another
	// server. With instances spread over N servers and uniform routing it
	// is (N-1)/N, but deployments keep call chains local; 0.5 is the
	// default. A one-server fleet has no peers, so the effective fraction
	// clamps to zero when Servers == 1. Ignored in graph mode (Graph below):
	// there, routing is the placement map, not a lottery.
	CrossServerFrac float64
	// Graph, when non-nil, runs the fleet as an explicit service-graph
	// deployment (see internal/svcgraph): Graph.Placement assigns each
	// catalog service to a subset of the servers, every server builds via
	// machine.NewPlaced hosting only its assigned services, a child RPC to
	// a service not hosted locally ships through the PDES fabric to a
	// hosting peer (replacing the CrossServerFrac lottery), and the
	// dispatcher's balancer routes each root over the servers hosting its
	// root service. The trace source rides machine.RunConfig.Replay, so a
	// graph fleet can replay external traces; the control loop is not
	// supported in graph or replay mode.
	Graph *svcgraph.Spec
	// InterServerRTT is the server-to-server round trip (Table 2: 1μs).
	InterServerRTT sim.Time
	// LB names the load-balancer policy for the coupled Run: "rr"
	// (round-robin, the default), "rand", "least", or "p2c" — see ParseLB.
	// RunIndependent splits load evenly and ignores it.
	LB string
	// NewBalancer, when non-nil, overrides LB with a custom policy factory.
	// Run calls it once per invocation so stateful policies (round-robin's
	// counter) never share state across parallel sweep cells.
	NewBalancer func() Balancer
	// Slowdown models a heterogeneous fleet: server s's compute runs
	// Slowdown[s]× slower (its PerfFactor is divided by the entry). Missing,
	// zero or negative entries mean 1.0 (no slowdown).
	Slowdown []float64
	// WhatIf applies virtual stage speedups to every server (causal
	// profiling — see machine.StageSpeedups and internal/whatif).
	WhatIf machine.StageSpeedups
	// WhatIfPerServer overrides WhatIf for individual servers: a non-zero
	// entry at index s replaces the fleet-wide speedups on server s
	// (missing or zero entries fall back to WhatIf). Lets a study ask
	// "what if only the straggler's storage were faster".
	WhatIfPerServer []machine.StageSpeedups
	// Parallel caps the worker count for RunIndependent's per-server
	// fan-out (0 = one worker per CPU); results are identical for any
	// value. The coupled Run ignores it — see ShardWorkers.
	Parallel int
	// ShardWorkers is the coupled Run's shard worker count: how many
	// per-server engines advance concurrently inside each conservative
	// time window. 0 and 1 run the windows sequentially; -1 selects the
	// single-engine reference execution (every shard on one shared engine,
	// same window/mailbox semantics — the validation and debugging mode).
	// Results are bit-identical for every value; like Parallel, it is a
	// worker count, never a simulation input.
	ShardWorkers int
	// Control, when non-nil and enabled, closes the front-end feedback
	// loops on the coupled Run: retry-on-reject with capped exponential
	// backoff, tail hedging, slo.burn-triggered load shedding, and
	// windowed-p99 autoscaling (see internal/control). Requires Servers >=
	// 2; RunIndependent has no dispatcher and rejects it. Client-level
	// accounting lands in Result.Control.
	Control *control.Config
}

// DefaultConfig returns the paper's 10-server fleet around the given
// machine.
func DefaultConfig(m machine.Config) Config {
	return Config{
		Servers:         10,
		Machine:         m,
		CrossServerFrac: 0.5,
		InterServerRTT:  1 * sim.Microsecond,
	}
}

// crossFrac is the effective cross-server probability: zero for a
// one-server fleet (no peers exist) and for graph mode (placement decides
// routing), CrossServerFrac otherwise.
func (fc Config) crossFrac() float64 {
	if fc.Servers <= 1 || fc.Graph != nil {
		return 0
	}
	return fc.CrossServerFrac
}

// balancer instantiates the configured policy (fresh per run).
func (fc Config) balancer() Balancer {
	if fc.NewBalancer != nil {
		return fc.NewBalancer()
	}
	mk, err := ParseLB(fc.LB)
	if err != nil {
		panic(err)
	}
	return mk()
}

// serverConfig is server s's machine configuration: the shared base with
// the fleet coupling applied, slowed by Slowdown[s] when configured.
func (fc Config) serverConfig(s int, cross float64) machine.Config {
	mcfg := fc.Machine
	mcfg.RemoteCallFrac = cross
	mcfg.RemoteRTT = fc.InterServerRTT
	if s < len(fc.Slowdown) && fc.Slowdown[s] > 0 {
		mcfg.PerfFactor /= fc.Slowdown[s]
	}
	if !fc.WhatIf.IsZero() {
		mcfg.WhatIf = fc.WhatIf
	}
	if s < len(fc.WhatIfPerServer) && !fc.WhatIfPerServer[s].IsZero() {
		mcfg.WhatIf = fc.WhatIfPerServer[s]
	}
	return mcfg
}

// Result aggregates per-server results.
type Result struct {
	Machine                        string
	App                            string
	TotalRPS                       float64
	Latency                        stats.Summary
	TailToAvg                      float64
	Submitted, Completed, Rejected uint64
	Unfinished                     int64
	// Balancer names the routing policy (coupled Run only; empty for
	// RunIndependent, which models a uniform split).
	Balancer string
	// RemoteServed counts child RPCs served on behalf of peer servers
	// (coupled Run only; the independent path never ships work).
	RemoteServed uint64
	// MeanUtilization averages server core utilization.
	MeanUtilization float64
	// PerServer keeps the individual results.
	PerServer []*machine.Result
	// Obs merges the per-server observability runs (in server order) when
	// the RunConfig enabled the layer; nil otherwise.
	Obs *obs.Run
	// Telemetry merges the per-server telemetry runs (in server order) when
	// the RunConfig enabled the sampler; nil otherwise.
	Telemetry *telemetry.Run
	// EventsProcessed counts simulation events fired across every engine in
	// the run (dispatcher included for coupled multi-server fleets). It is
	// deterministic; EventsProcessed/WallSeconds is the events-per-second
	// figure the PDES speedup curves report.
	EventsProcessed uint64
	// WallSeconds is the run's wall-clock cost. It lives in the
	// non-deterministic domain: equality checks and the cache codec ignore
	// it (decoded results carry zero).
	WallSeconds float64
	// Fabric is the PDES coupling's self-observability (coupled multi-server
	// fleets only; nil otherwise). All fields except the two wall-clock ones
	// are deterministic; the cache codec ignores the whole struct like
	// WallSeconds.
	Fabric *pdes.Stats
	// Control is the dispatcher control loop's client-level accounting
	// (retries, hedges, sheds, scale events, client-perceived latency) when
	// Config.Control enabled it; nil otherwise. Server-level fields above
	// keep per-attempt semantics: with retries and hedging one client root
	// can appear as several server submissions.
	Control *control.Stats
}

// Run drives the coupled fleet at totalRPS: every server lives in its own
// simulation engine (sharded conservatively in time — see the package
// comment), a Balancer routes each arrival, and cross-server child RPCs
// execute on the peer they target. Deterministic in (fc, app, totalRPS, rc,
// seed) alone — worker counts and wall-clock never enter.
func Run(fc Config, app *workload.App, totalRPS float64, rc machine.RunConfig, seed int64) *Result {
	if fc.Servers <= 0 {
		panic("fleet: need at least one server")
	}
	if fc.Graph != nil {
		if err := fc.Graph.Validate(app.Catalog, fc.Servers); err != nil {
			panic(err)
		}
		if fc.controlOn() {
			panic("fleet: Config.Graph does not support the control loop (the front end submits typed roots)")
		}
	}
	if rc.Replay != nil && fc.controlOn() {
		panic("fleet: trace replay does not support the control loop (arrivals are the trace's, not the controller's)")
	}
	if fc.Servers == 1 {
		if fc.controlOn() {
			panic("fleet: Config.Control needs a coupled fleet of >= 2 servers")
		}
		return runOneServer(fc, app, totalRPS, rc, seed)
	}
	return runCoupled(fc, app, totalRPS, rc, seed)
}

// controlOn reports whether a control loop is configured and enabled.
func (fc Config) controlOn() bool { return fc.Control != nil && fc.Control.Enabled() }

// runOneServer is the one-server fleet: a single engine, no peers, no
// sharding. It mirrors machine.Run's setup sequence exactly so the result
// reproduces a plain run bit-for-bit.
func runOneServer(fc Config, app *workload.App, totalRPS float64, rc machine.RunConfig, seed int64) *Result {
	start := time.Now()
	cross := fc.crossFrac()
	rc = rc.Normalized()
	rc.App = app
	rc.RPS = totalRPS / float64(fc.Servers)
	rc.Seed = seed

	eng := sim.NewEngine(seed)

	// Build the servers. The setup sequence for each mirrors machine.Run —
	// machine, measurement window, observability, telemetry — so a
	// one-server fleet schedules the exact same event sequence as a plain
	// run and reproduces it bit-for-bit.
	machines := make([]*machine.Machine, fc.Servers)
	cols := make([]*obs.Collector, fc.Servers)
	regs := make([]*obs.Registry, fc.Servers)
	teles := make([]*telemetry.Sampler, fc.Servers)
	for s := range machines {
		mcfg := fc.serverConfig(s, cross)
		var m *machine.Machine
		switch {
		case fc.Graph != nil:
			// One-server graph: validation guarantees every service is
			// hosted here, so all call edges stay local.
			m = machine.NewPlaced(eng, mcfg, app.Catalog, fc.Graph.HostedOn(s))
		case len(rc.Mix) > 0:
			m = machine.NewMix(eng, mcfg, app.Catalog, rc.Mix)
		default:
			m = machine.New(eng, mcfg, app)
		}
		m.SetMeasureFrom(rc.Warmup)

		var col *obs.Collector
		var reg *obs.Registry
		if rc.Obs != nil {
			if rc.Obs.Trace {
				col = obs.NewCollector()
			}
			if rc.Obs.Metrics {
				reg = obs.NewRegistry()
			}
		}
		var tele *telemetry.Sampler
		if rc.Telemetry != nil {
			if reg == nil {
				reg = obs.NewRegistry()
			}
			topt := *rc.Telemetry
			// The engine is shared: record its vitals once (server 0), not
			// once per server, so the merged sim.* series stay meaningful.
			topt.NoEngineVitals = topt.NoEngineVitals || s > 0
			tele = telemetry.Start(eng, reg, rc.Duration+rc.Drain, topt)
		}
		if col != nil || reg != nil {
			m.EnableObs(col, reg)
			m.EnableTelemetry(tele)
		}
		machines[s], cols[s], regs[s], teles[s] = m, col, reg, tele
	}

	// Fleet-level dispatcher: one open-loop arrival process at the total
	// rate, each arrival routed by the balancer. With one server the
	// balancer returns 0 without touching its stream, so the arrival
	// sequence matches machine.Run's exactly.
	bal := fc.balancer()
	lbRng := eng.Rand("fleet-lb")
	view := View{
		Servers:     fc.Servers,
		Outstanding: func(s int) int { return machines[s].OutstandingRoots() },
	}
	if rc.Replay != nil {
		// Trace replay: arrivals, root types and demands come from the
		// bound trace; the balancer still routes (with one server it
		// returns 0 without touching its stream, matching machine.Run).
		rc.Replay.Schedule(eng, rc.Duration, func(root int, demand float64) {
			machines[bal.Pick(lbRng, view)].SubmitRootAs(root, demand)
		})
	} else {
		submit := func(m *machine.Machine) { m.SubmitRoot() }
		if fc.Graph != nil {
			// A placed machine's default mix starts at its first hosted
			// service; graph roots are typed explicitly.
			submit = func(m *machine.Machine) { m.SubmitRootAs(app.Root, 0) }
		}
		gap := machine.ArrivalGap(eng, rc, totalRPS)
		var schedule func()
		schedule = func() {
			if eng.Now() >= rc.Duration {
				return
			}
			submit(machines[bal.Pick(lbRng, view)])
			eng.After(gap(), schedule)
		}
		eng.At(gap(), schedule)
	}
	eng.RunUntil(rc.Duration + rc.Drain)

	// Per-server results, assembled in server order like machine.Run's
	// tail: statistics, machine metrics, engine metrics (once — the engine
	// is shared), observability snapshot, telemetry.
	perServer := make([]*machine.Result, fc.Servers)
	for s, m := range machines {
		res := machine.BuildResult(m, eng, rc)
		if regs[s] != nil {
			m.FinishMachineMetrics(rc.Duration)
			if s == 0 {
				machine.RecordEngineMetrics(regs[s], eng)
			}
		}
		if rc.Obs != nil {
			res.Obs = &obs.Run{}
			if cols[s] != nil {
				res.Obs.Spans = cols[s].Spans()
			}
			if regs[s] != nil {
				res.Obs.Metrics = regs[s].Snapshot(eng.Now())
			}
		}
		if teles[s] != nil {
			res.Telemetry = teles[s].Finish(eng.Now())
		}
		perServer[s] = res
	}

	out := aggregate(fc, app, totalRPS, rc, perServer)
	out.Balancer = bal.Name()
	for _, m := range machines {
		out.RemoteServed += m.RemoteServed
	}
	out.EventsProcessed = eng.Fired()
	out.WallSeconds = time.Since(start).Seconds()
	return out
}

// RunIndependent drives the fleet with the symmetric-server approximation:
// each server simulates independently with its share of the load and a
// distinct derived seed, cross-server RPCs modeled as a probabilistic
// latency add on locally-run children. Cheap (servers fan out across
// Parallel workers) but approximate — see the package comment. Balancer
// policies do not apply; the even split models an ideal uniform balancer.
func RunIndependent(fc Config, app *workload.App, totalRPS float64, rc machine.RunConfig, seed int64) *Result {
	if fc.Servers <= 0 {
		panic("fleet: need at least one server")
	}
	if fc.controlOn() {
		panic("fleet: Config.Control needs the coupled Run (RunIndependent has no dispatcher)")
	}
	if fc.Graph != nil {
		panic("fleet: Config.Graph needs the coupled Run (independent servers cannot host a placed graph)")
	}
	if rc.Replay != nil {
		panic("fleet: trace replay needs the coupled Run (an independent fleet would replay the whole trace per server)")
	}
	start := time.Now()
	cross := fc.crossFrac()
	// Servers are independent simulations with per-server derived seeds;
	// fan them out and merge in server order, so the fleet result is
	// identical for any worker count.
	servers := make([]int, fc.Servers)
	for s := range servers {
		servers[s] = s
	}
	perServer := sweep.Map(fc.Parallel, servers, func(_ int, s int) *machine.Result {
		srun := rc
		srun.App = app
		srun.RPS = totalRPS / float64(fc.Servers)
		srun.Seed = sim.DeriveSeed(seed, int64(s))
		return machine.Run(fc.serverConfig(s, cross), srun)
	})
	out := aggregate(fc, app, totalRPS, rc, perServer)
	for _, res := range perServer {
		out.EventsProcessed += res.Events
	}
	out.WallSeconds = time.Since(start).Seconds()
	return out
}

// aggregate merges per-server results (in server order) into one fleet
// result — the shared tail of Run and RunIndependent.
func aggregate(fc Config, app *workload.App, totalRPS float64, rc machine.RunConfig, perServer []*machine.Result) *Result {
	merged := &stats.Sample{}
	out := &Result{Machine: fc.Machine.Name, App: app.Name, TotalRPS: totalRPS}
	var utilSum float64
	for _, res := range perServer {
		out.PerServer = append(out.PerServer, res)
		out.Submitted += res.Submitted
		out.Completed += res.Completed
		out.Rejected += res.Rejected
		out.Unfinished += res.Unfinished
		utilSum += res.Utilization
		for _, v := range res.Sample.UnsafeValues() {
			merged.Add(v)
		}
	}
	if len(perServer) == 1 {
		// Nothing to merge — reuse the server's own summary, whose mean was
		// accumulated in arrival order (re-adding the sorted values would
		// round the sum differently in the last bit).
		out.Latency = perServer[0].Latency
		out.TailToAvg = perServer[0].TailToAvg
	} else {
		out.Latency = merged.Summarize()
		out.TailToAvg = merged.TailToAvg()
	}
	out.MeanUtilization = utilSum / float64(fc.Servers)
	if rc.Obs != nil {
		// Per-server runs merge on the server-order slice, so the fleet
		// trace never depends on completion or worker order.
		runs := make([]*obs.Run, len(perServer))
		for i, res := range perServer {
			runs[i] = res.Obs
		}
		out.Obs = obs.Merge(runs)
	}
	if rc.Telemetry != nil {
		// Same order contract as Obs: merge on the server-order slice, never
		// on completion order.
		runs := make([]*telemetry.Run, len(perServer))
		for i, res := range perServer {
			runs[i] = res.Telemetry
		}
		out.Telemetry = telemetry.Merge(runs)
	}
	return out
}
