package fleet

import (
	"encoding/json"
	"errors"
	"fmt"

	"umanycore/internal/control"
	"umanycore/internal/machine"
	"umanycore/internal/stats"
)

// EncodeResult serializes a fleet Result to the deterministic cache payload
// encoding: fixed field order, shortest-exact floats, per-server results in
// server order via machine.EncodeResult. Results carrying obs/telemetry
// attachments are not cacheable (see machine.EncodeResult).
func EncodeResult(r *Result) ([]byte, error) {
	if r == nil {
		return nil, errors.New("fleet: nil result")
	}
	if r.Obs != nil || r.Telemetry != nil {
		return nil, errors.New("fleet: result with obs/telemetry attached is not cacheable")
	}
	perServer := make([][]byte, len(r.PerServer))
	for i, sr := range r.PerServer {
		b, err := machine.EncodeResult(sr)
		if err != nil {
			return nil, fmt.Errorf("fleet: server %d: %w", i, err)
		}
		perServer[i] = b
	}
	var o stats.JSONObject
	o.Str("machine", r.Machine).
		Str("app", r.App).
		Float("total_rps", r.TotalRPS)
	lat, _ := r.Latency.MarshalJSON()
	o.Raw("latency", lat).
		Float("tail_to_avg", r.TailToAvg).
		Int("submitted", int64(r.Submitted)).
		Int("completed", int64(r.Completed)).
		Int("rejected", int64(r.Rejected)).
		Int("unfinished", r.Unfinished).
		Str("balancer", r.Balancer).
		Int("remote_served", int64(r.RemoteServed)).
		Float("mean_utilization", r.MeanUtilization).
		Int("events_processed", int64(r.EventsProcessed)).
		RawArr("per_server", perServer)
	if c := r.Control; c != nil {
		// Control-loop accounting rides along so cached controlled cells keep
		// their client-level shed/retry/goodput counters — losing these to the
		// codec would silently zero the very numbers the control experiments
		// sweep on.
		o.Obj("control", func(co *stats.JSONObject) {
			co.Int("submitted", int64(c.Submitted)).
				Int("completed", int64(c.Completed)).
				Int("rejected", int64(c.Rejected)).
				Int("unfinished", c.Unfinished).
				Int("retries", int64(c.Retries)).
				Int("shed", int64(c.Shed)).
				Int("attempts", int64(c.Attempts)).
				Int("hedges", int64(c.Hedges)).
				Int("hedge_wins", int64(c.HedgeWins)).
				Int("hedge_waste", int64(c.HedgeWaste)).
				Int("burn_edges", int64(c.BurnEdges)).
				Int("scale_ups", int64(c.ScaleUps)).
				Int("scale_downs", int64(c.ScaleDowns)).
				Int("active_servers", int64(c.ActiveServers))
			lat, _ := c.Latency.MarshalJSON()
			co.Raw("latency", lat).
				Float("tail_to_avg", c.TailToAvg)
			if c.Sample != nil {
				co.Obj("sample", func(s *stats.JSONObject) {
					s.Float("sum", c.Sample.Sum()).
						FloatArr("values", c.Sample.UnsafeValues())
				})
			}
		})
	}
	// WallSeconds and Fabric are deliberately absent: wall clock and fabric
	// execution diagnostics are outside the deterministic domain, and the
	// cache payload must be a pure function of the simulation inputs.
	return o.Bytes(), nil
}

// fleetResultJSON mirrors the EncodeResult layout for decoding.
type fleetResultJSON struct {
	Machine         string            `json:"machine"`
	App             string            `json:"app"`
	TotalRPS        float64           `json:"total_rps"`
	Latency         stats.Summary     `json:"latency"`
	TailToAvg       float64           `json:"tail_to_avg"`
	Submitted       uint64            `json:"submitted"`
	Completed       uint64            `json:"completed"`
	Rejected        uint64            `json:"rejected"`
	Unfinished      int64             `json:"unfinished"`
	Balancer        string            `json:"balancer"`
	RemoteServed    uint64            `json:"remote_served"`
	MeanUtilization float64           `json:"mean_utilization"`
	EventsProcessed uint64            `json:"events_processed"`
	PerServer       []json.RawMessage `json:"per_server"`
	Control         *struct {
		Submitted     uint64        `json:"submitted"`
		Completed     uint64        `json:"completed"`
		Rejected      uint64        `json:"rejected"`
		Unfinished    int64         `json:"unfinished"`
		Retries       uint64        `json:"retries"`
		Shed          uint64        `json:"shed"`
		Attempts      uint64        `json:"attempts"`
		Hedges        uint64        `json:"hedges"`
		HedgeWins     uint64        `json:"hedge_wins"`
		HedgeWaste    uint64        `json:"hedge_waste"`
		BurnEdges     uint64        `json:"burn_edges"`
		ScaleUps      uint64        `json:"scale_ups"`
		ScaleDowns    uint64        `json:"scale_downs"`
		ActiveServers int64         `json:"active_servers"`
		Latency       stats.Summary `json:"latency"`
		TailToAvg     float64       `json:"tail_to_avg"`
		Sample        *struct {
			Sum    float64   `json:"sum"`
			Values []float64 `json:"values"`
		} `json:"sample"`
	} `json:"control"`
}

// DecodeResult inverts EncodeResult.
func DecodeResult(b []byte) (*Result, error) {
	var m fleetResultJSON
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("fleet: decoding cached result: %w", err)
	}
	r := &Result{
		Machine:         m.Machine,
		App:             m.App,
		TotalRPS:        m.TotalRPS,
		Latency:         m.Latency,
		TailToAvg:       m.TailToAvg,
		Submitted:       m.Submitted,
		Completed:       m.Completed,
		Rejected:        m.Rejected,
		Unfinished:      m.Unfinished,
		Balancer:        m.Balancer,
		RemoteServed:    m.RemoteServed,
		MeanUtilization: m.MeanUtilization,
		EventsProcessed: m.EventsProcessed,
	}
	if m.PerServer != nil {
		r.PerServer = make([]*machine.Result, len(m.PerServer))
		for i, raw := range m.PerServer {
			sr, err := machine.DecodeResult(raw)
			if err != nil {
				return nil, fmt.Errorf("fleet: server %d: %w", i, err)
			}
			r.PerServer[i] = sr
		}
	}
	if c := m.Control; c != nil {
		cs := &control.Stats{
			Submitted:     c.Submitted,
			Completed:     c.Completed,
			Rejected:      c.Rejected,
			Unfinished:    c.Unfinished,
			Retries:       c.Retries,
			Shed:          c.Shed,
			Attempts:      c.Attempts,
			Hedges:        c.Hedges,
			HedgeWins:     c.HedgeWins,
			HedgeWaste:    c.HedgeWaste,
			BurnEdges:     c.BurnEdges,
			ScaleUps:      c.ScaleUps,
			ScaleDowns:    c.ScaleDowns,
			ActiveServers: int(c.ActiveServers),
			Latency:       c.Latency,
			TailToAvg:     c.TailToAvg,
		}
		if c.Sample != nil {
			cs.Sample = stats.RestoreSample(c.Sample.Values, c.Sample.Sum)
		}
		r.Control = cs
	}
	return r, nil
}
