package fleet

import (
	"encoding/json"
	"errors"
	"fmt"

	"umanycore/internal/machine"
	"umanycore/internal/stats"
)

// EncodeResult serializes a fleet Result to the deterministic cache payload
// encoding: fixed field order, shortest-exact floats, per-server results in
// server order via machine.EncodeResult. Results carrying obs/telemetry
// attachments are not cacheable (see machine.EncodeResult).
func EncodeResult(r *Result) ([]byte, error) {
	if r == nil {
		return nil, errors.New("fleet: nil result")
	}
	if r.Obs != nil || r.Telemetry != nil {
		return nil, errors.New("fleet: result with obs/telemetry attached is not cacheable")
	}
	perServer := make([][]byte, len(r.PerServer))
	for i, sr := range r.PerServer {
		b, err := machine.EncodeResult(sr)
		if err != nil {
			return nil, fmt.Errorf("fleet: server %d: %w", i, err)
		}
		perServer[i] = b
	}
	var o stats.JSONObject
	o.Str("machine", r.Machine).
		Str("app", r.App).
		Float("total_rps", r.TotalRPS)
	lat, _ := r.Latency.MarshalJSON()
	o.Raw("latency", lat).
		Float("tail_to_avg", r.TailToAvg).
		Int("submitted", int64(r.Submitted)).
		Int("completed", int64(r.Completed)).
		Int("rejected", int64(r.Rejected)).
		Int("unfinished", r.Unfinished).
		Str("balancer", r.Balancer).
		Int("remote_served", int64(r.RemoteServed)).
		Float("mean_utilization", r.MeanUtilization).
		Int("events_processed", int64(r.EventsProcessed)).
		RawArr("per_server", perServer)
	// WallSeconds and Fabric are deliberately absent: wall clock and fabric
	// execution diagnostics are outside the deterministic domain, and the
	// cache payload must be a pure function of the simulation inputs.
	return o.Bytes(), nil
}

// fleetResultJSON mirrors the EncodeResult layout for decoding.
type fleetResultJSON struct {
	Machine         string            `json:"machine"`
	App             string            `json:"app"`
	TotalRPS        float64           `json:"total_rps"`
	Latency         stats.Summary     `json:"latency"`
	TailToAvg       float64           `json:"tail_to_avg"`
	Submitted       uint64            `json:"submitted"`
	Completed       uint64            `json:"completed"`
	Rejected        uint64            `json:"rejected"`
	Unfinished      int64             `json:"unfinished"`
	Balancer        string            `json:"balancer"`
	RemoteServed    uint64            `json:"remote_served"`
	MeanUtilization float64           `json:"mean_utilization"`
	EventsProcessed uint64            `json:"events_processed"`
	PerServer       []json.RawMessage `json:"per_server"`
}

// DecodeResult inverts EncodeResult.
func DecodeResult(b []byte) (*Result, error) {
	var m fleetResultJSON
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("fleet: decoding cached result: %w", err)
	}
	r := &Result{
		Machine:         m.Machine,
		App:             m.App,
		TotalRPS:        m.TotalRPS,
		Latency:         m.Latency,
		TailToAvg:       m.TailToAvg,
		Submitted:       m.Submitted,
		Completed:       m.Completed,
		Rejected:        m.Rejected,
		Unfinished:      m.Unfinished,
		Balancer:        m.Balancer,
		RemoteServed:    m.RemoteServed,
		MeanUtilization: m.MeanUtilization,
		EventsProcessed: m.EventsProcessed,
	}
	if m.PerServer != nil {
		r.PerServer = make([]*machine.Result, len(m.PerServer))
		for i, raw := range m.PerServer {
			sr, err := machine.DecodeResult(raw)
			if err != nil {
				return nil, fmt.Errorf("fleet: server %d: %w", i, err)
			}
			r.PerServer[i] = sr
		}
	}
	return r, nil
}
