package fleet

import (
	"testing"

	"umanycore/internal/machine"
	"umanycore/internal/sim"
	"umanycore/internal/workload"
)

func homeT(t *testing.T) *workload.App {
	t.Helper()
	for _, a := range workload.SocialNetworkApps() {
		if a.Name == "HomeT" {
			return a
		}
	}
	t.Fatal("no HomeT")
	return nil
}

func TestDefaultConfig(t *testing.T) {
	fc := DefaultConfig(machine.UManycoreConfig())
	if fc.Servers != 10 || fc.InterServerRTT != sim.Microsecond {
		t.Fatalf("fleet defaults = %+v", fc)
	}
}

func TestFleetRunAggregates(t *testing.T) {
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 3
	rc := machine.RunConfig{Duration: 200 * sim.Millisecond, Warmup: 40 * sim.Millisecond, Drain: sim.Second}
	res := Run(fc, homeT(t), 9000, rc, 1)
	if len(res.PerServer) != 3 {
		t.Fatalf("per-server results = %d", len(res.PerServer))
	}
	var sum uint64
	for _, s := range res.PerServer {
		sum += s.Completed
	}
	if res.Completed != sum || res.Completed == 0 {
		t.Fatalf("completed aggregation: %d vs %d", res.Completed, sum)
	}
	if res.Latency.N == 0 || res.Latency.P99 < res.Latency.Mean {
		t.Fatalf("latency = %+v", res.Latency)
	}
	// Servers see different seeds, so samples differ.
	if res.PerServer[0].Latency == res.PerServer[1].Latency {
		t.Fatal("servers appear identical — seeds not varied")
	}
}

func TestFleetCrossServerSlowerThanLocal(t *testing.T) {
	app := homeT(t)
	rc := machine.RunConfig{Duration: 200 * sim.Millisecond, Warmup: 40 * sim.Millisecond, Drain: sim.Second}
	local := DefaultConfig(machine.UManycoreConfig())
	local.Servers = 2
	local.CrossServerFrac = 0
	remote := DefaultConfig(machine.UManycoreConfig())
	remote.Servers = 2
	remote.CrossServerFrac = 1
	remote.InterServerRTT = 200 * sim.Microsecond
	lres := Run(local, app, 4000, rc, 2)
	rres := Run(remote, app, 4000, rc, 2)
	if rres.Latency.Mean <= lres.Latency.Mean {
		t.Fatalf("cross-server RTT not visible: %v vs %v", rres.Latency.Mean, lres.Latency.Mean)
	}
}

func TestFleetPanicsWithoutServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Run(Config{}, homeT(t), 100, machine.RunConfig{}, 1)
}
