package fleet

import (
	"bytes"
	"reflect"
	"testing"

	"umanycore/internal/machine"
	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/sweep"
	"umanycore/internal/telemetry"
	"umanycore/internal/workload"
)

func homeT(t *testing.T) *workload.App {
	t.Helper()
	for _, a := range workload.SocialNetworkApps() {
		if a.Name == "HomeT" {
			return a
		}
	}
	t.Fatal("no HomeT")
	return nil
}

// stripWall zeroes the intentionally non-deterministic Result fields — the
// run's wall cost and the fabric's wall-clock diagnostics — so determinism
// tests can DeepEqual whole results.
func stripWall(rs ...*Result) {
	for _, r := range rs {
		r.WallSeconds = 0
		if r.Fabric != nil {
			r.Fabric.BarrierWaitSeconds = 0
			r.Fabric.WorkerBusySeconds = 0
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	fc := DefaultConfig(machine.UManycoreConfig())
	if fc.Servers != 10 || fc.InterServerRTT != sim.Microsecond {
		t.Fatalf("fleet defaults = %+v", fc)
	}
}

func TestFleetRunAggregates(t *testing.T) {
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 3
	rc := machine.RunConfig{Duration: 200 * sim.Millisecond, Warmup: 40 * sim.Millisecond, Drain: sim.Second}
	res := Run(fc, homeT(t), 9000, rc, 1)
	if len(res.PerServer) != 3 {
		t.Fatalf("per-server results = %d", len(res.PerServer))
	}
	var sum uint64
	for _, s := range res.PerServer {
		sum += s.Completed
	}
	if res.Completed != sum || res.Completed == 0 {
		t.Fatalf("completed aggregation: %d vs %d", res.Completed, sum)
	}
	if res.Latency.N == 0 || res.Latency.P99 < res.Latency.Mean {
		t.Fatalf("latency = %+v", res.Latency)
	}
	// Servers see different seeds, so samples differ.
	if res.PerServer[0].Latency == res.PerServer[1].Latency {
		t.Fatal("servers appear identical — seeds not varied")
	}
}

func TestFleetCrossServerSlowerThanLocal(t *testing.T) {
	app := homeT(t)
	rc := machine.RunConfig{Duration: 200 * sim.Millisecond, Warmup: 40 * sim.Millisecond, Drain: sim.Second}
	local := DefaultConfig(machine.UManycoreConfig())
	local.Servers = 2
	local.CrossServerFrac = 0
	remote := DefaultConfig(machine.UManycoreConfig())
	remote.Servers = 2
	remote.CrossServerFrac = 1
	remote.InterServerRTT = 200 * sim.Microsecond
	lres := Run(local, app, 4000, rc, 2)
	rres := Run(remote, app, 4000, rc, 2)
	if rres.Latency.Mean <= lres.Latency.Mean {
		t.Fatalf("cross-server RTT not visible: %v vs %v", rres.Latency.Mean, lres.Latency.Mean)
	}
}

func TestFleetPanicsWithoutServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Run(Config{}, homeT(t), 100, machine.RunConfig{}, 1)
}

// TestOneServerFleetMatchesMachineRun pins the coupled runner's degenerate
// case and the CrossServerFrac clamp: a 1-server fleet — even with the
// DefaultConfig's CrossServerFrac of 0.5 — must reproduce a plain
// machine.Run bit-for-bit, observability layers included.
func TestOneServerFleetMatchesMachineRun(t *testing.T) {
	app := homeT(t)
	rc := machine.RunConfig{
		Duration:  100 * sim.Millisecond,
		Warmup:    20 * sim.Millisecond,
		Drain:     sim.Second,
		Obs:       &obs.Options{Trace: true, Metrics: true},
		Telemetry: &telemetry.Options{},
	}
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 1

	fres := Run(fc, app, 12000, rc, 7)
	if fres.RemoteServed != 0 {
		t.Fatalf("1-server fleet shipped %d remote RPCs; CrossServerFrac not clamped", fres.RemoteServed)
	}

	mrc := rc
	mrc.App = app
	mrc.RPS = 12000
	mrc.Seed = 7
	mres := machine.Run(machine.UManycoreConfig(), mrc)
	// Normalize the timelines' lazily-built name caches (fleet merging
	// already materialized one side's); the series data is what matters.
	fres.PerServer[0].Telemetry.Timeline.Names()
	mres.Telemetry.Timeline.Names()
	if !reflect.DeepEqual(fres.PerServer[0], mres) {
		t.Fatalf("1-server fleet != machine.Run:\nfleet:   %+v\nmachine: %+v", fres.PerServer[0], mres)
	}
	if fres.Latency != mres.Latency {
		t.Fatalf("aggregate latency drifted: %+v vs %+v", fres.Latency, mres.Latency)
	}
}

// TestCoupledFleetDeterministic pins the coupled runner's determinism
// contract: repeat runs are bit-identical, and running replicates inside a
// sweep gives the same results for 1 worker and many.
func TestCoupledFleetDeterministic(t *testing.T) {
	app := homeT(t)
	rc := machine.RunConfig{
		Duration:  60 * sim.Millisecond,
		Warmup:    10 * sim.Millisecond,
		Drain:     500 * sim.Millisecond,
		Obs:       &obs.Options{Trace: true, Metrics: true},
		Telemetry: &telemetry.Options{},
	}
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 3
	fc.LB = "p2c"

	a := Run(fc, app, 20000, rc, 11)
	b := Run(fc, app, 20000, rc, 11)
	stripWall(a, b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeat coupled runs differ")
	}

	reps := []int64{11, 12, 13, 14}
	runReps := func(workers int) []*Result {
		rs := sweep.Map(workers, reps, func(_ int, seed int64) *Result {
			return Run(fc, app, 20000, rc, seed)
		})
		stripWall(rs...)
		return rs
	}
	if !reflect.DeepEqual(runReps(1), runReps(4)) {
		t.Fatal("coupled fleet results depend on sweep worker count")
	}
}

// TestShardWorkerInvariance pins the PDES half of the determinism contract:
// the coupled fleet's result — observability layers included — is identical
// whether the per-server shards advance sequentially or on a concurrent
// worker pool, for any worker count.
func TestShardWorkerInvariance(t *testing.T) {
	app := homeT(t)
	rc := machine.RunConfig{
		Duration:  40 * sim.Millisecond,
		Warmup:    8 * sim.Millisecond,
		Drain:     500 * sim.Millisecond,
		Obs:       &obs.Options{Trace: true, Metrics: true},
		Telemetry: &telemetry.Options{},
	}
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 8
	fc.LB = "least"

	run := func(workers int) *Result {
		c := fc
		c.ShardWorkers = workers
		r := Run(c, app, 48000, rc, 21)
		stripWall(r)
		return r
	}
	want := run(1)
	if want.RemoteServed == 0 {
		t.Fatal("no cross-server traffic; worker-invariance test is vacuous")
	}
	for _, w := range []int{0, 2, 4, 16} {
		if got := run(w); !reflect.DeepEqual(want, got) {
			t.Fatalf("ShardWorkers=%d diverged from sequential execution", w)
		}
	}
}

// TestShardedMatchesSingleEngineReference is the cross-mode half: for small
// fleets, the sharded execution must be byte-identical (via the cache
// codec's canonical encoding) to the single-engine reference execution,
// which runs every shard's events interleaved on one shared engine under
// the same window/mailbox semantics.
func TestShardedMatchesSingleEngineReference(t *testing.T) {
	app := homeT(t)
	rc := machine.RunConfig{Duration: 40 * sim.Millisecond, Warmup: 8 * sim.Millisecond, Drain: 500 * sim.Millisecond}
	for _, servers := range []int{2, 3, 5, 8} {
		fc := DefaultConfig(machine.UManycoreConfig())
		fc.Servers = servers
		fc.LB = "p2c"
		fc.Slowdown = []float64{1, 2}

		run := func(workers int) []byte {
			c := fc
			c.ShardWorkers = workers
			r := Run(c, app, float64(6000*servers), rc, 31)
			b, err := EncodeResult(r)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		ref := run(-1)
		got := run(4)
		if string(ref) != string(got) {
			t.Fatalf("servers=%d: sharded run diverged from single-engine reference:\nref %s\ngot %s", servers, ref, got)
		}
	}
}

// TestCoupledCrossServerRPCs checks the real coupling: with a cross-server
// fraction, peer servers actually serve shipped child RPCs, and the wire
// time is visible in the latency.
func TestCoupledCrossServerRPCs(t *testing.T) {
	app := homeT(t)
	rc := machine.RunConfig{Duration: 100 * sim.Millisecond, Warmup: 20 * sim.Millisecond, Drain: sim.Second}
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 2
	fc.CrossServerFrac = 1
	fc.InterServerRTT = 100 * sim.Microsecond

	res := Run(fc, app, 8000, rc, 5)
	if res.RemoteServed == 0 {
		t.Fatal("no cross-server RPCs served despite CrossServerFrac=1")
	}

	local := fc
	local.CrossServerFrac = 0
	lres := Run(local, app, 8000, rc, 5)
	if lres.RemoteServed != 0 {
		t.Fatalf("local fleet served %d remote RPCs", lres.RemoteServed)
	}
	if res.Latency.Mean <= lres.Latency.Mean {
		t.Fatalf("coupled cross-server RTT not visible: %v vs %v", res.Latency.Mean, lres.Latency.Mean)
	}
}

// TestFleetStitchedTracing checks the distributed-tracing contract end to
// end on a real coupled fleet: every peer-served envelope is stitched under
// its caller's invoke span, cross-server trees reconcile to the picosecond,
// blame splits by (server, stage), and the fabric's self-observability is
// present and consistent with the exported counters.
func TestFleetStitchedTracing(t *testing.T) {
	app := homeT(t)
	rc := machine.RunConfig{
		Duration: 40 * sim.Millisecond,
		Warmup:   8 * sim.Millisecond,
		Drain:    500 * sim.Millisecond,
		Obs:      &obs.Options{Trace: true, Metrics: true},
	}
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 3
	fc.LB = "p2c"
	fc.CrossServerFrac = 1
	fc.InterServerRTT = 100 * sim.Microsecond

	res := Run(fc, app, 18000, rc, 13)
	if res.RemoteServed == 0 {
		t.Fatal("no cross-server RPCs; stitching test is vacuous")
	}
	spans := res.Obs.Spans
	if len(spans) == 0 {
		t.Fatal("traced fleet run recorded no spans")
	}

	stitched := 0
	for i, s := range spans {
		if s.ID != uint64(i)+1 {
			t.Fatalf("span %d has ID %d, want dense IDs", i, s.ID)
		}
		if s.Link != 0 && s.Parent == 0 {
			t.Fatalf("span %d: link-tagged envelope left parentless (link %d, server %d)", s.ID, s.Link, s.Server)
		}
		if s.Parent == 0 {
			continue
		}
		p := &spans[s.Parent-1]
		if s.Req != p.Req {
			t.Fatalf("span %d req %d != parent req %d", s.ID, s.Req, p.Req)
		}
		if s.Server != p.Server {
			// A server boundary inside one tree: must be a stitched remote
			// envelope, contained in the caller's invoke span.
			if s.Stage != obs.StageInvoke || s.Link == 0 || s.Link != p.Link {
				t.Fatalf("span %d crosses servers without a matching link: %+v -> %+v", s.ID, s, p)
			}
			if s.Start < p.Start || (s.End > s.Start && p.End > p.Start && s.End > p.End) {
				t.Fatalf("remote envelope %d [%v,%v] escapes caller invoke [%v,%v]",
					s.ID, s.Start, s.End, p.Start, p.End)
			}
			stitched++
		}
	}
	if stitched == 0 {
		t.Fatal("no stitched cross-server envelopes in the merged trace")
	}

	rep := obs.Analyze(spans, 0.05)
	if rep.Total == 0 {
		t.Fatal("no clean requests to analyze")
	}
	if rep.Residual() != 0 {
		t.Fatalf("cross-server residual = %v, want 0", rep.Residual())
	}
	if len(rep.ByServerStage) != fc.Servers {
		t.Fatalf("ByServerStage has %d servers, want %d", len(rep.ByServerStage), fc.Servers)
	}
	active := 0
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		var sum sim.Time
		for srv := range rep.ByServerStage {
			sum += rep.ByServerStage[srv][st]
		}
		if sum != rep.ByStage[st] {
			t.Fatalf("stage %v: per-server sum %v != ByStage %v", st, sum, rep.ByStage[st])
		}
	}
	for srv := range rep.ByServerStage {
		for _, d := range rep.ByServerStage[srv] {
			if d != 0 {
				active++
				break
			}
		}
	}
	if active < 2 {
		t.Fatalf("critical path touched %d servers, want >= 2 with CrossServerFrac=1", active)
	}

	// Fabric self-observability: Result.Fabric and the pdes.* metrics agree.
	st := res.Fabric
	if st == nil {
		t.Fatal("coupled run carried no fabric stats")
	}
	if st.Rounds == 0 || st.MessagesSent == 0 || st.MessagesSent != st.MessagesDelivered {
		t.Fatalf("fabric stats inconsistent: %+v", st)
	}
	if st.Shards != fc.Servers+1 || len(st.ShardWindows) != st.Shards || len(st.ShardEvents) != st.Shards {
		t.Fatalf("fabric shard accounting: %+v", st)
	}
	var shardEvents uint64
	for _, e := range st.ShardEvents {
		shardEvents += e
	}
	if shardEvents != st.WindowEvents {
		t.Fatalf("per-shard events sum %d != window events %d", shardEvents, st.WindowEvents)
	}
	if u := st.LookaheadUtilization(); u <= 0 || u > 1 {
		t.Fatalf("lookahead utilization = %v", u)
	}
	for name, want := range map[string]float64{
		"pdes.rounds":         float64(st.Rounds),
		"pdes.msgs.sent":      float64(st.MessagesSent),
		"pdes.msgs.delivered": float64(st.MessagesDelivered),
		"pdes.window.events":  float64(st.WindowEvents),
		"pdes.shards":         float64(st.Shards),
		"pdes.lookahead.util": st.LookaheadUtilization(),
	} {
		got, ok := res.Obs.Metrics.Get(name)
		if !ok {
			t.Fatalf("metric %q missing from merged snapshot", name)
		}
		if got != want {
			t.Fatalf("metric %q = %v, want %v (Result.Fabric)", name, got, want)
		}
	}
}

// TestStitchedObsShardWorkerDeterminism pins the acceptance bar for the
// tracing layer: the merged observability payload and the tail exemplars are
// bit-identical for every execution mode — sequential shards, a worker pool,
// and the -1 single-engine reference (whose full Result legitimately differs
// in telemetry vitals, so the comparison targets Obs and the exemplars).
func TestStitchedObsShardWorkerDeterminism(t *testing.T) {
	app := homeT(t)
	rc := machine.RunConfig{
		Duration: 40 * sim.Millisecond,
		Warmup:   8 * sim.Millisecond,
		Drain:    500 * sim.Millisecond,
		Obs:      &obs.Options{Trace: true, Metrics: true},
	}
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 3
	fc.LB = "p2c"
	fc.CrossServerFrac = 1
	fc.InterServerRTT = 100 * sim.Microsecond

	run := func(workers int) *Result {
		c := fc
		c.ShardWorkers = workers
		return Run(c, app, 18000, rc, 13)
	}
	exemplarJSON := func(r *Result) []byte {
		var buf bytes.Buffer
		if err := obs.WriteExemplarsJSON(&buf, obs.Exemplars(r.Obs.Spans, 5)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	ref := run(1)
	if ref.RemoteServed == 0 {
		t.Fatal("no cross-server traffic; determinism test is vacuous")
	}
	wantX := exemplarJSON(ref)
	for _, w := range []int{0, 4, -1} {
		got := run(w)
		if !reflect.DeepEqual(ref.Obs, got.Obs) {
			t.Fatalf("ShardWorkers=%d: observability payload diverged from sequential execution", w)
		}
		if !bytes.Equal(wantX, exemplarJSON(got)) {
			t.Fatalf("ShardWorkers=%d: exemplar JSON diverged", w)
		}
		// The fabric's deterministic aggregates are mode-invariant too (the
		// per-shard slices are an execution detail the reference lacks).
		if got.Fabric.Rounds != ref.Fabric.Rounds ||
			got.Fabric.MessagesSent != ref.Fabric.MessagesSent ||
			got.Fabric.MessagesDelivered != ref.Fabric.MessagesDelivered ||
			got.Fabric.WindowEvents != ref.Fabric.WindowEvents ||
			got.Fabric.AdvanceSum != ref.Fabric.AdvanceSum {
			t.Fatalf("ShardWorkers=%d: fabric aggregates diverged:\nref %+v\ngot %+v", w, ref.Fabric, got.Fabric)
		}
	}
}

// TestRunIndependentAggregates keeps the fast path honest: distinct derived
// per-server seeds, server-order merge, worker-count independence.
func TestRunIndependentAggregates(t *testing.T) {
	app := homeT(t)
	rc := machine.RunConfig{Duration: 100 * sim.Millisecond, Warmup: 20 * sim.Millisecond, Drain: sim.Second}
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 3

	fc.Parallel = 1
	seq := RunIndependent(fc, app, 9000, rc, 1)
	fc.Parallel = 4
	par := RunIndependent(fc, app, 9000, rc, 1)
	stripWall(seq, par)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("RunIndependent depends on worker count")
	}
	if seq.PerServer[0].Latency == seq.PerServer[1].Latency {
		t.Fatal("independent servers appear identical — seeds not varied")
	}
	if seq.Completed == 0 || seq.Completed != seq.PerServer[0].Completed+seq.PerServer[1].Completed+seq.PerServer[2].Completed {
		t.Fatalf("completed aggregation broken: %+v", seq)
	}
}

// TestSkewedFleetP2CBeatsRandom is the headline property of real
// load-balancing policies on a heterogeneous fleet: with one straggler
// server, power-of-two-choices keeps the tail below uniform-random routing,
// which keeps sending the straggler its full share.
func TestSkewedFleetP2CBeatsRandom(t *testing.T) {
	app := homeT(t)
	rc := machine.RunConfig{Duration: 150 * sim.Millisecond, Warmup: 30 * sim.Millisecond, Drain: sim.Second}
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 4
	fc.CrossServerFrac = 0
	fc.Slowdown = []float64{1, 1, 1, 4}

	fc.LB = "p2c"
	p2c := Run(fc, app, 40000, rc, 9)
	fc.LB = "rand"
	rnd := Run(fc, app, 40000, rc, 9)
	if p2c.Balancer != "p2c" || rnd.Balancer != "rand" {
		t.Fatalf("balancer labels: %q %q", p2c.Balancer, rnd.Balancer)
	}
	if p2c.Latency.P99 > rnd.Latency.P99 {
		t.Fatalf("p2c P99 %.1fus worse than uniform-random %.1fus on skewed fleet",
			p2c.Latency.P99, rnd.Latency.P99)
	}
}

// TestBalancerPolicies unit-tests each policy's routing decision. A nil rng
// in the N==1 cases doubles as proof that no policy consumes randomness on
// a one-server fleet.
func TestBalancerPolicies(t *testing.T) {
	depths := []int{3, 0, 2, 1}
	v := View{Servers: 4, Outstanding: func(s int) int { return depths[s] }}
	one := View{Servers: 1, Outstanding: func(int) int { return 99 }}

	rr := &RoundRobin{}
	for i := 0; i < 8; i++ {
		if got := rr.Pick(nil, v); got != i%4 {
			t.Fatalf("round-robin pick %d = %d", i, got)
		}
	}
	if (&RoundRobin{}).Pick(nil, one) != 0 {
		t.Fatal("rr N=1")
	}

	eng := sim.NewEngine(1)
	rng := eng.Rand("test")
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		s := UniformRandom{}.Pick(rng, v)
		if s < 0 || s >= 4 {
			t.Fatalf("rand pick out of range: %d", s)
		}
		seen[s] = true
	}
	if len(seen) != 4 {
		t.Fatalf("uniform-random never hit all servers: %v", seen)
	}
	if (UniformRandom{}).Pick(nil, one) != 0 {
		t.Fatal("rand N=1")
	}

	if got := (LeastOutstanding{}).Pick(nil, v); got != 1 {
		t.Fatalf("least-outstanding = %d, want 1", got)
	}
	tie := View{Servers: 3, Outstanding: func(int) int { return 2 }}
	if got := (LeastOutstanding{}).Pick(nil, tie); got != 0 {
		t.Fatalf("least-outstanding tie-break = %d, want 0", got)
	}
	if (LeastOutstanding{}).Pick(nil, one) != 0 {
		t.Fatal("least N=1")
	}

	for i := 0; i < 256; i++ {
		s := PowerOfTwo{}.Pick(rng, v)
		if s < 0 || s >= 4 {
			t.Fatalf("p2c pick out of range: %d", s)
		}
		// Server 0 is strictly the deepest; whichever peer the second probe
		// lands on wins, so p2c can never route there.
		if s == 0 {
			t.Fatalf("p2c picked the deepest server")
		}
	}
	if (PowerOfTwo{}).Pick(nil, one) != 0 {
		t.Fatal("p2c N=1")
	}
}

func TestParseLB(t *testing.T) {
	for _, name := range Policies() {
		mk, err := ParseLB(name)
		if err != nil {
			t.Fatalf("ParseLB(%q): %v", name, err)
		}
		if got := mk().Name(); got != name {
			t.Fatalf("ParseLB(%q).Name() = %q", name, got)
		}
	}
	if mk, err := ParseLB(""); err != nil || mk().Name() != "rr" {
		t.Fatalf("default policy: %v", err)
	}
	if _, err := ParseLB("bogus"); err == nil {
		t.Fatal("no error for unknown policy")
	}
}
