package fleet

import (
	"testing"

	"umanycore/internal/machine"
	"umanycore/internal/sim"
)

// fleetObsOffBaselineAllocs is the allocs/op of the coupled-fleet run below
// with observability disabled, measured when the distributed-tracing and
// fabric-instrumentation sites were added. The simulation is deterministic,
// so the count is stable run to run; update the constant only when a
// deliberate change to the fleet or machine model moves it.
const fleetObsOffBaselineAllocs = 44819

// TestFleetObsOffZeroAllocDelta extends the machine-level zero-overhead pin
// (internal/machine.TestObsOffZeroAllocDelta) to a sharded coupled fleet: with
// RunConfig.Obs and Telemetry nil, the remote-trace plumbing (link minting,
// peer envelopes) and the fabric instrumentation must reduce to nil-guarded
// branches that allocate nothing.
func TestFleetObsOffZeroAllocDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow")
	}
	app := homeT(t)
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 2
	fc.ShardWorkers = 1
	fc.CrossServerFrac = 1
	rc := machine.RunConfig{Duration: 20 * sim.Millisecond, Warmup: 4 * sim.Millisecond, Drain: 200 * sim.Millisecond}
	r := Run(fc, app, 6000, rc, 42) // warm the engine pool and workload caches
	if r.Obs != nil || r.RemoteServed == 0 {
		t.Fatalf("obs-off run malformed: obs=%v remote=%d", r.Obs, r.RemoteServed)
	}

	got := testing.AllocsPerRun(3, func() {
		Run(fc, app, 6000, rc, 42)
	})
	// 0.5% headroom absorbs sync.Pool/GC jitter (an emptied pool re-grows
	// the engine heap); the disabled layer itself must contribute nothing.
	tolerance := 0.005 * fleetObsOffBaselineAllocs
	delta := got - fleetObsOffBaselineAllocs
	if delta < 0 {
		delta = -delta
	}
	if delta > tolerance {
		t.Fatalf("obs-off fleet run allocates %.0f/op, baseline %d/op (delta %.0f > tolerance %.0f)",
			got, int64(fleetObsOffBaselineAllocs), delta, tolerance)
	}
}
