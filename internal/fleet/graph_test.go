package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"umanycore/internal/machine"
	"umanycore/internal/sim"
	"umanycore/internal/svcgraph"
	"umanycore/internal/workload"
)

// singleSvcApp builds a one-service synthetic app (compute → storage →
// compute, no call edges).
func singleSvcApp(t *testing.T) *workload.App {
	t.Helper()
	app, err := workload.SyntheticApp("exponential", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestGraphColocatedSingleServiceMatchesPlainFleet is the regression anchor:
// a colocated single-service graph adds no cross-server edges and routes
// every root over the full fleet, so its result must be byte-identical (via
// the codec's canonical encoding) to the plain replicated fleet with
// CrossServerFrac = 0 — same machines, same RNG draws, same arrivals.
func TestGraphColocatedSingleServiceMatchesPlainFleet(t *testing.T) {
	app := singleSvcApp(t)
	rc := machine.RunConfig{Duration: 40 * sim.Millisecond, Warmup: 8 * sim.Millisecond, Drain: 500 * sim.Millisecond}
	for _, lb := range []string{"rr", "least"} {
		plain := DefaultConfig(machine.UManycoreConfig())
		plain.Servers = 4
		plain.LB = lb
		plain.CrossServerFrac = 0

		graph := plain
		graph.Graph = svcgraph.Colocated(len(app.Catalog.Services), plain.Servers)

		encode := func(fc Config) []byte {
			r := Run(fc, app, 24000, rc, 17)
			b, err := EncodeResult(r)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		if p, g := encode(plain), encode(graph); !bytes.Equal(p, g) {
			t.Fatalf("lb=%s: colocated single-service graph diverged from plain fleet:\nplain %s\ngraph %s", lb, p, g)
		}
	}
}

// graphReplayInputs builds the battery's fixture: a synthesized trace round-
// tripped through the wire format, bound to the SocialNetwork catalog, and a
// spread placement so most call edges cross servers.
func graphReplayInputs(t *testing.T) (*workload.App, *svcgraph.Spec, *svcgraph.Replay) {
	t.Helper()
	app := homeT(t)
	var buf bytes.Buffer
	if err := svcgraph.WriteTrace(&buf, svcgraph.Synthesize(9, 400)); err != nil {
		t.Fatal(err)
	}
	tr, err := svcgraph.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Bind(app, 20000)
	if err != nil {
		t.Fatal(err)
	}
	return app, svcgraph.Spread(len(app.Catalog.Services), 4), rep
}

// TestGraphReplayShardWorkerInvariance is the tentpole determinism battery:
// a placed service graph replaying an externally round-tripped trace through
// the coupled fleet produces identical results — and identical canonical
// bytes — for the single-engine reference and any shard worker count.
func TestGraphReplayShardWorkerInvariance(t *testing.T) {
	app, spec, rep := graphReplayInputs(t)
	rc := machine.RunConfig{
		Duration: 30 * sim.Millisecond,
		Warmup:   5 * sim.Millisecond,
		Drain:    500 * sim.Millisecond,
		Replay:   rep,
	}
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 4
	fc.LB = "rr"
	fc.Graph = spec

	run := func(workers int) (*Result, []byte) {
		c := fc
		c.ShardWorkers = workers
		r := Run(c, app, 0, rc, 23)
		stripWall(r)
		b, err := EncodeResult(r)
		if err != nil {
			t.Fatal(err)
		}
		return r, b
	}
	ref, refBytes := run(-1)
	if ref.RemoteServed == 0 {
		t.Fatal("spread placement shipped no cross-server RPCs; battery is vacuous")
	}
	if ref.Submitted == 0 || ref.Submitted != uint64(rep.Replayed(rc.Duration)) {
		t.Fatalf("submitted %d, want the %d in-window trace arrivals", ref.Submitted, rep.Replayed(rc.Duration))
	}
	for _, w := range []int{1, 4} {
		got, gotBytes := run(w)
		// The fabric's deterministic aggregates match the reference; the
		// per-shard slices are an execution detail the reference lacks, so
		// they (like the codec) stay out of the structural comparison.
		if got.Fabric.Rounds != ref.Fabric.Rounds ||
			got.Fabric.MessagesSent != ref.Fabric.MessagesSent ||
			got.Fabric.MessagesDelivered != ref.Fabric.MessagesDelivered ||
			got.Fabric.WindowEvents != ref.Fabric.WindowEvents ||
			got.Fabric.AdvanceSum != ref.Fabric.AdvanceSum {
			t.Fatalf("ShardWorkers=%d: fabric aggregates diverged:\nref %+v\ngot %+v", w, ref.Fabric, got.Fabric)
		}
		refNoFab, gotNoFab := *ref, *got
		refNoFab.Fabric, gotNoFab.Fabric = nil, nil
		if !reflect.DeepEqual(&refNoFab, &gotNoFab) {
			t.Fatalf("ShardWorkers=%d replay diverged from single-engine reference", w)
		}
		if !bytes.Equal(refBytes, gotBytes) {
			t.Fatalf("ShardWorkers=%d canonical bytes diverged:\nref %s\ngot %s", w, refBytes, gotBytes)
		}
	}
}

// TestGraphRoutesRootsToHosts checks placement-aware dispatch: with the root
// service pinned to one server, only that server ever submits roots.
func TestGraphRoutesRootsToHosts(t *testing.T) {
	app := homeT(t)
	n := len(app.Catalog.Services)
	spec := svcgraph.Spread(n, 2)
	// Pin the root to server 1 only; spread the rest as usual.
	for svc := range spec.Placement {
		if svc == app.Root {
			spec.Placement[svc] = []int{1}
		}
	}
	// Server 0 must still host something; Spread guarantees it via svc%2==0
	// services other than the root (HomeT's root is not the only even ID).
	rc := machine.RunConfig{Duration: 30 * sim.Millisecond, Warmup: 5 * sim.Millisecond, Drain: 500 * sim.Millisecond}
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 2
	fc.LB = "least"
	fc.Graph = spec
	res := Run(fc, app, 8000, rc, 3)
	if res.PerServer[0].Submitted != 0 {
		t.Fatalf("server 0 submitted %d roots despite not hosting the root service", res.PerServer[0].Submitted)
	}
	if res.PerServer[1].Submitted == 0 {
		t.Fatal("server 1 submitted nothing")
	}
	if res.RemoteServed == 0 {
		t.Fatal("no cross-server edges despite spread placement")
	}
}

// TestGraphValidationPanics pins the fail-fast contract: invalid placements
// and unsupported combinations abort before any simulation runs.
func TestGraphValidationPanics(t *testing.T) {
	app := homeT(t)
	rc := machine.RunConfig{Duration: 10 * sim.Millisecond}
	expectPanic := func(name, want string, fn func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
				err, isErr := r.(error)
				if !isErr || !strings.Contains(err.Error(), want) {
					t.Fatalf("%s: panic %v, want %q", name, r, want)
				}
			}
		}()
		fn()
	}
	expectPanic("short placement", "placement covers", func() {
		fc := DefaultConfig(machine.UManycoreConfig())
		fc.Servers = 2
		fc.Graph = &svcgraph.Spec{Placement: [][]int{{0}}}
		Run(fc, app, 1000, rc, 1)
	})
	expectPanic("idle server", "hosts no service", func() {
		fc := DefaultConfig(machine.UManycoreConfig())
		fc.Servers = 3
		fc.Graph = svcgraph.Spread(len(app.Catalog.Services), 2)
		Run(fc, app, 1000, rc, 1)
	})
	expectPanic("independent fleet", "coupled Run", func() {
		fc := DefaultConfig(machine.UManycoreConfig())
		fc.Servers = 2
		fc.Graph = svcgraph.Colocated(len(app.Catalog.Services), 2)
		RunIndependent(fc, app, 1000, rc, 1)
	})
	expectPanic("independent replay", "whole trace", func() {
		fc := DefaultConfig(machine.UManycoreConfig())
		fc.Servers = 2
		r := rc
		r.Replay = &svcgraph.Replay{Arrivals: []svcgraph.Arrival{{Root: app.Root}}, Records: 1}
		RunIndependent(fc, app, 1000, r, 1)
	})
}
