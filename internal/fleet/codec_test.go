package fleet

import (
	"bytes"
	"reflect"
	"testing"

	"umanycore/internal/machine"
	"umanycore/internal/sim"
)

func codecFleetRun(t *testing.T) *Result {
	t.Helper()
	fc := DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 2
	rc := machine.RunConfig{Duration: 80 * sim.Millisecond, Warmup: 16 * sim.Millisecond, Drain: sim.Second}
	r := Run(fc, homeT(t), 6000, rc, 3)
	// WallSeconds and Fabric are outside the codec's domain (wall-clock /
	// execution diagnostics); decoded results carry the zero values, so the
	// round-trip fixture does too.
	r.WallSeconds = 0
	r.Fabric = nil
	return r
}

func TestFleetResultCodecRoundTrip(t *testing.T) {
	r := codecFleetRun(t)
	b, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip changed the result:\n cold: %+v\n warm: %+v", r, got)
	}
	b2, err := EncodeResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("re-encode of decoded result changed bytes")
	}
	if len(got.PerServer) != 2 {
		t.Fatalf("per-server results lost: %d", len(got.PerServer))
	}
}

func TestFleetResultCodecRejects(t *testing.T) {
	if _, err := EncodeResult(nil); err == nil {
		t.Fatal("nil result encoded")
	}
	if _, err := DecodeResult([]byte("{")); err == nil {
		t.Fatal("truncated JSON decoded")
	}
	if _, err := DecodeResult([]byte(`{"per_server":["nope"]}`)); err == nil {
		t.Fatal("bad per-server entry decoded")
	}
}

// FuzzParseLB: no input may panic, every Policies() name (and the aliases)
// must parse to a working factory, and parse success must be consistent with
// itself across calls.
func FuzzParseLB(f *testing.F) {
	for _, name := range Policies() {
		f.Add(name)
	}
	for _, name := range []string{"", "roundrobin", "random", "uniform", "lor", "jsq", "pow2", "two", "RR", "p2c ", "p2c\x00", "nonsense", "least\n"} {
		f.Add(name)
	}
	f.Fuzz(func(t *testing.T, name string) {
		mk, err := ParseLB(name)
		_, err2 := ParseLB(name)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("ParseLB(%q) flapped: %v vs %v", name, err, err2)
		}
		if err != nil {
			if mk != nil {
				t.Fatalf("ParseLB(%q) returned factory with error", name)
			}
			return
		}
		// A parsed factory must yield fresh, usable balancers.
		b1, b2 := mk(), mk()
		if b1 == nil || b2 == nil {
			t.Fatalf("ParseLB(%q) factory returned nil balancer", name)
		}
	})
}

func TestParseLBKnownPolicies(t *testing.T) {
	for _, name := range Policies() {
		if _, err := ParseLB(name); err != nil {
			t.Errorf("ParseLB(%q): %v", name, err)
		}
	}
	if _, err := ParseLB("definitely-not-a-policy"); err == nil {
		t.Error("unknown policy parsed")
	}
}
