package fleet

import (
	"fmt"
	"math/rand"
)

// View is the load balancer's picture of the fleet at dispatch time: the
// server count and each server's outstanding root requests (sent minus
// responded — what a real front-end tracks without seeing server queues).
type View struct {
	Servers     int
	Outstanding func(s int) int
}

// Balancer routes one arriving request to a server. Pick runs inside the
// simulation's single-threaded event loop; implementations may keep state
// (round-robin's counter) but must draw randomness only from rng — the
// engine's dedicated "fleet-lb" stream — so runs stay deterministic. With
// one server every policy must return 0 without consuming rng, which keeps
// a 1-server fleet bit-identical to a plain machine.Run.
type Balancer interface {
	Name() string
	Pick(rng *rand.Rand, v View) int
}

// RoundRobin cycles through servers in order — the deterministic baseline
// policy (and the default). Stateful: use a fresh value per run.
type RoundRobin struct{ next int }

// Name implements Balancer.
func (b *RoundRobin) Name() string { return "rr" }

// Pick implements Balancer.
func (b *RoundRobin) Pick(_ *rand.Rand, v View) int {
	if v.Servers <= 1 {
		return 0
	}
	s := b.next
	b.next = (b.next + 1) % v.Servers
	return s
}

// UniformRandom routes each request to a uniformly random server — the
// memoryless policy real DNS/anycast front-ends approximate, and the model
// behind the old independent-server approximation.
type UniformRandom struct{}

// Name implements Balancer.
func (UniformRandom) Name() string { return "rand" }

// Pick implements Balancer.
func (UniformRandom) Pick(rng *rand.Rand, v View) int {
	if v.Servers <= 1 {
		return 0
	}
	return rng.Intn(v.Servers)
}

// LeastOutstanding routes to the server with the fewest outstanding
// requests (join-shortest-queue on the balancer's view), breaking ties by
// lowest index so the choice is deterministic.
type LeastOutstanding struct{}

// Name implements Balancer.
func (LeastOutstanding) Name() string { return "least" }

// Pick implements Balancer.
func (LeastOutstanding) Pick(_ *rand.Rand, v View) int {
	if v.Servers <= 1 {
		return 0
	}
	best, depth := 0, v.Outstanding(0)
	for s := 1; s < v.Servers; s++ {
		if d := v.Outstanding(s); d < depth {
			best, depth = s, d
		}
	}
	return best
}

// PowerOfTwo samples two distinct servers and routes to the one with fewer
// outstanding requests — the classic power-of-two-choices policy that gets
// most of join-shortest-queue's benefit from two probes. Ties go to the
// first sample.
type PowerOfTwo struct{}

// Name implements Balancer.
func (PowerOfTwo) Name() string { return "p2c" }

// Pick implements Balancer.
func (PowerOfTwo) Pick(rng *rand.Rand, v View) int {
	if v.Servers <= 1 {
		return 0
	}
	a := rng.Intn(v.Servers)
	b := rng.Intn(v.Servers - 1)
	if b >= a {
		b++
	}
	if v.Outstanding(b) < v.Outstanding(a) {
		return b
	}
	return a
}

// Policies lists the built-in policy names in presentation order.
func Policies() []string { return []string{"rr", "rand", "least", "p2c"} }

// ParseLB maps a policy name to a balancer factory (fresh instance per run,
// so stateful policies never share state across parallel sweep workers).
// The empty string selects round-robin.
func ParseLB(name string) (func() Balancer, error) {
	switch name {
	case "", "rr", "roundrobin":
		return func() Balancer { return &RoundRobin{} }, nil
	case "rand", "random", "uniform":
		return func() Balancer { return UniformRandom{} }, nil
	case "least", "lor", "jsq":
		return func() Balancer { return LeastOutstanding{} }, nil
	case "p2c", "pow2", "two":
		return func() Balancer { return PowerOfTwo{} }, nil
	}
	return nil, fmt.Errorf("fleet: unknown load-balancer policy %q (want rr|rand|least|p2c)", name)
}
