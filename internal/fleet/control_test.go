package fleet

import (
	"reflect"
	"testing"

	"umanycore/internal/control"
	"umanycore/internal/machine"
	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/sweep"
	"umanycore/internal/workload"
)

// overloadFleet is a fleet built to reject: tiny hardware RQs and NIC
// buffers on small machines, driven far past capacity by the control tests.
func overloadFleet(servers int) Config {
	cfg := machine.UManycoreConfig()
	cfg.Cores = 16
	cfg.Domains = 2
	cfg.RQCapacity = 4
	cfg.NICBufCapacity = 4
	cfg.LeafSpineCfg.Pods = 1
	cfg.LeafSpineCfg.LeavesPerPod = 2
	fc := DefaultConfig(cfg)
	fc.Servers = servers
	fc.CrossServerFrac = 0.25
	return fc
}

func synthApp(t *testing.T) *workload.App {
	t.Helper()
	app, err := workload.SyntheticApp("deterministic", 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func fullControl() *control.Config {
	return &control.Config{
		MaxRetries:    3,
		RetryBase:     50 * sim.Microsecond,
		RetryCap:      400 * sim.Microsecond,
		RetryJitter:   0.5,
		HedgeAfter:    2 * sim.Millisecond,
		ShedProb:      0.5,
		ShedSLOMicros: 500,
		ShedWindow:    sim.Millisecond,
	}
}

// TestControlChaosTermination is the retry loop's liveness/accounting
// property test: under heavy overload with retries, jittered backoff,
// hedging and burn-triggered shedding all enabled, every submitted client
// root terminates inside the horizon (no livelock, no lost roots) and the
// invocation counts reconcile exactly — at the client level
// (Attempts == Submitted + Retries + Hedges - Shed) and against the
// per-attempt accounting the servers keep (every dispatched attempt is a
// server-side root submission). Replicates must be identical for 1 sweep
// worker and many.
func TestControlChaosTermination(t *testing.T) {
	app := synthApp(t)
	fc := overloadFleet(3)
	fc.Control = fullControl()
	rc := machine.RunConfig{Duration: 60 * sim.Millisecond, Warmup: 10 * sim.Millisecond, Drain: sim.Second}

	check := func(r *Result, seed int64) {
		c := r.Control
		if c == nil {
			t.Fatal("controlled run returned no control stats")
		}
		if c.Submitted == 0 {
			t.Fatal("no load submitted; test is vacuous")
		}
		if c.Unfinished != 0 {
			t.Fatalf("seed %d: %d roots never terminated (livelock or lost response)", seed, c.Unfinished)
		}
		if c.Completed+c.Rejected != c.Submitted {
			t.Fatalf("seed %d: submitted %d != completed %d + rejected %d", seed, c.Submitted, c.Completed, c.Rejected)
		}
		if c.Attempts != c.Submitted+c.Retries+c.Hedges-c.Shed {
			t.Fatalf("seed %d: attempt identity violated: %+v", seed, c)
		}
		if r.Unfinished == 0 && r.Submitted != c.Attempts {
			t.Fatalf("seed %d: servers saw %d roots, dispatcher sent %d attempts", seed, r.Submitted, c.Attempts)
		}
		if c.Retries == 0 || c.Shed == 0 {
			t.Fatalf("seed %d: overload exercised no retries (%d) or sheds (%d); test is vacuous", seed, c.Retries, c.Shed)
		}
	}

	seeds := []int64{3, 4, 5}
	runReps := func(workers int) []*Result {
		rs := sweep.Map(workers, seeds, func(_ int, seed int64) *Result {
			return Run(fc, app, 90000, rc, seed)
		})
		stripWall(rs...)
		return rs
	}
	one := runReps(1)
	for i, r := range one {
		check(r, seeds[i])
	}
	if !reflect.DeepEqual(one, runReps(4)) {
		t.Fatal("controlled fleet results depend on sweep worker count")
	}
}

// TestControlMetrics pins the control-loop self-observability: with metrics
// on, a controlled run's merged snapshot carries control.{retries,hedges,
// shed,scale_ups} counters and a control.active_servers gauge that agree
// with the deterministic client-level stats.
func TestControlMetrics(t *testing.T) {
	app := synthApp(t)
	fc := overloadFleet(3)
	fc.Control = fullControl()
	rc := machine.RunConfig{
		Duration: 60 * sim.Millisecond, Warmup: 10 * sim.Millisecond,
		Drain: sim.Second, Obs: &obs.Options{Metrics: true},
	}
	r := Run(fc, app, 90000, rc, 3)
	c := r.Control
	if c == nil || r.Obs == nil {
		t.Fatal("controlled run missing control stats or obs payload")
	}
	for name, want := range map[string]float64{
		"control.retries":        float64(c.Retries),
		"control.hedges":         float64(c.Hedges),
		"control.shed":           float64(c.Shed),
		"control.scale_ups":      float64(c.ScaleUps),
		"control.active_servers": float64(c.ActiveServers),
	} {
		got, ok := r.Obs.Metrics.Get(name)
		if !ok {
			t.Fatalf("metric %q missing from merged snapshot", name)
		}
		if got != want {
			t.Fatalf("metric %q = %v, want %v (Result.Control)", name, got, want)
		}
	}
	if v, _ := r.Obs.Metrics.Get("control.retries"); v == 0 {
		t.Fatal("overload drove no retries; test is vacuous")
	}
}

// TestControlShardWorkerInvariance pins the tentpole's determinism claim:
// with every control loop live (retry, hedge, shed, autoscale), the coupled
// run is byte-identical through the cache codec for the single-engine
// reference and for 1 and 4 shard workers — so cached control cells are
// mode-independent.
func TestControlShardWorkerInvariance(t *testing.T) {
	app := synthApp(t)
	fc := overloadFleet(4)
	fc.Control = fullControl()
	fc.Control.ScaleMin = 2
	fc.Control.ScaleP99Micros = 2000
	fc.Control.ScaleLag = 2 * sim.Millisecond
	fc.Control.ScaleWindow = 5 * sim.Millisecond
	rc := machine.RunConfig{Duration: 50 * sim.Millisecond, Warmup: 10 * sim.Millisecond, Drain: sim.Second}

	run := func(workers int) []byte {
		c := fc
		c.ShardWorkers = workers
		r := Run(c, app, 80000, rc, 13)
		b, err := EncodeResult(r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ref := run(-1)
	for _, w := range []int{1, 4} {
		if got := run(w); string(ref) != string(got) {
			t.Fatalf("ShardWorkers=%d diverged from single-engine reference:\nref %s\ngot %s", w, ref, got)
		}
	}
	// The invariance must cover live control loops, not idle ones.
	r, err := DecodeResult(ref)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Control
	if c == nil || c.Retries == 0 || c.Shed == 0 || c.ScaleUps == 0 {
		t.Fatalf("invariance test exercised nothing: %+v", c)
	}
}

// TestControlCodecRoundTrip pins the satellite bugfix: control stats — shed
// and reject counters included — survive the sweepcache cell codec, so a
// warm cache cell reports the same goodput as the run that produced it.
func TestControlCodecRoundTrip(t *testing.T) {
	app := synthApp(t)
	fc := overloadFleet(3)
	fc.Control = fullControl()
	rc := machine.RunConfig{Duration: 40 * sim.Millisecond, Warmup: 8 * sim.Millisecond, Drain: sim.Second}
	r := Run(fc, app, 90000, rc, 17)
	if r.Control == nil || r.Control.Rejected == 0 || r.Control.Shed == 0 {
		t.Fatalf("run produced no rejections to round-trip: %+v", r.Control)
	}

	b, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Control == nil {
		t.Fatal("decode dropped control stats — cached cells would zero shed counts")
	}
	if !reflect.DeepEqual(r.Control, dec.Control) {
		t.Fatalf("control stats mutated in round trip:\nin  %+v\nout %+v", r.Control, dec.Control)
	}
	b2, err := EncodeResult(dec)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("re-encoding a decoded result is not byte-identical")
	}
}

// TestControlRequiresCoupledFleet pins the API guards: control loops need a
// dispatcher, which one-server and independent runs do not have.
func TestControlRequiresCoupledFleet(t *testing.T) {
	app := synthApp(t)
	fc := overloadFleet(3)
	fc.Control = fullControl()

	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s with control config did not panic", name)
			}
		}()
		fn()
	}
	one := fc
	one.Servers = 1
	expectPanic("1-server Run", func() { Run(one, app, 1000, machine.RunConfig{Duration: sim.Millisecond}, 1) })
	expectPanic("RunIndependent", func() { RunIndependent(fc, app, 1000, machine.RunConfig{Duration: sim.Millisecond}, 1) })
}

// TestControlDisabledIsInert: a nil or zero Control config must leave the
// coupled run byte-identical to a config-less run.
func TestControlDisabledIsInert(t *testing.T) {
	app := synthApp(t)
	fc := overloadFleet(3)
	rc := machine.RunConfig{Duration: 30 * sim.Millisecond, Warmup: 5 * sim.Millisecond, Drain: 500 * sim.Millisecond}
	base := Run(fc, app, 60000, rc, 23)
	zero := fc
	zero.Control = &control.Config{}
	got := Run(zero, app, 60000, rc, 23)
	stripWall(base, got)
	if !reflect.DeepEqual(base, got) {
		t.Fatal("zero control config perturbed the run")
	}
}
