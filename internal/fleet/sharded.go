package fleet

import (
	"fmt"
	"time"

	"umanycore/internal/control"
	"umanycore/internal/machine"
	"umanycore/internal/obs"
	"umanycore/internal/pdes"
	"umanycore/internal/sim"
	"umanycore/internal/telemetry"
	"umanycore/internal/workload"
)

// runCoupled is the multi-server coupled fleet on the conservative-lookahead
// PDES fabric (internal/pdes).
//
// Shard layout: shard 0 is the front-end dispatcher — the arrival process
// and the balancer live there — and shard s+1 is server s. The lookahead is
// half the inter-server RTT, the one-way wire time, which bounds every
// cross-shard interaction:
//
//   - a dispatched root pays the front-end→server hop (one wire delay),
//   - a cross-server child RPC departs at out + RTT/2 (sendChildRemote has
//     already paid the outbound half when it hands the fleet the request),
//   - its response ships back at done + RTT/2.
//
// So every message is timestamped at least one lookahead after its sender's
// clock, and the fabric's window invariant — no shard ever receives an
// event in its past — holds without any special-casing.
//
// Determinism contract: the result is bit-identical for every ShardWorkers
// value, including the -1 single-engine reference, because (a) each server
// draws all its randomness from a sim.Streams bundle seeded by server index
// (never from its hosting engine), (b) the dispatcher's arrival and
// balancer streams come from the shard-0 engine, which is seeded with the
// run seed exactly like the reference's shared engine, and (c) inter-shard
// messages are delivered in the canonical (time, source shard, send seq)
// order in every mode. The balancer's queue views are snapshotted at window
// barriers, so routing decisions see peer state at most one wire delay
// stale — the same information lag a physical front-end has.
func runCoupled(fc Config, app *workload.App, totalRPS float64, rc machine.RunConfig, seed int64) *Result {
	start := time.Now()
	n := fc.Servers
	cross := fc.crossFrac()
	rc = rc.Normalized()
	rc.App = app
	rc.RPS = totalRPS / float64(n)
	rc.Seed = seed
	horizon := rc.Duration + rc.Drain

	// Lookahead = one wire direction. The fabric needs it strictly positive:
	// a fleet with a zero RTT has no minimum cross-server latency to exploit.
	lookahead := fc.InterServerRTT / 2
	if lookahead <= 0 {
		panic(fmt.Sprintf("fleet: coupled multi-server fleets need InterServerRTT >= 2ps (got %v); it is the PDES lookahead", fc.InterServerRTT))
	}

	// Shard 0 (dispatcher) runs on an engine seeded with the run seed, so
	// its "arrivals" and "fleet-lb" streams match the single-engine
	// reference's byte for byte. Server shards get derived seeds — only
	// their event heaps care; server randomness comes from Streams bundles.
	var net pdes.Net
	dispEng := sim.NewEngine(seed)
	engs := make([]*sim.Engine, n)
	distinct := []*sim.Engine{dispEng}
	if fc.ShardWorkers < 0 {
		net = pdes.NewSingleEngine(lookahead, dispEng, n+1)
		for s := range engs {
			engs[s] = dispEng
		}
	} else {
		f := pdes.NewFabric(lookahead, fc.ShardWorkers)
		f.AddShard(dispEng)
		for s := range engs {
			engs[s] = sim.NewEngine(sim.DeriveSeed(seed, int64(s)))
			f.AddShard(engs[s])
			distinct = append(distinct, engs[s])
		}
		net = f
	}

	// Build the servers. Setup mirrors machine.Run — machine, measurement
	// window, observability, telemetry — except that every machine gets a
	// seed-derived stream bundle (engine-independent randomness) and the
	// engine-level vitals are skipped: which engine hosts which events is an
	// execution detail here, not simulation content, and recording it would
	// make the sharded and reference runs observably different.
	machines := make([]*machine.Machine, n)
	rngs := make([]*sim.Streams, n)
	cols := make([]*obs.Collector, n)
	regs := make([]*obs.Registry, n)
	teles := make([]*telemetry.Sampler, n)
	for s := range machines {
		mcfg := fc.serverConfig(s, cross)
		var m *machine.Machine
		switch {
		case fc.Graph != nil:
			// Graph mode: this server hosts only its placed services; call
			// edges to services living elsewhere ship through the fabric.
			m = machine.NewPlaced(engs[s], mcfg, app.Catalog, fc.Graph.HostedOn(s))
		case len(rc.Mix) > 0:
			m = machine.NewMix(engs[s], mcfg, app.Catalog, rc.Mix)
		default:
			m = machine.New(engs[s], mcfg, app)
		}
		rngs[s] = sim.NewStreams(sim.DeriveSeed(seed, int64(s)))
		m.SetRNG(rngs[s])
		m.SetMeasureFrom(rc.Warmup)

		var col *obs.Collector
		var reg *obs.Registry
		if rc.Obs != nil {
			if rc.Obs.Trace {
				col = obs.NewCollector()
			}
			if rc.Obs.Metrics {
				reg = obs.NewRegistry()
			}
		}
		var tele *telemetry.Sampler
		if rc.Telemetry != nil {
			if reg == nil {
				reg = obs.NewRegistry()
			}
			topt := *rc.Telemetry
			if fc.ShardWorkers < 0 {
				// Single-engine reference: every server shares one engine, so
				// per-server vitals are not attributable — suppress them.
				topt.NoEngineVitals = true
			} else {
				// Each server owns its engine; namespace its vitals so the
				// merged fleet timeline keeps them apart (server3.sim.events).
				topt.VitalsPrefix = fmt.Sprintf("server%d.", s)
			}
			tele = telemetry.Start(engs[s], reg, horizon, topt)
		}
		if col != nil || reg != nil {
			m.EnableObs(col, reg)
			m.EnableTelemetry(tele)
		}
		machines[s], cols[s], regs[s], teles[s] = m, col, reg, tele
	}

	// Front-end control loop (retry/backoff, hedging, shedding, autoscaling
	// — see internal/control). The controller lives on the dispatcher shard;
	// everything it learns from servers arrives as coupling messages, so its
	// decisions are bit-identical for every ShardWorkers value.
	var ctl *control.Controller
	if fc.controlOn() {
		ctl = control.New(dispEng, *fc.Control, n, rc.Warmup, seed)
		if fc.Control.Sheds() {
			// Burn-triggered shedding: each server runs a dedicated sampler
			// whose only rule is the slo.burn budget burn against the control
			// config's objective. Its fire/resolve edges (evaluated at tick
			// boundaries) ship to the dispatcher one wire delay later — the
			// same information lag any front-end signal has. The sampler uses
			// a private empty registry and is never attached to the Result,
			// so shedding works — and results stay cacheable — with or
			// without user telemetry.
			rule := telemetry.Rule{
				Name: control.ShedRuleName, Kind: telemetry.RuleBurnRate,
				SLOMicros: fc.Control.ShedSLOMicros, Budget: 0.01, Threshold: 1,
			}
			for s := range machines {
				srv := s
				eng := engs[s]
				shed := telemetry.Start(eng, obs.NewRegistry(), horizon, telemetry.Options{
					Interval:       fc.Control.ShedWindow,
					Capacity:       64,
					Rules:          []telemetry.Rule{rule},
					NoEngineVitals: true,
					OnAlert: func(a telemetry.Alert) {
						if a.Rule != control.ShedRuleName {
							return
						}
						firing := a.Firing
						net.Send(srv+1, 0, eng.Now()+lookahead, func() {
							ctl.BurnEdge(srv, firing)
						})
					},
				})
				machines[s].EnableControlTelemetry(shed)
			}
		}
	}

	// Couple the servers. In graph mode a child RPC to a non-local service
	// ships to a server hosting the callee (uniform over its hosts when
	// replicated); otherwise a child RPC that draws the cross-server lottery
	// ships to a uniformly random peer. Either way the message is
	// timestamped when it has crossed the wire and the peer's response
	// retraces the path. Peer choice draws from the source server's own
	// bundle, so it is engine-independent like everything else the server
	// randomizes.
	if fc.Graph != nil || cross > 0 {
		for s := range machines {
			src := s
			peerRng := rngs[src].Rand("fleet-peer")
			var linkSeq uint64
			machines[src].SetRemoteSender(func(svcID int, demand float64, depart sim.Time, traced bool, respond func(done sim.Time)) uint64 {
				var p int
				if fc.Graph != nil {
					// sendChild only ships non-local callees, so the host
					// list never contains src.
					hosts := fc.Graph.Hosts(svcID)
					p = hosts[0]
					if len(hosts) > 1 {
						p = hosts[peerRng.Intn(len(hosts))]
					}
				} else {
					p = peerRng.Intn(n - 1)
					if p >= src {
						p++
					}
				}
				// Traced sends get a fleet-unique remote-link ID (source
				// server in the high bits, per-server send ordinal below):
				// the caller tags its invoke span with it, the peer tags the
				// served subtree's envelope, and obs.Merge stitches the two
				// into one tree. Minted in the server's deterministic send
				// order, so links are identical for every shard-worker count.
				var link uint64
				if traced {
					linkSeq++
					link = uint64(src+1)<<40 | linkSeq
				}
				peer := machines[p]
				net.Send(src+1, p+1, depart, func() {
					peer.SubmitRemote(svcID, demand, link, func(done sim.Time) {
						// respond computes the return-path timing from done
						// alone, so running it one wire delay later on the
						// origin shard reproduces the reference exactly.
						net.Send(p+1, src+1, done+lookahead, func() { respond(done) })
					})
				})
				return link
			})
		}
	}

	// Fabric self-observability: the PDES coupling exports its own counters
	// through a dedicated metrics registry (um_pdes_* on /metrics) and, when
	// telemetry is on, a sampler on the dispatcher engine streams them as
	// virtual-time series. Instruments update at window barriers from the
	// fabric's deterministic aggregates (throttled to the telemetry
	// interval), so everything exported is identical for every ShardWorkers
	// value including the -1 reference.
	var fabReg *obs.Registry
	var fabTele *telemetry.Sampler
	var updateFabric func()
	var fabTick sim.Time
	if (rc.Obs != nil && rc.Obs.Metrics) || rc.Telemetry != nil {
		fabReg = obs.NewRegistry()
		fabReg.Gauge("pdes.shards").Set(float64(n + 1))
		fabReg.Gauge("pdes.lookahead.us").Set(lookahead.Micros())
		rounds := fabReg.Counter("pdes.rounds")
		sent := fabReg.Counter("pdes.msgs.sent")
		delivered := fabReg.Counter("pdes.msgs.delivered")
		events := fabReg.Counter("pdes.window.events")
		util := fabReg.Gauge("pdes.lookahead.util")
		epw := fabReg.Gauge("pdes.window.events.mean")
		var prev pdes.Stats
		updateFabric = func() {
			st := net.Stats()
			rounds.Add(float64(st.Rounds - prev.Rounds))
			sent.Add(float64(st.MessagesSent - prev.MessagesSent))
			delivered.Add(float64(st.MessagesDelivered - prev.MessagesDelivered))
			events.Add(float64(st.WindowEvents - prev.WindowEvents))
			util.Set(st.LookaheadUtilization())
			epw.Set(st.EventsPerWindow())
			prev = st
		}
		if ctl != nil {
			// Control-loop self-observability rides the same registry and
			// barrier cadence: counters delta-fed from the controller's
			// deterministic client-level accounting, so control.* values
			// are identical for every ShardWorkers value too.
			retries := fabReg.Counter("control.retries")
			hedges := fabReg.Counter("control.hedges")
			shed := fabReg.Counter("control.shed")
			scaleUps := fabReg.Counter("control.scale_ups")
			active := fabReg.Gauge("control.active_servers")
			var prevCtl control.Stats
			updatePDES := updateFabric
			updateFabric = func() {
				updatePDES()
				cs := ctl.Peek()
				retries.Add(float64(cs.Retries - prevCtl.Retries))
				hedges.Add(float64(cs.Hedges - prevCtl.Hedges))
				shed.Add(float64(cs.Shed - prevCtl.Shed))
				scaleUps.Add(float64(cs.ScaleUps - prevCtl.ScaleUps))
				active.Set(float64(cs.ActiveServers))
				prevCtl = cs
			}
		}
		if rc.Telemetry != nil {
			topt := *rc.Telemetry
			topt.NoEngineVitals = true
			topt.Rules = nil
			fabTele = telemetry.Start(dispEng, fabReg, horizon, topt)
			fabTick = topt.Interval
			if fabTick <= 0 {
				fabTick = sim.Millisecond
			}
		}
	}

	// Front-end dispatcher (shard 0): one open-loop arrival process at the
	// total rate; each arrival is routed by the balancer and ships to its
	// server one wire delay later. The balancer's view of server queues is
	// exact for what the dispatcher itself routed and barrier-snapshotted
	// for what the servers have answered — i.e. at most one window stale.
	bal := fc.balancer()
	lbRng := dispEng.Rand("fleet-lb")
	routed := make([]int, n)
	responded := make([]uint64, n)
	view := View{
		Servers:     n,
		Outstanding: func(s int) int { return routed[s] - int(responded[s]) },
	}
	if ctl != nil {
		// The controller routes through the same balancer and view, narrowed
		// to the autoscaler's active prefix; each attempt's outcome returns
		// to the dispatcher shard at the response's NIC egress plus one wire
		// delay — the path a real front-end's acks take.
		ctl.Bind(
			func() int {
				v := view
				v.Servers = ctl.ActiveServers()
				return bal.Pick(lbRng, v)
			},
			func(s int, onResp func(rejected bool)) {
				routed[s]++
				target := machines[s]
				net.Send(0, s+1, dispEng.Now()+lookahead, func() {
					target.SubmitRootCtl(func(done sim.Time, rejected bool) {
						net.Send(s+1, 0, done+lookahead, func() { onResp(rejected) })
					})
				})
			},
		)
	}
	// pickServer routes one root. Plain fleets route over all servers; in
	// graph mode the balancer sees only the servers hosting the root's
	// service (a host list covering the whole fleet degenerates to the
	// plain view — Validate guarantees it is then exactly 0..n-1).
	pickServer := func(root int) int {
		if fc.Graph == nil {
			return bal.Pick(lbRng, view)
		}
		hosts := fc.Graph.Hosts(root)
		if len(hosts) == n {
			return bal.Pick(lbRng, view)
		}
		sub := View{
			Servers:     len(hosts),
			Outstanding: func(i int) int { return view.Outstanding(hosts[i]) },
		}
		return hosts[bal.Pick(lbRng, sub)]
	}
	if rc.Replay != nil {
		// Trace replay: arrivals, root types and demands come from the
		// bound trace, routed through the same balancer machinery.
		rc.Replay.Schedule(dispEng, rc.Duration, func(root int, demand float64) {
			s := pickServer(root)
			routed[s]++
			target := machines[s]
			net.Send(0, s+1, dispEng.Now()+lookahead, func() { target.SubmitRootAs(root, demand) })
		})
	} else {
		gap := machine.ArrivalGap(dispEng, rc, totalRPS)
		var schedule func()
		schedule = func() {
			if dispEng.Now() >= rc.Duration {
				return
			}
			switch {
			case ctl != nil:
				ctl.AdmitRoot()
			case fc.Graph != nil:
				s := pickServer(app.Root)
				routed[s]++
				target := machines[s]
				net.Send(0, s+1, dispEng.Now()+lookahead, func() { target.SubmitRootAs(app.Root, 0) })
			default:
				s := bal.Pick(lbRng, view)
				routed[s]++
				target := machines[s]
				net.Send(0, s+1, dispEng.Now()+lookahead, target.SubmitRoot)
			}
			dispEng.After(gap(), schedule)
		}
		dispEng.At(gap(), schedule)
	}

	// Run to horizon; at every window barrier, refresh the dispatcher's
	// snapshot of how many roots each server has answered, and (throttled)
	// the fabric instruments. The post hook runs with no shard executing, so
	// reading machine and fabric state is safe.
	var nextFab sim.Time
	net.Run(horizon, func(barrier sim.Time) {
		for s, m := range machines {
			responded[s] = m.RespondedRoots()
		}
		if ctl != nil {
			// Autoscaling evaluates only here: barrier times are identical
			// across fabric modes, and with every shard quiescent the
			// controller may schedule activation events at >= barrier — the
			// pdes post-hook membership-change contract (see pdes.Net.Run).
			ctl.AtBarrier(barrier)
		}
		if updateFabric != nil && fabTick > 0 && barrier >= nextFab {
			updateFabric()
			nextFab = barrier + fabTick
		}
	})
	if updateFabric != nil {
		// Final update so the /metrics snapshot and the sampler's closing
		// partial window carry the complete run.
		updateFabric()
	}

	// Per-server results in server order, like the one-server path's tail.
	perServer := make([]*machine.Result, n)
	for s, m := range machines {
		res := machine.BuildResult(m, engs[s], rc)
		// A server's share of fired events depends on which engine hosted it
		// (private shard vs. reference's shared engine) — an execution
		// detail, not simulation content. The fleet-level EventsProcessed
		// carries the total; the per-server field stays zero.
		res.Events = 0
		if regs[s] != nil {
			m.FinishMachineMetrics(rc.Duration)
		}
		if rc.Obs != nil {
			res.Obs = &obs.Run{}
			if cols[s] != nil {
				res.Obs.Spans = cols[s].Spans()
			}
			if regs[s] != nil {
				res.Obs.Metrics = regs[s].Snapshot(engs[s].Now())
			}
		}
		if teles[s] != nil {
			res.Telemetry = teles[s].Finish(engs[s].Now())
		}
		perServer[s] = res
	}

	out := aggregate(fc, app, totalRPS, rc, perServer)
	out.Balancer = bal.Name()
	if ctl != nil {
		out.Control = ctl.Finish()
	}
	for _, m := range machines {
		out.RemoteServed += m.RemoteServed
	}
	for _, e := range distinct {
		out.EventsProcessed += e.Fired()
	}
	st := net.Stats()
	out.Fabric = &st
	if fabReg != nil && out.Obs != nil {
		out.Obs.Metrics = obs.CombineSnapshots([]obs.Snapshot{
			out.Obs.Metrics, fabReg.Snapshot(dispEng.Now()),
		})
	}
	if fabTele != nil && out.Telemetry != nil {
		// Remerge with the fabric run appended so the pdes.* series join the
		// fleet timeline; server alert sources keep their indices (the
		// fabric sampler runs no rules, so it contributes no alerts).
		runs := make([]*telemetry.Run, 0, n+1)
		for _, res := range perServer {
			runs = append(runs, res.Telemetry)
		}
		runs = append(runs, fabTele.Finish(dispEng.Now()))
		out.Telemetry = telemetry.Merge(runs)
	}
	out.WallSeconds = time.Since(start).Seconds()
	return out
}
