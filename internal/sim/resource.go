package sim

// Resource models a serially-reusable resource (an ICN link, a memory bank,
// a dispatcher core) using busy-until bookkeeping: an acquisition at time t
// for duration d completes at max(t, busyUntil)+d. This captures FIFO
// queueing delay without simulating an explicit queue, which keeps
// high-fan-in contention points (the whole reason this paper exists) cheap
// to model.
type Resource struct {
	busyUntil Time
	// TotalBusy accumulates occupied time for utilization reporting.
	TotalBusy Time
	// Acquisitions counts uses.
	Acquisitions uint64
}

// Acquire reserves the resource at time now for duration d and returns the
// completion time. The caller should schedule its completion event at the
// returned time; the delta between the return value and now+d is queueing
// delay.
func (r *Resource) Acquire(now Time, d Time) Time {
	start := now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + d
	r.TotalBusy += d
	r.Acquisitions++
	return r.busyUntil
}

// QueueDelay reports how long a request arriving at now would wait before
// service starts, without acquiring.
func (r *Resource) QueueDelay(now Time) Time {
	if r.busyUntil > now {
		return r.busyUntil - now
	}
	return 0
}

// BusyUntil exposes the current horizon (for least-loaded ECMP decisions).
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// Utilization reports TotalBusy / window.
func (r *Resource) Utilization(window Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(r.TotalBusy) / float64(window)
}

// Reset clears the resource state.
func (r *Resource) Reset() { *r = Resource{} }
