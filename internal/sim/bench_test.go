package sim

import "testing"

// BenchmarkEngineEventChurn measures the steady-state cost of the kernel's
// schedule/cancel/fire cycle. The allocation count is the headline: with the
// free-list recycler every scheduled node is reused, so allocs/op should be
// near zero once the pool is warm.
func BenchmarkEngineEventChurn(b *testing.B) {
	e := NewEngine(1)
	const batch = 128
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			h := e.After(Time(j+1), fn)
			if j%4 == 0 {
				e.Cancel(h)
			}
		}
		e.Run()
	}
}

// BenchmarkEngineNestedTimers measures the self-rescheduling pattern every
// machine model uses (arrival loops, timer wheels).
func BenchmarkEngineNestedTimers(b *testing.B) {
	e := NewEngine(7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 256 {
				e.After(Time(n%17+1), tick)
			}
		}
		e.After(1, tick)
		e.Run()
	}
}
