package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Microsecond != 1_000_000 {
		t.Fatalf("Microsecond = %d, want 1e6 ps", int64(Microsecond))
	}
	if got := FromMicros(2.5); got != 2_500_000 {
		t.Fatalf("FromMicros(2.5) = %d", int64(got))
	}
	if got := Time(1_500_000).Micros(); got != 1.5 {
		t.Fatalf("Micros = %v", got)
	}
	if got := FromSeconds(0.001); got != Millisecond {
		t.Fatalf("FromSeconds(0.001) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ps"},
		{2 * Nanosecond, "2.000ns"},
		{3 * Microsecond, "3.000us"},
		{4 * Millisecond, "4.000ms"},
		{5 * Second, "5.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine(1)
	var hits []Time
	e.After(5, func() {
		hits = append(hits, e.Now())
		e.After(7, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 5 || hits[1] != 12 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	h := e.At(10, func() { ran = true })
	if !e.Cancel(h) {
		t.Fatal("first Cancel returned false")
	}
	if e.Cancel(h) {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine(1)
	var order []int
	handles := make([]Handle, 5)
	for i := 0; i < 5; i++ {
		i := i
		handles[i] = e.At(Time(10*(i+1)), func() { order = append(order, i) })
	}
	e.Cancel(handles[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i*10), func() { count++ })
	}
	e.RunUntil(50)
	if count != 5 {
		t.Fatalf("count = %d after RunUntil(50)", count)
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %v", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d after Run", count)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop ignored?)", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRandStreamsDeterministic(t *testing.T) {
	a := NewEngine(42)
	b := NewEngine(42)
	for i := 0; i < 100; i++ {
		if a.Rand("x").Int63() != b.Rand("x").Int63() {
			t.Fatal("same seed + name produced different streams")
		}
	}
	c := NewEngine(42)
	same := true
	for i := 0; i < 10; i++ {
		if c.Rand("x").Int63() != c.Rand("y").Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("different stream names produced identical values")
	}
}

func TestEngineDeterministicRun(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine(seed)
		var stamps []Time
		var rec func()
		n := 0
		rec = func() {
			stamps = append(stamps, e.Now())
			n++
			if n < 50 {
				e.After(Time(e.Rand("gap").Intn(100)+1), rec)
			}
		}
		e.At(0, rec)
		e.Run()
		return stamps
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResourceAcquire(t *testing.T) {
	var r Resource
	// Idle resource: starts immediately.
	if done := r.Acquire(100, 10); done != 110 {
		t.Fatalf("done = %d, want 110", done)
	}
	// Busy resource: queues.
	if done := r.Acquire(105, 10); done != 120 {
		t.Fatalf("done = %d, want 120", done)
	}
	// Arrival after idle gap: starts at arrival.
	if done := r.Acquire(500, 5); done != 505 {
		t.Fatalf("done = %d, want 505", done)
	}
	if r.TotalBusy != 25 {
		t.Fatalf("TotalBusy = %d", r.TotalBusy)
	}
	if r.Acquisitions != 3 {
		t.Fatalf("Acquisitions = %d", r.Acquisitions)
	}
}

func TestResourceQueueDelay(t *testing.T) {
	var r Resource
	r.Acquire(0, 100)
	if d := r.QueueDelay(40); d != 60 {
		t.Fatalf("QueueDelay = %d", d)
	}
	if d := r.QueueDelay(200); d != 0 {
		t.Fatalf("QueueDelay after idle = %d", d)
	}
}

func TestResourceUtilization(t *testing.T) {
	var r Resource
	r.Acquire(0, 25)
	r.Acquire(50, 25)
	if u := r.Utilization(100); u != 0.5 {
		t.Fatalf("Utilization = %v", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("Utilization(0) = %v", u)
	}
	r.Reset()
	if r.TotalBusy != 0 || r.BusyUntil() != 0 {
		t.Fatal("Reset did not clear")
	}
}

// Property: a resource never starts a job before the previous one finished,
// and never before its arrival.
func TestResourceFIFOProperty(t *testing.T) {
	f := func(arrivalGaps []uint8, durs []uint8) bool {
		var r Resource
		now := Time(0)
		prevDone := Time(0)
		n := len(arrivalGaps)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			now += Time(arrivalGaps[i])
			d := Time(durs[i]%50 + 1)
			done := r.Acquire(now, d)
			start := done - d
			if start < now || start < prevDone {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: engine executes all events in nondecreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine(3)
		var fired []Time
		for _, tt := range times {
			e.At(Time(tt), func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// runTrace drives a deterministic random event cascade and records (time,
// value) pairs — the fingerprint used by the reuse tests below.
func runTrace(e *Engine) []int64 {
	var out []int64
	n := 0
	var rec func()
	rec = func() {
		out = append(out, int64(e.Now()), e.Rand("x").Int63())
		n++
		if n < 64 {
			h := e.After(Time(e.Rand("gap").Intn(50)+1), func() {})
			e.After(Time(e.Rand("gap").Intn(50)+1), rec)
			if n%3 == 0 {
				e.Cancel(h)
			}
		}
	}
	e.At(0, rec)
	e.Run()
	return out
}

func TestEngineResetMatchesFresh(t *testing.T) {
	reused := NewEngine(1)
	runTrace(reused) // dirty the engine under a different seed
	reused.Reset(99)
	got := runTrace(reused)
	want := runTrace(NewEngine(99))
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reset engine diverged at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestEngineCapMatchesDefault(t *testing.T) {
	a := runTrace(NewEngine(7))
	b := runTrace(NewEngineCap(7, 4096))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("capacity hint changed behaviour at %d", i)
		}
	}
}

func TestStaleHandleCannotCancelRecycledNode(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.At(10, func() {})
	e.Run() // h's node fires and is recycled
	// The next event may reuse the node behind h; the stale handle must not
	// be able to cancel it.
	e.At(20, func() { fired = true })
	if e.Cancel(h) {
		t.Fatal("stale handle cancel reported success")
	}
	e.Run()
	if !fired {
		t.Fatal("stale handle cancelled a recycled node's new event")
	}
}

func TestEngineResetClearsPending(t *testing.T) {
	e := NewEngine(5)
	ran := false
	e.At(100, func() { ran = true })
	e.Reset(5)
	if e.Pending() != 0 || e.Now() != 0 || e.Fired() != 0 {
		t.Fatalf("reset left state: pending=%d now=%v fired=%d", e.Pending(), e.Now(), e.Fired())
	}
	e.Run()
	if ran {
		t.Fatal("event survived Reset")
	}
}

func TestMaxPendingHighWater(t *testing.T) {
	e := NewEngine(1)
	if e.MaxPending() != 0 {
		t.Fatalf("fresh engine MaxPending = %d, want 0", e.MaxPending())
	}
	for i := 1; i <= 5; i++ {
		e.At(Time(i), func() {})
	}
	if e.MaxPending() != 5 {
		t.Fatalf("MaxPending = %d, want 5", e.MaxPending())
	}
	e.Run()
	// The high-water mark survives the drain.
	if e.Pending() != 0 || e.MaxPending() != 5 {
		t.Fatalf("after run: pending=%d max=%d, want 0, 5", e.Pending(), e.MaxPending())
	}
	// Scheduling from inside events keeps tracking the true peak.
	e2 := NewEngine(1)
	e2.At(1, func() {
		e2.At(2, func() {})
		e2.At(3, func() {})
		e2.At(4, func() {})
	})
	e2.Run()
	if e2.MaxPending() != 3 {
		t.Fatalf("nested MaxPending = %d, want 3", e2.MaxPending())
	}
}

func TestResetClearsMaxPendingAndCountsResets(t *testing.T) {
	e := NewEngine(1)
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Resets() != 0 {
		t.Fatalf("fresh engine Resets = %d, want 0", e.Resets())
	}
	e.Reset(2)
	if e.MaxPending() != 0 {
		t.Fatalf("MaxPending after Reset = %d, want 0", e.MaxPending())
	}
	if e.Resets() != 1 {
		t.Fatalf("Resets = %d, want 1", e.Resets())
	}
	e.Reset(3)
	if e.Resets() != 2 {
		t.Fatalf("Resets = %d, want 2", e.Resets())
	}
}

// TestDeriveSeed pins the seed-derivation contract: deterministic, and free
// of the additive-stride collisions that motivated it — with the old
// seed + s*7919 scheme, server s of replicate r collided with server s-1 of
// replicate r+7919 (and the ^stride XOR mixes had analogous aliases).
func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(42, 3) != DeriveSeed(42, 3) {
		t.Fatal("DeriveSeed not deterministic")
	}

	// The collision the fleet actually had: base seeds one stride apart,
	// indices one apart, must not alias.
	for _, stride := range []int64{1, 7919, 104729} {
		for base := int64(0); base < 8; base++ {
			if DeriveSeed(base+stride, 0) == DeriveSeed(base, 1) {
				t.Fatalf("stride alias: DeriveSeed(%d,0) == DeriveSeed(%d,1)", base+stride, base)
			}
		}
	}

	// No collisions over a dense (base, idx) grid — 64 bases × 64 indices.
	seen := make(map[int64][2]int64)
	for base := int64(-32); base < 32; base++ {
		for idx := int64(0); idx < 64; idx++ {
			s := DeriveSeed(base, idx)
			if prev, ok := seen[s]; ok {
				t.Fatalf("collision: (%d,%d) and (%d,%d) both give %d", base, idx, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{base, idx}
		}
	}

	// Derived seeds should differ from the base (idx 0 is not identity).
	if DeriveSeed(0, 0) == 0 || DeriveSeed(1, 0) == 1 {
		t.Fatal("DeriveSeed acts as identity")
	}
}

func TestNextEventAt(t *testing.T) {
	e := NewEngine(1)
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("empty engine reported a pending event")
	}
	e.At(30, func() {})
	e.At(10, func() {})
	e.At(20, func() {})
	if at, ok := e.NextEventAt(); !ok || at != 10 {
		t.Fatalf("NextEventAt = %v, %v; want 10, true", at, ok)
	}
	e.RunUntil(10)
	if at, ok := e.NextEventAt(); !ok || at != 20 {
		t.Fatalf("after RunUntil(10): NextEventAt = %v, %v; want 20, true", at, ok)
	}
	e.Run()
	if _, ok := e.NextEventAt(); ok {
		t.Fatal("drained engine reported a pending event")
	}
}

// TestStreamsMatchEngineRand pins the property PDES sharding depends on: a
// Streams bundle seeded s draws exactly what an engine seeded s would, for
// every stream name, so moving an entity between engines cannot change its
// randomness.
func TestStreamsMatchEngineRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		e := NewEngine(seed)
		s := NewStreams(seed)
		for _, name := range []string{"service", "icn", "route", "arrivals", ""} {
			er, sr := e.Rand(name), s.Rand(name)
			for i := 0; i < 64; i++ {
				if a, b := er.Int63(), sr.Int63(); a != b {
					t.Fatalf("seed %d stream %q draw %d: engine %d != streams %d", seed, name, i, a, b)
				}
			}
		}
	}
}

func TestStreamsIndependentNames(t *testing.T) {
	s := NewStreams(99)
	a, b := s.Rand("a"), s.Rand("b")
	if a == b {
		t.Fatal("distinct names share a stream")
	}
	if s.Rand("a") != a {
		t.Fatal("same name returned a different stream")
	}
}
