// Package sim provides the deterministic discrete-event simulation kernel
// that underpins every architectural model in this repository.
//
// The kernel is intentionally small: a virtual clock, a binary heap of
// timestamped events, and named pseudo-random streams. Determinism is a hard
// requirement — two runs with the same seed must produce bit-identical
// results — so ties between events at the same timestamp are broken by a
// monotonically increasing sequence number, and all randomness is drawn from
// streams derived from the engine seed plus a stream name.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Time is the simulation clock in picoseconds. int64 picoseconds cover about
// 106 days of simulated time, far beyond any experiment in this repository.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Micros reports t in microseconds as a float, the unit the paper uses for
// most latency plots.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t in milliseconds as a float.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromMicros converts a duration in microseconds to a Time.
func FromMicros(us float64) Time { return Time(us * float64(Microsecond)) }

// FromSeconds converts a duration in seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Event is a callback scheduled to run at a point in virtual time.
type Event func()

type scheduled struct {
	at    Time
	seq   uint64
	fn    Event
	index int // heap index; -1 once popped or cancelled
	// gen guards recycled nodes: a Handle is only live while its generation
	// matches, so a stale Handle cannot cancel a later event that happens to
	// reuse the same node from the free list.
	gen uint32
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	s   *scheduled
	gen uint32
}

// Cancelled reports whether the event was cancelled or already fired.
func (h Handle) live() bool { return h.s != nil && h.s.index >= 0 && h.s.gen == h.gen }

type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	s := x.(*scheduled)
	s.index = len(*h)
	*h = append(*h, s)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.index = -1
	*h = old[:n-1]
	return s
}

// Engine is a discrete-event simulation engine. The zero value is not usable;
// create engines with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	free    []*scheduled // recycled event nodes (pop/cancel feed it)
	seed    int64
	streams map[string]*rand.Rand
	fired   uint64
	stopped bool
	// maxPending is the event heap's high-water mark since the last Reset —
	// the obs layer's "sim.heap.peak" instrument. Tracking it is one
	// predictable branch per schedule, cheap enough to stay always-on.
	maxPending int
	// resets counts Reset calls over the engine's lifetime, exposing how
	// deep the engine-reuse pool recycling goes.
	resets uint64
}

// NewEngine returns an engine whose random streams all derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed, streams: make(map[string]*rand.Rand)}
}

// NewEngineCap returns an engine with event-heap and free-list storage
// preallocated for roughly capHint concurrently pending events, avoiding
// repeated growth in event-heavy runs.
func NewEngineCap(seed int64, capHint int) *Engine {
	e := NewEngine(seed)
	if capHint > 0 {
		e.events = make(eventHeap, 0, capHint)
		e.free = make([]*scheduled, 0, capHint)
	}
	return e
}

// Reset rewinds the engine to a fresh state under a new seed while keeping
// its allocated storage (event heap, free list, random streams). A reset
// engine behaves exactly like NewEngine(seed): existing streams are re-seeded
// in place, so replicate loops can reuse one engine with bit-identical
// results.
func (e *Engine) Reset(seed int64) {
	for _, s := range e.events {
		e.recycle(s)
	}
	e.events = e.events[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.stopped = false
	e.maxPending = 0
	e.resets++
	e.seed = seed
	for name, r := range e.streams {
		r.Seed(seed ^ streamHash(name))
	}
}

// recycle returns a node to the free list, invalidating outstanding handles.
func (e *Engine) recycle(s *scheduled) {
	s.fn = nil
	s.index = -1
	s.gen++
	e.free = append(e.free, s)
}

// node produces a blank event node, reusing a recycled one when available.
func (e *Engine) node() *scheduled {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return s
	}
	return &scheduled{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful for perf
// reporting and as a runaway-simulation guard in tests).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// MaxPending returns the event heap's high-water mark since the last Reset
// (or engine creation) — a capacity-planning and obs-layer statistic.
func (e *Engine) MaxPending() int { return e.maxPending }

// Resets returns how many times this engine has been Reset, i.e. how often
// pool recycling reused its storage.
func (e *Engine) Resets() uint64 { return e.resets }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug.
func (e *Engine) At(t Time, fn Event) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	s := e.node()
	s.at, s.seq, s.fn = t, e.seq, fn
	e.seq++
	heap.Push(&e.events, s)
	if len(e.events) > e.maxPending {
		e.maxPending = len(e.events)
	}
	return Handle{s: s, gen: s.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn Event) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// (or was already cancelled) is a no-op and returns false.
func (e *Engine) Cancel(h Handle) bool {
	if !h.live() {
		return false
	}
	heap.Remove(&e.events, h.s.index)
	e.recycle(h.s)
	return true
}

// Stop makes Run / RunUntil return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Time(1<<63 - 1))
}

// RunUntil executes events with timestamps <= deadline, then sets the clock
// to deadline (if it advanced that far). Events scheduled beyond deadline
// remain pending.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.fired++
		fn := next.fn
		// Recycle before firing: fn frequently schedules a follow-up event
		// (arrival loops, timer chains), which can then reuse this node
		// immediately instead of allocating.
		e.recycle(next)
		fn()
	}
	if !e.stopped && e.now < deadline && deadline < Time(1<<62) {
		e.now = deadline
	}
}

// NextEventAt reports the timestamp of the earliest pending event, or false
// when the queue is empty. It is the peek primitive conservative parallel
// simulation needs: a synchronization layer bounds the next barrier by the
// earliest thing any engine could possibly do.
func (e *Engine) NextEventAt() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// Rand returns the named random stream, creating it deterministically from
// the engine seed on first use. Distinct names yield independent streams;
// the same name always yields the same stream.
func (e *Engine) Rand(name string) *rand.Rand {
	if r, ok := e.streams[name]; ok {
		return r
	}
	r := rand.New(rand.NewSource(e.seed ^ streamHash(name)))
	e.streams[name] = r
	return r
}

// streamHash maps a stream name to the seed perturbation used by Rand and
// Reset. Reset re-seeds surviving streams with the same function, so a
// reused engine and a fresh one draw identical sequences.
func streamHash(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// Streams is an engine-independent bundle of named deterministic random
// streams, derived from a seed exactly like Engine.Rand derives them from
// the engine seed. A simulation entity that owns a Streams draws the same
// sequences no matter which engine hosts its events — the property that
// lets a sharded (one-engine-per-server) fleet and a single-engine
// reference execution stay bit-identical.
type Streams struct {
	seed    int64
	streams map[string]*rand.Rand
}

// NewStreams returns a stream bundle whose named streams all derive from
// seed. NewStreams(s).Rand(name) draws the same sequence as
// NewEngine(s).Rand(name).
func NewStreams(seed int64) *Streams {
	return &Streams{seed: seed, streams: make(map[string]*rand.Rand)}
}

// Rand returns the named stream, creating it deterministically from the
// bundle seed on first use — the same (seed, name) derivation as
// Engine.Rand.
func (s *Streams) Rand(name string) *rand.Rand {
	if r, ok := s.streams[name]; ok {
		return r
	}
	r := rand.New(rand.NewSource(s.seed ^ streamHash(name)))
	s.streams[name] = r
	return r
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit bijection, so
// structured inputs (small integers, additive offsets) map to uncorrelated
// outputs.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// DeriveSeed derives an independent child seed from a base seed and an
// index via a splitmix64-style hash. It replaces additive strides
// (base + idx*K), which collide whenever two base seeds differ by a small
// multiple of the stride — e.g. a replicate at base+K reusing child 1's
// stream of the original base. The base is avalanched *before* the index is
// combined, so (base, idx) and (base+K, idx-1) can never land on the same
// stream by construction.
func DeriveSeed(base int64, idx int64) int64 {
	z := mix64(uint64(base)+0x9e3779b97f4a7c15) + uint64(idx)*0x9e3779b97f4a7c15
	return int64(mix64(z))
}
