package sim

import (
	"math/bits"
	"testing"
)

// TestDeriveSeedAvalanche: flipping any single input bit (of base or idx)
// must flip a substantial fraction of output bits. A full-avalanche hash
// flips 32 of 64 on average; we require a mean of at least 16 (1/4) per
// flipped input bit, which additive-stride derivations fail catastrophically
// (flipping a low base bit flips ~1 output bit).
func TestDeriveSeedAvalanche(t *testing.T) {
	bases := []int64{0, 1, 42, -1, 1 << 32, -987654321}
	idxs := []int64{0, 1, 7, 1000, -3}
	for _, base := range bases {
		for _, idx := range idxs {
			ref := uint64(DeriveSeed(base, idx))
			for bit := 0; bit < 64; bit++ {
				var total int
				flipBase := uint64(DeriveSeed(base^(1<<bit), idx))
				total = bits.OnesCount64(ref ^ flipBase)
				if total < 16 {
					t.Errorf("base=%d idx=%d: flipping base bit %d changed only %d/64 output bits", base, idx, bit, total)
				}
				flipIdx := uint64(DeriveSeed(base, idx^(1<<bit)))
				total = bits.OnesCount64(ref ^ flipIdx)
				if total < 16 {
					t.Errorf("base=%d idx=%d: flipping idx bit %d changed only %d/64 output bits", base, idx, bit, total)
				}
			}
		}
	}
}

// TestDeriveSeedNoCollisions: 1e5 (base, idx) grid points must map to 1e5
// distinct seeds. This grid includes exactly the additive-stride trap
// (consecutive bases × consecutive indices).
func TestDeriveSeedNoCollisions(t *testing.T) {
	const nBase, nIdx = 500, 200 // 100,000 pairs
	seen := make(map[int64]struct{}, nBase*nIdx)
	for b := 0; b < nBase; b++ {
		for i := 0; i < nIdx; i++ {
			s := DeriveSeed(int64(b), int64(i))
			if _, dup := seen[s]; dup {
				t.Fatalf("collision at base=%d idx=%d", b, i)
			}
			seen[s] = struct{}{}
		}
	}
}

// TestDeriveSeedStrideResistance pins the regression DeriveSeed exists for:
// with additive strides, (base, idx) and (base+K, idx-1) share a stream.
func TestDeriveSeedStrideResistance(t *testing.T) {
	const K = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64
	for _, base := range []int64{0, 42, -7} {
		for idx := int64(1); idx < 50; idx++ {
			if DeriveSeed(base, idx) == DeriveSeed(base+K, idx-1) {
				t.Fatalf("stride collision at base=%d idx=%d", base, idx)
			}
		}
	}
}
