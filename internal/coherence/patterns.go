package coherence

import "math/rand"

// Sharing-pattern drivers: the access patterns microservice request
// processing produces, per the paper's characterization.

// MigratoryResult summarizes a migratory-sharing run.
type MigratoryResult struct {
	// MeanResumeCycles is the average coherence cost of one request
	// resumption on a new core: re-reading its context lines (which the
	// previous core owns dirty) and writing its working lines.
	MeanResumeCycles float64
	Stats            Stats
}

// Migratory simulates the paper's §4.1 scenario: a blocked request resumes
// on a different core and re-touches its saved context — `lines` cache
// lines, each read then written, previously owned dirty by the last core.
// Cores are drawn from the whole domain (global coherence / unrestricted
// migration) so ownership transfers traverse the package.
func Migratory(d *Directory, requests, lines int, r *rand.Rand) MigratoryResult {
	addrBase := uint64(1 << 20)
	prevCore := r.Intn(d.Config().Caches)
	// Warm: the first core dirties the context.
	for l := 0; l < lines; l++ {
		d.Write(prevCore, addrBase+uint64(l))
	}
	before := d.Stats
	var total int
	for i := 0; i < requests; i++ {
		core := r.Intn(d.Config().Caches)
		cost := 0
		for l := 0; l < lines; l++ {
			cost += d.Read(core, addrBase+uint64(l))
			cost += d.Write(core, addrBase+uint64(l))
		}
		total += cost
		prevCore = core
	}
	_ = prevCore
	after := d.Stats
	return MigratoryResult{
		MeanResumeCycles: float64(total) / float64(requests),
		Stats: Stats{
			Reads:           after.Reads - before.Reads,
			Writes:          after.Writes - before.Writes,
			DirLookups:      after.DirLookups - before.DirLookups,
			Invalidations:   after.Invalidations - before.Invalidations,
			OwnershipXfers:  after.OwnershipXfers - before.OwnershipXfers,
			Downgrades:      after.Downgrades - before.Downgrades,
			NetworkMessages: after.NetworkMessages - before.NetworkMessages,
			TotalLatencyCyc: after.TotalLatencyCyc - before.TotalLatencyCyc,
		},
	}
}

// ReadShared simulates the §3.5 handler pattern: many cores read the same
// instance initialization state (read-mostly lines). After warmup this
// costs almost nothing in either domain — the paper's argument for
// read-shared memories.
func ReadShared(d *Directory, accesses, lines int, r *rand.Rand) float64 {
	addrBase := uint64(2 << 20)
	var total int
	for i := 0; i < accesses; i++ {
		core := r.Intn(d.Config().Caches)
		total += d.Read(core, addrBase+uint64(r.Intn(lines)))
	}
	return float64(total) / float64(accesses)
}

// PrivatePerRequest simulates request-private working sets: each request
// touches fresh lines on one core — no sharing, so coherence should charge
// only cold directory fills.
func PrivatePerRequest(d *Directory, requests, lines int, r *rand.Rand) float64 {
	var total int
	next := uint64(3 << 20)
	for i := 0; i < requests; i++ {
		core := r.Intn(d.Config().Caches)
		for l := 0; l < lines; l++ {
			total += d.Write(core, next)
			next++
		}
	}
	return float64(total) / float64(requests*lines)
}
