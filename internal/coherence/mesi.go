// Package coherence implements a directory-based MESI cache-coherence
// protocol simulator. The paper's central architectural argument (§3.1,
// §4.1) is that package-wide hardware coherence buys microservices almost
// nothing while charging them remote directory lookups, invalidations and
// extra network traffic — so μManycore keeps coherence domains village-
// sized. This package makes that argument quantitative: it runs the same
// sharing patterns over a village-scale domain (8 cores, co-located
// directory) and a package-scale domain (1024 cores, address-interleaved
// home directories) and reports the protocol traffic and latency each
// incurs. The machine model's CoherencePenaltyCycles constants are
// calibrated against it (see TestPenaltyCalibration).
package coherence

import "fmt"

// State is a MESI cache-line state.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Config sizes a coherence domain.
type Config struct {
	// Caches is the number of private caches (cores) in the domain.
	Caches int
	// DirBanks is the number of address-interleaved directory banks; a
	// village co-locates one bank with its L2, a package distributes many.
	DirBanks int
	// LocalDirHops / RemoteDirHops are the network distances to a directory
	// bank that is local (same village/cluster) vs remote.
	LocalDirHops  int
	RemoteDirHops int
	// CacheToCacheHops is the distance of an ownership transfer.
	CacheToCacheHops int
	// HopCycles converts hops to cycles (Table 2: 5 cycles/hop).
	HopCycles int
	// DirLookupCycles is a directory bank access.
	DirLookupCycles int
}

// VillageConfig returns an 8-core village: one directory bank next to the
// shared L2, every access local.
func VillageConfig() Config {
	return Config{
		Caches: 8, DirBanks: 1,
		LocalDirHops: 1, RemoteDirHops: 1, CacheToCacheHops: 1,
		HopCycles: 5, DirLookupCycles: 10,
	}
}

// GlobalConfig returns a 1024-core package: 32 address-interleaved banks,
// most lookups remote (the ScaleOut/ServerClass organization).
func GlobalConfig() Config {
	return Config{
		Caches: 1024, DirBanks: 32,
		LocalDirHops: 1, RemoteDirHops: 8, CacheToCacheHops: 8,
		HopCycles: 5, DirLookupCycles: 10,
	}
}

// Stats accumulates protocol events.
type Stats struct {
	Reads           uint64
	Writes          uint64
	DirLookups      uint64
	Invalidations   uint64
	OwnershipXfers  uint64 // cache-to-cache transfers (M/E forwarding)
	Downgrades      uint64 // M/E -> S on remote read
	NetworkMessages uint64
	TotalLatencyCyc uint64
}

// MeanLatency returns average cycles per access.
func (s Stats) MeanLatency() float64 {
	n := s.Reads + s.Writes
	if n == 0 {
		return 0
	}
	return float64(s.TotalLatencyCyc) / float64(n)
}

// line tracks one cache line's global coherence state.
type line struct {
	state   State // aggregate: Invalid, Shared, or Exclusive/Modified (owned)
	owner   int   // owning cache for E/M
	sharers map[int]bool
}

// Directory is the protocol engine.
type Directory struct {
	cfg   Config
	lines map[uint64]*line
	// Stats is exported for reading between phases.
	Stats Stats
}

// New builds an empty directory domain.
func New(cfg Config) *Directory {
	if cfg.Caches <= 0 || cfg.DirBanks <= 0 {
		panic("coherence: invalid config")
	}
	return &Directory{cfg: cfg, lines: make(map[uint64]*line)}
}

// Config returns the domain configuration.
func (d *Directory) Config() Config { return d.cfg }

func (d *Directory) lineOf(addr uint64) *line {
	l, ok := d.lines[addr]
	if !ok {
		l = &line{state: Invalid, owner: -1, sharers: make(map[int]bool)}
		d.lines[addr] = l
	}
	return l
}

// dirHops returns the request's distance to addr's home bank. With one
// bank the directory is local; with many, a lookup is local only when the
// requester's bank stripe matches the address's home bank.
func (d *Directory) dirHops(core int, addr uint64) int {
	if d.cfg.DirBanks == 1 {
		return d.cfg.LocalDirHops
	}
	home := int(addr) % d.cfg.DirBanks
	mine := core * d.cfg.DirBanks / d.cfg.Caches
	if home == mine {
		return d.cfg.LocalDirHops
	}
	return d.cfg.RemoteDirHops
}

func (d *Directory) charge(hops, extraMsgs int) int {
	cyc := d.cfg.DirLookupCycles + hops*d.cfg.HopCycles
	d.Stats.DirLookups++
	d.Stats.NetworkMessages += uint64(1 + extraMsgs)
	d.Stats.TotalLatencyCyc += uint64(cyc)
	return cyc
}

// State returns the aggregate line state and owner (-1 when unowned).
func (d *Directory) State(addr uint64) (State, int) {
	l, ok := d.lines[addr]
	if !ok {
		return Invalid, -1
	}
	return l.state, l.owner
}

// Sharers returns the number of caches holding the line.
func (d *Directory) Sharers(addr uint64) int {
	l, ok := d.lines[addr]
	if !ok {
		return 0
	}
	if l.state == Invalid {
		return 0
	}
	if l.owner >= 0 {
		return 1
	}
	return len(l.sharers)
}

func (d *Directory) validCore(core int) {
	if core < 0 || core >= d.cfg.Caches {
		panic(fmt.Sprintf("coherence: core %d out of range", core))
	}
}

// Read performs a load from the given core and returns its latency in
// cycles (0 for a pure local hit).
func (d *Directory) Read(core int, addr uint64) int {
	d.validCore(core)
	d.Stats.Reads++
	l := d.lineOf(addr)
	switch l.state {
	case Invalid:
		// Miss to memory through the directory.
		cyc := d.charge(d.dirHops(core, addr)*2, 1)
		l.state = Exclusive
		l.owner = core
		return cyc
	case Shared:
		if l.sharers[core] {
			return 0 // local hit
		}
		cyc := d.charge(d.dirHops(core, addr)*2, 1)
		l.sharers[core] = true
		return cyc
	default: // Exclusive / Modified
		if l.owner == core {
			return 0 // owner hit
		}
		// Downgrade the owner, forward the data cache-to-cache.
		cyc := d.charge(d.dirHops(core, addr)+d.cfg.CacheToCacheHops*2, 2)
		d.Stats.Downgrades++
		l.sharers = map[int]bool{l.owner: true, core: true}
		l.owner = -1
		l.state = Shared
		return cyc
	}
}

// Write performs a store from the given core and returns its latency in
// cycles.
func (d *Directory) Write(core int, addr uint64) int {
	d.validCore(core)
	d.Stats.Writes++
	l := d.lineOf(addr)
	switch l.state {
	case Invalid:
		cyc := d.charge(d.dirHops(core, addr)*2, 1)
		l.state = Modified
		l.owner = core
		return cyc
	case Shared:
		// Invalidate every sharer (possibly including upgrade by a sharer).
		inv := 0
		for s := range l.sharers {
			if s != core {
				inv++
			}
		}
		d.Stats.Invalidations += uint64(inv)
		cyc := d.charge(d.dirHops(core, addr)*2+d.cfg.CacheToCacheHops, inv*2)
		cyc += inv * d.cfg.HopCycles // invalidation fan-out adds latency
		d.Stats.TotalLatencyCyc += uint64(inv * d.cfg.HopCycles)
		l.state = Modified
		l.owner = core
		l.sharers = make(map[int]bool)
		return cyc
	default: // Exclusive / Modified
		if l.owner == core {
			if l.state == Exclusive {
				l.state = Modified // silent upgrade
			}
			return 0
		}
		// Ownership transfer: invalidate the old owner, forward the line.
		cyc := d.charge(d.dirHops(core, addr)+d.cfg.CacheToCacheHops*2, 2)
		d.Stats.OwnershipXfers++
		l.owner = core
		l.state = Modified
		return cyc
	}
}

// Evict drops the line from one cache (capacity eviction / context
// migration writeback).
func (d *Directory) Evict(core int, addr uint64) {
	d.validCore(core)
	l, ok := d.lines[addr]
	if !ok {
		return
	}
	switch l.state {
	case Shared:
		delete(l.sharers, core)
		if len(l.sharers) == 0 {
			l.state = Invalid
		}
	case Exclusive, Modified:
		if l.owner == core {
			l.state = Invalid
			l.owner = -1
		}
	}
}

// CheckInvariants validates protocol invariants over all tracked lines:
// an owned line has exactly one owner and no sharer set; a shared line has
// at least one sharer and no owner.
func (d *Directory) CheckInvariants() error {
	for addr, l := range d.lines {
		switch l.state {
		case Invalid:
			if l.owner != -1 && l.owner != 0 || len(l.sharers) > 0 && l.state == Invalid {
				if len(l.sharers) > 0 {
					return fmt.Errorf("coherence: invalid line %x has sharers", addr)
				}
			}
		case Shared:
			if len(l.sharers) == 0 {
				return fmt.Errorf("coherence: shared line %x has no sharers", addr)
			}
			if l.owner != -1 {
				return fmt.Errorf("coherence: shared line %x has owner %d", addr, l.owner)
			}
		case Exclusive, Modified:
			if l.owner < 0 || l.owner >= d.cfg.Caches {
				return fmt.Errorf("coherence: owned line %x has bad owner %d", addr, l.owner)
			}
		}
	}
	return nil
}
