package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Fatal("state strings")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state string")
	}
}

func TestColdReadGetsExclusive(t *testing.T) {
	d := New(VillageConfig())
	cyc := d.Read(0, 100)
	if cyc <= 0 {
		t.Fatal("cold read should cost a directory round trip")
	}
	st, owner := d.State(100)
	if st != Exclusive || owner != 0 {
		t.Fatalf("state = %v owner %d", st, owner)
	}
	// Owner re-reads and writes for free (E allows silent upgrade).
	if d.Read(0, 100) != 0 {
		t.Fatal("owner read should hit")
	}
	if d.Write(0, 100) != 0 {
		t.Fatal("silent E->M upgrade should be free")
	}
	st, _ = d.State(100)
	if st != Modified {
		t.Fatalf("state after upgrade = %v", st)
	}
}

func TestReadSharingDowngradesOwner(t *testing.T) {
	d := New(VillageConfig())
	d.Write(0, 7) // core 0 owns M
	cyc := d.Read(1, 7)
	if cyc <= 0 {
		t.Fatal("remote read of M line should cost a forward")
	}
	st, _ := d.State(7)
	if st != Shared || d.Sharers(7) != 2 {
		t.Fatalf("state = %v sharers %d", st, d.Sharers(7))
	}
	if d.Stats.Downgrades != 1 {
		t.Fatalf("downgrades = %d", d.Stats.Downgrades)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := New(VillageConfig())
	for core := 0; core < 4; core++ {
		d.Read(core, 9)
	}
	if d.Sharers(9) != 4 {
		t.Fatalf("sharers = %d", d.Sharers(9))
	}
	d.Write(2, 9)
	st, owner := d.State(9)
	if st != Modified || owner != 2 {
		t.Fatalf("state = %v owner %d", st, owner)
	}
	if d.Sharers(9) != 1 {
		t.Fatalf("sharers after invalidation = %d", d.Sharers(9))
	}
	if d.Stats.Invalidations != 3 {
		t.Fatalf("invalidations = %d", d.Stats.Invalidations)
	}
}

func TestOwnershipTransfer(t *testing.T) {
	d := New(VillageConfig())
	d.Write(0, 5)
	cyc := d.Write(1, 5)
	if cyc <= 0 {
		t.Fatal("ownership transfer should cost")
	}
	if d.Stats.OwnershipXfers != 1 {
		t.Fatalf("transfers = %d", d.Stats.OwnershipXfers)
	}
	_, owner := d.State(5)
	if owner != 1 {
		t.Fatalf("owner = %d", owner)
	}
}

func TestEvict(t *testing.T) {
	d := New(VillageConfig())
	d.Write(0, 3)
	d.Evict(0, 3)
	if st, _ := d.State(3); st != Invalid {
		t.Fatalf("state after evict = %v", st)
	}
	d.Read(0, 4)
	d.Read(1, 4)
	d.Evict(0, 4)
	if d.Sharers(4) != 1 {
		t.Fatalf("sharers after partial evict = %d", d.Sharers(4))
	}
	d.Evict(1, 4)
	if st, _ := d.State(4); st != Invalid {
		t.Fatal("last evict should invalidate")
	}
	d.Evict(0, 999) // unknown line: no-op
}

func TestOutOfRangePanics(t *testing.T) {
	d := New(VillageConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.Read(8, 0)
}

func TestGlobalCostsMoreThanVillage(t *testing.T) {
	// The package's architectural claim, quantified: migratory sharing
	// (blocked requests resuming on new cores) costs several times more
	// under package-scale coherence than village-scale.
	rv := rand.New(rand.NewSource(1))
	rg := rand.New(rand.NewSource(1))
	village := Migratory(New(VillageConfig()), 2000, 6, rv)
	global := Migratory(New(GlobalConfig()), 2000, 6, rg)
	if global.MeanResumeCycles < 2*village.MeanResumeCycles {
		t.Fatalf("global resume %v !>> village %v",
			global.MeanResumeCycles, village.MeanResumeCycles)
	}
	if global.Stats.NetworkMessages <= village.Stats.NetworkMessages {
		t.Fatal("global coherence should inject more network traffic")
	}
}

// TestPenaltyCalibration documents where the machine model's
// CoherencePenaltyCycles constants come from: the measured mean resume cost
// under each domain configuration.
func TestPenaltyCalibration(t *testing.T) {
	// A saved request context is "a few hundreds of bytes" (§4.4): the
	// resuming core re-touches ~2 dirty lines of it on the coherence
	// fabric (the rest stream from the Request Context Memory / L2).
	rv := rand.New(rand.NewSource(2))
	rg := rand.New(rand.NewSource(2))
	village := Migratory(New(VillageConfig()), 5000, 2, rv)
	global := Migratory(New(GlobalConfig()), 5000, 2, rg)
	// machine.Config uses VillageResumePenaltyCycles=100 and
	// CoherencePenaltyCycles=600; the protocol-level numbers must bracket
	// them (same order of magnitude).
	if village.MeanResumeCycles < 20 || village.MeanResumeCycles > 250 {
		t.Errorf("village resume = %v cycles, expected ~100", village.MeanResumeCycles)
	}
	if global.MeanResumeCycles < 250 || global.MeanResumeCycles > 1000 {
		t.Errorf("global resume = %v cycles, expected ~600", global.MeanResumeCycles)
	}
}

func TestReadSharedIsCheapEverywhere(t *testing.T) {
	// §3.5: read-mostly instance state is cheap to share even globally
	// after warmup — coherence's cost is in writes, not read sharing.
	rg := rand.New(rand.NewSource(3))
	d := New(GlobalConfig())
	warm := ReadShared(d, 20000, 64, rg)
	rg2 := rand.New(rand.NewSource(3))
	dm := New(GlobalConfig())
	mig := Migratory(dm, 2000, 6, rg2)
	if warm >= mig.MeanResumeCycles {
		t.Fatalf("read sharing (%v) should be far cheaper than migration (%v)",
			warm, mig.MeanResumeCycles)
	}
}

func TestPrivateLinesChargeOnlyColdFills(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	d := New(GlobalConfig())
	mean := PrivatePerRequest(d, 500, 8, r)
	if d.Stats.Invalidations != 0 || d.Stats.OwnershipXfers != 0 {
		t.Fatalf("private access pattern caused coherence actions: %+v", d.Stats)
	}
	if mean <= 0 {
		t.Fatal("cold fills should still cost directory trips")
	}
}

func TestMeanLatencyAndInvariants(t *testing.T) {
	d := New(VillageConfig())
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		core := r.Intn(8)
		addr := uint64(r.Intn(256))
		if r.Float64() < 0.3 {
			d.Write(core, addr)
		} else {
			d.Read(core, addr)
		}
		if r.Float64() < 0.05 {
			d.Evict(core, addr)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.Stats.MeanLatency() <= 0 {
		t.Fatal("no latency recorded")
	}
	var empty Stats
	if empty.MeanLatency() != 0 {
		t.Fatal("empty stats latency")
	}
}

// Property: after any access sequence the protocol invariants hold, and the
// "one writer XOR many readers" rule is respected.
func TestMESIInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		d := New(Config{
			Caches: 4, DirBanks: 2,
			LocalDirHops: 1, RemoteDirHops: 3, CacheToCacheHops: 2,
			HopCycles: 5, DirLookupCycles: 10,
		})
		for _, op := range ops {
			core := int(op) % 4
			addr := uint64(op>>2) % 16
			switch (op >> 6) % 3 {
			case 0:
				d.Read(core, addr)
			case 1:
				d.Write(core, addr)
			case 2:
				d.Evict(core, addr)
			}
			if err := d.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{})
}
