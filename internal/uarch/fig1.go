package uarch

import (
	"math/rand"

	"umanycore/internal/cachesim"
	"umanycore/internal/sim"
)

// CPIModel converts component measurements into cycles-per-instruction using
// a standard first-order model:
//
//	CPI = base
//	    + branchFrac × branchPenalty × mispredictRate
//	    + loadFrac   × (AMAT_data  − L1RT) × (1 − dataOverlap)
//	    + ifetchFrac × (AMAT_fetch − L1RT) × (1 − ifetchOverlap)
//
// The overlap factors account for latency hidden by out-of-order execution
// (data) and fetch-ahead (instructions); the L1 round trip is part of the
// base CPI, so only the excess over a hit is charged.
type CPIModel struct {
	BaseCPI       float64
	BranchFrac    float64
	BranchPenalty float64
	LoadFrac      float64
	DataOverlap   float64
	IFetchFrac    float64
	IFetchOverlap float64
	L1RT          float64
}

// DefaultCPIModel returns the constants used in the Fig 1 reproduction —
// typical of a modern out-of-order server core.
func DefaultCPIModel() CPIModel {
	return CPIModel{
		BaseCPI:       0.5,
		BranchFrac:    0.18,
		BranchPenalty: 20,
		LoadFrac:      0.30,
		DataOverlap:   0.3,
		IFetchFrac:    0.25,
		IFetchOverlap: 0.3,
		L1RT:          2,
	}
}

// CPI computes cycles-per-instruction from a mispredict rate and the two
// hierarchy AMATs (in cycles).
func (m CPIModel) CPI(brMissRate, amatData, amatInstr float64) float64 {
	d := amatData - m.L1RT
	if d < 0 {
		d = 0
	}
	i := amatInstr - m.L1RT
	if i < 0 {
		i = 0
	}
	return m.BaseCPI +
		m.BranchFrac*m.BranchPenalty*brMissRate +
		m.LoadFrac*d*(1-m.DataOverlap) +
		m.IFetchFrac*i*(1-m.IFetchOverlap)
}

// Fig1Result is one optimization's bar pair for one workload class.
type Fig1Result struct {
	Optimization  string
	Class         TraceClass
	BaselineRate  float64 // component metric without the optimization (miss rate or AMAT)
	OptimizedRate float64
	Speedup       float64 // CPI(baseline)/CPI(optimized)
}

// hierarchyPair builds a Table 2-style L1 (64KB/8w/2cyc) + L2 (2MB/16w/16cyc)
// hierarchy with a 200-cycle memory penalty.
func hierarchyPair(name string) (*cachesim.Cache, *cachesim.Cache, *cachesim.Hierarchy) {
	l1 := cachesim.New(cachesim.Config{Name: name + "-L1", SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, RoundTripCycles: 2}, nil)
	l2 := cachesim.New(cachesim.Config{Name: name + "-L2", SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, RoundTripCycles: 16}, nil)
	return l1, l2, cachesim.NewHierarchy(120, l1, l2)
}

// MeasureDataAMAT replays trace through a fresh L1+L2 hierarchy with the
// given data prefetcher (which fills L1) and returns the average memory
// access time in cycles and the L1 demand miss rate.
func MeasureDataAMAT(pf DataPrefetcher, trace []MemAccess) (amat, l1Miss float64) {
	l1, _, h := hierarchyPair("d")
	for _, a := range trace {
		hitBefore := l1.Probe(a.Addr)
		h.Access(a.Addr)
		pf.Observe(a.PC, a.Addr, hitBefore, l1)
	}
	return h.AMAT(), 1 - l1.Stats.HitRate()
}

// MeasureInstrAMAT replays a line-granularity fetch trace through a fresh
// L1I+L2 hierarchy with the given instruction prefetcher.
func MeasureInstrAMAT(pf InstrPrefetcher, trace []cachesim.Addr) (amat, l1Miss float64) {
	l1, _, h := hierarchyPair("i")
	for _, a := range trace {
		hitBefore := l1.Probe(a)
		h.Access(a)
		pf.Observe(a, hitBefore, l1)
	}
	return h.AMAT(), 1 - l1.Stats.HitRate()
}

// measureProfileGuidedAMAT implements the Ripple-style study: a profiling
// pass classifies single-use ("transient") lines; the measured pass bypasses
// the L1 for them (they are served from L2/memory without polluting L1),
// protecting reused lines.
func measureProfileGuidedAMAT(trace []cachesim.Addr) float64 {
	const lineBytes = 64
	counts := make(map[cachesim.Addr]int)
	for _, a := range trace {
		counts[a/lineBytes]++
	}
	l1, l2, _ := hierarchyPair("r")
	var totalCycles, accesses float64
	for _, a := range trace {
		accesses++
		if counts[a/lineBytes] <= 1 {
			// Transient: bypass L1, fetch from L2/memory directly.
			totalCycles += 2 // L1 lookup still happens
			if l2.Access(a) {
				totalCycles += 16
			} else {
				totalCycles += 16 + 120
			}
			continue
		}
		totalCycles += 2
		if !l1.Access(a) {
			if l2.Access(a) {
				totalCycles += 16
			} else {
				totalCycles += 16 + 120
			}
		}
	}
	return totalCycles / accesses
}

// typical holds the per-class baseline metrics of the components *not* under
// study, so each optimization's speedup is isolated (matching Fig 1's
// per-optimization normalization).
type typical struct {
	brMiss    float64
	amatData  float64
	amatInstr float64
}

func measureTypical(class TraceClass, n int, seed int64) typical {
	r := rand.New(rand.NewSource(seed))
	br := MeasureMispredictRate(NewGShare(12, 8), GenBranchTrace(class, n, r))
	ad, _ := MeasureDataAMAT(NonePrefetcher{}, GenDataTrace(class, n, r))
	ai, _ := MeasureInstrAMAT(NoneIPrefetcher{}, GenInstrTrace(class, n, r))
	return typical{brMiss: br, amatData: ad, amatInstr: ai}
}

// RunFig1 reproduces Figure 1: for each of the four optimizations and each
// workload class, measure the relevant component with and without the
// optimization on synthetic traces and convert to a speedup via the CPI
// model.
func RunFig1(n int, seed int64) []Fig1Result {
	model := DefaultCPIModel()
	var out []Fig1Result
	for _, class := range []TraceClass{Monolithic, Microservice} {
		typ := measureTypical(class, n, seed)
		stream := func(tag int64) *rand.Rand {
			// Hash-derived per-(tag, class) seeds: the old XOR-of-strides mix
			// could collide across nearby base seeds.
			return rand.New(rand.NewSource(sim.DeriveSeed(sim.DeriveSeed(seed, tag), int64(class))))
		}

		// D-Prefetcher: Pythia-like vs none.
		dt := GenDataTrace(class, n, stream(1))
		baseD, _ := MeasureDataAMAT(NonePrefetcher{}, dt)
		optD, _ := MeasureDataAMAT(NewPythiaLike(), dt)
		if optD > baseD {
			optD = baseD
		}
		out = append(out, Fig1Result{
			Optimization: "D-Prefetcher", Class: class,
			BaselineRate: baseD, OptimizedRate: optD,
			Speedup: model.CPI(typ.brMiss, baseD, typ.amatInstr) / model.CPI(typ.brMiss, optD, typ.amatInstr),
		})

		// Branch predictor: perceptron vs gshare.
		bt := GenBranchTrace(class, n, stream(2))
		baseB := MeasureMispredictRate(NewGShare(12, 8), bt)
		optB := MeasureMispredictRate(NewPerceptron(2048, 32), bt)
		if optB > baseB {
			optB = baseB
		}
		out = append(out, Fig1Result{
			Optimization: "Branch Predictor", Class: class,
			BaselineRate: baseB, OptimizedRate: optB,
			Speedup: model.CPI(baseB, typ.amatData, typ.amatInstr) / model.CPI(optB, typ.amatData, typ.amatInstr),
		})

		// I-Prefetcher: I-SPY-like vs none.
		it := GenInstrTrace(class, n, stream(3))
		baseI, _ := MeasureInstrAMAT(NoneIPrefetcher{}, it)
		optI, _ := MeasureInstrAMAT(NewISpyLike(), it)
		if optI > baseI {
			optI = baseI
		}
		out = append(out, Fig1Result{
			Optimization: "I-Prefetcher", Class: class,
			BaselineRate: baseI, OptimizedRate: optI,
			Speedup: model.CPI(typ.brMiss, typ.amatData, baseI) / model.CPI(typ.brMiss, typ.amatData, optI),
		})

		// I-Cache replacement: profile-guided bypass vs LRU.
		var rt []cachesim.Addr
		if class == Monolithic {
			rt = GenInstrTraceWithTransients(n, stream(4))
		} else {
			rt = GenInstrTrace(class, n, stream(4))
		}
		baseR, _ := MeasureInstrAMAT(NoneIPrefetcher{}, rt)
		optR := measureProfileGuidedAMAT(rt)
		if optR > baseR {
			optR = baseR
		}
		out = append(out, Fig1Result{
			Optimization: "I-Cache Replace", Class: class,
			BaselineRate: baseR, OptimizedRate: optR,
			Speedup: model.CPI(typ.brMiss, typ.amatData, baseR) / model.CPI(typ.brMiss, typ.amatData, optR),
		})
	}
	return out
}
