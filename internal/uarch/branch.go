// Package uarch models the four published microarchitectural optimizations
// that paper §2.2 (Fig 1) evaluates on monolithic vs microservice workloads:
//
//   - a Pythia-style reinforcement-learning data prefetcher vs no prefetcher,
//   - a perceptron branch predictor vs a simple gshare,
//   - an I-SPY-style context-driven instruction prefetcher vs none,
//   - a Ripple-style profile-guided I-cache replacement vs LRU.
//
// The models are deliberately lightweight: Fig 1's point is the differential
// benefit between workload classes, which follows from footprint and
// predictability differences that these models capture directly.
package uarch

import "math"

// BranchPredictor predicts taken/not-taken and learns from outcomes.
type BranchPredictor interface {
	Predict(pc uint64, history uint64) bool
	Update(pc uint64, history uint64, taken bool)
	Name() string
}

// GShare is the baseline predictor: a table of 2-bit saturating counters
// indexed by PC XOR global history.
type GShare struct {
	table    []int8
	histBits uint
}

// NewGShare builds a gshare predictor with 2^indexBits counters using
// histBits bits of global history.
func NewGShare(indexBits, histBits uint) *GShare {
	return &GShare{table: make([]int8, 1<<indexBits), histBits: histBits}
}

func (g *GShare) index(pc, history uint64) int {
	mask := uint64(len(g.table) - 1)
	h := history & ((1 << g.histBits) - 1)
	return int((pc ^ h) & mask)
}

// Predict implements BranchPredictor.
func (g *GShare) Predict(pc, history uint64) bool {
	return g.table[g.index(pc, history)] >= 0
}

// Update implements BranchPredictor.
func (g *GShare) Update(pc, history uint64, taken bool) {
	i := g.index(pc, history)
	if taken {
		if g.table[i] < 1 {
			g.table[i]++
		}
	} else {
		if g.table[i] > -2 {
			g.table[i]--
		}
	}
}

// Name implements BranchPredictor.
func (g *GShare) Name() string { return "gshare" }

// Perceptron is the Jiménez & Lin perceptron predictor: per-branch weight
// vectors over global-history bits, trained online. It captures long linear
// correlations that gshare's indexed counters cannot.
type Perceptron struct {
	weights [][]int32
	histLen int
	theta   int32
	tableSz uint64
}

// NewPerceptron builds a perceptron predictor with `entries` weight vectors
// over histLen history bits.
func NewPerceptron(entries int, histLen int) *Perceptron {
	p := &Perceptron{
		weights: make([][]int32, entries),
		histLen: histLen,
		// Optimal threshold from the original paper: 1.93*h + 14.
		theta:   int32(math.Floor(1.93*float64(histLen) + 14)),
		tableSz: uint64(entries),
	}
	for i := range p.weights {
		p.weights[i] = make([]int32, histLen+1) // +1 bias weight
	}
	return p
}

func (p *Perceptron) output(pc, history uint64) int32 {
	w := p.weights[pc%p.tableSz]
	y := w[0] // bias
	for i := 0; i < p.histLen; i++ {
		if history&(1<<uint(i)) != 0 {
			y += w[i+1]
		} else {
			y -= w[i+1]
		}
	}
	return y
}

// Predict implements BranchPredictor.
func (p *Perceptron) Predict(pc, history uint64) bool {
	return p.output(pc, history) >= 0
}

// Update implements BranchPredictor.
func (p *Perceptron) Update(pc, history uint64, taken bool) {
	y := p.output(pc, history)
	pred := y >= 0
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if pred == taken && mag > p.theta {
		return
	}
	w := p.weights[pc%p.tableSz]
	t := int32(-1)
	if taken {
		t = 1
	}
	w[0] += t
	for i := 0; i < p.histLen; i++ {
		x := int32(-1)
		if history&(1<<uint(i)) != 0 {
			x = 1
		}
		w[i+1] += t * x
	}
}

// Name implements BranchPredictor.
func (p *Perceptron) Name() string { return "perceptron" }

// BranchEvent is one dynamic branch in a trace.
type BranchEvent struct {
	PC    uint64
	Taken bool
}

// MeasureMispredictRate runs predictor pr over the trace, maintaining global
// history, and returns the misprediction rate.
func MeasureMispredictRate(pr BranchPredictor, trace []BranchEvent) float64 {
	if len(trace) == 0 {
		return 0
	}
	var history uint64
	miss := 0
	for _, b := range trace {
		if pr.Predict(b.PC, history) != b.Taken {
			miss++
		}
		pr.Update(b.PC, history, b.Taken)
		history <<= 1
		if b.Taken {
			history |= 1
		}
	}
	return float64(miss) / float64(len(trace))
}
