package uarch

import (
	"math/rand"

	"umanycore/internal/cachesim"
)

// Trace generators for the two workload classes of Fig 1.
//
// Monolithic programs (MySQL, Cassandra, Kafka, Clang, WordPress in the
// paper) have multi-MB data and instruction footprints, long strided scans,
// and branches correlated with history beyond a short predictor's reach.
// Microservice handlers have sub-MB footprints, high cache residency, and
// short, heavily biased control flow (§3.5). The generators below encode
// exactly those properties while keeping overall event rates realistic
// (L1 hit rates in the 70–95% range for monoliths, >95% for handlers).

// TraceClass selects the workload class to synthesize.
type TraceClass int

// Workload classes.
const (
	Monolithic TraceClass = iota
	Microservice
)

func (c TraceClass) String() string {
	if c == Monolithic {
		return "monolithic"
	}
	return "microservice"
}

// GenBranchTrace synthesizes n dynamic branches of the given class.
//
// Monolithic blocks consist of 12 mildly-biased "filler" branches followed
// by a branch whose outcome equals the block's first outcome — a correlation
// at history distance 12, visible to a 32-bit-history perceptron but beyond
// an 8-bit gshare. Loops and unbiased data-dependent branches round out the
// mix. Microservice handlers are short bursts of heavily biased branches
// with history cleared between requests.
func GenBranchTrace(class TraceClass, n int, r *rand.Rand) []BranchEvent {
	trace := make([]BranchEvent, 0, n)
	switch class {
	case Monolithic:
		for len(trace) < n {
			p := r.Float64()
			switch {
			case p < 0.35: // correlation block: 12 random heads, 12 correlated tails
				heads := make([]bool, 12)
				for j := range heads {
					heads[j] = r.Float64() < 0.5
					if len(trace) < n {
						trace = append(trace, BranchEvent{PC: uint64(0x1000 + j*4), Taken: heads[j]})
					}
				}
				// Tail j's outcome equals the branch 12 back (head j): a
				// single-bit history correlation at distance 12.
				for j := 0; j < 12 && len(trace) < n; j++ {
					trace = append(trace, BranchEvent{PC: uint64(0x2000 + j*4), Taken: heads[j]})
				}
			case p < 0.80: // loop: 15 taken then 1 not-taken
				pc := uint64(0x9000 + uint64(r.Intn(16))*4)
				for j := 0; j < 15 && len(trace) < n; j++ {
					trace = append(trace, BranchEvent{PC: pc, Taken: true})
				}
				if len(trace) < n {
					trace = append(trace, BranchEvent{PC: pc, Taken: false})
				}
			default: // 90%-biased data-dependent branches
				pc := uint64(0x5000 + uint64(r.Intn(256))*4)
				trace = append(trace, BranchEvent{PC: pc, Taken: r.Float64() < 0.9})
			}
		}
	case Microservice:
		for len(trace) < n {
			for j := 0; j < 40 && len(trace) < n; j++ {
				pc := uint64(0x2000 + uint64(r.Intn(12))*4)
				trace = append(trace, BranchEvent{PC: pc, Taken: r.Float64() < 0.95})
			}
		}
	}
	return trace[:n]
}

// GenDataTrace synthesizes n dynamic memory accesses.
//
// Monolithic: 70% to a hot 32KB region (L1-resident), 25% strided scans at
// 8-byte granularity over large fresh regions (prefetchable, L1-missing),
// 5% pointer chasing over 64MB (unprefetchable). Microservice: 90% to a hot
// 16KB region and 10% over the 0.5MB handler footprint of paper §3.5 — all
// L2-resident, with nothing for a prefetcher to learn.
func GenDataTrace(class TraceClass, n int, r *rand.Rand) []MemAccess {
	trace := make([]MemAccess, 0, n)
	switch class {
	case Monolithic:
		const streams = 4
		pos := make([]cachesim.Addr, streams)
		for i := range pos {
			// Stream regions far from the hot region and each other.
			pos[i] = cachesim.Addr(1<<26) + cachesim.Addr(i)*(256<<20)
		}
		for len(trace) < n {
			p := r.Float64()
			switch {
			case p < 0.82:
				trace = append(trace, MemAccess{PC: uint64(0x200 + r.Intn(16)*4), Addr: cachesim.Addr(r.Intn(32 << 10))})
			case p < 0.98:
				s := r.Intn(streams)
				trace = append(trace, MemAccess{PC: uint64(0x100 + s*4), Addr: pos[s]})
				pos[s] += 8 // 8-byte stride: one miss per 8 accesses
			default:
				trace = append(trace, MemAccess{PC: 0x777, Addr: cachesim.Addr(1<<30) + cachesim.Addr(r.Intn(64<<20))})
			}
		}
	case Microservice:
		const hot = 16 << 10
		const warm = 512 << 10
		for len(trace) < n {
			var a cachesim.Addr
			if r.Float64() < 0.95 {
				a = cachesim.Addr(r.Intn(hot))
			} else {
				a = cachesim.Addr(hot + r.Intn(warm-hot))
			}
			trace = append(trace, MemAccess{PC: uint64(0x300 + r.Intn(8)*4), Addr: a})
		}
	}
	return trace[:n]
}

// GenHandlerPhases synthesizes a microservice handler's data accesses with
// explicit phase structure: 95% to the hot request state, most of the rest
// to a slowly advancing 32KB window of the 0.5MB handler footprint (the
// phase the handler is currently executing), and a residue of cold touches.
// It is the trace internal/memmodel uses to size per-core memory time —
// temporal reuse is what matters there, whereas Fig 1's prefetcher study
// uses GenDataTrace's pattern-free variant.
func GenHandlerPhases(n int, r *rand.Rand) []MemAccess {
	const hot = 16 << 10
	const warm = 512 << 10
	const window = 32 << 10
	trace := make([]MemAccess, 0, n)
	winBase := hot
	for i := 0; len(trace) < n; i++ {
		if i%4000 == 3999 {
			winBase += 4 << 10
			if winBase+window > warm {
				winBase = hot
			}
		}
		var a cachesim.Addr
		p := r.Float64()
		switch {
		case p < 0.95:
			a = cachesim.Addr(r.Intn(hot))
		case p < 0.995:
			a = cachesim.Addr(winBase + r.Intn(window))
		default:
			a = cachesim.Addr(hot + r.Intn(warm-hot))
		}
		trace = append(trace, MemAccess{PC: uint64(0x300 + r.Intn(8)*4), Addr: a})
	}
	return trace[:n]
}

// GenInstrTrace synthesizes n instruction-fetch line addresses (one entry
// per 64B fetch line).
//
// Monolithic: 70% of fetches walk 12 hot functions (24KB, L1I-resident);
// 30% walk a fixed repeating sequence of 96 cold functions (192KB — far
// over a 64KB L1I, so it thrashes under LRU, but the recurrence makes it
// learnable by a context-driven prefetcher). Microservice: 24 functions,
// 48KB, fully L1I-resident.
func GenInstrTrace(class TraceClass, n int, r *rand.Rand) []cachesim.Addr {
	const funcLines = 32 // 32 lines × 64B = 2KB per function
	trace := make([]cachesim.Addr, 0, n)
	emitFunc := func(funcID int, base cachesim.Addr) {
		start := base + cachesim.Addr(funcID)*funcLines*64
		for l := 0; l < funcLines && len(trace) < n; l++ {
			trace = append(trace, start+cachesim.Addr(l*64))
		}
	}
	switch class {
	case Monolithic:
		seq := make([]int, 96)
		for i := range seq {
			seq[i] = i
		}
		r.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
		si := 0
		for len(trace) < n {
			if r.Float64() < 0.82 {
				emitFunc(r.Intn(12), 0) // hot region at address 0
			} else {
				emitFunc(seq[si%len(seq)], 1<<24) // cold sequence region
				si++
			}
		}
	case Microservice:
		for len(trace) < n {
			emitFunc(r.Intn(24), 0)
		}
	}
	return trace[:n]
}

// GenInstrTraceWithTransients is a monolithic-style instruction trace whose
// hot working set (56KB) almost fills the 64KB L1I, plus single-use cold
// lines (logging/error paths) that pollute it — the pattern Ripple-style
// profile-guided replacement removes.
func GenInstrTraceWithTransients(n int, r *rand.Rand) []cachesim.Addr {
	const funcLines = 32
	const hotFuncs = 28 // 28 × 2KB = 56KB hot code
	trace := make([]cachesim.Addr, 0, n)
	cold := cachesim.Addr(1 << 30)
	for len(trace) < n {
		f := r.Intn(hotFuncs)
		start := cachesim.Addr(f) * funcLines * 64
		for l := 0; l < funcLines && len(trace) < n; l++ {
			trace = append(trace, start+cachesim.Addr(l*64))
			if r.Intn(12) == 0 && len(trace) < n {
				trace = append(trace, cold)
				cold += 64
			}
		}
	}
	return trace[:n]
}
