package uarch

import "umanycore/internal/cachesim"

// InstrPrefetcher prefetches into the instruction cache.
type InstrPrefetcher interface {
	Observe(fetchAddr cachesim.Addr, hit bool, target *cachesim.Cache)
	Name() string
}

// NoneIPrefetcher is the baseline (no instruction prefetching).
type NoneIPrefetcher struct{}

// Observe implements InstrPrefetcher.
func (NoneIPrefetcher) Observe(cachesim.Addr, bool, *cachesim.Cache) {}

// Name implements InstrPrefetcher.
func (NoneIPrefetcher) Name() string { return "none" }

// ISpyLike is a context-driven instruction prefetcher in the spirit of I-SPY
// (Khan et al., MICRO'20): it records, for each i-cache miss, the fetch
// context (the preceding miss line) that led to it, and on re-observing a
// context it prefetches the lines that historically followed. With
// coalescing, a context maps to a small set of successor lines.
type ISpyLike struct {
	successors map[cachesim.Addr][]cachesim.Addr // context line -> learned successor lines
	lastMiss   cachesim.Addr
	haveMiss   bool
	maxSucc    int
}

// NewISpyLike builds the prefetcher.
func NewISpyLike() *ISpyLike {
	return &ISpyLike{successors: make(map[cachesim.Addr][]cachesim.Addr), maxSucc: 8}
}

// Observe implements InstrPrefetcher.
func (s *ISpyLike) Observe(fetchAddr cachesim.Addr, hit bool, target *cachesim.Cache) {
	const lineBytes = 64
	line := fetchAddr / lineBytes

	// On every fetch of a line we have learned successors for, prefetch them
	// (conditional prefetch injection on context recurrence).
	if succ, ok := s.successors[line]; ok {
		for _, sl := range succ {
			target.Fill(sl * lineBytes)
		}
	}

	if !hit {
		if s.haveMiss && s.lastMiss != line {
			lst := s.successors[s.lastMiss]
			found := false
			for _, x := range lst {
				if x == line {
					found = true
					break
				}
			}
			if !found && len(lst) < s.maxSucc {
				s.successors[s.lastMiss] = append(lst, line)
			}
		}
		s.lastMiss = line
		s.haveMiss = true
	}
}

// Name implements InstrPrefetcher.
func (s *ISpyLike) Name() string { return "i-spy-like" }

// NextLineIPrefetcher prefetches the next N sequential lines on every fetch;
// a simple reference point used in tests.
type NextLineIPrefetcher struct{ N int }

// Observe implements InstrPrefetcher.
func (p NextLineIPrefetcher) Observe(fetchAddr cachesim.Addr, hit bool, target *cachesim.Cache) {
	const lineBytes = 64
	line := fetchAddr / lineBytes
	for k := 1; k <= p.N; k++ {
		target.Fill((line + cachesim.Addr(k)) * lineBytes)
	}
}

// Name implements InstrPrefetcher.
func (p NextLineIPrefetcher) Name() string { return "next-line" }

// MeasureIMissRate replays an instruction fetch trace through a fresh cache
// with the given prefetcher and returns the demand miss rate.
func MeasureIMissRate(pf InstrPrefetcher, mkCache func() *cachesim.Cache, trace []cachesim.Addr) float64 {
	c := mkCache()
	for _, a := range trace {
		hit := c.Access(a)
		pf.Observe(a, hit, c)
	}
	return 1 - c.Stats.HitRate()
}

// RippleLike is a profile-guided I-cache replacement policy in the spirit of
// Ripple (Khan et al., ISCA'21): a profiling pass classifies lines that
// historically exhibit no short-term reuse ("transient"), and the runtime
// policy preferentially evicts transient lines before falling back to LRU.
type RippleLike struct {
	lru       cachesim.ReplacementPolicy
	transient map[int]map[int]bool // set -> way -> transient?
	isTrans   func(set, way int) bool
	ways      int
}

// NewRippleLike wraps LRU for sets×ways; markTransient is consulted lazily.
func NewRippleLike(sets, ways int) *RippleLike {
	r := &RippleLike{
		lru:       cachesim.NewLRU(sets, ways),
		transient: make(map[int]map[int]bool),
		ways:      ways,
	}
	return r
}

// MarkTransient flags way w of set s as holding a no-reuse line; the next
// victim selection in s prefers it.
func (r *RippleLike) MarkTransient(set, way int, transient bool) {
	m := r.transient[set]
	if m == nil {
		m = make(map[int]bool)
		r.transient[set] = m
	}
	m[way] = transient
}

// Touch implements cachesim.ReplacementPolicy.
func (r *RippleLike) Touch(set, way int) { r.lru.Touch(set, way) }

// Victim implements cachesim.ReplacementPolicy: evict a transient way if one
// exists, else LRU.
func (r *RippleLike) Victim(set int) int {
	if m, ok := r.transient[set]; ok {
		for w, tr := range m {
			if tr {
				delete(m, w)
				return w
			}
		}
	}
	return r.lru.Victim(set)
}

// Name implements cachesim.ReplacementPolicy.
func (r *RippleLike) Name() string { return "ripple-like" }
