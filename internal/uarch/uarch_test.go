package uarch

import (
	"math/rand"
	"testing"

	"umanycore/internal/cachesim"
)

func l1dTest() *cachesim.Cache {
	return cachesim.New(cachesim.Config{Name: "L1D", SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, RoundTripCycles: 2}, nil)
}

func l1iTest() *cachesim.Cache {
	return cachesim.New(cachesim.Config{Name: "L1I", SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, RoundTripCycles: 2}, nil)
}

func TestGShareLearnsBias(t *testing.T) {
	g := NewGShare(10, 8)
	trace := make([]BranchEvent, 10000)
	for i := range trace {
		trace[i] = BranchEvent{PC: 0x40, Taken: true}
	}
	if mr := MeasureMispredictRate(g, trace); mr > 0.01 {
		t.Fatalf("gshare mispredict on constant branch = %v", mr)
	}
}

func TestGShareLearnsLoop(t *testing.T) {
	g := NewGShare(12, 8)
	var trace []BranchEvent
	for i := 0; i < 2000; i++ {
		for j := 0; j < 7; j++ {
			trace = append(trace, BranchEvent{PC: 0x40, Taken: true})
		}
		trace = append(trace, BranchEvent{PC: 0x40, Taken: false})
	}
	// With 8-bit history a 7T/1N loop is fully predictable after warmup.
	if mr := MeasureMispredictRate(g, trace); mr > 0.05 {
		t.Fatalf("gshare loop mispredict = %v", mr)
	}
}

// Correlation at distance 12 with noisy branches in between: beyond gshare's
// 8-bit history, learnable by a 32-bit perceptron.
func TestPerceptronBeatsGShareOnLongCorrelation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var trace []BranchEvent
	for i := 0; i < 4000; i++ {
		first := r.Float64() < 0.5
		trace = append(trace, BranchEvent{PC: 0x1000, Taken: first})
		for j := 0; j < 11; j++ {
			trace = append(trace, BranchEvent{PC: uint64(0x1100 + j*4), Taken: r.Float64() < 0.7})
		}
		trace = append(trace, BranchEvent{PC: 0x2000, Taken: first})
	}
	g := MeasureMispredictRate(NewGShare(12, 8), trace)
	p := MeasureMispredictRate(NewPerceptron(2048, 32), trace)
	if g < p+0.015 {
		t.Fatalf("gshare (%v) should be clearly worse than perceptron (%v)", g, p)
	}
}

func TestMeasureMispredictEmpty(t *testing.T) {
	if MeasureMispredictRate(NewGShare(10, 8), nil) != 0 {
		t.Fatal("empty trace should be 0")
	}
}

func TestStridePrefetcherCoversStream(t *testing.T) {
	var trace []MemAccess
	for i := 0; i < 20000; i++ {
		trace = append(trace, MemAccess{PC: 0x10, Addr: cachesim.Addr(i * 64)})
	}
	base := MeasureMissRate(NonePrefetcher{}, l1dTest, trace)
	opt := MeasureMissRate(NewStridePrefetcher(4), l1dTest, trace)
	if base < 0.9 {
		t.Fatalf("stream should miss without prefetch: %v", base)
	}
	if opt > 0.2 {
		t.Fatalf("stride prefetcher left miss rate %v", opt)
	}
}

func TestPythiaLearnsStride(t *testing.T) {
	var trace []MemAccess
	for i := 0; i < 40000; i++ {
		trace = append(trace, MemAccess{PC: 0x10, Addr: cachesim.Addr(i * 64)})
	}
	base := MeasureMissRate(NonePrefetcher{}, l1dTest, trace)
	opt := MeasureMissRate(NewPythiaLike(), l1dTest, trace)
	if opt > base/2 {
		t.Fatalf("pythia-like ineffective: base %v opt %v", base, opt)
	}
}

func TestISpyLearnsCallSequence(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	trace := GenInstrTrace(Monolithic, 300000, r)
	base := MeasureIMissRate(NoneIPrefetcher{}, l1iTest, trace)
	opt := MeasureIMissRate(NewISpyLike(), l1iTest, trace)
	if base < 0.15 {
		t.Fatalf("monolithic i-trace should thrash 64KB L1I: %v", base)
	}
	if opt > base*0.6 {
		t.Fatalf("i-spy-like ineffective: base %v opt %v", base, opt)
	}
}

func TestNextLinePrefetcher(t *testing.T) {
	var trace []cachesim.Addr
	for i := 0; i < 10000; i++ {
		trace = append(trace, cachesim.Addr(i*64))
	}
	opt := MeasureIMissRate(NextLineIPrefetcher{N: 4}, l1iTest, trace)
	if opt > 0.3 {
		t.Fatalf("next-line miss rate = %v", opt)
	}
}

func TestRippleLikePolicy(t *testing.T) {
	r := NewRippleLike(4, 2)
	r.Touch(0, 0)
	r.Touch(0, 1)
	// Without transient marks, falls back to LRU: way 0 is LRU.
	if v := r.Victim(0); v != 0 {
		t.Fatalf("LRU fallback victim = %d", v)
	}
	r.MarkTransient(0, 1, true)
	if v := r.Victim(0); v != 1 {
		t.Fatalf("transient victim = %d", v)
	}
	// Mark consumed: reverts to LRU.
	if v := r.Victim(0); v != 0 {
		t.Fatalf("post-consume victim = %d", v)
	}
	if r.Name() != "ripple-like" {
		t.Fatal("name")
	}
}

func TestTraceClassString(t *testing.T) {
	if Monolithic.String() != "monolithic" || Microservice.String() != "microservice" {
		t.Fatal("class names")
	}
}

func TestGenTracesLengths(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, class := range []TraceClass{Monolithic, Microservice} {
		if got := len(GenBranchTrace(class, 5000, r)); got != 5000 {
			t.Fatalf("branch trace len = %d", got)
		}
		if got := len(GenDataTrace(class, 5000, r)); got != 5000 {
			t.Fatalf("data trace len = %d", got)
		}
		if got := len(GenInstrTrace(class, 5000, r)); got != 5000 {
			t.Fatalf("instr trace len = %d", got)
		}
	}
	if got := len(GenInstrTraceWithTransients(5000, r)); got != 5000 {
		t.Fatalf("transient trace len = %d", got)
	}
}

func TestMicroTracesAreCacheResident(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	_, dMiss := MeasureDataAMAT(NonePrefetcher{}, GenDataTrace(Microservice, 100000, r))
	if dMiss > 0.15 {
		t.Fatalf("micro data L1 miss = %v, want small", dMiss)
	}
	_, iMiss := MeasureInstrAMAT(NoneIPrefetcher{}, GenInstrTrace(Microservice, 100000, r))
	if iMiss > 0.05 {
		t.Fatalf("micro instr L1 miss = %v, want ~0", iMiss)
	}
}

func TestCPIModel(t *testing.T) {
	m := DefaultCPIModel()
	base := m.CPI(0.05, 10, 5)
	if base <= m.BaseCPI {
		t.Fatal("CPI should exceed base with nonzero rates")
	}
	// Lower mispredict rate → lower CPI.
	if m.CPI(0.01, 10, 5) >= base {
		t.Fatal("better branch prediction should lower CPI")
	}
	// AMAT below L1RT clamps to zero extra cost.
	if m.CPI(0, 1, 1) != m.BaseCPI {
		t.Fatalf("clamped CPI = %v", m.CPI(0, 1, 1))
	}
}

// The headline reproduction check for Fig 1: every optimization helps
// monolithic workloads substantially more than microservice workloads
// (paper: mono +2–19%, micro +0–2%).
func TestFig1Differential(t *testing.T) {
	results := RunFig1(150000, 42)
	if len(results) != 8 {
		t.Fatalf("want 8 bars, got %d", len(results))
	}
	mono := map[string]float64{}
	micro := map[string]float64{}
	for _, res := range results {
		if res.Speedup < 0.999 {
			t.Errorf("%s/%s speedup %v < 1", res.Optimization, res.Class, res.Speedup)
		}
		if res.Class == Monolithic {
			mono[res.Optimization] = res.Speedup
		} else {
			micro[res.Optimization] = res.Speedup
		}
	}
	for _, opt := range []string{"D-Prefetcher", "Branch Predictor", "I-Prefetcher"} {
		if mono[opt] < 1.05 {
			t.Errorf("%s mono speedup %v, want >= 1.05", opt, mono[opt])
		}
		if micro[opt] > 1.05 {
			t.Errorf("%s micro speedup %v, want <= 1.05", opt, micro[opt])
		}
		if mono[opt] < micro[opt]+0.04 {
			t.Errorf("%s differential too small: mono %v micro %v", opt, mono[opt], micro[opt])
		}
	}
	// Replacement is a small effect even for monoliths (paper: 2%).
	if mono["I-Cache Replace"] < 1.002 || mono["I-Cache Replace"] > 1.15 {
		t.Errorf("I-Cache Replace mono speedup %v out of band", mono["I-Cache Replace"])
	}
	if micro["I-Cache Replace"] > 1.02 {
		t.Errorf("I-Cache Replace micro speedup %v, want ~1.0", micro["I-Cache Replace"])
	}
}

func TestFig1Deterministic(t *testing.T) {
	a := RunFig1(20000, 7)
	b := RunFig1(20000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic result at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
