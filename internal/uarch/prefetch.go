package uarch

import (
	"umanycore/internal/cachesim"
)

// DataPrefetcher observes demand accesses and issues prefetch fills into a
// cache.
type DataPrefetcher interface {
	// Observe is called on each demand access with the accessing PC and
	// address, plus whether the demand access hit. It may call target.Fill.
	Observe(pc uint64, addr cachesim.Addr, hit bool, target *cachesim.Cache)
	Name() string
}

// NonePrefetcher is the baseline: no prefetching.
type NonePrefetcher struct{}

// Observe implements DataPrefetcher.
func (NonePrefetcher) Observe(uint64, cachesim.Addr, bool, *cachesim.Cache) {}

// Name implements DataPrefetcher.
func (NonePrefetcher) Name() string { return "none" }

// PythiaLike is a reinforcement-learning offset prefetcher in the spirit of
// Pythia (Bera et al., MICRO'21): for each PC signature it maintains
// Q-values over a set of candidate line offsets, selects the best-valued
// offset to prefetch, and rewards offsets whose prefetches turn out useful
// (the demanded line was previously prefetched by that offset).
type PythiaLike struct {
	offsets  []int
	q        map[uint64][]float64 // pc signature -> Q per offset
	inflight map[cachesim.Addr]issued
	lastAddr map[uint64]cachesim.Addr
	alpha    float64
	degree   int
}

type issued struct {
	sig    uint64
	offIdx int
}

// NewPythiaLike builds the prefetcher with the default candidate offsets.
func NewPythiaLike() *PythiaLike {
	return &PythiaLike{
		offsets:  []int{1, 2, 3, 4, 8, 16, -1},
		q:        make(map[uint64][]float64),
		inflight: make(map[cachesim.Addr]issued),
		lastAddr: make(map[uint64]cachesim.Addr),
		alpha:    0.3,
		degree:   2,
	}
}

func (p *PythiaLike) qv(sig uint64) []float64 {
	if v, ok := p.q[sig]; ok {
		return v
	}
	v := make([]float64, len(p.offsets))
	p.q[sig] = v
	return v
}

// Observe implements DataPrefetcher.
func (p *PythiaLike) Observe(pc uint64, addr cachesim.Addr, hit bool, target *cachesim.Cache) {
	const lineBytes = 64
	line := addr / lineBytes
	sig := pc

	// Reward: if this demanded line is one we prefetched, credit the
	// (signature, offset) pair that issued it.
	if iss, ok := p.inflight[line]; ok {
		q := p.qv(iss.sig)
		q[iss.offIdx] += p.alpha * (1.0 - q[iss.offIdx])
		delete(p.inflight, line)
	}

	// Penalize stale prefetches lazily via decay when we issue new ones
	// (keeps the model O(1) per access).

	// Choose the best offsets for this signature; fall back to the observed
	// delta from this PC's previous access (stride learning bootstrap).
	q := p.qv(sig)
	if last, ok := p.lastAddr[sig]; ok {
		delta := int(int64(line) - int64(last/lineBytes))
		for i, off := range p.offsets {
			if off == delta {
				q[i] += p.alpha * 0.5 * (1.0 - q[i])
			}
		}
	}
	p.lastAddr[sig] = addr

	issuedCount := 0
	for issuedCount < p.degree {
		best, bestQ := -1, 0.05 // issue only above a confidence floor
		for i := range q {
			if q[i] > bestQ {
				inUse := false
				pl := cachesim.Addr(int64(line) + int64(p.offsets[i]))
				if _, ok := p.inflight[pl]; ok {
					inUse = true
				}
				if !inUse {
					best, bestQ = i, q[i]
				}
			}
		}
		if best < 0 {
			break
		}
		pl := cachesim.Addr(int64(line) + int64(p.offsets[best]))
		target.Fill(pl * lineBytes)
		p.inflight[pl] = issued{sig: sig, offIdx: best}
		q[best] *= 0.995 // slight decay so useless offsets fade
		issuedCount++
	}
}

// Name implements DataPrefetcher.
func (p *PythiaLike) Name() string { return "pythia-like" }

// StridePrefetcher is a classic per-PC stride prefetcher, provided as an
// additional comparison point and used in unit tests as a known-good
// reference behaviour.
type StridePrefetcher struct {
	last   map[uint64]cachesim.Addr
	stride map[uint64]int64
	conf   map[uint64]int
	degree int
}

// NewStridePrefetcher builds a stride prefetcher with the given degree.
func NewStridePrefetcher(degree int) *StridePrefetcher {
	return &StridePrefetcher{
		last:   make(map[uint64]cachesim.Addr),
		stride: make(map[uint64]int64),
		conf:   make(map[uint64]int),
		degree: degree,
	}
}

// Observe implements DataPrefetcher.
func (s *StridePrefetcher) Observe(pc uint64, addr cachesim.Addr, hit bool, target *cachesim.Cache) {
	if last, ok := s.last[pc]; ok {
		d := int64(addr) - int64(last)
		if d == s.stride[pc] && d != 0 {
			if s.conf[pc] < 4 {
				s.conf[pc]++
			}
		} else {
			s.stride[pc] = d
			s.conf[pc] = 0
		}
		if s.conf[pc] >= 2 {
			for k := 1; k <= s.degree; k++ {
				target.Fill(cachesim.Addr(int64(addr) + d*int64(k)))
			}
		}
	}
	s.last[pc] = addr
}

// Name implements DataPrefetcher.
func (s *StridePrefetcher) Name() string { return "stride" }

// MemAccess is one dynamic memory access in a trace.
type MemAccess struct {
	PC   uint64
	Addr cachesim.Addr
}

// MeasureMissRate replays trace through a fresh cache built by mkCache with
// the given prefetcher and returns the demand miss rate.
func MeasureMissRate(pf DataPrefetcher, mkCache func() *cachesim.Cache, trace []MemAccess) float64 {
	c := mkCache()
	for _, a := range trace {
		hit := c.Access(a.Addr)
		pf.Observe(a.PC, a.Addr, hit, c)
	}
	return 1 - c.Stats.HitRate()
}
