package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tiny() *Cache {
	// 4 sets × 2 ways × 64B lines = 512B.
	return New(Config{Name: "t", SizeBytes: 512, Ways: 2, LineBytes: 64, RoundTripCycles: 2}, nil)
}

func TestColdMissThenHit(t *testing.T) {
	c := tiny()
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access missed")
	}
	if !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64) {
		t.Fatal("next line hit cold")
	}
	st := c.Stats
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny() // 4 sets, 2 ways; addresses mapping to set 0: line numbers 0,4,8,...
	a := func(line int) Addr { return Addr(line * 64) }
	c.Access(a(0))
	c.Access(a(4))
	c.Access(a(0)) // 0 is now MRU
	c.Access(a(8)) // evicts 4 (LRU)
	if !c.Probe(a(0)) {
		t.Fatal("MRU line evicted")
	}
	if c.Probe(a(4)) {
		t.Fatal("LRU line survived")
	}
	if !c.Probe(a(8)) {
		t.Fatal("new line absent")
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats.Evictions)
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := tiny()
	c.Access(0)
	before := c.Stats
	c.Probe(0)
	c.Probe(9999)
	if c.Stats != before {
		t.Fatal("Probe changed stats")
	}
}

func TestFill(t *testing.T) {
	c := tiny()
	c.Fill(128)
	if !c.Probe(128) {
		t.Fatal("Fill did not install")
	}
	if c.Stats.Accesses != 0 {
		t.Fatal("Fill counted as access")
	}
	c.Fill(128) // idempotent
	if !c.Access(128) {
		t.Fatal("prefetched line missed")
	}
}

func TestFlush(t *testing.T) {
	c := tiny()
	c.Access(0)
	c.Flush()
	if c.Probe(0) {
		t.Fatal("line survived flush")
	}
}

func TestWorkingSetFits(t *testing.T) {
	// A 64KB 8-way cache with a 32KB working set should converge to ~100%
	// hits after the first pass.
	c := New(Config{Name: "l1", SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, RoundTripCycles: 2}, nil)
	for pass := 0; pass < 3; pass++ {
		for a := Addr(0); a < 32<<10; a += 64 {
			c.Access(a)
		}
	}
	if hr := c.Stats.HitRate(); hr < 0.66 {
		t.Fatalf("overall hit rate = %v", hr)
	}
	// Final pass alone should be all hits.
	start := c.Stats
	for a := Addr(0); a < 32<<10; a += 64 {
		if !c.Access(a) {
			t.Fatalf("miss at %d on warm pass", a)
		}
	}
	if c.Stats.Hits-start.Hits != (32<<10)/64 {
		t.Fatal("warm pass hit count wrong")
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// A working set 4x the cache size scanned cyclically under LRU yields
	// ~0% hits (classic LRU pathology).
	c := New(Config{Name: "small", SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, RoundTripCycles: 2}, nil)
	for pass := 0; pass < 4; pass++ {
		for a := Addr(0); a < 16<<10; a += 64 {
			c.Access(a)
		}
	}
	if hr := c.Stats.HitRate(); hr > 0.05 {
		t.Fatalf("cyclic thrash hit rate = %v, want ~0", hr)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{SizeBytes: 0, Ways: 1, LineBytes: 64},
		{SizeBytes: 64, Ways: 0, LineBytes: 64},
		{SizeBytes: 64, Ways: 1, LineBytes: 0},
		{SizeBytes: 64, Ways: 4, LineBytes: 64}, // 1 line < 4 ways
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, nil)
		}()
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "l1dtlb", Entries: 128, Ways: 4, RoundTripCycles: 2})
	if tlb.Access(0) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Access(4095) {
		t.Fatal("same-page access missed")
	}
	if tlb.Access(4096) {
		t.Fatal("next page hit cold")
	}
	if tlb.Config().PageBytes != 4096 {
		t.Fatal("default page size not applied")
	}
	if tlb.Stats().Accesses != 3 {
		t.Fatalf("stats = %+v", tlb.Stats())
	}
}

func TestHierarchy(t *testing.T) {
	l1 := New(Config{Name: "l1", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, RoundTripCycles: 2}, nil)
	l2 := New(Config{Name: "l2", SizeBytes: 8 << 10, Ways: 4, LineBytes: 64, RoundTripCycles: 24}, nil)
	h := NewHierarchy(200, l1, l2)

	cyc, lvl := h.Access(0)
	if lvl != 2 || cyc != 2+24+200 {
		t.Fatalf("cold access: cycles=%d level=%d", cyc, lvl)
	}
	cyc, lvl = h.Access(0)
	if lvl != 0 || cyc != 2 {
		t.Fatalf("warm access: cycles=%d level=%d", cyc, lvl)
	}
	// Evict from L1 but not L2: touch enough distinct lines.
	for a := Addr(64); a < 4<<10; a += 64 {
		h.Access(a)
	}
	cyc, lvl = h.Access(0)
	if lvl != 1 || cyc != 2+24 {
		t.Fatalf("L2 hit: cycles=%d level=%d", cyc, lvl)
	}
	if h.AMAT() <= 2 {
		t.Fatalf("AMAT = %v", h.AMAT())
	}
}

func TestHitRateZeroWhenUnused(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("unused HitRate should be 0")
	}
}

// Property: hits + misses == accesses, and repeated access to the same line
// immediately after a miss is always a hit.
func TestAccountingProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := tiny()
		for _, a := range addrs {
			hit1 := c.Access(Addr(a))
			hit2 := c.Access(Addr(a))
			_ = hit1
			if !hit2 {
				return false
			}
		}
		return c.Stats.Hits+c.Stats.Misses == c.Stats.Accesses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cache occupancy never exceeds capacity (evictions keep it
// bounded): after any access sequence, the number of distinct resident
// lines is <= sets*ways.
func TestCapacityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	c := tiny()
	for i := 0; i < 10000; i++ {
		c.Access(Addr(r.Intn(1 << 16)))
	}
	resident := 0
	for a := Addr(0); a < 1<<16; a += 64 {
		if c.Probe(a) {
			resident++
		}
	}
	if resident > 8 {
		t.Fatalf("resident lines = %d > capacity 8", resident)
	}
}
