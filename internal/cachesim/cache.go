// Package cachesim implements set-associative cache and TLB simulators with
// pluggable replacement policies. It reproduces the cache-hierarchy side of
// the paper: the Table 2 hierarchies for all three processors, the hit-rate
// characterization of Fig 9, and the instruction-cache replacement study in
// Fig 1.
package cachesim

import "fmt"

// Addr is a byte address in the simulated address space.
type Addr uint64

// ReplacementPolicy decides which way of a set to evict.
type ReplacementPolicy interface {
	// Touch notes that way `way` of set `set` was accessed.
	Touch(set, way int)
	// Victim selects the way to evict from `set`.
	Victim(set int) int
	// Name identifies the policy.
	Name() string
}

// lruPolicy is classic least-recently-used, tracked with per-set timestamps.
type lruPolicy struct {
	stamp [][]uint64
	clock uint64
}

// NewLRU returns an LRU policy for sets×ways.
func NewLRU(sets, ways int) ReplacementPolicy {
	p := &lruPolicy{stamp: make([][]uint64, sets)}
	for i := range p.stamp {
		p.stamp[i] = make([]uint64, ways)
	}
	return p
}

func (p *lruPolicy) Touch(set, way int) {
	p.clock++
	p.stamp[set][way] = p.clock
}

func (p *lruPolicy) Victim(set int) int {
	best, bestStamp := 0, p.stamp[set][0]
	for w := 1; w < len(p.stamp[set]); w++ {
		if p.stamp[set][w] < bestStamp {
			best, bestStamp = w, p.stamp[set][w]
		}
	}
	return best
}

func (p *lruPolicy) Name() string { return "lru" }

// Stats counts cache events.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns Hits/Accesses, or 0 when unused.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	// RoundTripCycles is the hit round-trip latency (Table 2).
	RoundTripCycles int
}

// Cache is a set-associative cache. It models tags only (no data), which is
// all the experiments consume.
type Cache struct {
	cfg    Config
	sets   int
	tags   [][]Addr
	valid  [][]bool
	policy ReplacementPolicy
	// Stats is exported for direct reading by experiments.
	Stats Stats
}

// New builds a cache from cfg with the given replacement policy (nil means
// LRU).
func New(cfg Config, policy func(sets, ways int) ReplacementPolicy) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 || cfg.LineBytes <= 0 {
		panic(fmt.Sprintf("cachesim: invalid config %+v", cfg))
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	if sets == 0 {
		panic(fmt.Sprintf("cachesim: %s has fewer lines (%d) than ways (%d)", cfg.Name, lines, cfg.Ways))
	}
	c := &Cache{cfg: cfg, sets: sets}
	c.tags = make([][]Addr, sets)
	c.valid = make([][]bool, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]Addr, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
	}
	if policy == nil {
		policy = NewLRU
	}
	c.policy = policy(sets, cfg.Ways)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

func (c *Cache) index(a Addr) (set int, tag Addr) {
	line := a / Addr(c.cfg.LineBytes)
	return int(line % Addr(c.sets)), line / Addr(c.sets)
}

// Access performs a load/fetch of address a, returning whether it hit and
// installing the line on miss.
func (c *Cache) Access(a Addr) bool {
	c.Stats.Accesses++
	set, tag := c.index(a)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.Stats.Hits++
			c.policy.Touch(set, w)
			return true
		}
	}
	c.Stats.Misses++
	c.install(set, tag)
	return false
}

// Probe checks for presence without updating state or stats.
func (c *Cache) Probe(a Addr) bool {
	set, tag := c.index(a)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			return true
		}
	}
	return false
}

// Fill installs address a without counting an access (used by prefetchers).
func (c *Cache) Fill(a Addr) {
	set, tag := c.index(a)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			return // already present
		}
	}
	c.install(set, tag)
}

func (c *Cache) install(set int, tag Addr) {
	// Prefer an invalid way.
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[set][w] {
			c.valid[set][w] = true
			c.tags[set][w] = tag
			c.policy.Touch(set, w)
			return
		}
	}
	v := c.policy.Victim(set)
	c.Stats.Evictions++
	c.tags[set][v] = tag
	c.policy.Touch(set, v)
}

// Flush invalidates the whole cache (state only; stats are preserved).
func (c *Cache) Flush() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
		}
	}
}

// TLBConfig describes one TLB level.
type TLBConfig struct {
	Name            string
	Entries         int
	Ways            int
	PageBytes       int
	RoundTripCycles int
}

// TLB is a set-associative translation buffer; structurally it is a cache
// whose "line" is a page.
type TLB struct {
	cache *Cache
	cfg   TLBConfig
}

// NewTLB builds a TLB.
func NewTLB(cfg TLBConfig) *TLB {
	if cfg.PageBytes <= 0 {
		cfg.PageBytes = 4096
	}
	c := New(Config{
		Name:            cfg.Name,
		SizeBytes:       cfg.Entries * cfg.PageBytes,
		Ways:            cfg.Ways,
		LineBytes:       cfg.PageBytes,
		RoundTripCycles: cfg.RoundTripCycles,
	}, nil)
	return &TLB{cache: c, cfg: cfg}
}

// Access translates address a, returning hit/miss.
func (t *TLB) Access(a Addr) bool { return t.cache.Access(a) }

// Stats returns TLB statistics.
func (t *TLB) Stats() Stats { return t.cache.Stats }

// Config returns the TLB's configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Hierarchy chains cache levels: an access that misses level i proceeds to
// level i+1; AccessCycles accumulates the Table 2 round-trip latencies plus
// a memory penalty on full miss.
type Hierarchy struct {
	Levels        []*Cache
	MemoryCycles  int // latency charged when all levels miss
	LevelAccesses []uint64
}

// NewHierarchy builds a hierarchy over the given levels.
func NewHierarchy(memoryCycles int, levels ...*Cache) *Hierarchy {
	return &Hierarchy{Levels: levels, MemoryCycles: memoryCycles, LevelAccesses: make([]uint64, len(levels))}
}

// Access walks the hierarchy for address a and returns the latency in cycles
// and the level that hit (len(Levels) means memory).
func (h *Hierarchy) Access(a Addr) (cycles int, hitLevel int) {
	for i, c := range h.Levels {
		h.LevelAccesses[i]++
		cycles += c.Config().RoundTripCycles
		if c.Access(a) {
			return cycles, i
		}
	}
	return cycles + h.MemoryCycles, len(h.Levels)
}

// AMAT returns the average access latency observed so far, derived from
// per-level hit statistics.
func (h *Hierarchy) AMAT() float64 {
	if len(h.Levels) == 0 || h.Levels[0].Stats.Accesses == 0 {
		return 0
	}
	total := float64(h.Levels[0].Stats.Accesses)
	var cycles float64
	for i, c := range h.Levels {
		cycles += float64(c.Stats.Accesses) * float64(c.Config().RoundTripCycles)
		if i == len(h.Levels)-1 {
			cycles += float64(c.Stats.Misses) * float64(h.MemoryCycles)
		}
	}
	return cycles / total
}
