package workload

// μSuite-style applications (Sriraman & Wenisch, IISWC'18), the second
// open-source suite the paper characterizes (§2.2 uses Router and SetAlgebra
// for Fig 1's microservice set; §3 characterizes the full suite). Each
// μSuite benchmark is a mid-tier service fanning out to a pool of leaf
// servers and merging their responses — a flatter, leaf-heavy shape than
// SocialNetwork's DAGs.

// Service IDs of the μSuite catalog.
const (
	MuLeafBucket    = iota // HDSearch leaf: distance computations over one shard
	MuLeafIntersect        // SetAlgebra leaf: posting-list intersection on one shard
	MuLeafScore            // Recommend leaf: collaborative-filtering scorer
	MuLeafLookup           // Router leaf: key-value shard lookup
	MuHDSearch             // mid tier: image feature match over all buckets
	MuSetAlgebra           // mid tier: set intersections across shards
	MuRecommend            // mid tier: user/item scoring
	MuRouter               // mid tier: replicated key-value routing
	NumMuServices
)

// MuSuiteAppNames lists the four benchmarks.
var MuSuiteAppNames = []string{"HDSearch", "Router", "SetAlgebra", "Recommend"}

// MuSuiteCatalog builds the μSuite catalog: four mid-tier services sharing
// four leaf services, with the fan-out widths and μs-scale leaf times the
// suite is known for.
func MuSuiteCatalog() *Catalog {
	c := &Catalog{Services: []*Service{
		{
			ID: MuLeafBucket, Name: "LeafBucket",
			Ops: []Op{
				compute(25), storage(15), compute(20),
			},
			SnapshotBytes:  8 << 20,
			FootprintBytes: 192 << 10,
		},
		{
			ID: MuLeafIntersect, Name: "LeafIntersect",
			Ops: []Op{
				compute(30), storage(20), compute(25),
			},
			SnapshotBytes:  12 << 20,
			FootprintBytes: 256 << 10,
		},
		{
			ID: MuLeafScore, Name: "LeafScore",
			Ops: []Op{
				compute(35), storage(10), compute(25),
			},
			SnapshotBytes:  10 << 20,
			FootprintBytes: 224 << 10,
		},
		{
			ID: MuLeafLookup, Name: "LeafLookup",
			Ops: []Op{
				compute(10), storage(15), compute(10),
			},
			SnapshotBytes:  6 << 20,
			FootprintBytes: 128 << 10,
		},
		{
			ID: MuHDSearch, Name: "HDSearch",
			// Image search: fan out to 8 bucket leaves, merge.
			Ops: []Op{
				compute(40),
				call(MuLeafBucket, MuLeafBucket, MuLeafBucket, MuLeafBucket,
					MuLeafBucket, MuLeafBucket, MuLeafBucket, MuLeafBucket),
				compute(50),
			},
			SnapshotBytes:  16 << 20,
			FootprintBytes: 512 << 10,
		},
		{
			ID: MuSetAlgebra, Name: "SetAlgebra",
			// Posting-list intersection over 4 shards.
			Ops: []Op{
				compute(30),
				call(MuLeafIntersect, MuLeafIntersect, MuLeafIntersect, MuLeafIntersect),
				compute(40), storage(20), compute(20),
			},
			SnapshotBytes:  14 << 20,
			FootprintBytes: 384 << 10,
		},
		{
			ID: MuRecommend, Name: "Recommend",
			// Score on 4 leaves, then persist the recommendation.
			Ops: []Op{
				compute(30),
				call(MuLeafScore, MuLeafScore, MuLeafScore, MuLeafScore),
				compute(40), storage(25), compute(15),
			},
			SnapshotBytes:  12 << 20,
			FootprintBytes: 320 << 10,
		},
		{
			ID: MuRouter, Name: "Router",
			// Replicated get/set: consult 3 replicas.
			Ops: []Op{
				compute(15),
				call(MuLeafLookup, MuLeafLookup, MuLeafLookup),
				compute(20),
			},
			SnapshotBytes:  8 << 20,
			FootprintBytes: 160 << 10,
		},
	}}
	if err := c.Validate(); err != nil {
		panic("workload: invalid μSuite catalog: " + err.Error())
	}
	return c
}

// MuSuiteApps returns the four μSuite benchmarks sharing one catalog.
func MuSuiteApps() []*App {
	c := MuSuiteCatalog()
	roots := map[string]int{
		"HDSearch": MuHDSearch, "Router": MuRouter,
		"SetAlgebra": MuSetAlgebra, "Recommend": MuRecommend,
	}
	apps := make([]*App, 0, len(MuSuiteAppNames))
	for _, name := range MuSuiteAppNames {
		apps = append(apps, &App{Name: name, Root: roots[name], Catalog: c})
	}
	return apps
}

// MuSuiteMix returns a balanced arrival mixture over the four benchmarks.
func MuSuiteMix() []MixEntry {
	return []MixEntry{
		{Root: MuHDSearch, Weight: 0.25},
		{Root: MuRouter, Weight: 0.35},
		{Root: MuSetAlgebra, Weight: 0.20},
		{Root: MuRecommend, Weight: 0.20},
	}
}
