package workload

import "umanycore/internal/dist"

// Service IDs of the SocialNetwork catalog, in the order the paper's figures
// list the applications.
const (
	SvcUrlShort = iota
	SvcUser
	SvcText
	SvcUsrMnt
	SvcPstStr
	SvcSGraph
	SvcHomeT
	SvcCPost
	NumSocialServices
)

// AppNames lists the figure columns in paper order.
var AppNames = []string{"Text", "SGraph", "User", "PstStr", "UsrMnt", "HomeT", "CPost", "UrlShort"}

func compute(meanMicros float64) Op {
	// Lognormal with moderate dispersion: service compute is fairly
	// repeatable within a service (§4.3: "requests for a given service tend
	// to have similar execution times").
	return Op{Kind: OpCompute, Time: dist.Lognormal{MeanV: meanMicros, Sigma: 0.4}}
}

func storage(meanMicros float64) Op {
	return Op{Kind: OpStorage, Time: dist.Exponential{MeanV: meanMicros}}
}

func call(callees ...int) Op {
	return Op{Kind: OpCall, Callees: callees}
}

// SocialNetworkCatalog builds the 8-service catalog modeled on
// DeathStarBench's Social Network application. Each invocation performs ~3
// blocking RPCs (the paper's characterization); leaf services (UrlShort,
// PstStr) issue only storage accesses, while SGraph/HomeT/CPost fan out into
// other services. Mean invocation compute is ~130μs (the paper's measured
// DeathStarBench average is 120μs). Trees are wide and shallow — fan-out up
// to 6 with depth ≤4 — so a root request's total CPU is several× its
// critical path; combined with the baselines' software RPC tax this places
// the 40-core ServerClass in the §5 utilization bands (<30% / 30–60% / >60%
// at 5/10/15K RPS). See DESIGN.md for calibration notes.
func SocialNetworkCatalog() *Catalog {
	c := &Catalog{Services: []*Service{
		{
			ID: SvcUrlShort, Name: "UrlShort",
			Ops: []Op{
				compute(50), storage(30), compute(40), storage(25), compute(30),
			},
			SnapshotBytes:  8 << 20,
			FootprintBytes: 256 << 10,
		},
		{
			ID: SvcUser, Name: "User",
			Ops: []Op{
				compute(60), storage(40), compute(50), storage(30), compute(20),
			},
			SnapshotBytes:  12 << 20,
			FootprintBytes: 384 << 10,
		},
		{
			ID: SvcText, Name: "Text",
			Ops: []Op{
				compute(40), call(SvcUrlShort, SvcUsrMnt), compute(50), storage(30), compute(30),
			},
			SnapshotBytes:  10 << 20,
			FootprintBytes: 512 << 10,
		},
		{
			ID: SvcUsrMnt, Name: "UsrMnt",
			Ops: []Op{
				compute(40), call(SvcUser), compute(30), storage(35), compute(30),
			},
			SnapshotBytes:  8 << 20,
			FootprintBytes: 320 << 10,
		},
		{
			ID: SvcPstStr, Name: "PstStr",
			Ops: []Op{
				compute(50), storage(60), compute(40), storage(40), compute(30), storage(25), compute(20),
			},
			SnapshotBytes:  16 << 20,
			FootprintBytes: 640 << 10,
		},
		{
			ID: SvcSGraph, Name: "SGraph",
			Ops: []Op{
				compute(40), call(SvcUser, SvcUser), compute(40), storage(50), compute(30), storage(30), compute(20),
			},
			SnapshotBytes:  14 << 20,
			FootprintBytes: 512 << 10,
		},
		{
			ID: SvcHomeT, Name: "HomeT",
			// Reading a home timeline fans out widely: the social graph,
			// several post fetches, user/mention hydration — the dominant
			// and second-heaviest request type.
			Ops: []Op{
				compute(70),
				call(SvcSGraph,
					SvcPstStr, SvcPstStr, SvcPstStr, SvcPstStr,
					SvcPstStr, SvcPstStr, SvcPstStr, SvcPstStr,
					SvcUser, SvcUser, SvcUsrMnt),
				compute(50), storage(40), compute(30),
			},
			SnapshotBytes:  12 << 20,
			FootprintBytes: 576 << 10,
		},
		{
			ID: SvcCPost, Name: "CPost",
			Ops: []Op{
				compute(80), call(SvcText, SvcUsrMnt, SvcUrlShort, SvcPstStr, SvcHomeT, SvcSGraph),
				compute(70), storage(30), compute(50),
			},
			SnapshotBytes:  16 << 20,
			FootprintBytes: 704 << 10,
		},
	}}
	if err := c.Validate(); err != nil {
		panic("workload: invalid built-in catalog: " + err.Error())
	}
	return c
}

// MixEntry weights one request type within a mixed arrival stream.
type MixEntry struct {
	Root   int
	Weight float64
}

// SocialNetworkMix returns the default mixed workload: all eight request
// types arriving at one server, timeline reads dominating and compose-post
// the heavy write path. The §6 per-application figures measure each request
// type's latency within this mix (all types share the machine, so a
// saturated server inflates every type's tail — including the light ones).
func SocialNetworkMix() []MixEntry {
	return []MixEntry{
		{Root: SvcHomeT, Weight: 0.45},
		{Root: SvcCPost, Weight: 0.30},
		{Root: SvcSGraph, Weight: 0.05},
		{Root: SvcText, Weight: 0.05},
		{Root: SvcUsrMnt, Weight: 0.04},
		{Root: SvcPstStr, Weight: 0.04},
		{Root: SvcUser, Weight: 0.04},
		{Root: SvcUrlShort, Weight: 0.03},
	}
}

// SocialNetworkApps returns the 8 applications in paper figure order, all
// sharing one catalog.
func SocialNetworkApps() []*App {
	c := SocialNetworkCatalog()
	roots := map[string]int{
		"Text": SvcText, "SGraph": SvcSGraph, "User": SvcUser, "PstStr": SvcPstStr,
		"UsrMnt": SvcUsrMnt, "HomeT": SvcHomeT, "CPost": SvcCPost, "UrlShort": SvcUrlShort,
	}
	apps := make([]*App, 0, len(AppNames))
	for _, name := range AppNames {
		apps = append(apps, &App{Name: name, Root: roots[name], Catalog: c})
	}
	return apps
}

// SyntheticApp builds the single-service benchmark of §6.7: total compute
// drawn from the named distribution ("exponential", "lognormal", "bimodal")
// with the given mean (microseconds), split across blockingCalls+1 segments
// separated by blocking storage accesses (the paper uses 2–6 blocking
// calls).
func SyntheticApp(distName string, meanMicros float64, blockingCalls int) (*App, error) {
	if blockingCalls < 0 {
		blockingCalls = 0
	}
	segMean := meanMicros / float64(blockingCalls+1)
	seg, err := dist.ByName(distName, segMean)
	if err != nil {
		return nil, err
	}
	// Blocking operations scale with the service time so μs-scale
	// benchmarks block on μs-scale I/O (as in the Shinjuku methodology).
	storageMean := meanMicros / 8
	if storageMean < 3 {
		storageMean = 3
	}
	ops := []Op{{Kind: OpCompute, Time: seg}}
	for i := 0; i < blockingCalls; i++ {
		ops = append(ops, storage(storageMean), Op{Kind: OpCompute, Time: seg})
	}
	c := &Catalog{Services: []*Service{{
		ID: 0, Name: "synthetic-" + distName,
		Ops:            ops,
		SnapshotBytes:  8 << 20,
		FootprintBytes: 256 << 10,
	}}}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &App{Name: "synthetic-" + distName, Root: 0, Catalog: c}, nil
}
