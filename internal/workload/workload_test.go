package workload

import (
	"math"
	"math/rand"
	"testing"

	"umanycore/internal/dist"
	"umanycore/internal/stats"
)

func TestOpKindString(t *testing.T) {
	if OpCompute.String() != "compute" || OpStorage.String() != "storage" || OpCall.String() != "call" {
		t.Fatal("op kind strings")
	}
	if OpKind(9).String() == "" {
		t.Fatal("unknown kind")
	}
}

func TestCatalogValid(t *testing.T) {
	c := SocialNetworkCatalog()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Services) != NumSocialServices {
		t.Fatalf("services = %d", len(c.Services))
	}
}

func TestCatalogValidationErrors(t *testing.T) {
	cases := []*Catalog{
		{Services: []*Service{{ID: 1, Name: "badid", Ops: []Op{compute(1)}}}},
		{Services: []*Service{{ID: 0, Name: "nocompute", Ops: []Op{storage(1)}}}},
		{Services: []*Service{{ID: 0, Name: "badcallee", Ops: []Op{compute(1), call(7)}}}},
		{Services: []*Service{{ID: 0, Name: "emptycall", Ops: []Op{compute(1), {Kind: OpCall}}}}},
		{Services: []*Service{{ID: 0, Name: "nodist", Ops: []Op{{Kind: OpCompute}}}}},
		{Services: []*Service{{ID: 0, Name: "nostoragedist", Ops: []Op{compute(1), {Kind: OpStorage}}}}},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("catalog %q validated", c.Services[0].Name)
		}
	}
	// Cycle: 0 -> 1 -> 0.
	cyc := &Catalog{Services: []*Service{
		{ID: 0, Name: "a", Ops: []Op{compute(1), call(1)}},
		{ID: 1, Name: "b", Ops: []Op{compute(1), call(0)}},
	}}
	if err := cyc.Validate(); err == nil {
		t.Error("cycle validated")
	}
}

func TestServiceMetrics(t *testing.T) {
	c := SocialNetworkCatalog()
	u := c.Service(SvcUrlShort)
	if got := u.MeanComputeMicros(); got != 120 {
		t.Fatalf("UrlShort compute = %v", got)
	}
	if u.BlockingOps() != 2 || u.RPCCount() != 2 {
		t.Fatalf("UrlShort blocking/rpcs = %d/%d", u.BlockingOps(), u.RPCCount())
	}
	cp := c.Service(SvcCPost)
	if cp.RPCCount() != 7 { // one call op with 6 callees + 1 storage
		t.Fatalf("CPost RPCs = %d", cp.RPCCount())
	}
	if c.Service(SvcHomeT).RPCCount() != 13 { // 12 parallel callees + 1 storage
		t.Fatalf("HomeT RPCs = %d", c.Service(SvcHomeT).RPCCount())
	}
}

func TestUnknownServicePanics(t *testing.T) {
	c := SocialNetworkCatalog()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Service(99)
}

func TestAppsPaperCalibration(t *testing.T) {
	apps := SocialNetworkApps()
	if len(apps) != 8 {
		t.Fatalf("apps = %d", len(apps))
	}
	byName := map[string]*App{}
	for _, a := range apps {
		byName[a.Name] = a
	}
	// Calibration: average invocation compute ≈130μs (the paper's DSB
	// figure is 120μs), ≈3 RPCs per invocation averaged across services.
	c := SocialNetworkCatalog()
	var cpu, rpcs float64
	for _, s := range c.Services {
		cpu += s.MeanComputeMicros()
		rpcs += float64(s.RPCCount())
	}
	cpu /= float64(len(c.Services))
	rpcs /= float64(len(c.Services))
	if cpu < 110 || cpu > 160 {
		t.Errorf("mean invocation compute = %vμs, want ≈130", cpu)
	}
	// HomeT's wide timeline fan-out lifts the unweighted per-service mean;
	// the *invocation-weighted* mean stays near the paper's 3.1 because the
	// fan-out targets are storage-light leaves.
	if rpcs < 2.5 || rpcs > 5.0 {
		t.Errorf("mean RPCs per invocation = %v, want ≈3-4", rpcs)
	}
	var invocations, totalRPCs float64
	for _, a := range apps {
		st := a.Stats()
		invocations += float64(st.Invocations)
		totalRPCs += float64(st.RPCs)
	}
	if w := totalRPCs / invocations; w < 2.0 || w > 4.0 {
		t.Errorf("invocation-weighted RPCs = %v, want ≈3.1", w)
	}
	// Structure: UrlShort is a leaf; CPost has the largest tree (the paper's
	// highest-latency app); SGraph/HomeT fan out.
	if byName["UrlShort"].Stats().Invocations != 1 {
		t.Error("UrlShort should be a leaf")
	}
	cpost := byName["CPost"].Stats()
	for name, a := range byName {
		if name == "CPost" {
			continue
		}
		if a.Stats().Invocations >= cpost.Invocations {
			t.Errorf("%s tree (%d) >= CPost (%d)", name, a.Stats().Invocations, cpost.Invocations)
		}
	}
	if s := byName["HomeT"].Stats(); s.Invocations < 4 {
		t.Errorf("HomeT tree = %d, want fan-out", s.Invocations)
	}
}

func TestTreeStats(t *testing.T) {
	apps := SocialNetworkApps()
	var cpost *App
	for _, a := range apps {
		if a.Name == "CPost" {
			cpost = a
		}
	}
	s := cpost.Stats()
	// CPost: 1 + Text(4) + UsrMnt(2) + UrlShort(1) + PstStr(1) + HomeT(16)
	// + SGraph(3) = 28 invocations.
	if s.Invocations != 28 {
		t.Fatalf("CPost invocations = %d, want 28", s.Invocations)
	}
	if s.TotalCPUMicros < 3000 || s.TotalCPUMicros > 5500 {
		t.Fatalf("CPost total CPU = %v", s.TotalCPUMicros)
	}
	// Critical path is below total CPU (parallel calls) but above the
	// root's own compute.
	if s.CriticalPathMicros >= s.TotalCPUMicros {
		t.Fatal("critical path not shortened by parallelism")
	}
	if s.CriticalPathMicros < 180 {
		t.Fatalf("critical path = %v", s.CriticalPathMicros)
	}
}

func TestSyntheticApp(t *testing.T) {
	for _, name := range []string{"exponential", "lognormal", "bimodal"} {
		app, err := SyntheticApp(name, 100, 3)
		if err != nil {
			t.Fatal(err)
		}
		s := app.Catalog.Service(0)
		if s.BlockingOps() != 3 {
			t.Fatalf("%s blocking ops = %d", name, s.BlockingOps())
		}
		if got := s.MeanComputeMicros(); math.Abs(got-100) > 1 {
			t.Fatalf("%s mean compute = %v", name, got)
		}
	}
	if _, err := SyntheticApp("nope", 100, 2); err == nil {
		t.Fatal("bad dist accepted")
	}
	app, err := SyntheticApp("exp", 50, -1)
	if err != nil || app.Catalog.Service(0).BlockingOps() != 0 {
		t.Fatal("negative blocking calls not clamped")
	}
}

func TestTraceGenFig2Marginals(t *testing.T) {
	g := NewTraceGen(1)
	loads := g.ServerLoad(20000)
	var s stats.Sample
	for _, l := range loads {
		s.Add(float64(l))
	}
	if med := s.Median(); med < 420 || med > 580 {
		t.Errorf("median RPS = %v, want ≈500", med)
	}
	if f := s.FracAtLeast(1000); f < 0.12 || f > 0.26 {
		t.Errorf("frac ≥1000 RPS = %v, want ≈0.20", f)
	}
	if f := s.FracAtLeast(1500); f < 0.02 || f > 0.10 {
		t.Errorf("frac ≥1500 RPS = %v, want ≈0.05", f)
	}
}

func TestTraceGenFig4Fig5Marginals(t *testing.T) {
	g := NewTraceGen(2)
	recs := g.Requests(50000)
	var util, rpcs, dur stats.Sample
	short := 0
	var longDurs []float64
	for _, rec := range recs {
		util.Add(rec.CPUUtil)
		rpcs.Add(float64(rec.RPCs))
		dur.Add(rec.DurationMicros)
		if rec.DurationMicros < 1000 {
			short++
		} else {
			longDurs = append(longDurs, rec.DurationMicros)
		}
		if rec.CPUUtil < 0 || rec.CPUUtil > 1 {
			t.Fatalf("util out of range: %v", rec.CPUUtil)
		}
		if rec.RPCs < 0 {
			t.Fatalf("negative RPCs")
		}
	}
	if med := util.Median(); med < 0.11 || med > 0.18 {
		t.Errorf("median CPU util = %v, want ≈0.14", med)
	}
	if p99 := util.P99(); p99 > 0.62 {
		t.Errorf("P99 CPU util = %v, want <0.6", p99)
	}
	if med := rpcs.Median(); med < 3.4 || med > 5.0 {
		t.Errorf("median RPCs = %v, want ≈4.2", med)
	}
	if f := rpcs.FracAtLeast(16); f < 0.02 || f > 0.09 {
		t.Errorf("frac ≥16 RPCs = %v, want ≈0.05", f)
	}
	// Duration marginals from §3.3.
	fShort := float64(short) / float64(len(recs))
	if fShort < 0.32 || fShort > 0.42 {
		t.Errorf("frac <1ms = %v, want ≈0.367", fShort)
	}
	gm := stats.GeoMean(longDurs) / 1000 // ms
	if gm < 2.2 || gm > 3.6 {
		t.Errorf("geomean long duration = %vms, want ≈2.8", gm)
	}
}

func TestTraceGenDeterministic(t *testing.T) {
	a := NewTraceGen(7).Requests(100)
	b := NewTraceGen(7).Requests(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace generation not deterministic")
		}
	}
}

func TestBurstyArrivalsMeanRate(t *testing.T) {
	m := BurstyArrivals(5000)
	if math.Abs(m.MeanRate()-5000)/5000 > 0.01 {
		t.Fatalf("MeanRate = %v", m.MeanRate())
	}
}

func TestFig8Sharing(t *testing.T) {
	rows := RunFig8(DefaultFootprintConfig(), 20, 3)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// Paper: common fractions 78–99% across all granularities.
		for name, v := range map[string]float64{
			"d-page": row.DPage, "d-line": row.DLine,
			"i-page": row.IPage, "i-line": row.ILine,
		} {
			if v < 0.70 || v > 1.0 {
				t.Errorf("%s %s common frac = %v, want 0.78–0.99", row.Group, name, v)
			}
		}
		// Instructions share more than data; data lines share less than
		// data pages (the figure's shape).
		if row.IPage <= row.DPage {
			t.Errorf("%s: i-page (%v) should exceed d-page (%v)", row.Group, row.IPage, row.DPage)
		}
		if row.DLine >= row.DPage {
			t.Errorf("%s: d-line (%v) should be below d-page (%v)", row.Group, row.DLine, row.DPage)
		}
	}
}

func TestHandlerFootprintSize(t *testing.T) {
	cfg := DefaultFootprintConfig()
	h := cfg.GenHandler(rand.New(rand.NewSource(5)), 1000)
	// ~0.5MB handler footprint per §3.5.
	if fb := h.FootprintBytes(); fb < 300<<10 || fb > 800<<10 {
		t.Fatalf("handler footprint = %dKB, want ≈512KB", fb>>10)
	}
}

func TestDistMeansUsedByCatalog(t *testing.T) {
	// Compute ops use lognormal with the stated mean; sanity-check one.
	c := SocialNetworkCatalog()
	op := c.Service(SvcUser).Ops[0]
	if op.Kind != OpCompute {
		t.Fatal("first op should be compute")
	}
	if math.Abs(op.Time.Mean()-60) > 1e-9 {
		t.Fatalf("User first compute mean = %v", op.Time.Mean())
	}
	if _, ok := op.Time.(dist.Lognormal); !ok {
		t.Fatal("compute should be lognormal")
	}
}

func TestSocialNetworkMix(t *testing.T) {
	mix := SocialNetworkMix()
	var total float64
	seen := map[int]bool{}
	for _, e := range mix {
		if e.Weight <= 0 {
			t.Fatalf("nonpositive weight for root %d", e.Root)
		}
		if seen[e.Root] {
			t.Fatalf("duplicate root %d", e.Root)
		}
		seen[e.Root] = true
		total += e.Weight
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("mix weights sum to %v", total)
	}
	if len(mix) != NumSocialServices {
		t.Fatalf("mix covers %d of %d request types", len(mix), NumSocialServices)
	}
	// Reads dominate writes; CPost is the heavy write path.
	w := map[int]float64{}
	for _, e := range mix {
		w[e.Root] = e.Weight
	}
	if w[SvcHomeT] < w[SvcCPost] || w[SvcCPost] < w[SvcUrlShort] {
		t.Fatal("mix weights not social-network-shaped")
	}
}

func TestStatsSortedAppOrder(t *testing.T) {
	// AppNames must match the paper's figure order exactly.
	want := []string{"Text", "SGraph", "User", "PstStr", "UsrMnt", "HomeT", "CPost", "UrlShort"}
	if len(AppNames) != len(want) {
		t.Fatal("AppNames length")
	}
	for i := range want {
		if AppNames[i] != want[i] {
			t.Fatalf("AppNames[%d] = %s, want %s", i, AppNames[i], want[i])
		}
	}
	// And SocialNetworkApps returns them in that order.
	apps := SocialNetworkApps()
	for i := range want {
		if apps[i].Name != want[i] {
			t.Fatalf("apps[%d] = %s, want %s", i, apps[i].Name, want[i])
		}
	}
}
