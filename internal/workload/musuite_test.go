package workload

import (
	"math"
	"testing"
)

func TestMuSuiteCatalogValid(t *testing.T) {
	c := MuSuiteCatalog()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Services) != NumMuServices {
		t.Fatalf("services = %d", len(c.Services))
	}
}

func TestMuSuiteApps(t *testing.T) {
	apps := MuSuiteApps()
	if len(apps) != 4 {
		t.Fatalf("apps = %d", len(apps))
	}
	byName := map[string]*App{}
	for _, a := range apps {
		byName[a.Name] = a
	}
	// The suite's structural signatures: HDSearch fans out to 8 leaves
	// (widest), Router is the lightest (3 small lookups), and every
	// benchmark is a two-level mid-tier → leaves shape (depth 2).
	hd := byName["HDSearch"].Stats()
	if hd.Invocations != 9 {
		t.Fatalf("HDSearch invocations = %d, want 9", hd.Invocations)
	}
	rt := byName["Router"].Stats()
	if rt.Invocations != 4 {
		t.Fatalf("Router invocations = %d, want 4", rt.Invocations)
	}
	if rt.TotalCPUMicros >= hd.TotalCPUMicros {
		t.Fatal("Router should be lighter than HDSearch")
	}
	for name, a := range byName {
		st := a.Stats()
		// Depth 2: critical path ≈ mid-tier compute + one leaf's path, far
		// below total CPU for the fan-out benchmarks.
		if name != "Router" && st.CriticalPathMicros >= st.TotalCPUMicros {
			t.Errorf("%s: no parallelism (CP %v >= total %v)", name, st.CriticalPathMicros, st.TotalCPUMicros)
		}
		// μSuite requests are μs-scale: total CPU well under a millisecond.
		if st.TotalCPUMicros > 900 {
			t.Errorf("%s total CPU = %vμs, μSuite is lighter", name, st.TotalCPUMicros)
		}
	}
}

func TestMuSuiteMix(t *testing.T) {
	var total float64
	seen := map[int]bool{}
	for _, e := range MuSuiteMix() {
		if seen[e.Root] {
			t.Fatalf("duplicate root %d", e.Root)
		}
		seen[e.Root] = true
		total += e.Weight
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("weights sum to %v", total)
	}
	if len(seen) != 4 {
		t.Fatalf("mix covers %d benchmarks", len(seen))
	}
}
