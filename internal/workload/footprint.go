package workload

import "math/rand"

// Footprint sharing model behind Fig 8: handlers of the same service
// instance share most of their data and almost all of their instructions
// with each other and with the instance's initialization process (78–99%
// of pages/lines common, per §3.5).
//
// The model materializes page/line sets: a service has shared data pages,
// shared instruction pages, and an init footprint; each handler touches all
// shared pages plus a small private residue, and within shared data pages
// touches a random subset of lines (so line-granularity sharing is lower
// than page-granularity for data, as in the figure).

// FootprintConfig sizes the model. Defaults (DefaultFootprintConfig) yield
// a ~0.5MB handler footprint, matching the paper.
type FootprintConfig struct {
	SharedDataPages    int
	PrivateDataPages   int
	SharedInstrPages   int
	PrivateInstrPages  int
	DataLineTouchFrac  float64 // fraction of lines touched within a shared data page
	InstrLineTouchFrac float64
	LinesPerPage       int
}

// DefaultFootprintConfig returns the calibration used for Fig 8.
func DefaultFootprintConfig() FootprintConfig {
	return FootprintConfig{
		SharedDataPages:    80, // 320KB shared data
		PrivateDataPages:   12, // 48KB private per handler
		SharedInstrPages:   40, // 160KB code
		PrivateInstrPages:  1,
		DataLineTouchFrac:  0.85,
		InstrLineTouchFrac: 0.99,
		LinesPerPage:       64, // 4KB page / 64B line
	}
}

// HandlerFootprint is the set of pages and lines one handler touches.
type HandlerFootprint struct {
	DataPages  map[int]bool
	DataLines  map[int]bool
	InstrPages map[int]bool
	InstrLines map[int]bool
}

// FootprintBytes returns the data+instruction footprint in bytes (lines ×
// 64B).
func (h *HandlerFootprint) FootprintBytes() int {
	return (len(h.DataLines) + len(h.InstrLines)) * 64
}

// GenHandler draws one handler's footprint. Shared pages occupy IDs
// [0, Shared*), private pages get unique negative-free IDs from privateBase.
func (cfg FootprintConfig) GenHandler(r *rand.Rand, privateBase int) *HandlerFootprint {
	h := &HandlerFootprint{
		DataPages:  make(map[int]bool),
		DataLines:  make(map[int]bool),
		InstrPages: make(map[int]bool),
		InstrLines: make(map[int]bool),
	}
	touch := func(pages map[int]bool, lines map[int]bool, page int, frac float64) {
		pages[page] = true
		for l := 0; l < cfg.LinesPerPage; l++ {
			if r.Float64() < frac {
				lines[page*cfg.LinesPerPage+l] = true
			}
		}
	}
	for p := 0; p < cfg.SharedDataPages; p++ {
		touch(h.DataPages, h.DataLines, p, cfg.DataLineTouchFrac)
	}
	for p := 0; p < cfg.PrivateDataPages; p++ {
		touch(h.DataPages, h.DataLines, privateBase+p, 1.0)
	}
	instrBase := 1 << 20 // instruction address space disjoint from data
	for p := 0; p < cfg.SharedInstrPages; p++ {
		touch(h.InstrPages, h.InstrLines, instrBase+p, cfg.InstrLineTouchFrac)
	}
	for p := 0; p < cfg.PrivateInstrPages; p++ {
		touch(h.InstrPages, h.InstrLines, instrBase+privateBase+p, 1.0)
	}
	return h
}

// GenInit draws the instance-initialization footprint: it covers every
// shared page completely (init builds the shared state) plus some
// init-only pages.
func (cfg FootprintConfig) GenInit(r *rand.Rand) *HandlerFootprint {
	h := &HandlerFootprint{
		DataPages:  make(map[int]bool),
		DataLines:  make(map[int]bool),
		InstrPages: make(map[int]bool),
		InstrLines: make(map[int]bool),
	}
	full := func(pages, lines map[int]bool, page int) {
		pages[page] = true
		for l := 0; l < cfg.LinesPerPage; l++ {
			lines[page*cfg.LinesPerPage+l] = true
		}
	}
	for p := 0; p < cfg.SharedDataPages; p++ {
		full(h.DataPages, h.DataLines, p)
	}
	instrBase := 1 << 20
	for p := 0; p < cfg.SharedInstrPages; p++ {
		full(h.InstrPages, h.InstrLines, instrBase+p)
	}
	// Init-only pages (setup code/data not used by handlers).
	for p := 0; p < 10; p++ {
		full(h.DataPages, h.DataLines, 1<<19+p)
		full(h.InstrPages, h.InstrLines, instrBase+1<<19+p)
	}
	return h
}

// commonFrac returns |a ∩ b| / |a|: the fraction of a's footprint that is
// common with b (Fig 8 normalizes to the handler's footprint).
func commonFrac(a, b map[int]bool) float64 {
	if len(a) == 0 {
		return 0
	}
	n := 0
	for k := range a {
		if b[k] {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

// Fig8Row is one bar group of Fig 8: the common (shareable) fraction of a
// handler's footprint at each granularity.
type Fig8Row struct {
	Group string // "Handler-Handler" or "Handler-Init"
	DPage float64
	DLine float64
	IPage float64
	ILine float64
}

// RunFig8 generates handler pairs and handler/init pairs and measures the
// common footprint fractions, averaged over trials.
func RunFig8(cfg FootprintConfig, trials int, seed int64) []Fig8Row {
	r := rand.New(rand.NewSource(seed))
	var hh, hi Fig8Row
	hh.Group, hi.Group = "Handler-Handler", "Handler-Init"
	for i := 0; i < trials; i++ {
		a := cfg.GenHandler(r, 1000+2*i*100)
		b := cfg.GenHandler(r, 1000+(2*i+1)*100)
		init := cfg.GenInit(r)
		hh.DPage += commonFrac(a.DataPages, b.DataPages)
		hh.DLine += commonFrac(a.DataLines, b.DataLines)
		hh.IPage += commonFrac(a.InstrPages, b.InstrPages)
		hh.ILine += commonFrac(a.InstrLines, b.InstrLines)
		hi.DPage += commonFrac(a.DataPages, init.DataPages)
		hi.DLine += commonFrac(a.DataLines, init.DataLines)
		hi.IPage += commonFrac(a.InstrPages, init.InstrPages)
		hi.ILine += commonFrac(a.InstrLines, init.InstrLines)
	}
	n := float64(trials)
	hh.DPage /= n
	hh.DLine /= n
	hh.IPage /= n
	hh.ILine /= n
	hi.DPage /= n
	hi.DLine /= n
	hi.IPage /= n
	hi.ILine /= n
	return []Fig8Row{hh, hi}
}
