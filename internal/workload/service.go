// Package workload models the paper's workloads: the DeathStarBench-style
// SocialNetwork applications (service call graphs with compute segments,
// blocking storage accesses, and synchronous child RPCs), the synthetic
// single-service benchmarks of §6.7 (exponential / lognormal / bimodal
// service times with 2–6 blocking calls), the Alibaba-like production trace
// generator behind Figs 2/4/5, and the memory-footprint model behind Fig 8.
package workload

import (
	"fmt"

	"umanycore/internal/dist"
)

// OpKind distinguishes the phases of a service invocation.
type OpKind int

// Operation kinds.
const (
	// OpCompute is a CPU segment (duration in microseconds).
	OpCompute OpKind = iota
	// OpStorage is a blocking remote storage access (an RPC to storage).
	OpStorage
	// OpCall synchronously invokes child services in parallel and blocks
	// until all respond.
	OpCall
)

func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpStorage:
		return "storage"
	case OpCall:
		return "call"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one step of a service's behaviour.
type Op struct {
	Kind OpKind
	// Time is the compute duration or the storage service time, in
	// microseconds.
	Time dist.Dist
	// Callees are child service IDs invoked in parallel (OpCall only;
	// duplicates mean multiple parallel invocations of the same service).
	Callees []int
}

// Service describes one microservice.
type Service struct {
	ID   int
	Name string
	Ops  []Op
	// SnapshotBytes is the memory-pool snapshot size (§3.5: ≤16MB).
	SnapshotBytes int
	// FootprintBytes is a handler's working set (§3.5: ~0.5MB average).
	FootprintBytes int
	// Multithreaded marks services whose single invocation can spread
	// across village cores (kept for the §4.1 discussion; the SocialNetwork
	// services are single-threaded per request).
	Multithreaded bool
}

// MeanComputeMicros returns the expected CPU microseconds of one invocation.
func (s *Service) MeanComputeMicros() float64 {
	var sum float64
	for _, op := range s.Ops {
		if op.Kind == OpCompute {
			sum += op.Time.Mean()
		}
	}
	return sum
}

// BlockingOps counts the ops that block (storage + calls).
func (s *Service) BlockingOps() int {
	n := 0
	for _, op := range s.Ops {
		if op.Kind != OpCompute {
			n++
		}
	}
	return n
}

// RPCCount counts RPC messages issued by one invocation: one per storage
// access plus one per callee.
func (s *Service) RPCCount() int {
	n := 0
	for _, op := range s.Ops {
		switch op.Kind {
		case OpStorage:
			n++
		case OpCall:
			n += len(op.Callees)
		}
	}
	return n
}

// Catalog is a closed set of services indexed by ID.
type Catalog struct {
	Services []*Service
}

// Service returns the service with the given ID.
func (c *Catalog) Service(id int) *Service {
	if id < 0 || id >= len(c.Services) {
		panic(fmt.Sprintf("workload: unknown service %d", id))
	}
	return c.Services[id]
}

// Validate checks IDs are dense, callees resolve, every service has at
// least one compute op, and the call graph is acyclic (services are a DAG
// in DeathStarBench).
func (c *Catalog) Validate() error {
	for i, s := range c.Services {
		if s.ID != i {
			return fmt.Errorf("workload: service %q has ID %d at index %d", s.Name, s.ID, i)
		}
		hasCompute := false
		for _, op := range s.Ops {
			switch op.Kind {
			case OpCompute:
				hasCompute = true
				if op.Time == nil {
					return fmt.Errorf("workload: %q has compute op without distribution", s.Name)
				}
			case OpStorage:
				if op.Time == nil {
					return fmt.Errorf("workload: %q has storage op without distribution", s.Name)
				}
			case OpCall:
				if len(op.Callees) == 0 {
					return fmt.Errorf("workload: %q has call op without callees", s.Name)
				}
				for _, callee := range op.Callees {
					if callee < 0 || callee >= len(c.Services) {
						return fmt.Errorf("workload: %q calls unknown service %d", s.Name, callee)
					}
				}
			}
		}
		if !hasCompute {
			return fmt.Errorf("workload: %q has no compute op", s.Name)
		}
	}
	// Cycle check via DFS colors.
	color := make([]int, len(c.Services)) // 0 white, 1 gray, 2 black
	var visit func(id int) error
	visit = func(id int) error {
		color[id] = 1
		for _, op := range c.Services[id].Ops {
			if op.Kind != OpCall {
				continue
			}
			for _, callee := range op.Callees {
				switch color[callee] {
				case 1:
					return fmt.Errorf("workload: call cycle through %q", c.Services[callee].Name)
				case 0:
					if err := visit(callee); err != nil {
						return err
					}
				}
			}
		}
		color[id] = 2
		return nil
	}
	for i := range c.Services {
		if color[i] == 0 {
			if err := visit(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// App is one benchmark column: a root service driven by the client, plus
// the catalog it lives in.
type App struct {
	Name    string
	Root    int
	Catalog *Catalog
}

// TreeStats summarizes the invocation tree one root request expands into.
type TreeStats struct {
	// Invocations is the total number of service invocations (tree nodes).
	Invocations int
	// TotalCPUMicros is the expected CPU time summed over the tree.
	TotalCPUMicros float64
	// CriticalPathMicros is the expected contention-free latency: compute
	// plus storage time along the longest dependency chain (parallel calls
	// take the max branch), excluding network/scheduling time.
	CriticalPathMicros float64
	// RPCs is the total RPC messages issued over the tree.
	RPCs int
}

// Stats computes TreeStats for the app's root by recursion over the DAG.
func (a *App) Stats() TreeStats {
	return a.Catalog.statsFor(a.Root)
}

func (c *Catalog) statsFor(id int) TreeStats {
	s := c.Service(id)
	out := TreeStats{Invocations: 1, RPCs: s.RPCCount()}
	for _, op := range s.Ops {
		switch op.Kind {
		case OpCompute:
			out.TotalCPUMicros += op.Time.Mean()
			out.CriticalPathMicros += op.Time.Mean()
		case OpStorage:
			out.CriticalPathMicros += op.Time.Mean()
		case OpCall:
			var maxCP float64
			for _, callee := range op.Callees {
				child := c.statsFor(callee)
				out.Invocations += child.Invocations
				out.TotalCPUMicros += child.TotalCPUMicros
				out.RPCs += child.RPCs
				if child.CriticalPathMicros > maxCP {
					maxCP = child.CriticalPathMicros
				}
			}
			out.CriticalPathMicros += maxCP
		}
	}
	return out
}
