package workload

import (
	"math"
	"math/rand"

	"umanycore/internal/dist"
)

// TraceRecord is one dynamic request in an Alibaba-like production trace
// (the §3.2/§3.3 characterization inputs behind Figs 2, 4 and 5).
type TraceRecord struct {
	// DurationMicros is the end-to-end invocation duration.
	DurationMicros float64
	// CPUUtil is the fraction of the duration spent on-CPU (the rest is
	// blocked on I/O).
	CPUUtil float64
	// RPCs is the number of RPC invocations the request performs.
	RPCs int
}

// TraceGen synthesizes production-like traces with marginals matched to the
// paper's characterization:
//
//   - per-server requests/second (Fig 2): median ≈500, ≈20% of seconds at
//     ≥1000 RPS, ≈5% at ≥1500 — modeled as a lognormal rate modulating a
//     Poisson count;
//   - per-request CPU utilization (Fig 4): median ≈14%, P99 < 60%;
//   - RPC invocations per request (Fig 5): median ≈4.2, ≈5% ≥16;
//   - durations (§3.3): 36.7% under 1ms, remaining requests with a
//     geometric-mean duration of 2.8ms.
type TraceGen struct {
	r *rand.Rand
}

// NewTraceGen builds a deterministic generator from a seed.
func NewTraceGen(seed int64) *TraceGen {
	return &TraceGen{r: rand.New(rand.NewSource(seed))}
}

// Trace-marginal constants (see the paper's Figs 2/4/5 and §3.3).
const (
	medianRPS     = 500.0
	rpsSigma      = 0.74
	medianCPUUtil = 0.14
	cpuUtilSigma  = 0.55
	medianRPCs    = 4.2
	rpcSigma      = 0.813
	shortReqFrac  = 0.367
	// longBaseUs is the untruncated geometric mean of the long-request
	// lognormal; truncating at 1ms (resampling below it) lifts the
	// conditional geometric mean to the paper's 2.8ms.
	longBaseUs = 2000.0
	longSigma  = 0.9
)

// ServerLoad returns per-second request counts for one server over the
// given number of seconds (the Fig 2 sample).
func (g *TraceGen) ServerLoad(seconds int) []int {
	out := make([]int, seconds)
	for i := range out {
		rate := medianRPS * math.Exp(rpsSigma*g.r.NormFloat64())
		out[i] = dist.PoissonCount(g.r, rate)
	}
	return out
}

// Request draws one trace record.
func (g *TraceGen) Request() TraceRecord {
	var durUs float64
	if g.r.Float64() < shortReqFrac {
		// Short invocations: 50μs – 1ms, log-uniform.
		durUs = 50 * math.Exp(g.r.Float64()*math.Log(1000.0/50.0))
	} else {
		for {
			durUs = longBaseUs * math.Exp(longSigma*g.r.NormFloat64())
			if durUs >= 1000 {
				break
			}
		}
	}
	util := medianCPUUtil * math.Exp(cpuUtilSigma*g.r.NormFloat64())
	if util > 1 {
		util = 1
	}
	rpcs := int(math.Round(medianRPCs * math.Exp(rpcSigma*g.r.NormFloat64())))
	if rpcs < 0 {
		rpcs = 0
	}
	return TraceRecord{DurationMicros: durUs, CPUUtil: util, RPCs: rpcs}
}

// Requests draws n trace records.
func (g *TraceGen) Requests(n int) []TraceRecord {
	out := make([]TraceRecord, n)
	for i := range out {
		out[i] = g.Request()
	}
	return out
}

// BurstyArrivals returns an MMPP2 arrival process whose long-run mean is
// meanRPS with production-like burstiness, for experiments that want the
// Fig 2 temporal structure rather than plain Poisson arrivals.
func BurstyArrivals(meanRPS float64) *dist.MMPP2 {
	// Burst state runs at 3× the low state and occupies ~20% of time:
	// mean = 0.8·lo + 0.2·3·lo = 1.4·lo.
	lo := meanRPS / 1.4
	return &dist.MMPP2{
		RateLo:      lo,
		RateHi:      3 * lo,
		MeanDwellLo: 0.8,
		MeanDwellHi: 0.2,
	}
}
