// Package memmodel derives the machine model's core performance factors
// from first principles: it replays workload-class memory/instruction/branch
// traces through each processor's Table 2 cache hierarchy, folds the
// resulting AMATs and mispredict rates into a CPI model, and reports each
// core's effective instruction throughput.
//
// Its headline output justifies machine.Config.PerfFactor: on *microservice*
// code the 6-issue 3GHz ServerClass core is only ~1.6–1.8× faster than the
// 4-issue 2GHz A15-like core (frequency carries most of it), while on
// *monolithic* code the gap is wider — the quantitative form of the paper's
// Fig 1 argument that big-core microarchitecture is wasted on microservices.
package memmodel

import (
	"math"
	"math/rand"

	"umanycore/internal/cachesim"
	"umanycore/internal/uarch"
)

// CoreModel describes a core and its hierarchy for throughput estimation.
type CoreModel struct {
	Name       string
	IssueWidth int
	FreqGHz    float64
	// ROB sizes the reorder window; deeper windows overlap more memory
	// latency (memory-level parallelism).
	ROB int
	// L2KB / L3KB size the non-L1 levels (0 = absent). L1 is 64KB/8w for
	// both designs (Table 2).
	L2KB, L3KB int
	// L2RT / L3RT are round-trip latencies in cycles.
	L2RT, L3RT int
	// MemCycles is the full-miss penalty.
	MemCycles int
}

// ServerClassCore returns the Table 2 big-core hierarchy.
func ServerClassCore() CoreModel {
	return CoreModel{
		Name: "ServerClass", IssueWidth: 6, FreqGHz: 3, ROB: 352,
		L2KB: 2048, L2RT: 16, L3KB: 2048, L3RT: 40, MemCycles: 180,
	}
}

// SmallCore returns the A15-like μManycore/ScaleOut core hierarchy (64KB L1,
// 256KB shared L2, no L3).
func SmallCore() CoreModel {
	return CoreModel{
		Name: "Small", IssueWidth: 4, FreqGHz: 2, ROB: 64,
		L2KB: 256, L2RT: 24, MemCycles: 120,
	}
}

// baseCPI models issue-width-limited execution on cache-resident code: wider
// issue helps sublinearly (dependences bound ILP).
func (c CoreModel) baseCPI() float64 {
	return 2.2 / math.Pow(float64(c.IssueWidth), 0.55)
}

// memOverlap models memory-level parallelism: the fraction of memory
// latency hidden by the out-of-order window, growing logarithmically with
// ROB size (64 entries → ~0.40, 352 entries → ~0.77).
func (c CoreModel) memOverlap() float64 {
	rob := float64(c.ROB)
	if rob < 32 {
		rob = 32
	}
	ov := 0.25 + 0.15*math.Log2(rob/32)
	if ov > 0.85 {
		ov = 0.85
	}
	return ov
}

// hierarchy builds the core's cache chain.
func (c CoreModel) hierarchy(name string) *cachesim.Hierarchy {
	levels := []*cachesim.Cache{
		cachesim.New(cachesim.Config{Name: name + "-L1", SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, RoundTripCycles: 2}, nil),
	}
	if c.L2KB > 0 {
		levels = append(levels, cachesim.New(cachesim.Config{Name: name + "-L2", SizeBytes: c.L2KB << 10, Ways: 16, LineBytes: 64, RoundTripCycles: c.L2RT}, nil))
	}
	if c.L3KB > 0 {
		levels = append(levels, cachesim.New(cachesim.Config{Name: name + "-L3", SizeBytes: c.L3KB << 10, Ways: 16, LineBytes: 64, RoundTripCycles: c.L3RT}, nil))
	}
	return cachesim.NewHierarchy(c.MemCycles, levels...)
}

// Throughput is the evaluation result for one core on one workload class.
type Throughput struct {
	Core  string
	Class uarch.TraceClass
	// CPI is the modeled cycles per instruction.
	CPI float64
	// GIPS is effective instructions/second (×1e9) — FreqGHz / CPI.
	GIPS float64
	// AMATData / AMATInstr are the measured hierarchy latencies (cycles).
	AMATData, AMATInstr float64
	// Mispredict is the branch mispredict rate with the core's predictor.
	Mispredict float64
}

// Evaluate replays n-event traces of the given class through the core's
// hierarchy and predictor and returns its effective throughput.
func Evaluate(c CoreModel, class uarch.TraceClass, n int, seed int64) Throughput {
	r := rand.New(rand.NewSource(seed))

	h := c.hierarchy("d")
	if class == uarch.Microservice {
		for _, a := range uarch.GenHandlerPhases(n, r) {
			h.Access(a.Addr)
		}
	} else {
		for _, a := range uarch.GenDataTrace(class, n, r) {
			h.Access(a.Addr)
		}
	}
	amatD := h.AMAT()

	hi := c.hierarchy("i")
	for _, a := range uarch.GenInstrTrace(class, n, r) {
		hi.Access(a)
	}
	amatI := hi.AMAT()

	// Big cores carry a stronger predictor (perceptron vs gshare).
	var mispredict float64
	bt := uarch.GenBranchTrace(class, n, r)
	if c.IssueWidth >= 6 {
		mispredict = uarch.MeasureMispredictRate(uarch.NewPerceptron(2048, 32), bt)
	} else {
		mispredict = uarch.MeasureMispredictRate(uarch.NewGShare(12, 8), bt)
	}

	model := uarch.DefaultCPIModel()
	model.BaseCPI = c.baseCPI()
	model.DataOverlap = c.memOverlap()
	model.IFetchOverlap = c.memOverlap() * 0.8
	cpi := model.CPI(mispredict, amatD, amatI)
	return Throughput{
		Core: c.Name, Class: class,
		CPI: cpi, GIPS: c.FreqGHz / cpi,
		AMATData: amatD, AMATInstr: amatI,
		Mispredict: mispredict,
	}
}

// PerfFactor returns the big core's speedup over the small core for the
// given workload class — the quantity machine.Config.PerfFactor encodes
// (≈1.65 for microservices).
func PerfFactor(class uarch.TraceClass, n int, seed int64) float64 {
	big := Evaluate(ServerClassCore(), class, n, seed)
	small := Evaluate(SmallCore(), class, n, seed)
	if small.GIPS == 0 {
		return 0
	}
	return big.GIPS / small.GIPS
}
