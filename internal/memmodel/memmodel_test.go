package memmodel

import (
	"testing"

	"umanycore/internal/uarch"
)

func TestCoreModels(t *testing.T) {
	sc := ServerClassCore()
	small := SmallCore()
	if sc.IssueWidth <= small.IssueWidth || sc.FreqGHz <= small.FreqGHz {
		t.Fatal("ServerClass should be wider and faster")
	}
	if sc.baseCPI() >= small.baseCPI() {
		t.Fatal("wider issue should lower base CPI")
	}
	if small.L3KB != 0 {
		t.Fatal("small core has no L3 (Table 2)")
	}
}

func TestEvaluateProducesSaneNumbers(t *testing.T) {
	for _, class := range []uarch.TraceClass{uarch.Monolithic, uarch.Microservice} {
		for _, core := range []CoreModel{ServerClassCore(), SmallCore()} {
			th := Evaluate(core, class, 60000, 1)
			if th.CPI <= 0 || th.GIPS <= 0 {
				t.Fatalf("%s/%s: CPI=%v GIPS=%v", core.Name, class, th.CPI, th.GIPS)
			}
			if th.AMATData < 2 || th.AMATInstr < 2 {
				t.Fatalf("%s/%s: AMAT below L1 round trip", core.Name, class)
			}
			if th.Mispredict < 0 || th.Mispredict > 1 {
				t.Fatalf("mispredict = %v", th.Mispredict)
			}
		}
	}
}

// The justification for machine.Config.PerfFactor = 1.65 on microservice
// code: measured big/small throughput ratio lands near it, and the
// monolithic ratio is clearly larger (Fig 1's argument quantified).
func TestPerfFactorCalibration(t *testing.T) {
	micro := PerfFactor(uarch.Microservice, 150000, 42)
	mono := PerfFactor(uarch.Monolithic, 150000, 42)
	if micro < 1.4 || micro > 2.0 {
		t.Errorf("microservice perf factor = %v, machine uses 1.65", micro)
	}
	if mono <= micro {
		t.Errorf("monolithic ratio (%v) should exceed microservice ratio (%v)", mono, micro)
	}
}

func TestMicroserviceMemoryTimeIsSmall(t *testing.T) {
	// §3.5: handler working sets fit the L1; the memory hierarchy adds
	// little to microservice CPI on either core.
	th := Evaluate(SmallCore(), uarch.Microservice, 100000, 7)
	if th.AMATData > 6 {
		t.Errorf("micro data AMAT = %v cycles, want near the 2-cycle L1", th.AMATData)
	}
	if th.AMATInstr > 4 {
		t.Errorf("micro instr AMAT = %v cycles", th.AMATInstr)
	}
	// Monolithic code pays far more memory time.
	mono := Evaluate(SmallCore(), uarch.Monolithic, 100000, 7)
	if mono.AMATData <= th.AMATData {
		t.Error("monolithic AMAT should exceed microservice AMAT")
	}
}

func TestZeroGIPSGuard(t *testing.T) {
	if PerfFactor(uarch.Microservice, 10, 1) <= 0 {
		t.Fatal("tiny trace should still produce a ratio")
	}
}
