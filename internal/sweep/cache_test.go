package sweep

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strconv"
	"sync"
	"testing"
)

// memCache is an in-memory CellCache for exercising MapCached's control flow
// without the on-disk implementation.
type memCache struct {
	mu         sync.Mutex
	m          map[string][]byte
	verify     bool
	mismatches int
}

func newMemCache() *memCache { return &memCache{m: map[string][]byte{}} }

func (c *memCache) Lookup(pre []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.m[string(pre)]
	return b, ok
}

func (c *memCache) Store(pre, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[string(pre)] = append([]byte(nil), payload...)
}

func (c *memCache) VerifyMode() bool { return c.verify }

func (c *memCache) RecordMismatch(pre, cached, recomputed []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mismatches++
}

// withCache installs c for the duration of the test and restores the
// disabled state after.
func withCache(t *testing.T, c CellCache) {
	t.Helper()
	SetCache(c)
	ResetCacheCounters()
	t.Cleanup(func() {
		SetCache(nil)
		ResetCacheCounters()
	})
}

func intPre(i int, v int) []byte { return []byte("cell/" + strconv.Itoa(v)) }

func square(i int, v int) int { return v * v }

var intCodec = CellCodec[int]{
	Encode: func(v int) ([]byte, error) { return []byte(strconv.Itoa(v)), nil },
	Decode: func(b []byte) (int, error) { return strconv.Atoi(string(b)) },
}

func TestMapCachedColdWarm(t *testing.T) {
	c := newMemCache()
	withCache(t, c)
	items := []int{1, 2, 3, 4}
	cold := MapCached(2, items, intPre, intCodec, square)
	if want := []int{1, 4, 9, 16}; !reflect.DeepEqual(cold, want) {
		t.Fatalf("cold = %v, want %v", cold, want)
	}
	if h, m, _ := CacheCounters(); h != 0 || m != 4 {
		t.Fatalf("cold counters: hits=%d misses=%d", h, m)
	}
	// Warm: fn must not run at all.
	warm := MapCached(2, items, intPre, intCodec, func(i, v int) int {
		t.Errorf("cell %d recomputed on warm run", v)
		return 0
	})
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("warm = %v, want %v", warm, cold)
	}
	if h, _, _ := CacheCounters(); h != 4 {
		t.Fatalf("warm hits = %d, want 4", h)
	}
	if _, cached, _ := ProgressDetail(); cached < 4 {
		t.Fatalf("jobsCached = %d, want >= 4", cached)
	}
}

func TestMapCachedNoCacheIsMap(t *testing.T) {
	SetCache(nil)
	got := MapCached(2, []int{2, 3}, intPre, intCodec, square)
	if want := []int{4, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMapCachedNilPreimageComputes(t *testing.T) {
	c := newMemCache()
	withCache(t, c)
	ran := 0
	for range []int{0, 1} { // both passes must compute: nothing is cacheable
		got := MapCached(1, []int{5}, func(i, v int) []byte { return nil }, intCodec,
			func(i, v int) int { ran++; return v })
		if got[0] != 5 {
			t.Fatalf("got %v", got)
		}
	}
	if ran != 2 {
		t.Fatalf("fn ran %d times, want 2 (nil preimage must never cache)", ran)
	}
	if len(c.m) != 0 {
		t.Fatal("nil-preimage cell was stored")
	}
}

func TestMapCachedEncodeErrorComputesUncached(t *testing.T) {
	c := newMemCache()
	withCache(t, c)
	badCodec := CellCodec[int]{
		Encode: func(int) ([]byte, error) { return nil, fmt.Errorf("uncacheable") },
		Decode: intCodec.Decode,
	}
	got := MapCached(1, []int{7}, intPre, badCodec, square)
	if got[0] != 49 {
		t.Fatalf("got %v", got)
	}
	if len(c.m) != 0 {
		t.Fatal("cell with failing encoder was stored")
	}
}

func TestMapCachedUndecodablePayloadRecomputes(t *testing.T) {
	c := newMemCache()
	withCache(t, c)
	c.Store(intPre(0, 3), []byte("not a number"))
	got := MapCached(1, []int{3}, intPre, intCodec, square)
	if got[0] != 9 {
		t.Fatalf("got %v, want recomputed 9", got)
	}
	if _, _, inv := CacheCounters(); inv != 1 {
		t.Fatalf("invalid = %d, want 1", inv)
	}
	if b, _ := c.Lookup(intPre(0, 3)); string(b) != "9" {
		t.Fatalf("corrupt entry not repaired: %q", b)
	}
}

func TestMapCachedVerifyDetectsMismatch(t *testing.T) {
	c := newMemCache()
	c.verify = true
	withCache(t, c)
	c.Store(intPre(0, 3), []byte("8")) // lies: 3^2 is 9
	c.Store(intPre(0, 4), []byte("16"))
	got := MapCached(1, []int{3, 4}, intPre, intCodec, square)
	if want := []int{9, 16}; !reflect.DeepEqual(got, want) {
		t.Fatalf("verify must return recomputed truth, got %v", got)
	}
	if c.mismatches != 1 {
		t.Fatalf("mismatches = %d, want 1", c.mismatches)
	}
	if b, _ := c.Lookup(intPre(0, 3)); string(b) != "9" {
		t.Fatalf("lying entry not converged to truth: %q", b)
	}
}

func TestMapCached2Layout(t *testing.T) {
	c := newMemCache()
	withCache(t, c)
	rows, cols := []int{1, 2}, []int{10, 20, 30}
	pre := func(a, b int) []byte { return []byte(fmt.Sprintf("c/%d/%d", a, b)) }
	fn := func(a, b int) int { return a * b }
	cold := MapCached2(2, rows, cols, pre, intCodec, fn)
	want := [][]int{{10, 20, 30}, {20, 40, 60}}
	if !reflect.DeepEqual(cold, want) {
		t.Fatalf("cold = %v, want %v", cold, want)
	}
	warm := MapCached2(3, rows, cols, pre, intCodec, func(a, b int) int {
		t.Errorf("cell (%d,%d) recomputed on warm run", a, b)
		return 0
	})
	if !reflect.DeepEqual(warm, want) {
		t.Fatalf("warm = %v, want %v", warm, want)
	}
}

func TestFloat64CodecRoundTripAndRejectsNonFinite(t *testing.T) {
	codec := Float64Codec()
	for _, v := range []float64{0, 1, -1, 3.141592653589793, 1e-300, 1e300, 123456.789} {
		b, err := codec.Encode(v)
		if err != nil {
			t.Fatalf("Encode(%v): %v", v, err)
		}
		got, err := codec.Decode(b)
		if err != nil || got != v {
			t.Fatalf("Decode(Encode(%v)) = %v, %v", v, got, err)
		}
		// Byte-exact re-encode: shortest round-trip form is canonical.
		b2, _ := codec.Encode(got)
		if !bytes.Equal(b, b2) {
			t.Fatalf("re-encode of %v changed bytes: %q vs %q", v, b, b2)
		}
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := codec.Encode(v); err == nil {
			t.Fatalf("Encode(%v) succeeded; non-finite values must be uncacheable", v)
		}
	}
	if _, err := codec.Decode([]byte("+Inf")); err == nil {
		t.Fatal("Decode(+Inf) succeeded")
	}
}
