package sweep

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
)

// The cell cache makes figure regeneration incremental: every sweep cell is
// an independent simulation fully determined by its canonical preimage (the
// driver tag plus every config value the cell reads), so a prior run's
// result can stand in for recomputation byte for byte. The sweep package
// only defines the seam — CellCache is implemented by internal/sweepcache,
// which owns hashing, the on-disk format, and corruption handling. Keeping
// the interface bytes-in/bytes-out here avoids an import cycle (sweepcache
// reports its counters through this package, and fleet — whose results are
// cached — already imports sweep).

// CellCache is a content-addressed store for encoded cell results, keyed by
// the cell's canonical preimage. Implementations must be safe for
// concurrent use by sweep workers and must return payloads verbatim
// (Lookup(p) after Store(p, b) yields bytes equal to b), because verify
// mode compares them byte for byte against a recomputation.
type CellCache interface {
	// Lookup returns the payload cached for this preimage. A corrupt,
	// truncated, or stale entry is a miss, never an error: the cache
	// degrades to recomputation.
	Lookup(preimage []byte) (payload []byte, ok bool)
	// Store records the payload for this preimage, overwriting any
	// previous (possibly corrupt) entry.
	Store(preimage, payload []byte)
	// VerifyMode reports whether cached cells must be recomputed anyway
	// and compared against the stored bytes.
	VerifyMode() bool
	// RecordMismatch is called in verify mode when the recomputed encoding
	// differs from the cached payload — the "silently corrupted figure"
	// case the mode exists to catch.
	RecordMismatch(preimage, cached, recomputed []byte)
}

// activeCache is the process-wide cell cache consulted by MapCached; nil
// (the default) means every cell computes. It is set once by the CLI before
// any sweep runs, but is atomic so tests can swap caches around runs that
// race with a live /metrics scrape.
var activeCache atomic.Value // cellCacheBox

// cellCacheBox wraps the interface so atomic.Value tolerates differing
// concrete types (and explicit nil for "disabled").
type cellCacheBox struct{ c CellCache }

// SetCache installs (or, with nil, removes) the process-wide cell cache.
func SetCache(c CellCache) { activeCache.Store(cellCacheBox{c}) }

// ActiveCache returns the installed cell cache, or nil.
func ActiveCache() CellCache {
	if b, ok := activeCache.Load().(cellCacheBox); ok {
		return b.c
	}
	return nil
}

// CellCodec encodes one sweep cell's result type to the deterministic bytes
// stored in the cache and back. Encode must be a pure function of the value
// (map keys sorted, floats in shortest-exact form) so that verify mode's
// byte comparison is meaningful; returning an error marks the cell
// uncacheable (it still computes, nothing is stored). Decode must invert
// Encode exactly — warm results feed the same figure tables as cold ones.
type CellCodec[R any] struct {
	Encode func(R) ([]byte, error)
	Decode func([]byte) (R, error)
}

// Float64Codec carries scalar cell results (tail latencies, QoS
// throughputs) through the cache in shortest round-trip form. NaN and ±Inf
// are rejected as uncacheable rather than silently mapped to 0.
func Float64Codec() CellCodec[float64] {
	return CellCodec[float64]{
		Encode: encodeFloat64Cell,
		Decode: decodeFloat64Cell,
	}
}

func encodeFloat64Cell(v float64) ([]byte, error) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil, fmt.Errorf("sweep: non-finite cell value %v is not cacheable", v)
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

func decodeFloat64Cell(b []byte) (float64, error) {
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("sweep: non-finite cached value %v", v)
	}
	return v, nil
}

// Cache traffic counters, surfaced through /metrics and /progress alongside
// the job counters. Like those, they live in the wall-clock domain and
// never feed back into results.
var (
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	cacheInvalid atomic.Int64
)

// CacheInvalidAdd counts one invalidated cache entry (corrupt file, stale
// schema, checksum or decode failure). Called by cache implementations and
// by MapCached's decode path.
func CacheInvalidAdd() { cacheInvalid.Add(1) }

// CacheCounters returns cumulative (hits, misses, invalidated) since the
// last ResetCacheCounters.
func CacheCounters() (hits, misses, invalid int64) {
	return cacheHits.Load(), cacheMisses.Load(), cacheInvalid.Load()
}

// ResetCacheCounters zeroes the cache traffic counters.
func ResetCacheCounters() {
	cacheHits.Store(0)
	cacheMisses.Store(0)
	cacheInvalid.Store(0)
}

// MapCached is Map with a content-addressed shortcut: when a cell cache is
// installed and the cell's preimage is cacheable (pre returns non-nil), a
// valid cached payload replaces the computation. Determinism is unchanged —
// a hit decodes to exactly the bytes a recomputation would encode to (the
// battery in internal/sweepcache and internal/experiments proves it), and a
// miss runs fn exactly as Map would. In verify mode hits recompute anyway
// and byte-mismatches are reported to the cache. Cells whose preimage or
// encoding fails are computed and never stored.
func MapCached[T, R any](workers int, items []T, pre func(i int, item T) []byte, codec CellCodec[R], fn func(i int, item T) R) []R {
	c := ActiveCache()
	if c == nil || pre == nil || codec.Encode == nil || codec.Decode == nil {
		return Map(workers, items, fn)
	}
	verify := c.VerifyMode()
	return Map(workers, items, func(i int, item T) R {
		p := pre(i, item)
		if p == nil {
			return fn(i, item)
		}
		payload, hit := c.Lookup(p)
		if hit && !verify {
			if r, err := codec.Decode(payload); err == nil {
				cacheHits.Add(1)
				jobsCached.Add(1)
				return r
			}
			// Undecodable payload: treat as corruption, fall through to
			// recompute and overwrite.
			CacheInvalidAdd()
			hit = false
		}
		if !hit {
			cacheMisses.Add(1)
		}
		r := fn(i, item)
		enc, err := codec.Encode(r)
		if err != nil || enc == nil {
			return r
		}
		if hit { // verify mode: compare recomputation against the cache
			cacheHits.Add(1)
			if !bytes.Equal(enc, payload) {
				c.RecordMismatch(p, payload, enc)
				c.Store(p, enc) // converge the cache on the recomputed truth
			}
			return r
		}
		c.Store(p, enc)
		return r
	})
}

// MapCached2 is Map2 with the MapCached shortcut: fn runs over rows × cols
// (row-major) with per-cell cache lookups keyed by pre(a, b).
func MapCached2[A, B, R any](workers int, rows []A, cols []B, pre func(a A, b B) []byte, codec CellCodec[R], fn func(a A, b B) R) [][]R {
	type cell struct {
		a A
		b B
	}
	jobs := make([]cell, 0, len(rows)*len(cols))
	for _, a := range rows {
		for _, b := range cols {
			jobs = append(jobs, cell{a, b})
		}
	}
	var preFlat func(i int, c cell) []byte
	if pre != nil {
		preFlat = func(_ int, c cell) []byte { return pre(c.a, c.b) }
	}
	flat := MapCached(workers, jobs, preFlat, codec, func(_ int, c cell) R { return fn(c.a, c.b) })
	out := make([][]R, len(rows))
	for i := range rows {
		out[i] = flat[i*len(cols) : (i+1)*len(cols)]
	}
	return out
}
