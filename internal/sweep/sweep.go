// Package sweep is the deterministic parallel sweep runner behind the
// figure-regeneration experiments. Every figure in the paper's evaluation is
// a grid of fully independent simulations (architecture × load × app ×
// seed); sweep fans those jobs out over a bounded worker pool and reassembles
// the results in input order, so the output of any sweep is bit-identical to
// the sequential path regardless of worker count or goroutine scheduling.
//
// The determinism contract has three legs:
//
//  1. Each job runs on its own sim.Engine (machine.Run draws one from a pool
//     and fully Resets it), so no simulator state is shared between workers.
//  2. Job seeds are derived from (baseSeed, jobKey) with Seed — a pure
//     function of the job's identity, never of scheduling order.
//  3. Map writes the i-th result into the i-th output slot and returns only
//     after every worker has finished, so result order is the input order.
package sweep

import (
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a requested parallelism level: n > 0 is used as given,
// anything else means "all cores" (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Seed derives a per-job seed from a base seed and the job's identity key.
// It is the sweep analogue of sim.Engine.Rand's name hashing: distinct keys
// yield independent seeds, and the same (base, key) pair always yields the
// same seed, independent of worker count and execution order.
func Seed(base int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return base ^ int64(h.Sum64())
}

// busyNanos accumulates per-job wall time across all sweeps, so callers can
// estimate the aggregate sequential cost (and thus the parallel speedup)
// without re-running at one worker.
var busyNanos atomic.Int64

// ResetBusy zeroes the cumulative per-job time counter.
func ResetBusy() { busyNanos.Store(0) }

// Busy returns the cumulative wall time spent inside jobs since the last
// ResetBusy. Dividing it by the observed wall-clock time of the same span
// estimates the achieved speedup over a sequential (-parallel 1) run.
func Busy() time.Duration { return time.Duration(busyNanos.Load()) }

// jobsDone / jobsTotal track sweep progress for live serving (telemetry's
// /progress endpoint). Like busyNanos they live in the non-deterministic
// wall-clock domain and never feed back into results.
var (
	jobsDone   atomic.Int64
	jobsTotal  atomic.Int64
	jobsCached atomic.Int64
)

// ResetProgress zeroes the progress counters and records total upcoming
// jobs. Drivers call it once before a figure run so /progress shows a
// meaningful denominator.
func ResetProgress(total int) {
	jobsDone.Store(0)
	jobsCached.Store(0)
	jobsTotal.Store(int64(total))
}

// Progress returns (done, total) jobs since the last ResetProgress. total
// grows as Map calls register work when no ResetProgress preceded them.
func Progress() (done, total int64) {
	return jobsDone.Load(), jobsTotal.Load()
}

// ProgressDetail returns (done, cached, total): done counts every finished
// job, cached the subset satisfied from the cell cache without computing.
// ETA math must weight the two separately — a cache hit costs microseconds,
// not a simulation (see telemetry's /progress handler).
func ProgressDetail() (done, cached, total int64) {
	return jobsDone.Load(), jobsCached.Load(), jobsTotal.Load()
}

// ensureTotal raises jobsTotal so a Map call's items are always counted in
// the denominator even without an explicit ResetProgress.
func ensureTotal(n int) {
	need := jobsDone.Load() + int64(n)
	for {
		t := jobsTotal.Load()
		if t >= need || jobsTotal.CompareAndSwap(t, need) {
			return
		}
	}
}

// Map runs fn over every item using at most `workers` goroutines (resolved
// via Workers) and returns the results in input order. fn must be safe to
// call concurrently for distinct items; determinism is preserved because
// each output lands in its input slot and the call is a full barrier.
func Map[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	if len(items) == 0 {
		return nil
	}
	w := Workers(workers)
	if w > len(items) {
		w = len(items)
	}
	ensureTotal(len(items))
	out := make([]R, len(items))
	if w <= 1 {
		// Sequential fast path: identical results by construction, no
		// goroutine overhead.
		for i, item := range items {
			start := time.Now()
			out[i] = fn(i, item)
			busyNanos.Add(int64(time.Since(start)))
			jobsDone.Add(1)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				start := time.Now()
				out[i] = fn(i, items[i])
				busyNanos.Add(int64(time.Since(start)))
				jobsDone.Add(1)
			}
		}()
	}
	wg.Wait()
	return out
}

// Map2 runs fn over the cross product rows × cols (row-major order) and
// returns a [len(rows)][len(cols)] result grid — the common shape of the
// paper's architecture × load sweeps.
func Map2[A, B, R any](workers int, rows []A, cols []B, fn func(a A, b B) R) [][]R {
	type cell struct {
		a A
		b B
	}
	jobs := make([]cell, 0, len(rows)*len(cols))
	for _, a := range rows {
		for _, b := range cols {
			jobs = append(jobs, cell{a, b})
		}
	}
	flat := Map(workers, jobs, func(_ int, c cell) R { return fn(c.a, c.b) })
	out := make([][]R, len(rows))
	for i := range rows {
		out[i] = flat[i*len(cols) : (i+1)*len(cols)]
	}
	return out
}
