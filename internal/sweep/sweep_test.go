package sweep

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Fatal("explicit worker count ignored")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive should mean all cores")
	}
}

func TestSeedDeterministicAndDistinct(t *testing.T) {
	if Seed(42, "e2e/uManycore/15000") != Seed(42, "e2e/uManycore/15000") {
		t.Fatal("same (base, key) produced different seeds")
	}
	seen := map[int64]string{}
	for _, k := range []string{"a", "b", "e2e/uManycore/5000", "e2e/uManycore/15000", ""} {
		s := Seed(42, k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("keys %q and %q collide", prev, k)
		}
		seen[s] = k
	}
	if Seed(1, "x") == Seed(2, "x") {
		t.Fatal("base seed ignored")
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	sq := func(_ int, x int) int { return x * x }
	seq := Map(1, items, sq)
	for _, w := range []int{2, 3, 8, 100, 0} {
		par := Map(w, items, sq)
		if len(par) != len(seq) {
			t.Fatalf("w=%d: length %d", w, len(par))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("w=%d: result[%d] = %d, want %d", w, i, par[i], seq[i])
			}
		}
	}
}

func TestMapRunsEveryItemOnce(t *testing.T) {
	var calls atomic.Int64
	n := 1000
	items := make([]struct{}, n)
	Map(16, items, func(i int, _ struct{}) int {
		calls.Add(1)
		return i
	})
	if calls.Load() != int64(n) {
		t.Fatalf("fn called %d times, want %d", calls.Load(), n)
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(8, nil, func(int, int) int { return 0 }); got != nil {
		t.Fatalf("empty map = %v", got)
	}
}

func TestMap2Shape(t *testing.T) {
	rows := []string{"a", "b", "c"}
	cols := []int{1, 2}
	grid := Map2(4, rows, cols, func(a string, b int) string {
		return a + string(rune('0'+b))
	})
	if len(grid) != 3 || len(grid[0]) != 2 {
		t.Fatalf("grid shape %dx%d", len(grid), len(grid[0]))
	}
	want := [][]string{{"a1", "a2"}, {"b1", "b2"}, {"c1", "c2"}}
	for i := range want {
		for j := range want[i] {
			if grid[i][j] != want[i][j] {
				t.Fatalf("grid[%d][%d] = %q, want %q", i, j, grid[i][j], want[i][j])
			}
		}
	}
}

func TestBusyAccumulates(t *testing.T) {
	ResetBusy()
	Map(4, make([]struct{}, 64), func(i int, _ struct{}) int {
		s := 0
		for j := 0; j < 10000; j++ {
			s += j
		}
		return s
	})
	if Busy() <= 0 {
		t.Fatal("Busy did not accumulate job time")
	}
}
