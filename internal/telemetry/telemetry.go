// Package telemetry is the streaming observability layer on top of the
// internal/obs registry: a deterministic virtual-time sampler that turns
// every registered instrument into a fixed-capacity time series, a
// mergeable quantile sketch of the latency stream, an SLO watchdog that
// evaluates windowed rules and emits alert events, and serving/export
// surfaces (Prometheus /metrics, time-series CSV, terminal sparklines).
//
// Where internal/obs answers "where did this request's latency go?",
// telemetry answers "*when* did the tail happen?" — the paper's transient
// episodes (§3, §5: queueing bursts under MMPP arrivals, scheduler
// pathologies that a whole-run P99 averages away) become first-class,
// windowed simulator output.
//
// The layer inherits the repository's two hard observability constraints:
//
//   - Zero overhead when disabled. RunConfig.Telemetry == nil leaves the
//     machine holding a nil sampler pointer; the single instrumentation
//     site (latency observation) is a nil-guarded branch. Pinned by
//     TestTelemetryOffZeroAllocDelta.
//   - Determinism. Sampling happens on the simulation's virtual clock via
//     injected engine events — never wall time — so series, sketches and
//     alerts are bit-identical across repetitions and across 1-vs-N sweep
//     worker counts, and per-server runs merge worker-count-independently
//     (TestTelemetryDeterministicAcrossReps, TestTelemetryMergeWorkerIndependence).
package telemetry

import (
	"sort"

	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
)

// Options configures the telemetry layer for one run (set on
// machine.RunConfig.Telemetry; nil disables the layer at zero cost).
type Options struct {
	// Interval is the virtual-time sampling period (default 1ms): every
	// Interval the sampler snapshots all registered instruments and closes
	// one latency window.
	Interval sim.Time
	// Capacity bounds each series' ring buffer in points (default 4096).
	// When a run outlives Capacity×Interval, the oldest points drop — the
	// memory ceiling that makes million-request runs safe.
	Capacity int
	// SketchAlpha is the latency sketch's relative-error bound (default
	// stats.DefaultSketchAlpha = 1%).
	SketchAlpha float64
	// Rules are the SLO watchdog rules evaluated at every tick (default
	// none; see DefaultRules).
	Rules []Rule
	// NoEngineVitals suppresses the sim.events / sim.pending series. Set it
	// on all but one sampler when several samplers share one engine (the
	// single-engine reference fleet runs one per server on a shared engine),
	// so the merged engine series counts the engine once instead of once per
	// server.
	NoEngineVitals bool
	// VitalsPrefix namespaces the engine-vitals series names (e.g.
	// "server3." yields "server3.sim.events" / "server3.sim.pending"). The
	// sharded fleet sets it per server so each private engine's vitals stay
	// distinguishable after the merge. Ignored when NoEngineVitals is set.
	VitalsPrefix string
	// OnAlert, when set, subscribes to the watchdog's fire/resolve edges:
	// it is invoked synchronously inside the sampler tick that detected the
	// transition (virtual time, after the alert is recorded), so consumers
	// — the fleet's burn-triggered load shedder — react at tick boundaries
	// deterministically. The callback runs on whatever engine hosts the
	// sampler; cross-shard consumers must relay through the coupling fabric
	// rather than mutate remote state directly.
	OnAlert func(Alert)
}

// DefaultOptions returns the default sampling configuration (1ms interval,
// 4096-point rings, 1% sketch error, no watchdog rules).
func DefaultOptions() *Options {
	return &Options{}
}

func (o Options) normalized() Options {
	if o.Interval <= 0 {
		o.Interval = sim.Millisecond
	}
	if o.Capacity <= 0 {
		o.Capacity = 4096
	}
	if o.SketchAlpha <= 0 {
		o.SketchAlpha = stats.DefaultSketchAlpha
	}
	return o
}

// Point is one sample of a series: the virtual tick time and the value.
type Point struct {
	T sim.Time
	V float64
}

// Series is one instrument's fixed-capacity time series. The ring drops
// the oldest points on overflow, so a series never exceeds its capacity
// regardless of run length.
type Series struct {
	Name string
	Kind obs.Kind
	// Dropped counts points evicted by the ring (0 when the run fit).
	Dropped uint64

	pts  []Point
	head int // index of the oldest point
	n    int
}

func newSeries(name string, kind obs.Kind, capacity int) *Series {
	if capacity <= 0 {
		capacity = 1
	}
	return &Series{Name: name, Kind: kind, pts: make([]Point, 0, capacity)}
}

func (s *Series) push(t sim.Time, v float64) {
	if len(s.pts) < cap(s.pts) {
		s.pts = append(s.pts, Point{t, v})
		return
	}
	s.pts[s.head] = Point{t, v}
	s.head = (s.head + 1) % len(s.pts)
	s.Dropped++
}

// Len returns the number of retained points.
func (s *Series) Len() int { return len(s.pts) }

// Points returns the retained points oldest-first (a copy).
func (s *Series) Points() []Point {
	out := make([]Point, len(s.pts))
	for i := range s.pts {
		out[i] = s.pts[(s.head+i)%len(s.pts)]
	}
	return out
}

// Last returns the most recent point (zero Point when empty).
func (s *Series) Last() Point {
	if len(s.pts) == 0 {
		return Point{}
	}
	return s.pts[(s.head+len(s.pts)-1)%len(s.pts)]
}

// Values returns just the retained values oldest-first (a copy) — the
// sparkline/dashboard input.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.pts))
	for i := range s.pts {
		out[i] = s.pts[(s.head+i)%len(s.pts)].V
	}
	return out
}

// Timeline is a run's set of series, keyed by name.
type Timeline struct {
	// Interval is the sampling period shared by every series.
	Interval sim.Time
	// Capacity is the per-series ring bound.
	Capacity int

	byName map[string]*Series
	names  []string // sorted; rebuilt lazily
	dirty  bool
}

// NewTimeline returns an empty timeline.
func NewTimeline(interval sim.Time, capacity int) *Timeline {
	return &Timeline{Interval: interval, Capacity: capacity, byName: make(map[string]*Series)}
}

// series returns the named series, creating it on first use.
func (tl *Timeline) series(name string, kind obs.Kind) *Series {
	s, ok := tl.byName[name]
	if !ok {
		s = newSeries(name, kind, tl.Capacity)
		tl.byName[name] = s
		tl.dirty = true
	}
	return s
}

// Push appends one point to the named series, creating it on first use.
func (tl *Timeline) Push(name string, kind obs.Kind, t sim.Time, v float64) {
	tl.series(name, kind).push(t, v)
}

// Get returns the named series, or nil.
func (tl *Timeline) Get(name string) *Series { return tl.byName[name] }

// Names returns all series names, sorted.
func (tl *Timeline) Names() []string {
	if tl.dirty || len(tl.names) != len(tl.byName) {
		tl.names = tl.names[:0]
		for name := range tl.byName {
			tl.names = append(tl.names, name)
		}
		sort.Strings(tl.names)
		tl.dirty = false
	}
	return tl.names
}

// Series returns every series in name order.
func (tl *Timeline) Series() []*Series {
	out := make([]*Series, 0, len(tl.byName))
	for _, name := range tl.Names() {
		out = append(out, tl.byName[name])
	}
	return out
}

// Run bundles one simulation's telemetry output. Every field is a
// deterministic function of the run's seed and configuration.
type Run struct {
	// Interval is the sampling period.
	Interval sim.Time
	// Timeline holds the per-instrument series.
	Timeline *Timeline
	// Sketch summarizes the measured end-to-end latency stream
	// (microseconds) with a bounded relative error — the streaming stand-in
	// for the exact Sample.
	Sketch *stats.Sketch
	// Alerts are the watchdog's fired/resolved events in virtual-time
	// order.
	Alerts []Alert
}

// Merge combines runs from independent simulations (fleet servers, sweep
// replicates) into one Run. Series merge pointwise by timestamp according
// to their kind (counters and gauges sum, means average, maxes take the
// max — the CombineSnapshots convention); sketches merge bucket-wise;
// alerts concatenate with Source set to the input index and re-sort by
// (At, Source, Rule). The result depends only on the input order — which
// callers fix to server order — never on worker count.
func Merge(runs []*Run) *Run {
	var live []*Run
	for _, r := range runs {
		if r != nil {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return nil
	}
	out := &Run{Interval: live[0].Interval}

	// Union of series names.
	nameSet := make(map[string]obs.Kind)
	capacity := 0
	for _, r := range live {
		if r.Timeline == nil {
			continue
		}
		if r.Timeline.Capacity > capacity {
			capacity = r.Timeline.Capacity
		}
		for _, s := range r.Timeline.Series() {
			nameSet[s.Name] = s.Kind
		}
	}
	names := make([]string, 0, len(nameSet))
	for name := range nameSet {
		names = append(names, name)
	}
	sort.Strings(names)

	out.Timeline = NewTimeline(out.Interval, capacity)
	type acc struct {
		sum, max float64
		n        int
	}
	for _, name := range names {
		kind := nameSet[name]
		accs := make(map[sim.Time]*acc)
		var ts []sim.Time
		for _, r := range live {
			if r.Timeline == nil {
				continue
			}
			s := r.Timeline.Get(name)
			if s == nil {
				continue
			}
			for _, p := range s.Points() {
				a, ok := accs[p.T]
				if !ok {
					a = &acc{max: p.V}
					accs[p.T] = a
					ts = append(ts, p.T)
				}
				a.sum += p.V
				if p.V > a.max {
					a.max = p.V
				}
				a.n++
			}
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		ms := out.Timeline.series(name, kind)
		for _, t := range ts {
			a := accs[t]
			v := a.sum
			switch kind {
			case obs.KindMean:
				v = a.sum / float64(a.n)
			case obs.KindMax:
				v = a.max
			}
			ms.push(t, v)
		}
	}

	for i, r := range live {
		if r.Sketch != nil {
			if out.Sketch == nil {
				out.Sketch = stats.NewSketch(r.Sketch.Alpha())
			}
			out.Sketch.Merge(r.Sketch)
		}
		for _, a := range r.Alerts {
			a.Source = i
			out.Alerts = append(out.Alerts, a)
		}
	}
	sort.SliceStable(out.Alerts, func(i, j int) bool {
		a, b := out.Alerts[i], out.Alerts[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		return a.Rule < b.Rule
	})
	return out
}
