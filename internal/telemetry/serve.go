package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"umanycore/internal/stats"
	"umanycore/internal/sweep"
)

// The serving layer is the one deliberately non-deterministic corner of the
// telemetry stack: it reads wall clocks and process-global atomics so a
// human can watch a long figure regeneration from a browser or curl loop.
// Nothing here feeds back into run results — the boundary is one-way.
// Runs publish their finished (deterministic) telemetry via Publish; the
// handlers only ever read that snapshot plus the sweep progress counters.

// published holds the most recently finished *Run, swapped in atomically so
// handlers never see a half-built run.
var published atomic.Value // *Run

// serveStart anchors the ETA estimate.
var serveStart atomic.Int64 // unix nanos

// Publish makes run the snapshot served by /metrics and /series.csv. Safe
// to call from the run loop while the server is live; nil clears it.
func Publish(run *Run) {
	published.Store(&run) // wrap: atomic.Value forbids storing nil directly
}

// Published returns the last Publish'd run, or nil.
func Published() *Run {
	if p, ok := published.Load().(**Run); ok {
		return *p
	}
	return nil
}

// Serve starts the live observability endpoint on addr (e.g. ":9090"):
//
//	/metrics     Prometheus text exposition of the published run + progress
//	/healthz     liveness ("ok")
//	/progress    JSON {done, total, elapsed_s, eta_s}
//	/series.csv  published run's time series (long form)
//	/debug/pprof/...  net/http/pprof
//
// It returns once the listener is bound, so scrapes cannot race startup;
// the server then runs until the process exits (callers that need shutdown
// keep the returned *http.Server). Errors are bind errors.
func Serve(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	serveStart.Store(time.Now().UnixNano())
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/progress", handleProgress)
	mux.HandleFunc("/series.csv", handleSeriesCSV)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go srv.Serve(ln)
	return srv, nil
}

// promName maps a dotted instrument name onto the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return "um_" + b.String()
}

// handleMetrics writes the Prometheus text exposition: every series' last
// value from the published run, the run's latency sketch quantiles, alert
// count, and the sweep progress counters.
func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	done, cached, total := sweep.ProgressDetail()
	writeProm(&b, "um_sweep_jobs_done", "counter", "Sweep jobs completed.", float64(done))
	writeProm(&b, "um_sweep_jobs_cached", "counter", "Sweep jobs satisfied from the cell cache.", float64(cached))
	writeProm(&b, "um_sweep_jobs_total", "gauge", "Sweep jobs scheduled.", float64(total))

	hits, misses, invalid := sweep.CacheCounters()
	writeProm(&b, "um_sweepcache_hits", "counter", "Cell cache hits.", float64(hits))
	writeProm(&b, "um_sweepcache_misses", "counter", "Cell cache misses.", float64(misses))
	writeProm(&b, "um_sweepcache_invalid", "counter", "Cell cache entries invalidated (corrupt/stale).", float64(invalid))

	if r := Published(); r != nil {
		if r.Timeline != nil {
			// Stable name order so scrapes diff cleanly.
			names := r.Timeline.Names()
			sorted := make([]string, len(names))
			copy(sorted, names)
			sort.Strings(sorted)
			for _, name := range sorted {
				s := r.Timeline.Get(name)
				if s == nil || s.Len() == 0 {
					continue
				}
				typ := "gauge"
				if s.Kind.String() == "counter" {
					typ = "counter"
				}
				writeProm(&b, promName(name), typ, "Virtual-time series (last sample).", s.Last().V)
			}
		}
		if r.Sketch != nil && r.Sketch.N() > 0 {
			writeProm(&b, "um_latency_sketch_count", "counter", "Measured requests in the latency sketch.", float64(r.Sketch.N()))
			for _, q := range []struct {
				label string
				v     float64
			}{
				{"0.5", r.Sketch.Quantile(0.5)},
				{"0.99", r.Sketch.P99()},
				{"0.999", r.Sketch.Quantile(0.999)},
			} {
				fmt.Fprintf(&b, "um_latency_us{quantile=%q} %s\n", q.label, stats.FormatFloat(q.v))
			}
		}
		writeProm(&b, "um_watchdog_alerts_total", "counter", "Watchdog fire/resolve transitions.", float64(len(r.Alerts)))
	}
	w.Write([]byte(b.String()))
}

func writeProm(b *strings.Builder, name, typ, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, stats.FormatFloat(v))
}

// handleProgress reports sweep progress plus a wall-clock ETA extrapolated
// from the jobs completed so far.
func handleProgress(w http.ResponseWriter, _ *http.Request) {
	done, cached, total := sweep.ProgressDetail()
	elapsed := time.Duration(time.Now().UnixNano() - serveStart.Load()).Seconds()
	eta := etaSeconds(done, cached, total, elapsed)
	var o stats.JSONObject
	o.Int("done", done).
		Int("cached", cached).
		Int("total", total).
		FloatFixed("elapsed_s", elapsed, 3).
		FloatFixed("eta_s", eta, 3)
	w.Header().Set("Content-Type", "application/json")
	w.Write(o.Bytes())
	w.Write([]byte("\n"))
}

// etaSeconds extrapolates remaining wall time from the cells computed so
// far. Cache hits finish in microseconds, so they carry no information
// about how long a simulated cell takes: the per-cell rate divides elapsed
// time by *computed* cells only (done - cached), and the remaining cells
// are costed at that rate (a pessimistic bound — some may turn out to be
// hits too, and then the ETA drops as they land). Returns -1 (unknown)
// until at least one cell has actually been computed, and 0 once every
// scheduled cell is done.
func etaSeconds(done, cached, total int64, elapsed float64) float64 {
	remaining := total - done
	if remaining <= 0 && total > 0 {
		return 0
	}
	computed := done - cached
	if computed <= 0 || remaining <= 0 {
		return -1
	}
	return elapsed / float64(computed) * float64(remaining)
}

func handleSeriesCSV(w http.ResponseWriter, _ *http.Request) {
	r := Published()
	if r == nil {
		http.Error(w, "no run published yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	r.WriteCSV(w)
}

// parsePort splits a -serve flag value; kept here so cmd binaries share
// one validation path. Accepts ":9090", "localhost:9090", "9090".
func ParseServeAddr(v string) (string, error) {
	if v == "" {
		return "", fmt.Errorf("empty serve address")
	}
	if !strings.Contains(v, ":") {
		if _, err := strconv.Atoi(v); err != nil {
			return "", fmt.Errorf("serve address %q: want :port or host:port", v)
		}
		return ":" + v, nil
	}
	return v, nil
}
