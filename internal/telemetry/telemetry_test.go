package telemetry

import (
	"reflect"
	"strings"
	"testing"

	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
)

func TestSeriesRingEviction(t *testing.T) {
	tl := NewTimeline(sim.Millisecond, 4)
	for i := 0; i < 10; i++ {
		tl.Push("x", obs.KindGauge, sim.Time(i)*sim.Millisecond, float64(i))
	}
	s := tl.Get("x")
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	if s.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", s.Dropped)
	}
	want := []float64{6, 7, 8, 9}
	if got := s.Values(); !reflect.DeepEqual(got, want) {
		t.Fatalf("values = %v, want %v", got, want)
	}
	pts := s.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			t.Fatalf("points not time-ordered: %v", pts)
		}
	}
	if last := s.Last(); last.V != 9 {
		t.Fatalf("last = %+v, want V=9", last)
	}
}

func TestTimelineNamesSorted(t *testing.T) {
	tl := NewTimeline(sim.Millisecond, 8)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		tl.Push(n, obs.KindCounter, sim.Millisecond, 1)
	}
	want := []string{"alpha", "mid", "zeta"}
	if got := tl.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	tl.Push("beta", obs.KindCounter, sim.Millisecond, 1)
	want = []string{"alpha", "beta", "mid", "zeta"}
	if got := tl.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("names after growth = %v, want %v", got, want)
	}
}

// TestMergeKindSemantics pins the pointwise merge rules: counters and
// gauges sum, means average, maxes take the max — CombineSnapshots'
// convention applied per timestamp.
func TestMergeKindSemantics(t *testing.T) {
	mk := func(v float64) *Run {
		tl := NewTimeline(sim.Millisecond, 8)
		tl.Push("c", obs.KindCounter, sim.Millisecond, v)
		tl.Push("g", obs.KindGauge, sim.Millisecond, v)
		tl.Push("m", obs.KindMean, sim.Millisecond, v)
		tl.Push("x", obs.KindMax, sim.Millisecond, v)
		return &Run{Interval: sim.Millisecond, Timeline: tl}
	}
	merged := Merge([]*Run{mk(2), mk(4), nil})
	for name, want := range map[string]float64{"c": 6, "g": 6, "m": 3, "x": 4} {
		if got := merged.Timeline.Get(name).Last().V; got != want {
			t.Errorf("merged %s = %v, want %v", name, got, want)
		}
	}
	// A timestamp present in only one input carries that input's value.
	one := mk(5)
	one.Timeline.Push("c", obs.KindCounter, 2*sim.Millisecond, 7)
	merged = Merge([]*Run{one, mk(1)})
	pts := merged.Timeline.Get("c").Points()
	if len(pts) != 2 || pts[1].V != 7 {
		t.Fatalf("lone-timestamp merge = %v", pts)
	}
}

func TestMergeSketchAndAlerts(t *testing.T) {
	mk := func(vals []float64, alerts []Alert) *Run {
		sk := stats.NewSketch(stats.DefaultSketchAlpha)
		for _, v := range vals {
			sk.Add(v)
		}
		return &Run{Interval: sim.Millisecond, Sketch: sk, Alerts: alerts}
	}
	a := mk([]float64{1, 2}, []Alert{{Rule: "slo.p99", At: 3 * sim.Millisecond, Firing: true}})
	b := mk([]float64{3}, []Alert{{Rule: "slo.burn", At: sim.Millisecond, Firing: true}})
	merged := Merge([]*Run{a, b})
	if merged.Sketch.N() != 3 {
		t.Fatalf("merged sketch n = %d, want 3", merged.Sketch.N())
	}
	if len(merged.Alerts) != 2 {
		t.Fatalf("merged alerts = %d, want 2", len(merged.Alerts))
	}
	// Re-sorted by time; Source records the contributing input.
	if merged.Alerts[0].Rule != "slo.burn" || merged.Alerts[0].Source != 1 {
		t.Fatalf("alert order/source wrong: %+v", merged.Alerts)
	}
	if got := merged.AlertNames(); !reflect.DeepEqual(got, []string{"slo.burn", "slo.p99"}) {
		t.Fatalf("alert names = %v", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	if Merge(nil) != nil || Merge([]*Run{nil, nil}) != nil {
		t.Fatal("merge of no runs should be nil")
	}
}

func TestWriteCSVStable(t *testing.T) {
	tl := NewTimeline(sim.Millisecond, 8)
	tl.Push("b.series", obs.KindGauge, sim.Millisecond, 1.5)
	tl.Push("a.series", obs.KindCounter, sim.Millisecond, 2)
	tl.Push("a.series", obs.KindCounter, 2*sim.Millisecond, 4)
	r := &Run{Interval: sim.Millisecond, Timeline: tl}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "series,kind,t_us,value\n" +
		"a.series,counter,1000,2\n" +
		"a.series,counter,2000,4\n" +
		"b.series,gauge,1000,1.5\n"
	if sb.String() != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestDashboardRenders(t *testing.T) {
	tl := NewTimeline(sim.Millisecond, 8)
	for i := 0; i < 8; i++ {
		tl.Push("machine.queue.depth.mean", obs.KindMean, sim.Time(i+1)*sim.Millisecond, float64(i%3))
	}
	sk := stats.NewSketch(stats.DefaultSketchAlpha)
	sk.Add(100)
	r := &Run{
		Interval: sim.Millisecond,
		Timeline: tl,
		Sketch:   sk,
		Alerts:   []Alert{{Rule: "slo.p99", At: 4 * sim.Millisecond, Value: 900, Threshold: 500, Firing: true}},
	}
	var sb strings.Builder
	r.Dashboard(&sb, 24)
	out := sb.String()
	for _, want := range []string{"machine.queue.depth.mean", "slo.p99", "FIRING", "latency sketch"} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	var empty strings.Builder
	(*Run)(nil).Dashboard(&empty, 10)
	if !strings.Contains(empty.String(), "no data") {
		t.Errorf("nil-run dashboard = %q", empty.String())
	}
}

func TestParseServeAddr(t *testing.T) {
	for _, tc := range []struct {
		in, want string
		ok       bool
	}{
		{":9090", ":9090", true},
		{"localhost:9090", "localhost:9090", true},
		{"9090", ":9090", true},
		{"", "", false},
		{"nonsense", "", false},
	} {
		got, err := ParseServeAddr(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseServeAddr(%q) = %q, %v; want %q ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
