package telemetry

import (
	"fmt"
	"strings"

	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
)

// RuleKind selects how a watchdog rule computes its windowed value.
type RuleKind uint8

// Rule kinds.
const (
	// RuleP99 evaluates the window's end-to-end latency P99 in
	// microseconds (from the per-window sketch) against Threshold.
	RuleP99 RuleKind = iota
	// RuleBurnRate evaluates SLO error-budget burn: the fraction of the
	// window's requests slower than SLOMicros, divided by Budget (the
	// allowed violation fraction). A value above 1 means the budget burns
	// faster than it accrues; Threshold is typically 1.
	RuleBurnRate
	// RuleGaugeCeiling evaluates an instrument's current level against
	// Threshold: a gauge's value, or a time-weighted histogram's windowed
	// mean (e.g. machine.queue.depth).
	RuleGaugeCeiling
	// RuleRateRatio evaluates delta(Num)/delta(Den) over the window against
	// Threshold — e.g. the admission-reject rate. Den may be a
	// comma-separated list of counters whose deltas sum.
	RuleRateRatio
)

func (k RuleKind) String() string {
	switch k {
	case RuleP99:
		return "p99"
	case RuleBurnRate:
		return "burn-rate"
	case RuleGaugeCeiling:
		return "gauge-ceiling"
	case RuleRateRatio:
		return "rate-ratio"
	default:
		return "rule?"
	}
}

// Rule is one windowed SLO condition, evaluated at every sampler tick. A
// rule fires an Alert when its value first exceeds Threshold and resolves
// when it first returns to or below it.
type Rule struct {
	// Name labels the rule in alerts (e.g. "slo.p99").
	Name string
	// Kind selects the evaluation.
	Kind RuleKind
	// Metric is the instrument for RuleGaugeCeiling and the numerator
	// counter for RuleRateRatio.
	Metric string
	// Den is the denominator counter (or comma-separated counters) for
	// RuleRateRatio.
	Den string
	// SLOMicros is the per-request latency objective for RuleBurnRate.
	SLOMicros float64
	// Budget is the allowed violation fraction for RuleBurnRate (e.g. 0.01
	// = 1% of requests may exceed SLOMicros).
	Budget float64
	// Threshold is the firing level: the rule fires while value > Threshold.
	Threshold float64
}

// DefaultRules returns the paper-shaped watchdog for a P99 objective of
// p99TargetMicros: the windowed P99 itself, a 1%-budget burn rate against
// the same objective, a queue-depth ceiling, and an admission-reject rate
// ceiling.
func DefaultRules(p99TargetMicros float64) []Rule {
	return []Rule{
		{Name: "slo.p99", Kind: RuleP99, Threshold: p99TargetMicros},
		{Name: "slo.burn", Kind: RuleBurnRate, SLOMicros: p99TargetMicros, Budget: 0.01, Threshold: 1},
		{Name: "slo.queue-depth", Kind: RuleGaugeCeiling, Metric: "machine.queue.depth", Threshold: 64},
		{Name: "slo.reject-rate", Kind: RuleRateRatio,
			Metric:    "machine.admit.reject",
			Den:       "machine.admit.rq,machine.admit.nicbuf,machine.admit.swq,machine.admit.reject",
			Threshold: 0.001},
	}
}

// Alert is one watchdog transition, stamped with the virtual tick time.
type Alert struct {
	// Rule is the rule's Name.
	Rule string
	// At is the evaluation tick (virtual time).
	At sim.Time
	// Value is the windowed value that crossed the threshold.
	Value float64
	// Threshold is the rule's firing level.
	Threshold float64
	// Firing is true for a fire transition, false for a resolve.
	Firing bool
	// Source is the contributing run's index after Merge (0 for a single
	// run).
	Source int
}

func (a Alert) String() string {
	state := "FIRING"
	if !a.Firing {
		state = "resolved"
	}
	return fmt.Sprintf("%v %-16s %-8s value=%.4g threshold=%.4g", a.At, a.Rule, state, a.Value, a.Threshold)
}

// ruleState is one rule's compiled evaluator plus its firing state.
type ruleState struct {
	rule     Rule
	firing   bool
	resolved bool
	// num/den are the resolved counters for RuleRateRatio.
	num     *obs.Counter
	den     []*obs.Counter
	lastNum float64
	lastDen float64
	// gauge/hist are the resolved instrument for RuleGaugeCeiling.
	gauge        *obs.Gauge
	hist         *obs.TimeHist
	lastIntegral float64
}

// watchdog evaluates rules at every tick and accumulates alerts.
type watchdog struct {
	reg    *obs.Registry
	states []*ruleState
	alerts []Alert
	// onAlert, when set, receives each transition as it is recorded (the
	// Options.OnAlert subscription).
	onAlert func(Alert)
}

func newWatchdog(reg *obs.Registry, rules []Rule, onAlert func(Alert)) *watchdog {
	w := &watchdog{reg: reg, onAlert: onAlert}
	for _, r := range rules {
		w.states = append(w.states, &ruleState{rule: r})
	}
	return w
}

// resolve binds a rule to its instruments without creating them (a
// watchdog must not grow the registry). Most instruments exist before the
// first tick (EnableObs resolves the hot-path set), but a lazily created
// one binds on the first tick after it appears.
func (st *ruleState) resolve(reg *obs.Registry) bool {
	if st.resolved {
		return true
	}
	r := st.rule
	switch r.Kind {
	case RuleRateRatio:
		num, ok := reg.LookupCounter(r.Metric)
		if !ok {
			return false
		}
		var den []*obs.Counter
		for _, d := range strings.Split(r.Den, ",") {
			if d = strings.TrimSpace(d); d != "" {
				c, ok := reg.LookupCounter(d)
				if !ok {
					return false
				}
				den = append(den, c)
			}
		}
		st.num, st.den, st.resolved = num, den, true
	case RuleGaugeCeiling:
		if h, ok := reg.LookupTimeHist(r.Metric); ok {
			st.hist, st.resolved = h, true
		} else if g, ok := reg.LookupGauge(r.Metric); ok {
			st.gauge, st.resolved = g, true
		} else {
			return false
		}
	default:
		st.resolved = true
	}
	return st.resolved
}

// eval computes one rule's windowed value at tick time now. ok reports
// whether the window produced an evaluable value (latency rules skip empty
// windows, keeping their firing state).
func (st *ruleState) eval(reg *obs.Registry, now sim.Time, window sim.Time, win *stats.Sketch) (value float64, ok bool) {
	r := st.rule
	switch r.Kind {
	case RuleP99:
		if win.N() == 0 {
			return 0, false
		}
		return win.Quantile(0.99), true
	case RuleBurnRate:
		if win.N() == 0 || r.Budget <= 0 {
			return 0, false
		}
		return win.FracAbove(r.SLOMicros) / r.Budget, true
	case RuleGaugeCeiling:
		if !st.resolve(reg) {
			return 0, false
		}
		if st.hist != nil {
			integral := st.hist.Integral(now)
			mean := (integral - st.lastIntegral) / float64(window)
			st.lastIntegral = integral
			return mean, true
		}
		return st.gauge.Value(), true
	case RuleRateRatio:
		if !st.resolve(reg) {
			return 0, false
		}
		num := st.num.Value()
		var den float64
		for _, d := range st.den {
			den += d.Value()
		}
		dNum, dDen := num-st.lastNum, den-st.lastDen
		st.lastNum, st.lastDen = num, den
		if dDen <= 0 {
			return 0, false
		}
		return dNum / dDen, true
	}
	return 0, false
}

// tick evaluates every rule at virtual time now over the window that just
// closed, appending fire/resolve alerts on state transitions (and invoking
// the OnAlert subscription, when installed, for each one).
func (w *watchdog) tick(now sim.Time, window sim.Time, win *stats.Sketch) {
	for _, st := range w.states {
		v, ok := st.eval(w.reg, now, window, win)
		if !ok {
			continue
		}
		if firing := v > st.rule.Threshold; firing != st.firing {
			st.firing = firing
			a := Alert{Rule: st.rule.Name, At: now, Value: v, Threshold: st.rule.Threshold, Firing: firing}
			w.alerts = append(w.alerts, a)
			if w.onAlert != nil {
				w.onAlert(a)
			}
		}
	}
}

// firing reports whether the named rule is currently above threshold — the
// poll-style companion to the OnAlert subscription (barrier-time consumers
// read it with the sampler quiescent).
func (w *watchdog) firing(rule string) bool {
	for _, st := range w.states {
		if st.rule.Name == rule {
			return st.firing
		}
	}
	return false
}
