package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"umanycore/internal/sim"
	"umanycore/internal/textplot"
)

// WriteCSV writes the run's time series in long form — one row per
// (series, point): `series,kind,t_us,value`. Rows are ordered by series
// name then time, so the output is byte-stable for a given run.
func (r *Run) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "series,kind,t_us,value\n"); err != nil {
		return err
	}
	if r == nil || r.Timeline == nil {
		return nil
	}
	var b strings.Builder
	for _, s := range r.Timeline.Series() {
		for _, p := range s.Points() {
			b.Reset()
			b.WriteString(s.Name)
			b.WriteByte(',')
			b.WriteString(s.Kind.String())
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(p.T.Micros(), 'g', -1, 64))
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(p.V, 'g', -1, 64))
			b.WriteByte('\n')
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Dashboard renders a terminal summary of the run: one sparkline row per
// series (name, braille sparkline over the retained window, last/min/max),
// followed by the watchdog's alert log. width bounds the sparkline column;
// <=0 uses 48 cells.
func (r *Run) Dashboard(w io.Writer, width int) {
	if width <= 0 {
		width = 48
	}
	if r == nil || r.Timeline == nil {
		fmt.Fprintln(w, "telemetry: no data")
		return
	}
	names := r.Timeline.Names()
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var span sim.Time
	for _, name := range names {
		s := r.Timeline.Get(name)
		if s.Len() == 0 {
			continue
		}
		pts := s.Points()
		if d := pts[len(pts)-1].T - pts[0].T; d > span {
			span = d
		}
	}
	fmt.Fprintf(w, "telemetry: %d series, interval %v, window %v\n", len(names), r.Interval, span)
	for _, name := range names {
		s := r.Timeline.Get(name)
		vals := s.Values()
		lo, hi := minMax(vals)
		drop := ""
		if s.Dropped > 0 {
			drop = fmt.Sprintf("  (dropped %d)", s.Dropped)
		}
		fmt.Fprintf(w, "  %-*s %s  last=%-10.4g min=%-10.4g max=%-10.4g%s\n",
			nameW, name, textplot.SparklineN(vals, width), s.Last().V, lo, hi, drop)
	}
	if r.Sketch != nil && r.Sketch.N() > 0 {
		fmt.Fprintf(w, "  latency sketch: n=%d p50=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus (±%.0f%% rel err)\n",
			r.Sketch.N(), r.Sketch.Quantile(0.5), r.Sketch.P99(), r.Sketch.Quantile(0.999),
			r.Sketch.Max(), r.Sketch.Alpha()*100)
	}
	if len(r.Alerts) > 0 {
		fmt.Fprintf(w, "  alerts (%d):\n", len(r.Alerts))
		for _, a := range r.Alerts {
			fmt.Fprintf(w, "    %s\n", a.String())
		}
	} else {
		fmt.Fprintln(w, "  alerts: none")
	}
}

func minMax(vals []float64) (lo, hi float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// AlertNames returns the distinct rule names that fired at least once, in
// sorted order — a compact determinism fingerprint for tests.
func (r *Run) AlertNames() []string {
	if r == nil {
		return nil
	}
	seen := make(map[string]bool)
	for _, a := range r.Alerts {
		if a.Firing {
			seen[a.Rule] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
