package telemetry

import "testing"

// TestEtaSeconds pins the cached-aware ETA weighting: cache hits complete in
// microseconds and must not dilute the per-cell rate estimate.
func TestEtaSeconds(t *testing.T) {
	cases := []struct {
		name                string
		done, cached, total int64
		elapsed             float64
		want                float64
	}{
		// 10 computed cells took 100s -> 10 s/cell; 10 remain -> 100s.
		{"no cache traffic", 10, 0, 20, 100, 100},
		// Same wall time, but half the finished cells were cache hits: only
		// 5 cells were computed, so the rate is 20 s/cell -> 200s remaining.
		// The naive elapsed/done estimate would say 100s and be 2x off.
		{"half cached", 10, 5, 20, 100, 200},
		// All finished cells were hits: no computed-cell rate yet -> unknown.
		{"all cached so far", 10, 10, 20, 0.5, -1},
		{"nothing done", 0, 0, 20, 5, -1},
		{"complete", 20, 3, 20, 100, 0},
		{"overcomplete guard", 25, 0, 20, 100, 0},
		{"no jobs scheduled", 0, 0, 0, 1, -1},
	}
	for _, c := range cases {
		if got := etaSeconds(c.done, c.cached, c.total, c.elapsed); got != c.want {
			t.Errorf("%s: etaSeconds(%d, %d, %d, %g) = %g, want %g",
				c.name, c.done, c.cached, c.total, c.elapsed, got, c.want)
		}
	}
}
