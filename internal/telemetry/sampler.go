package telemetry

import (
	"sort"

	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
)

// Sampler drives one run's streaming telemetry: a chain of periodic
// snapshot events injected into the simulation engine. Every tick it
// records each registered instrument into the timeline, closes one latency
// window (feeding the windowed series and the watchdog), and re-arms
// itself until the sampling horizon.
//
// The sampler reads simulator state but never mutates it, so attaching it
// cannot change a run's results (TestTelemetryRunUnchanged); everything it
// records is keyed to the virtual clock, so its output is bit-identical
// across repetitions and sweep worker counts.
type Sampler struct {
	eng      *sim.Engine
	reg      *obs.Registry
	interval sim.Time
	horizon  sim.Time
	tl       *Timeline
	wd       *watchdog

	// sketch accumulates the whole run's measured latencies; win holds the
	// current window's and resets every tick.
	sketch *stats.Sketch
	win    *stats.Sketch

	// readers is the cached, name-sorted instrument list; rebuilt when the
	// registry grows (instruments are created lazily on first use).
	readers   []reader
	lastSize  int
	lastTick  sim.Time
	integrals map[string]float64 // per-TimeHist cumulative integral at the last tick
	finished  bool
	// noEngineVitals mirrors Options.NoEngineVitals (samplers sharing one
	// engine record its vitals once). vitalsEvents / vitalsPending are the
	// prefixed series names, precomputed so ticks never concatenate strings.
	noEngineVitals bool
	vitalsEvents   string
	vitalsPending  string
}

// reader snapshots one instrument into the timeline.
type reader struct {
	name string
	kind obs.Kind
	read func(now sim.Time) float64
}

// Start attaches a sampler to the engine and registry and schedules its
// tick chain: one snapshot every opts.Interval of virtual time, up to
// horizon (the run's Duration+Drain). Call before the engine runs.
func Start(eng *sim.Engine, reg *obs.Registry, horizon sim.Time, opts Options) *Sampler {
	o := opts.normalized()
	s := &Sampler{
		eng:            eng,
		reg:            reg,
		interval:       o.Interval,
		horizon:        horizon,
		tl:             NewTimeline(o.Interval, o.Capacity),
		wd:             newWatchdog(reg, o.Rules, o.OnAlert),
		sketch:         stats.NewSketch(o.SketchAlpha),
		win:            stats.NewSketch(o.SketchAlpha),
		integrals:      make(map[string]float64),
		noEngineVitals: o.NoEngineVitals,
		vitalsEvents:   o.VitalsPrefix + "sim.events",
		vitalsPending:  o.VitalsPrefix + "sim.pending",
	}
	var tick func()
	tick = func() {
		s.sample(eng.Now())
		if next := eng.Now() + s.interval; next <= s.horizon {
			eng.At(next, tick)
		}
	}
	if s.interval <= horizon {
		eng.At(eng.Now()+s.interval, tick)
	}
	return s
}

// Firing reports whether the named watchdog rule is currently firing —
// the polling companion to Options.OnAlert for barrier-time consumers.
func (s *Sampler) Firing(rule string) bool { return s.wd.firing(rule) }

// ObserveLatency feeds one measured end-to-end latency (microseconds) at
// the moment its request completes. The machine calls it from the same
// completion event that records the exact sample, so sketch and sample see
// identical streams.
func (s *Sampler) ObserveLatency(us float64) {
	s.sketch.Add(us)
	s.win.Add(us)
}

// rebuildReaders refreshes the cached instrument list from the registry.
func (s *Sampler) rebuildReaders() {
	s.readers = s.readers[:0]
	s.reg.Visit(
		func(name string, c *obs.Counter) {
			s.readers = append(s.readers, reader{name, obs.KindCounter,
				func(sim.Time) float64 { return c.Value() }})
		},
		func(name string, g *obs.Gauge) {
			s.readers = append(s.readers, reader{name, obs.KindGauge,
				func(sim.Time) float64 { return g.Value() }})
		},
		func(name string, h *obs.TimeHist) {
			// Time-weighted histograms stream as their *windowed* mean —
			// the exact time average over the interval that just closed,
			// computed by differencing integrals (e.g. mean queue depth per
			// window: the transient the whole-run mean averages away).
			key := name + ".mean"
			s.readers = append(s.readers, reader{key, obs.KindMean,
				func(now sim.Time) float64 {
					integral := h.Integral(now)
					win := integral - s.integrals[key]
					s.integrals[key] = integral
					dt := now - s.lastTick
					if dt <= 0 {
						return 0
					}
					return win / float64(dt)
				}})
		},
	)
	sort.Slice(s.readers, func(i, j int) bool { return s.readers[i].name < s.readers[j].name })
	s.lastSize = s.reg.Size()
}

// sample records one tick at virtual time now: every instrument, the
// engine's own vitals, the latency window's summary series, and a watchdog
// pass over the closed window.
func (s *Sampler) sample(now sim.Time) {
	if s.reg.Size() != s.lastSize || s.readers == nil {
		s.rebuildReaders()
	}
	for _, r := range s.readers {
		s.tl.Push(r.name, r.kind, now, r.read(now))
	}

	// Engine vitals: cumulative fired events and the pending-event level —
	// the live view of sim.events / sim.heap.peak.
	if !s.noEngineVitals {
		s.tl.Push(s.vitalsEvents, obs.KindCounter, now, float64(s.eng.Fired()))
		s.tl.Push(s.vitalsPending, obs.KindGauge, now, float64(s.eng.Pending()))
	}

	// Latency window summary. Counts sum across servers; quantiles merge
	// conservatively (KindMax); means average.
	if s.win.N() > 0 {
		s.tl.Push("telemetry.latency.count", obs.KindCounter, now, float64(s.win.N()))
		s.tl.Push("telemetry.latency.mean", obs.KindMean, now, s.win.Mean())
		s.tl.Push("telemetry.latency.p50", obs.KindMax, now, s.win.Quantile(0.5))
		s.tl.Push("telemetry.latency.p99", obs.KindMax, now, s.win.Quantile(0.99))
	}

	window := now - s.lastTick
	if window <= 0 {
		window = s.interval
	}
	s.wd.tick(now, window, s.win)

	s.win.Reset()
	s.lastTick = now
}

// Finish closes the final partial window (when the engine stopped between
// ticks) and returns the run's telemetry. Idempotent.
func (s *Sampler) Finish(end sim.Time) *Run {
	if !s.finished {
		if end > s.lastTick {
			s.sample(end)
		}
		s.finished = true
	}
	return &Run{
		Interval: s.interval,
		Timeline: s.tl,
		Sketch:   s.sketch,
		Alerts:   s.wd.alerts,
	}
}
