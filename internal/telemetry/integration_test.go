// Integration tests for streaming telemetry against the real machine and
// fleet models: bit-identical series/alerts across repetitions, merge
// independence from sweep worker count, result non-perturbation, sketch
// fidelity, and watchdog firing under overload. External test package so
// the machine -> telemetry import direction stays acyclic.
package telemetry_test

import (
	"math"
	"reflect"
	"testing"

	"umanycore/internal/fleet"
	"umanycore/internal/machine"
	"umanycore/internal/sim"
	"umanycore/internal/telemetry"
	"umanycore/internal/workload"
)

func teleRunConfig(seed int64) machine.RunConfig {
	apps := workload.SocialNetworkApps()
	return machine.RunConfig{
		App:      apps[6], // CPost: deep call tree with storage
		RPS:      20000,
		Duration: 60 * sim.Millisecond,
		Warmup:   10 * sim.Millisecond,
		Drain:    300 * sim.Millisecond,
		Seed:     seed,
		Telemetry: &telemetry.Options{
			Rules: telemetry.DefaultRules(500),
		},
	}
}

// fingerprint flattens a telemetry run into a DeepEqual-comparable value:
// every series' full point list, the sketch's exact aggregates and
// quantiles, and the alert log.
func fingerprint(r *telemetry.Run) map[string]any {
	fp := map[string]any{"alerts": r.Alerts}
	for _, s := range r.Timeline.Series() {
		fp["series:"+s.Name] = s.Points()
		fp["dropped:"+s.Name] = s.Dropped
	}
	if r.Sketch != nil {
		fp["sketch"] = []float64{
			float64(r.Sketch.N()), r.Sketch.Sum(), r.Sketch.Min(), r.Sketch.Max(),
			r.Sketch.Quantile(0.5), r.Sketch.P99(), r.Sketch.Quantile(0.999),
		}
	}
	return fp
}

// TestTelemetryDeterministicAcrossReps is the repetition half of the
// determinism contract: the same seed yields bit-identical time series,
// sketch and alerts.
func TestTelemetryDeterministicAcrossReps(t *testing.T) {
	cfg := machine.UManycoreConfig()
	a := machine.Run(cfg, teleRunConfig(7))
	b := machine.Run(cfg, teleRunConfig(7))
	if a.Telemetry == nil || b.Telemetry == nil {
		t.Fatal("telemetry missing")
	}
	if len(a.Telemetry.Timeline.Names()) == 0 {
		t.Fatal("no series recorded")
	}
	if !reflect.DeepEqual(fingerprint(a.Telemetry), fingerprint(b.Telemetry)) {
		t.Fatal("telemetry differs between identical repetitions")
	}
	c := machine.Run(cfg, teleRunConfig(8))
	if reflect.DeepEqual(fingerprint(a.Telemetry), fingerprint(c.Telemetry)) {
		t.Fatal("different seeds produced identical telemetry (sampler not observing the run?)")
	}
}

// TestTelemetryResultUnchanged checks the sampler is read-only: attaching
// telemetry must not move a single simulation outcome.
func TestTelemetryResultUnchanged(t *testing.T) {
	cfg := machine.UManycoreConfig()
	rc := teleRunConfig(11)
	with := machine.Run(cfg, rc)
	rc.Telemetry = nil
	without := machine.Run(cfg, rc)
	if with.Latency != without.Latency {
		t.Fatalf("latency summary moved: with=%+v without=%+v", with.Latency, without.Latency)
	}
	if with.Completed != without.Completed || with.Submitted != without.Submitted ||
		with.Rejected != without.Rejected || with.Invocations != without.Invocations {
		t.Fatal("request accounting moved under telemetry")
	}
	if without.Telemetry != nil {
		t.Fatal("telemetry-off run carried a telemetry payload")
	}
}

// TestTelemetryFleetMergeWorkerIndependence is the 1-vs-N half of the
// determinism contract: the merged fleet telemetry must be bit-identical
// whether the servers ran on one worker or many. ci.sh runs this under
// -race, which also proves the per-server samplers share no state.
func TestTelemetryFleetMergeWorkerIndependence(t *testing.T) {
	app := workload.SocialNetworkApps()[0]
	rc := machine.RunConfig{
		Duration: 40 * sim.Millisecond,
		Warmup:   10 * sim.Millisecond,
		Drain:    200 * sim.Millisecond,
		Telemetry: &telemetry.Options{
			Rules: telemetry.DefaultRules(500),
		},
	}
	fc := fleet.DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 4

	fc.Parallel = 1
	seq := fleet.Run(fc, app, 60000, rc, 3)
	fc.Parallel = 4
	par := fleet.Run(fc, app, 60000, rc, 3)
	if seq.Telemetry == nil || par.Telemetry == nil {
		t.Fatal("fleet telemetry missing")
	}
	if !reflect.DeepEqual(fingerprint(seq.Telemetry), fingerprint(par.Telemetry)) {
		t.Fatal("merged telemetry depends on worker count")
	}
	// Merged counters sum over servers: the merged latency count at any tick
	// equals the per-server total.
	if n := seq.Telemetry.Sketch.N(); n != uint64(seq.Completed)-uint64(seq.Rejected)*0 && n == 0 {
		t.Fatalf("merged sketch empty (completed %d)", seq.Completed)
	}
}

// TestTelemetrySketchMatchesSample cross-checks the sketch against the
// exact sample on a real run: every checked quantile within the documented
// relative-error bound.
func TestTelemetrySketchMatchesSample(t *testing.T) {
	res := machine.Run(machine.UManycoreConfig(), teleRunConfig(13))
	sk := res.Telemetry.Sketch
	if sk.N() != uint64(res.Sample.N()) {
		t.Fatalf("sketch saw %d observations, sample %d", sk.N(), res.Sample.N())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := res.Sample.Quantile(q)
		est := sk.Quantile(q)
		if exact <= 0 {
			continue
		}
		if rel := math.Abs(est-exact) / exact; rel > sk.Alpha() {
			t.Errorf("q=%v: sketch %.3f vs exact %.3f (rel err %.4f > alpha %.4f)",
				q, est, exact, rel, sk.Alpha())
		}
	}
}

// TestWatchdogFiresUnderOverload runs a loaded machine against a P99
// objective far below what it delivers and expects the latency rules to
// fire deterministically. (Total saturation is the wrong fixture here:
// past the cliff requests stop completing, so there are no latencies for
// the windowed rules to judge — only the queue-depth ceiling sees it.)
func TestWatchdogFiresUnderOverload(t *testing.T) {
	rc := teleRunConfig(5)
	rc.Telemetry = &telemetry.Options{
		Rules: telemetry.DefaultRules(50), // CPost's windowed P99 is well above 50us
	}
	cfg := machine.UManycoreConfig()
	res := machine.Run(cfg, rc)
	alerts := res.Telemetry.Alerts
	if len(alerts) == 0 {
		t.Fatal("overloaded run raised no alerts")
	}
	fired := res.Telemetry.AlertNames()
	if len(fired) == 0 {
		t.Fatal("no rules fired")
	}
	hasP99 := false
	for _, n := range fired {
		if n == "slo.p99" {
			hasP99 = true
		}
	}
	if !hasP99 {
		t.Errorf("P99 rule silent under overload; fired: %v", fired)
	}
	for _, a := range alerts {
		if a.At <= 0 {
			t.Fatalf("alert without virtual timestamp: %+v", a)
		}
	}
	again := machine.Run(cfg, rc)
	if !reflect.DeepEqual(alerts, again.Telemetry.Alerts) {
		t.Fatal("alert log differs between identical repetitions")
	}
}

// TestTelemetryRingBoundsLongRun keeps a run long enough to overflow a tiny
// ring and checks the ceiling holds.
func TestTelemetryRingBoundsLongRun(t *testing.T) {
	rc := teleRunConfig(17)
	rc.Telemetry = &telemetry.Options{
		Interval: 500 * sim.Microsecond,
		Capacity: 16,
	}
	res := machine.Run(machine.UManycoreConfig(), rc)
	found := false
	for _, s := range res.Telemetry.Timeline.Series() {
		if s.Len() > 16 {
			t.Fatalf("series %s holds %d points, capacity 16", s.Name, s.Len())
		}
		if s.Dropped > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("expected at least one series to evict under a 16-point ring")
	}
}
