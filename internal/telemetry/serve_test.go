package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	Publish(nil)
	if code, _ := get(t, base+"/series.csv"); code != http.StatusNotFound {
		t.Fatalf("series.csv with no run = %d, want 404", code)
	}

	tl := NewTimeline(sim.Millisecond, 8)
	tl.Push("machine.admit.rq", obs.KindCounter, sim.Millisecond, 12)
	tl.Push("sim.pending", obs.KindGauge, sim.Millisecond, 3)
	sk := stats.NewSketch(stats.DefaultSketchAlpha)
	for i := 1; i <= 100; i++ {
		sk.Add(float64(i))
	}
	Publish(&Run{Interval: sim.Millisecond, Timeline: tl, Sketch: sk,
		Alerts: []Alert{{Rule: "slo.p99", At: sim.Millisecond, Firing: true}}})

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"um_machine_admit_rq 12",
		"um_sim_pending 3",
		"um_latency_sketch_count 100",
		`um_latency_us{quantile="0.99"}`,
		"um_watchdog_alerts_total 1",
		"um_sweep_jobs_done",
		"# TYPE um_machine_admit_rq counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/progress")
	if code != 200 {
		t.Fatalf("progress = %d", code)
	}
	var prog struct {
		Done, Total int64
		ElapsedS    float64 `json:"elapsed_s"`
		EtaS        float64 `json:"eta_s"`
	}
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("progress json %q: %v", body, err)
	}

	code, body = get(t, base+"/series.csv")
	if code != 200 || !strings.HasPrefix(body, "series,kind,t_us,value\n") {
		t.Fatalf("series.csv = %d %q", code, body)
	}
	if !strings.Contains(body, "machine.admit.rq,counter,1000,12") {
		t.Errorf("series.csv missing row:\n%s", body)
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline = %d", code)
	}
}
