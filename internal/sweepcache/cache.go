package sweepcache

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"umanycore/internal/obs"
	"umanycore/internal/stats"
	"umanycore/internal/sweep"
)

// SchemaVersion is baked into every cache key. Bump it whenever the cell
// payload encodings, the canonical key format, or the simulation models
// change in a way the config preimage cannot see — a bump orphans every
// existing entry (stale-schema entries read as misses), which is exactly
// the safe behaviour.
const SchemaVersion = 1

// KeyHash returns the content address for a preimage: hex SHA-256 over the
// schema-versioned preimage. The schema version is hashed in (not just
// stored) so entries written by a different schema can never collide with
// current keys even if their files are left behind.
func KeyHash(preimage []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "umanycore/sweepcache/v%d\x00", SchemaVersion)
	h.Write(preimage)
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a snapshot of one cache's traffic.
type Stats struct {
	Hits, Misses, Stores, Invalid, Mismatches int64
}

// Cache is the on-disk store. One entry per cell, laid out as
// DIR/<hh>/<hash>.json where hh is the first hash byte (fan-out keeps
// directories small on full-figure-set runs). Safe for concurrent use by
// sweep workers; concurrent processes sharing a directory are safe too
// (stores are atomic rename, distinct cells have distinct files).
type Cache struct {
	dir    string
	verify atomic.Bool
	logf   atomic.Value // func(format string, args ...any)

	hits, misses, stores, invalid, mismatches atomic.Int64

	mu          sync.Mutex
	mismatchLog []string

	gitOnce sync.Once
	gitDesc string
}

// Open creates (if needed) and returns the cache rooted at dir.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweepcache: %w", err)
	}
	c := &Cache{dir: dir}
	c.logf.Store(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	return c, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// SetLogf redirects the cache's recompute-with-warning messages (default:
// standard error).
func (c *Cache) SetLogf(f func(format string, args ...any)) { c.logf.Store(f) }

func (c *Cache) warnf(format string, args ...any) {
	if f, ok := c.logf.Load().(func(string, ...any)); ok && f != nil {
		f("sweepcache: "+format, args...)
	}
}

// SetVerify switches verify mode: hits still recompute and byte-mismatches
// between cache and recomputation are recorded as failures.
func (c *Cache) SetVerify(on bool) { c.verify.Store(on) }

// VerifyMode implements sweep.CellCache.
func (c *Cache) VerifyMode() bool { return c.verify.Load() }

// Snapshot returns the cache's traffic counters.
func (c *Cache) Snapshot() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Stores:     c.stores.Load(),
		Invalid:    c.invalid.Load(),
		Mismatches: c.mismatches.Load(),
	}
}

// Mismatches returns the recorded verify failures (one line per cell).
func (c *Cache) Mismatches() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.mismatchLog))
	copy(out, c.mismatchLog)
	return out
}

// PublishObs copies the cache counters into an obs metrics registry under
// sweepcache.* — the same registry surface every other simulator subsystem
// reports through, so cache traffic shows up in metrics snapshots and
// exports alongside sim.events and friends.
func (c *Cache) PublishObs(reg *obs.Registry) {
	s := c.Snapshot()
	for _, e := range []struct {
		name string
		v    int64
	}{
		{"sweepcache.hits", s.Hits},
		{"sweepcache.misses", s.Misses},
		{"sweepcache.stores", s.Stores},
		{"sweepcache.invalid", s.Invalid},
		{"sweepcache.mismatches", s.Mismatches},
	} {
		ctr := reg.Counter(e.name)
		ctr.Add(float64(e.v) - ctr.Value())
	}
}

// entryPath maps a key hash onto the two-level directory layout.
func (c *Cache) entryPath(hash string) string {
	return filepath.Join(c.dir, hash[:2], hash+".json")
}

// entry is the decode mirror of the stored record (written via
// stats.JSONObject in Store, so the field order below is also the on-disk
// order).
type entry struct {
	Schema      int             `json:"schema"`
	Key         string          `json:"key"`
	PreimageB64 string          `json:"preimage_b64"`
	WallUnix    int64           `json:"wall_unix"`
	Git         string          `json:"git"`
	PayloadSHA  string          `json:"payload_sha256"`
	Payload     json.RawMessage `json:"payload"`
}

// Lookup implements sweep.CellCache: any validation failure — unreadable or
// truncated file, stale schema, key or checksum mismatch — counts as an
// invalidation, warns, and reads as a miss so the cell recomputes.
func (c *Cache) Lookup(preimage []byte) ([]byte, bool) {
	hash := KeyHash(preimage)
	path := c.entryPath(hash)
	b, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			c.invalidate(path, fmt.Sprintf("read: %v", err))
		} else {
			c.misses.Add(1)
		}
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		c.invalidate(path, fmt.Sprintf("corrupt entry: %v", err))
		return nil, false
	}
	if e.Schema != SchemaVersion {
		c.invalidate(path, fmt.Sprintf("stale schema %d (want %d)", e.Schema, SchemaVersion))
		return nil, false
	}
	if e.Key != hash {
		c.invalidate(path, fmt.Sprintf("key mismatch: entry says %.12s…", e.Key))
		return nil, false
	}
	if sum := sha256.Sum256(e.Payload); hex.EncodeToString(sum[:]) != e.PayloadSHA {
		c.invalidate(path, "payload checksum mismatch (flipped bytes?)")
		return nil, false
	}
	c.hits.Add(1)
	return e.Payload, true
}

// invalidate counts and reports one unusable entry. The file is left in
// place: the recomputed Store will atomically overwrite it.
func (c *Cache) invalidate(path, why string) {
	c.invalid.Add(1)
	c.misses.Add(1)
	sweep.CacheInvalidAdd()
	c.warnf("%s: %s; recomputing", path, why)
}

// Store implements sweep.CellCache: write-temp-then-rename so concurrent
// readers (and a second process sharing the directory) never observe a
// partial entry. Store failures only warn — a cell that cannot be cached
// still produced a correct result.
func (c *Cache) Store(preimage, payload []byte) {
	hash := KeyHash(preimage)
	path := c.entryPath(hash)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		c.warnf("%s: %v", path, err)
		return
	}
	sum := sha256.Sum256(payload)
	var o stats.JSONObject
	o.Int("schema", SchemaVersion).
		Str("key", hash).
		Str("preimage_b64", base64.StdEncoding.EncodeToString(preimage)).
		Int("wall_unix", time.Now().Unix()).
		Str("git", c.gitDescribe()).
		Str("payload_sha256", hex.EncodeToString(sum[:])).
		Raw("payload", payload)
	b := append(o.Bytes(), '\n')

	tmp, err := os.CreateTemp(filepath.Dir(path), hash+".tmp*")
	if err != nil {
		c.warnf("%s: %v", path, err)
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		c.warnf("%s: write failed", path)
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		c.warnf("%s: %v", path, err)
		return
	}
	c.stores.Add(1)
}

// RecordMismatch implements sweep.CellCache: verify mode found a cached
// payload whose recomputation encodes differently — the cache was lying.
func (c *Cache) RecordMismatch(preimage, cached, recomputed []byte) {
	c.mismatches.Add(1)
	hash := KeyHash(preimage)
	line := fmt.Sprintf("%s: cached %d bytes != recomputed %d bytes", hash, len(cached), len(recomputed))
	c.mu.Lock()
	c.mismatchLog = append(c.mismatchLog, line)
	c.mu.Unlock()
	c.warnf("VERIFY MISMATCH %s", line)
}

// entryDirRe matches the fan-out subdirectories Clear is allowed to touch.
var entryDirRe = regexp.MustCompile(`^[0-9a-f]{2}$`)

// Clear removes every cache entry under the root. It deletes only files
// matching the cache layout (hex fan-out directories, .json entries and
// leftover temp files), so pointing -cache-clear at a directory that also
// holds other data cannot destroy it.
func (c *Cache) Clear() error {
	subs, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("sweepcache: %w", err)
	}
	for _, sub := range subs {
		if !sub.IsDir() || !entryDirRe.MatchString(sub.Name()) {
			continue
		}
		subPath := filepath.Join(c.dir, sub.Name())
		files, err := os.ReadDir(subPath)
		if err != nil {
			return fmt.Errorf("sweepcache: %w", err)
		}
		removedAll := true
		for _, f := range files {
			name := f.Name()
			if filepath.Ext(name) == ".json" || entryTempRe.MatchString(name) {
				if err := os.Remove(filepath.Join(subPath, name)); err != nil {
					return fmt.Errorf("sweepcache: %w", err)
				}
			} else {
				removedAll = false
			}
		}
		if removedAll {
			os.Remove(subPath) // best effort: prune the empty fan-out dir
		}
	}
	return nil
}

// entryTempRe matches in-flight temp files from interrupted Stores.
var entryTempRe = regexp.MustCompile(`^[0-9a-f]{64}\.tmp`)

// gitDescribe resolves the repository state once, for provenance headers
// only (never the key — a commit must not orphan the cache; that is the
// schema version's job when models actually change).
func (c *Cache) gitDescribe() string {
	c.gitOnce.Do(func() {
		out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
		if err != nil || len(out) == 0 {
			c.gitDesc = "unknown"
			return
		}
		c.gitDesc = string(out[:len(out)-1])
	})
	return c.gitDesc
}
