// Package sweepcache is the content-addressed, on-disk result cache behind
// incremental figure regeneration. Each sweep cell (one independent
// simulation) is addressed by a stable hash of its canonical preimage —
// cache schema version, a driver tag naming the computation and payload
// schema, and a canonical encoding of every input the cell reads (machine
// config, run config, derived seed). The stored value is the cell's result
// in the repository's fixed-field-order JSON plus a provenance header.
//
// The cache is deliberately paranoid: a wrong hit silently corrupts
// figures, so entries carry the full key preimage and a payload checksum,
// every validation failure degrades to recompute-with-warning (never a
// wrong result, never a crash), and verify mode recomputes hits anyway and
// fails loudly on byte mismatches. What the preimage cannot see is model
// code: changing simulator internals without touching any config leaves
// stale entries behind. That is what SchemaVersion bumps, `umbench
// -cache-verify`, and the golden-output tests are for.
package sweepcache

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
)

// Key accumulates one cell's canonical preimage. Every field is framed with
// a type tag and length prefixes, so the encoding is injective: two
// different (driver, field...) sequences can never produce the same bytes
// (FuzzCanonicalKey hammers this on generated corpora). The zero Key is not
// valid; use NewKey.
type Key struct {
	buf   []byte
	depth int
	err   error
}

// maxWalkDepth bounds the reflective walk. Config object graphs here are a
// few levels deep; hitting the bound means a cyclic structure, which has no
// canonical form — poison the key instead of spinning.
const maxWalkDepth = 1000

// NewKey starts a preimage for one cell of the named driver. The driver tag
// names both the computation and the payload schema ("run/result",
// "run/p99", "fleet/result", ...): two drivers caching different payload
// types for otherwise identical inputs must use different tags.
func NewKey(driver string) *Key {
	k := &Key{}
	k.str(driver)
	return k
}

// Err reports the first encoding failure (an unsupported value kind); a
// failed key yields a nil Preimage and the cell simply computes.
func (k *Key) Err() error { return k.err }

// Preimage returns the canonical bytes, or nil if any field failed to
// encode.
func (k *Key) Preimage() []byte {
	if k.err != nil {
		return nil
	}
	return k.buf
}

func (k *Key) uvarint(v uint64) { k.buf = binary.AppendUvarint(k.buf, v) }

func (k *Key) str(s string) {
	k.uvarint(uint64(len(s)))
	k.buf = append(k.buf, s...)
}

func (k *Key) tag(t byte) { k.buf = append(k.buf, t) }

func (k *Key) u64(v uint64) { k.buf = binary.BigEndian.AppendUint64(k.buf, v) }

// field writes the label framing shared by all typed appenders.
func (k *Key) field(label string) {
	k.tag('F')
	k.str(label)
}

// Str appends a labeled string field.
func (k *Key) Str(label, v string) *Key {
	k.field(label)
	k.tag('s')
	k.str(v)
	return k
}

// Int appends a labeled integer field.
func (k *Key) Int(label string, v int64) *Key {
	k.field(label)
	k.tag('i')
	k.u64(uint64(v))
	return k
}

// Float appends a labeled float field by IEEE-754 bit pattern, so distinct
// values (including -0 vs 0) stay distinct.
func (k *Key) Float(label string, v float64) *Key {
	k.field(label)
	k.tag('f')
	k.u64(math.Float64bits(v))
	return k
}

// Bool appends a labeled bool field.
func (k *Key) Bool(label string, v bool) *Key {
	k.field(label)
	k.tag('b')
	if v {
		k.buf = append(k.buf, 1)
	} else {
		k.buf = append(k.buf, 0)
	}
	return k
}

// Any appends a labeled value of arbitrary type via a canonical reflective
// walk: structs encode their type name and fields in declaration order,
// maps sort entries by encoded key, pointers and interfaces encode nil-ness
// then their element. Unsupported kinds (non-nil funcs, channels, unsafe
// pointers) poison the key — the cell computes uncached rather than risk an
// ambiguous address.
func (k *Key) Any(label string, v any) *Key {
	k.field(label)
	if k.err == nil {
		k.walk(reflect.ValueOf(v))
	}
	return k
}

func (k *Key) fail(v reflect.Value) {
	if k.err == nil {
		k.err = fmt.Errorf("sweepcache: cannot canonically encode %s value", v.Kind())
	}
}

// walk canonically encodes one reflect.Value. It reads through unexported
// fields with kind-typed accessors (never Interface()), so plain config
// structs encode fully even when embedded types keep internals private.
func (k *Key) walk(v reflect.Value) {
	if k.err != nil {
		return
	}
	if !v.IsValid() { // e.g. Any(label, nil)
		k.tag('n')
		return
	}
	k.depth++
	defer func() { k.depth-- }()
	if k.depth > maxWalkDepth {
		if k.err == nil {
			k.err = fmt.Errorf("sweepcache: value nesting exceeds %d (cyclic structure?)", maxWalkDepth)
		}
		return
	}
	switch v.Kind() {
	case reflect.Bool:
		k.tag('b')
		if v.Bool() {
			k.buf = append(k.buf, 1)
		} else {
			k.buf = append(k.buf, 0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		k.tag('i')
		k.u64(uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		k.tag('u')
		k.u64(v.Uint())
	case reflect.Float32, reflect.Float64:
		k.tag('f')
		k.u64(math.Float64bits(v.Float()))
	case reflect.Complex64, reflect.Complex128:
		k.tag('c')
		c := v.Complex()
		k.u64(math.Float64bits(real(c)))
		k.u64(math.Float64bits(imag(c)))
	case reflect.String:
		k.tag('s')
		k.str(v.String())
	case reflect.Slice:
		if v.IsNil() {
			k.tag('n')
			return
		}
		fallthrough
	case reflect.Array:
		k.tag('l')
		k.uvarint(uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			k.walk(v.Index(i))
		}
	case reflect.Map:
		if v.IsNil() {
			k.tag('n')
			return
		}
		k.tag('m')
		k.uvarint(uint64(v.Len()))
		// Entries sorted by encoded key bytes: map iteration order must
		// never reach the preimage. Key and value encodings are length-
		// prefixed so entry boundaries stay unambiguous.
		type entry struct{ ke, ve []byte }
		entries := make([]entry, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			ke := (&Key{}).sub(iter.Key())
			ve := (&Key{}).sub(iter.Value())
			if ke == nil || ve == nil {
				k.fail(v)
				return
			}
			entries = append(entries, entry{ke, ve})
		}
		sort.Slice(entries, func(i, j int) bool {
			if c := bytes.Compare(entries[i].ke, entries[j].ke); c != 0 {
				return c < 0
			}
			return bytes.Compare(entries[i].ve, entries[j].ve) < 0
		})
		for _, e := range entries {
			k.uvarint(uint64(len(e.ke)))
			k.buf = append(k.buf, e.ke...)
			k.uvarint(uint64(len(e.ve)))
			k.buf = append(k.buf, e.ve...)
		}
	case reflect.Struct:
		k.tag('o')
		t := v.Type()
		k.str(t.PkgPath() + "." + t.Name())
		k.uvarint(uint64(t.NumField()))
		for i := 0; i < t.NumField(); i++ {
			k.str(t.Field(i).Name)
			k.walk(v.Field(i))
		}
	case reflect.Pointer:
		if v.IsNil() {
			k.tag('n')
			return
		}
		k.tag('p')
		k.walk(v.Elem())
	case reflect.Interface:
		if v.IsNil() {
			k.tag('n')
			return
		}
		k.tag('I')
		k.str(v.Elem().Type().String())
		k.walk(v.Elem())
	case reflect.Func, reflect.Chan, reflect.UnsafePointer:
		// A nil func/chan field (the common "no override installed" case)
		// encodes as nil; a live one has no canonical form.
		if v.IsNil() {
			k.tag('n')
			return
		}
		k.fail(v)
	default:
		k.fail(v)
	}
}

// sub encodes one value standalone (for map entry sorting); nil on failure.
func (k *Key) sub(v reflect.Value) []byte {
	k.walk(v)
	if k.err != nil {
		return nil
	}
	return k.buf
}
