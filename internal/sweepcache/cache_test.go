package sweepcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// quiet silences the recompute-with-warning log during corruption tests and
// returns the captured lines.
func quiet(c *Cache) *[]string {
	var mu sync.Mutex
	var lines []string
	c.SetLogf(func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	return &lines
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	quiet(c)
	pre := NewKey("t").Int("x", 1).Preimage()
	if _, ok := c.Lookup(pre); ok {
		t.Fatal("hit on empty cache")
	}
	payload := []byte(`{"v":1}`)
	c.Store(pre, payload)
	got, ok := c.Lookup(pre)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Lookup = %q, %v; want stored payload", got, ok)
	}
	s := c.Snapshot()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 || s.Invalid != 0 {
		t.Fatalf("counters = %+v", s)
	}
}

func TestCacheOverwrite(t *testing.T) {
	c, _ := Open(t.TempDir())
	quiet(c)
	pre := NewKey("t").Int("x", 1).Preimage()
	c.Store(pre, []byte(`1`))
	c.Store(pre, []byte(`2`))
	if got, ok := c.Lookup(pre); !ok || string(got) != "2" {
		t.Fatalf("Lookup = %q, %v; want latest payload", got, ok)
	}
}

// entryFile returns the on-disk path of the (single) stored entry.
func entryFile(t *testing.T, c *Cache) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(c.Dir(), "??", "*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("entry files = %v, %v; want exactly one", matches, err)
	}
	return matches[0]
}

// TestCacheCorruptionDegradesToMiss is the corruption-injection battery:
// every broken entry must read as a miss (so the cell recomputes), count one
// invalidation, warn — and never return wrong bytes or crash.
func TestCacheCorruptionDegradesToMiss(t *testing.T) {
	pre := NewKey("t").Int("x", 1).Preimage()
	payload := []byte(`{"v":1}`)
	corruptions := map[string]func(path string) error{
		"truncated file": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, b[:len(b)/2], 0o644)
		},
		"flipped payload byte": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			i := bytes.Index(b, []byte(`"payload":`))
			if i < 0 {
				return fmt.Errorf("no payload field in %s", b)
			}
			b[i+len(`"payload":`)+2] ^= 0x20
			return os.WriteFile(path, b, 0o644)
		},
		"stale schema": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			b = bytes.Replace(b, []byte(fmt.Sprintf(`"schema":%d`, SchemaVersion)),
				[]byte(fmt.Sprintf(`"schema":%d`, SchemaVersion+1)), 1)
			return os.WriteFile(path, b, 0o644)
		},
		"garbage file": func(path string) error {
			return os.WriteFile(path, []byte("not json at all\x00\xff"), 0o644)
		},
		"empty file": func(path string) error {
			return os.WriteFile(path, nil, 0o644)
		},
		"wrong key": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			// Swap the recorded key for another valid-looking hash.
			i := bytes.Index(b, []byte(`"key":"`))
			b[i+len(`"key":"`)] ^= 1 // '0'<->'1' etc. stays hex-ish, differs
			return os.WriteFile(path, b, 0o644)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			c, _ := Open(t.TempDir())
			warnings := quiet(c)
			c.Store(pre, payload)
			if err := corrupt(entryFile(t, c)); err != nil {
				t.Fatal(err)
			}
			got, ok := c.Lookup(pre)
			if ok {
				t.Fatalf("corrupt entry returned a hit with payload %q", got)
			}
			s := c.Snapshot()
			if s.Invalid != 1 {
				t.Fatalf("invalid = %d, want 1", s.Invalid)
			}
			if len(*warnings) == 0 {
				t.Fatal("no recompute warning logged")
			}
			// The recomputed Store must repair the entry in place.
			c.Store(pre, payload)
			if got, ok := c.Lookup(pre); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("post-repair Lookup = %q, %v", got, ok)
			}
		})
	}
}

func TestCacheEntryHasProvenance(t *testing.T) {
	c, _ := Open(t.TempDir())
	quiet(c)
	pre := NewKey("t").Int("x", 1).Preimage()
	c.Store(pre, []byte(`{"v":1}`))
	b, err := os.ReadFile(entryFile(t, c))
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"schema":`, `"key":`, `"preimage_b64":`, `"wall_unix":`, `"git":`, `"payload_sha256":`, `"payload":`} {
		if !bytes.Contains(b, []byte(field)) {
			t.Errorf("entry missing %s", field)
		}
	}
	if !strings.Contains(string(b), KeyHash(pre)) {
		t.Error("entry does not record its own key hash")
	}
}

func TestCacheClearOnlyTouchesEntries(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	quiet(c)
	c.Store(NewKey("t").Int("x", 1).Preimage(), []byte(`1`))
	c.Store(NewKey("t").Int("x", 2).Preimage(), []byte(`2`))
	// Foreign data sharing the directory must survive a clear.
	foreign := filepath.Join(dir, "notes.txt")
	os.WriteFile(foreign, []byte("keep me"), 0o644)
	foreignDir := filepath.Join(dir, "plots")
	os.MkdirAll(foreignDir, 0o755)
	os.WriteFile(filepath.Join(foreignDir, "a.json"), []byte("keep"), 0o644)
	if err := c.Clear(); err != nil {
		t.Fatal(err)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "??", "*.json")); len(matches) != 0 {
		t.Fatalf("entries survived clear: %v", matches)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("clear removed foreign file")
	}
	if _, err := os.Stat(filepath.Join(foreignDir, "a.json")); err != nil {
		t.Fatal("clear removed foreign directory contents")
	}
	if _, ok := c.Lookup(NewKey("t").Int("x", 1).Preimage()); ok {
		t.Fatal("hit after clear")
	}
}

func TestCacheVerifyBookkeeping(t *testing.T) {
	c, _ := Open(t.TempDir())
	quiet(c)
	if c.VerifyMode() {
		t.Fatal("verify on by default")
	}
	c.SetVerify(true)
	if !c.VerifyMode() {
		t.Fatal("SetVerify(true) not reflected")
	}
	pre := NewKey("t").Int("x", 1).Preimage()
	c.RecordMismatch(pre, []byte(`1`), []byte(`2`))
	if s := c.Snapshot(); s.Mismatches != 1 {
		t.Fatalf("mismatches = %d, want 1", s.Mismatches)
	}
	if lines := c.Mismatches(); len(lines) != 1 || !strings.Contains(lines[0], KeyHash(pre)) {
		t.Fatalf("mismatch log = %v", lines)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines; run under
// -race this proves Lookup/Store/Snapshot need no external locking.
func TestCacheConcurrent(t *testing.T) {
	c, _ := Open(t.TempDir())
	quiet(c)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				pre := NewKey("t").Int("cell", int64(i%10)).Preimage()
				payload := []byte(fmt.Sprintf(`{"v":%d}`, i%10))
				if got, ok := c.Lookup(pre); ok && !bytes.Equal(got, payload) {
					t.Errorf("goroutine %d: wrong payload %q", g, got)
					return
				}
				c.Store(pre, payload)
				c.Snapshot()
			}
		}(g)
	}
	wg.Wait()
}
