package sweepcache

import (
	"bytes"
	"testing"
)

func TestKeyDistinguishesDrivers(t *testing.T) {
	a := NewKey("run/result").Int("x", 1).Preimage()
	b := NewKey("run/p99").Int("x", 1).Preimage()
	if bytes.Equal(a, b) {
		t.Fatal("different driver tags produced the same preimage")
	}
}

func TestKeyDistinguishesLabelsAndValues(t *testing.T) {
	base := NewKey("t").Int("x", 1).Preimage()
	for name, other := range map[string][]byte{
		"different label":        NewKey("t").Int("y", 1).Preimage(),
		"different value":        NewKey("t").Int("x", 2).Preimage(),
		"different type":         NewKey("t").Float("x", 1).Preimage(),
		"string shadowing":       NewKey("t").Str("x", "\x01").Preimage(),
		"extra field":            NewKey("t").Int("x", 1).Int("", 0).Preimage(),
		"negative zero vs zero":  NewKey("t").Float("x", 0).Preimage(),
		"merged label and value": NewKey("t").Str("x1", "").Preimage(),
	} {
		if other == nil {
			t.Fatalf("%s: preimage failed", name)
		}
		if bytes.Equal(base, other) {
			t.Errorf("%s: collided with base preimage", name)
		}
	}
	negZero := NewKey("t").Float("x", negzero()).Preimage()
	posZero := NewKey("t").Float("x", 0).Preimage()
	if bytes.Equal(negZero, posZero) {
		t.Error("-0 and +0 encode identically; IEEE bit patterns must stay distinct")
	}
}

func negzero() float64 {
	z := 0.0
	return -z
}

func TestKeyMapOrderIndependent(t *testing.T) {
	// Build the same logical map many times; Go randomizes iteration order,
	// so identical preimages across attempts mean entries really are sorted.
	m := map[string]int{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5, "f": 6}
	want := NewKey("t").Any("m", m).Preimage()
	if want == nil {
		t.Fatal("map preimage failed")
	}
	for i := 0; i < 50; i++ {
		got := NewKey("t").Any("m", m).Preimage()
		if !bytes.Equal(want, got) {
			t.Fatalf("map encoding unstable on attempt %d", i)
		}
	}
	other := NewKey("t").Any("m", map[string]int{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5, "f": 7}).Preimage()
	if bytes.Equal(want, other) {
		t.Fatal("maps with different values collided")
	}
}

func TestKeyStructsEncodeTypeAndFields(t *testing.T) {
	type p1 struct{ A, B int }
	type p2 struct{ A, B int }
	a := NewKey("t").Any("v", p1{1, 2}).Preimage()
	b := NewKey("t").Any("v", p2{1, 2}).Preimage()
	if bytes.Equal(a, b) {
		t.Fatal("distinct struct types with identical fields collided")
	}
	c := NewKey("t").Any("v", p1{2, 1}).Preimage()
	if bytes.Equal(a, c) {
		t.Fatal("swapped field values collided")
	}
}

func TestKeyNilnessDistinct(t *testing.T) {
	var nilSlice []int
	a := NewKey("t").Any("v", nilSlice).Preimage()
	b := NewKey("t").Any("v", []int{}).Preimage()
	if bytes.Equal(a, b) {
		t.Fatal("nil slice and empty slice collided")
	}
	var np *int
	x := 0
	c := NewKey("t").Any("v", np).Preimage()
	d := NewKey("t").Any("v", &x).Preimage()
	if bytes.Equal(c, d) {
		t.Fatal("nil pointer and pointer-to-zero collided")
	}
}

func TestKeyLiveFuncPoisons(t *testing.T) {
	type cfg struct{ F func() }
	if pre := NewKey("t").Any("v", cfg{F: func() {}}).Preimage(); pre != nil {
		t.Fatal("live func encoded; it has no canonical form")
	}
	if pre := NewKey("t").Any("v", cfg{}).Preimage(); pre == nil {
		t.Fatal("nil func field poisoned the key; it should encode as nil")
	}
}

func TestKeyCyclePoisons(t *testing.T) {
	type node struct{ Next *node }
	n := &node{}
	n.Next = n
	k := NewKey("t").Any("v", n)
	if k.Preimage() != nil || k.Err() == nil {
		t.Fatal("cyclic structure did not poison the key")
	}
}

func TestKeyHashSchemaVersioned(t *testing.T) {
	pre := NewKey("t").Int("x", 1).Preimage()
	h := KeyHash(pre)
	if len(h) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(h))
	}
	if h == KeyHash(append([]byte(nil), pre[:len(pre)-1]...)) {
		t.Fatal("truncated preimage hashed identically")
	}
}

// FuzzCanonicalKey checks the field appenders never panic and that the
// framing is injective: two different field sequences must never produce the
// same preimage bytes. The fuzz input is interpreted as a little program
// over the typed appenders; two programs with different remaining inputs
// that normalize differently but encode equal bytes would be a framing hole.
func FuzzCanonicalKey(f *testing.F) {
	f.Add("drv", "label", "value", int64(7), 3.14, true)
	f.Add("", "", "", int64(0), 0.0, false)
	f.Add("run/result", "cfg", "x\x00y", int64(-1), -0.0, true)
	f.Add("t", "F", "\x01s", int64(255), 1e308, false)
	f.Fuzz(func(t *testing.T, driver, label, sval string, ival int64, fval float64, bval bool) {
		k := NewKey(driver).Str(label, sval).Int(label, ival).Float(label, fval).Bool(label, bval)
		pre := k.Preimage()
		if pre == nil {
			t.Fatal("typed appenders must never fail")
		}
		// Injectivity probes: perturb one field and require different bytes.
		if bytes.Equal(pre, NewKey(driver).Str(label, sval+"\x00").Int(label, ival).Float(label, fval).Bool(label, bval).Preimage()) {
			t.Fatal("string value perturbation collided")
		}
		if bytes.Equal(pre, NewKey(driver).Str(label, sval).Int(label, ival+1).Float(label, fval).Bool(label, bval).Preimage()) {
			t.Fatal("int value perturbation collided")
		}
		if bytes.Equal(pre, NewKey(driver).Str(label, sval).Int(label, ival).Float(label, fval).Bool(label, !bval).Preimage()) {
			t.Fatal("bool value perturbation collided")
		}
		if bytes.Equal(pre, NewKey(driver+"x").Str(label, sval).Int(label, ival).Float(label, fval).Bool(label, bval).Preimage()) {
			t.Fatal("driver perturbation collided")
		}
		// The label/value boundary must be unambiguous: moving a byte across
		// it has to change the encoding.
		if len(sval) > 0 {
			moved := NewKey(driver).Str(label+sval[:1], sval[1:]).Int(label, ival).Float(label, fval).Bool(label, bval).Preimage()
			if bytes.Equal(pre, moved) {
				t.Fatal("label/value boundary ambiguous")
			}
		}
		// Any must agree with itself and stay stable across calls.
		if label != sval {
			a := NewKey(driver).Any("v", map[string]int64{label: ival, sval: ival + 1}).Preimage()
			b := NewKey(driver).Any("v", map[string]int64{sval: ival + 1, label: ival}).Preimage()
			if !bytes.Equal(a, b) {
				t.Fatal("map literal order leaked into the preimage")
			}
		}
	})
}
