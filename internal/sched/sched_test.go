package sched

import (
	"math/rand"
	"testing"

	"umanycore/internal/rq"
)

func TestPolicyPresets(t *testing.T) {
	hw := HardwareSched()
	if !hw.HardwareRQ || hw.CSCycles != HardwareCSCycles {
		t.Fatalf("hardware policy = %+v", hw)
	}
	lx := LinuxSched()
	if lx.CSCycles != LinuxCSCycles || lx.HardwareRQ {
		t.Fatalf("linux policy = %+v", lx)
	}
	sj := ShinjukuSched()
	if !sj.Centralized || sj.CSCycles != SoftwareCSCycles {
		t.Fatalf("shinjuku policy = %+v", sj)
	}
	sh := ShenangoSched()
	if !sh.Centralized {
		t.Fatalf("shenango policy = %+v", sh)
	}
	zy := ZygOSSched()
	if !zy.WorkStealing || zy.StealCycles == 0 {
		t.Fatalf("zygos policy = %+v", zy)
	}
	// The paper's cost ordering: hardware << software schedulers << Linux.
	if !(hw.CSCycles < sj.CSCycles && sj.CSCycles < lx.CSCycles) {
		t.Fatal("context-switch cost ordering violated")
	}
}

func TestQueueFIFO(t *testing.T) {
	var q Queue
	if q.Pop() != nil {
		t.Fatal("empty pop")
	}
	a := &rq.Context{RequestID: 1}
	b := &rq.Context{RequestID: 2}
	q.Push(a)
	q.Push(b)
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.Pop() != a || q.Pop() != b || q.Pop() != nil {
		t.Fatal("FIFO order violated")
	}
	if q.Pushed != 2 || q.Popped != 2 {
		t.Fatalf("counters = %d/%d", q.Pushed, q.Popped)
	}
}

func TestQueueLockSerializes(t *testing.T) {
	var q Queue
	a := q.Lock.Acquire(0, 100)
	b := q.Lock.Acquire(0, 100)
	if b != a+100 {
		t.Fatal("lock does not serialize")
	}
}

func TestQueueSetBasics(t *testing.T) {
	qs := NewQueueSet(4)
	if qs.N() != 4 {
		t.Fatalf("N = %d", qs.N())
	}
	r := rand.New(rand.NewSource(1))
	seen := map[*Queue]bool{}
	for i := 0; i < 100; i++ {
		seen[qs.RandomQueue(r)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("random queue coverage = %d", len(seen))
	}
}

func TestQueueForStriping(t *testing.T) {
	qs := NewQueueSet(4)
	// 16 cores over 4 queues: cores 0-3 -> q0, 4-7 -> q1, ...
	if qs.QueueFor(0, 16) != qs.Queue(0) {
		t.Fatal("core 0 mapping")
	}
	if qs.QueueFor(5, 16) != qs.Queue(1) {
		t.Fatal("core 5 mapping")
	}
	if qs.QueueFor(15, 16) != qs.Queue(3) {
		t.Fatal("core 15 mapping")
	}
	// More queues than cores: clamp instead of out-of-range.
	qs2 := NewQueueSet(8)
	if qs2.QueueFor(3, 4) == nil {
		t.Fatal("clamped mapping nil")
	}
}

func TestSteal(t *testing.T) {
	qs := NewQueueSet(3)
	own := qs.Queue(0)
	// Nothing to steal.
	if c, _ := qs.Steal(own); c != nil {
		t.Fatal("stole from empty set")
	}
	qs.Queue(1).Push(&rq.Context{RequestID: 1})
	qs.Queue(2).Push(&rq.Context{RequestID: 2})
	qs.Queue(2).Push(&rq.Context{RequestID: 3})
	// Steals from the longest queue (2).
	c, victim := qs.Steal(own)
	if c == nil || victim != qs.Queue(2) {
		t.Fatal("did not steal from longest victim")
	}
	if c.RequestID != 2 {
		t.Fatalf("stole %d, want oldest (2)", c.RequestID)
	}
	if qs.TotalQueued() != 2 {
		t.Fatalf("TotalQueued = %d", qs.TotalQueued())
	}
	// Own queue is never a victim.
	own.Push(&rq.Context{RequestID: 9})
	qs.Queue(1).Pop()
	qs.Queue(2).Pop()
	if c, _ := qs.Steal(own); c != nil {
		t.Fatalf("stole own work: %+v", c)
	}
}

func TestNewQueueSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewQueueSet(0)
}
