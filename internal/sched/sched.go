// Package sched provides the request-scheduling building blocks the machine
// models compose: scheduling policies (hardware scheduling per paper §4.3-4.4
// vs the software schedulers of §3.3 — Linux, Shinjuku, Shenango, ZygOS) and
// a software run queue with lock contention, work stealing, and the
// re-enqueue-at-tail semantics that distinguish software queues from the
// hardware RQ (which preserves FCFS arrival priority across blocking).
package sched

import (
	"math/rand"

	"umanycore/internal/rq"
	"umanycore/internal/sim"
)

// Policy captures how a machine queues, dispatches, and context-switches
// requests. All cycle costs are in core cycles; the machine model converts
// them to time at its clock frequency.
type Policy struct {
	Name string
	// HardwareRQ selects the per-village hardware request queue (§4.3):
	// enqueue/dequeue without software synchronization.
	HardwareRQ bool
	// CSCycles is the cost charged at each context-switch event: once when
	// a request blocks (save + pick up next) and once when a previously
	// blocked request's state is restored on dequeue (§3.3, Fig 6).
	CSCycles int
	// DequeueCycles is the software cost of popping the run queue (lock
	// acquisition + scheduling logic); it also occupies the queue lock,
	// which is where single-queue configurations collapse (§3.2).
	DequeueCycles int
	// EnqueueCycles is the software cost of pushing the run queue.
	EnqueueCycles int
	// Centralized routes every dispatch decision through one dedicated
	// dispatcher core (Shinjuku/Shenango style); that core is a serial
	// resource and a scalability ceiling.
	Centralized bool
	// WorkStealing lets an idle core pop a victim queue when its own is
	// empty (ZygOS style), paying StealCycles.
	WorkStealing bool
	StealCycles  int
}

// Context-switch costs from §3.3: ≈5K cycles in Linux, ≈2K in
// state-of-the-art software schedulers, 128–256 with hardware support.
const (
	LinuxCSCycles    = 5000
	SoftwareCSCycles = 2000
	HardwareCSCycles = 128
)

// HardwareSched is μManycore's policy: hardware RQ, hardware context switch.
func HardwareSched() Policy {
	return Policy{
		Name:          "hw",
		HardwareRQ:    true,
		CSCycles:      HardwareCSCycles,
		DequeueCycles: 16, // the Dequeue instruction
		EnqueueCycles: 0,  // NIC enqueues in hardware off the critical path
	}
}

// LinuxSched models a stock kernel scheduler.
func LinuxSched() Policy {
	return Policy{
		Name:          "linux",
		CSCycles:      LinuxCSCycles,
		DequeueCycles: 1500,
		EnqueueCycles: 800,
	}
}

// ShinjukuSched models the centralized preemptive scheduler of Kaffes et al.
func ShinjukuSched() Policy {
	return Policy{
		Name:          "shinjuku",
		CSCycles:      SoftwareCSCycles,
		DequeueCycles: 400,
		EnqueueCycles: 200,
		Centralized:   true,
	}
}

// ShenangoSched models the dedicated-core IOKernel scheduler of Ousterhout
// et al.
func ShenangoSched() Policy {
	return Policy{
		Name:          "shenango",
		CSCycles:      SoftwareCSCycles,
		DequeueCycles: 300,
		EnqueueCycles: 150,
		Centralized:   true,
	}
}

// ZygOSSched models the work-stealing scheduler of Prekas et al.
func ZygOSSched() Policy {
	return Policy{
		Name:          "zygos",
		CSCycles:      SoftwareCSCycles,
		DequeueCycles: 350,
		EnqueueCycles: 200,
		WorkStealing:  true,
		StealCycles:   1200,
	}
}

// Queue is a software FIFO run queue guarded by a lock. Only ready work
// lives in the queue: blocked requests are parked with their core context
// and re-enqueued at the tail when their response arrives (losing arrival
// priority — software queues cannot cheaply preserve it, unlike the
// hardware RQ).
type Queue struct {
	fifo []*rq.Context
	// Lock serializes enqueue/dequeue critical sections.
	Lock sim.Resource
	// Pushed / Popped count operations.
	Pushed, Popped uint64
}

// Len returns the number of ready requests queued.
func (q *Queue) Len() int { return len(q.fifo) }

// Push appends a ready request.
func (q *Queue) Push(c *rq.Context) {
	q.fifo = append(q.fifo, c)
	q.Pushed++
}

// Pop removes the oldest ready request, or nil when empty.
func (q *Queue) Pop() *rq.Context {
	if len(q.fifo) == 0 {
		return nil
	}
	c := q.fifo[0]
	q.fifo = q.fifo[1:]
	q.Popped++
	return c
}

// QueueSet shards requests across n queues with optional work stealing —
// the experimental knob of Fig 3 (1024, 512, …, 1 queues on a 1024-core
// manycore, random assignment, steal-when-empty).
type QueueSet struct {
	queues []*Queue
}

// NewQueueSet builds n empty queues.
func NewQueueSet(n int) *QueueSet {
	if n <= 0 {
		panic("sched: queue count must be positive")
	}
	qs := &QueueSet{queues: make([]*Queue, n)}
	for i := range qs.queues {
		qs.queues[i] = &Queue{}
	}
	return qs
}

// N returns the number of queues.
func (qs *QueueSet) N() int { return len(qs.queues) }

// Queue returns queue i.
func (qs *QueueSet) Queue(i int) *Queue { return qs.queues[i] }

// QueueFor maps a core to its queue (cores striped evenly).
func (qs *QueueSet) QueueFor(core, totalCores int) *Queue {
	per := totalCores / len(qs.queues)
	if per == 0 {
		per = 1
	}
	i := core / per
	if i >= len(qs.queues) {
		i = len(qs.queues) - 1
	}
	return qs.queues[i]
}

// RandomQueue picks a uniformly random queue (the paper assigns requests to
// queues randomly).
func (qs *QueueSet) RandomQueue(r *rand.Rand) *Queue {
	return qs.queues[r.Intn(len(qs.queues))]
}

// Steal pops from the longest other queue, returning the context and the
// victim queue, or nil when every other queue is empty. Scanning for the
// longest queue approximates ZygOS's targeted stealing.
func (qs *QueueSet) Steal(own *Queue) (*rq.Context, *Queue) {
	var victim *Queue
	best := 0
	for _, q := range qs.queues {
		if q == own {
			continue
		}
		if q.Len() > best {
			best = q.Len()
			victim = q
		}
	}
	if victim == nil {
		return nil, nil
	}
	return victim.Pop(), victim
}

// TotalQueued sums ready requests across all queues.
func (qs *QueueSet) TotalQueued() int {
	n := 0
	for _, q := range qs.queues {
		n += q.Len()
	}
	return n
}
