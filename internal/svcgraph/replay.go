package svcgraph

import (
	"errors"
	"fmt"
	"sort"

	"umanycore/internal/sim"
	"umanycore/internal/workload"
)

// Arrival is one bound replay arrival: a typed root request at a fixed
// virtual time with a compute-demand multiplier.
type Arrival struct {
	// At is the arrival's virtual time.
	At sim.Time
	// Root is the request tree's root service ID.
	Root int
	// Demand scales every compute sample of the request's tree: the
	// record's CPU demand (duration × cpu_util) over the root's expected
	// tree CPU, so a request recorded at 2× the mean demand runs 2× the
	// sampled service times. Zero means unscaled.
	Demand float64
}

// Replay is a trace bound to an application — the open-loop arrival
// schedule a machine or fleet replays. It is plain data, canonically
// encodable in sweep-cache keys.
type Replay struct {
	Arrivals []Arrival
	// Records is the number of trace records behind the arrivals (equal to
	// len(Arrivals); kept for reporting).
	Records int
}

// Bind resolves a trace against an application: service names become
// catalog IDs, arrivals become virtual times, and each record's CPU demand
// becomes a demand multiplier against its root's expected tree CPU.
//
// targetRPS > 0 rescales the trace's arrival gaps so its mean rate over the
// replayed span equals targetRPS; 0 replays the recorded times verbatim. A
// legacy 3-column trace has no recorded arrivals, so it requires targetRPS
// > 0 and is replayed at uniform gaps, rooted at app.Root.
func (t *Trace) Bind(app *workload.App, targetRPS float64) (*Replay, error) {
	if len(t.Records) == 0 {
		return nil, errors.New("svcgraph: cannot bind an empty trace")
	}
	if t.Legacy && targetRPS <= 0 {
		return nil, errors.New("svcgraph: legacy 3-column trace has no arrival times; a target RPS is required")
	}
	byName := make(map[string]int, len(app.Catalog.Services))
	for _, s := range app.Catalog.Services {
		byName[s.Name] = s.ID
	}
	treeCPU := make(map[int]float64)
	cpuOf := func(root int) (float64, error) {
		if v, ok := treeCPU[root]; ok {
			return v, nil
		}
		st := (&workload.App{Name: app.Name, Root: root, Catalog: app.Catalog}).Stats()
		if st.TotalCPUMicros <= 0 {
			return 0, fmt.Errorf("svcgraph: service %q has zero expected tree CPU; cannot scale demand",
				app.Catalog.Service(root).Name)
		}
		treeCPU[root] = st.TotalCPUMicros
		return st.TotalCPUMicros, nil
	}
	scale := 1.0
	if !t.Legacy && targetRPS > 0 {
		mean := t.MeanRPS()
		if mean <= 0 {
			return nil, errors.New("svcgraph: cannot rescale a zero-span trace to a target RPS")
		}
		scale = mean / targetRPS
	}
	rep := &Replay{Records: len(t.Records), Arrivals: make([]Arrival, 0, len(t.Records))}
	for i, rec := range t.Records {
		root := app.Root
		if rec.Service != "" {
			id, ok := byName[rec.Service]
			if !ok {
				return nil, fmt.Errorf("svcgraph: trace record %d: unknown service %q in app %q", i+1, rec.Service, app.Name)
			}
			root = id
		}
		cpu, err := cpuOf(root)
		if err != nil {
			return nil, err
		}
		var at sim.Time
		if t.Legacy {
			at = sim.FromMicros(float64(i+1) * 1e6 / targetRPS)
		} else {
			at = sim.FromMicros(rec.ArrivalMicros * scale)
		}
		rep.Arrivals = append(rep.Arrivals, Arrival{
			At:     at,
			Root:   root,
			Demand: rec.DurationMicros * rec.CPUUtil / cpu,
		})
	}
	return rep, nil
}

// Mix returns the replay's request mixture — one entry per distinct root
// service, weighted by record count, ascending by ID. Feed it to
// machine.RunConfig.Mix so a replaying machine hosts instances of every
// root the trace submits (done automatically by RunConfig.Normalized).
func (r *Replay) Mix() []workload.MixEntry {
	counts := make(map[int]int)
	for _, a := range r.Arrivals {
		counts[a.Root]++
	}
	roots := make([]int, 0, len(counts))
	for id := range counts {
		roots = append(roots, id)
	}
	sort.Ints(roots)
	mix := make([]workload.MixEntry, len(roots))
	for i, id := range roots {
		mix[i] = workload.MixEntry{Root: id, Weight: float64(counts[id])}
	}
	return mix
}

// Replayed counts the arrivals falling inside a [0, window) run — the
// records a replay of that duration actually submits.
func (r *Replay) Replayed(window sim.Time) int {
	n := 0
	for _, a := range r.Arrivals {
		if a.At >= window {
			break
		}
		n++
	}
	return n
}

// Schedule walks the replay open-loop on an engine: submit fires at every
// arrival inside [0, window), in record order. Scheduling is chained — each
// arrival schedules the next — so the event order at tied timestamps is a
// deterministic function of the trace alone.
func (r *Replay) Schedule(eng *sim.Engine, window sim.Time, submit func(root int, demand float64)) {
	if len(r.Arrivals) == 0 || r.Arrivals[0].At >= window {
		return
	}
	idx := 0
	var next func()
	next = func() {
		a := r.Arrivals[idx]
		submit(a.Root, a.Demand)
		idx++
		if idx < len(r.Arrivals) && r.Arrivals[idx].At < window {
			eng.At(r.Arrivals[idx].At, next)
		}
	}
	eng.At(r.Arrivals[0].At, next)
}
