package svcgraph

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"

	"umanycore/internal/workload"
)

const validTrace = Header + "\n" +
	"100.000,a,200.0,0.5000,3\n" +
	"100.000,b.c-d_e,1.5,1.0000,0\n" +
	"250.125,a,3000.0,0.0100,16\n"

func TestParseAccepts(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(validTrace))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Legacy || len(tr.Records) != 3 {
		t.Fatalf("trace = %+v", tr)
	}
	r := tr.Records[1]
	if r.ArrivalMicros != 100 || r.Service != "b.c-d_e" || r.DurationMicros != 1.5 || r.CPUUtil != 1 || r.RPCs != 0 {
		t.Fatalf("record = %+v", r)
	}
	if got := tr.SpanMicros(); got != 250.125 {
		t.Fatalf("span = %v", got)
	}
	if got := tr.MeanRPS(); math.Abs(got-3*1e6/250.125) > 1e-9 {
		t.Fatalf("mean rps = %v", got)
	}
}

func TestParseAcceptsCRLF(t *testing.T) {
	in := strings.ReplaceAll(validTrace, "\n", "\r\n")
	tr, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 3 {
		t.Fatalf("records = %d", len(tr.Records))
	}
}

func TestParseAcceptsLegacy(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader("duration_us,cpu_util,rpcs\n1785.0,0.1051,27\n123.2,0.0936,7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Legacy || len(tr.Records) != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	if r := tr.Records[0]; r.ArrivalMicros != 0 || r.Service != "" || r.DurationMicros != 1785 {
		t.Fatalf("legacy record = %+v", r)
	}
}

// TestParseRejects is the strictness table: every malformed input is refused
// with an error naming the offending line.
func TestParseRejects(t *testing.T) {
	row := "100.000,a,200.0,0.5000,3\n"
	for _, tc := range []struct{ name, in, want string }{
		{"empty input", "", "empty trace"},
		{"bad header", "time,stuff\n" + row, `line 1: bad header`},
		{"header only", Header + "\n", "no records"},
		{"legacy header only", legacyHeader + "\n", "no records"},
		{"empty line", Header + "\n" + row + "\n", "line 3: empty line"},
		{"too few fields", Header + "\n1,a,2\n", "line 2: 3 fields, want 5"},
		{"too many fields", Header + "\n1,a,2,0.5,3,9\n", "line 2: 6 fields, want 5"},
		{"legacy field count", legacyHeader + "\n1,a,2,0.5,3\n", "line 2: 5 fields, want 3"},
		{"bad arrival", Header + "\nxx,a,2,0.5,3\n", `bad arrival_us "xx"`},
		{"NaN arrival", Header + "\nNaN,a,2,0.5,3\n", `arrival_us "NaN" is not finite`},
		{"Inf duration", Header + "\n1,a,+Inf,0.5,3\n", `duration_us "+Inf" is not finite`},
		{"negative arrival", Header + "\n-5,a,2,0.5,3\n", `negative arrival_us "-5"`},
		{"out of order", Header + "\n100,a,2,0.5,3\n99.9,a,2,0.5,3\n",
			`line 3: arrival_us "99.9" out of order (previous record arrived at 100)`},
		{"zero duration", Header + "\n1,a,0,0.5,3\n", `duration_us "0" must be positive`},
		{"negative duration", Header + "\n1,a,-2,0.5,3\n", `duration_us "-2" must be positive`},
		{"zero util", Header + "\n1,a,2,0,3\n", `cpu_util "0" outside (0, 1]`},
		{"util above one", Header + "\n1,a,2,1.1,3\n", `cpu_util "1.1" outside (0, 1]`},
		{"NaN util", Header + "\n1,a,2,NaN,3\n", `cpu_util "NaN" is not finite`},
		{"bad rpcs", Header + "\n1,a,2,0.5,x\n", `bad rpcs "x"`},
		{"float rpcs", Header + "\n1,a,2,0.5,3.5\n", `bad rpcs "3.5"`},
		{"negative rpcs", Header + "\n1,a,2,0.5,-3\n", `negative rpcs "-3"`},
		{"empty service", Header + "\n1,,2,0.5,3\n", "empty service name"},
		{"bad service byte", Header + "\n1,a b,2,0.5,3\n", `service name "a b" has invalid byte`},
		{"long service", Header + "\n1," + strings.Repeat("s", 65) + ",2,0.5,3\n",
			"service name longer than 64 bytes"},
		{"huge line", Header + "\n" + strings.Repeat("9", maxLineBytes+1) + ",a,2,0.5,3\n",
			"line exceeds 65536 bytes"},
	} {
		_, err := ParseTrace(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestWriteParseFixedPoint pins the wire format as a fixed point: a written
// trace parses back, and re-writing the parsed records reproduces the bytes.
func TestWriteParseFixedPoint(t *testing.T) {
	recs := Synthesize(3, 200)
	var first bytes.Buffer
	if err := WriteTrace(&first, recs); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseTrace(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("written trace does not parse: %v", err)
	}
	if len(tr.Records) != len(recs) {
		t.Fatalf("parsed %d records, wrote %d", len(tr.Records), len(recs))
	}
	var second bytes.Buffer
	if err := WriteTrace(&second, tr.Records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("write -> parse -> write is not byte-stable")
	}
}

func TestWriteRejectsNamelessRecord(t *testing.T) {
	err := WriteTrace(&bytes.Buffer{}, []Record{{DurationMicros: 1, CPUUtil: 0.5}})
	if err == nil || !strings.Contains(err.Error(), "record 1") {
		t.Fatalf("error = %v", err)
	}
}

// TestGoldenFixture pins the synthesized wire format byte for byte against
// the checked-in fixture (the same bytes umtrace -requests 5 -csv emits).
func TestGoldenFixture(t *testing.T) {
	want, err := os.ReadFile("testdata/golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := WriteTrace(&got, Synthesize(1, 5)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("synthesized trace drifted from testdata/golden.csv:\ngot:\n%swant:\n%s", got.Bytes(), want)
	}
}

// TestSynthesizeMarginals is the round-trip property on the generator side:
// the duration/cpu_util/rpcs columns are exactly the historical
// workload.NewTraceGen stream, arrivals are non-decreasing from a positive
// start, and every service names a SocialNetwork mix root.
func TestSynthesizeMarginals(t *testing.T) {
	const n = 500
	recs := Synthesize(7, n)
	base := workload.NewTraceGen(7).Requests(n)
	if len(recs) != n {
		t.Fatalf("records = %d", len(recs))
	}
	roots := map[string]bool{}
	catalog := workload.SocialNetworkCatalog()
	for _, e := range workload.SocialNetworkMix() {
		roots[catalog.Service(e.Root).Name] = true
	}
	prev := 0.0
	for i, r := range recs {
		if r.DurationMicros != base[i].DurationMicros || r.CPUUtil != base[i].CPUUtil || r.RPCs != base[i].RPCs {
			t.Fatalf("record %d marginals drifted: %+v vs %+v", i, r, base[i])
		}
		if r.ArrivalMicros <= prev {
			t.Fatalf("record %d arrival %g not after %g", i, r.ArrivalMicros, prev)
		}
		prev = r.ArrivalMicros
		if !roots[r.Service] {
			t.Fatalf("record %d service %q is not a mix root", i, r.Service)
		}
	}
}
