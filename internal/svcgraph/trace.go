package svcgraph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"umanycore/internal/sim"
	"umanycore/internal/workload"
)

// The external trace wire format is CSV with a fixed header and one record
// per line:
//
//	arrival_us,service,duration_us,cpu_util,rpcs
//	2034.519,HomeT,1785.0,0.1051,27
//
// arrival_us is the absolute arrival time in microseconds from trace start
// (non-decreasing), service names the root service of the request tree,
// duration_us and cpu_util are the record's measured wall time and mean CPU
// utilization (their product is the request's total CPU demand in core-
// microseconds), and rpcs is its RPC fan-out count (informational). The
// legacy 3-column umtrace format duration_us,cpu_util,rpcs is also accepted;
// it carries no arrivals or services, so replaying it requires an explicit
// target RPS and roots every request at the app's root service.

// Header is the wire-format header line (without newline).
const Header = "arrival_us,service,duration_us,cpu_util,rpcs"

// legacyHeader is the original 3-column umtrace -csv header.
const legacyHeader = "duration_us,cpu_util,rpcs"

const (
	// maxLineBytes bounds a single trace line; longer lines are rejected
	// with a line-numbered error instead of buffering unbounded input.
	maxLineBytes = 64 * 1024
	// maxServiceBytes bounds the service-name field.
	maxServiceBytes = 64
)

// Record is one parsed trace record.
type Record struct {
	// ArrivalMicros is the absolute arrival time in microseconds from trace
	// start. Zero for every record of a legacy 3-column trace.
	ArrivalMicros float64
	// Service is the root service's name, empty in a legacy trace (replay
	// roots those records at the bound app's root).
	Service string
	// DurationMicros is the recorded request duration.
	DurationMicros float64
	// CPUUtil is the recorded mean CPU utilization over that duration, in
	// (0, 1]. DurationMicros × CPUUtil is the request's CPU demand.
	CPUUtil float64
	// RPCs is the recorded RPC fan-out (informational).
	RPCs int
}

// Trace is a parsed external request trace.
type Trace struct {
	Records []Record
	// Legacy marks a 3-column trace (no arrival or service columns).
	Legacy bool
}

// SpanMicros is the last record's arrival time — the trace's time span,
// counting from time zero.
func (t *Trace) SpanMicros() float64 {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].ArrivalMicros
}

// MeanRPS is the trace's mean arrival rate over its span, 0 when the span
// is empty.
func (t *Trace) MeanRPS() float64 {
	span := t.SpanMicros()
	if span <= 0 {
		return 0
	}
	return float64(len(t.Records)) * 1e6 / span
}

// ParseTrace reads a trace in the wire format above. It is strict: any
// malformed header, field count, unparsable or non-finite number, negative
// or backwards arrival, non-positive duration, out-of-range utilization,
// negative RPC count, bad service name, over-long line, or empty trace is
// rejected with an error naming the offending line.
func ParseTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("svcgraph: trace line 1: %w", err)
		}
		return nil, errors.New("svcgraph: empty trace (missing header)")
	}
	line := 1
	t := &Trace{}
	switch strings.TrimRight(sc.Text(), "\r") {
	case Header:
	case legacyHeader:
		t.Legacy = true
	default:
		return nil, fmt.Errorf("svcgraph: trace line 1: bad header %q (want %q, or legacy %q)",
			sc.Text(), Header, legacyHeader)
	}
	prev := 0.0
	for sc.Scan() {
		line++
		rec, err := parseRecord(strings.TrimRight(sc.Text(), "\r"), t.Legacy, prev)
		if err != nil {
			return nil, fmt.Errorf("svcgraph: trace line %d: %w", line, err)
		}
		prev = rec.ArrivalMicros
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("svcgraph: trace line %d: line exceeds %d bytes", line+1, maxLineBytes)
		}
		return nil, fmt.Errorf("svcgraph: trace line %d: %w", line+1, err)
	}
	if len(t.Records) == 0 {
		return nil, errors.New("svcgraph: trace has a header but no records")
	}
	return t, nil
}

func parseRecord(text string, legacy bool, prevArrival float64) (Record, error) {
	var rec Record
	if text == "" {
		return rec, errors.New("empty line")
	}
	fields := strings.Split(text, ",")
	want := 5
	if legacy {
		want = 3
	}
	if len(fields) != want {
		return rec, fmt.Errorf("%d fields, want %d", len(fields), want)
	}
	i := 0
	if !legacy {
		a, err := parseFloatField(fields[0], "arrival_us")
		if err != nil {
			return rec, err
		}
		if a < 0 {
			return rec, fmt.Errorf("negative arrival_us %q", fields[0])
		}
		if a < prevArrival {
			return rec, fmt.Errorf("arrival_us %q out of order (previous record arrived at %g)", fields[0], prevArrival)
		}
		rec.ArrivalMicros = a
		if err := checkServiceName(fields[1]); err != nil {
			return rec, err
		}
		rec.Service = fields[1]
		i = 2
	}
	d, err := parseFloatField(fields[i], "duration_us")
	if err != nil {
		return rec, err
	}
	if d <= 0 {
		return rec, fmt.Errorf("duration_us %q must be positive", fields[i])
	}
	rec.DurationMicros = d
	u, err := parseFloatField(fields[i+1], "cpu_util")
	if err != nil {
		return rec, err
	}
	if u <= 0 || u > 1 {
		return rec, fmt.Errorf("cpu_util %q outside (0, 1]", fields[i+1])
	}
	rec.CPUUtil = u
	n, err := strconv.Atoi(fields[i+2])
	if err != nil {
		return rec, fmt.Errorf("bad rpcs %q", fields[i+2])
	}
	if n < 0 {
		return rec, fmt.Errorf("negative rpcs %q", fields[i+2])
	}
	rec.RPCs = n
	return rec, nil
}

func parseFloatField(s, name string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("%s %q is not finite", name, s)
	}
	return v, nil
}

func checkServiceName(s string) error {
	if s == "" {
		return errors.New("empty service name")
	}
	if len(s) > maxServiceBytes {
		return fmt.Errorf("service name longer than %d bytes", maxServiceBytes)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("service name %q has invalid byte %q", s, c)
		}
	}
	return nil
}

// WriteTrace emits records in the 5-column wire format: arrivals at
// nanosecond (%.3f µs) precision, durations/utilizations at the historical
// umtrace precision (%.1f / %.4f). The formatting is a fixed point of
// ParseTrace: write → parse → write is byte-stable. Records must carry
// service names; emitting a nameless record would produce an unparseable
// file.
func WriteTrace(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, Header)
	for i, r := range recs {
		if err := checkServiceName(r.Service); err != nil {
			return fmt.Errorf("svcgraph: trace record %d: %w", i+1, err)
		}
		fmt.Fprintf(bw, "%.3f,%s,%.1f,%.4f,%d\n", r.ArrivalMicros, r.Service, r.DurationMicros, r.CPUUtil, r.RPCs)
	}
	return bw.Flush()
}

// Derived-seed salts for the synthesized columns, so the marginal stream
// NewTraceGen(seed) draws is untouched by the extra columns.
const (
	synthLoadSalt    = 7919
	synthArrivalSalt = 104729
)

// Synthesize draws n trace records whose duration/cpu_util/rpcs marginals
// are exactly the stream workload.NewTraceGen(seed).Requests(n) draws, and
// adds the two columns the single-machine generator lacks: a Poisson
// arrival process modulated by the per-second server-load marginal (the
// production trace's diurnal spread), and a root service drawn from the
// SocialNetwork request mix. The added columns use their own derived-seed
// streams, so `umtrace -csv` keeps its historical marginals byte-for-byte.
func Synthesize(seed int64, n int) []Record {
	base := workload.NewTraceGen(seed).Requests(n)
	loadGen := workload.NewTraceGen(sim.DeriveSeed(seed, synthLoadSalt))
	r := rand.New(rand.NewSource(sim.DeriveSeed(seed, synthArrivalSalt)))
	catalog := workload.SocialNetworkCatalog()
	mix := workload.SocialNetworkMix()
	var totalW float64
	for _, e := range mix {
		totalW += e.Weight
	}
	var loads []int
	recs := make([]Record, n)
	tUs := 0.0
	for i, b := range base {
		sec := int(tUs / 1e6)
		for sec >= len(loads) {
			loads = append(loads, loadGen.ServerLoad(64)...)
		}
		rate := float64(loads[sec])
		if rate < 1 {
			rate = 1
		}
		tUs += 1e6 / rate * r.ExpFloat64()
		x := r.Float64() * totalW
		root := mix[len(mix)-1].Root
		for _, e := range mix {
			if x < e.Weight {
				root = e.Root
				break
			}
			x -= e.Weight
		}
		recs[i] = Record{
			ArrivalMicros:  tUs,
			Service:        catalog.Service(root).Name,
			DurationMicros: b.DurationMicros,
			CPUUtil:        b.CPUUtil,
			RPCs:           b.RPCs,
		}
	}
	return recs
}
