package svcgraph

import (
	"reflect"
	"strings"
	"testing"

	"umanycore/internal/dist"
	"umanycore/internal/workload"
)

// twoSvcCatalog builds a minimal valid catalog: service 0 calls service 1.
func twoSvcCatalog() *workload.Catalog {
	compute := workload.Op{Kind: workload.OpCompute, Time: dist.Exponential{MeanV: 10}}
	return &workload.Catalog{Services: []*workload.Service{
		{ID: 0, Name: "root", Ops: []workload.Op{compute, {Kind: workload.OpCall, Callees: []int{1}}}},
		{ID: 1, Name: "leaf", Ops: []workload.Op{compute}},
	}}
}

func TestLayeredShape(t *testing.T) {
	app := Layered(3, 2, 80)
	if app.Name != "Graph-L3F2" || app.Root != 0 {
		t.Fatalf("app = %q root %d", app.Name, app.Root)
	}
	if n := len(app.Catalog.Services); n != 7 {
		t.Fatalf("levels=3 fanout=2 built %d services, want 7", n)
	}
	if err := app.Catalog.Validate(); err != nil {
		t.Fatalf("layered catalog invalid: %v", err)
	}
	// Root fans out to services 1,2 in one parallel call stage.
	root := app.Catalog.Service(0)
	if root.Ops[1].Kind != workload.OpCall || !reflect.DeepEqual(root.Ops[1].Callees, []int{1, 2}) {
		t.Fatalf("root call stage = %+v", root.Ops[1])
	}
	// Leaves have a storage stage and no calls.
	leaf := app.Catalog.Service(6)
	if leaf.Name != "L2N3" {
		t.Fatalf("leaf name = %q", leaf.Name)
	}
	for _, op := range leaf.Ops {
		if op.Kind == workload.OpCall {
			t.Fatalf("leaf has a call stage: %+v", leaf.Ops)
		}
	}
	if leaf.Ops[1].Kind != workload.OpStorage {
		t.Fatalf("leaf ops = %+v", leaf.Ops)
	}
}

func TestLayeredPanics(t *testing.T) {
	for _, tc := range []struct{ levels, fanout int }{{0, 2}, {3, 0}, {7, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Layered(%d, %d) did not panic", tc.levels, tc.fanout)
				}
			}()
			Layered(tc.levels, tc.fanout, 80)
		}()
	}
}

func TestSpecValidate(t *testing.T) {
	cat := twoSvcCatalog()
	for _, tc := range []struct {
		name    string
		spec    *Spec
		servers int
		want    string // "" = valid
	}{
		{"colocated", Colocated(2, 3), 3, ""},
		{"spread", Spread(2, 2), 2, ""},
		{"single server", &Spec{Placement: [][]int{{0}, {0}}}, 1, ""},
		{"no servers", Colocated(2, 1), 0, "needs servers > 0"},
		{"wrong service count", &Spec{Placement: [][]int{{0}}}, 1, "covers 1 services, catalog has 2"},
		{"unplaced service", &Spec{Placement: [][]int{{0}, {}}}, 1, `"leaf" (id 1) is placed on no server`},
		{"host out of range", &Spec{Placement: [][]int{{0}, {2}}}, 2, "placed on server 2, fleet has 2"},
		{"negative host", &Spec{Placement: [][]int{{-1}, {0}}}, 1, "placed on server -1"},
		{"unsorted hosts", &Spec{Placement: [][]int{{1, 0}, {0}}}, 2, "strictly ascending"},
		{"duplicate hosts", &Spec{Placement: [][]int{{0, 0}, {0}}}, 1, "strictly ascending"},
		{"idle server", &Spec{Placement: [][]int{{0}, {0}}}, 2, "server 1 hosts no service"},
	} {
		err := tc.spec.Validate(cat, tc.servers)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateSurfacesCatalogErrors checks that graph validation reports the
// same call-cycle, dangling-callee, and empty-stage errors the single-machine
// path would — a bad catalog must not reach the fleet runner.
func TestValidateSurfacesCatalogErrors(t *testing.T) {
	compute := workload.Op{Kind: workload.OpCompute, Time: dist.Exponential{MeanV: 10}}
	for _, tc := range []struct {
		name string
		cat  *workload.Catalog
		want string
	}{
		{"call cycle", &workload.Catalog{Services: []*workload.Service{
			{ID: 0, Name: "a", Ops: []workload.Op{compute, {Kind: workload.OpCall, Callees: []int{1}}}},
			{ID: 1, Name: "b", Ops: []workload.Op{compute, {Kind: workload.OpCall, Callees: []int{0}}}},
		}}, "call cycle through"},
		{"dangling callee", &workload.Catalog{Services: []*workload.Service{
			{ID: 0, Name: "a", Ops: []workload.Op{compute, {Kind: workload.OpCall, Callees: []int{7}}}},
			{ID: 1, Name: "b", Ops: []workload.Op{compute}},
		}}, "calls unknown service 7"},
		{"no compute stage", &workload.Catalog{Services: []*workload.Service{
			{ID: 0, Name: "a", Ops: []workload.Op{compute, {Kind: workload.OpCall, Callees: []int{1}}}},
			{ID: 1, Name: "b", Ops: nil},
		}}, "has no compute op"},
		{"empty call stage", &workload.Catalog{Services: []*workload.Service{
			{ID: 0, Name: "a", Ops: []workload.Op{compute, {Kind: workload.OpCall}}},
			{ID: 1, Name: "b", Ops: []workload.Op{compute}},
		}}, "call op without callees"},
	} {
		err := Colocated(2, 2).Validate(tc.cat, 2)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestHostedOnAndHosts(t *testing.T) {
	sp := &Spec{Placement: [][]int{{0, 1}, {1}, {0}}}
	if got := sp.HostedOn(0); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("HostedOn(0) = %v", got)
	}
	if got := sp.HostedOn(1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("HostedOn(1) = %v", got)
	}
	if got := sp.Hosts(1); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Hosts(1) = %v", got)
	}
}

// TestRandomPlacement pins the constructor's contract: deterministic in the
// seed, `replicas` hosts per service (clamped), every server covered, and
// the result always validates against a catalog of that size.
func TestRandomPlacement(t *testing.T) {
	a := Random(5, 4, 2, 42)
	b := Random(5, 4, 2, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different placements:\n%v\n%v", a.Placement, b.Placement)
	}
	hosted := make([]bool, 4)
	for svc, hosts := range a.Placement {
		if len(hosts) < 2 {
			t.Fatalf("service %d has %d replicas, want >= 2", svc, len(hosts))
		}
		for _, h := range hosts {
			hosted[h] = true
		}
	}
	for s, ok := range hosted {
		if !ok {
			t.Fatalf("server %d left idle", s)
		}
	}
	if c := Random(1, 3, 10, 7); len(c.Placement[0]) != 3 {
		t.Fatalf("replicas not clamped to servers: %v", c.Placement)
	}
}
