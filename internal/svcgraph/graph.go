// Package svcgraph lifts service-graph workloads from a single-machine
// concept to a fleet-wide one. A workload.Catalog already describes a
// microservice DAG — named services whose OpCall stages fan out to callees
// in parallel between serial compute/storage stages — but the fleet path
// treated every server as a replica of the whole application. This package
// adds the two missing pieces the paper's subjects (DeathStarBench
// SocialNetwork, Alibaba production traces) require:
//
//   - A placement Spec assigning each service of the catalog to a subset of
//     the fleet's servers, so a cross-edge RPC between services hosted on
//     different servers becomes a real cross-server call through the PDES
//     coupling fabric instead of a RemoteCallFrac lottery, and the
//     dispatcher's balancer routes each root over the servers actually
//     hosting its root service.
//
//   - An external trace format (see ParseTrace) with open-loop replay:
//     recorded arrivals, per-record root services, and per-record service
//     demands drive any simulated architecture, replayed verbatim or
//     rescaled to a target RPS. `umtrace -csv` emits the same wire format,
//     closing the loop umtrace -csv > t.csv && umprof -trace t.csv.
//
// Everything here is plain data: Specs and Replays are canonically
// encodable by sweepcache.Key.Any, so graph and trace cells cache content-
// addressed like every other sweep cell.
package svcgraph

import (
	"fmt"
	"math/rand"
	"sort"

	"umanycore/internal/dist"
	"umanycore/internal/workload"
)

// Spec places an application's service graph across a fleet. The graph
// itself lives in the workload.Catalog (OpCall edges); the Spec only decides
// which servers host which services.
type Spec struct {
	// Placement[svc] lists the servers hosting service svc, strictly
	// ascending. Every service of the catalog must be hosted somewhere, and
	// every server must host at least one service (an unhosted server would
	// idle; a machine with no local services cannot even allocate domains).
	Placement [][]int
}

// Validate checks the placement against a catalog and fleet size. It also
// validates the catalog itself, so a graph-mode fleet surfaces call cycles,
// dangling callee IDs, and services with no compute stage with the same
// errors the single-machine path reports.
func (sp *Spec) Validate(catalog *workload.Catalog, servers int) error {
	if err := catalog.Validate(); err != nil {
		return err
	}
	if servers <= 0 {
		return fmt.Errorf("svcgraph: placement needs servers > 0, got %d", servers)
	}
	if len(sp.Placement) != len(catalog.Services) {
		return fmt.Errorf("svcgraph: placement covers %d services, catalog has %d",
			len(sp.Placement), len(catalog.Services))
	}
	hosted := make([]bool, servers)
	for svc, hosts := range sp.Placement {
		name := catalog.Services[svc].Name
		if len(hosts) == 0 {
			return fmt.Errorf("svcgraph: service %q (id %d) is placed on no server", name, svc)
		}
		prev := -1
		for _, h := range hosts {
			if h < 0 || h >= servers {
				return fmt.Errorf("svcgraph: service %q placed on server %d, fleet has %d servers", name, h, servers)
			}
			if h <= prev {
				return fmt.Errorf("svcgraph: service %q host list must be strictly ascending, got %v", name, hosts)
			}
			prev = h
			hosted[h] = true
		}
	}
	for s, ok := range hosted {
		if !ok {
			return fmt.Errorf("svcgraph: server %d hosts no service", s)
		}
	}
	return nil
}

// HostedOn returns the services placed on one server, ascending.
func (sp *Spec) HostedOn(server int) []int {
	var svcs []int
	for svc, hosts := range sp.Placement {
		for _, h := range hosts {
			if h == server {
				svcs = append(svcs, svc)
				break
			}
		}
	}
	return svcs
}

// Hosts returns the servers hosting one service (the Placement row).
func (sp *Spec) Hosts(svc int) []int { return sp.Placement[svc] }

// Colocated places every service on every server — each server runs the
// full application, the graph-mode equivalent of the replicated fleet.
func Colocated(services, servers int) *Spec {
	p := make([][]int, services)
	for s := range p {
		hosts := make([]int, servers)
		for h := range hosts {
			hosts[h] = h
		}
		p[s] = hosts
	}
	return &Spec{Placement: p}
}

// Spread stripes services across servers round-robin, one host per service —
// maximum disaggregation, every cross-service edge (almost) always a
// cross-server RPC. Requires services >= servers so no server idles.
func Spread(services, servers int) *Spec {
	p := make([][]int, services)
	for s := range p {
		p[s] = []int{s % servers}
	}
	return &Spec{Placement: p}
}

// Random places each service on a uniform sample of `replicas` distinct
// servers (clamped to [1, servers]), deterministically from seed, then
// assigns any still-empty server one extra service so the placement
// validates. Same seed, same placement — safe inside cached sweep cells.
func Random(services, servers, replicas int, seed int64) *Spec {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > servers {
		replicas = servers
	}
	r := rand.New(rand.NewSource(seed))
	p := make([][]int, services)
	perm := make([]int, servers)
	hosted := make([]bool, servers)
	for s := range p {
		for i := range perm {
			perm[i] = i
		}
		// Partial Fisher-Yates: the first `replicas` slots end up a uniform
		// sample without replacement.
		for i := 0; i < replicas; i++ {
			j := i + r.Intn(servers-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		hosts := append([]int(nil), perm[:replicas]...)
		sort.Ints(hosts)
		p[s] = hosts
		for _, h := range hosts {
			hosted[h] = true
		}
	}
	for h := range hosted {
		if hosted[h] {
			continue
		}
		svc := r.Intn(services)
		p[svc] = append(p[svc], h)
		sort.Ints(p[svc])
		hosted[h] = true
	}
	return &Spec{Placement: p}
}

// Layered builds a layered service DAG for placement studies: `levels` tiers
// of distinct services rooted at ID 0, each non-leaf running compute → one
// parallel OpCall fan-out to its `fanout` children → compute, and each leaf
// running compute → storage → compute. meanComputeMicros sets the first
// compute stage's mean; trailing stages run at half that. Panics on
// non-positive shape parameters or graphs above 4096 services.
func Layered(levels, fanout int, meanComputeMicros float64) *workload.App {
	if levels < 1 || fanout < 1 || meanComputeMicros <= 0 {
		panic(fmt.Sprintf("svcgraph: bad layered shape levels=%d fanout=%d mean=%g", levels, fanout, meanComputeMicros))
	}
	// starts[l] is the first service ID of tier l; tier l has fanout^l nodes.
	starts := make([]int, levels+1)
	width := 1
	for l := 0; l < levels; l++ {
		starts[l+1] = starts[l] + width
		width *= fanout
		if starts[l+1] > 4096 {
			panic(fmt.Sprintf("svcgraph: layered graph levels=%d fanout=%d exceeds 4096 services", levels, fanout))
		}
	}
	total := starts[levels]
	svcs := make([]*workload.Service, total)
	for l := 0; l < levels; l++ {
		for i := starts[l]; i < starts[l+1]; i++ {
			s := &workload.Service{
				ID:             i,
				Name:           fmt.Sprintf("L%dN%d", l, i-starts[l]),
				SnapshotBytes:  8 << 20,
				FootprintBytes: 256 << 10,
			}
			if l == levels-1 {
				s.Ops = []workload.Op{
					{Kind: workload.OpCompute, Time: dist.Lognormal{MeanV: meanComputeMicros, Sigma: 0.4}},
					{Kind: workload.OpStorage, Time: dist.Exponential{MeanV: meanComputeMicros / 2}},
					{Kind: workload.OpCompute, Time: dist.Lognormal{MeanV: meanComputeMicros / 2, Sigma: 0.4}},
				}
			} else {
				first := starts[l+1] + (i-starts[l])*fanout
				callees := make([]int, fanout)
				for k := range callees {
					callees[k] = first + k
				}
				s.Ops = []workload.Op{
					{Kind: workload.OpCompute, Time: dist.Lognormal{MeanV: meanComputeMicros, Sigma: 0.4}},
					{Kind: workload.OpCall, Callees: callees},
					{Kind: workload.OpCompute, Time: dist.Lognormal{MeanV: meanComputeMicros / 2, Sigma: 0.4}},
				}
			}
			svcs[i] = s
		}
	}
	return &workload.App{
		Name:    fmt.Sprintf("Graph-L%dF%d", levels, fanout),
		Root:    0,
		Catalog: &workload.Catalog{Services: svcs},
	}
}
