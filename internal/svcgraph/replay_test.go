package svcgraph

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"umanycore/internal/sim"
	"umanycore/internal/workload"
)

func parseValid(t *testing.T, in string) *Trace {
	t.Helper()
	tr, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestBindDemand pins the demand math: each arrival's Demand is the record's
// CPU demand (duration × cpu_util) over its root's expected tree CPU.
func TestBindDemand(t *testing.T) {
	app := Layered(2, 2, 100)
	cat := app.Catalog
	in := Header + "\n" +
		"0.000," + cat.Service(0).Name + ",1000.0,0.5000,3\n" +
		"500.000," + cat.Service(1).Name + ",200.0,0.2500,1\n"
	rep, err := parseValid(t, in).Bind(app, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 2 || len(rep.Arrivals) != 2 {
		t.Fatalf("replay = %+v", rep)
	}
	rootCPU := app.Stats().TotalCPUMicros
	leafCPU := (&workload.App{Name: app.Name, Root: 1, Catalog: cat}).Stats().TotalCPUMicros
	if rootCPU <= 0 || leafCPU <= 0 || rootCPU == leafCPU {
		t.Fatalf("tree cpu: root %g leaf %g", rootCPU, leafCPU)
	}
	a0, a1 := rep.Arrivals[0], rep.Arrivals[1]
	if a0.Root != 0 || a1.Root != 1 {
		t.Fatalf("roots = %d, %d", a0.Root, a1.Root)
	}
	if want := 1000 * 0.5 / rootCPU; math.Abs(a0.Demand-want) > 1e-12 {
		t.Fatalf("arrival 0 demand = %g, want %g", a0.Demand, want)
	}
	if want := 200 * 0.25 / leafCPU; math.Abs(a1.Demand-want) > 1e-12 {
		t.Fatalf("arrival 1 demand = %g, want %g", a1.Demand, want)
	}
	if a0.At != 0 || a1.At != sim.FromMicros(500) {
		t.Fatalf("verbatim arrivals = %v, %v", a0.At, a1.At)
	}
}

func TestBindRescalesToTargetRPS(t *testing.T) {
	app := Layered(1, 1, 100)
	name := app.Catalog.Service(0).Name
	// Two records spanning 1000us: mean rate 2000 RPS.
	in := Header + "\n500.000," + name + ",100.0,0.5000,1\n1000.000," + name + ",100.0,0.5000,1\n"
	rep, err := parseValid(t, in).Bind(app, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// Rescaling 2000 -> 4000 RPS halves every arrival time.
	if rep.Arrivals[0].At != sim.FromMicros(250) || rep.Arrivals[1].At != sim.FromMicros(500) {
		t.Fatalf("rescaled arrivals = %v, %v", rep.Arrivals[0].At, rep.Arrivals[1].At)
	}
}

func TestBindLegacyUniformArrivals(t *testing.T) {
	app := Layered(2, 2, 100)
	tr := parseValid(t, legacyHeader+"\n100.0,0.5,1\n200.0,0.25,2\n")
	if _, err := tr.Bind(app, 0); err == nil || !strings.Contains(err.Error(), "target RPS is required") {
		t.Fatalf("legacy bind without rps: %v", err)
	}
	rep, err := tr.Bind(app, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform gaps at 1000 RPS, every record rooted at app.Root.
	if rep.Arrivals[0].At != sim.FromMicros(1000) || rep.Arrivals[1].At != sim.FromMicros(2000) {
		t.Fatalf("legacy arrivals = %v, %v", rep.Arrivals[0].At, rep.Arrivals[1].At)
	}
	for i, a := range rep.Arrivals {
		if a.Root != app.Root {
			t.Fatalf("legacy arrival %d root = %d", i, a.Root)
		}
	}
}

func TestBindUnknownService(t *testing.T) {
	app := Layered(1, 1, 100)
	tr := parseValid(t, Header+"\n1.000,nosuch,100.0,0.5000,1\n")
	_, err := tr.Bind(app, 0)
	if err == nil || !strings.Contains(err.Error(), `record 1: unknown service "nosuch"`) {
		t.Fatalf("error = %v", err)
	}
}

func TestReplayMix(t *testing.T) {
	rep := &Replay{Arrivals: []Arrival{{Root: 3}, {Root: 0}, {Root: 3}, {Root: 3}}}
	want := []workload.MixEntry{{Root: 0, Weight: 1}, {Root: 3, Weight: 3}}
	if got := rep.Mix(); !reflect.DeepEqual(got, want) {
		t.Fatalf("mix = %+v", got)
	}
}

func TestReplayedWindow(t *testing.T) {
	rep := &Replay{Arrivals: []Arrival{
		{At: sim.FromMicros(10)}, {At: sim.FromMicros(20)}, {At: sim.FromMicros(30)},
	}}
	if got := rep.Replayed(sim.FromMicros(25)); got != 2 {
		t.Fatalf("replayed = %d", got)
	}
	if got := rep.Replayed(sim.FromMicros(30)); got != 2 {
		t.Fatalf("replayed at boundary = %d (window is half-open)", got)
	}
	if got := rep.Replayed(sim.FromMicros(1000)); got != 3 {
		t.Fatalf("replayed = %d", got)
	}
}

// TestScheduleSubmitsInWindow drives Schedule on a real engine: submissions
// fire exactly at the bound virtual times, in record order, window-clipped.
func TestScheduleSubmitsInWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	rep := &Replay{Arrivals: []Arrival{
		{At: sim.FromMicros(10), Root: 2, Demand: 0.5},
		{At: sim.FromMicros(10), Root: 4, Demand: 1.5},
		{At: sim.FromMicros(90), Root: 2, Demand: 1},
		{At: sim.FromMicros(150), Root: 2, Demand: 1},
	}}
	type sub struct {
		at     sim.Time
		root   int
		demand float64
	}
	var got []sub
	rep.Schedule(eng, sim.FromMicros(100), func(root int, demand float64) {
		got = append(got, sub{eng.Now(), root, demand})
	})
	eng.RunUntil(sim.FromMicros(1000))
	want := []sub{
		{sim.FromMicros(10), 2, 0.5},
		{sim.FromMicros(10), 4, 1.5},
		{sim.FromMicros(90), 2, 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("submissions = %+v, want %+v", got, want)
	}
}
