package svcgraph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTrace drives the strict parser with arbitrary bytes. Invariants:
// never panic, errors carry the "svcgraph: trace line" prefix with a line
// number, and any input that parses survives a write → parse round trip with
// identical record values (the 5-column format) — the property the golden
// fixture pins for the synthesized stream.
func FuzzParseTrace(f *testing.F) {
	f.Add("")
	f.Add(Header + "\n")
	f.Add(validTrace)
	f.Add(strings.ReplaceAll(validTrace, "\n", "\r\n"))
	f.Add(legacyHeader + "\n1785.0,0.1051,27\n")
	// Malformed rows.
	f.Add(Header + "\n1,a\n")
	f.Add(Header + "\n1,a,2,0.5,3,9\n")
	f.Add(Header + "\nxx,a,2,0.5,3\n")
	// Non-finite and negative demands.
	f.Add(Header + "\nNaN,a,2,0.5,3\n")
	f.Add(Header + "\n1,a,-2,0.5,3\n")
	f.Add(Header + "\n1,a,2,-0.5,3\n")
	f.Add(Header + "\n1,a,+Inf,0.5,3\n")
	f.Add(legacyHeader + "\n-1785.0,0.1051,27\n")
	// Out-of-order arrivals.
	f.Add(Header + "\n100,a,2,0.5,3\n99,a,2,0.5,3\n")
	// Huge fields and odd bytes.
	f.Add(Header + "\n1," + strings.Repeat("s", 100) + ",2,0.5,3\n")
	f.Add(Header + "\n1e308,a,2e308,0.5,3\n")
	f.Add(Header + "\n1,a,2,0.5,99999999999999999999\n")
	f.Add(Header + "\n1,\x00\xff,2,0.5,3\n")
	f.Add("\x00\x01\x02")

	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseTrace(strings.NewReader(in))
		if err != nil {
			if tr != nil {
				t.Fatalf("non-nil trace alongside error %v", err)
			}
			msg := err.Error()
			if !strings.HasPrefix(msg, "svcgraph: ") {
				t.Fatalf("error without package prefix: %q", msg)
			}
			return
		}
		if len(tr.Records) == 0 {
			t.Fatal("successful parse with zero records")
		}
		if tr.Legacy {
			return // legacy records carry no service name; not re-writable
		}
		for _, r := range tr.Records {
			// The writer's fixed precision (%.1f / %.4f) would round these
			// to an unparseable zero; the round-trip property only holds for
			// values the wire format can represent.
			if r.DurationMicros < 0.05 || r.CPUUtil < 0.00005 {
				return
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr.Records); err != nil {
			t.Fatalf("parsed trace does not re-write: %v", err)
		}
		back, err := ParseTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-written trace does not re-parse: %v", err)
		}
		if len(back.Records) != len(tr.Records) {
			t.Fatalf("round trip lost records: %d -> %d", len(tr.Records), len(back.Records))
		}
		for i := range back.Records {
			if back.Records[i].Service != tr.Records[i].Service || back.Records[i].RPCs != tr.Records[i].RPCs {
				t.Fatalf("record %d drifted: %+v -> %+v", i, tr.Records[i], back.Records[i])
			}
		}
	})
}
