package textplot

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	out := BarChart("title", []Bar{
		{Label: "a", Value: 10},
		{Label: "bb", Value: 5},
		{Label: "ccc", Value: 0},
	}, 20)
	if !strings.HasPrefix(out, "title\n") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The max value fills the width; half value fills about half.
	aHashes := strings.Count(lines[1], "#")
	bHashes := strings.Count(lines[2], "#")
	cHashes := strings.Count(lines[3], "#")
	if aHashes != 20 {
		t.Fatalf("max bar = %d hashes", aHashes)
	}
	if bHashes < 8 || bHashes > 12 {
		t.Fatalf("half bar = %d hashes", bHashes)
	}
	if cHashes != 0 {
		t.Fatalf("zero bar = %d hashes", cHashes)
	}
}

func TestBarChartEmptyAndDefaults(t *testing.T) {
	out := BarChart("", nil, 0)
	if out != "" {
		t.Fatalf("empty chart = %q", out)
	}
	out = BarChart("", []Bar{{Label: "x", Value: 1}}, 0)
	if !strings.Contains(out, "#") {
		t.Fatal("default width missing bars")
	}
}

func TestLinePlacesExtremes(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 4}}
	out := Line("quad", pts, 30, 8, false)
	if !strings.Contains(out, "quad") {
		t.Fatal("missing title")
	}
	lines := strings.Split(out, "\n")
	// First grid row holds the max point, last grid row the min.
	if !strings.Contains(lines[1], "*") {
		t.Fatal("max row empty")
	}
	if !strings.Contains(lines[8], "*") {
		t.Fatal("min row empty")
	}
	if strings.Count(out, "*") != 3 {
		t.Fatalf("points plotted = %d", strings.Count(out, "*"))
	}
}

func TestLineLogScale(t *testing.T) {
	pts := []Point{{X: 0, Y: 1}, {X: 1, Y: 10}, {X: 2, Y: 100}, {X: 3, Y: 1000}}
	out := Line("log", pts, 40, 10, true)
	// In log scale the points form a straight diagonal: each row between
	// top and bottom has at most one point, no clustering at the bottom.
	rows := strings.Split(out, "\n")
	starCols := []int{}
	for _, r := range rows {
		if i := strings.IndexByte(r, '*'); i >= 0 {
			starCols = append(starCols, i)
		}
	}
	if len(starCols) != 4 {
		t.Fatalf("log plot rows with points = %d", len(starCols))
	}
	for i := 1; i < len(starCols); i++ {
		if starCols[i] >= starCols[i-1] {
			t.Fatal("log diagonal not monotone")
		}
	}
}

func TestLineDegenerate(t *testing.T) {
	if out := Line("t", nil, 10, 5, false); !strings.Contains(out, "no data") {
		t.Fatalf("empty series = %q", out)
	}
	// Single point / flat series must not divide by zero.
	out := Line("flat", []Point{{X: 1, Y: 2}, {X: 1, Y: 2}}, 10, 5, false)
	if !strings.Contains(out, "*") {
		t.Fatal("flat series lost its point")
	}
	// Zero and negative y under log scale are clamped, not NaN.
	out = Line("neg", []Point{{X: 0, Y: 0}, {X: 1, Y: 10}}, 10, 5, true)
	if strings.Contains(out, "NaN") {
		t.Fatal("log scale produced NaN")
	}
}

func TestCDFWrapper(t *testing.T) {
	out := CDF("cdf", []Point{{X: 0, Y: 0}, {X: 1, Y: 0.5}, {X: 2, Y: 1}}, 20, 6)
	if !strings.Contains(out, "cdf") || strings.Count(out, "*") != 3 {
		t.Fatalf("cdf plot: %q", out)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Fatalf("sparkline runes = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("sparkline extremes = %q", s)
	}
	flat := Sparkline([]float64{3, 3, 3})
	if len([]rune(flat)) != 3 {
		t.Fatal("flat sparkline length")
	}
}
