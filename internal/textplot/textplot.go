// Package textplot renders small ASCII charts — bar charts, CDF curves and
// log-scale series — so cmd/umbench can show the *shape* of each
// reproduced figure directly in a terminal, next to the numeric tables.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labeled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders a horizontal bar chart, scaled to width characters.
func BarChart(title string, bars []Bar, width int) string {
	if width <= 0 {
		width = 50
	}
	var max float64
	labelW := 0
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(b.Value / max * float64(width))
		}
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&sb, "%-*s |%s %.3g\n", labelW, b.Label, strings.Repeat("#", n), b.Value)
	}
	return sb.String()
}

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Line renders a y-vs-x series as a fixed-size character grid. Points are
// linearly interpolated onto columns; the y axis can be logarithmic (useful
// for tail-latency blowups).
func Line(title string, pts []Point, cols, rows int, logY bool) string {
	if len(pts) == 0 {
		return title + "\n(no data)\n"
	}
	if cols <= 0 {
		cols = 60
	}
	if rows <= 0 {
		rows = 12
	}
	xmin, xmax := pts[0].X, pts[0].X
	ymin, ymax := pts[0].Y, pts[0].Y
	for _, p := range pts {
		xmin = math.Min(xmin, p.X)
		xmax = math.Max(xmax, p.X)
		ymin = math.Min(ymin, p.Y)
		ymax = math.Max(ymax, p.Y)
	}
	ty := func(y float64) float64 {
		if !logY {
			return y
		}
		if y <= 0 {
			y = 1e-12
		}
		return math.Log10(y)
	}
	tymin, tymax := ty(ymin), ty(ymax)
	if tymax == tymin {
		tymax = tymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for _, p := range pts {
		c := int((p.X - xmin) / (xmax - xmin) * float64(cols-1))
		r := int((ty(p.Y) - tymin) / (tymax - tymin) * float64(rows-1))
		row := rows - 1 - r
		grid[row][c] = '*'
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	yLabelTop := ymax
	yLabelBot := ymin
	fmt.Fprintf(&sb, "%10.3g +%s\n", yLabelTop, string(grid[0]))
	for r := 1; r < rows-1; r++ {
		fmt.Fprintf(&sb, "%10s |%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&sb, "%10.3g +%s\n", yLabelBot, string(grid[rows-1]))
	fmt.Fprintf(&sb, "%10s  %-*.4g%*.4g\n", "", cols/2, xmin, cols-cols/2, xmax)
	return sb.String()
}

// CDF renders an empirical CDF (y in [0,1]) with a linear y axis.
func CDF(title string, pts []Point, cols, rows int) string {
	return Line(title, pts, cols, rows, false)
}

// SparklineN renders values as a sparkline at most width cells wide,
// downsampling by averaging equal spans when the series is longer — the
// telemetry dashboard's per-series view. Shorter series render one cell
// per value, space-padded to width for column alignment.
func SparklineN(values []float64, width int) string {
	if width <= 0 {
		width = 48
	}
	if len(values) > width {
		cells := make([]float64, width)
		for i := range cells {
			lo := i * len(values) / width
			hi := (i + 1) * len(values) / width
			if hi <= lo {
				hi = lo + 1
			}
			sum := 0.0
			for _, v := range values[lo:hi] {
				sum += v
			}
			cells[i] = sum / float64(hi-lo)
		}
		values = cells
	}
	s := Sparkline(values)
	if pad := width - len(values); pad > 0 {
		s += strings.Repeat(" ", pad)
	}
	return s
}

// Sparkline compresses a series into a single line of block characters.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if max == min {
		max = min + 1
	}
	var sb strings.Builder
	for _, v := range values {
		i := int((v - min) / (max - min) * float64(len(blocks)-1))
		sb.WriteRune(blocks[i])
	}
	return sb.String()
}
