package icn

import "math/rand"

// SpineSelect chooses among redundant equal-cost spine paths.
type SpineSelect int

// Spine selection policies.
const (
	// RandomSpine picks uniformly among spines (default ECMP).
	RandomSpine SpineSelect = iota
	// LeastLoadedSpine picks the spine whose first-hop link frees earliest —
	// an idealized adaptive-routing ablation.
	LeastLoadedSpine
)

// LeafSpine is μManycore's hierarchical leaf-spine ICN (Fig 12).
//
// Leaves (per-cluster network hubs) are grouped into pods. Within a pod,
// every leaf connects all-to-all to the pod's second-level NHs. Every
// second-level NH connects all-to-all to the third-level NHs, which join
// pods. Intra-pod paths take 2 hops (leaf→L2→leaf) with one redundant path
// per L2 spine; inter-pod paths take 4 hops (leaf→L2→L3→L2→leaf) with
// |L2/pod| × |L3| redundant paths. The paper's 1024-core configuration is
// 4 pods × 8 leaves, 4 L2 NHs per pod, 8 L3 NHs: 56 NHs, 4-hop worst case.
type LeafSpine struct {
	pods      int
	leavesPer int
	l2PerPod  int
	l3Count   int
	sel       SpineSelect
	p         LinkParams
	leafUp    [][]*Link // [leaf][l2local] leaf -> L2
	leafDown  [][]*Link // [leaf][l2local] L2 -> leaf
	l2Up      [][]*Link // [l2global][l3] L2 -> L3
	l2Down    [][]*Link // [l2global][l3] L3 -> L2
	all       []*Link
}

// LeafSpineConfig sizes the topology.
type LeafSpineConfig struct {
	Pods         int
	LeavesPerPod int
	L2PerPod     int
	L3Count      int
	Select       SpineSelect
}

// PaperLeafSpine is the §5 configuration: 4 pods × 8 leaves, 4 L2 per pod,
// 8 L3.
func PaperLeafSpine() LeafSpineConfig {
	return LeafSpineConfig{Pods: 4, LeavesPerPod: 8, L2PerPod: 4, L3Count: 8}
}

// NewLeafSpine builds the topology.
func NewLeafSpine(cfg LeafSpineConfig, p LinkParams) *LeafSpine {
	if cfg.Pods <= 0 || cfg.LeavesPerPod <= 0 || cfg.L2PerPod <= 0 || cfg.L3Count <= 0 {
		panic("icn: leaf-spine dimensions must be positive")
	}
	ls := &LeafSpine{
		pods: cfg.Pods, leavesPer: cfg.LeavesPerPod,
		l2PerPod: cfg.L2PerPod, l3Count: cfg.L3Count,
		sel: cfg.Select, p: p,
	}
	nLeaves := cfg.Pods * cfg.LeavesPerPod
	nL2 := cfg.Pods * cfg.L2PerPod
	ls.leafUp = make([][]*Link, nLeaves)
	ls.leafDown = make([][]*Link, nLeaves)
	for leaf := 0; leaf < nLeaves; leaf++ {
		pod := leaf / cfg.LeavesPerPod
		ls.leafUp[leaf] = make([]*Link, cfg.L2PerPod)
		ls.leafDown[leaf] = make([]*Link, cfg.L2PerPod)
		for s := 0; s < cfg.L2PerPod; s++ {
			l2 := pod*cfg.L2PerPod + s
			up := newLink(leaf, nLeaves+l2, p)
			down := newLink(nLeaves+l2, leaf, p)
			ls.leafUp[leaf][s] = up
			ls.leafDown[leaf][s] = down
			ls.all = append(ls.all, up, down)
		}
	}
	ls.l2Up = make([][]*Link, nL2)
	ls.l2Down = make([][]*Link, nL2)
	for l2 := 0; l2 < nL2; l2++ {
		ls.l2Up[l2] = make([]*Link, cfg.L3Count)
		ls.l2Down[l2] = make([]*Link, cfg.L3Count)
		for t := 0; t < cfg.L3Count; t++ {
			up := newLink(nLeaves+l2, nLeaves+nL2+t, p)
			down := newLink(nLeaves+nL2+t, nLeaves+l2, p)
			ls.l2Up[l2][t] = up
			ls.l2Down[l2][t] = down
			ls.all = append(ls.all, up, down)
		}
	}
	return ls
}

// Name implements Topology.
func (ls *LeafSpine) Name() string { return "leaf-spine" }

// NumEndpoints implements Topology (the leaves).
func (ls *LeafSpine) NumEndpoints() int { return ls.pods * ls.leavesPer }

// Links implements Topology.
func (ls *LeafSpine) Links() []*Link { return ls.all }

// MaxHops implements Topology.
func (ls *LeafSpine) MaxHops() int { return 4 }

// NodeCount returns the number of NHs (leaves + L2 + L3); the paper's
// configuration yields 56.
func (ls *LeafSpine) NodeCount() int {
	return ls.pods*ls.leavesPer + ls.pods*ls.l2PerPod + ls.l3Count
}

func (ls *LeafSpine) pickL2(leaf int, rng *rand.Rand, now0 *Link) int {
	switch ls.sel {
	case LeastLoadedSpine:
		best, bestT := 0, ls.leafUp[leaf][0].BusyUntil()
		for s := 1; s < ls.l2PerPod; s++ {
			if t := ls.leafUp[leaf][s].BusyUntil(); t < bestT {
				best, bestT = s, t
			}
		}
		return best
	default:
		return rng.Intn(ls.l2PerPod)
	}
}

func (ls *LeafSpine) pickL3(l2 int, rng *rand.Rand) int {
	switch ls.sel {
	case LeastLoadedSpine:
		best, bestT := 0, ls.l2Up[l2][0].BusyUntil()
		for t := 1; t < ls.l3Count; t++ {
			if bt := ls.l2Up[l2][t].BusyUntil(); bt < bestT {
				best, bestT = t, bt
			}
		}
		return best
	default:
		return rng.Intn(ls.l3Count)
	}
}

// Path implements Topology: 2 hops intra-pod, 4 hops inter-pod, with the
// spine at each level chosen by the ECMP policy.
func (ls *LeafSpine) Path(src, dst int, rng *rand.Rand) []*Link {
	n := ls.NumEndpoints()
	if src < 0 || dst < 0 || src >= n || dst >= n {
		panic(pathError("leaf-spine", src, dst, n))
	}
	if src == dst {
		return nil
	}
	srcPod := src / ls.leavesPer
	dstPod := dst / ls.leavesPer
	s := ls.pickL2(src, rng, nil)
	if srcPod == dstPod {
		return []*Link{ls.leafUp[src][s], ls.leafDown[dst][s]}
	}
	srcL2 := srcPod*ls.l2PerPod + s
	t := ls.pickL3(srcL2, rng)
	// Descend via the same local spine index in the destination pod; the
	// L3 connects to every L2, so any choice is equal-cost. Reuse s for
	// determinism given the rng draws.
	dstL2 := dstPod*ls.l2PerPod + s
	return []*Link{
		ls.leafUp[src][s],
		ls.l2Up[srcL2][t],
		ls.l2Down[dstL2][t],
		ls.leafDown[dst][s],
	}
}

var _ Topology = (*LeafSpine)(nil)
