package icn

import (
	"math/rand"

	"umanycore/internal/sim"
)

// Mesh is a W×H 2D mesh with XY dimension-order routing (the ServerClass
// baseline's ICN). Every router is an endpoint.
type Mesh struct {
	w, h  int
	p     LinkParams
	links map[[2]int]*Link
	all   []*Link
}

// NewMesh builds a W×H mesh.
func NewMesh(w, h int, p LinkParams) *Mesh {
	if w <= 0 || h <= 0 {
		panic("icn: mesh dimensions must be positive")
	}
	m := &Mesh{w: w, h: h, p: p, links: make(map[[2]int]*Link)}
	add := func(a, b int) {
		l := newLink(a, b, p)
		m.links[[2]int{a, b}] = l
		m.all = append(m.all, l)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := y*w + x
			if x+1 < w {
				add(id, id+1)
				add(id+1, id)
			}
			if y+1 < h {
				add(id, id+w)
				add(id+w, id)
			}
		}
	}
	return m
}

// Name implements Topology.
func (m *Mesh) Name() string { return "mesh" }

// NumEndpoints implements Topology.
func (m *Mesh) NumEndpoints() int { return m.w * m.h }

// Links implements Topology.
func (m *Mesh) Links() []*Link { return m.all }

// MaxHops implements Topology.
func (m *Mesh) MaxHops() int { return (m.w - 1) + (m.h - 1) }

// Path implements Topology with XY routing: move along X to the destination
// column, then along Y.
func (m *Mesh) Path(src, dst int, _ *rand.Rand) []*Link {
	n := m.w * m.h
	if src < 0 || dst < 0 || src >= n || dst >= n {
		panic(pathError("mesh", src, dst, n))
	}
	var path []*Link
	sx, sy := src%m.w, src/m.w
	dx, dy := dst%m.w, dst/m.w
	x, y := sx, sy
	for x != dx {
		nx := x + 1
		if dx < x {
			nx = x - 1
		}
		path = append(path, m.links[[2]int{y*m.w + x, y*m.w + nx}])
		x = nx
	}
	for y != dy {
		ny := y + 1
		if dy < y {
			ny = y - 1
		}
		path = append(path, m.links[[2]int{y*m.w + x, ny*m.w + x}])
		y = ny
	}
	return path
}

var _ Topology = (*Mesh)(nil)

// Crossbar is an idealized single-hop full crossbar: every endpoint pair is
// joined by a dedicated link. It serves as a contention-light reference
// topology in tests and ablations (and as the intra-village fabric, whose
// geometry the paper does not model beyond the shared L2 latency).
type Crossbar struct {
	n     int
	p     LinkParams
	links map[[2]int]*Link
	all   []*Link
}

// NewCrossbar builds an n-endpoint crossbar.
func NewCrossbar(n int, p LinkParams) *Crossbar {
	if n <= 0 {
		panic("icn: crossbar size must be positive")
	}
	c := &Crossbar{n: n, p: p, links: make(map[[2]int]*Link)}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			l := newLink(a, b, p)
			c.links[[2]int{a, b}] = l
			c.all = append(c.all, l)
		}
	}
	return c
}

// Name implements Topology.
func (c *Crossbar) Name() string { return "crossbar" }

// NumEndpoints implements Topology.
func (c *Crossbar) NumEndpoints() int { return c.n }

// Links implements Topology.
func (c *Crossbar) Links() []*Link { return c.all }

// MaxHops implements Topology.
func (c *Crossbar) MaxHops() int { return 1 }

// Path implements Topology.
func (c *Crossbar) Path(src, dst int, _ *rand.Rand) []*Link {
	if src < 0 || dst < 0 || src >= c.n || dst >= c.n {
		panic(pathError("crossbar", src, dst, c.n))
	}
	if src == dst {
		return nil
	}
	return []*Link{c.links[[2]int{src, dst}]}
}

var _ Topology = (*Crossbar)(nil)

// meshHopCheck is a compile-time-ish helper for tests.
func meshCoord(m *Mesh, id int) (x, y int) { return id % m.w, id / m.w }

// silence unused warning when tests don't use it
var _ = meshCoord
var _ = sim.Time(0)
