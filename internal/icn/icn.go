// Package icn models the on-package interconnection networks of the paper:
// the 2D mesh used by the ServerClass baseline, the fat-tree used by the
// ScaleOut baseline (63 network hubs, 10-hop worst case), and μManycore's
// hierarchical leaf-spine (Fig 12: 32 leaf NHs in 4 pods, 16 second-level
// NHs, 8 third-level NHs, 4-hop worst case, many redundant paths).
//
// The model is flow-level: each directed link is a serially-reusable
// resource (busy-until bookkeeping). A message crossing a link first queues
// for the link's serialization slot (size / bandwidth), then pays the fixed
// per-hop pipeline latency (5 cycles contention-free, per Table 2).
// Queueing at congested links — the paper's source of tail inflation — falls
// out of the resource model; redundant leaf-spine paths reduce it by
// spreading serialization load.
package icn

import (
	"fmt"
	"math/rand"

	"umanycore/internal/sim"
)

// LinkParams sets the per-link timing.
type LinkParams struct {
	// HopLatency is the contention-free router+wire latency per hop.
	HopLatency sim.Time
	// PsPerByte is the serialization time per byte (inverse bandwidth).
	PsPerByte sim.Time
}

// DefaultLinkParams returns Table 2 values at 2 GHz: 5 cycles/hop
// (4 router + 1 wire = 2.5 ns) and 32 GB/s per link.
func DefaultLinkParams() LinkParams {
	return LinkParams{
		HopLatency: 2500 * sim.Picosecond, // 5 cycles @ 2GHz
		PsPerByte:  sim.Time(31),          // ~32 GB/s per on-package link
	}
}

// Link is one directed channel between two routers.
type Link struct {
	From, To int
	p        LinkParams
	res      sim.Resource
}

// Traverse schedules a message of size bytes onto the link at time now and
// returns its head arrival time at the next router. With contention disabled
// the link behaves as an infinite-capacity pipe (the Fig 7 normalization
// baseline).
func (l *Link) Traverse(now sim.Time, sizeBytes int, contention bool) sim.Time {
	ser := l.p.PsPerByte * sim.Time(sizeBytes)
	if contention {
		return l.res.Acquire(now, ser) + l.p.HopLatency
	}
	return now + ser + l.p.HopLatency
}

// QueueDelay reports the current backlog a message arriving now would see.
func (l *Link) QueueDelay(now sim.Time) sim.Time { return l.res.QueueDelay(now) }

// BusyUntil exposes the link's horizon for least-loaded path selection.
func (l *Link) BusyUntil() sim.Time { return l.res.BusyUntil() }

// Utilization reports the fraction of the window the link was busy.
func (l *Link) Utilization(window sim.Time) float64 { return l.res.Utilization(window) }

// Reset clears link contention state between experiment runs.
func (l *Link) Reset() { l.res.Reset() }

// Topology routes messages between endpoint routers.
type Topology interface {
	Name() string
	// NumEndpoints is the number of addressable endpoints (leaf routers for
	// trees, all routers for meshes).
	NumEndpoints() int
	// Path returns the ordered links from endpoint src to endpoint dst.
	// src == dst yields an empty path. rng breaks ties among redundant
	// equal-cost paths.
	Path(src, dst int, rng *rand.Rand) []*Link
	// Links exposes every link (for utilization reports and resets).
	Links() []*Link
	// MaxHops is the longest possible path length.
	MaxHops() int
}

// Deliver walks the path from src to dst starting at now and returns the
// arrival time and hop count. It is the single entry point the machine
// models use.
func Deliver(t Topology, now sim.Time, src, dst, sizeBytes int, rng *rand.Rand, contention bool) (sim.Time, int) {
	path := t.Path(src, dst, rng)
	at := now
	for _, l := range path {
		at = l.Traverse(at, sizeBytes, contention)
	}
	return at, len(path)
}

// ResetAll clears contention state on every link of the topology.
func ResetAll(t Topology) {
	for _, l := range t.Links() {
		l.Reset()
	}
}

// MeanUtilization averages link utilization over the window.
func MeanUtilization(t Topology, window sim.Time) float64 {
	ls := t.Links()
	if len(ls) == 0 {
		return 0
	}
	var sum float64
	for _, l := range ls {
		sum += l.Utilization(window)
	}
	return sum / float64(len(ls))
}

// MaxUtilization returns the hottest link's utilization — the quantity that
// predicts tail inflation under contention.
func MaxUtilization(t Topology, window sim.Time) float64 {
	var max float64
	for _, l := range t.Links() {
		if u := l.Utilization(window); u > max {
			max = u
		}
	}
	return max
}

func newLink(from, to int, p LinkParams) *Link {
	return &Link{From: from, To: to, p: p}
}

// pathError reports an out-of-range endpoint; topologies panic on it because
// it is always a wiring bug in the machine model, never a runtime condition.
func pathError(name string, src, dst, n int) string {
	return fmt.Sprintf("icn: %s endpoint out of range: src=%d dst=%d n=%d", name, src, dst, n)
}
