package icn

import "math/rand"

// FatTree is a binary fat-tree over n leaf endpoints (the ScaleOut
// baseline's ICN). With 32 leaves it has 63 network hubs and a 10-hop
// longest path, matching the paper's §5 configuration. Routing ascends to
// the lowest common ancestor and descends; there is exactly one path per
// pair, so root-adjacent links concentrate cross-tree traffic — the
// contention behaviour Fig 7 exposes.
type FatTree struct {
	leaves int
	levels int
	p      LinkParams
	up     map[int]*Link // node -> link to parent
	down   map[int]*Link // node -> link from parent
	all    []*Link
}

// NewFatTree builds a binary fat-tree over `leaves` endpoints; leaves must
// be a power of two.
func NewFatTree(leaves int, p LinkParams) *FatTree {
	if leaves < 2 || leaves&(leaves-1) != 0 {
		panic("icn: fat-tree leaves must be a power of two >= 2")
	}
	f := &FatTree{leaves: leaves, p: p, up: make(map[int]*Link), down: make(map[int]*Link)}
	for n := leaves; n > 1; n >>= 1 {
		f.levels++
	}
	// Node numbering: heap order. Root = 1; children of k are 2k, 2k+1;
	// leaves occupy [leaves, 2*leaves). Links fatten toward the root —
	// bandwidth doubles per aggregation level, capped at 4× (practical
	// fat-trees cannot scale beachfront indefinitely).
	for k := 2; k < 2*leaves; k++ {
		parent := k / 2
		height := 0
		for n := k; n < leaves; n <<= 1 {
			height++
		}
		lp := p
		boost := height
		if boost > 2 {
			boost = 2
		}
		lp.PsPerByte = p.PsPerByte / (1 << boost)
		if lp.PsPerByte < 1 {
			lp.PsPerByte = 1
		}
		upl := newLink(k, parent, lp)
		downl := newLink(parent, k, lp)
		f.up[k] = upl
		f.down[k] = downl
		f.all = append(f.all, upl, downl)
	}
	return f
}

// Name implements Topology.
func (f *FatTree) Name() string { return "fat-tree" }

// NumEndpoints implements Topology.
func (f *FatTree) NumEndpoints() int { return f.leaves }

// Links implements Topology.
func (f *FatTree) Links() []*Link { return f.all }

// MaxHops implements Topology.
func (f *FatTree) MaxHops() int { return 2 * f.levels }

// Path implements Topology: up to the LCA, then down.
func (f *FatTree) Path(src, dst int, _ *rand.Rand) []*Link {
	if src < 0 || dst < 0 || src >= f.leaves || dst >= f.leaves {
		panic(pathError("fat-tree", src, dst, f.leaves))
	}
	if src == dst {
		return nil
	}
	a := src + f.leaves
	b := dst + f.leaves
	var upPath []*Link
	var downPath []*Link
	for a != b {
		if a > b {
			upPath = append(upPath, f.up[a])
			a /= 2
		} else {
			downPath = append(downPath, f.down[b])
			b /= 2
		}
	}
	// downPath was collected from destination upward; reverse it.
	path := upPath
	for i := len(downPath) - 1; i >= 0; i-- {
		path = append(path, downPath[i])
	}
	return path
}

// NodeCount returns the total number of network hubs (2*leaves - 1),
// reported to verify the paper's "63 NHs" configuration.
func (f *FatTree) NodeCount() int { return 2*f.leaves - 1 }

// PathToRoot returns the ascending links from a leaf to the root, where the
// package's top-level NIC and memory controllers attach. Storage/external
// traffic leaves the package this way.
func (f *FatTree) PathToRoot(leaf int) []*Link {
	if leaf < 0 || leaf >= f.leaves {
		panic(pathError("fat-tree", leaf, 0, f.leaves))
	}
	var path []*Link
	for n := leaf + f.leaves; n > 1; n /= 2 {
		path = append(path, f.up[n])
	}
	return path
}

// PathFromRoot returns the descending links from the root to a leaf.
func (f *FatTree) PathFromRoot(leaf int) []*Link {
	if leaf < 0 || leaf >= f.leaves {
		panic(pathError("fat-tree", leaf, 0, f.leaves))
	}
	var rev []*Link
	for n := leaf + f.leaves; n > 1; n /= 2 {
		rev = append(rev, f.down[n])
	}
	path := make([]*Link, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path
}

var _ Topology = (*FatTree)(nil)
