package icn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"umanycore/internal/sim"
)

func testParams() LinkParams {
	return LinkParams{HopLatency: 2500, PsPerByte: 31}
}

func TestLinkTraverseContentionFree(t *testing.T) {
	l := newLink(0, 1, testParams())
	at := l.Traverse(0, 100, false)
	if at != 100*31+2500 {
		t.Fatalf("arrival = %d", at)
	}
	// Contention-free traversals don't queue on each other.
	at2 := l.Traverse(0, 100, false)
	if at2 != at {
		t.Fatalf("second contention-free arrival = %d", at2)
	}
}

func TestLinkTraverseContention(t *testing.T) {
	l := newLink(0, 1, testParams())
	a1 := l.Traverse(0, 100, true)
	a2 := l.Traverse(0, 100, true)
	if a2 != a1+100*31 {
		t.Fatalf("second message should queue: %d vs %d", a2, a1)
	}
	if l.QueueDelay(0) == 0 {
		t.Fatal("link should report backlog")
	}
	l.Reset()
	if l.BusyUntil() != 0 {
		t.Fatal("reset failed")
	}
}

func TestMeshGeometryAndRouting(t *testing.T) {
	m := NewMesh(4, 3, testParams())
	if m.NumEndpoints() != 12 {
		t.Fatalf("endpoints = %d", m.NumEndpoints())
	}
	if m.MaxHops() != 5 {
		t.Fatalf("MaxHops = %d", m.MaxHops())
	}
	rng := rand.New(rand.NewSource(1))
	// Same node: empty path.
	if len(m.Path(5, 5, rng)) != 0 {
		t.Fatal("self path not empty")
	}
	// (0,0) -> (3,2): 3 X hops + 2 Y hops.
	p := m.Path(0, 11, rng)
	if len(p) != 5 {
		t.Fatalf("path len = %d", len(p))
	}
	// XY routing: X moves first.
	if p[0].From != 0 || p[0].To != 1 {
		t.Fatalf("first hop %d->%d", p[0].From, p[0].To)
	}
	// Path is connected.
	for i := 1; i < len(p); i++ {
		if p[i].From != p[i-1].To {
			t.Fatal("disconnected path")
		}
	}
	if p[len(p)-1].To != 11 {
		t.Fatal("path does not reach destination")
	}
}

func TestMeshReverseDirection(t *testing.T) {
	m := NewMesh(3, 3, testParams())
	rng := rand.New(rand.NewSource(1))
	p := m.Path(8, 0, rng)
	if len(p) != 4 {
		t.Fatalf("path len = %d", len(p))
	}
	if p[len(p)-1].To != 0 {
		t.Fatal("wrong destination")
	}
}

func TestMeshPanics(t *testing.T) {
	m := NewMesh(2, 2, testParams())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range did not panic")
		}
	}()
	m.Path(0, 9, rand.New(rand.NewSource(1)))
}

func TestCrossbar(t *testing.T) {
	c := NewCrossbar(4, testParams())
	if c.NumEndpoints() != 4 || c.MaxHops() != 1 {
		t.Fatal("geometry")
	}
	rng := rand.New(rand.NewSource(1))
	if len(c.Path(1, 1, rng)) != 0 {
		t.Fatal("self path")
	}
	p := c.Path(1, 3, rng)
	if len(p) != 1 || p[0].From != 1 || p[0].To != 3 {
		t.Fatal("bad crossbar path")
	}
	if len(c.Links()) != 12 {
		t.Fatalf("links = %d", len(c.Links()))
	}
}

func TestFatTreePaperGeometry(t *testing.T) {
	f := NewFatTree(32, testParams())
	if f.NodeCount() != 63 {
		t.Fatalf("NodeCount = %d, paper says 63 NHs", f.NodeCount())
	}
	if f.MaxHops() != 10 {
		t.Fatalf("MaxHops = %d, paper says 10", f.MaxHops())
	}
}

func TestFatTreeRouting(t *testing.T) {
	f := NewFatTree(8, testParams())
	rng := rand.New(rand.NewSource(1))
	// Siblings: 2 hops via shared parent.
	if p := f.Path(0, 1, rng); len(p) != 2 {
		t.Fatalf("sibling path = %d hops", len(p))
	}
	// Extremes: full ascent + descent.
	if p := f.Path(0, 7, rng); len(p) != 6 {
		t.Fatalf("0->7 path = %d hops", len(p))
	}
	if len(f.Path(3, 3, rng)) != 0 {
		t.Fatal("self path")
	}
	// Connectivity of every pair.
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			p := f.Path(s, d, rng)
			if s == d {
				continue
			}
			if p[0].From != s+8 {
				t.Fatalf("path from %d starts at %d", s, p[0].From)
			}
			if p[len(p)-1].To != d+8 {
				t.Fatalf("path to %d ends at %d", d, p[len(p)-1].To)
			}
			for i := 1; i < len(p); i++ {
				if p[i].From != p[i-1].To {
					t.Fatalf("disconnected %d->%d", s, d)
				}
			}
		}
	}
}

func TestFatTreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two did not panic")
		}
	}()
	NewFatTree(12, testParams())
}

func TestLeafSpinePaperGeometry(t *testing.T) {
	ls := NewLeafSpine(PaperLeafSpine(), testParams())
	if ls.NumEndpoints() != 32 {
		t.Fatalf("endpoints = %d", ls.NumEndpoints())
	}
	if ls.NodeCount() != 56 {
		t.Fatalf("NodeCount = %d, paper says 56 NHs", ls.NodeCount())
	}
	if ls.MaxHops() != 4 {
		t.Fatalf("MaxHops = %d, paper says 4", ls.MaxHops())
	}
}

func TestLeafSpineRouting(t *testing.T) {
	ls := NewLeafSpine(PaperLeafSpine(), testParams())
	rng := rand.New(rand.NewSource(1))
	// Intra-pod (leaves 0 and 3 are both in pod 0): always 2 hops.
	for i := 0; i < 20; i++ {
		if p := ls.Path(0, 3, rng); len(p) != 2 {
			t.Fatalf("intra-pod path = %d hops", len(p))
		}
	}
	// Inter-pod (leaf 0 pod 0 -> leaf 31 pod 3): always 4 hops.
	for i := 0; i < 20; i++ {
		p := ls.Path(0, 31, rng)
		if len(p) != 4 {
			t.Fatalf("inter-pod path = %d hops", len(p))
		}
		for j := 1; j < len(p); j++ {
			if p[j].From != p[j-1].To {
				t.Fatal("disconnected inter-pod path")
			}
		}
		if p[0].From != 0 || p[3].To != 31 {
			t.Fatal("wrong endpoints")
		}
	}
	if len(ls.Path(7, 7, rng)) != 0 {
		t.Fatal("self path")
	}
}

func TestLeafSpineECMPSpreads(t *testing.T) {
	// Repeated same-pair messages should use multiple distinct first-hop
	// links (redundant paths — the paper's key contention property).
	ls := NewLeafSpine(PaperLeafSpine(), testParams())
	rng := rand.New(rand.NewSource(2))
	seen := map[*Link]bool{}
	for i := 0; i < 100; i++ {
		seen[ls.Path(0, 31, rng)[0]] = true
	}
	if len(seen) < 2 {
		t.Fatal("ECMP did not spread across spines")
	}
}

func TestLeafSpineLeastLoaded(t *testing.T) {
	cfg := PaperLeafSpine()
	cfg.Select = LeastLoadedSpine
	ls := NewLeafSpine(cfg, testParams())
	rng := rand.New(rand.NewSource(3))
	// Saturate one spine link; least-loaded must avoid it.
	busy := ls.Path(0, 3, rng)[0]
	busy.Traverse(0, 1<<20, true) // huge message
	p := ls.Path(0, 3, rng)
	if p[0] == busy {
		t.Fatal("least-loaded picked the saturated spine")
	}
}

func TestDeliverAccumulatesHops(t *testing.T) {
	ls := NewLeafSpine(PaperLeafSpine(), testParams())
	rng := rand.New(rand.NewSource(4))
	at, hops := Deliver(ls, 1000, 0, 31, 64, rng, false)
	want := sim.Time(1000) + 4*(64*31+2500)
	if hops != 4 || at != want {
		t.Fatalf("at=%d hops=%d, want %d/4", at, hops, want)
	}
	at2, hops2 := Deliver(ls, 1000, 5, 5, 64, rng, false)
	if hops2 != 0 || at2 != 1000 {
		t.Fatal("self delivery should be free")
	}
}

func TestLeafSpineLowerWorstCaseThanFatTree(t *testing.T) {
	// The architectural claim: for the same 32 endpoints, leaf-spine's
	// worst path (4) is far below fat-tree's (10).
	ft := NewFatTree(32, testParams())
	ls := NewLeafSpine(PaperLeafSpine(), testParams())
	if ls.MaxHops() >= ft.MaxHops() {
		t.Fatalf("leaf-spine MaxHops %d !< fat-tree %d", ls.MaxHops(), ft.MaxHops())
	}
}

func TestContentionAdvantageOfLeafSpine(t *testing.T) {
	// Many concurrent messages between the same pair of endpoints: the
	// fat-tree's single path serializes them; leaf-spine ECMP spreads them.
	// Mean arrival delay should be clearly lower on leaf-spine.
	ft := NewFatTree(32, testParams())
	ls := NewLeafSpine(PaperLeafSpine(), testParams())
	rng := rand.New(rand.NewSource(5))
	const msgs = 200
	const size = 1024
	var ftSum, lsSum float64
	for i := 0; i < msgs; i++ {
		at, _ := Deliver(ft, 0, 0, 31, size, rng, true)
		ftSum += float64(at)
		at2, _ := Deliver(ls, 0, 0, 31, size, rng, true)
		lsSum += float64(at2)
	}
	if lsSum >= ftSum {
		t.Fatalf("leaf-spine mean %v !< fat-tree mean %v", lsSum/msgs, ftSum/msgs)
	}
}

func TestUtilizationReporting(t *testing.T) {
	m := NewMesh(2, 2, testParams())
	rng := rand.New(rand.NewSource(6))
	Deliver(m, 0, 0, 3, 1024, rng, true)
	w := sim.Time(1_000_000)
	if MeanUtilization(m, w) <= 0 {
		t.Fatal("mean utilization should be positive")
	}
	if MaxUtilization(m, w) < MeanUtilization(m, w) {
		t.Fatal("max < mean")
	}
	ResetAll(m)
	if MaxUtilization(m, w) != 0 {
		t.Fatal("ResetAll failed")
	}
}

// Property: every topology returns a connected path ending at the
// destination for all endpoint pairs.
func TestPathConnectivityProperty(t *testing.T) {
	topos := []Topology{
		NewMesh(5, 4, testParams()),
		NewFatTree(16, testParams()),
		NewLeafSpine(LeafSpineConfig{Pods: 2, LeavesPerPod: 4, L2PerPod: 2, L3Count: 3}, testParams()),
		NewCrossbar(6, testParams()),
	}
	f := func(seed int64, si, di uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, topo := range topos {
			n := topo.NumEndpoints()
			s, d := int(si)%n, int(di)%n
			p := topo.Path(s, d, rng)
			if s == d {
				if len(p) != 0 {
					return false
				}
				continue
			}
			if len(p) == 0 || len(p) > topo.MaxHops() {
				return false
			}
			for i := 1; i < len(p); i++ {
				if p[i].From != p[i-1].To {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
