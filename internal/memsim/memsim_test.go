package memsim

import (
	"testing"

	"umanycore/internal/sim"
)

func TestDRAMSingleLine(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	done := d.Access(0, 0, 64)
	want := 45*sim.Nanosecond + 5*sim.Nanosecond + 20*sim.Nanosecond
	if done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
	if d.Accesses != 1 {
		t.Fatalf("accesses = %d", d.Accesses)
	}
}

func TestDRAMBankConflict(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	a := d.Access(0, 0, 64)
	// Same line again at t=0: same bank, must queue a full row cycle.
	b := d.Access(0, 0, 64)
	if b <= a {
		t.Fatalf("bank conflict not serialized: %v then %v", a, b)
	}
}

func TestDRAMChannelInterleave(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	// Lines 0 and 1 land on different channels: no bank/bus conflict.
	a := d.Access(0, 0, 64)
	b := d.Access(0, 64, 64)
	if a != b {
		t.Fatalf("interleaved accesses should complete together: %v vs %v", a, b)
	}
}

func TestDRAMBulkTransfer(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	small := d.Access(0, 0, 64)
	d.Reset()
	big := d.Access(0, 0, 64<<10) // 1024 lines
	if big <= small {
		t.Fatal("bulk transfer should take longer than one line")
	}
	if d.Utilization(big) <= 0 {
		t.Fatal("bus utilization should be positive")
	}
}

func TestDRAMZeroSizeDefaults(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	if done := d.Access(0, 0, 0); done <= 0 {
		t.Fatal("zero-size access should behave like one line")
	}
}

func TestDRAMInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDRAM(DRAMConfig{})
}

func TestDRAMReset(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	d.Access(0, 0, 1024)
	d.Reset()
	if d.Accesses != 0 || d.Utilization(sim.Second) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestPoolStoreFetch(t *testing.T) {
	p := NewPool(DefaultPoolConfig())
	if p.Contains(1) {
		t.Fatal("empty pool contains")
	}
	if !p.Store(Snapshot{ServiceID: 1, SizeBytes: 16 << 20}) {
		t.Fatal("store failed")
	}
	if !p.Contains(1) || p.Used() != 16<<20 {
		t.Fatal("store bookkeeping")
	}
	done, ok := p.Fetch(0, 1)
	if !ok {
		t.Fatal("fetch missed")
	}
	// 16MB at 10ps/B = 160us + 50ns latency.
	want := sim.Time(16<<20)*10 + 50*sim.Nanosecond
	if done != want {
		t.Fatalf("fetch done = %v, want %v", done, want)
	}
	if _, ok := p.Fetch(0, 2); ok {
		t.Fatal("missing snapshot fetched")
	}
	if p.Hits != 1 || p.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", p.Hits, p.Misses)
	}
}

func TestPoolEvictionLRU(t *testing.T) {
	p := NewPool(PoolConfig{CapacityBytes: 48 << 20, ReadLatency: 1, PsPerByte: 1})
	p.Store(Snapshot{ServiceID: 1, SizeBytes: 16 << 20})
	p.Store(Snapshot{ServiceID: 2, SizeBytes: 16 << 20})
	p.Store(Snapshot{ServiceID: 3, SizeBytes: 16 << 20})
	p.Fetch(0, 1) // 1 becomes MRU; 2 is now LRU
	p.Store(Snapshot{ServiceID: 4, SizeBytes: 16 << 20})
	if p.Contains(2) {
		t.Fatal("LRU snapshot survived")
	}
	if !p.Contains(1) || !p.Contains(3) || !p.Contains(4) {
		t.Fatal("wrong eviction set")
	}
	if p.Used() > 48<<20 {
		t.Fatalf("over capacity: %d", p.Used())
	}
}

func TestPoolRestore(t *testing.T) {
	p := NewPool(PoolConfig{CapacityBytes: 32 << 20, ReadLatency: 1, PsPerByte: 1})
	p.Store(Snapshot{ServiceID: 1, SizeBytes: 8 << 20})
	p.Store(Snapshot{ServiceID: 1, SizeBytes: 16 << 20}) // refresh with new size
	if p.Used() != 16<<20 {
		t.Fatalf("refresh double-counted: %d", p.Used())
	}
}

func TestPoolOversizeRejected(t *testing.T) {
	p := NewPool(PoolConfig{CapacityBytes: 1 << 20, ReadLatency: 1, PsPerByte: 1})
	if p.Store(Snapshot{ServiceID: 1, SizeBytes: 2 << 20}) {
		t.Fatal("oversize accepted")
	}
}

func TestPoolPortContention(t *testing.T) {
	p := NewPool(DefaultPoolConfig())
	p.Store(Snapshot{ServiceID: 1, SizeBytes: 16 << 20})
	a, _ := p.Fetch(0, 1)
	b, _ := p.Fetch(0, 1)
	if b <= a {
		t.Fatal("concurrent fetches should serialize on the port")
	}
}

func TestBootInstance(t *testing.T) {
	p := NewPool(DefaultPoolConfig())
	cold := p.BootInstance(0, 9)
	if cold != ColdBootTime {
		t.Fatalf("cold boot = %v", cold)
	}
	p.Store(Snapshot{ServiceID: 9, SizeBytes: 16 << 20})
	warm := p.BootInstance(0, 9)
	if warm >= 10*sim.Millisecond {
		t.Fatalf("snapshot boot = %v, paper says <10ms", warm)
	}
	if warm >= cold {
		t.Fatal("snapshot boot not faster than cold boot")
	}
}

func TestPoolInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPool(PoolConfig{})
}
