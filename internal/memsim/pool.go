package memsim

import (
	"fmt"

	"umanycore/internal/sim"
)

// Snapshot is a service's initialized state image kept in a memory pool so
// new instances skip boot-time initialization (§3.5: snapshots cut instance
// boot from >300ms to <10ms and take ≤16MB per service).
type Snapshot struct {
	ServiceID int
	SizeBytes int
}

// PoolConfig sizes a per-cluster memory-pool SRAM chiplet.
type PoolConfig struct {
	CapacityBytes int
	// ReadLatency is the fixed SRAM access latency.
	ReadLatency sim.Time
	// PsPerByte is the bulk-transfer serialization (the L-MEM engine).
	PsPerByte sim.Time
}

// DefaultPoolConfig returns a 256MB SRAM pool with 50ns access latency and
// ~100GB/s bulk-transfer bandwidth.
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{
		CapacityBytes: 256 << 20,
		ReadLatency:   50 * sim.Nanosecond,
		PsPerByte:     sim.Time(10), // 100 GB/s
	}
}

// Boot-time constants from §3.5.
const (
	// ColdBootTime is instance initialization without a snapshot.
	ColdBootTime = 300 * sim.Millisecond
	// SnapshotBootFixed is the residual initialization after reading a
	// snapshot (the "<10ms" bound, minus the transfer itself).
	SnapshotBootFixed = 5 * sim.Millisecond
)

// Pool is the shared read-mostly memory chiplet of a cluster. It holds
// service snapshots with LRU eviction and serves bulk reads through a
// bandwidth-limited port.
type Pool struct {
	cfg      PoolConfig
	used     int
	entries  map[int]*Snapshot
	lruOrder []int // least recent first
	port     sim.Resource
	// Hits and Misses count snapshot fetch outcomes.
	Hits, Misses uint64
}

// NewPool builds an empty pool.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.CapacityBytes <= 0 {
		panic(fmt.Sprintf("memsim: invalid pool config %+v", cfg))
	}
	return &Pool{cfg: cfg, entries: make(map[int]*Snapshot)}
}

// Used reports occupied bytes.
func (p *Pool) Used() int { return p.used }

// Contains reports whether a snapshot for the service is resident.
func (p *Pool) Contains(serviceID int) bool {
	_, ok := p.entries[serviceID]
	return ok
}

func (p *Pool) touch(serviceID int) {
	for i, id := range p.lruOrder {
		if id == serviceID {
			p.lruOrder = append(p.lruOrder[:i], p.lruOrder[i+1:]...)
			break
		}
	}
	p.lruOrder = append(p.lruOrder, serviceID)
}

// Store inserts (or refreshes) a snapshot, evicting LRU snapshots as needed.
// Snapshots larger than the pool are rejected.
func (p *Pool) Store(s Snapshot) bool {
	if s.SizeBytes > p.cfg.CapacityBytes {
		return false
	}
	if old, ok := p.entries[s.ServiceID]; ok {
		p.used -= old.SizeBytes
		delete(p.entries, s.ServiceID)
	}
	for p.used+s.SizeBytes > p.cfg.CapacityBytes && len(p.lruOrder) > 0 {
		victim := p.lruOrder[0]
		p.lruOrder = p.lruOrder[1:]
		if v, ok := p.entries[victim]; ok {
			p.used -= v.SizeBytes
			delete(p.entries, victim)
		}
	}
	cp := s
	p.entries[s.ServiceID] = &cp
	p.used += s.SizeBytes
	p.touch(s.ServiceID)
	return true
}

// Fetch reads the service's snapshot through the pool port starting at now.
// It returns the completion time and whether the snapshot was resident; a
// miss returns now unchanged (the caller falls back to a cold boot).
func (p *Pool) Fetch(now sim.Time, serviceID int) (sim.Time, bool) {
	s, ok := p.entries[serviceID]
	if !ok {
		p.Misses++
		return now, false
	}
	p.Hits++
	p.touch(serviceID)
	transfer := p.cfg.PsPerByte * sim.Time(s.SizeBytes)
	return p.port.Acquire(now, transfer) + p.cfg.ReadLatency, true
}

// BootInstance computes when a new service instance becomes ready if its
// initialization starts at now: a snapshot fetch plus the fixed residual
// when resident, or a full cold boot otherwise.
func (p *Pool) BootInstance(now sim.Time, serviceID int) sim.Time {
	done, ok := p.Fetch(now, serviceID)
	if !ok {
		return now + ColdBootTime
	}
	return done + SnapshotBootFixed
}
