// Package memsim models the memory substrates of the paper: a
// channel/bank-queued DRAM main memory (the DRAMSim2 stand-in, Table 2:
// 80GB, 4 channels × 8 banks, 8 controllers at 102.4GB/s each) and the
// per-cluster memory-pool SRAM chiplet that stores read-mostly service
// snapshots (§3.5, §4.1).
package memsim

import (
	"fmt"

	"umanycore/internal/sim"
)

// DRAMConfig sizes the main-memory model.
type DRAMConfig struct {
	Channels int
	Banks    int // per channel
	// RowCycle is the bank occupancy per access (tRC).
	RowCycle sim.Time
	// BusPerLine is the channel-bus transfer time per 64B line.
	BusPerLine sim.Time
	// BaseLatency is the fixed controller + device pipeline latency.
	BaseLatency sim.Time
}

// DefaultDRAMConfig returns Table 2-inspired timings: DDR at 1GHz with
// 4 channels and 8 banks per channel; ~45ns loaded row cycle and a 64B line
// at ~5ns on the bus (≈12.8GB/s per channel; 8 controllers in the full
// server reach the paper's 102.4GB/s each at the controller level).
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Channels:    4,
		Banks:       8,
		RowCycle:    45 * sim.Nanosecond,
		BusPerLine:  5 * sim.Nanosecond,
		BaseLatency: 20 * sim.Nanosecond,
	}
}

// DRAM is the queued main-memory model.
type DRAM struct {
	cfg   DRAMConfig
	banks [][]sim.Resource // [channel][bank]
	buses []sim.Resource   // [channel]
	// Accesses counts total line accesses for reporting.
	Accesses uint64
}

// NewDRAM builds the model.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if cfg.Channels <= 0 || cfg.Banks <= 0 {
		panic(fmt.Sprintf("memsim: invalid DRAM config %+v", cfg))
	}
	d := &DRAM{cfg: cfg}
	d.banks = make([][]sim.Resource, cfg.Channels)
	for c := range d.banks {
		d.banks[c] = make([]sim.Resource, cfg.Banks)
	}
	d.buses = make([]sim.Resource, cfg.Channels)
	return d
}

// Access issues a read/write of sizeBytes at address addr starting at now
// and returns the completion time. Lines interleave across channels then
// banks; each line occupies its bank for a row cycle and the channel bus for
// the burst transfer.
func (d *DRAM) Access(now sim.Time, addr uint64, sizeBytes int) sim.Time {
	if sizeBytes <= 0 {
		sizeBytes = 64
	}
	lines := (sizeBytes + 63) / 64
	done := now
	line := addr / 64
	for i := 0; i < lines; i++ {
		d.Accesses++
		ch := int((line + uint64(i)) % uint64(d.cfg.Channels))
		bank := int(((line + uint64(i)) / uint64(d.cfg.Channels)) % uint64(d.cfg.Banks))
		bankDone := d.banks[ch][bank].Acquire(now, d.cfg.RowCycle)
		busDone := d.buses[ch].Acquire(bankDone, d.cfg.BusPerLine)
		t := busDone + d.cfg.BaseLatency
		if t > done {
			done = t
		}
	}
	return done
}

// Utilization reports mean channel-bus utilization over the window.
func (d *DRAM) Utilization(window sim.Time) float64 {
	var sum float64
	for c := range d.buses {
		sum += d.buses[c].Utilization(window)
	}
	return sum / float64(len(d.buses))
}

// Reset clears queueing state.
func (d *DRAM) Reset() {
	for c := range d.banks {
		for b := range d.banks[c] {
			d.banks[c][b].Reset()
		}
		d.buses[c].Reset()
	}
	d.Accesses = 0
}
