// Package power is the CACTI + McPAT stand-in: an analytical area/power
// model for cores and cache hierarchies at 10nm, calibrated to reproduce the
// paper's published outputs —
//
//   - per-core power (core + its cache-hierarchy share): 10.225W ServerClass,
//     0.396W ScaleOut, 0.408W μManycore (§5);
//   - package areas: 547.2mm² for the 1024-core μManycore vs 176.1mm² for
//     the 40-core ServerClass, with μManycore 2.9% larger than ScaleOut and
//     3.1× larger than ServerClass-40 (§6.8);
//   - the derived sizings: the iso-power ServerClass has 40 cores, the
//     iso-area ServerClass has 128 cores and draws ≈3.2× μManycore's power.
//
// The functional forms are standard first-order scaling laws (dynamic power
// ∝ issue-width and frequency super-linearly, window structures as
// square-root, SRAM power/area linear in capacity); the two coefficients of
// each law are solved from the paper's anchor values.
package power

import "math"

// CoreSpec describes a core and its per-core cache capacity.
type CoreSpec struct {
	Name       string
	IssueWidth int
	FreqGHz    float64
	ROB        int
	LSQ        int
	// CacheKBPerCore is the total cache capacity attributed to one core
	// (L1 + private L2 + shared-L2/L3 share).
	CacheKBPerCore float64
	// HWExtras marks μManycore's additional hardware (request queue,
	// context-switch engine, extra NICs).
	HWExtras bool
}

// Table 2 core specs.

// ServerClassCore returns the IceLake-like big core: 6-issue, 3GHz,
// 352-entry ROB, 256-entry LSQ, 64KB L1 + 2MB L2 + 2MB L3/core.
func ServerClassCore() CoreSpec {
	return CoreSpec{
		Name: "ServerClass", IssueWidth: 6, FreqGHz: 3,
		ROB: 352, LSQ: 256, CacheKBPerCore: 64 + 2048 + 2048,
	}
}

// ScaleOutCore returns the A15-like small core: 4-issue, 2GHz, 64-entry
// ROB/LSQ, 64KB L1 + a 1/8 share of a 256KB L2.
func ScaleOutCore() CoreSpec {
	return CoreSpec{
		Name: "ScaleOut", IssueWidth: 4, FreqGHz: 2,
		ROB: 64, LSQ: 64, CacheKBPerCore: 64 + 256.0/8,
	}
}

// UManycoreCore is the ScaleOut core plus the hardware request-queue and
// context-switch support.
func UManycoreCore() CoreSpec {
	c := ScaleOutCore()
	c.Name = "uManycore"
	c.HWExtras = true
	return c
}

// Model coefficients, solved from the §5/§6.8 anchors (see package comment).
const (
	powerCoreCoeff  = 0.01443  // W per (issue^1.2 · f^1.9 · sqrt(window/128))
	powerCacheCoeff = 6.45e-4  // W per KB per GHz
	hwExtrasPowerW  = 0.012    // RQ + CS engine + extra NIC, per core
	areaCoreCoeff   = 0.09273  // mm² per (issue^1.1 · window/128)
	areaCacheCoeff  = 2.537e-4 // mm² per KB
)

// CorePower returns the combined dynamic + static power of one core and its
// cache-hierarchy share, in watts.
func CorePower(s CoreSpec) float64 {
	window := float64(s.ROB+s.LSQ) / 128
	p := powerCoreCoeff*math.Pow(float64(s.IssueWidth), 1.2)*math.Pow(s.FreqGHz, 1.9)*math.Sqrt(window) +
		powerCacheCoeff*s.CacheKBPerCore*s.FreqGHz
	if s.HWExtras {
		p += hwExtrasPowerW
	}
	return p
}

// CoreArea returns the area of one core and its cache share, in mm².
func CoreArea(s CoreSpec) float64 {
	window := float64(s.ROB+s.LSQ) / 128
	return areaCoreCoeff*math.Pow(float64(s.IssueWidth), 1.1)*window +
		areaCacheCoeff*s.CacheKBPerCore
}

// ChipSpec is a full processor package.
type ChipSpec struct {
	Core CoreSpec
	// Cores is the core count.
	Cores int
	// UncoreAreaMM2 covers the non-core chiplets: network hubs, memory
	// pools, top-level NIC, memory controllers.
	UncoreAreaMM2 float64
}

// Paper package configurations.

// ServerClassChip returns the n-core ServerClass package (n = 40 iso-power,
// n = 128 iso-area).
func ServerClassChip(n int) ChipSpec {
	return ChipSpec{Core: ServerClassCore(), Cores: n, UncoreAreaMM2: 7.4}
}

// ScaleOutChip returns the 1024-core ScaleOut package.
func ScaleOutChip() ChipSpec {
	return ChipSpec{Core: ScaleOutCore(), Cores: 1024, UncoreAreaMM2: 71.0}
}

// UManycoreChip returns the 1024-core μManycore package (74 chiplets: 32
// village chiplets, 32 memory pools, NH chiplets, top-level NIC).
func UManycoreChip() ChipSpec {
	return ChipSpec{Core: UManycoreCore(), Cores: 1024, UncoreAreaMM2: 86.4}
}

// TotalPower returns package power in watts.
func (c ChipSpec) TotalPower() float64 { return float64(c.Cores) * CorePower(c.Core) }

// TotalArea returns package area in mm².
func (c ChipSpec) TotalArea() float64 {
	return float64(c.Cores)*CoreArea(c.Core) + c.UncoreAreaMM2
}

// IsoPowerCores returns how many cores of the given spec fit within the
// target power budget.
func IsoPowerCores(targetW float64, core CoreSpec) int {
	p := CorePower(core)
	if p <= 0 {
		return 0
	}
	return int(targetW / p)
}

// IsoAreaCores returns how many cores of the given spec (plus the fixed
// uncore) fit within the target area.
func IsoAreaCores(targetMM2, uncoreMM2 float64, core CoreSpec) int {
	a := CoreArea(core)
	if a <= 0 {
		return 0
	}
	n := (targetMM2 - uncoreMM2) / a
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}
