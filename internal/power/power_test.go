package power

import (
	"math"
	"testing"
)

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want)/want > relTol {
		t.Errorf("%s = %v, want %v (±%.0f%%)", name, got, want, relTol*100)
	}
}

// §5 anchor: per-core power 10.225 / 0.396 / 0.408 W.
func TestPerCorePowerAnchors(t *testing.T) {
	within(t, "ServerClass core power", CorePower(ServerClassCore()), 10.225, 0.05)
	within(t, "ScaleOut core power", CorePower(ScaleOutCore()), 0.396, 0.05)
	within(t, "uManycore core power", CorePower(UManycoreCore()), 0.408, 0.05)
}

// §6.8 anchors: 547.2mm² μManycore vs 176.1mm² ServerClass-40; μManycore
// 2.9% larger than ScaleOut and 3.1× larger than ServerClass-40.
func TestAreaAnchors(t *testing.T) {
	umc := UManycoreChip().TotalArea()
	sc40 := ServerClassChip(40).TotalArea()
	so := ScaleOutChip().TotalArea()
	within(t, "uManycore area", umc, 547.2, 0.03)
	within(t, "ServerClass-40 area", sc40, 176.1, 0.03)
	within(t, "uManycore/ServerClass area ratio", umc/sc40, 3.1, 0.05)
	within(t, "uManycore/ScaleOut area ratio", umc/so, 1.029, 0.02)
}

// Iso-power sizing: a ServerClass with μManycore's power budget has ~40
// cores.
func TestIsoPowerSizing(t *testing.T) {
	budget := UManycoreChip().TotalPower()
	n := IsoPowerCores(budget, ServerClassCore())
	if n < 38 || n > 42 {
		t.Fatalf("iso-power ServerClass cores = %d, want ≈40", n)
	}
}

// Iso-area sizing: a ServerClass with μManycore's area has ~128 cores and
// draws ≈3.2× the power.
func TestIsoAreaSizing(t *testing.T) {
	area := UManycoreChip().TotalArea()
	n := IsoAreaCores(area, 7.4, ServerClassCore())
	if n < 122 || n > 134 {
		t.Fatalf("iso-area ServerClass cores = %d, want ≈128", n)
	}
	ratio := ServerClassChip(128).TotalPower() / UManycoreChip().TotalPower()
	within(t, "iso-area power ratio", ratio, 3.2, 0.06)
}

func TestHWExtrasDelta(t *testing.T) {
	d := CorePower(UManycoreCore()) - CorePower(ScaleOutCore())
	within(t, "hardware extras power", d, hwExtrasPowerW, 1e-9)
	// Extras don't change the core-area model (they live in the uncore).
	if CoreArea(UManycoreCore()) != CoreArea(ScaleOutCore()) {
		t.Fatal("core areas should match")
	}
}

func TestMonotonicity(t *testing.T) {
	small := ScaleOutCore()
	big := ServerClassCore()
	if CorePower(big) <= CorePower(small) {
		t.Fatal("bigger core should draw more power")
	}
	if CoreArea(big) <= CoreArea(small) {
		t.Fatal("bigger core should be larger")
	}
	// More cache, more power/area.
	c := small
	c.CacheKBPerCore *= 4
	if CorePower(c) <= CorePower(small) || CoreArea(c) <= CoreArea(small) {
		t.Fatal("cache scaling broken")
	}
}

func TestSizingEdgeCases(t *testing.T) {
	if IsoPowerCores(100, CoreSpec{}) != 0 {
		t.Fatal("zero-power core should size to 0")
	}
	if IsoAreaCores(5, 10, ServerClassCore()) != 0 {
		t.Fatal("negative budget should size to 0")
	}
	if IsoAreaCores(100, 0, CoreSpec{}) != 0 {
		t.Fatal("zero-area core should size to 0")
	}
}
