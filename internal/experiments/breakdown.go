package experiments

import (
	"umanycore/internal/machine"
	"umanycore/internal/stats"
	"umanycore/internal/sweep"
)

// Fig15Row is one application's cumulative technique ladder at 15K RPS:
// tail-latency *reduction factors* relative to ScaleOut after applying each
// μManycore technique in the paper's order.
type Fig15Row struct {
	App string
	// Reduction after +Villages, +Leaf-spine ICN, +HW scheduling, +HW
	// context switch (the last configuration is μManycore).
	Villages  float64
	LeafSpine float64
	HWSched   float64
	HWCS      float64
}

// Fig15 reproduces Figure 15: the contribution of the four main μManycore
// techniques, applied cumulatively to ScaleOut at 15K RPS.
func Fig15(o Options) []Fig15Row {
	o = o.normalized()
	base := withFleetCoupling(machine.ScaleOutConfig())
	ladder := []machine.Config{
		withFleetCoupling(machine.WithVillages(machine.ScaleOutConfig())),
		withFleetCoupling(machine.WithLeafSpine(machine.WithVillages(machine.ScaleOutConfig()))),
		withFleetCoupling(machine.WithHWScheduling(machine.WithLeafSpine(machine.WithVillages(machine.ScaleOutConfig())))),
		withFleetCoupling(machine.WithHWContextSwitch(machine.WithHWScheduling(machine.WithLeafSpine(machine.WithVillages(machine.ScaleOutConfig()))))),
	}
	const rps = 15000
	catalog := o.Apps[0].Catalog
	// The base run and the four ladder rungs are five independent
	// simulations — one sweep, base in slot 0.
	results := sweep.MapCached(o.Parallel, append([]machine.Config{base}, ladder...),
		func(_ int, cfg machine.Config) []byte {
			return runPre("run/result", cfg, o.mixedRC(rps, o.Duration))
		},
		resultCodec,
		func(_ int, cfg machine.Config) *machine.Result {
			return mixedRun(cfg, o, rps)
		})
	baseRes, ladderRes := results[0], results[1:]
	var rows []Fig15Row
	for _, root := range sortedRoots(baseRes.PerRoot) {
		baseSum := baseRes.PerRoot[root]
		row := Fig15Row{App: catalog.Service(root).Name}
		dst := []*float64{&row.Villages, &row.LeafSpine, &row.HWSched, &row.HWCS}
		for i := range ladder {
			sum, ok := ladderRes[i].PerRoot[root]
			if ok && sum.P99 > 0 {
				*dst[i] = baseSum.P99 / sum.P99
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig15Average returns the cross-app mean reductions (the paper's
// "1.1×, 2.3×, 3.9×, and 7.4×" series).
func Fig15Average(rows []Fig15Row) (villages, leafspine, hwsched, hwcs float64) {
	var v, l, h, c []float64
	for _, r := range rows {
		v = append(v, r.Villages)
		l = append(l, r.LeafSpine)
		h = append(h, r.HWSched)
		c = append(c, r.HWCS)
	}
	return stats.Mean(v), stats.Mean(l), stats.Mean(h), stats.Mean(c)
}

// Fig19Row is one application's tail latency across μManycore topology
// configurations, normalized to the default 8×4×32.
type Fig19Row struct {
	App string
	// NormTail maps "coresPerVillage x villagesPerCluster x clusters" to
	// tail latency normalized to the default configuration.
	NormTail map[string]float64
}

// Fig19Config is one §6.6 topology-sensitivity configuration.
type Fig19Config struct {
	Name                                          string
	CoresPerVillage, VillagesPerCluster, Clusters int
}

// Fig19Configs lists the §6.6 sensitivity configurations.
var Fig19Configs = []Fig19Config{
	{"8x4x32", 8, 4, 32},
	{"32x1x32", 32, 1, 32},
	{"32x2x16", 32, 2, 16},
	{"32x4x8", 32, 4, 8},
}

// Fig19 reproduces Figure 19: μManycore topology sensitivity at 15K RPS.
func Fig19(o Options) []Fig19Row {
	o = o.normalized()
	const rps = 15000
	catalog := o.Apps[0].Catalog
	results := sweep.MapCached(o.Parallel, Fig19Configs,
		func(_ int, tc Fig19Config) []byte {
			cfg := withFleetCoupling(machine.UManycoreTopologyConfig(tc.CoresPerVillage, tc.VillagesPerCluster, tc.Clusters))
			return runPre("run/result", cfg, o.mixedRC(rps, o.Duration))
		},
		resultCodec,
		func(_ int, tc Fig19Config) *machine.Result {
			cfg := withFleetCoupling(machine.UManycoreTopologyConfig(tc.CoresPerVillage, tc.VillagesPerCluster, tc.Clusters))
			return mixedRun(cfg, o, rps)
		})
	var rows []Fig19Row
	for _, root := range sortedRoots(results[0].PerRoot) {
		baseSum := results[0].PerRoot[root]
		row := Fig19Row{App: catalog.Service(root).Name, NormTail: map[string]float64{}}
		for i, tc := range Fig19Configs {
			sum, ok := results[i].PerRoot[root]
			if ok && baseSum.P99 > 0 {
				row.NormTail[tc.Name] = sum.P99 / baseSum.P99
			}
		}
		rows = append(rows, row)
	}
	return rows
}
