package experiments

import (
	"reflect"
	"testing"

	"umanycore/internal/sim"
)

func fleetGraphTestOptions() Options {
	o := DefaultOptions()
	o.Duration = 30 * sim.Millisecond
	o.Warmup = 6 * sim.Millisecond
	o.Drain = 200 * sim.Millisecond
	o.Loads = []float64{4000}
	return o
}

// TestFleetGraphRows pins the study's structure and its headline contrast:
// a full placement × shape grid where colocation ships nothing across the
// fabric and spread placement pushes most call edges through it.
func TestFleetGraphRows(t *testing.T) {
	rows := FleetGraph(fleetGraphTestOptions())
	if len(rows) != len(fleetGraphPlacements)*len(fleetGraphShapes) {
		t.Fatalf("rows = %d", len(rows))
	}
	remote := map[string]uint64{}
	for _, r := range rows {
		if r.P99Micros <= 0 || r.MeanMicros <= 0 || r.Completed == 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.Services < 3 || r.Depth < 3 {
			t.Fatalf("shape too small for a service-graph study: %+v", r)
		}
		if r.Placement == "colocated" && r.RemoteServed != 0 {
			t.Fatalf("colocated placement shipped %d remote RPCs: %+v", r.RemoteServed, r)
		}
		remote[r.Placement] += r.RemoteServed
	}
	if remote["spread"] == 0 || remote["random"] == 0 {
		t.Fatalf("non-colocated placements shipped no cross-server RPCs: %v", remote)
	}
}

// TestFleetGraphWorkerInvariance is the figure-level determinism gate: the
// grid is bit-identical for any sweep worker count and any PDES shard worker
// count, single-engine reference included.
func TestFleetGraphWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	o := fleetGraphTestOptions()
	o.Parallel = 1
	ref := FleetGraph(o)
	for _, parallel := range []int{4, 0} {
		o.Parallel = parallel
		if got := FleetGraph(o); !reflect.DeepEqual(ref, got) {
			t.Fatalf("FleetGraph rows differ between 1 and %d sweep workers", parallel)
		}
	}
	for _, shard := range []int{-1, 1, 4} {
		o.Parallel = 1
		o.ShardWorkers = shard
		if got := FleetGraph(o); !reflect.DeepEqual(ref, got) {
			t.Fatalf("FleetGraph rows differ with ShardWorkers=%d", shard)
		}
	}
}
