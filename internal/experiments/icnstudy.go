package experiments

import (
	"fmt"

	"umanycore/internal/machine"
	"umanycore/internal/sweep"
)

// Fig7Row is one load level of Figure 7: tail latency with ICN contention,
// normalized to the same system without contention, for the 2D mesh and
// fat-tree ICNs on the 1024-core ScaleOut manycore.
type Fig7Row struct {
	RPS         int
	MeshNorm    float64
	FatTreeNorm float64
}

// Fig7 reproduces Figure 7. Per the paper: cores grouped in 32-core
// clusters, clusters interconnected with a 2D mesh or fat-tree, 5-cycle
// contention-free hop latency, requests issued to cores randomly; each bar
// is normalized to the tail latency of the same environment without ICN
// contention.
func Fig7(o Options) []Fig7Row {
	o = o.normalized()
	app := fig7App()
	loads := []int{1000, 5000, 10000, 50000}

	type variant struct {
		topo       machine.TopoKind
		contention bool
	}
	variants := []variant{
		{machine.MeshTopo, false}, {machine.MeshTopo, true},
		{machine.FatTreeTopo, false}, {machine.FatTreeTopo, true},
	}
	mkCfg := func(v variant) machine.Config {
		cfg := machine.ScaleOutConfig()
		cfg.Topo = v.topo
		if v.topo == machine.MeshTopo {
			// 32 cluster endpoints as an 8×4 mesh.
			cfg.MeshW, cfg.MeshH = 8, 4
		}
		cfg.ICNContention = v.contention
		return cfg
	}
	mkRC := func(rps int, v variant) machine.RunConfig {
		return o.runCfgKey(app, float64(rps), fmt.Sprintf("fig7/%v/%d", v.topo, rps))
	}
	grid := sweep.MapCached2(o.Parallel, loads, variants,
		func(rps int, v variant) []byte {
			return runPre("run/p99", mkCfg(v), mkRC(rps, v))
		},
		sweep.Float64Codec(),
		func(rps int, v variant) float64 {
			return machine.Run(mkCfg(v), mkRC(rps, v)).Latency.P99
		})

	rows := make([]Fig7Row, 0, len(loads))
	for i, rps := range loads {
		meshBase, mesh, ftBase, ft := grid[i][0], grid[i][1], grid[i][2], grid[i][3]
		row := Fig7Row{RPS: rps}
		if meshBase > 0 {
			row.MeshNorm = mesh / meshBase
		}
		if ftBase > 0 {
			row.FatTreeNorm = ft / ftBase
		}
		rows = append(rows, row)
	}
	return rows
}
