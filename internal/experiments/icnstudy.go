package experiments

import (
	"umanycore/internal/machine"
)

// Fig7Row is one load level of Figure 7: tail latency with ICN contention,
// normalized to the same system without contention, for the 2D mesh and
// fat-tree ICNs on the 1024-core ScaleOut manycore.
type Fig7Row struct {
	RPS         int
	MeshNorm    float64
	FatTreeNorm float64
}

// Fig7 reproduces Figure 7. Per the paper: cores grouped in 32-core
// clusters, clusters interconnected with a 2D mesh or fat-tree, 5-cycle
// contention-free hop latency, requests issued to cores randomly; each bar
// is normalized to the tail latency of the same environment without ICN
// contention.
func Fig7(o Options) []Fig7Row {
	o = o.normalized()
	app := fig7App()
	loads := []int{1000, 5000, 10000, 50000}

	run := func(topo machine.TopoKind, contention bool, rps int) float64 {
		cfg := machine.ScaleOutConfig()
		cfg.Topo = topo
		if topo == machine.MeshTopo {
			// 32 cluster endpoints as an 8×4 mesh.
			cfg.MeshW, cfg.MeshH = 8, 4
		}
		cfg.ICNContention = contention
		res := machine.Run(cfg, o.runCfg(app, float64(rps)))
		return res.Latency.P99
	}

	rows := make([]Fig7Row, 0, len(loads))
	for _, rps := range loads {
		meshBase := run(machine.MeshTopo, false, rps)
		mesh := run(machine.MeshTopo, true, rps)
		ftBase := run(machine.FatTreeTopo, false, rps)
		ft := run(machine.FatTreeTopo, true, rps)
		row := Fig7Row{RPS: rps}
		if meshBase > 0 {
			row.MeshNorm = mesh / meshBase
		}
		if ftBase > 0 {
			row.FatTreeNorm = ft / ftBase
		}
		rows = append(rows, row)
	}
	return rows
}
