// Package experiments regenerates every table and figure of the paper's
// evaluation: one function per figure, returning the same rows/series the
// paper reports. cmd/umbench prints them as text tables; bench_test.go wraps
// each in a testing.B benchmark.
//
// Figures 14–18 and §6.8 follow the paper's methodology: per-server loads of
// 5/10/15K RPS with Poisson arrivals, a 10-server fleet (modeled via the
// symmetric-server coupling of internal/fleet — cross-server RPC fraction
// and 1μs inter-server RTT applied per machine), end-to-end latency from
// client send to client receive, and P99 as the tail metric.
package experiments

import (
	"sort"

	"umanycore/internal/machine"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
	"umanycore/internal/sweep"
	"umanycore/internal/workload"
)

// Options tunes experiment fidelity vs runtime. The zero value plus
// DefaultOptions() reproduces the EXPERIMENTS.md numbers; tests use reduced
// settings.
type Options struct {
	Seed     int64
	Duration sim.Time  // arrival window per run
	Warmup   sim.Time  // measurement warmup
	Drain    sim.Time  // post-window drain bound
	Loads    []float64 // per-server RPS points
	Apps     []*workload.App
	// Parallel bounds the sweep worker pool fanning out independent
	// simulations; <= 0 means all cores. Results are bit-identical for any
	// value (see internal/sweep's determinism contract).
	Parallel int
	// FleetSizes are the fleet sizes the FleetScale study sweeps.
	FleetSizes []int
	// ShardWorkers is forwarded to fleet.Config.ShardWorkers: how many
	// per-server engines advance concurrently inside each coupled fleet
	// simulation. Like Parallel it is a worker count — results and cache
	// keys are identical for any value.
	ShardWorkers int
}

// DefaultOptions returns full-fidelity settings.
func DefaultOptions() Options {
	return Options{
		Seed:       42,
		Duration:   400 * sim.Millisecond,
		Warmup:     80 * sim.Millisecond,
		Drain:      1600 * sim.Millisecond,
		Loads:      []float64{5000, 10000, 15000},
		Apps:       workload.SocialNetworkApps(),
		FleetSizes: []int{4, 16, 64, 256},
	}
}

// Quick returns reduced-fidelity settings for tests.
func (o Options) Quick() Options {
	o.Duration = 150 * sim.Millisecond
	o.Warmup = 30 * sim.Millisecond
	o.Drain = 600 * sim.Millisecond
	// The 256-server point is a multi-minute cell; the scaling trend is
	// already visible at 64.
	o.FleetSizes = []int{4, 16, 64}
	return o
}

func (o Options) normalized() Options {
	d := DefaultOptions()
	if o.Duration == 0 {
		o.Duration = d.Duration
	}
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if o.Drain == 0 {
		o.Drain = d.Drain
	}
	if len(o.Loads) == 0 {
		o.Loads = d.Loads
	}
	if len(o.Apps) == 0 {
		o.Apps = d.Apps
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if len(o.FleetSizes) == 0 {
		o.FleetSizes = d.FleetSizes
	}
	return o
}

// runCfg builds the common per-run configuration.
func (o Options) runCfg(app *workload.App, rps float64) machine.RunConfig {
	return machine.RunConfig{
		App:      app,
		RPS:      rps,
		Duration: o.Duration,
		Warmup:   o.Warmup,
		Drain:    o.Drain,
		Seed:     o.Seed,
	}
}

// jobSeed derives the seed for one sweep cell from the base seed and the
// cell's identity key — a pure function of the job, never of execution
// order, so parallel and sequential sweeps agree bit for bit.
func (o Options) jobSeed(key string) int64 { return sweep.Seed(o.Seed, key) }

// runCfgKey is runCfg with the cell-keyed seed.
func (o Options) runCfgKey(app *workload.App, rps float64, key string) machine.RunConfig {
	rc := o.runCfg(app, rps)
	rc.Seed = o.jobSeed(key)
	return rc
}

// sortedRoots returns the per-root summary keys in ascending ID order, so
// row assembly from a PerRoot map is deterministic.
func sortedRoots(per map[int]stats.Summary) []int {
	roots := make([]int, 0, len(per))
	for root := range per {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	return roots
}

// withFleetCoupling applies the 10-server cluster's cross-server RPC
// parameters to a machine config (§5 methodology).
func withFleetCoupling(cfg machine.Config) machine.Config {
	cfg.RemoteCallFrac = 0.5
	cfg.RemoteRTT = 1 * sim.Microsecond
	return cfg
}

// archSet returns the three §5 processors with fleet coupling.
func archSet() []machine.Config {
	return []machine.Config{
		withFleetCoupling(machine.ServerClassConfig(40)),
		withFleetCoupling(machine.ScaleOutConfig()),
		withFleetCoupling(machine.UManycoreConfig()),
	}
}
