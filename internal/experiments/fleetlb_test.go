package experiments

import (
	"reflect"
	"testing"
)

func fleetLBTestOptions() Options {
	o := DefaultOptions().Quick()
	o.Loads = []float64{8000, 12000}
	return o
}

// TestFleetLBPoliciesSeparate pins the study's headline result: on the
// skewed fleet, power-of-two-choices keeps the tail at or below uniform
// random at every load (random keeps feeding the straggler its full share).
func TestFleetLBPoliciesSeparate(t *testing.T) {
	rows := FleetLB(fleetLBTestOptions())
	byPolicy := make(map[string]map[float64]FleetLBRow)
	for _, r := range rows {
		if byPolicy[r.Policy] == nil {
			byPolicy[r.Policy] = make(map[float64]FleetLBRow)
		}
		byPolicy[r.Policy][r.PerServerRPS] = r
		if r.P99Micros <= 0 || r.MeanMicros <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.RemoteServed == 0 {
			t.Fatalf("no cross-server coupling in row %+v", r)
		}
	}
	if len(byPolicy) != 4 {
		t.Fatalf("policies = %v", len(byPolicy))
	}
	// Queue-aware policies route on window-delayed views now (the balancer
	// sees peer queue depths one inter-server wire delay stale), so this
	// doubles as the staleness guard: both p2c and least must still beat
	// both oblivious policies at every load.
	for load := range byPolicy["rand"] {
		for _, aware := range []string{"p2c", "least"} {
			for _, oblivious := range []string{"rr", "rand"} {
				a, o := byPolicy[aware][load], byPolicy[oblivious][load]
				if a.P99Micros > o.P99Micros {
					t.Errorf("load %v: %s P99 %.1fus > %s %.1fus despite stale-view routing",
						load, aware, a.P99Micros, oblivious, o.P99Micros)
				}
			}
		}
	}
}

// TestFleetLBGoodputColumns pins the accounting bugfix: every row carries
// the responded split (Completed, Rejected, RejectRate) next to the latency
// columns, and rows in one load column agree on the reject-parity
// annotation — the flag that marks when a policy's latency win came from
// answering fewer requests.
func TestFleetLBGoodputColumns(t *testing.T) {
	rows := FleetLB(fleetLBTestOptions())
	parity := make(map[float64]map[bool]bool)
	for _, r := range rows {
		if r.Completed == 0 {
			t.Fatalf("row completed nothing: %+v", r)
		}
		if got := rejectRate(r.Completed, r.Rejected); r.RejectRate != got {
			t.Fatalf("reject rate %v inconsistent with counts in %+v", got, r)
		}
		if parity[r.PerServerRPS] == nil {
			parity[r.PerServerRPS] = make(map[bool]bool)
		}
		parity[r.PerServerRPS][r.RejectParity] = true
	}
	for load, seen := range parity {
		if len(seen) != 1 {
			t.Errorf("load %v: policies disagree on the parity annotation", load)
		}
	}
}

// TestRejectParity pins the annotation's threshold semantics.
func TestRejectParity(t *testing.T) {
	if !rejectParity([]float64{0, 0, 0}) {
		t.Error("all-zero rates must be at parity")
	}
	if !rejectParity([]float64{0.101, 0.100, 0.104}) {
		t.Error("sub-half-point spread must be at parity")
	}
	if rejectParity([]float64{0.01, 0.10}) {
		t.Error("nine-point spread is not parity")
	}
}

// TestFleetLBDeterministic: coupled fleets inside the sweep give identical
// rows for any worker count.
func TestFleetLBDeterministic(t *testing.T) {
	o := fleetLBTestOptions()
	o.Loads = o.Loads[:1]
	o.Parallel = 1
	seq := FleetLB(o)
	o.Parallel = 4
	par := FleetLB(o)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("FleetLB rows depend on sweep worker count")
	}
}
