package experiments

import (
	"math/rand"

	"umanycore/internal/cachesim"
	"umanycore/internal/stats"
	"umanycore/internal/sweep"
	"umanycore/internal/sweepcache"
	"umanycore/internal/uarch"
	"umanycore/internal/workload"
)

// Fig1 reproduces Figure 1: speedups of four published microarchitectural
// optimizations on monolithic vs microservice workloads.
func Fig1(o Options) []uarch.Fig1Result {
	o = o.normalized()
	return uarch.RunFig1(150000, o.Seed)
}

// Fig2 reproduces Figure 2: the CDF of requests-per-second received by a
// server in the Alibaba-like trace. Returns CDF points over [0, 2000] RPS.
func Fig2(o Options) []stats.CDFPoint {
	o = o.normalized()
	g := workload.NewTraceGen(o.Seed)
	var s stats.Sample
	for _, c := range g.ServerLoad(20000) {
		s.Add(float64(c))
	}
	pts := make([]stats.CDFPoint, 0, 21)
	for x := 0.0; x <= 2000; x += 100 {
		pts = append(pts, stats.CDFPoint{X: x, P: s.CDFAt(x)})
	}
	return pts
}

// Fig4 reproduces Figure 4: the CDF of per-request CPU utilization.
func Fig4(o Options) []stats.CDFPoint {
	o = o.normalized()
	g := workload.NewTraceGen(o.Seed + 1)
	var s stats.Sample
	for _, r := range g.Requests(50000) {
		s.Add(r.CPUUtil)
	}
	pts := make([]stats.CDFPoint, 0, 14)
	for x := 0.0; x <= 0.65; x += 0.05 {
		pts = append(pts, stats.CDFPoint{X: x, P: s.CDFAt(x)})
	}
	return pts
}

// Fig5 reproduces Figure 5: the CDF of RPC invocations per request.
func Fig5(o Options) []stats.CDFPoint {
	o = o.normalized()
	g := workload.NewTraceGen(o.Seed + 2)
	var s stats.Sample
	for _, r := range g.Requests(50000) {
		s.Add(float64(r.RPCs))
	}
	pts := make([]stats.CDFPoint, 0, 41)
	for x := 0.0; x <= 40; x += 2 {
		pts = append(pts, stats.CDFPoint{X: x, P: s.CDFAt(x)})
	}
	return pts
}

// Fig8 reproduces Figure 8: handler-handler and handler-init footprint
// sharing at page and line granularity.
func Fig8(o Options) []workload.Fig8Row {
	o = o.normalized()
	return workload.RunFig8(workload.DefaultFootprintConfig(), 50, o.Seed)
}

// Fig9Row is one bar of Figure 9: the hit rate of one structure for one
// access class.
type Fig9Row struct {
	Class     string // "Data" or "Instructions"
	Structure string // L1TLB, L1Cache, L2TLB, L2Cache
	HitRate   float64
}

// fig9DataSide simulates the data-access stream: the 0.5MB handler working
// set of §3.5, plus occasional reads of the instance's initialization state
// (the ~16MB snapshot image handlers share read-only) — the accesses that
// exercise the L2 TLB and L2 cache.
func fig9DataSide(seed int64, n int) []Fig9Row {
	r := rand.New(rand.NewSource(seed))
	dTrace := uarch.GenDataTrace(uarch.Microservice, n, r)
	const instanceState = 16 << 20
	for i := range dTrace {
		if r.Float64() < 0.02 {
			dTrace[i].Addr = cachesim.Addr(1<<28 + r.Intn(instanceState))
		}
	}
	l1d := cachesim.New(cachesim.Config{Name: "L1D", SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, RoundTripCycles: 2}, nil)
	l2d := cachesim.New(cachesim.Config{Name: "L2D", SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, RoundTripCycles: 16}, nil)
	l1dtlb := cachesim.NewTLB(cachesim.TLBConfig{Name: "L1DTLB", Entries: 256, Ways: 4, RoundTripCycles: 2})
	l2dtlb := cachesim.NewTLB(cachesim.TLBConfig{Name: "L2DTLB", Entries: 2048, Ways: 12, RoundTripCycles: 12})
	for _, a := range dTrace {
		if !l1dtlb.Access(a.Addr) {
			l2dtlb.Access(a.Addr)
		}
		if !l1d.Access(a.Addr) {
			l2d.Access(a.Addr)
		}
	}
	return []Fig9Row{
		{"Data", "L1TLB", l1dtlb.Stats().HitRate()},
		{"Data", "L1Cache", l1d.Stats.HitRate()},
		{"Data", "L2TLB", l2dtlb.Stats().HitRate()},
		{"Data", "L2Cache", l2d.Stats.HitRate()},
	}
}

// fig9InstrSide simulates the instruction stream: the handler code
// footprint, plus rare excursions into the instance's shared library/runtime
// code (several MB).
func fig9InstrSide(seed int64, n int) []Fig9Row {
	r := rand.New(rand.NewSource(seed))
	iTrace := uarch.GenInstrTrace(uarch.Microservice, n, r)
	const libraryCode = 8 << 20
	for i := range iTrace {
		if r.Float64() < 0.015 {
			iTrace[i] = cachesim.Addr(1<<29 + r.Intn(libraryCode)&^63)
		}
	}
	l1i := cachesim.New(cachesim.Config{Name: "L1I", SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, RoundTripCycles: 2}, nil)
	l2i := cachesim.New(cachesim.Config{Name: "L2I", SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, RoundTripCycles: 16}, nil)
	l1itlb := cachesim.NewTLB(cachesim.TLBConfig{Name: "L1ITLB", Entries: 128, Ways: 4, RoundTripCycles: 2})
	l2itlb := cachesim.NewTLB(cachesim.TLBConfig{Name: "L2ITLB", Entries: 1024, Ways: 8, RoundTripCycles: 12})
	for _, a := range iTrace {
		if !l1itlb.Access(a) {
			l2itlb.Access(a)
		}
		if !l1i.Access(a) {
			l2i.Access(a)
		}
	}
	return []Fig9Row{
		{"Instructions", "L1TLB", l1itlb.Stats().HitRate()},
		{"Instructions", "L1Cache", l1i.Stats.HitRate()},
		{"Instructions", "L2TLB", l2itlb.Stats().HitRate()},
		{"Instructions", "L2Cache", l2i.Stats.HitRate()},
	}
}

// Fig9 reproduces Figure 9: L1/L2 TLB and cache hit rates for microservice
// handler access streams on the Table 2 hierarchy. The data and instruction
// sides are independent trace simulations with their own derived streams, so
// they run as two sweep jobs.
func Fig9(o Options) []Fig9Row {
	o = o.normalized()
	sides := []fig9Side{
		{"data", o.jobSeed("fig9/data"), fig9TraceLen},
		{"instr", o.jobSeed("fig9/instr"), fig9TraceLen},
	}
	parts := sweep.MapCached(o.Parallel, sides,
		fig9Pre,
		fig9Codec,
		func(_ int, s fig9Side) []Fig9Row {
			if s.Name == "data" {
				return fig9DataSide(s.Seed, s.N)
			}
			return fig9InstrSide(s.Seed, s.N)
		})
	return append(parts[0], parts[1]...)
}

// fig9TraceLen is the per-side trace length.
const fig9TraceLen = 400000

// fig9Side is one cached Fig9 cell: which stream, its derived seed, and the
// trace length — everything the side function reads.
type fig9Side struct {
	Name string
	Seed int64
	N    int
}

func fig9Pre(_ int, s fig9Side) []byte {
	return sweepcache.NewKey("fig9/rows").Any("side", s).Preimage()
}
