//go:build race

package experiments

// raceEnabled reports whether this test binary was built with -race, so
// tests whose cost (not concurrency) is the point can skip the ~20x
// race-detector slowdown. Concurrency coverage does not depend on them:
// every parallel path has a small racing test that stays enabled.
const raceEnabled = true
