package experiments

import (
	"testing"

	"umanycore/internal/sim"
)

func whatIfTestOptions() Options {
	o := DefaultOptions().Quick()
	o.Duration = 60 * sim.Millisecond
	o.Warmup = 10 * sim.Millisecond
	o.Loads = []float64{3000}
	return o
}

// TestWhatIfFigure checks the causal-profiling study's structure: both
// architectures, the full stage×factor grid, monotone factor ladders per
// stage, and at least one speedup that actually buys tail latency.
func TestWhatIfFigure(t *testing.T) {
	rows := WhatIf(whatIfTestOptions())
	const stages, factors = 6, 4
	if want := 2 * stages * factors; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	archs := map[string]int{}
	anyPayoff := false
	for _, r := range rows {
		archs[r.Arch]++
		if r.BaseP99Micros <= 0 {
			t.Fatalf("degenerate baseline in row %+v", r)
		}
		if r.PayoffP99 > 0.01 {
			anyPayoff = true
		}
	}
	if archs["ScaleOut"] != stages*factors || archs["uManycore"] != stages*factors {
		t.Fatalf("arch split = %v", archs)
	}
	if !anyPayoff {
		t.Fatal("no virtual speedup bought any tail latency")
	}
}
