package experiments

import (
	"umanycore/internal/machine"
	"umanycore/internal/sched"
	"umanycore/internal/workload"
)

// Fig3Row is one x-axis point of Figure 3: the queue-count sweep on the
// 1024-core ScaleOut manycore at 50K RPS.
type Fig3Row struct {
	Queues          int
	AvgMicros       float64
	TailMicros      float64
	AvgStealMicros  float64
	TailStealMicros float64
}

// appNamed fetches one DeathStarBench-style app by name.
func appNamed(name string) *workload.App {
	for _, a := range workload.SocialNetworkApps() {
		if a.Name == name {
			return a
		}
	}
	panic("no app " + name)
}

// fig3App is the workload for the queue sweep. CPost's op rate puts the
// single shared contended lock near its saturation point at 50K RPS (the
// §3.2 "synchronization overhead" extreme) while whole-tree pinning exposes
// imbalance at the per-core-queue extreme.
func fig3App() *workload.App { return appNamed("CPost") }

// fig7App is the ICN-study workload: CPost, the call-heaviest tree,
// maximal ICN traffic.
func fig7App() *workload.App { return appNamed("CPost") }

// fig6App is the workload for the context-switch sweep; its blocking rate
// matches the SocialNetwork application the paper names.
func fig6App() *workload.App { return appNamed("SGraph") }

// Fig3 reproduces Figure 3: average and tail response time vs the number of
// queues (1024 per-core queues down to 1 global queue), with and without
// work stealing. Per the paper, whole requests are assigned to queues
// randomly and migrate only via stealing; queues are lock-protected FCFS
// (the "fully-centralized queue induces high synchronization overheads,
// per-core queues cause load imbalance and head-of-line blocking" story
// of §3.2).
func Fig3(o Options) []Fig3Row {
	o = o.normalized()
	app := fig3App()
	queueCounts := []int{1024, 512, 256, 128, 64, 32, 16, 8, 4, 2, 1}
	rows := make([]Fig3Row, 0, len(queueCounts))
	for _, q := range queueCounts {
		row := Fig3Row{Queues: q}
		for _, steal := range []bool{false, true} {
			cfg := machine.ScaleOutConfig()
			cfg.Domains = q
			cfg.TreeAffinity = true
			// Isolate queue-structure effects from the I/O funnel (the
			// paper studies ICN contention separately in Fig 7).
			cfg.IOViaICN = false
			cfg.Policy = sched.Policy{
				Name:          "lock-fcfs",
				CSCycles:      sched.SoftwareCSCycles,
				DequeueCycles: 100,
				EnqueueCycles: 60,
				WorkStealing:  steal,
				StealCycles:   sched.ZygOSSched().StealCycles,
			}
			res := machine.Run(cfg, o.runCfg(app, 50000))
			if steal {
				row.AvgStealMicros = res.Latency.Mean
				row.TailStealMicros = res.Latency.P99
			} else {
				row.AvgMicros = res.Latency.Mean
				row.TailMicros = res.Latency.P99
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig6Row is one context-switch-overhead point for one load level.
type Fig6Row struct {
	CSCycles int
	// NormTail is tail latency normalized to the zero-overhead run at the
	// same load, keyed by RPS.
	NormTail map[int]float64
}

// Fig6 reproduces Figure 6: the impact of context-switch overhead (0–8192
// cycles) on tail latency at 5K, 10K, and 50K RPS, on the 1024-core
// ScaleOut running the SocialNetwork app under the centralized Shinjuku
// scheduler of §4.4 (whose dispatcher performs every save/restore — the
// bottleneck the paper identifies).
func Fig6(o Options) []Fig6Row {
	o = o.normalized()
	app := fig6App()
	loads := []int{5000, 10000, 50000}
	csPoints := []int{0, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

	base := make(map[int]float64)
	for _, rps := range loads {
		cfg := machine.ScaleOutConfig()
		cfg.CentralDispatcher = true
		cfg.Policy.CSCycles = 0
		res := machine.Run(cfg, o.runCfg(app, float64(rps)))
		base[rps] = res.Latency.P99
	}
	rows := make([]Fig6Row, 0, len(csPoints))
	for _, cs := range csPoints {
		row := Fig6Row{CSCycles: cs, NormTail: make(map[int]float64)}
		for _, rps := range loads {
			cfg := machine.ScaleOutConfig()
			cfg.CentralDispatcher = true
			cfg.Policy.CSCycles = cs
			res := machine.Run(cfg, o.runCfg(app, float64(rps)))
			if base[rps] > 0 {
				row.NormTail[rps] = res.Latency.P99 / base[rps]
			}
		}
		rows = append(rows, row)
	}
	return rows
}
