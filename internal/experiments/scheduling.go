package experiments

import (
	"fmt"

	"umanycore/internal/machine"
	"umanycore/internal/sched"
	"umanycore/internal/sweep"
	"umanycore/internal/workload"
)

// Fig3Row is one x-axis point of Figure 3: the queue-count sweep on the
// 1024-core ScaleOut manycore at 50K RPS.
type Fig3Row struct {
	Queues          int
	AvgMicros       float64
	TailMicros      float64
	AvgStealMicros  float64
	TailStealMicros float64
}

// appNamed fetches one DeathStarBench-style app by name.
func appNamed(name string) *workload.App {
	for _, a := range workload.SocialNetworkApps() {
		if a.Name == name {
			return a
		}
	}
	panic("no app " + name)
}

// fig3App is the workload for the queue sweep. CPost's op rate puts the
// single shared contended lock near its saturation point at 50K RPS (the
// §3.2 "synchronization overhead" extreme) while whole-tree pinning exposes
// imbalance at the per-core-queue extreme.
func fig3App() *workload.App { return appNamed("CPost") }

// fig7App is the ICN-study workload: CPost, the call-heaviest tree,
// maximal ICN traffic.
func fig7App() *workload.App { return appNamed("CPost") }

// fig6App is the workload for the context-switch sweep; its blocking rate
// matches the SocialNetwork application the paper names.
func fig6App() *workload.App { return appNamed("SGraph") }

// Fig3 reproduces Figure 3: average and tail response time vs the number of
// queues (1024 per-core queues down to 1 global queue), with and without
// work stealing. Per the paper, whole requests are assigned to queues
// randomly and migrate only via stealing; queues are lock-protected FCFS
// (the "fully-centralized queue induces high synchronization overheads,
// per-core queues cause load imbalance and head-of-line blocking" story
// of §3.2).
func Fig3(o Options) []Fig3Row {
	o = o.normalized()
	app := fig3App()
	queueCounts := []int{1024, 512, 256, 128, 64, 32, 16, 8, 4, 2, 1}
	mkCfg := func(q int, steal bool) machine.Config {
		cfg := machine.ScaleOutConfig()
		cfg.Domains = q
		cfg.TreeAffinity = true
		// Isolate queue-structure effects from the I/O funnel (the
		// paper studies ICN contention separately in Fig 7).
		cfg.IOViaICN = false
		cfg.Policy = sched.Policy{
			Name:          "lock-fcfs",
			CSCycles:      sched.SoftwareCSCycles,
			DequeueCycles: 100,
			EnqueueCycles: 60,
			WorkStealing:  steal,
			StealCycles:   sched.ZygOSSched().StealCycles,
		}
		return cfg
	}
	// Steal/no-steal at one queue count share a seed: the pair is a
	// paired comparison over the same arrival sequence.
	mkRC := func(q int) machine.RunConfig {
		return o.runCfgKey(app, 50000, fmt.Sprintf("fig3/%d", q))
	}
	grid := sweep.MapCached2(o.Parallel, queueCounts, []bool{false, true},
		func(q int, steal bool) []byte {
			return runPre("run/result", mkCfg(q, steal), mkRC(q))
		},
		resultCodec,
		func(q int, steal bool) *machine.Result {
			return machine.Run(mkCfg(q, steal), mkRC(q))
		})
	rows := make([]Fig3Row, 0, len(queueCounts))
	for i, q := range queueCounts {
		noSteal, steal := grid[i][0], grid[i][1]
		rows = append(rows, Fig3Row{
			Queues:          q,
			AvgMicros:       noSteal.Latency.Mean,
			TailMicros:      noSteal.Latency.P99,
			AvgStealMicros:  steal.Latency.Mean,
			TailStealMicros: steal.Latency.P99,
		})
	}
	return rows
}

// Fig6Row is one context-switch-overhead point for one load level.
type Fig6Row struct {
	CSCycles int
	// NormTail is tail latency normalized to the zero-overhead run at the
	// same load, keyed by RPS.
	NormTail map[int]float64
}

// Fig6 reproduces Figure 6: the impact of context-switch overhead (0–8192
// cycles) on tail latency at 5K, 10K, and 50K RPS, on the 1024-core
// ScaleOut running the SocialNetwork app under the centralized Shinjuku
// scheduler of §4.4 (whose dispatcher performs every save/restore — the
// bottleneck the paper identifies).
func Fig6(o Options) []Fig6Row {
	o = o.normalized()
	app := fig6App()
	loads := []int{5000, 10000, 50000}
	csPoints := []int{0, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

	// One sweep over the full (CS overhead × load) grid; the zero-overhead
	// column doubles as the normalization baseline, so its NormTail is
	// exactly 1 as in the sequential path.
	mkCfg := func(cs int) machine.Config {
		cfg := machine.ScaleOutConfig()
		cfg.CentralDispatcher = true
		cfg.Policy.CSCycles = cs
		return cfg
	}
	// All CS points at one load share a seed, so the normalized tails
	// isolate the context-switch overhead from arrival noise.
	mkRC := func(rps int) machine.RunConfig {
		return o.runCfgKey(app, float64(rps), fmt.Sprintf("fig6/%d", rps))
	}
	grid := sweep.MapCached2(o.Parallel, csPoints, loads,
		func(cs, rps int) []byte {
			return runPre("run/p99", mkCfg(cs), mkRC(rps))
		},
		sweep.Float64Codec(),
		func(cs, rps int) float64 {
			return machine.Run(mkCfg(cs), mkRC(rps)).Latency.P99
		})
	rows := make([]Fig6Row, 0, len(csPoints))
	for i, cs := range csPoints {
		row := Fig6Row{CSCycles: cs, NormTail: make(map[int]float64)}
		for j, rps := range loads {
			if base := grid[0][j]; base > 0 {
				row.NormTail[rps] = grid[i][j] / base
			}
		}
		rows = append(rows, row)
	}
	return rows
}
