package experiments

import (
	"fmt"
	"math"
	"testing"

	"umanycore/internal/machine"
	"umanycore/internal/sim"
	"umanycore/internal/sweep"
	"umanycore/internal/telemetry"
)

// TestSketchMatchesExactOnFigureCells cross-checks the streaming quantile
// sketch against the exact latency sample on the figure drivers' own cells:
// every §5 architecture × a fan-out-light and a fan-out-heavy app × a low
// and a high load point, each under the standard cell-keyed seed. For every
// cell and every checked quantile the sketch must land within its
// documented relative-error bound (Sketch.Alpha) of Sample's nearest-rank
// quantile — the guarantee that lets long sweeps stream sketches instead of
// retaining raw samples.
func TestSketchMatchesExactOnFigureCells(t *testing.T) {
	o := DefaultOptions().Quick().normalized()
	o.Duration = 60 * sim.Millisecond
	o.Warmup = 10 * sim.Millisecond
	o.Drain = 300 * sim.Millisecond

	type cell struct {
		cfg machine.Config
		app int
		rps float64
	}
	var cells []cell
	for _, cfg := range archSet() {
		for _, app := range []int{0, 6} { // Text (shallow), CPost (deep + storage)
			for _, rps := range []float64{5000, 15000} {
				cells = append(cells, cell{cfg, app, rps})
			}
		}
	}
	type outcome struct {
		key  string
		errs []string
		n    uint64
	}
	results := sweep.Map(0, cells, func(_ int, c cell) outcome {
		app := o.Apps[c.app]
		key := fmt.Sprintf("sketchx/%s/%s/%.0f", c.cfg.Name, app.Name, c.rps)
		rc := o.runCfgKey(app, c.rps, key)
		rc.Telemetry = telemetry.DefaultOptions()
		res := machine.Run(c.cfg, rc)
		out := outcome{key: key, n: res.Telemetry.Sketch.N()}
		if res.Telemetry.Sketch.N() != uint64(res.Sample.N()) {
			out.errs = append(out.errs, fmt.Sprintf("sketch n=%d sample n=%d",
				res.Telemetry.Sketch.N(), res.Sample.N()))
			return out
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
			exact := res.Sample.Quantile(q)
			if exact <= 0 {
				continue
			}
			est := res.Telemetry.Sketch.Quantile(q)
			if rel := math.Abs(est-exact) / exact; rel > res.Telemetry.Sketch.Alpha() {
				out.errs = append(out.errs, fmt.Sprintf(
					"q=%v sketch %.3f exact %.3f rel %.4f > %.4f", q, est, exact, rel,
					res.Telemetry.Sketch.Alpha()))
			}
		}
		return out
	})
	for _, r := range results {
		if r.n == 0 {
			t.Errorf("%s: empty sketch", r.key)
		}
		for _, e := range r.errs {
			t.Errorf("%s: %s", r.key, e)
		}
	}
}
