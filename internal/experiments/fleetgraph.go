package experiments

import (
	"fmt"

	"umanycore/internal/fleet"
	"umanycore/internal/machine"
	"umanycore/internal/svcgraph"
	"umanycore/internal/sweep"
	"umanycore/internal/sweepcache"
	"umanycore/internal/workload"
)

// FleetGraphRow is one (placement policy, DAG shape) point of the
// service-graph study: end-to-end tail when an explicit layered service DAG
// is placed across a coupled fleet, so every cross-edge RPC is a real
// cross-server call through the PDES fabric instead of a coin-flip.
type FleetGraphRow struct {
	// Placement names the placement policy (colocated | spread | random).
	Placement string
	// Depth and Fanout describe the layered DAG (svcgraph.Layered).
	Depth  int
	Fanout int
	// Services is the DAG's node count.
	Services int
	// PerServerRPS is the offered load divided by the fleet size.
	PerServerRPS float64
	// TotalRPS is the fleet-wide offered load.
	TotalRPS   float64
	MeanMicros float64
	P99Micros  float64
	TailToAvg  float64
	Completed  uint64
	Rejected   uint64
	// RejectRate is Rejected/(Completed+Rejected).
	RejectRate float64
	// RemoteServed counts cross-edge child RPCs shipped between servers —
	// zero under colocation (every callee is local), and the bulk of the
	// call tree under spread placement.
	RemoteServed uint64
}

// graphShape is one layered-DAG point of the sweep.
type graphShape struct {
	Levels, Fanout int
}

// fleetGraphServers is the study's fleet size; the shapes are chosen so the
// deepest DAG still spans every server under spread placement.
const fleetGraphServers = 4

// fleetGraphShapes are the swept DAGs: all at least 3 levels deep with
// multi-child call stages, from a narrow 7-service tree to a 21-service
// fan-out-4 graph.
var fleetGraphShapes = []graphShape{{3, 2}, {4, 2}, {3, 4}}

// fleetGraphPlacements are the compared placement policies, most-local
// first: colocated replicates every service on every server (no cross-edge
// leaves a machine), spread stripes services round-robin (almost every edge
// crosses), random samples 2 replicas per service.
var fleetGraphPlacements = []string{"colocated", "spread", "random"}

// graphPlacement builds the placement spec for one (policy, app) cell. The
// random policy's replica draw is seeded from the experiment seed via the
// cell's identity, never from execution order.
func graphPlacement(o Options, policy string, services int) *svcgraph.Spec {
	switch policy {
	case "colocated":
		return svcgraph.Colocated(services, fleetGraphServers)
	case "spread":
		return svcgraph.Spread(services, fleetGraphServers)
	case "random":
		return svcgraph.Random(services, fleetGraphServers, 2,
			o.jobSeed(fmt.Sprintf("fleetgraph/placement/%d", services)))
	default:
		panic("no placement policy " + policy)
	}
}

// FleetGraph compares service placements on a coupled fleet driving explicit
// layered service DAGs: the same arrival sequence routed over a graph whose
// cross-server edges are determined by where each service actually runs.
// Colocation keeps the whole call tree on the ingress server; spreading
// turns nearly every edge into a fabric round trip, buying per-service
// isolation at the price of inter-server latency on the critical path. Each
// coupled fleet is one simulation; the sweep parallelizes across cells, and
// rows are bit-identical for any Parallel or ShardWorkers value.
func FleetGraph(o Options) []FleetGraphRow {
	o = o.normalized()
	perServer := o.Loads[0]
	total := perServer * fleetGraphServers
	type cell struct {
		fc   fleet.Config
		app  *workload.App
		seed int64
	}
	mkCell := func(policy string, shape graphShape) cell {
		app := svcgraph.Layered(shape.Levels, shape.Fanout, 80)
		fc := fleet.DefaultConfig(machine.UManycoreConfig())
		fc.Servers = fleetGraphServers
		fc.LB = "rr"
		fc.ShardWorkers = o.ShardWorkers
		fc.Graph = graphPlacement(o, policy, len(app.Catalog.Services))
		// Placements at one shape share a seed: the comparison is paired
		// over identical arrival processes.
		return cell{
			fc:   fc,
			app:  app,
			seed: o.jobSeed(fmt.Sprintf("fleetgraph/d%df%d", shape.Levels, shape.Fanout)),
		}
	}
	grid := sweep.MapCached2(o.Parallel, fleetGraphPlacements, fleetGraphShapes,
		func(policy string, shape graphShape) []byte {
			c := mkCell(policy, shape)
			rc := o.runCfg(c.app, total)
			if rc.Obs != nil || rc.Telemetry != nil || c.fc.NewBalancer != nil {
				return nil
			}
			// Parallel and ShardWorkers are worker counts, never inputs.
			// The placement spec itself is part of fc, so each policy keys
			// its own cells.
			c.fc.Parallel = 0
			c.fc.ShardWorkers = 0
			return sweepcache.NewKey("fleet/result").
				Any("fc", c.fc).Any("app", c.app).Float("total_rps", total).
				Any("rc", rc).Int("seed", c.seed).Preimage()
		},
		fleetCodec,
		func(policy string, shape graphShape) *fleet.Result {
			c := mkCell(policy, shape)
			return fleet.Run(c.fc, c.app, total, o.runCfg(c.app, total), c.seed)
		})
	rows := make([]FleetGraphRow, 0, len(fleetGraphPlacements)*len(fleetGraphShapes))
	for i, policy := range fleetGraphPlacements {
		for j, shape := range fleetGraphShapes {
			res := grid[i][j]
			app := svcgraph.Layered(shape.Levels, shape.Fanout, 80)
			rows = append(rows, FleetGraphRow{
				Placement:    policy,
				Depth:        shape.Levels,
				Fanout:       shape.Fanout,
				Services:     len(app.Catalog.Services),
				PerServerRPS: perServer,
				TotalRPS:     res.TotalRPS,
				MeanMicros:   res.Latency.Mean,
				P99Micros:    res.Latency.P99,
				TailToAvg:    res.TailToAvg,
				Completed:    res.Completed,
				Rejected:     res.Rejected,
				RejectRate:   rejectRate(res.Completed, res.Rejected),
				RemoteServed: res.RemoteServed,
			})
		}
	}
	return rows
}
