package experiments

import (
	"fmt"

	"umanycore/internal/machine"
	"umanycore/internal/sweep"
	"umanycore/internal/workload"
)

// Fig20Row is one (distribution, load) bar group of Figure 20: the
// synthetic-benchmark tails on the three architectures.
type Fig20Row struct {
	Dist string
	RPS  float64
	// Absolute tails in microseconds.
	ServerClassTail float64
	ScaleOutTail    float64
	UManycoreTail   float64
}

// Fig20 reproduces Figure 20: synthetic single-service benchmarks with
// exponential, lognormal, and bimodal service-time distributions at
// 5/10/15K RPS. Service times are μs-scale (mean 10μs with 3 blocking
// calls, within the paper's 2–6 range) — the regime where scheduling and
// RPC-stack overheads dominate and the paper's absolute tails (8.9–554μs on
// ServerClass) live.
func Fig20(o Options) []Fig20Row {
	o = o.normalized()
	type cell struct {
		dist string
		app  *workload.App
		rps  float64
		cfg  machine.Config
	}
	var jobs []cell
	for _, dist := range []string{"exponential", "lognormal", "bimodal"} {
		app, err := workload.SyntheticApp(dist, 10, 3)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		for _, rps := range o.Loads {
			for _, cfg := range archSet() {
				jobs = append(jobs, cell{dist: dist, app: app, rps: rps, cfg: cfg})
			}
		}
	}
	// The three architectures at one (distribution, load) point share a
	// seed, keeping the bar-group comparison paired.
	mkRC := func(j cell) machine.RunConfig {
		return o.runCfgKey(j.app, j.rps, fmt.Sprintf("fig20/%s/%g", j.dist, j.rps))
	}
	tails := sweep.MapCached(o.Parallel, jobs,
		func(_ int, j cell) []byte {
			return runPre("run/p99", j.cfg, mkRC(j))
		},
		sweep.Float64Codec(),
		func(_ int, j cell) float64 {
			return machine.Run(j.cfg, mkRC(j)).Latency.P99
		})
	var rows []Fig20Row
	for i, j := range jobs {
		if i%len(archSet()) == 0 {
			rows = append(rows, Fig20Row{Dist: j.dist, RPS: j.rps})
		}
		row := &rows[len(rows)-1]
		switch j.cfg.Name {
		case "ServerClass-40":
			row.ServerClassTail = tails[i]
		case "ScaleOut":
			row.ScaleOutTail = tails[i]
		case "uManycore":
			row.UManycoreTail = tails[i]
		}
	}
	return rows
}
