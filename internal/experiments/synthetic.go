package experiments

import (
	"fmt"

	"umanycore/internal/machine"
	"umanycore/internal/workload"
)

// Fig20Row is one (distribution, load) bar group of Figure 20: the
// synthetic-benchmark tails on the three architectures.
type Fig20Row struct {
	Dist string
	RPS  float64
	// Absolute tails in microseconds.
	ServerClassTail float64
	ScaleOutTail    float64
	UManycoreTail   float64
}

// Fig20 reproduces Figure 20: synthetic single-service benchmarks with
// exponential, lognormal, and bimodal service-time distributions at
// 5/10/15K RPS. Service times are μs-scale (mean 10μs with 3 blocking
// calls, within the paper's 2–6 range) — the regime where scheduling and
// RPC-stack overheads dominate and the paper's absolute tails (8.9–554μs on
// ServerClass) live.
func Fig20(o Options) []Fig20Row {
	o = o.normalized()
	var rows []Fig20Row
	for _, dist := range []string{"exponential", "lognormal", "bimodal"} {
		app, err := workload.SyntheticApp(dist, 10, 3)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		for _, rps := range o.Loads {
			row := Fig20Row{Dist: dist, RPS: rps}
			for _, cfg := range archSet() {
				res := machine.Run(cfg, o.runCfg(app, rps))
				switch cfg.Name {
				case "ServerClass-40":
					row.ServerClassTail = res.Latency.P99
				case "ScaleOut":
					row.ScaleOutTail = res.Latency.P99
				case "uManycore":
					row.UManycoreTail = res.Latency.P99
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}
