package experiments

import (
	"fmt"

	"umanycore/internal/fleet"
	"umanycore/internal/machine"
	"umanycore/internal/sweep"
	"umanycore/internal/sweepcache"
)

// FleetScaleRow is one (policy, fleet size) point of the scale study: the
// fleet tail under a real routing policy as the fleet grows from a rack's
// worth of μManycore servers toward cluster scale.
type FleetScaleRow struct {
	Policy  string
	Servers int
	// TotalRPS is the fleet-wide offered load (per-server load is fixed
	// across sizes, so the x-axis is purely fleet size).
	TotalRPS   float64
	MeanMicros float64
	P99Micros  float64
	TailToAvg  float64
	// Completed/Rejected split responded requests; latency columns cover
	// Completed only, so RejectRate is what keeps heavy shedding from
	// masquerading as speed.
	Completed  uint64
	Rejected   uint64
	RejectRate float64
	// RejectParity marks whether every policy at this fleet size responded
	// at (near-)equal reject rates; false flags a latency comparison made
	// on unequal goodput.
	RejectParity bool
	// RemoteServed counts cross-server child RPCs shipped between servers.
	RemoteServed uint64
	// EventsProcessed is the run's total fired simulation events — the
	// numerator of the PDES events/second throughput metric.
	EventsProcessed uint64
}

// fleetScaleConfig is the scale study's fleet: n μManycore servers with one
// 3× straggler per four servers — the straggler *fraction* stays constant
// as the fleet grows, so policies are compared on fleets that get bigger,
// not healthier. Cross-server traffic stays at the FleetLB study's 0.1.
func fleetScaleConfig(n int) fleet.Config {
	fc := fleet.DefaultConfig(machine.UManycoreConfig())
	fc.Servers = n
	fc.CrossServerFrac = 0.1
	fc.Slowdown = make([]float64, n)
	for s := range fc.Slowdown {
		fc.Slowdown[s] = 1
		if s%4 == 3 {
			fc.Slowdown[s] = 3
		}
	}
	return fc
}

// FleetScale sweeps the coupled fleet across o.FleetSizes at a fixed
// per-server load (the middle o.Loads point) for every balancer policy.
// This is the tail-at-scale figure: oblivious policies (rr, rand) keep
// sending every straggler its full 1/N share, so the fleet P99 stays pinned
// to straggler service time at every size, while queue-aware policies
// (least, p2c) steer around them — and the gap between p2c's two samples
// and least's full scan is only visible once the fleet is large. Each cell
// is one coupled PDES simulation (fc.ShardWorkers engines advancing
// concurrently); cells fan out across the sweep pool and rows are
// bit-identical for any Parallel or ShardWorkers value.
func FleetScale(o Options) []FleetScaleRow {
	o = o.normalized()
	app := appNamed("HomeT")
	perServer := o.Loads[len(o.Loads)/2]
	policies := fleet.Policies()
	type cell struct {
		fc    fleet.Config
		total float64
		seed  int64
	}
	mkCell := func(policy string, servers int) cell {
		fc := fleetScaleConfig(servers)
		fc.LB = policy
		fc.ShardWorkers = o.ShardWorkers
		// Policies at one size share a seed: the comparison is paired over
		// identical arrival processes.
		return cell{
			fc:    fc,
			total: perServer * float64(servers),
			seed:  o.jobSeed(fmt.Sprintf("fleetscale/%d", servers)),
		}
	}
	grid := sweep.MapCached2(o.Parallel, policies, o.FleetSizes,
		func(policy string, servers int) []byte {
			c := mkCell(policy, servers)
			rc := o.runCfg(app, c.total)
			if rc.Obs != nil || rc.Telemetry != nil || c.fc.NewBalancer != nil {
				return nil
			}
			// Worker counts are never inputs; zero them out of the key so
			// differently-parallel runs share cells.
			c.fc.Parallel = 0
			c.fc.ShardWorkers = 0
			return sweepcache.NewKey("fleet/result").
				Any("fc", c.fc).Any("app", app).Float("total_rps", c.total).
				Any("rc", rc).Int("seed", c.seed).Preimage()
		},
		fleetCodec,
		func(policy string, servers int) *fleet.Result {
			c := mkCell(policy, servers)
			return fleet.Run(c.fc, app, c.total, o.runCfg(app, c.total), c.seed)
		})
	rows := make([]FleetScaleRow, 0, len(policies)*len(o.FleetSizes))
	for i, policy := range policies {
		for j, servers := range o.FleetSizes {
			res := grid[i][j]
			rows = append(rows, FleetScaleRow{
				Policy:          policy,
				Servers:         servers,
				TotalRPS:        res.TotalRPS,
				MeanMicros:      res.Latency.Mean,
				P99Micros:       res.Latency.P99,
				TailToAvg:       res.TailToAvg,
				Completed:       res.Completed,
				Rejected:        res.Rejected,
				RejectRate:      rejectRate(res.Completed, res.Rejected),
				RemoteServed:    res.RemoteServed,
				EventsProcessed: res.EventsProcessed,
			})
		}
	}
	// Annotate each fleet-size column with reject-rate parity across
	// policies, as in FleetLB.
	for j := range o.FleetSizes {
		rates := make([]float64, len(policies))
		for i := range policies {
			rates[i] = rows[i*len(o.FleetSizes)+j].RejectRate
		}
		parity := rejectParity(rates)
		for i := range policies {
			rows[i*len(o.FleetSizes)+j].RejectParity = parity
		}
	}
	return rows
}
