package experiments

import (
	"reflect"
	"testing"

	"umanycore/internal/sim"
)

func fleetScaleTestOptions() Options {
	o := DefaultOptions().Quick()
	o.Duration = 40 * sim.Millisecond
	o.Warmup = 8 * sim.Millisecond
	o.Drain = 400 * sim.Millisecond
	o.Loads = []float64{9000}
	o.FleetSizes = []int{4, 8}
	return o
}

// TestFleetScaleSeparatesPolicies: even at small sizes, queue-aware routing
// must beat oblivious routing on the constant-straggler-fraction fleet, and
// every cell must show real cross-server traffic and event counts.
func TestFleetScaleSeparatesPolicies(t *testing.T) {
	rows := FleetScale(fleetScaleTestOptions())
	byKey := make(map[string]map[int]FleetScaleRow)
	for _, r := range rows {
		if byKey[r.Policy] == nil {
			byKey[r.Policy] = make(map[int]FleetScaleRow)
		}
		byKey[r.Policy][r.Servers] = r
		if r.P99Micros <= 0 || r.MeanMicros <= 0 || r.EventsProcessed == 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.RemoteServed == 0 {
			t.Fatalf("no cross-server coupling in row %+v", r)
		}
	}
	if len(byKey) != 4 {
		t.Fatalf("policies = %d", len(byKey))
	}
	for size := range byKey["rand"] {
		for _, aware := range []string{"p2c", "least"} {
			a, o := byKey[aware][size], byKey["rand"][size]
			if a.P99Micros > o.P99Micros {
				t.Errorf("servers=%d: %s P99 %.1fus > uniform-random %.1fus",
					size, aware, a.P99Micros, o.P99Micros)
			}
		}
	}
}

// TestFleetScaleDeterministic: rows are identical for any sweep worker
// count and any shard worker count.
func TestFleetScaleDeterministic(t *testing.T) {
	o := fleetScaleTestOptions()
	o.FleetSizes = []int{6}
	o.Parallel = 1
	o.ShardWorkers = 1
	seq := FleetScale(o)
	o.Parallel = 4
	o.ShardWorkers = 4
	par := FleetScale(o)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("FleetScale rows depend on worker counts")
	}
}

// TestFleetScale256 drives one 256-server FleetScale cell end to end — the
// scale target the sharded coupled fleet exists for. Short mode skips it;
// the arrival window is trimmed so the cell stays test-sized.
func TestFleetScale256(t *testing.T) {
	if testing.Short() {
		t.Skip("256-server coupled fleet cell")
	}
	if raceEnabled {
		// ~20s becomes minutes under -race and busts the package time
		// budget; the sharded path's race coverage lives in
		// TestFleetScaleDeterministic and internal/{fleet,pdes}.
		t.Skip("256-server cell is too slow under the race detector")
	}
	o := fleetScaleTestOptions()
	o.Duration = 10 * sim.Millisecond
	o.Warmup = 2 * sim.Millisecond
	o.Drain = 200 * sim.Millisecond
	o.Loads = []float64{6000}
	o.FleetSizes = []int{256}
	o.ShardWorkers = 4
	rows := FleetScale(o)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want one per policy", len(rows))
	}
	for _, r := range rows {
		if r.Servers != 256 || r.P99Micros <= 0 || r.RemoteServed == 0 || r.EventsProcessed == 0 {
			t.Fatalf("degenerate 256-server row: %+v", r)
		}
	}
}
