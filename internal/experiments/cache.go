package experiments

import (
	"encoding/json"
	"fmt"
	"math"

	"umanycore/internal/fleet"
	"umanycore/internal/machine"
	"umanycore/internal/stats"
	"umanycore/internal/sweep"
	"umanycore/internal/sweepcache"
)

// Every grid driver funnels its sweep cells through these preimage/codec
// pairs, so any installed cell cache (umbench -cache) transparently skips
// cells it has already simulated. A cell's preimage canonically encodes
// everything the cell reads — the machine (or fleet) config and the exact
// RunConfig including the app catalog, mix, derived seed and measurement
// windows — under a driver tag that names the payload schema. Worker counts
// (Options.Parallel, fleet.Config.Parallel) never enter a preimage: cached
// results must be bit-identical across -parallel values, like the sweeps
// that produce them.
//
// Driver tags double as payload-schema names. Cells that run the same
// computation with the same inputs share entries across figures (the e2e
// grid, Fig 15's ladder and §6.8 all store "run/result" cells), while cells
// that store a different projection of the same run ("run/p99") can never
// collide with them.

// runPre encodes one machine.Run cell. Cells with observability attached
// are uncacheable (nil preimage): their results carry run-scoped spans and
// series the payload codec deliberately refuses.
func runPre(driver string, cfg machine.Config, rc machine.RunConfig) []byte {
	if rc.Obs != nil || rc.Telemetry != nil {
		return nil
	}
	return sweepcache.NewKey(driver).Any("cfg", cfg).Any("rc", rc).Preimage()
}

// resultCodec carries full *machine.Result cells ("run/result").
var resultCodec = sweep.CellCodec[*machine.Result]{
	Encode: machine.EncodeResult,
	Decode: machine.DecodeResult,
}

// fleetCodec carries coupled-fleet cells ("fleet/result").
var fleetCodec = sweep.CellCodec[*fleet.Result]{
	Encode: fleet.EncodeResult,
	Decode: fleet.DecodeResult,
}

// fig9Codec carries the Figure 9 hit-rate rows ("fig9/rows").
var fig9Codec = sweep.CellCodec[[]Fig9Row]{
	Encode: encodeFig9Rows,
	Decode: decodeFig9Rows,
}

func encodeFig9Rows(rows []Fig9Row) ([]byte, error) {
	objs := make([][]byte, len(rows))
	for i, r := range rows {
		if math.IsNaN(r.HitRate) || math.IsInf(r.HitRate, 0) {
			return nil, fmt.Errorf("experiments: non-finite hit rate for %s/%s", r.Class, r.Structure)
		}
		var o stats.JSONObject
		o.Str("class", r.Class).Str("structure", r.Structure).Float("hit_rate", r.HitRate)
		objs[i] = o.Bytes()
	}
	var o stats.JSONObject
	o.RawArr("rows", objs)
	return o.Bytes(), nil
}

func decodeFig9Rows(b []byte) ([]Fig9Row, error) {
	var m struct {
		Rows []struct {
			Class     string  `json:"class"`
			Structure string  `json:"structure"`
			HitRate   float64 `json:"hit_rate"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("experiments: decoding cached fig9 rows: %w", err)
	}
	rows := make([]Fig9Row, len(m.Rows))
	for i, r := range m.Rows {
		rows[i] = Fig9Row{Class: r.Class, Structure: r.Structure, HitRate: r.HitRate}
	}
	return rows, nil
}
