package experiments

import (
	"fmt"

	"umanycore/internal/machine"
	"umanycore/internal/whatif"
)

// WhatIfRow is one (arch, stage, factor) point of the causal-profiling
// study: what the tail actually does when a pipeline stage's cost is
// virtually scaled, next to what descriptive blame predicted.
type WhatIfRow struct {
	Arch string `json:"arch"`
	// Stage ran at Factor times its configured cost in this variant.
	Stage  string  `json:"stage"`
	Factor float64 `json:"factor"`
	// BaseP99Micros / P99Micros are the paired-seed baseline and variant
	// tails.
	BaseP99Micros float64 `json:"base_p99_us"`
	P99Micros     float64 `json:"p99_us"`
	// DMean/DP50/DP99/DP999 are variant minus baseline in microseconds.
	DMeanMicros float64 `json:"d_mean_us"`
	DP50Micros  float64 `json:"d_p50_us"`
	DP99Micros  float64 `json:"d_p99_us"`
	DP999Micros float64 `json:"d_p999_us"`
	// BlameShare is the stage's share of the baseline analyzed tail's
	// critical path; PayoffP99 the fractional p99 reduction the speedup
	// actually bought. Their rankings disagreeing is the figure's point.
	BlameShare float64 `json:"blame_share"`
	PayoffP99  float64 `json:"payoff_p99"`
	// TopMover names the stage whose critical-path share migrated most
	// (signed, in share points) under this speedup.
	TopMover           string  `json:"top_mover"`
	TopMoverDeltaShare float64 `json:"top_mover_d_share"`
}

// WhatIf runs the causal-profiling grid (internal/whatif) on the coupled
// ScaleOut and uManycore machines at the study's top per-server load: every
// accelerable stage × the default factor ladder, paired seeds per arch.
// ScaleOut is the interesting subject — its software taxes sit in queueing
// feedback loops, so blame share and actual payoff rank differently —
// while uManycore shows what remains once the taxes are in hardware. Cells
// run through the sweep cache; rows are bit-identical for any Parallel or
// ShardWorkers value.
func WhatIf(o Options) []WhatIfRow {
	o = o.normalized()
	app := appNamed("HomeT")
	rps := o.Loads[len(o.Loads)-1]
	var rows []WhatIfRow
	for _, cfg := range []machine.Config{
		withFleetCoupling(machine.ScaleOutConfig()),
		withFleetCoupling(machine.UManycoreConfig()),
	} {
		rep, err := whatif.Run(whatif.Target{
			Machine: cfg,
			App:     app,
			RPS:     rps,
			RC: machine.RunConfig{
				Duration: o.Duration,
				Warmup:   o.Warmup,
				Drain:    o.Drain,
			},
			Seed: o.jobSeed(fmt.Sprintf("whatif/%s", cfg.Name)),
		}, whatif.Options{Parallel: o.Parallel})
		if err != nil {
			// The target and options are fixed above; an error here is a
			// programming mistake, not an input problem.
			panic(fmt.Sprintf("experiments: what-if grid: %v", err))
		}
		for _, r := range rep.Rows {
			row := WhatIfRow{
				Arch:          cfg.Name,
				Stage:         r.Stage.String(),
				Factor:        r.Factor,
				BaseP99Micros: rep.Baseline.Latency.P99,
				P99Micros:     r.Cell.Latency.P99,
				DMeanMicros:   r.DMeanUS,
				DP50Micros:    r.DP50US,
				DP99Micros:    r.DP99US,
				DP999Micros:   r.DP999US,
				BlameShare:    r.BlameShare,
				PayoffP99:     r.PayoffP99,
			}
			if movers := r.Diff.TopMovers(1); len(movers) > 0 {
				row.TopMover = movers[0].Stage.String()
				row.TopMoverDeltaShare = movers[0].DeltaShare
			}
			rows = append(rows, row)
		}
	}
	return rows
}
