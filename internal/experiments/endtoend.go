package experiments

import (
	"umanycore/internal/machine"
	"umanycore/internal/power"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
	"umanycore/internal/sweep"
	"umanycore/internal/sweepcache"
	"umanycore/internal/workload"
)

// E2ERow is one (application, load, architecture) cell of the end-to-end
// grid behind Figures 14 (tail), 16 (average) and 17 (tail-to-average).
// Per §5, the server receives the full SocialNetwork request mix at the
// given total RPS; each row reports one request type's latency within it.
// Latency carries the full per-type summary; AvgMicros, TailMicros and
// Completed are its Mean/P99/N kept as plain columns for the text tables,
// so the JSON encoding elides them (Summary marshals with a stable field
// order shared by umprof and umbench).
type E2ERow struct {
	App         string        `json:"app"`
	RPS         float64       `json:"rps"`
	Arch        string        `json:"arch"`
	Latency     stats.Summary `json:"latency"`
	AvgMicros   float64       `json:"-"`
	TailMicros  float64       `json:"-"`
	TailToAvg   float64       `json:"p99_to_avg"`
	Utilization float64       `json:"util"`
	Completed   uint64        `json:"-"`
	Unfinished  int64         `json:"unfinished"`
}

// mixedRun drives one machine with the SocialNetwork mix at totalRPS, its
// seed keyed by the (arch, load) cell.
func mixedRun(cfg machine.Config, o Options, totalRPS float64) *machine.Result {
	return mixedRunAt(cfg, o, totalRPS, o.Duration)
}

// EndToEnd runs the full §6.1–§6.4 grid: every architecture × load, with
// per-request-type rows extracted from the mixed run. Cells are independent
// simulations, so they fan out over the sweep pool; rows come back in grid
// order (arch-major, then load, then root ID) for any worker count, and an
// installed cell cache skips cells simulated by a previous run.
func EndToEnd(o Options) []E2ERow {
	o = o.normalized()
	catalog := o.Apps[0].Catalog
	grid := sweep.MapCached2(o.Parallel, archSet(), o.Loads,
		func(cfg machine.Config, rps float64) []byte {
			return runPre("run/result", cfg, o.mixedRC(rps, o.Duration))
		},
		resultCodec,
		func(cfg machine.Config, rps float64) *machine.Result {
			return mixedRun(cfg, o, rps)
		})
	var rows []E2ERow
	for i, cfg := range archSet() {
		for j, rps := range o.Loads {
			res := grid[i][j]
			for _, root := range sortedRoots(res.PerRoot) {
				sum := res.PerRoot[root]
				ratio := 0.0
				if sum.Mean > 0 {
					ratio = sum.P99 / sum.Mean
				}
				rows = append(rows, E2ERow{
					App:         catalog.Service(root).Name,
					RPS:         rps,
					Arch:        cfg.Name,
					Latency:     sum,
					AvgMicros:   sum.Mean,
					TailMicros:  sum.P99,
					TailToAvg:   ratio,
					Utilization: res.Utilization,
					Completed:   uint64(sum.N),
					Unfinished:  res.Unfinished,
				})
			}
		}
	}
	return rows
}

// Reduction summarizes a figure's headline ratios: the mean across apps of
// baseline/μManycore at each load.
type Reduction struct {
	Baseline string
	Metric   string // "tail" or "avg"
	// ByLoad maps RPS -> mean ratio across apps.
	ByLoad map[float64]float64
}

// Reductions computes the Fig 14/16 headline numbers ("μManycore reduces
// the tail latency over ServerClass by 6.3×, 8.3×, and 16.7×...") from an
// EndToEnd grid.
func Reductions(rows []E2ERow, metric string) []Reduction {
	get := func(r E2ERow) float64 {
		if metric == "avg" {
			return r.AvgMicros
		}
		return r.TailMicros
	}
	type key struct {
		app, arch string
		rps       float64
	}
	cell := make(map[key]float64)
	loads := map[float64]bool{}
	apps := map[string]bool{}
	for _, r := range rows {
		cell[key{r.App, r.Arch, r.RPS}] = get(r)
		loads[r.RPS] = true
		apps[r.App] = true
	}
	var out []Reduction
	for _, base := range []string{"ServerClass-40", "ScaleOut"} {
		red := Reduction{Baseline: base, Metric: metric, ByLoad: map[float64]float64{}}
		for rps := range loads {
			var ratios []float64
			for app := range apps {
				b := cell[key{app, base, rps}]
				u := cell[key{app, "uManycore", rps}]
				if b > 0 && u > 0 {
					ratios = append(ratios, b/u)
				}
			}
			red.ByLoad[rps] = stats.Mean(ratios)
		}
		out = append(out, red)
	}
	return out
}

// Fig18Row is one request type's QoS-bounded maximum throughput per
// architecture: the highest total mix RPS at which this type's P99 stays
// within 5× its contention-free average.
type Fig18Row struct {
	App    string
	Arch   string
	MaxRPS float64
}

// Fig18 reproduces Figure 18. The searched request types are restricted to
// o.Apps (the full default suite covers all eight); the offered load is
// always the full mix. The per-(arch, type) binary searches are independent,
// so each runs as one sweep job (its probes stay sequential — a search is
// inherently iterative).
func Fig18(o Options) []Fig18Row {
	o = o.normalized()
	catalog := o.Apps[0].Catalog
	wanted := map[int]bool{}
	for _, a := range o.Apps {
		wanted[a.Root] = true
	}
	mix := workload.SocialNetworkMix()

	// Stage 1: contention-free per-type averages, one run per architecture.
	archs := archSet()
	cfRuns := sweep.MapCached(o.Parallel, archs,
		func(_ int, cfg machine.Config) []byte {
			return runPre("run/result", cfg, o.mixedRC(100, 2*sim.Second))
		},
		resultCodec,
		func(_ int, cfg machine.Config) *machine.Result {
			return mixedRunAt(cfg, o, 100, 2*sim.Second)
		})

	// Stage 2: one QoS search per (architecture, request type).
	type searchJob struct {
		cfg   machine.Config
		root  int
		limit float64
		hiRPS float64
	}
	var jobs []searchJob
	for i, cfg := range archs {
		limits := map[int]float64{}
		for root, sum := range cfRuns[i].PerRoot {
			limits[root] = 5 * sum.Mean
		}
		hi := 400000.0
		if cfg.Name == "ServerClass-40" {
			hi = 80000
		}
		for _, e := range mix {
			if !wanted[e.Root] {
				continue
			}
			jobs = append(jobs, searchJob{cfg: cfg, root: e.Root, limit: limits[e.Root], hiRPS: hi})
		}
	}
	maxes := sweep.MapCached(o.Parallel, jobs,
		func(_ int, j searchJob) []byte {
			// The whole binary search is one cell: its probes are an
			// iterative refinement, so the cacheable unit is the search
			// outcome. Everything a probe reads is in the preimage — the
			// searched config, the QoS limit from stage 1, the search
			// bounds, and the probe RunConfig (rps 0: the search sets it).
			rc := o.mixedRC(0, o.Duration)
			if rc.Obs != nil || rc.Telemetry != nil {
				return nil
			}
			return sweepcache.NewKey("fig18/search").
				Any("cfg", j.cfg).
				Int("root", int64(j.root)).
				Float("limit", j.limit).
				Float("lo", fig18SearchLoRPS).
				Float("hi", j.hiRPS).
				Any("rc", rc).
				Preimage()
		},
		sweep.Float64Codec(),
		func(_ int, j searchJob) float64 {
			ok := func(rps float64) bool {
				res := mixedRunAt(j.cfg, o, rps, o.Duration)
				bad := float64(res.Rejected) + float64(res.Unfinished)
				if res.Completed == 0 || bad > 0.01*float64(res.Submitted) {
					return false
				}
				sum, okRoot := res.PerRoot[j.root]
				return okRoot && sum.N > 0 && sum.P99 <= j.limit
			}
			return binarySearchMax(ok, fig18SearchLoRPS, j.hiRPS)
		})
	rows := make([]Fig18Row, len(jobs))
	for i, j := range jobs {
		rows[i] = Fig18Row{App: catalog.Service(j.root).Name, Arch: j.cfg.Name, MaxRPS: maxes[i]}
	}
	return rows
}

// fig18SearchLoRPS is the QoS search's lower bound. It is part of every
// fig18/search cell's preimage: changing it must invalidate cached search
// outcomes.
const fig18SearchLoRPS = 2000

// mixedRC is the RunConfig of one mixed-workload cell — the single
// definition shared by the cells that execute it and the cache preimages
// that address it, so the two can never drift apart.
//
// Every cell of the mixed grid shares the base seed: the cross-arch and
// cross-load ratios the figures report are paired comparisons over the
// same arrival randomness, exactly as in the sequential driver. (A
// constant is still a pure function of the job, so the sweep determinism
// contract holds.)
func (o Options) mixedRC(rps float64, dur sim.Time) machine.RunConfig {
	rc := o.runCfg(o.Apps[0], rps)
	rc.Duration = dur
	rc.Mix = workload.SocialNetworkMix()
	return rc
}

func mixedRunAt(cfg machine.Config, o Options, rps float64, dur sim.Time) *machine.Result {
	return machine.Run(cfg, o.mixedRC(rps, dur))
}

// binarySearchMax finds the largest x in [lo, hi] with ok(x), assuming ok
// is (noisily) monotone decreasing; returns lo when even lo fails.
func binarySearchMax(ok func(float64) bool, lo, hi float64) float64 {
	if !ok(lo) {
		return lo
	}
	for hi-lo > 0.06*lo {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Sec68Row is one cell of the §6.8 iso-area comparison: the 128-core
// ServerClass vs μManycore within the mixed workload.
type Sec68Row struct {
	App       string
	RPS       float64
	SC128Tail float64
	UMCTail   float64
	TailRatio float64
}

// Sec68Result bundles the iso-area study: per-app/load tails plus the
// area/power bookkeeping from the CACTI/McPAT stand-in.
type Sec68Result struct {
	Rows []Sec68Row
	// MeanTailRatio across apps and loads (paper: ≈7.3×).
	MeanTailRatio float64
	// PowerRatio of the 128-core ServerClass over μManycore (paper: 3.2×).
	PowerRatio float64
	// AreaRatio of the two packages (≈1 by construction).
	AreaRatio float64
}

// Sec68 reproduces §6.8: scale ServerClass to 128 cores (iso-area with
// μManycore) and compare tails and power.
func Sec68(o Options) Sec68Result {
	o = o.normalized()
	catalog := o.Apps[0].Catalog
	sc := withFleetCoupling(machine.ServerClassConfig(128))
	umc := withFleetCoupling(machine.UManycoreConfig())
	var out Sec68Result
	var ratios []float64
	grid := sweep.MapCached2(o.Parallel, o.Loads, []machine.Config{sc, umc},
		func(rps float64, cfg machine.Config) []byte {
			return runPre("run/result", cfg, o.mixedRC(rps, o.Duration))
		},
		resultCodec,
		func(rps float64, cfg machine.Config) *machine.Result {
			return mixedRun(cfg, o, rps)
		})
	for i, rps := range o.Loads {
		scRes, uRes := grid[i][0], grid[i][1]
		for _, root := range sortedRoots(scRes.PerRoot) {
			scSum := scRes.PerRoot[root]
			uSum, ok := uRes.PerRoot[root]
			if !ok || uSum.P99 <= 0 {
				continue
			}
			row := Sec68Row{
				App: catalog.Service(root).Name, RPS: rps,
				SC128Tail: scSum.P99, UMCTail: uSum.P99,
				TailRatio: scSum.P99 / uSum.P99,
			}
			ratios = append(ratios, row.TailRatio)
			out.Rows = append(out.Rows, row)
		}
	}
	out.MeanTailRatio = stats.Mean(ratios)
	out.PowerRatio = power.ServerClassChip(128).TotalPower() / power.UManycoreChip().TotalPower()
	out.AreaRatio = power.ServerClassChip(128).TotalArea() / power.UManycoreChip().TotalArea()
	return out
}

// appsSubset returns named apps from the default suite (helper shared by
// tests and benchmarks).
func appsSubset(names ...string) []*workload.App {
	all := workload.SocialNetworkApps()
	var out []*workload.App
	for _, n := range names {
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
			}
		}
	}
	return out
}
