package experiments

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"umanycore/internal/sim"
	"umanycore/internal/sweep"
	"umanycore/internal/sweepcache"
)

// The cache determinism battery: for every cached driver shape, a cold run
// (filling the cache), a warm run (reading it), and a verify run (reading
// AND recomputing) must produce byte-for-byte identical figure data, at one
// worker and at many. This is the property that makes -cache safe to leave
// on: a warm figure is indistinguishable from a cold one.

// cacheOptions mirrors determinismOptions but trimmed further — the battery
// runs each driver up to six times.
func cacheOptions(parallel int) Options {
	o := DefaultOptions()
	o.Duration = 40 * sim.Millisecond
	o.Warmup = 10 * sim.Millisecond
	o.Drain = 200 * sim.Millisecond
	o.Loads = []float64{5000, 15000}
	o.Parallel = parallel
	return o
}

// withTestCache installs a fresh on-disk cache for one subtest and restores
// the disabled state afterwards. The cache warns through t.Logf, so
// corruption in the battery surfaces in -v output.
func withTestCache(t *testing.T) *sweepcache.Cache {
	t.Helper()
	c, err := sweepcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	c.SetLogf(func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Logf(format, args...)
	})
	sweep.SetCache(c)
	sweep.ResetCacheCounters()
	t.Cleanup(func() {
		sweep.SetCache(nil)
		sweep.ResetCacheCounters()
	})
	return c
}

// jsonBytes canonicalizes one figure's rows through encoding/json — the same
// path umbench -json uses — so "byte-for-byte" means what the CLI ships.
func jsonBytes(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runBattery drives one figure through the cold/warm/verify × 1/N-worker
// matrix and byte-compares every run against the cold baseline.
func runBattery(t *testing.T, name string, fig func(o Options) any) {
	t.Helper()
	c := withTestCache(t)

	cold := jsonBytes(t, fig(cacheOptions(1)))
	s := c.Snapshot()
	if s.Stores == 0 {
		t.Fatalf("%s: cold run stored no cells — the driver is not wired into the cache", name)
	}
	if s.Hits != 0 {
		t.Fatalf("%s: cold run hit %d cells in an empty cache", name, s.Hits)
	}

	for _, workers := range []int{1, 4} {
		warm := jsonBytes(t, fig(cacheOptions(workers)))
		if string(warm) != string(cold) {
			t.Fatalf("%s: warm run (workers=%d) differs from cold:\n cold: %s\n warm: %s", name, workers, cold, warm)
		}
	}
	ws := c.Snapshot()
	if ws.Hits == 0 {
		t.Fatalf("%s: warm runs produced no cache hits", name)
	}

	c.SetVerify(true)
	for _, workers := range []int{1, 4} {
		ver := jsonBytes(t, fig(cacheOptions(workers)))
		if string(ver) != string(cold) {
			t.Fatalf("%s: verify run (workers=%d) differs from cold", name, workers)
		}
	}
	vs := c.Snapshot()
	if vs.Mismatches != 0 {
		t.Fatalf("%s: verify found %d byte mismatches: %v", name, vs.Mismatches, c.Mismatches())
	}
	if vs.Invalid != 0 {
		t.Fatalf("%s: %d entries invalidated during the battery", name, vs.Invalid)
	}
}

// TestCacheBatteryDrivers runs the cold==warm==verify battery over one
// driver of each cached shape: the full-result Map2 grid (EndToEnd), the
// scalar-projection grid (Fig6), the job-slice path (Fig20), the non-sim
// cell codec (Fig9) and the coupled-fleet codec (FleetLB, plus the sharded
// FleetScale cells that reuse it).
func TestCacheBatteryDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	figs := []struct {
		name string
		fn   func(o Options) any
	}{
		{"EndToEnd", func(o Options) any { return EndToEnd(o) }},
		{"Fig6", func(o Options) any { return Fig6(o) }},
		{"Fig20", func(o Options) any { return Fig20(o) }},
		{"Fig9", func(o Options) any { return Fig9(o) }},
		{"FleetLB", func(o Options) any { return FleetLB(o) }},
		{"FleetScale", func(o Options) any { o.FleetSizes = []int{2, 4}; return FleetScale(o) }},
		{"FleetControl", func(o Options) any { return FleetControl(o) }},
		{"FleetGraph", func(o Options) any { return FleetGraph(o) }},
	}
	for _, f := range figs {
		f := f
		t.Run(f.name, func(t *testing.T) { runBattery(t, f.name, f.fn) })
	}
}

// TestCacheMatchesUncached: with a cache installed, results must equal the
// cache-free computation exactly — installing -cache can never change a
// figure.
func TestCacheMatchesUncached(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	sweep.SetCache(nil)
	plain := Fig6(cacheOptions(1))
	withTestCache(t)
	cached := Fig6(cacheOptions(1)) // cold: every cell computes + stores
	warm := Fig6(cacheOptions(1))   // warm: every cell decodes
	if !reflect.DeepEqual(plain, cached) {
		t.Fatal("cold cached run differs from uncached run")
	}
	if !reflect.DeepEqual(plain, warm) {
		t.Fatal("warm cached run differs from uncached run")
	}
}

// TestCacheCorruptionRecomputesToSameBytes: flipping bytes in stored entries
// must degrade to recomputation that converges on the original figure.
func TestCacheCorruptionRecomputesToSameBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	c := withTestCache(t)
	o := cacheOptions(1)
	cold := jsonBytes(t, Fig9(o))
	// Replace every stored entry with a plausible lie.
	corrupted := 0
	for _, s := range []fig9Side{
		{"data", o.jobSeed("fig9/data"), fig9TraceLen},
		{"instr", o.jobSeed("fig9/instr"), fig9TraceLen},
	} {
		pre := fig9Pre(0, s)
		if pre == nil {
			t.Fatal("probe preimage failed")
		}
		if _, ok := c.Lookup(pre); !ok {
			t.Fatalf("side %s not stored by the cold run", s.Name)
		}
		c.Store(pre, []byte(`{"rows":[{"class":"Data","structure":"L1TLB","hit_rate":0.0}]}`))
		corrupted++
	}
	// Verify mode must catch the lie and converge the cache back to truth.
	c.SetVerify(true)
	ver := jsonBytes(t, Fig9(cacheOptions(1)))
	if string(ver) != string(cold) {
		t.Fatal("verify run did not return the recomputed truth")
	}
	if c.Snapshot().Mismatches != int64(corrupted) {
		t.Fatalf("mismatches = %d, want %d", c.Snapshot().Mismatches, corrupted)
	}
	c.SetVerify(false)
	warm := jsonBytes(t, Fig9(cacheOptions(1)))
	if string(warm) != string(cold) {
		t.Fatal("cache did not converge after verify repair")
	}
}
