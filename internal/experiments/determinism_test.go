package experiments

import (
	"reflect"
	"testing"

	"umanycore/internal/sim"
)

// determinismOptions keeps the grid small enough to run twice under -race
// while still exercising multi-cell fan-out (3 archs × 2 loads = 6 cells).
func determinismOptions(parallel int) Options {
	o := DefaultOptions()
	o.Duration = 40 * sim.Millisecond
	o.Warmup = 10 * sim.Millisecond
	o.Drain = 200 * sim.Millisecond
	o.Loads = []float64{5000, 15000}
	o.Parallel = parallel
	return o
}

// TestEndToEndParallelDeterminism is the sweep runner's core regression: the
// full end-to-end grid must be bit-identical regardless of worker count, and
// the same seed must reproduce the same grid across invocations (engine
// pooling and node recycling must leave no residue between runs).
func TestEndToEndParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	sequential := EndToEnd(determinismOptions(1))
	for _, workers := range []int{4, 0} {
		parallel := EndToEnd(determinismOptions(workers))
		if !reflect.DeepEqual(sequential, parallel) {
			t.Fatalf("EndToEnd grid differs between 1 and %d workers", workers)
		}
	}
	again := EndToEnd(determinismOptions(1))
	if !reflect.DeepEqual(sequential, again) {
		t.Fatal("EndToEnd grid differs between two same-seed runs")
	}
}

// TestFig3ParallelDeterminism covers the Map2 path plus keyed per-cell seeds.
func TestFig3ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	o := determinismOptions(1)
	o.Duration = 10 * sim.Millisecond
	o.Warmup = 2 * sim.Millisecond
	o.Drain = 50 * sim.Millisecond
	sequential := Fig3(o)
	o.Parallel = 0
	if parallel := Fig3(o); !reflect.DeepEqual(sequential, parallel) {
		t.Fatal("Fig3 rows differ between sequential and parallel sweeps")
	}
}
