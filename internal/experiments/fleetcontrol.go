package experiments

import (
	"fmt"

	"umanycore/internal/control"
	"umanycore/internal/fleet"
	"umanycore/internal/machine"
	"umanycore/internal/sim"
	"umanycore/internal/sweep"
	"umanycore/internal/sweepcache"
	"umanycore/internal/workload"
)

// FleetControlRow is one (scenario, variant, load) point of the closed-loop
// fleet-control study: what the front-end's feedback loops — retry with
// capped backoff, tail hedging, burn-triggered shedding and p99 autoscaling
// — do to client-perceived goodput and tail latency on the coupled fleet.
//
// Counters are client-level whenever a controller ran (one client root can
// cost several server attempts) and server-level for the uncontrolled
// baseline, where the two coincide.
type FleetControlRow struct {
	// Scenario is the study leg: "storm" (retry metastability), "hedge"
	// (hedging win/loss vs deadline), or "scale" (scale-up lag vs bursts).
	Scenario string
	// Variant names the control policy within the scenario.
	Variant string
	// PerServerRPS is the offered load per server; TotalRPS fleet-wide.
	PerServerRPS float64
	TotalRPS     float64
	MeanMicros   float64
	P99Micros    float64
	// Completed and Rejected count client roots; RejectRate is
	// Rejected/(Completed+Rejected) — the goodput complement the latency
	// columns alone hide.
	Completed  uint64
	Rejected   uint64
	RejectRate float64
	// GoodputRPS is completed client roots per second of arrival window.
	GoodputRPS float64
	// Control-loop activity: re-dispatches, dispatcher drops, hedge
	// dispatches and their win/waste split, autoscaler growth events, and
	// the final routable set.
	Retries       uint64
	Shed          uint64
	Hedges        uint64
	HedgeWins     uint64
	HedgeWaste    uint64
	ScaleUps      uint64
	ActiveServers int
}

// fleetControlConfig is the study's fleet: small μManycore-policy servers
// (16 cores, tiny hardware RQs and NIC buffers) that saturate and reject at
// tens of kRPS, so the control loops have real rejections to work with at
// simulation costs a sweep can afford.
func fleetControlConfig(servers int) fleet.Config {
	cfg := machine.UManycoreConfig()
	cfg.Cores = 16
	cfg.Domains = 2
	cfg.RQCapacity = 4
	cfg.NICBufCapacity = 4
	cfg.LeafSpineCfg.Pods = 1
	cfg.LeafSpineCfg.LeavesPerPod = 2
	fc := fleet.DefaultConfig(cfg)
	fc.Servers = servers
	fc.CrossServerFrac = 0.25
	return fc
}

// controlVariant is one policy point of a scenario.
type controlVariant struct {
	name string
	ctl  *control.Config
}

// stormVariants is the retry-storm ladder: no retries, uncapped immediate
// retries (the storm: every reject instantly re-offered while the queue
// that rejected it is still full), capped exponential backoff with jitter,
// and capped backoff plus burn-triggered shedding (the escape).
func stormVariants() []controlVariant {
	capped := control.Config{
		MaxRetries:  3,
		RetryBase:   100 * sim.Microsecond,
		RetryCap:    800 * sim.Microsecond,
		RetryJitter: 0.5,
	}
	shed := capped
	shed.ShedProb = 0.5
	shed.ShedSLOMicros = 1500
	shed.ShedWindow = sim.Millisecond
	return []controlVariant{
		{"none", nil},
		{"uncapped", &control.Config{MaxRetries: 3}},
		{"capped", &capped},
		{"capped+shed", &shed},
	}
}

// hedgeVariants sweeps the hedge deadline on a straggler fleet; "off" is
// the unhedged baseline.
func hedgeVariants() []controlVariant {
	out := []controlVariant{{"off", nil}}
	for _, d := range []sim.Time{500 * sim.Microsecond, sim.Millisecond, 2 * sim.Millisecond} {
		out = append(out, controlVariant{
			name: fmt.Sprintf("hedge=%gus", d.Micros()),
			ctl:  &control.Config{HedgeAfter: d},
		})
	}
	return out
}

// scaleVariants sweeps the autoscaler's cold-start lag under bursty (MMPP)
// arrivals; "static" keeps the whole fleet active with no controller.
func scaleVariants() []controlVariant {
	out := []controlVariant{{"static", nil}}
	for _, lag := range []sim.Time{0, 2 * sim.Millisecond, 10 * sim.Millisecond, 25 * sim.Millisecond} {
		out = append(out, controlVariant{
			name: fmt.Sprintf("lag=%gms", lag.Millis()),
			ctl: &control.Config{
				ScaleMin:       2,
				ScaleP99Micros: 1500,
				ScaleLag:       lag,
				ScaleWindow:    5 * sim.Millisecond,
			},
		})
	}
	return out
}

// controlScenario is one leg of the figure: a fleet shape, an app, a load
// axis and a variant ladder.
type controlScenario struct {
	name     string
	servers  int
	loads    []float64 // per-server RPS
	variants []controlVariant
	shape    func(fc *fleet.Config)
	arrivals machine.ArrivalKind
}

// controlScenarios returns the figure's three legs. The synthetic
// deterministic-500μs app keeps each server's capacity legible (16 cores /
// 500μs ≈ 32K RPS), so the storm loads straddle saturation by construction.
func controlScenarios() []controlScenario {
	return []controlScenario{
		{
			// Loads straddle the ~12K RPS per-server saturation knee: below
			// it retries are idle, at it backoff decorrelation pays, past it
			// the capacity deficit dominates every policy.
			name:     "storm",
			servers:  3,
			loads:    []float64{11000, 13000, 15000},
			variants: stormVariants(),
		},
		{
			name:     "hedge",
			servers:  4,
			loads:    []float64{4000},
			variants: hedgeVariants(),
			shape: func(fc *fleet.Config) {
				// One 3× straggler — the queue the hedge escapes — with the
				// default (deep) admission queues restored: the hedge study
				// wants a clean straggler tail, not admission rejects.
				fc.Slowdown = []float64{1, 1, 1, 3}
				fc.Machine.RQCapacity = 64
				fc.Machine.NICBufCapacity = 256
			},
		},
		{
			name:     "scale",
			servers:  6,
			loads:    []float64{12000},
			variants: scaleVariants(),
			arrivals: machine.BurstyArrivals,
		},
	}
}

// FleetControl is the closed-loop control figure: three scenarios on the
// coupled fleet, each comparing control-policy variants over identical
// arrival processes (variants at one load share a seed).
//
//   - storm: at the saturation knee, uncapped immediate retries re-offer
//     every reject while the queue that produced it is still full — the
//     metastable regime here is pure churn: dispatch attempts multiply and
//     client latency inflates while the reject rate barely moves. (A §4.3
//     admission reject turns around at the NIC and costs the server
//     nothing, so the storm cannot also collapse goodput the way retries
//     that burn server work would.) Capped backoff + jitter decorrelates
//     the retry from the full-queue instant — rejects drop below even the
//     no-retry baseline — and burn-triggered shedding drops the excess at
//     the dispatcher, cheaper for the client than a server round trip.
//   - hedge: on a straggler fleet, a deadline-triggered duplicate cuts the
//     tail for a quantified HedgeWaste overhead; too-aggressive deadlines
//     buy little tail for a lot of waste.
//   - scale: under bursty MMPP arrivals, the autoscaler's cold-start lag
//     decides how much of each burst the tail eats before fresh capacity
//     becomes routable.
//
// Every cell is one coupled PDES run; cells fan out across the sweep pool
// and rows are bit-identical for any Parallel or ShardWorkers value, warm
// or cold cache.
func FleetControl(o Options) []FleetControlRow {
	o = o.normalized()
	app, err := workload.SyntheticApp("deterministic", 500, 2)
	if err != nil {
		panic(err)
	}
	var rows []FleetControlRow
	for _, sc := range controlScenarios() {
		type cell struct {
			fc    fleet.Config
			rc    machine.RunConfig
			total float64
			seed  int64
		}
		mkCell := func(v controlVariant, perServer float64) cell {
			fc := fleetControlConfig(sc.servers)
			if sc.shape != nil {
				sc.shape(&fc)
			}
			fc.Control = v.ctl
			fc.ShardWorkers = o.ShardWorkers
			total := perServer * float64(sc.servers)
			rc := o.runCfg(app, total)
			rc.Arrivals = sc.arrivals
			// Variants at one load share a seed: the comparison is paired
			// over identical arrival processes.
			return cell{
				fc:    fc,
				rc:    rc,
				total: total,
				seed:  o.jobSeed(fmt.Sprintf("fleetcontrol/%s/%g", sc.name, perServer)),
			}
		}
		grid := sweep.MapCached2(o.Parallel, sc.variants, sc.loads,
			func(v controlVariant, perServer float64) []byte {
				c := mkCell(v, perServer)
				if c.rc.Obs != nil || c.rc.Telemetry != nil {
					return nil
				}
				// Worker counts are never inputs; zero them out of the key so
				// differently-parallel runs share cells. The Control pointer
				// stays in: policy is simulation content.
				c.fc.Parallel = 0
				c.fc.ShardWorkers = 0
				return sweepcache.NewKey("fleet/result").
					Any("fc", c.fc).Any("app", app).Float("total_rps", c.total).
					Any("rc", c.rc).Int("seed", c.seed).Preimage()
			},
			fleetCodec,
			func(v controlVariant, perServer float64) *fleet.Result {
				c := mkCell(v, perServer)
				return fleet.Run(c.fc, app, c.total, c.rc, c.seed)
			})
		for i, v := range sc.variants {
			for j, perServer := range sc.loads {
				rows = append(rows, controlRow(sc.name, v.name, perServer, grid[i][j], o))
			}
		}
	}
	return rows
}

// controlRow projects one fleet result onto the figure's columns, reading
// client-level accounting when a controller ran and server-level otherwise
// (for an uncontrolled fleet the two views coincide: one root, one attempt).
func controlRow(scenario, variant string, perServer float64, res *fleet.Result, o Options) FleetControlRow {
	row := FleetControlRow{
		Scenario:      scenario,
		Variant:       variant,
		PerServerRPS:  perServer,
		TotalRPS:      res.TotalRPS,
		MeanMicros:    res.Latency.Mean,
		P99Micros:     res.Latency.P99,
		Completed:     res.Completed,
		Rejected:      res.Rejected,
		ActiveServers: len(res.PerServer),
	}
	if c := res.Control; c != nil {
		row.MeanMicros = c.Latency.Mean
		row.P99Micros = c.Latency.P99
		row.Completed = c.Completed
		row.Rejected = c.Rejected
		row.RejectRate = c.RejectRate()
		row.Retries = c.Retries
		row.Shed = c.Shed
		row.Hedges = c.Hedges
		row.HedgeWins = c.HedgeWins
		row.HedgeWaste = c.HedgeWaste
		row.ScaleUps = c.ScaleUps
		row.ActiveServers = c.ActiveServers
	} else if resp := res.Completed + res.Rejected; resp > 0 {
		row.RejectRate = float64(res.Rejected) / float64(resp)
	}
	row.GoodputRPS = float64(row.Completed) / o.Duration.Seconds()
	return row
}
