package experiments

import (
	"fmt"

	"umanycore/internal/fleet"
	"umanycore/internal/machine"
	"umanycore/internal/sweep"
	"umanycore/internal/sweepcache"
)

// FleetLBRow is one (policy, per-server load) point of the load-balancer
// study on the coupled fleet: end-to-end latency when requests are routed
// by a real front-end policy instead of the ideal uniform split.
type FleetLBRow struct {
	Policy string
	// PerServerRPS is the offered load divided by the fleet size (the
	// x-axis shared with the paper's per-server load points).
	PerServerRPS float64
	// TotalRPS is the fleet-wide offered load.
	TotalRPS   float64
	MeanMicros float64
	P99Micros  float64
	TailToAvg  float64
	// Completed and Rejected split the responded requests; the latency
	// columns above are computed over Completed only, so without the
	// Rejected/RejectRate columns a config that sheds heavily would look
	// faster than one that serves everything.
	Completed uint64
	// Rejected counts requests dropped at admission across the fleet.
	Rejected uint64
	// RejectRate is Rejected/(Completed+Rejected).
	RejectRate float64
	// RejectParity marks whether every policy at this row's load point
	// responded at (near-)equal reject rates: when false, the latency
	// comparison across policies at this load is not apples-to-apples —
	// some policy is faster partly because it answered fewer requests.
	RejectParity bool
	// RemoteServed counts cross-server child RPCs shipped between servers.
	RemoteServed uint64
}

// rejectRate is the goodput complement: rejected over responded.
func rejectRate(completed, rejected uint64) float64 {
	if resp := completed + rejected; resp > 0 {
		return float64(rejected) / float64(resp)
	}
	return 0
}

// rejectParity reports whether a paired policy comparison happens at equal
// reject rates: true when the spread across the group stays within half a
// percentage point.
func rejectParity(rates []float64) bool {
	lo, hi := rates[0], rates[0]
	for _, r := range rates[1:] {
		lo, hi = min(lo, r), max(hi, r)
	}
	return hi-lo <= 0.005
}

// fleetLBConfig is the study's fleet: μManycore servers, one straggler
// running 3× slower — the skew that separates queue-aware policies from
// oblivious ones. Call chains stay mostly local (cross-server fraction 0.1
// instead of the default 0.5): with heavy cross-server fan-out every
// request samples the straggler through its children no matter where the
// balancer put it, which washes out the routing comparison the study is
// about.
func fleetLBConfig() fleet.Config {
	fc := fleet.DefaultConfig(machine.UManycoreConfig())
	fc.Servers = 4
	fc.Slowdown = []float64{1, 1, 1, 3}
	fc.CrossServerFrac = 0.1
	return fc
}

// FleetLB compares load-balancer policies on a skewed coupled fleet: P99 vs
// offered load for round-robin, uniform-random, least-outstanding and
// power-of-two-choices routing over the same arrival sequences. Uniform
// random keeps sending the straggler its full 1/N share, so its queue —
// and the fleet tail — grows with load; queue-aware policies steer around
// it. Each coupled fleet is one single-threaded simulation; the sweep
// parallelizes across (policy, load) cells, and rows are bit-identical for
// any Parallel value.
func FleetLB(o Options) []FleetLBRow {
	o = o.normalized()
	app := appNamed("HomeT")
	policies := fleet.Policies()
	type cell struct {
		fc    fleet.Config
		total float64
		seed  int64
	}
	mkCell := func(policy string, perServer float64) cell {
		fc := fleetLBConfig()
		fc.LB = policy
		fc.ShardWorkers = o.ShardWorkers
		// Policies at one load share a seed: the comparison is paired
		// over identical arrival processes.
		return cell{
			fc:    fc,
			total: perServer * float64(fc.Servers),
			seed:  o.jobSeed(fmt.Sprintf("fleetlb/%g", perServer)),
		}
	}
	grid := sweep.MapCached2(o.Parallel, policies, o.Loads,
		func(policy string, perServer float64) []byte {
			c := mkCell(policy, perServer)
			rc := o.runCfg(app, c.total)
			if rc.Obs != nil || rc.Telemetry != nil || c.fc.NewBalancer != nil {
				return nil
			}
			// Parallel and ShardWorkers are worker counts, never inputs:
			// neither fan-out width changes results, so neither may split
			// cache entries.
			c.fc.Parallel = 0
			c.fc.ShardWorkers = 0
			return sweepcache.NewKey("fleet/result").
				Any("fc", c.fc).Any("app", app).Float("total_rps", c.total).
				Any("rc", rc).Int("seed", c.seed).Preimage()
		},
		fleetCodec,
		func(policy string, perServer float64) *fleet.Result {
			c := mkCell(policy, perServer)
			return fleet.Run(c.fc, app, c.total, o.runCfg(app, c.total), c.seed)
		})
	rows := make([]FleetLBRow, 0, len(policies)*len(o.Loads))
	for i, policy := range policies {
		for j, perServer := range o.Loads {
			res := grid[i][j]
			rows = append(rows, FleetLBRow{
				Policy:       policy,
				PerServerRPS: perServer,
				TotalRPS:     res.TotalRPS,
				MeanMicros:   res.Latency.Mean,
				P99Micros:    res.Latency.P99,
				TailToAvg:    res.TailToAvg,
				Completed:    res.Completed,
				Rejected:     res.Rejected,
				RejectRate:   rejectRate(res.Completed, res.Rejected),
				RemoteServed: res.RemoteServed,
			})
		}
	}
	// Annotate each load column: aware-vs-oblivious latency comparisons are
	// only apples-to-apples when every policy responded at the same reject
	// rate. Policies at one load share arrivals, so any spread here means
	// routing itself changed who got served.
	for j := range o.Loads {
		rates := make([]float64, len(policies))
		for i := range policies {
			rates[i] = rows[i*len(o.Loads)+j].RejectRate
		}
		parity := rejectParity(rates)
		for i := range policies {
			rows[i*len(o.Loads)+j].RejectParity = parity
		}
	}
	return rows
}
