package experiments

import (
	"testing"

	"umanycore/internal/sim"
	"umanycore/internal/uarch"
)

// fast returns minimal-fidelity options for unit tests.
func fast() Options {
	o := DefaultOptions()
	o.Duration = 100 * sim.Millisecond
	o.Warmup = 20 * sim.Millisecond
	o.Drain = 400 * sim.Millisecond
	return o
}

func TestOptionsNormalization(t *testing.T) {
	var o Options
	n := o.normalized()
	if n.Duration == 0 || n.Warmup == 0 || len(n.Loads) != 3 || len(n.Apps) != 8 || n.Seed == 0 {
		t.Fatalf("normalized zero options = %+v", n)
	}
	q := DefaultOptions().Quick()
	if q.Duration >= DefaultOptions().Duration {
		t.Fatal("Quick should reduce duration")
	}
}

func TestFig1Shape(t *testing.T) {
	rows := Fig1(fast())
	if len(rows) != 8 {
		t.Fatalf("Fig1 rows = %d", len(rows))
	}
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Optimization+"/"+r.Class.String()] = r.Speedup
	}
	for _, opt := range []string{"D-Prefetcher", "Branch Predictor", "I-Prefetcher"} {
		if byKey[opt+"/monolithic"] <= byKey[opt+"/microservice"] {
			t.Errorf("%s: mono (%v) should beat micro (%v)",
				opt, byKey[opt+"/monolithic"], byKey[opt+"/microservice"])
		}
	}
}

func TestFig2Shape(t *testing.T) {
	pts := Fig2(fast())
	if len(pts) != 21 {
		t.Fatalf("Fig2 points = %d", len(pts))
	}
	// Median ≈500 RPS: CDF at 500 near 0.5; ≈20% above 1000.
	var at500, at1000 float64
	for _, p := range pts {
		if p.X == 500 {
			at500 = p.P
		}
		if p.X == 1000 {
			at1000 = p.P
		}
	}
	if at500 < 0.40 || at500 > 0.60 {
		t.Errorf("CDF(500) = %v, want ≈0.5", at500)
	}
	if f := 1 - at1000; f < 0.10 || f > 0.28 {
		t.Errorf("frac ≥1000 = %v, want ≈0.20", f)
	}
}

func TestFig4Fig5Shape(t *testing.T) {
	pts4 := Fig4(fast())
	var at015 float64
	for _, p := range pts4 {
		if p.X > 0.14 && at015 == 0 {
			at015 = p.P
		}
	}
	if at015 < 0.35 || at015 > 0.65 {
		t.Errorf("Fig4 CDF near median = %v", at015)
	}
	pts5 := Fig5(fast())
	var at4, at16 float64
	for _, p := range pts5 {
		if p.X == 4 {
			at4 = p.P
		}
		if p.X == 16 {
			at16 = p.P
		}
	}
	if at4 < 0.3 || at4 > 0.7 {
		t.Errorf("Fig5 CDF(4) = %v, want ≈0.5", at4)
	}
	if f := 1 - at16; f < 0.02 || f > 0.10 {
		t.Errorf("Fig5 frac ≥16 = %v, want ≈0.05", f)
	}
}

func TestFig8Shape(t *testing.T) {
	rows := Fig8(fast())
	if len(rows) != 2 {
		t.Fatalf("Fig8 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DPage < 0.7 || r.ILine < 0.9 {
			t.Errorf("%s sharing too low: %+v", r.Group, r)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	rows := Fig9(fast())
	if len(rows) != 8 {
		t.Fatalf("Fig9 rows = %d", len(rows))
	}
	get := func(class, structure string) float64 {
		for _, r := range rows {
			if r.Class == class && r.Structure == structure {
				return r.HitRate
			}
		}
		t.Fatalf("missing %s/%s", class, structure)
		return 0
	}
	// Paper: L1 TLB and cache hit rates above 95% for both classes; L2
	// structures lower (L1 filters the locality).
	for _, class := range []string{"Data", "Instructions"} {
		if hr := get(class, "L1TLB"); hr < 0.95 {
			t.Errorf("%s L1TLB hit rate = %v", class, hr)
		}
		if hr := get(class, "L1Cache"); hr < 0.90 {
			t.Errorf("%s L1Cache hit rate = %v", class, hr)
		}
		if get(class, "L2Cache") > get(class, "L1Cache") {
			t.Errorf("%s L2 should be below L1", class)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows := Fig3(fast())
	if len(rows) != 11 {
		t.Fatalf("Fig3 rows = %d", len(rows))
	}
	byQ := map[int]Fig3Row{}
	for _, r := range rows {
		byQ[r.Queues] = r
	}
	// Per-core queues (1024) suffer imbalance; 32 queues are near-optimal;
	// stealing rescues the per-core extreme (the paper's three headlines).
	if byQ[1024].TailMicros < 2*byQ[32].TailMicros {
		t.Errorf("per-core queue tail %v not clearly worse than 32-queue %v",
			byQ[1024].TailMicros, byQ[32].TailMicros)
	}
	if byQ[1024].TailStealMicros > byQ[1024].TailMicros/2 {
		t.Errorf("stealing ineffective at 1024 queues: %v vs %v",
			byQ[1024].TailStealMicros, byQ[1024].TailMicros)
	}
	// Averages move far less than tails (the paper's observation).
	if byQ[1024].AvgMicros/byQ[32].AvgMicros > byQ[1024].TailMicros/byQ[32].TailMicros {
		t.Error("average should degrade less than tail")
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows := Fig6(fast())
	if len(rows) != 10 {
		t.Fatalf("Fig6 rows = %d", len(rows))
	}
	byCS := map[int]Fig6Row{}
	for _, r := range rows {
		byCS[r.CSCycles] = r
	}
	// The paper's target hardware range (128–256 cycles) barely impacts the
	// tail; Linux-scale overheads at 50K RPS are catastrophic.
	if byCS[256].NormTail[50000] > 1.5 {
		t.Errorf("256-cycle CS inflates 50K tail %vx", byCS[256].NormTail[50000])
	}
	if byCS[8192].NormTail[50000] < 10 {
		t.Errorf("8192-cycle CS only %vx at 50K", byCS[8192].NormTail[50000])
	}
	if byCS[8192].NormTail[50000] < byCS[2048].NormTail[50000] {
		t.Error("tail should grow with CS overhead")
	}
	// Higher load amplifies the overhead.
	if byCS[8192].NormTail[50000] < byCS[8192].NormTail[5000] {
		t.Error("50K should suffer more than 5K")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows := Fig7(fast())
	if len(rows) != 4 {
		t.Fatalf("Fig7 rows = %d", len(rows))
	}
	last := rows[len(rows)-1] // 50K RPS
	if last.RPS != 50000 {
		t.Fatalf("last row rps = %d", last.RPS)
	}
	// Paper: contention inflates the 50K tail by ~14.7× (mesh) and ~7.5×
	// (fat-tree); we assert substantial inflation with mesh worse.
	if last.MeshNorm < 4 {
		t.Errorf("mesh 50K inflation = %v, want >> 1", last.MeshNorm)
	}
	if last.FatTreeNorm < 1.5 {
		t.Errorf("fat-tree 50K inflation = %v, want > 1.5", last.FatTreeNorm)
	}
	if last.MeshNorm < last.FatTreeNorm {
		t.Errorf("mesh (%v) should suffer more than fat-tree (%v)", last.MeshNorm, last.FatTreeNorm)
	}
	// Inflation grows with load.
	if rows[0].MeshNorm > last.MeshNorm {
		t.Error("mesh inflation should grow with load")
	}
}

func TestEndToEndGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	o := fast()
	o.Loads = []float64{5000, 15000}
	rows := EndToEnd(o)
	// 3 archs × 2 loads × 8 request types.
	if len(rows) != 48 {
		t.Fatalf("grid rows = %d", len(rows))
	}
	reds := Reductions(rows, "tail")
	if len(reds) != 2 {
		t.Fatalf("reductions = %d", len(reds))
	}
	for _, red := range reds {
		// μManycore must win clearly at 15K against both baselines, and its
		// advantage must grow with load (Figs 14/16 headline shape).
		if red.ByLoad[15000] < 1.5 {
			t.Errorf("tail reduction vs %s at 15K = %v", red.Baseline, red.ByLoad[15000])
		}
		if red.ByLoad[15000] < red.ByLoad[5000] {
			t.Errorf("reduction vs %s should grow with load: %v -> %v",
				red.Baseline, red.ByLoad[5000], red.ByLoad[15000])
		}
	}
	avgReds := Reductions(rows, "avg")
	tailReds := Reductions(rows, "tail")
	// Fig 17: tail improves more than average at high load (vs ScaleOut the
	// design is tail-targeted).
	for i := range avgReds {
		if avgReds[i].Baseline == "ServerClass-40" {
			if tailReds[i].ByLoad[15000] < avgReds[i].ByLoad[15000]*0.9 {
				t.Errorf("tail reduction (%v) should be ≥ avg reduction (%v)",
					tailReds[i].ByLoad[15000], avgReds[i].ByLoad[15000])
			}
		}
	}
}

func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows := Fig15(fast())
	if len(rows) != 8 {
		t.Fatalf("Fig15 rows = %d", len(rows))
	}
	v, l, h, c := Fig15Average(rows)
	// Cumulative techniques: each step should not hurt on average, and the
	// full ladder must deliver a clear net reduction (paper: 7.4×; the
	// compressed magnitudes are documented in EXPERIMENTS.md).
	if c < 1.3 {
		t.Errorf("full ladder reduction = %v, want > 1.3", c)
	}
	if c < v*0.9 || c < l*0.9 || c < h*0.9 {
		t.Errorf("ladder not cumulative: %v %v %v %v", v, l, h, c)
	}
	// Leaf-spine is the largest single step in our reproduction, as the
	// ICN+I/O redesign is in the paper's.
	if l < v {
		t.Errorf("leaf-spine step (%v) should improve on villages (%v)", l, v)
	}
}

func TestFig19Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	rows := Fig19(fast())
	if len(rows) != 8 {
		t.Fatalf("Fig19 rows = %d", len(rows))
	}
	for _, r := range rows {
		base, ok := r.NormTail["8x4x32"]
		if !ok || base != 1.0 {
			t.Fatalf("%s default config not normalized: %v", r.App, r.NormTail)
		}
		for name, v := range r.NormTail {
			// Paper: all configurations within ~15% of each other; we allow
			// a wider band per-app since single request types are noisy.
			if v < 0.5 || v > 2.0 {
				t.Errorf("%s %s norm tail = %v, configs should be comparable", r.App, name, v)
			}
		}
	}
}

func TestFig20Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	o := fast()
	rows := Fig20(o)
	if len(rows) != 9 {
		t.Fatalf("Fig20 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.UManycoreTail <= 0 || r.ServerClassTail <= 0 || r.ScaleOutTail <= 0 {
			t.Fatalf("missing tails: %+v", r)
		}
		// μManycore wins on every distribution and load (paper: 9.1× and
		// 7.2× average reductions).
		if r.UManycoreTail > r.ServerClassTail {
			t.Errorf("%s@%v: uManycore (%v) worse than ServerClass (%v)",
				r.Dist, r.RPS, r.UManycoreTail, r.ServerClassTail)
		}
	}
}

func TestSec68Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy")
	}
	o := fast()
	o.Loads = []float64{15000}
	res := Sec68(o)
	if len(res.Rows) != 8 {
		t.Fatalf("Sec68 rows = %d", len(res.Rows))
	}
	// Power ratio ≈3.2× and area parity come from the calibrated model.
	if res.PowerRatio < 2.9 || res.PowerRatio > 3.5 {
		t.Errorf("power ratio = %v, want ≈3.2", res.PowerRatio)
	}
	if res.AreaRatio < 0.9 || res.AreaRatio > 1.1 {
		t.Errorf("area ratio = %v, want ≈1", res.AreaRatio)
	}
	// The 128-core ServerClass improves on the 40-core one but still trails
	// μManycore at 15K.
	if res.MeanTailRatio < 1.2 {
		t.Errorf("iso-area tail ratio = %v, want > 1.2", res.MeanTailRatio)
	}
}

func TestAppsSubset(t *testing.T) {
	apps := appsSubset("Text", "CPost")
	if len(apps) != 2 || apps[0].Name != "Text" || apps[1].Name != "CPost" {
		t.Fatalf("subset = %v", apps)
	}
}

func TestFig1UsesSharedTypes(t *testing.T) {
	// Compile-time style check that the uarch result type flows through.
	var r []uarch.Fig1Result = Fig1(fast())
	_ = r
}
