package experiments

import (
	"reflect"
	"testing"

	"umanycore/internal/sim"
)

func fleetControlTestOptions() Options {
	o := DefaultOptions().Quick()
	o.Duration = 60 * sim.Millisecond
	o.Warmup = 10 * sim.Millisecond
	o.Drain = 600 * sim.Millisecond
	return o
}

func controlRowsBy(t *testing.T, rows []FleetControlRow, scenario string) map[string][]FleetControlRow {
	t.Helper()
	out := make(map[string][]FleetControlRow)
	for _, r := range rows {
		if r.Scenario != scenario {
			continue
		}
		out[r.Variant] = append(out[r.Variant], r)
	}
	if len(out) == 0 {
		t.Fatalf("no %s rows", scenario)
	}
	return out
}

// TestFleetControlStormHeadline pins the figure's headline at the
// saturation knee (the middle load point). In this model a §4.3 admission
// reject costs the server nothing — it turns around at the NIC — so an
// uncapped retry storm cannot collapse goodput the way retries that burn
// server work would; the metastable regime shows up as pure churn instead:
// immediate retries re-sample the same full queue that just rejected them,
// so the reject rate barely moves while dispatch attempts multiply and the
// client-perceived mean inflates. Capped backoff + jitter escapes by
// decorrelating the retry from the full-queue instant (rejects fall below
// the storm's, goodput rises), and burn-triggered shedding drops the excess
// at the dispatcher, cheaper for the client than another server round trip.
func TestFleetControlStormHeadline(t *testing.T) {
	rows := FleetControl(fleetControlTestOptions())
	storm := controlRowsBy(t, rows, "storm")
	knee := func(v string) FleetControlRow {
		rs := storm[v]
		if len(rs) != 3 {
			t.Fatalf("storm variant %q has %d load points, want 3", v, len(rs))
		}
		return rs[1]
	}
	uncapped, capped, shed, none := knee("uncapped"), knee("capped"), knee("capped+shed"), knee("none")

	if none.RejectRate < 0.02 {
		t.Fatalf("knee point not saturated (reject rate %.4f); storm is vacuous", none.RejectRate)
	}
	// The storm: massive retry churn that buys almost no reject relief and
	// inflates the client-perceived mean.
	if uncapped.Retries < 500 {
		t.Errorf("storm produced only %d retries", uncapped.Retries)
	}
	if uncapped.RejectRate < 0.8*none.RejectRate {
		t.Errorf("uncapped rejects %.4f fell well below baseline %.4f — storm model changed",
			uncapped.RejectRate, none.RejectRate)
	}
	if uncapped.MeanMicros <= none.MeanMicros {
		t.Errorf("storm churn did not inflate client latency: %.1f <= %.1f",
			uncapped.MeanMicros, none.MeanMicros)
	}
	// The escape: backoff decorrelation converts rejects into completions.
	if capped.RejectRate >= uncapped.RejectRate {
		t.Errorf("capped backoff rejects %.4f did not drop below the storm's %.4f",
			capped.RejectRate, uncapped.RejectRate)
	}
	if capped.GoodputRPS < uncapped.GoodputRPS {
		t.Errorf("capped goodput %.0f below the storm's %.0f", capped.GoodputRPS, uncapped.GoodputRPS)
	}
	// Shedding drops at the dispatcher what would reject at a server: the
	// client-perceived mean falls relative to backoff alone.
	if shed.Shed == 0 {
		t.Fatalf("shedding variant never shed: %+v", shed)
	}
	if shed.MeanMicros >= capped.MeanMicros {
		t.Errorf("shedding mean %.1f did not beat capped-only %.1f", shed.MeanMicros, capped.MeanMicros)
	}
	// Goodput accounting must be visible, not hidden: saturated rows carry a
	// real reject rate.
	if uncapped.RejectRate <= 0 || uncapped.RejectRate > 1 {
		t.Errorf("reject rate not surfaced: %+v", uncapped)
	}
}

// TestFleetControlHedgeCurve: on the straggler fleet, some hedge deadline
// cuts the P99 below the unhedged baseline, wins are real, and the waste
// column quantifies what the wins cost.
func TestFleetControlHedgeCurve(t *testing.T) {
	rows := FleetControl(fleetControlTestOptions())
	hedge := controlRowsBy(t, rows, "hedge")
	off := hedge["off"][0]
	improved := false
	for v, rs := range hedge {
		if v == "off" {
			continue
		}
		r := rs[0]
		if r.Hedges == 0 {
			t.Errorf("variant %s never hedged: %+v", v, r)
		}
		if r.HedgeWins > 0 && r.P99Micros < off.P99Micros {
			improved = true
		}
		if r.HedgeWins+r.HedgeWaste == 0 {
			t.Errorf("variant %s: hedges with neither wins nor waste: %+v", v, r)
		}
	}
	if !improved {
		t.Errorf("no hedge deadline beat the unhedged P99 %.1fus", off.P99Micros)
	}
}

// TestFleetControlScaleLag: the autoscaler reacts to bursts (scale-ups
// happen), and a long cold-start lag can only hurt the tail relative to
// instant activation.
func TestFleetControlScaleLag(t *testing.T) {
	rows := FleetControl(fleetControlTestOptions())
	scale := controlRowsBy(t, rows, "scale")
	fast, slow := scale["lag=0ms"], scale["lag=25ms"]
	if len(fast) == 0 || len(slow) == 0 {
		vs := make([]string, 0, len(scale))
		for v := range scale {
			vs = append(vs, v)
		}
		t.Fatalf("lag variants missing; have %v", vs)
	}
	if fast[0].ScaleUps == 0 {
		t.Fatalf("autoscaler never scaled up under bursty load: %+v", fast[0])
	}
	if slow[0].P99Micros < fast[0].P99Micros {
		t.Errorf("25ms cold-start lag IMPROVED the tail: %.1fus vs %.1fus — lag model broken",
			slow[0].P99Micros, fast[0].P99Micros)
	}
}

// TestFleetControlDeterministic: rows are identical for any sweep worker
// count.
func TestFleetControlDeterministic(t *testing.T) {
	o := fleetControlTestOptions()
	o.Parallel = 1
	seq := FleetControl(o)
	o.Parallel = 4
	par := FleetControl(o)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("FleetControl rows depend on sweep worker count")
	}
}
