package whatif

import (
	"encoding/json"
	"fmt"
	"strconv"

	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
	"umanycore/internal/sweep"
)

// The cell codec carries a Cell through the sweep cell cache. Encode is
// deterministic down to the byte — fixed field order via stats.JSONObject,
// shortest-exact floats, picosecond blame tallies as integers — so
// verify-mode byte-compares prove a warm grid reproduces a cold one
// exactly. A nil ByServerStage (single-machine trace) is encoded by
// omitting the key entirely, and Decode restores nil, so the nil/non-nil
// distinction survives a cache round trip.

// Codec returns the Cell codec used for whatif grid cells.
func Codec() sweep.CellCodec[Cell] {
	return sweep.CellCodec[Cell]{Encode: encodeCell, Decode: decodeCell}
}

func encodeCell(c Cell) ([]byte, error) {
	var o stats.JSONObject
	lat, _ := c.Latency.MarshalJSON()
	o.Raw("latency", lat).
		Float("p999", c.P999US).
		Obj("blame", func(b *stats.JSONObject) {
			b.Float("top_frac", c.Blame.TopFrac).
				Int("total", int64(c.Blame.Total)).
				Int("analyzed", int64(c.Blame.Analyzed)).
				Int("cutoff_ps", int64(c.Blame.Cutoff)).
				Int("p99_ps", int64(c.Blame.P99)).
				Int("total_ps", int64(c.Blame.TotalLatency)).
				Raw("by_stage_ps", stageArr(c.Blame.ByStage))
			if c.Blame.ByServerStage != nil {
				rows := make([][]byte, len(c.Blame.ByServerStage))
				for i, row := range c.Blame.ByServerStage {
					rows[i] = stageArr(row)
				}
				b.RawArr("by_server_stage_ps", rows)
			}
		})
	return o.Bytes(), nil
}

// stageArr renders a per-stage picosecond vector as a raw JSON int array.
func stageArr(v [obs.NumStages]sim.Time) []byte {
	buf := []byte{'['}
	for i, t := range v {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(t), 10)
	}
	return append(buf, ']')
}

// cellJSON mirrors the encodeCell layout for decoding.
type cellJSON struct {
	Latency stats.Summary `json:"latency"`
	P999    float64       `json:"p999"`
	Blame   struct {
		TopFrac       float64   `json:"top_frac"`
		Total         int       `json:"total"`
		Analyzed      int       `json:"analyzed"`
		CutoffPS      int64     `json:"cutoff_ps"`
		P99PS         int64     `json:"p99_ps"`
		TotalPS       int64     `json:"total_ps"`
		ByStagePS     []int64   `json:"by_stage_ps"`
		ByServerStage [][]int64 `json:"by_server_stage_ps"`
	} `json:"blame"`
}

func decodeCell(b []byte) (Cell, error) {
	var m cellJSON
	if err := json.Unmarshal(b, &m); err != nil {
		return Cell{}, fmt.Errorf("whatif: decoding cached cell: %w", err)
	}
	c := Cell{
		Latency: m.Latency,
		P999US:  m.P999,
		Blame: obs.BlameSummary{
			TopFrac:      m.Blame.TopFrac,
			Total:        m.Blame.Total,
			Analyzed:     m.Blame.Analyzed,
			Cutoff:       sim.Time(m.Blame.CutoffPS),
			P99:          sim.Time(m.Blame.P99PS),
			TotalLatency: sim.Time(m.Blame.TotalPS),
		},
	}
	var err error
	if c.Blame.ByStage, err = stageVec(m.Blame.ByStagePS); err != nil {
		return Cell{}, err
	}
	if m.Blame.ByServerStage != nil {
		c.Blame.ByServerStage = make([][obs.NumStages]sim.Time, len(m.Blame.ByServerStage))
		for i, row := range m.Blame.ByServerStage {
			if c.Blame.ByServerStage[i], err = stageVec(row); err != nil {
				return Cell{}, err
			}
		}
	}
	return c, nil
}

func stageVec(v []int64) ([obs.NumStages]sim.Time, error) {
	var out [obs.NumStages]sim.Time
	if len(v) != int(obs.NumStages) {
		return out, fmt.Errorf("whatif: cached stage vector has %d entries, want %d", len(v), obs.NumStages)
	}
	for i, t := range v {
		out[i] = sim.Time(t)
	}
	return out, nil
}
