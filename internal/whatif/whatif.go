// Package whatif is the causal-profiling engine: it answers "what would
// p99 do if stage X got faster" by actually re-running the simulation with
// virtual stage speedups (machine.StageSpeedups) over a paired-seed grid
// of (stage, cost factor) cells, and compares each variant against the
// baseline run of the identical seed.
//
// Tail blame (internal/obs) is descriptive: it reports where critical-path
// picoseconds went. With queueing feedback and critical-path migration,
// that ranking routinely disagrees with the *causal* ranking — what
// shrinking a stage would actually buy. A stage can hold a small blame
// share yet dominate the payoff ranking because its cost occupies cores
// and feeds queues (the software RPC tax), or hold a large share yet pay
// off only linearly because nothing queues behind it (storage). The grid
// quantifies both next to each other, plus a differential blame report
// (obs.DiffBlame) showing how attribution migrates as each tax shrinks.
//
// Every cell is one deterministic simulation, so the grid runs through
// internal/sweep with results bit-identical for any worker count, and each
// cell's reduced result (latency quantiles + blame summary — spans are
// discarded after analysis) is cacheable through the sweep cell cache.
package whatif

import (
	"fmt"

	"umanycore/internal/fleet"
	"umanycore/internal/machine"
	"umanycore/internal/obs"
	"umanycore/internal/stats"
	"umanycore/internal/sweep"
	"umanycore/internal/sweepcache"
	"umanycore/internal/workload"
)

// Target selects the simulated system under study. The same seed drives
// every cell (paired-seed design): baseline and variants see identical
// arrival, service and routing draws, so deltas measure the speedup, not
// sampling noise.
type Target struct {
	// Machine is the single-server configuration to profile. Its WhatIf
	// field must be zero — the engine owns that knob. Ignored when Fleet
	// is set.
	Machine machine.Config
	// Fleet, when non-nil, profiles the coupled fleet instead (its
	// embedded Machine is the base config). WhatIf and WhatIfPerServer
	// must be zero; ShardWorkers is honored and — like every worker
	// count — never changes results.
	Fleet *fleet.Config
	// App and RPS are the workload and total offered load.
	App *workload.App
	RPS float64
	// RC supplies the run window (Duration/Warmup/Drain/Arrivals). Its
	// App/RPS/Seed are overwritten; Obs and Telemetry must be nil — the
	// engine enables tracing itself and discards spans after analysis.
	RC machine.RunConfig
	// Seed drives all randomness in every cell.
	Seed int64
}

// Options tunes the grid.
type Options struct {
	// Stages to virtually accelerate; default machine.SpeedupStages()
	// (sched, ctxswitch, mem-stall, rpc-proc, storage, net).
	Stages []obs.Stage
	// Factors are the cost multipliers to apply per stage; default
	// {0.9, 0.75, 0.5, 0} (0 = stage eliminated). Each must be in [0, 1].
	Factors []float64
	// TopFrac is the analyzed tail fraction for blame; default 0.01.
	TopFrac float64
	// Parallel caps the sweep worker count (0 = one per CPU). A worker
	// count, never an input: results are bit-identical for any value.
	Parallel int
}

// DefaultFactors is the grid's default cost-factor ladder.
func DefaultFactors() []float64 { return []float64{0.9, 0.75, 0.5, 0} }

func (o Options) normalized() Options {
	if len(o.Stages) == 0 {
		o.Stages = machine.SpeedupStages()
	}
	if len(o.Factors) == 0 {
		o.Factors = DefaultFactors()
	}
	if o.TopFrac <= 0 || o.TopFrac > 1 {
		o.TopFrac = 0.01
	}
	return o
}

// Cell is one grid point's reduced result: the latency distribution and
// the blame summary, everything the report needs and nothing the cache
// can't hold (spans are analyzed and discarded inside the cell).
type Cell struct {
	// Latency is the end-to-end latency summary in microseconds.
	Latency stats.Summary
	// P999US is the 99.9th-percentile latency in microseconds (the
	// summary stops at p99; tail-at-scale arguments need one more nine).
	P999US float64
	// Blame is the critical-path attribution of the analyzed tail.
	Blame obs.BlameSummary
}

// Row is one (stage, factor) variant compared against the baseline.
type Row struct {
	// Stage and Factor identify the cell: Stage's cost ran at Factor
	// times its configured value.
	Stage  obs.Stage
	Factor float64
	// Cell is the variant's own result.
	Cell Cell
	// DMeanUS/DP50US/DP99US/DP999US are variant minus baseline in
	// microseconds (negative = faster).
	DMeanUS, DP50US, DP99US, DP999US float64
	// BlameShare is the stage's share of the BASELINE analyzed tail's
	// critical path — what descriptive profiling predicts matters.
	BlameShare float64
	// PayoffP99 is the fractional p99 reduction this speedup actually
	// bought: (base p99 - variant p99) / base p99.
	PayoffP99 float64
	// Diff is the differential blame report baseline → variant: how
	// critical-path attribution migrated between stages (and servers).
	Diff *obs.ReportDiff
}

// Report is the full what-if sensitivity study.
type Report struct {
	// Machine/App/RPS/Servers/Seed identify the target (Servers 0 = a
	// plain single machine outside any fleet).
	Machine string
	App     string
	RPS     float64
	Servers int
	Seed    int64
	// TopFrac is the analyzed tail fraction.
	TopFrac float64
	// Factors is the factor ladder shared by all stages.
	Factors []float64
	// Baseline is the unmodified run every row is compared against.
	Baseline Cell
	// Rows holds the grid stage-major (len(Stages) × len(Factors)), each
	// stage's factors in ladder order.
	Rows []Row
}

// spec is one grid cell's coordinates; the zero Stage speedup marks the
// baseline cell.
type spec struct {
	speedup  machine.StageSpeedups
	baseline bool
}

// Run executes the paired-seed grid and assembles the report.
func Run(t Target, o Options) (*Report, error) {
	o = o.normalized()
	if t.App == nil {
		return nil, fmt.Errorf("whatif: target has no app")
	}
	if t.RC.Obs != nil || t.RC.Telemetry != nil {
		return nil, fmt.Errorf("whatif: Target.RC must not enable obs/telemetry (the engine traces internally)")
	}
	if t.Fleet != nil {
		if !t.Fleet.WhatIf.IsZero() || len(t.Fleet.WhatIfPerServer) > 0 {
			return nil, fmt.Errorf("whatif: Target.Fleet already sets WhatIf speedups")
		}
		if !t.Fleet.Machine.WhatIf.IsZero() {
			return nil, fmt.Errorf("whatif: Target.Fleet.Machine already sets WhatIf speedups")
		}
	} else if !t.Machine.WhatIf.IsZero() {
		return nil, fmt.Errorf("whatif: Target.Machine already sets WhatIf speedups")
	}
	for _, f := range o.Factors {
		if !(f >= 0 && f <= 1) {
			return nil, fmt.Errorf("whatif: cost factor %v outside [0, 1]", f)
		}
	}
	specs := make([]spec, 0, 1+len(o.Stages)*len(o.Factors))
	specs = append(specs, spec{baseline: true})
	for _, st := range o.Stages {
		for _, f := range o.Factors {
			var sp machine.StageSpeedups
			if !sp.SetStage(st, 1-f) {
				return nil, fmt.Errorf("whatif: stage %v cannot be virtually accelerated (only %v)",
					st, machine.SpeedupStages())
			}
			specs = append(specs, spec{speedup: sp})
		}
	}

	cells := sweep.MapCached(o.Parallel, specs,
		func(_ int, s spec) []byte { return t.preimage(s, o.TopFrac) },
		Codec(),
		func(_ int, s spec) Cell { return t.runCell(s, o.TopFrac) })

	rep := &Report{
		RPS:      t.RPS,
		Seed:     t.Seed,
		TopFrac:  o.TopFrac,
		Factors:  o.Factors,
		App:      t.App.Name,
		Baseline: cells[0],
	}
	if t.Fleet != nil {
		rep.Machine = t.Fleet.Machine.Name
		rep.Servers = t.Fleet.Servers
	} else {
		rep.Machine = t.Machine.Name
	}
	base := rep.Baseline
	i := 1
	for _, st := range o.Stages {
		for _, f := range o.Factors {
			cell := cells[i]
			i++
			row := Row{
				Stage:   st,
				Factor:  f,
				Cell:    cell,
				DMeanUS: cell.Latency.Mean - base.Latency.Mean,
				DP50US:  cell.Latency.Median - base.Latency.Median,
				DP99US:  cell.Latency.P99 - base.Latency.P99,
				DP999US: cell.P999US - base.P999US,
				Diff:    obs.DiffBlame(base.Blame, cell.Blame),
			}
			if base.Blame.TotalLatency > 0 {
				row.BlameShare = float64(base.Blame.ByStage[st]) / float64(base.Blame.TotalLatency)
			}
			if base.Latency.P99 > 0 {
				row.PayoffP99 = (base.Latency.P99 - cell.Latency.P99) / base.Latency.P99
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// runCell executes one grid point and reduces it to a Cell.
func (t Target) runCell(s spec, topFrac float64) Cell {
	rc := t.RC
	rc.App = t.App
	rc.RPS = t.RPS
	rc.Seed = t.Seed
	rc.Obs = &obs.Options{Trace: true}
	if t.Fleet != nil {
		fc := *t.Fleet
		fc.WhatIf = s.speedup
		res := fleet.Run(fc, t.App, t.RPS, rc, t.Seed)
		// p99.9 needs the raw sample; re-merge per-server samples in
		// server order exactly like the fleet's own aggregation.
		merged := &stats.Sample{}
		for _, ps := range res.PerServer {
			for _, v := range ps.Sample.UnsafeValues() {
				merged.Add(v)
			}
		}
		return Cell{
			Latency: res.Latency,
			P999US:  merged.Quantile(0.999),
			Blame:   obs.Analyze(res.Obs.Spans, topFrac).Summary(),
		}
	}
	cfg := t.Machine
	cfg.WhatIf = s.speedup
	res := machine.Run(cfg, rc)
	return Cell{
		Latency: res.Latency,
		P999US:  res.Sample.Quantile(0.999),
		Blame:   obs.Analyze(res.Obs.Spans, topFrac).Summary(),
	}
}

// preimage is the cell's canonical cache key input. The baseline and
// variants differ only through the WhatIf field inside the (machine or
// fleet) config, so the key needs no separate stage/factor tag. Worker
// counts are zeroed (never inputs); the RunConfig is keyed with Obs
// cleared because every cell traces identically and the cached Cell is
// already the post-analysis reduction. A fleet with a live NewBalancer
// closure is uncacheable.
func (t Target) preimage(s spec, topFrac float64) []byte {
	rc := t.RC
	rc.App = t.App
	rc.RPS = t.RPS
	rc.Seed = t.Seed
	key := sweepcache.NewKey("whatif/cell")
	if t.Fleet != nil {
		if t.Fleet.NewBalancer != nil {
			return nil
		}
		fc := *t.Fleet
		fc.WhatIf = s.speedup
		fc.Parallel = 0
		fc.ShardWorkers = 0
		key.Any("fc", fc)
	} else {
		cfg := t.Machine
		cfg.WhatIf = s.speedup
		key.Any("cfg", cfg)
	}
	return key.Any("app", t.App).
		Float("total_rps", t.RPS).
		Any("rc", rc).
		Int("seed", t.Seed).
		Float("top_frac", topFrac).
		Preimage()
}
