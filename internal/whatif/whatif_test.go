package whatif

import (
	"bytes"
	"reflect"
	"testing"

	"umanycore/internal/fleet"
	"umanycore/internal/machine"
	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
	"umanycore/internal/workload"
)

func homeT(t *testing.T) *workload.App {
	t.Helper()
	for _, a := range workload.SocialNetworkApps() {
		if a.Name == "HomeT" {
			return a
		}
	}
	t.Fatal("no HomeT")
	return nil
}

func shortRC() machine.RunConfig {
	return machine.RunConfig{
		Duration: 100 * sim.Millisecond,
		Warmup:   20 * sim.Millisecond,
		Drain:    sim.Second,
	}
}

func smallOptions() Options {
	return Options{
		Stages:  []obs.Stage{obs.StageSched, obs.StageNet},
		Factors: []float64{0.5, 0},
	}
}

// TestGridWorkerInvariance is the tentpole determinism contract at the
// sweep layer: the full report is byte-for-byte the same grid whether
// cells run on one worker or many.
func TestGridWorkerInvariance(t *testing.T) {
	tg := Target{Machine: machine.UManycoreConfig(), App: homeT(t), RPS: 3000, RC: shortRC(), Seed: 7}
	o := smallOptions()
	o.Parallel = 1
	seq, err := Run(tg, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallel = 4
	par, err := Run(tg, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("grid differs across worker counts:\n1: %+v\n4: %+v", seq, par)
	}
}

// TestBaselineCellMatchesPlainRun proves the zero-speedup cell is a perfect
// no-op: its latency summary equals an untraced machine.Run of the same
// config/seed, so the what-if layer (and its tracing) perturbs nothing.
func TestBaselineCellMatchesPlainRun(t *testing.T) {
	tg := Target{Machine: machine.UManycoreConfig(), App: homeT(t), RPS: 3000, RC: shortRC(), Seed: 7}
	rep, err := Run(tg, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	rc := shortRC()
	rc.App = tg.App
	rc.RPS = tg.RPS
	rc.Seed = tg.Seed
	plain := machine.Run(tg.Machine, rc)
	if rep.Baseline.Latency != plain.Latency {
		t.Fatalf("baseline cell %+v != plain run %+v", rep.Baseline.Latency, plain.Latency)
	}
	if rep.Baseline.P999US != plain.Sample.Quantile(0.999) {
		t.Fatalf("baseline p99.9 %v != plain %v", rep.Baseline.P999US, plain.Sample.Quantile(0.999))
	}
	if rep.Baseline.Blame.Residual() != 0 {
		t.Fatalf("baseline blame residual = %v ps", rep.Baseline.Blame.Residual())
	}
}

// TestSpeedupMovesLatency checks the grid actually simulates the speedups:
// eliminating the scheduler tax must beat the baseline mean, and each
// stage's factor-0 row must not be slower than its factor-0.5 row on mean.
func TestSpeedupMovesLatency(t *testing.T) {
	tg := Target{Machine: machine.UManycoreConfig(), App: homeT(t), RPS: 3000, RC: shortRC(), Seed: 7}
	rep, err := Run(tg, smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[obs.Stage]map[float64]Row)
	for _, row := range rep.Rows {
		if rows[row.Stage] == nil {
			rows[row.Stage] = map[float64]Row{}
		}
		rows[row.Stage][row.Factor] = row
	}
	if d := rows[obs.StageSched][0].DMeanUS; d >= 0 {
		t.Fatalf("eliminating sched cost did not reduce mean latency (d=%+v us)", d)
	}
	for st, byF := range rows {
		if byF[0].Cell.Latency.Mean > byF[0.5].Cell.Latency.Mean {
			t.Fatalf("stage %v: factor 0 mean %v slower than factor 0.5 mean %v",
				st, byF[0].Cell.Latency.Mean, byF[0.5].Cell.Latency.Mean)
		}
	}
}

// TestShardWorkersCodecByteIdentity is the PDES half of the determinism
// contract: the coupled-fleet grid, pushed through the cache codec, is
// byte-identical for ShardWorkers 1, 4 and the -1 single-engine reference.
func TestShardWorkersCodecByteIdentity(t *testing.T) {
	app := homeT(t)
	encodeAll := func(shardWorkers int) [][]byte {
		fc := fleet.DefaultConfig(machine.UManycoreConfig())
		fc.Servers = 3
		fc.ShardWorkers = shardWorkers
		rep, err := Run(
			Target{Fleet: &fc, App: app, RPS: 9000, RC: shortRC(), Seed: 11},
			Options{Stages: []obs.Stage{obs.StageNet}, Factors: []float64{0.5}},
		)
		if err != nil {
			t.Fatal(err)
		}
		cells := append([]Cell{rep.Baseline}, rep.Rows[0].Cell)
		out := make([][]byte, len(cells))
		for i, c := range cells {
			if out[i], err = encodeCell(c); err != nil {
				t.Fatal(err)
			}
			if c.Blame.ByServerStage == nil {
				t.Fatal("coupled-fleet cell lost its per-server blame split")
			}
		}
		return out
	}
	ref := encodeAll(-1)
	for _, workers := range []int{1, 4} {
		got := encodeAll(workers)
		for i := range ref {
			if !bytes.Equal(ref[i], got[i]) {
				t.Fatalf("cell %d differs: ShardWorkers=-1 vs %d:\n%s\nvs\n%s",
					i, workers, ref[i], got[i])
			}
		}
	}
}

// TestCellCodecRoundTrip checks Encode∘Decode is the identity, including
// the nil-vs-present ByServerStage distinction verify mode depends on.
func TestCellCodecRoundTrip(t *testing.T) {
	cell := Cell{
		Latency: stats.Summary{N: 42, Mean: 10.5, Median: 9.25, P99: 31.75, Max: 40},
		P999US:  38.5,
		Blame: obs.BlameSummary{
			TopFrac:      0.01,
			Total:        4200,
			Analyzed:     42,
			Cutoff:       31 * sim.Microsecond,
			P99:          32 * sim.Microsecond,
			TotalLatency: 1234 * sim.Microsecond,
		},
	}
	cell.Blame.ByStage[obs.StageService] = 1000 * sim.Microsecond
	cell.Blame.ByStage[obs.StageNet] = 234 * sim.Microsecond
	codec := Codec()
	for name, c := range map[string]Cell{"nil-servers": cell, "with-servers": withServers(cell)} {
		enc, err := codec.Encode(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dec, err := codec.Decode(enc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(c, dec) {
			t.Fatalf("%s: round trip mismatch:\n%+v\nvs\n%+v", name, c, dec)
		}
		re, err := codec.Encode(dec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("%s: re-encode differs:\n%s\nvs\n%s", name, enc, re)
		}
	}
	if _, err := codec.Decode([]byte(`{"blame":{"by_stage_ps":[1,2]}}`)); err == nil {
		t.Fatal("decode accepted a truncated stage vector")
	}
}

func withServers(c Cell) Cell {
	c.Blame.ByServerStage = make([][obs.NumStages]sim.Time, 2)
	c.Blame.ByServerStage[0][obs.StageService] = 700 * sim.Microsecond
	c.Blame.ByServerStage[1][obs.StageService] = 300 * sim.Microsecond
	c.Blame.ByServerStage[1][obs.StageNet] = 234 * sim.Microsecond
	return c
}

// TestRunValidation covers the engine's input contract.
func TestRunValidation(t *testing.T) {
	base := Target{Machine: machine.UManycoreConfig(), App: homeT(t), RPS: 3000, RC: shortRC(), Seed: 7}

	tg := base
	tg.App = nil
	if _, err := Run(tg, Options{}); err == nil {
		t.Fatal("accepted a target without an app")
	}

	tg = base
	tg.RC.Obs = obs.DefaultOptions()
	if _, err := Run(tg, Options{}); err == nil {
		t.Fatal("accepted a RunConfig with obs enabled")
	}

	tg = base
	tg.Machine.WhatIf.Sched = 0.5
	if _, err := Run(tg, Options{}); err == nil {
		t.Fatal("accepted a machine config with preset speedups")
	}

	if _, err := Run(base, Options{Factors: []float64{1.5}}); err == nil {
		t.Fatal("accepted a cost factor > 1")
	}
	if _, err := Run(base, Options{Factors: []float64{-0.1}}); err == nil {
		t.Fatal("accepted a negative cost factor")
	}
	if _, err := Run(base, Options{Stages: []obs.Stage{obs.StageQueue}}); err == nil {
		t.Fatal("accepted a non-accelerable stage")
	}

	fc := fleet.DefaultConfig(machine.UManycoreConfig())
	fc.WhatIf.Net = 0.5
	tg = base
	tg.Fleet = &fc
	if _, err := Run(tg, Options{}); err == nil {
		t.Fatal("accepted a fleet config with preset speedups")
	}
}
