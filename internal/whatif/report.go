package whatif

import (
	"fmt"
	"io"

	"umanycore/internal/stats"
)

// WriteTable prints the what-if grid: one row per (stage, factor) with the
// paired-seed latency deltas, the stage's descriptive blame share next to
// its actual p99 payoff, and the top critical-path migration the speedup
// caused. Blame% is constant down each stage block (it is a property of
// the baseline); payoff% is what the virtual speedup really bought — the
// two columns disagreeing is the point of the exercise.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "what-if causal profile: machine=%s app=%s rps=%g", r.Machine, r.App, r.RPS)
	if r.Servers > 0 {
		fmt.Fprintf(w, " servers=%d", r.Servers)
	}
	fmt.Fprintf(w, " seed=%d (top %g%% tail)\n", r.Seed, 100*r.TopFrac)
	fmt.Fprintf(w, "baseline: n=%d mean=%.2f p50=%.2f p99=%.2f p99.9=%.2f max=%.2f [us]\n",
		r.Baseline.Latency.N, r.Baseline.Latency.Mean, r.Baseline.Latency.Median,
		r.Baseline.Latency.P99, r.Baseline.P999US, r.Baseline.Latency.Max)
	fmt.Fprintf(w, "%-10s %6s %11s %11s %11s %11s %7s %8s  %s\n",
		"stage", "factor", "dmean[us]", "dp50[us]", "dp99[us]", "dp99.9[us]",
		"blame%", "payoff%", "top migration")
	var prev string
	for _, row := range r.Rows {
		name := row.Stage.String()
		if name == prev {
			name = ""
		} else {
			prev = name
		}
		mig := "-"
		if movers := row.Diff.TopMovers(1); len(movers) > 0 && movers[0].DeltaShare != 0 {
			mig = fmt.Sprintf("%s %+.1fpp", movers[0].Stage, 100*movers[0].DeltaShare)
		}
		fmt.Fprintf(w, "%-10s %6.2f %+11.2f %+11.2f %+11.2f %+11.2f %6.1f%% %7.1f%%  %s\n",
			name, row.Factor, row.DMeanUS, row.DP50US, row.DP99US, row.DP999US,
			100*row.BlameShare, 100*row.PayoffP99, mig)
	}
}

// WriteJSON emits the report as one deterministic JSON object (fixed field
// order, shortest-exact floats) followed by a newline. Per-row critical-path
// migration is reduced to the three largest share movers.
func (r *Report) WriteJSON(w io.Writer) error {
	var o stats.JSONObject
	o.Str("machine", r.Machine).
		Str("app", r.App).
		Float("rps", r.RPS).
		Int("servers", int64(r.Servers)).
		Int("seed", r.Seed).
		Float("top_frac", r.TopFrac).
		FloatArr("factors", r.Factors)
	base, err := encodeCell(r.Baseline)
	if err != nil {
		return err
	}
	o.Raw("baseline", base)
	rows := make([][]byte, len(r.Rows))
	for i, row := range r.Rows {
		cell, err := encodeCell(row.Cell)
		if err != nil {
			return err
		}
		var ro stats.JSONObject
		ro.Str("stage", row.Stage.String()).
			Float("factor", row.Factor).
			Raw("cell", cell).
			Float("d_mean_us", row.DMeanUS).
			Float("d_p50_us", row.DP50US).
			Float("d_p99_us", row.DP99US).
			Float("d_p999_us", row.DP999US).
			Float("blame_share", row.BlameShare).
			Float("payoff_p99", row.PayoffP99)
		movers := row.Diff.TopMovers(3)
		migs := make([][]byte, len(movers))
		for j, mv := range movers {
			var mo stats.JSONObject
			mo.Str("stage", mv.Stage.String()).
				Float("base_share", mv.BaseShare).
				Float("variant_share", mv.VariantShare).
				Float("d_share", mv.DeltaShare).
				Float("d_us", mv.DeltaUS)
			migs[j] = mo.Bytes()
		}
		ro.RawArr("migration", migs)
		rows[i] = ro.Bytes()
	}
	o.RawArr("rows", rows)
	if _, err := w.Write(o.Bytes()); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}
