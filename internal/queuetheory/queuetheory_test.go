package queuetheory

import (
	"math"
	"testing"
)

func approxRel(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > tol {
			t.Errorf("%s = %v, want ~0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > tol {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func TestMM1KnownValues(t *testing.T) {
	// λ=0.5, μ=1: rho=0.5, Wq = 0.5/(1-0.5)/1 = 1, W = 2.
	wq, w, err := MM1(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	approxRel(t, "Wq", wq, 1, 1e-12)
	approxRel(t, "W", w, 2, 1e-12)
	if _, _, err := MM1(2, 1); err == nil {
		t.Fatal("unstable M/M/1 accepted")
	}
}

func TestErlangCKnownValues(t *testing.T) {
	// Classic value: a=2 Erlangs over c=3 servers → P(wait) ≈ 0.4444.
	pw, err := ErlangC(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	approxRel(t, "ErlangC(2,1,3)", pw, 4.0/9.0, 1e-9)
	// c=1 reduces to rho.
	pw, _ = ErlangC(0.7, 1, 1)
	approxRel(t, "ErlangC(c=1)", pw, 0.7, 1e-9)
	if _, err := ErlangC(3, 1, 3); err == nil {
		t.Fatal("unstable accepted")
	}
	if _, err := ErlangC(1, 1, 0); err == nil {
		t.Fatal("zero servers accepted")
	}
}

func TestMMcConsistentWithMM1(t *testing.T) {
	wq1, w1, _ := MM1(0.6, 1)
	wqc, wc, err := MMc(0.6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	approxRel(t, "Wq c=1", wqc, wq1, 1e-9)
	approxRel(t, "W c=1", wc, w1, 1e-9)
	// More servers at the same per-server rho wait less.
	wq2, _, _ := MMc(1.2, 1, 2)
	wq4, _, _ := MMc(2.4, 1, 4)
	if !(wq4 < wq2 && wq2 < wq1) {
		t.Fatalf("pooling should shrink waits: %v %v %v", wq1, wq2, wq4)
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	// Exponential service: PK must equal M/M/1.
	wqMM1, _, _ := MM1(0.5, 1)
	wqPK, _, err := MG1(0.5, 1, ExpSecondMoment(1))
	if err != nil {
		t.Fatal(err)
	}
	approxRel(t, "PK vs MM1", wqPK, wqMM1, 1e-12)
	// Deterministic service halves the wait (Cs²=0).
	wqDet, _, _ := MG1(0.5, 1, DetSecondMoment(1))
	approxRel(t, "det vs exp", wqDet, wqMM1/2, 1e-12)
	if _, _, err := MG1(1.2, 1, 2); err == nil {
		t.Fatal("unstable M/G/1 accepted")
	}
}

func TestSecondMoments(t *testing.T) {
	approxRel(t, "exp E[S²]", ExpSecondMoment(3), 18, 1e-12)
	approxRel(t, "det E[S²]", DetSecondMoment(3), 9, 1e-12)
	// Lognormal with sigma→0 approaches deterministic.
	approxRel(t, "lgn sigma→0", LognormalSecondMoment(3, 1e-6), 9, 1e-3)
	// Bimodal point mass at a single value is deterministic.
	approxRel(t, "bimodal degenerate", BimodalSecondMoment(3, 3, 0.5), 9, 1e-12)
	// Heavier tails raise the second moment.
	if LognormalSecondMoment(3, 1.0) <= 9 {
		t.Fatal("lognormal second moment too small")
	}
}

func TestMMcP99Wait(t *testing.T) {
	p99, err := MMcP99Wait(0.8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// M/M/1 at rho 0.8: P99 wait = ln(100×0.8)/(1−0.8) = ln(80)/0.2.
	approxRel(t, "P99 wait", p99, math.Log(80)/0.2, 1e-9)
	// Light load: almost nobody waits → 0.
	p99, _ = MMcP99Wait(0.01, 1, 16)
	if p99 != 0 {
		t.Fatalf("light-load P99 = %v", p99)
	}
}
