// Package queuetheory provides closed-form queueing results — M/M/1, M/M/c
// (Erlang C), and M/G/1 (Pollaczek–Khinchine) — used to cross-validate the
// discrete-event simulator: a machine reduced to a single FCFS service
// center must reproduce these formulas, which pins down the correctness of
// the arrival, dispatch, and busy-until machinery that every experiment in
// this repository rests on.
package queuetheory

import (
	"fmt"
	"math"
)

// MM1 returns the mean wait-in-queue (Wq) and mean sojourn time (W) for an
// M/M/1 queue with arrival rate lambda and service rate mu (same time unit).
func MM1(lambda, mu float64) (wq, w float64, err error) {
	rho := lambda / mu
	if rho >= 1 {
		return 0, 0, fmt.Errorf("queuetheory: M/M/1 unstable (rho=%v)", rho)
	}
	wq = rho / (mu - lambda)
	return wq, wq + 1/mu, nil
}

// ErlangC returns the probability an arriving job waits in an M/M/c queue
// (the Erlang C formula).
func ErlangC(lambda, mu float64, c int) (float64, error) {
	if c <= 0 {
		return 0, fmt.Errorf("queuetheory: need at least one server")
	}
	a := lambda / mu // offered load in Erlangs
	rho := a / float64(c)
	if rho >= 1 {
		return 0, fmt.Errorf("queuetheory: M/M/c unstable (rho=%v)", rho)
	}
	// Sum_{k=0}^{c-1} a^k/k! computed in log space for stability.
	sum := 0.0
	term := 1.0
	for k := 0; k < c; k++ {
		if k > 0 {
			term *= a / float64(k)
		}
		sum += term
	}
	top := term * a / float64(c) / (1 - rho)
	return top / (sum + top), nil
}

// MMc returns the mean wait-in-queue and sojourn time for an M/M/c queue.
func MMc(lambda, mu float64, c int) (wq, w float64, err error) {
	pw, err := ErlangC(lambda, mu, c)
	if err != nil {
		return 0, 0, err
	}
	rho := lambda / (mu * float64(c))
	wq = pw / (float64(c)*mu - lambda)
	_ = rho
	return wq, wq + 1/mu, nil
}

// MG1 returns the mean wait-in-queue and sojourn time for an M/G/1 queue via
// Pollaczek–Khinchine: Wq = λ·E[S²] / (2(1−ρ)).
func MG1(lambda, meanS, secondMomentS float64) (wq, w float64, err error) {
	rho := lambda * meanS
	if rho >= 1 {
		return 0, 0, fmt.Errorf("queuetheory: M/G/1 unstable (rho=%v)", rho)
	}
	wq = lambda * secondMomentS / (2 * (1 - rho))
	return wq, wq + meanS, nil
}

// ExpSecondMoment returns E[S²] for an exponential with the given mean.
func ExpSecondMoment(mean float64) float64 { return 2 * mean * mean }

// DetSecondMoment returns E[S²] for a deterministic service time.
func DetSecondMoment(mean float64) float64 { return mean * mean }

// LognormalSecondMoment returns E[S²] for a lognormal parameterized by its
// mean and the sigma of the underlying normal (matching dist.Lognormal).
func LognormalSecondMoment(mean, sigma float64) float64 {
	// E[X] = exp(mu + s²/2), E[X²] = exp(2mu + 2s²)
	mu := math.Log(mean) - sigma*sigma/2
	return math.Exp(2*mu + 2*sigma*sigma)
}

// BimodalSecondMoment returns E[S²] for the two-point distribution used by
// dist.Bimodal.
func BimodalSecondMoment(lo, hi, pLo float64) float64 {
	return pLo*lo*lo + (1-pLo)*hi*hi
}

// MMcP99Wait approximates the 99th percentile of wait-in-queue for M/M/c:
// conditional on waiting, the wait is exponential with rate cμ−λ, so
// P99(Wq) = max(0, ln(100·Pwait) / (cμ−λ)).
func MMcP99Wait(lambda, mu float64, c int) (float64, error) {
	pw, err := ErlangC(lambda, mu, c)
	if err != nil {
		return 0, err
	}
	rate := float64(c)*mu - lambda
	if 100*pw <= 1 {
		return 0, nil
	}
	return math.Log(100*pw) / rate, nil
}
