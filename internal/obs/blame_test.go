package obs

import (
	"strings"
	"testing"

	"umanycore/internal/sim"
)

// buildTree records a request with two parallel child invocations plus local
// stage spans, exercising gap attribution and critical-path selection:
//
//	request [0, 100]
//	  queue   [0, 10]
//	  service [10, 20]
//	  invoke A [20, 50]   (finishes first — off the critical path)
//	    service [22, 48]
//	  invoke B [20, 90]   (finishes last — critical)
//	    net     [20, 30]
//	    service [30, 80]
//	    net     [80, 90]
//	  service [90, 100]
func buildTree(c *Collector) {
	root := c.StartRoot(1, 0, 0)
	c.Add(root, StageQueue, 0, 10)
	c.Add(root, StageService, 10, 20)
	a := c.Start(root, StageInvoke, 1, 20)
	c.Add(a, StageService, 22, 48)
	c.End(a, 50)
	b := c.Start(root, StageInvoke, 2, 20)
	c.Add(b, StageNet, 20, 30)
	c.Add(b, StageService, 30, 80)
	c.Add(b, StageNet, 80, 90)
	c.End(b, 90)
	c.Add(root, StageService, 90, 100)
	c.End(root, 100)
}

func TestAnalyzeCriticalPath(t *testing.T) {
	c := NewCollector()
	buildTree(c)
	rep := Analyze(c.Spans(), 1)
	if rep.Total != 1 || len(rep.Requests) != 1 {
		t.Fatalf("analyzed %d/%d requests, want 1/1", len(rep.Requests), rep.Total)
	}
	rb := rep.Requests[0]
	if rb.Latency != 100 {
		t.Fatalf("latency = %v, want 100", rb.Latency)
	}
	// Critical path: queue 10 + service 10 + B's net 10 + B's service 50 +
	// B's net 10 + root service 10 = 100. Invoke A contributes nothing.
	want := [NumStages]sim.Time{}
	want[StageQueue] = 10
	want[StageService] = 70
	want[StageNet] = 20
	if rb.ByStage != want {
		t.Fatalf("ByStage = %v, want %v", rb.ByStage, want)
	}
	if rep.Residual() != 0 {
		t.Fatalf("residual = %v, want 0", rep.Residual())
	}
}

func TestAnalyzeGapsGoToEnvelope(t *testing.T) {
	c := NewCollector()
	// A root with one child span covering [40, 60] of a [0, 100] request:
	// the uncovered 80 units are the envelope's own (StageOther) time.
	root := c.StartRoot(1, 0, 0)
	c.Add(root, StageService, 40, 60)
	c.End(root, 100)
	rep := Analyze(c.Spans(), 1)
	rb := rep.Requests[0]
	if rb.ByStage[StageOther] != 80 || rb.ByStage[StageService] != 20 {
		t.Fatalf("ByStage = %v, want other=80 service=20", rb.ByStage)
	}
	if rep.Residual() != 0 {
		t.Fatalf("residual = %v, want 0", rep.Residual())
	}
}

func TestAnalyzeExcludesOpenAndRejected(t *testing.T) {
	c := NewCollector()
	buildTree(c) // clean request 1
	open := c.StartRoot(2, 0, 0)
	c.Add(open, StageQueue, 0, 5) // request 2 never finishes
	rej := c.StartRoot(3, 0, 0)
	c.Flag(rej, FlagRejected)
	c.End(rej, 7) // request 3 was rejected
	_ = open
	rep := Analyze(c.Spans(), 1)
	if rep.Total != 1 {
		t.Fatalf("Total = %d, want 1 (open and rejected roots excluded)", rep.Total)
	}
}

func TestAnalyzeTopFraction(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 200; i++ {
		root := c.StartRoot(uint64(i+1), 0, 0)
		c.End(root, sim.Time(100+i)) // latencies 100..299
	}
	rep := Analyze(c.Spans(), 0.01)
	if rep.Total != 200 {
		t.Fatalf("Total = %d, want 200", rep.Total)
	}
	if len(rep.Requests) != 2 {
		t.Fatalf("analyzed %d, want ceil(0.01*200)=2", len(rep.Requests))
	}
	if rep.Requests[0].Latency != 299 || rep.Requests[1].Latency != 298 {
		t.Fatalf("top-2 latencies = %v,%v want 299,298",
			rep.Requests[0].Latency, rep.Requests[1].Latency)
	}
	// Nearest-rank p99 of 100..299 is the 198th value = 297.
	if rep.P99 != 297 {
		t.Fatalf("P99 = %v, want 297", rep.P99)
	}
	if rep.Cutoff != 298 {
		t.Fatalf("Cutoff = %v, want 298", rep.Cutoff)
	}
}

func TestWriteTableReconciles(t *testing.T) {
	c := NewCollector()
	buildTree(c)
	rep := Analyze(c.Spans(), 1)
	var sb strings.Builder
	rep.WriteTable(&sb)
	out := sb.String()
	if !strings.Contains(out, "residual 0ps") {
		t.Fatalf("table missing zero residual:\n%s", out)
	}
	if !strings.Contains(out, "100.0%") {
		t.Fatalf("table missing 100%% end-to-end line:\n%s", out)
	}
}

func TestMergeRebasesIDs(t *testing.T) {
	c1 := NewCollector()
	buildTree(c1)
	c2 := NewCollector()
	buildTree(c2)
	merged := Merge([]*Run{{Spans: c1.Spans()}, {Spans: c2.Spans()}})
	if len(merged.Spans) != c1.Len()+c2.Len() {
		t.Fatalf("merged %d spans, want %d", len(merged.Spans), c1.Len()+c2.Len())
	}
	seen := make(map[uint64]bool)
	reqs := make(map[uint64]bool)
	for _, s := range merged.Spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d after merge", s.ID)
		}
		seen[s.ID] = true
		reqs[s.Req] = true
		if s.Parent != 0 && !seen[s.Parent] {
			// Parents are recorded before children in both collectors, so
			// re-based parents must stay resolvable.
			t.Fatalf("span %d references unseen parent %d", s.ID, s.Parent)
		}
	}
	if len(reqs) != 2 {
		t.Fatalf("merged requests = %d, want 2 (IDs re-based)", len(reqs))
	}
	// Both requests must still analyze cleanly after re-basing.
	rep := Analyze(merged.Spans, 1)
	if rep.Total != 2 || rep.Residual() != 0 {
		t.Fatalf("merged analyze: total=%d residual=%v, want 2, 0", rep.Total, rep.Residual())
	}
}
