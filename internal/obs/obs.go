// Package obs is the simulation-wide observability layer: per-request span
// tracing, a metrics registry with named instruments, tail-blame attribution
// over span trees, and Perfetto/CSV exporters.
//
// The layer is designed around two hard constraints shared with the rest of
// the repository:
//
//   - Zero overhead when disabled. The machine model holds nil collector /
//     registry pointers by default; every instrumentation site is guarded by
//     a nil check and allocates nothing when observability is off (verified
//     by the disabled-instrumentation benchmarks next to machine_bench_test).
//   - Determinism. Recorded data contains only virtual (sim.Time) clocks and
//     values derived from the seeded simulation — never wall time — so a
//     traced run is bit-identical across repetitions and sweep worker counts,
//     and per-worker collectors merge into an order-independent result.
//
// Span model: every measured root request owns a span tree. The root span
// (StageRequest) covers arrival to response egress; each child RPC becomes a
// StageInvoke span parented to its caller's span; queue waits, scheduling
// overheads, context switches, memory-stall penalties, software RPC
// processing, compute segments, storage accesses and ICN/NIC transfers are
// leaf spans parented to their invocation's span. The blame analyzer
// extracts the exact critical path through that tree, so per-stage sums
// reconcile with end-to-end latency to the picosecond.
package obs

import "umanycore/internal/sim"

// Stage classifies what a span's interval was spent on.
type Stage uint8

// Stages, in pipeline order.
const (
	// StageRequest is the whole-request envelope (the root invocation).
	StageRequest Stage = iota
	// StageInvoke is a child invocation's envelope (one RPC subtree).
	StageInvoke
	// StageIngress is top-level NIC ingress/egress and external delivery.
	StageIngress
	// StageQueue is time waiting in a scheduling domain's queue.
	StageQueue
	// StageSched is dequeue / queue-lock / dispatch overhead.
	StageSched
	// StageCS is context save/restore, including dispatcher serialization
	// under a centralized scheduler.
	StageCS
	// StageMem is the coherence / migration memory-stall share charged when
	// an invocation resumes on a different core.
	StageMem
	// StageRPC is software RPC processing (receive / send / resume taxes).
	StageRPC
	// StageService is handler compute on a core.
	StageService
	// StageStorage is a storage access, including the external storage
	// network (retransmissions recorded in Span.Retries).
	StageStorage
	// StageNet is ICN / NIC transfer of RPC request and response messages.
	StageNet
	// StageOther is the untracked residual: self-time of request/invoke
	// envelopes not covered by any child span.
	StageOther
	// NumStages bounds per-stage arrays.
	NumStages
)

var stageNames = [NumStages]string{
	"request", "invoke", "ingress", "queue", "sched", "ctxswitch",
	"mem-stall", "rpc-proc", "service", "storage", "net", "other",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// Span flags.
const (
	// FlagRejected marks an invocation dropped by admission control; its
	// request never completes and is excluded from tail analysis.
	FlagRejected uint8 = 1 << iota
)

// Span is one recorded interval in a request's span tree. End stays zero
// while the span is open (a request still in flight when the simulation
// stops never closes its envelope).
type Span struct {
	ID     uint64
	Parent uint64 // 0 = root span
	// Req is the root request's invocation ID — the grouping key for all
	// spans of one request tree.
	Req   uint64
	Stage Stage
	Flags uint8
	// SvcID is the service ID for request/invoke envelopes, -1 otherwise.
	SvcID int16
	// Core is the global core ID for service spans, -1 otherwise.
	Core int32
	// Retries counts retransmissions realized inside the span (storage
	// accesses over the lossy external network).
	Retries uint32
	// Server is the index of the server (merge-input run) that recorded the
	// span. Merge assigns it from the input position; 0 before merging.
	Server int32
	// Link pairs the two halves of one cross-server child RPC: the caller's
	// invoke span and the peer-side envelope recorded on the other server
	// carry the same fleet-assigned link ID, and Merge stitches them into
	// one tree. 0 = no remote link.
	Link  uint64
	Start sim.Time
	End   sim.Time
}

// Dur returns the span's length (0 for open spans).
func (s *Span) Dur() sim.Time {
	if s.End <= s.Start {
		return 0
	}
	return s.End - s.Start
}

// Collector records spans for one simulation run. It is single-goroutine by
// design (one collector per machine per run); parallel sweeps give every
// worker its own collector and merge them afterwards with Merge.
type Collector struct {
	spans []Span
}

// NewCollector returns an empty collector with storage preallocated for a
// typical measured run.
func NewCollector() *Collector {
	return &Collector{spans: make([]Span, 0, 4096)}
}

func (c *Collector) push(s Span) uint64 {
	s.ID = uint64(len(c.spans)) + 1
	c.spans = append(c.spans, s)
	return s.ID
}

// StartRoot opens a request envelope span for root request req.
func (c *Collector) StartRoot(req uint64, svc int16, start sim.Time) uint64 {
	return c.push(Span{Req: req, Stage: StageRequest, SvcID: svc, Core: -1, Start: start})
}

// StartRemote opens a peer-served invocation envelope: a parentless
// StageInvoke span tagged with a fleet-wide remote-link ID, recording the
// subtree this server runs on behalf of a caller on another server. Merge
// reparents it under the caller's invoke span carrying the same link.
func (c *Collector) StartRemote(req, link uint64, svc int16, start sim.Time) uint64 {
	return c.push(Span{Req: req, Stage: StageInvoke, SvcID: svc, Core: -1, Link: link, Start: start})
}

// SetLink tags a span with a remote-link ID.
func (c *Collector) SetLink(id, link uint64) { c.spans[id-1].Link = link }

// Start opens a child span under parent, inheriting the parent's request.
func (c *Collector) Start(parent uint64, stage Stage, svc int16, start sim.Time) uint64 {
	return c.push(Span{Parent: parent, Req: c.spans[parent-1].Req, Stage: stage, SvcID: svc, Core: -1, Start: start})
}

// Add records a complete child span under parent.
func (c *Collector) Add(parent uint64, stage Stage, start, end sim.Time) uint64 {
	id := c.Start(parent, stage, -1, start)
	c.spans[id-1].End = end
	return id
}

// AddOnCore records a complete child span annotated with the core it ran on.
func (c *Collector) AddOnCore(parent uint64, stage Stage, core int, start, end sim.Time) uint64 {
	id := c.Add(parent, stage, start, end)
	c.spans[id-1].Core = int32(core)
	return id
}

// End closes an open span.
func (c *Collector) End(id uint64, end sim.Time) { c.spans[id-1].End = end }

// Flag ORs flags into a span.
func (c *Collector) Flag(id uint64, flags uint8) { c.spans[id-1].Flags |= flags }

// AddRetries annotates a span with realized retransmissions.
func (c *Collector) AddRetries(id uint64, n uint32) { c.spans[id-1].Retries += n }

// Len returns the number of recorded spans.
func (c *Collector) Len() int { return len(c.spans) }

// Spans exposes the recorded spans (IDs are dense: spans[i].ID == i+1).
func (c *Collector) Spans() []Span { return c.spans }

// Options selects which observability components a run enables. A nil
// *Options on a RunConfig disables the layer entirely.
type Options struct {
	// Trace records per-request span trees.
	Trace bool
	// Metrics collects the named-instrument registry.
	Metrics bool
}

// DefaultOptions enables both tracing and metrics.
func DefaultOptions() *Options { return &Options{Trace: true, Metrics: true} }

// Run bundles one simulation's observability output: the recorded spans and
// the metrics snapshot. Both are deterministic functions of the run's seed.
type Run struct {
	Spans   []Span
	Metrics Snapshot
}

// Merge combines runs from independent collectors (fleet servers, sweep
// replicates) into one Run, re-basing span and request IDs so they stay
// unique and tagging every span with its input index (Span.Server). It then
// stitches cross-server subtrees: a peer-served envelope (parentless,
// link-tagged — see Collector.StartRemote) becomes a child of the caller's
// invoke span carrying the same link, and its subtree joins the caller's
// request tree, so tail blame and exporters see one tree per root request
// even when it spanned servers. The result depends only on the input order —
// which callers fix to server/job order — never on worker count or
// scheduling.
func Merge(runs []*Run) *Run {
	merged := &Run{}
	var snaps []Snapshot
	var idOff, reqOff uint64
	hasLinks := false
	for i, r := range runs {
		if r == nil {
			continue
		}
		var maxID, maxReq uint64
		for _, s := range r.Spans {
			ns := s
			ns.ID += idOff
			if ns.Parent != 0 {
				ns.Parent += idOff
			}
			ns.Req += reqOff
			ns.Server = int32(i)
			merged.Spans = append(merged.Spans, ns)
			if s.ID > maxID {
				maxID = s.ID
			}
			if s.Req > maxReq {
				maxReq = s.Req
			}
			if s.Link != 0 {
				hasLinks = true
			}
		}
		idOff += maxID
		reqOff += maxReq
		if r.Metrics != nil {
			snaps = append(snaps, r.Metrics)
		}
	}
	if hasLinks {
		stitch(merged.Spans)
	}
	merged.Metrics = CombineSnapshots(snaps)
	return merged
}

// stitch reparents every peer-served envelope under the caller invoke span
// sharing its link and rewrites the peer subtree's request IDs to the
// caller's, resolving chains so nested cross-server calls collapse into the
// originating root's tree. Links are fleet-unique, so the pairing — and
// with it the merged result — is deterministic.
func stitch(spans []Span) {
	callers := make(map[uint64]uint64) // link -> caller invoke span ID
	for i := range spans {
		if s := &spans[i]; s.Link != 0 && s.Parent != 0 {
			callers[s.Link] = s.ID
		}
	}
	reqMap := make(map[uint64]uint64) // envelope Req -> caller Req
	for i := range spans {
		s := &spans[i]
		if s.Link == 0 || s.Parent != 0 {
			continue
		}
		if cid, ok := callers[s.Link]; ok {
			s.Parent = cid
			reqMap[s.Req] = spans[cid-1].Req
		}
	}
	if len(reqMap) == 0 {
		return
	}
	for i := range spans {
		req := spans[i].Req
		// Chains terminate: each hop moves to an earlier caller's tree.
		for {
			next, ok := reqMap[req]
			if !ok {
				break
			}
			req = next
		}
		spans[i].Req = req
	}
}
