package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"

	"umanycore/internal/sim"
)

// Exemplar is one of the K slowest request trees of a run: the stitched
// tree's spans plus the root identity, the concrete artifact behind a tail
// percentile ("show me the requests that made p99 what it is").
type Exemplar struct {
	// Req is the root request's (merged) invocation ID.
	Req uint64
	// SvcID is the root service (request type).
	SvcID int16
	// Latency is the end-to-end latency (root span length).
	Latency sim.Time
	// Servers counts the distinct servers the tree's spans ran on.
	Servers int
	// Spans is the tree in recording (span ID) order — for stitched trees,
	// caller-side spans and peer-side subtrees interleaved by merge order.
	Spans []Span
}

// Exemplars selects the k slowest finished, clean request trees from spans,
// slowest first. Selection ranks by root span length with request-ID
// tie-breaks — virtual time only, so on merged fleet traces the choice is
// bit-identical for every shard-worker count including the single-engine
// reference. Open or rejected trees are excluded, like Analyze's.
func Exemplars(spans []Span, k int) []Exemplar {
	if k <= 0 {
		return nil
	}
	var roots []int
	for i := range spans {
		s := &spans[i]
		if s.Parent == 0 && s.Stage == StageRequest && s.End > s.Start && s.Flags == 0 {
			roots = append(roots, i)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	sort.Slice(roots, func(a, b int) bool {
		ra, rb := &spans[roots[a]], &spans[roots[b]]
		da, db := ra.Dur(), rb.Dur()
		if da != db {
			return da > db
		}
		return ra.Req < rb.Req
	})
	if k > len(roots) {
		k = len(roots)
	}
	out := make([]Exemplar, k)
	pick := make(map[uint64]int, k) // root Req -> exemplar index
	for i, ri := range roots[:k] {
		root := &spans[ri]
		out[i] = Exemplar{Req: root.Req, SvcID: root.SvcID, Latency: root.Dur()}
		pick[root.Req] = i
	}
	// One pass groups every span into its root's tree: after stitching, all
	// spans of a cross-server tree share the root's Req.
	for i := range spans {
		if xi, ok := pick[spans[i].Req]; ok {
			out[xi].Spans = append(out[xi].Spans, spans[i])
		}
	}
	for i := range out {
		seen := make(map[int32]bool, 4)
		for j := range out[i].Spans {
			seen[out[i].Spans[j].Server] = true
		}
		out[i].Servers = len(seen)
	}
	return out
}

// WriteExemplarsJSON emits exemplars as one deterministic JSON object:
//
//	{"k":N,"exemplars":[{"req":..,"svc":..,"latency_us":..,"servers":..,
//	  "spans":[{"span":..,"parent":..,"stage":"..","svc":..,"core":..,
//	            "server":..,"link":..,"start_us":..,"end_us":..,
//	            "retries":..,"flags":..},...]},...]}
//
// Times are virtual microseconds at fixed three-decimal precision, so the
// bytes are identical across repetitions and worker counts — ci.sh compares
// the file across shard-worker values.
func WriteExemplarsJSON(w io.Writer, xs []Exemplar) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"k":`)
	bw.Write(strconv.AppendInt(nil, int64(len(xs)), 10))
	bw.WriteString(`,"exemplars":[`)
	var buf []byte
	for i := range xs {
		x := &xs[i]
		if i > 0 {
			bw.WriteByte(',')
		}
		buf = buf[:0]
		buf = append(buf, `{"req":`...)
		buf = strconv.AppendUint(buf, x.Req, 10)
		buf = append(buf, `,"svc":`...)
		buf = strconv.AppendInt(buf, int64(x.SvcID), 10)
		buf = append(buf, `,"latency_us":`...)
		buf = appendMicros(buf, x.Latency.Micros())
		buf = append(buf, `,"servers":`...)
		buf = strconv.AppendInt(buf, int64(x.Servers), 10)
		buf = append(buf, `,"spans":[`...)
		bw.Write(buf)
		for j := range x.Spans {
			s := &x.Spans[j]
			buf = buf[:0]
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"span":`...)
			buf = strconv.AppendUint(buf, s.ID, 10)
			buf = append(buf, `,"parent":`...)
			buf = strconv.AppendUint(buf, s.Parent, 10)
			buf = append(buf, `,"stage":"`...)
			buf = append(buf, s.Stage.String()...)
			buf = append(buf, `","svc":`...)
			buf = strconv.AppendInt(buf, int64(s.SvcID), 10)
			buf = append(buf, `,"core":`...)
			buf = strconv.AppendInt(buf, int64(s.Core), 10)
			buf = append(buf, `,"server":`...)
			buf = strconv.AppendInt(buf, int64(s.Server), 10)
			buf = append(buf, `,"link":`...)
			buf = strconv.AppendUint(buf, s.Link, 10)
			buf = append(buf, `,"start_us":`...)
			buf = appendMicros(buf, float64(s.Start)/1e6)
			buf = append(buf, `,"end_us":`...)
			var end float64
			if s.End > s.Start {
				end = float64(s.End) / 1e6
			}
			buf = appendMicros(buf, end)
			buf = append(buf, `,"retries":`...)
			buf = strconv.AppendUint(buf, uint64(s.Retries), 10)
			buf = append(buf, `,"flags":`...)
			buf = strconv.AppendUint(buf, uint64(s.Flags), 10)
			buf = append(buf, '}')
			bw.Write(buf)
		}
		bw.WriteString(`]}`)
	}
	bw.WriteString(`]}`)
	return bw.Flush()
}

// ExemplarSpans concatenates the exemplars' spans (slowest tree first) —
// the input for a Perfetto trace restricted to the tail exemplars.
func ExemplarSpans(xs []Exemplar) []Span {
	n := 0
	for i := range xs {
		n += len(xs[i].Spans)
	}
	out := make([]Span, 0, n)
	for i := range xs {
		out = append(out, xs[i].Spans...)
	}
	return out
}
