package obs

import (
	"fmt"
	"io"
	"sort"

	"umanycore/internal/sim"
)

// BlameSummary is the cacheable core of a Report: the aggregate
// critical-path attribution without span trees or per-request rows. It is
// what the what-if engine persists per sweep cell (internal/whatif) and
// what differential blame operates on, so diffs work identically on fresh
// and cache-decoded results.
type BlameSummary struct {
	// TopFrac is the analyzed tail fraction.
	TopFrac float64
	// Total counts finished clean traced requests; Analyzed the tail slice.
	Total, Analyzed int
	// Cutoff / P99 are the tail threshold and traced p99 latency.
	Cutoff, P99 sim.Time
	// TotalLatency sums the analyzed requests' end-to-end latencies.
	TotalLatency sim.Time
	// ByStage sums critical-path time per stage; equals TotalLatency.
	ByStage [NumStages]sim.Time
	// ByServerStage splits ByStage by recording server (nil when the trace
	// came from one server).
	ByServerStage [][NumStages]sim.Time
}

// Summary reduces a Report to its aggregate core.
func (r *Report) Summary() BlameSummary {
	return BlameSummary{
		TopFrac:       r.TopFrac,
		Total:         r.Total,
		Analyzed:      len(r.Requests),
		Cutoff:        r.Cutoff,
		P99:           r.P99,
		TotalLatency:  r.TotalLatency(),
		ByStage:       r.ByStage,
		ByServerStage: r.ByServerStage,
	}
}

// Residual is TotalLatency minus the stage sums — zero for any summary
// produced by Analyze (the critical-path invariant).
func (s *BlameSummary) Residual() sim.Time {
	t := s.TotalLatency
	for _, d := range s.ByStage {
		t -= d
	}
	return t
}

// StageShift is one stage's row of a differential blame report: where the
// analyzed tail's critical-path time sat before and after a change. Times
// are mean microseconds per analyzed request; shares are fractions of each
// side's analyzed tail latency.
type StageShift struct {
	Stage                               Stage
	BaseUS, VariantUS, DeltaUS          float64
	BaseShare, VariantShare, DeltaShare float64
}

// ServerShift is the per-server analogue: each server's critical-path
// contribution to the analyzed tail before and after.
type ServerShift struct {
	Server                              int
	BaseUS, VariantUS, DeltaUS          float64
	BaseShare, VariantShare, DeltaShare float64
}

// ReportDiff is a differential blame report between two analyses of the
// same workload (typically baseline vs one virtual speedup): how
// critical-path attribution migrates between stages and servers. Because
// both sides obey the zero-residual invariant, the stage rows telescope:
// the BaseUS column sums to BasePerReqUS and the VariantUS column to
// VariantPerReqUS, so DeltaUS rows sum exactly to the mean tail-latency
// change.
type ReportDiff struct {
	// BasePerReqUS / VariantPerReqUS are the mean end-to-end latencies of
	// the analyzed tail requests on each side.
	BasePerReqUS, VariantPerReqUS float64
	// BaseResidualPS / VariantResidualPS are each side's residuals in
	// picoseconds (zero unless a span tree violated an invariant).
	BaseResidualPS, VariantResidualPS int64
	// Stages lists every stage with critical-path time on either side, in
	// pipeline order.
	Stages []StageShift
	// Servers lists per-server shifts when either side has a per-server
	// split (coupled-fleet traces); nil otherwise.
	Servers []ServerShift
}

// DiffReports builds the differential blame report between two analyses —
// base first, variant second.
func DiffReports(base, variant *Report) *ReportDiff {
	return DiffBlame(base.Summary(), variant.Summary())
}

// DiffBlame is DiffReports over pre-reduced summaries (the cached form).
func DiffBlame(base, variant BlameSummary) *ReportDiff {
	d := &ReportDiff{
		BasePerReqUS:      perReqUS(base.TotalLatency, base.Analyzed),
		VariantPerReqUS:   perReqUS(variant.TotalLatency, variant.Analyzed),
		BaseResidualPS:    int64(base.Residual()),
		VariantResidualPS: int64(variant.Residual()),
	}
	for _, st := range blameOrder {
		b, v := base.ByStage[st], variant.ByStage[st]
		if b == 0 && v == 0 {
			continue
		}
		row := StageShift{
			Stage:        st,
			BaseUS:       perReqUS(b, base.Analyzed),
			VariantUS:    perReqUS(v, variant.Analyzed),
			BaseShare:    share(b, base.TotalLatency),
			VariantShare: share(v, variant.TotalLatency),
		}
		row.DeltaUS = row.VariantUS - row.BaseUS
		row.DeltaShare = row.VariantShare - row.BaseShare
		d.Stages = append(d.Stages, row)
	}
	servers := len(base.ByServerStage)
	if len(variant.ByServerStage) > servers {
		servers = len(variant.ByServerStage)
	}
	for s := 0; s < servers; s++ {
		var b, v sim.Time
		if s < len(base.ByServerStage) {
			for _, t := range base.ByServerStage[s] {
				b += t
			}
		}
		if s < len(variant.ByServerStage) {
			for _, t := range variant.ByServerStage[s] {
				v += t
			}
		}
		if b == 0 && v == 0 {
			continue
		}
		row := ServerShift{
			Server:       s,
			BaseUS:       perReqUS(b, base.Analyzed),
			VariantUS:    perReqUS(v, variant.Analyzed),
			BaseShare:    share(b, base.TotalLatency),
			VariantShare: share(v, variant.TotalLatency),
		}
		row.DeltaUS = row.VariantUS - row.BaseUS
		row.DeltaShare = row.VariantShare - row.BaseShare
		d.Servers = append(d.Servers, row)
	}
	return d
}

func perReqUS(t sim.Time, n int) float64 {
	if n == 0 {
		return 0
	}
	return t.Micros() / float64(n)
}

func share(part, total sim.Time) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// TopMovers returns the k stage rows with the largest absolute share
// migration, most-moved first (ties by pipeline order — deterministic).
func (d *ReportDiff) TopMovers(k int) []StageShift {
	rows := append([]StageShift(nil), d.Stages...)
	sort.SliceStable(rows, func(a, b int) bool {
		da, db := rows[a].DeltaShare, rows[b].DeltaShare
		if da < 0 {
			da = -da
		}
		if db < 0 {
			db = -db
		}
		return da > db
	})
	if k > len(rows) {
		k = len(rows)
	}
	return rows[:k]
}

// WriteTable prints the migration table: per-stage tail attribution before
// and after, with the telescoping end-to-end reconciliation line.
func (d *ReportDiff) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-11s %12s %8s %12s %8s %10s\n",
		"stage", "base [us]", "share", "variant [us]", "share", "delta [us]")
	for _, row := range d.Stages {
		fmt.Fprintf(w, "%-11s %12.1f %7.1f%% %12.1f %7.1f%% %+10.1f\n",
			row.Stage, row.BaseUS, 100*row.BaseShare,
			row.VariantUS, 100*row.VariantShare, row.DeltaUS)
	}
	fmt.Fprintf(w, "%-11s %12.1f %8s %12.1f %8s %+10.1f  (residual %dps/%dps)\n",
		"end-to-end", d.BasePerReqUS, "", d.VariantPerReqUS, "",
		d.VariantPerReqUS-d.BasePerReqUS, d.BaseResidualPS, d.VariantResidualPS)
	for _, row := range d.Servers {
		fmt.Fprintf(w, "  s%-9d %12.1f %7.1f%% %12.1f %7.1f%% %+10.1f\n",
			row.Server, row.BaseUS, 100*row.BaseShare,
			row.VariantUS, 100*row.VariantShare, row.DeltaUS)
	}
}
