package obs

import (
	"reflect"
	"testing"

	"umanycore/internal/sim"
)

func TestTimeHistTimeWeightedMean(t *testing.T) {
	var h TimeHist
	// Depth 2 for 10ps, then 4 for 30ps, then 0 for 60ps:
	// integral = 2*10 + 4*30 + 0*60 = 140 over 100ps -> mean 1.4.
	h.Observe(0, 2)
	h.Observe(10, 4)
	h.Observe(40, 0)
	if got := h.Mean(100); got != 1.4 {
		t.Fatalf("Mean = %v, want 1.4", got)
	}
	if got := h.Max(); got != 4 {
		t.Fatalf("Max = %v, want 4", got)
	}
	if got := h.N(); got != 3 {
		t.Fatalf("N = %v, want 3", got)
	}
}

func TestTimeHistEmptyAndDegenerate(t *testing.T) {
	var h TimeHist
	if got := h.Mean(100); got != 0 {
		t.Fatalf("empty Mean = %v, want 0", got)
	}
	h.Observe(50, 3)
	if got := h.Mean(50); got != 0 {
		t.Fatalf("zero-width Mean = %v, want 0", got)
	}
	if got := h.Mean(150); got != 3 {
		t.Fatalf("constant Mean = %v, want 3", got)
	}
}

func TestRegistrySameNameSameInstrument(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(2)
	r.Counter("a.b").Inc()
	if got := r.Counter("a.b").Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	r.Gauge("g").Set(7)
	r.Gauge("g").Set(9)
	if got := r.Gauge("g").Value(); got != 9 {
		t.Fatalf("gauge = %v, want 9", got)
	}
}

func TestSnapshotSortedAndHistExpansion(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Inc()
	r.Gauge("a.level").Set(5)
	r.TimeHist("m.depth").Observe(0, 2)
	snap := r.Snapshot(100 * sim.Nanosecond)
	wantNames := []string{"a.level", "m.depth.max", "m.depth.mean", "z.count"}
	if len(snap) != len(wantNames) {
		t.Fatalf("snapshot has %d metrics, want %d: %+v", len(snap), len(wantNames), snap)
	}
	for i, name := range wantNames {
		if snap[i].Name != name {
			t.Fatalf("snap[%d].Name = %q, want %q", i, snap[i].Name, name)
		}
	}
	if v, ok := snap.Get("m.depth.mean"); !ok || v != 2 {
		t.Fatalf("m.depth.mean = %v,%v want 2,true", v, ok)
	}
}

func TestCombineSnapshotsByKind(t *testing.T) {
	a := Snapshot{
		{Name: "c", Kind: KindCounter, Value: 3},
		{Name: "g", Kind: KindGauge, Value: 1},
		{Name: "m", Kind: KindMean, Value: 2},
		{Name: "x", Kind: KindMax, Value: 5},
	}
	b := Snapshot{
		{Name: "c", Kind: KindCounter, Value: 7},
		{Name: "g", Kind: KindGauge, Value: 2},
		{Name: "m", Kind: KindMean, Value: 4},
		{Name: "x", Kind: KindMax, Value: 4},
	}
	got := CombineSnapshots([]Snapshot{a, b})
	want := Snapshot{
		{Name: "c", Kind: KindCounter, Value: 10},
		{Name: "g", Kind: KindGauge, Value: 3},
		{Name: "m", Kind: KindMean, Value: 3},
		{Name: "x", Kind: KindMax, Value: 5},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CombineSnapshots = %+v, want %+v", got, want)
	}
	// Order-independence.
	rev := CombineSnapshots([]Snapshot{b, a})
	if !reflect.DeepEqual(rev, want) {
		t.Fatalf("reversed CombineSnapshots = %+v, want %+v", rev, want)
	}
}
