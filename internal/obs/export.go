package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WriteChromeTrace emits spans in Chrome trace-event JSON, loadable by
// Perfetto (ui.perfetto.dev) and chrome://tracing. Each request tree becomes
// one track (tid = request ID); timestamps are virtual microseconds, so the
// output is deterministic. svcName resolves service IDs to names for
// envelope spans (nil falls back to numeric IDs). Open spans are skipped.
func WriteChromeTrace(w io.Writer, spans []Span, svcName func(int16) string) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	var buf []byte
	for i := range spans {
		s := &spans[i]
		if s.End <= s.Start {
			continue
		}
		if !first {
			bw.WriteByte(',')
		}
		first = false
		buf = buf[:0]
		buf = append(buf, `{"name":"`...)
		buf = append(buf, spanName(s, svcName)...)
		buf = append(buf, `","cat":"`...)
		buf = append(buf, s.Stage.String()...)
		buf = append(buf, `","ph":"X","pid":1,"tid":`...)
		buf = strconv.AppendUint(buf, s.Req, 10)
		buf = append(buf, `,"ts":`...)
		buf = appendMicros(buf, float64(s.Start)/1e6)
		buf = append(buf, `,"dur":`...)
		buf = appendMicros(buf, float64(s.End-s.Start)/1e6)
		buf = append(buf, `,"args":{"span":`...)
		buf = strconv.AppendUint(buf, s.ID, 10)
		buf = append(buf, `,"parent":`...)
		buf = strconv.AppendUint(buf, s.Parent, 10)
		if s.Core >= 0 {
			buf = append(buf, `,"core":`...)
			buf = strconv.AppendInt(buf, int64(s.Core), 10)
		}
		if s.Server > 0 {
			buf = append(buf, `,"server":`...)
			buf = strconv.AppendInt(buf, int64(s.Server), 10)
		}
		if s.Link != 0 {
			buf = append(buf, `,"link":`...)
			buf = strconv.AppendUint(buf, s.Link, 10)
		}
		if s.Retries > 0 {
			buf = append(buf, `,"retries":`...)
			buf = strconv.AppendUint(buf, uint64(s.Retries), 10)
		}
		buf = append(buf, `}}`...)
		bw.Write(buf)
	}
	bw.WriteString(`]}`)
	return bw.Flush()
}

func spanName(s *Span, svcName func(int16) string) string {
	if s.Stage != StageRequest && s.Stage != StageInvoke {
		return s.Stage.String()
	}
	name := strconv.Itoa(int(s.SvcID))
	if svcName != nil {
		name = svcName(s.SvcID)
	}
	return s.Stage.String() + " " + name
}

// appendMicros formats a microsecond value with three decimals (nanosecond
// resolution) — fixed precision keeps the output stable and compact.
func appendMicros(buf []byte, us float64) []byte {
	return strconv.AppendFloat(buf, us, 'f', 3, 64)
}

// WriteSpansCSV emits one row per span:
// span,parent,req,stage,svc,core,server,link,start_us,end_us,dur_us,retries,flags.
// Open spans export with end_us = dur_us = 0.
func WriteSpansCSV(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("span,parent,req,stage,svc,core,server,link,start_us,end_us,dur_us,retries,flags\n")
	var buf []byte
	for i := range spans {
		s := &spans[i]
		buf = buf[:0]
		buf = strconv.AppendUint(buf, s.ID, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, s.Parent, 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, s.Req, 10)
		buf = append(buf, ',')
		buf = append(buf, s.Stage.String()...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.SvcID), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.Core), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(s.Server), 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, s.Link, 10)
		buf = append(buf, ',')
		buf = appendMicros(buf, float64(s.Start)/1e6)
		buf = append(buf, ',')
		var end, dur float64
		if s.End > s.Start {
			end = float64(s.End) / 1e6
			dur = float64(s.End-s.Start) / 1e6
		}
		buf = appendMicros(buf, end)
		buf = append(buf, ',')
		buf = appendMicros(buf, dur)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, uint64(s.Retries), 10)
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, uint64(s.Flags), 10)
		buf = append(buf, '\n')
		bw.Write(buf)
	}
	return bw.Flush()
}

// WriteMetricsCSV emits a snapshot as name,kind,value rows.
func WriteMetricsCSV(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("name,kind,value\n")
	for _, m := range snap {
		bw.WriteString(m.Name)
		bw.WriteByte(',')
		bw.WriteString(m.Kind.String())
		bw.WriteByte(',')
		bw.Write(strconv.AppendFloat(nil, m.Value, 'g', -1, 64))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
