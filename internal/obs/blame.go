package obs

import (
	"fmt"
	"io"
	"math"
	"sort"

	"umanycore/internal/sim"
)

// RequestBlame attributes one request's end-to-end latency to stages by
// exact critical-path extraction through its span tree: walking backwards
// from the request's completion, the last-finishing child at every level is
// the critical one, its interval recurses, and gaps between children belong
// to the enclosing span's stage. The per-stage times sum to the request's
// latency exactly (integer picosecond arithmetic, no estimation).
type RequestBlame struct {
	// Req is the root request's invocation ID.
	Req uint64
	// SvcID is the root service (request type).
	SvcID int16
	// Latency is the end-to-end latency (root span length).
	Latency sim.Time
	// ByStage is the critical-path time attributed to each stage;
	// sums to Latency.
	ByStage [NumStages]sim.Time
}

// Report is the paper-style tail-blame breakdown (§3, Figs 10/15 style) for
// the slowest fraction of traced requests.
type Report struct {
	// TopFrac is the analyzed tail fraction (0.01 = slowest 1%).
	TopFrac float64
	// Total is the number of finished, clean traced requests.
	Total int
	// Cutoff is the smallest latency among analyzed requests.
	Cutoff sim.Time
	// P99 is the 99th percentile latency over all traced requests.
	P99 sim.Time
	// ByStage sums critical-path time per stage over analyzed requests.
	ByStage [NumStages]sim.Time
	// ByServerStage splits ByStage by the server that recorded each
	// critical-path span (index = Span.Server), so cross-server trees
	// attribute remote work to the peer server's stages. Summing over
	// servers reproduces ByStage exactly. Nil when every analyzed span came
	// from one server (single-machine runs, unmerged traces).
	ByServerStage [][NumStages]sim.Time
	// Requests lists the analyzed requests, slowest first.
	Requests []RequestBlame
}

// Analyze extracts the tail-blame report for the slowest topFrac of finished
// requests in spans (at least one request when any finished). Open-ended or
// rejected request trees are excluded. The result is a pure function of the
// spans, so it inherits the trace's determinism.
func Analyze(spans []Span, topFrac float64) *Report {
	if topFrac <= 0 || topFrac > 1 {
		topFrac = 0.01
	}
	rep := &Report{TopFrac: topFrac}
	index := make(map[uint64]int, len(spans))
	children := make(map[uint64][]int)
	var roots []int
	maxServer := int32(0)
	for i := range spans {
		s := &spans[i]
		index[s.ID] = i
		if s.Server > maxServer {
			maxServer = s.Server
		}
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], i)
			continue
		}
		if s.Stage == StageRequest && s.End > s.Start && s.Flags == 0 {
			roots = append(roots, i)
		}
	}
	if maxServer > 0 {
		rep.ByServerStage = make([][NumStages]sim.Time, maxServer+1)
	}
	// Child walk order: ascending End (ties by Start then ID), so the
	// backward critical-path scan sees the last-finishing child first.
	for _, kids := range children {
		sort.Slice(kids, func(a, b int) bool {
			ka, kb := &spans[kids[a]], &spans[kids[b]]
			if ka.End != kb.End {
				return ka.End < kb.End
			}
			if ka.Start != kb.Start {
				return ka.Start < kb.Start
			}
			return ka.ID < kb.ID
		})
	}
	rep.Total = len(roots)
	if rep.Total == 0 {
		return rep
	}
	// Slowest first; ties broken by request ID for determinism.
	sort.Slice(roots, func(a, b int) bool {
		ra, rb := &spans[roots[a]], &spans[roots[b]]
		da, db := ra.Dur(), rb.Dur()
		if da != db {
			return da > db
		}
		return ra.Req < rb.Req
	})
	p99Rank := int(math.Ceil(0.99*float64(len(roots)))) - 1
	if p99Rank < 0 {
		p99Rank = 0
	}
	rep.P99 = spans[roots[len(roots)-1-p99Rank]].Dur()
	k := int(math.Ceil(topFrac * float64(len(roots))))
	if k < 1 {
		k = 1
	}
	for _, ri := range roots[:k] {
		root := &spans[ri]
		rb := RequestBlame{Req: root.Req, SvcID: root.SvcID, Latency: root.Dur()}
		criticalWalk(spans, children, ri, root.Start, root.End, &rb.ByStage, rep.ByServerStage)
		for st, d := range rb.ByStage {
			rep.ByStage[st] += d
		}
		rep.Requests = append(rep.Requests, rb)
	}
	rep.Cutoff = rep.Requests[len(rep.Requests)-1].Latency
	return rep
}

// criticalWalk attributes the interval [from, to] of span idx: gaps not
// covered by a critical child go to the span's own stage (envelope spans
// map to StageOther), covered intervals recurse into the child that
// finished last. Attribution telescopes, so the stage sums equal to-from.
// When perServer is non-nil every attribution is mirrored under the
// recording span's server, splitting the same exact total by (server,
// stage) — stitched trees charge remote work to the peer that did it.
func criticalWalk(spans []Span, children map[uint64][]int, idx int, from, to sim.Time, out *[NumStages]sim.Time, perServer [][NumStages]sim.Time) {
	sp := &spans[idx]
	stage := sp.Stage
	if stage == StageRequest || stage == StageInvoke {
		stage = StageOther
	}
	t := to
	kids := children[sp.ID]
	for i := len(kids) - 1; i >= 0 && t > from; i-- {
		k := &spans[kids[i]]
		if k.End <= k.Start {
			continue // open or empty span: nothing to attribute
		}
		if k.End > t {
			continue // finished after the critical point: not on the path
		}
		if k.End <= from {
			break // sorted by End: everything earlier is out of range too
		}
		out[stage] += t - k.End
		if perServer != nil {
			perServer[sp.Server][stage] += t - k.End
		}
		lo := k.Start
		if lo < from {
			lo = from
		}
		criticalWalk(spans, children, kids[i], lo, k.End, out, perServer)
		t = lo
	}
	if t > from {
		out[stage] += t - from
		if perServer != nil {
			perServer[sp.Server][stage] += t - from
		}
	}
}

// TotalLatency sums the analyzed requests' end-to-end latencies.
func (r *Report) TotalLatency() sim.Time {
	var t sim.Time
	for _, rb := range r.Requests {
		t += rb.Latency
	}
	return t
}

// Residual is TotalLatency minus the stage sums — zero by construction; a
// nonzero residual means the span tree violated an invariant.
func (r *Report) Residual() sim.Time {
	t := r.TotalLatency()
	for _, d := range r.ByStage {
		t -= d
	}
	return t
}

// blameOrder is the row order of the breakdown table: pipeline stages first,
// untracked residual last. Envelope stages never accumulate blame directly.
var blameOrder = []Stage{
	StageIngress, StageQueue, StageSched, StageCS, StageMem,
	StageRPC, StageService, StageStorage, StageNet, StageOther,
}

// WriteTable prints the paper-style per-stage breakdown of the analyzed
// tail, with a reconciliation line against the end-to-end total.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "tail blame: slowest %.1f%% of %d traced requests (%d analyzed, cutoff %.1fus, traced p99 %.1fus)\n",
		100*r.TopFrac, r.Total, len(r.Requests), r.Cutoff.Micros(), r.P99.Micros())
	if len(r.Requests) == 0 {
		fmt.Fprintln(w, "  (no finished traced requests)")
		return
	}
	total := r.TotalLatency()
	n := float64(len(r.Requests))
	fmt.Fprintf(w, "%-11s %14s %14s %8s\n", "stage", "total [us]", "per-req [us]", "share")
	for _, st := range blameOrder {
		d := r.ByStage[st]
		if d == 0 {
			continue
		}
		fmt.Fprintf(w, "%-11s %14.1f %14.1f %7.1f%%\n",
			st, d.Micros(), d.Micros()/n, 100*float64(d)/float64(total))
	}
	fmt.Fprintf(w, "%-11s %14.1f %14.1f %7.1f%%  (residual %dps)\n",
		"end-to-end", total.Micros(), total.Micros()/n, 100.0, int64(r.Residual()))
	if len(r.ByServerStage) > 1 {
		fmt.Fprintf(w, "\nby server (critical-path time each server contributed):\n")
		for srv, by := range r.ByServerStage {
			var sum sim.Time
			for _, d := range by {
				sum += d
			}
			if sum == 0 {
				continue
			}
			fmt.Fprintf(w, "  s%-3d %12.1fus %6.1f%% :", srv, sum.Micros(), 100*float64(sum)/float64(total))
			for _, st := range blameOrder {
				if d := by[st]; d != 0 {
					fmt.Fprintf(w, " %s %.1f", st, d.Micros())
				}
			}
			fmt.Fprintln(w)
		}
	}
}
