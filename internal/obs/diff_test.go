package obs

import (
	"math"
	"strings"
	"testing"

	"umanycore/internal/sim"
)

// buildVariantTree is buildTree after a hypothetical storage/net speedup:
// the same request shape, but invoke B's wire legs shrank and the tree
// finishes at 70 instead of 100, so attribution migrates between stages.
//
//	request [0, 70]
//	  queue   [0, 10]
//	  service [10, 20]
//	  invoke A [20, 50]   (now finishes last — critical)
//	    service [22, 48]
//	  invoke B [20, 45]
//	    net     [20, 22]
//	    service [22, 43]
//	    net     [43, 45]
//	  service [50, 70]
func buildVariantTree(c *Collector) {
	root := c.StartRoot(1, 0, 0)
	c.Add(root, StageQueue, 0, 10)
	c.Add(root, StageService, 10, 20)
	a := c.Start(root, StageInvoke, 1, 20)
	c.Add(a, StageService, 22, 48)
	c.End(a, 50)
	b := c.Start(root, StageInvoke, 2, 20)
	c.Add(b, StageNet, 20, 22)
	c.Add(b, StageService, 22, 43)
	c.Add(b, StageNet, 43, 45)
	c.End(b, 45)
	c.Add(root, StageService, 50, 70)
	c.End(root, 70)
}

func TestDiffReportsMigration(t *testing.T) {
	cb, cv := NewCollector(), NewCollector()
	buildTree(cb)
	buildVariantTree(cv)
	base := Analyze(cb.Spans(), 1)
	variant := Analyze(cv.Spans(), 1)
	d := DiffReports(base, variant)

	// The zero-residual invariant must hold on both sides of the diff.
	if d.BaseResidualPS != 0 || d.VariantResidualPS != 0 {
		t.Fatalf("residuals = %d/%d ps, want 0/0", d.BaseResidualPS, d.VariantResidualPS)
	}
	// Telescoping: stage columns sum to the end-to-end means exactly.
	var sumBase, sumVar float64
	for _, row := range d.Stages {
		sumBase += row.BaseUS
		sumVar += row.VariantUS
	}
	if math.Abs(sumBase-d.BasePerReqUS) > 1e-12 || math.Abs(sumVar-d.VariantPerReqUS) > 1e-12 {
		t.Fatalf("stage sums %v/%v != end-to-end %v/%v",
			sumBase, sumVar, d.BasePerReqUS, d.VariantPerReqUS)
	}
	// Critical-path migration: the variant's critical child is invoke A
	// (pure service), so net time must leave the path entirely and the
	// enclosing envelope gap (StageOther) must appear.
	rows := make(map[Stage]StageShift)
	for _, row := range d.Stages {
		rows[row.Stage] = row
	}
	if rows[StageNet].VariantUS != 0 || rows[StageNet].DeltaUS >= 0 {
		t.Fatalf("net row = %+v, want variant 0 and negative delta", rows[StageNet])
	}
	if rows[StageQueue].BaseShare != 0.10 {
		t.Fatalf("queue base share = %v, want 0.10", rows[StageQueue].BaseShare)
	}
	if _, ok := rows[StageOther]; !ok {
		t.Fatal("diff missing the StageOther gap row the variant introduces")
	}
	// TopMovers ranks by absolute share migration deterministically.
	movers := d.TopMovers(2)
	if len(movers) != 2 {
		t.Fatalf("TopMovers(2) returned %d rows", len(movers))
	}
	if movers[0].Stage != StageNet && movers[0].Stage != StageOther && movers[0].Stage != StageService {
		t.Fatalf("top mover %v has no share migration", movers[0].Stage)
	}
	var sb strings.Builder
	d.WriteTable(&sb)
	if !strings.Contains(sb.String(), "residual 0ps/0ps") {
		t.Fatalf("diff table missing residual line:\n%s", sb.String())
	}
}

// TestDiffBlamePerServer hand-builds stitched-style spans with Server tags
// and checks the per-server shift rows split the same exact totals.
func TestDiffBlamePerServer(t *testing.T) {
	mk := func(svcEnd sim.Time) []Span {
		return []Span{
			{ID: 1, Req: 1, Stage: StageRequest, Server: 0, Start: 0, End: 100},
			{ID: 2, Parent: 1, Req: 1, Stage: StageService, Server: 1, Start: 0, End: svcEnd},
		}
	}
	base := Analyze(mk(100), 1)
	variant := Analyze(mk(50), 1)
	d := DiffReports(base, variant)
	if d.BaseResidualPS != 0 || d.VariantResidualPS != 0 {
		t.Fatalf("residuals = %d/%d ps, want 0/0", d.BaseResidualPS, d.VariantResidualPS)
	}
	if len(d.Servers) != 2 {
		t.Fatalf("server rows = %d, want 2", len(d.Servers))
	}
	// Server 1 did all the base critical path; after the change half the
	// path (the envelope gap) migrates to server 0.
	if d.Servers[0].BaseShare != 0 || d.Servers[0].VariantShare != 0.5 {
		t.Fatalf("server 0 shares = %v/%v, want 0/0.5",
			d.Servers[0].BaseShare, d.Servers[0].VariantShare)
	}
	if d.Servers[1].BaseShare != 1 || d.Servers[1].VariantShare != 0.5 {
		t.Fatalf("server 1 shares = %v/%v, want 1/0.5",
			d.Servers[1].BaseShare, d.Servers[1].VariantShare)
	}
	// Server rows telescope like stage rows.
	if got := d.Servers[0].VariantUS + d.Servers[1].VariantUS; math.Abs(got-d.VariantPerReqUS) > 1e-12 {
		t.Fatalf("server sums %v != end-to-end %v", got, d.VariantPerReqUS)
	}
}
