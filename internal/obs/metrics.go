package obs

import (
	"sort"

	"umanycore/internal/sim"
)

// Instrument naming convention (see OBSERVABILITY.md): dotted lowercase
// "component.object.metric", e.g. "machine.queue.depth", "sim.heap.peak",
// "rpcnet.storage.retransmits". Registries hand out instruments on first
// use; hot paths resolve their instruments once up front and never touch
// the registry maps per event.

// Kind classifies how a metric value merges across runs.
type Kind uint8

// Metric kinds.
const (
	// KindCounter is a monotonic total; merges by summing.
	KindCounter Kind = iota
	// KindGauge is an additive level or total; merges by summing.
	KindGauge
	// KindMean is a time- or event-weighted mean; merges by averaging
	// (fleet servers carry equal load, so equal weights are exact there).
	KindMean
	// KindMax is a high-water mark; merges by max.
	KindMax
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindMean:
		return "mean"
	case KindMax:
		return "max"
	default:
		return "kind?"
	}
}

// Counter is a monotonically increasing total.
type Counter struct{ n float64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d float64) { c.n += d }

// Value returns the total.
func (c *Counter) Value() float64 { return c.n }

// Gauge is a last-write-wins level.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the stored level.
func (g *Gauge) Value() float64 { return g.v }

// TimeHist is a time-weighted histogram of a piecewise-constant value
// (queue depth, congestion window): each Observe(now, v) closes the previous
// value's interval at now and starts v's. Mean weights every value by how
// long it held, the correct aggregate for sampled-on-change series.
type TimeHist struct {
	start, last sim.Time
	cur         float64
	area        float64 // integral of value over time, in value·ps
	max         float64
	n           uint64
	open        bool
}

// Observe records that the tracked value became v at virtual time now.
func (h *TimeHist) Observe(now sim.Time, v float64) {
	if !h.open {
		h.start, h.last, h.cur, h.open = now, now, v, true
	} else {
		h.area += h.cur * float64(now-h.last)
		h.last, h.cur = now, v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
}

// Integral returns the value-time integral (in value·ps) over [first
// observation, now], including the currently held value's open segment.
// Differencing integrals at two sample points yields the exact windowed
// time-weighted mean — the telemetry sampler's per-interval series.
func (h *TimeHist) Integral(now sim.Time) float64 {
	if !h.open {
		return 0
	}
	return h.area + h.cur*float64(now-h.last)
}

// Cur returns the currently held value (0 before the first observation).
func (h *TimeHist) Cur() float64 {
	if !h.open {
		return 0
	}
	return h.cur
}

// Mean returns the time-weighted mean over [first observation, end].
func (h *TimeHist) Mean(end sim.Time) float64 {
	if !h.open || end <= h.start {
		return 0
	}
	area := h.area + h.cur*float64(end-h.last)
	return area / float64(end-h.start)
}

// Max returns the largest observed value.
func (h *TimeHist) Max() float64 { return h.max }

// N returns the number of observations.
func (h *TimeHist) N() uint64 { return h.n }

// Registry owns a run's named instruments. Like sim.Engine.Rand, the same
// name always returns the same instrument; distinct names are independent.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*TimeHist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*TimeHist),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// TimeHist returns the named time-weighted histogram, creating it on first
// use.
func (r *Registry) TimeHist(name string) *TimeHist {
	h, ok := r.hists[name]
	if !ok {
		h = &TimeHist{}
		r.hists[name] = h
	}
	return h
}

// LookupCounter returns the named counter without creating it.
func (r *Registry) LookupCounter(name string) (*Counter, bool) {
	c, ok := r.counters[name]
	return c, ok
}

// LookupGauge returns the named gauge without creating it.
func (r *Registry) LookupGauge(name string) (*Gauge, bool) {
	g, ok := r.gauges[name]
	return g, ok
}

// LookupTimeHist returns the named time-weighted histogram without
// creating it.
func (r *Registry) LookupTimeHist(name string) (*TimeHist, bool) {
	h, ok := r.hists[name]
	return h, ok
}

// Size returns the number of registered instruments. The telemetry sampler
// polls it to detect lazily created instruments between ticks without
// re-walking the maps.
func (r *Registry) Size() int {
	return len(r.counters) + len(r.gauges) + len(r.hists)
}

// Visit calls the per-class callbacks for every registered instrument.
// Iteration order is unspecified (map order); callers needing determinism
// sort the collected names themselves.
func (r *Registry) Visit(counter func(string, *Counter), gauge func(string, *Gauge), hist func(string, *TimeHist)) {
	if counter != nil {
		for name, c := range r.counters {
			counter(name, c)
		}
	}
	if gauge != nil {
		for name, g := range r.gauges {
			gauge(name, g)
		}
	}
	if hist != nil {
		for name, h := range r.hists {
			hist(name, h)
		}
	}
}

// Metric is one named value of a snapshot.
type Metric struct {
	Name  string
	Kind  Kind
	Value float64
}

// Snapshot is a registry's finalized values in stable (name-sorted) order,
// so two identical runs produce DeepEqual snapshots.
type Snapshot []Metric

// Get returns the named metric's value and whether it exists.
func (s Snapshot) Get(name string) (float64, bool) {
	for _, m := range s {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// Snapshot finalizes the registry at virtual time end. TimeHists expand into
// two metrics, "<name>.mean" and "<name>.max".
func (r *Registry) Snapshot(end sim.Time) Snapshot {
	var out Snapshot
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out,
			Metric{Name: name + ".mean", Kind: KindMean, Value: h.Mean(end)},
			Metric{Name: name + ".max", Kind: KindMax, Value: h.Max()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CombineSnapshots merges snapshots from independent runs by each metric's
// kind: counters and gauges sum, means average with equal weight, maxes take
// the max. The output is name-sorted, so it is independent of input order.
func CombineSnapshots(snaps []Snapshot) Snapshot {
	if len(snaps) == 0 {
		return nil
	}
	type acc struct {
		kind Kind
		sum  float64
		max  float64
		n    int
	}
	accs := make(map[string]*acc)
	for _, s := range snaps {
		for _, m := range s {
			a, ok := accs[m.Name]
			if !ok {
				a = &acc{kind: m.Kind, max: m.Value}
				accs[m.Name] = a
			}
			a.sum += m.Value
			if m.Value > a.max {
				a.max = m.Value
			}
			a.n++
		}
	}
	names := make([]string, 0, len(accs))
	for name := range accs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(Snapshot, 0, len(names))
	for _, name := range names {
		a := accs[name]
		v := a.sum
		switch a.kind {
		case KindMean:
			v = a.sum / float64(a.n)
		case KindMax:
			v = a.max
		}
		out = append(out, Metric{Name: name, Kind: a.kind, Value: v})
	}
	return out
}
