// Unit tests for cross-server stitching and tail exemplars on hand-built
// span trees, where every expected ID, parent, and attribution is computable
// by inspection (the fleet integration lives in internal/fleet).
package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"umanycore/internal/obs"
	"umanycore/internal/sim"
)

// TestMergeStitchesRemoteSubtree builds the minimal two-server trace by hand:
// server 0 records a root whose child invocation shipped to server 1, server 1
// records the served subtree under a link-tagged envelope. Merge must produce
// one tree — envelope reparented under the caller's invoke span, request IDs
// unified — and Analyze must attribute the peer's work to server 1 exactly.
func TestMergeStitchesRemoteSubtree(t *testing.T) {
	const link = 77

	c0 := obs.NewCollector() // caller server
	root := c0.StartRoot(1, 0, 100)
	inv := c0.Start(root, obs.StageInvoke, 5, 200)
	c0.SetLink(inv, link)
	c0.Add(inv, obs.StageNet, 200, 300) // outbound wire leg
	c0.Add(inv, obs.StageNet, 800, 900) // return wire leg
	c0.End(inv, 900)
	c0.End(root, 1000)

	c1 := obs.NewCollector() // peer server
	env := c1.StartRemote(1, link, 5, 320)
	c1.AddOnCore(env, obs.StageService, 3, 330, 700)
	c1.End(env, 750)

	merged := obs.Merge([]*obs.Run{{Spans: c0.Spans()}, {Spans: c1.Spans()}})
	spans := merged.Spans
	if len(spans) != 6 {
		t.Fatalf("merged %d spans, want 6", len(spans))
	}
	var invID, envID uint64
	for i, s := range spans {
		if s.ID != uint64(i)+1 {
			t.Fatalf("span %d has ID %d, want dense IDs", i, s.ID)
		}
		if s.Req != 1 {
			t.Fatalf("span %d kept request ID %d after stitching, want 1", s.ID, s.Req)
		}
		if s.Link == link {
			if s.Server == 0 {
				invID = s.ID
			} else {
				envID = s.ID
			}
		}
	}
	if invID == 0 || envID == 0 {
		t.Fatalf("link-tagged pair not found (caller %d, envelope %d)", invID, envID)
	}
	envSp := spans[envID-1]
	if envSp.Parent != invID {
		t.Fatalf("envelope parent = %d, want caller invoke span %d", envSp.Parent, invID)
	}
	if envSp.Server != 1 || envSp.Stage != obs.StageInvoke {
		t.Fatalf("envelope mis-tagged: %+v", envSp)
	}

	rep := obs.Analyze(spans, 1)
	if rep.Total != 1 {
		t.Fatalf("analyzed %d requests, want 1", rep.Total)
	}
	if rep.Residual() != 0 {
		t.Fatalf("stitched tree residual = %v, want 0", rep.Residual())
	}
	if len(rep.ByServerStage) != 2 {
		t.Fatalf("ByServerStage has %d servers, want 2", len(rep.ByServerStage))
	}
	// The peer's compute lands on server 1's StageService: [330, 700].
	if got := rep.ByServerStage[1][obs.StageService]; got != 370 {
		t.Fatalf("server 1 service blame = %v, want 370", got)
	}
	// Both wire legs stay on the caller's server.
	if got := rep.ByServerStage[0][obs.StageNet]; got != 200 {
		t.Fatalf("server 0 net blame = %v, want 200", got)
	}
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		var sum sim.Time
		for srv := range rep.ByServerStage {
			sum += rep.ByServerStage[srv][st]
		}
		if sum != rep.ByStage[st] {
			t.Fatalf("stage %v: per-server sum %v != ByStage %v", st, sum, rep.ByStage[st])
		}
	}
}

// TestMergeStitchesChains: a cross-server call that itself calls a third
// server. Request-ID rewriting must resolve the chain so every span lands in
// the originating root's tree, while an envelope with no matching caller
// stays a parentless foreign subtree.
func TestMergeStitchesChains(t *testing.T) {
	const (
		linkAB   = 1<<40 | 1 // server 0 -> server 1
		linkBC   = 2<<40 | 1 // server 1 -> server 2
		orphaned = 9<<40 | 9 // no caller anywhere
	)

	c0 := obs.NewCollector()
	root := c0.StartRoot(1, 0, 0)
	invA := c0.Start(root, obs.StageInvoke, 4, 100)
	c0.SetLink(invA, linkAB)
	c0.End(invA, 900)
	c0.End(root, 1000)

	c1 := obs.NewCollector()
	envB := c1.StartRemote(1, linkAB, 4, 200)
	invC := c1.Start(envB, obs.StageInvoke, 6, 250)
	c1.SetLink(invC, linkBC)
	c1.End(invC, 750)
	c1.End(envB, 800)

	c2 := obs.NewCollector()
	envD := c2.StartRemote(1, linkBC, 6, 300)
	c2.AddOnCore(envD, obs.StageService, 0, 350, 650)
	c2.End(envD, 700)
	orphan := c2.StartRemote(2, orphaned, 9, 400)
	c2.End(orphan, 500)

	merged := obs.Merge([]*obs.Run{
		{Spans: c0.Spans()}, {Spans: c1.Spans()}, {Spans: c2.Spans()},
	})
	byLink := func(link uint64, server int32) *obs.Span {
		for i := range merged.Spans {
			if merged.Spans[i].Link == uint64(link) && merged.Spans[i].Server == server {
				return &merged.Spans[i]
			}
		}
		t.Fatalf("no span with link %d on server %d", link, server)
		return nil
	}
	callerA := byLink(linkAB, 0)
	envOn1 := byLink(linkAB, 1)
	callerC := byLink(linkBC, 1)
	envOn2 := byLink(linkBC, 2)
	if envOn1.Parent != callerA.ID {
		t.Fatalf("first hop not stitched: envelope parent %d, want %d", envOn1.Parent, callerA.ID)
	}
	if envOn2.Parent != callerC.ID {
		t.Fatalf("second hop not stitched: envelope parent %d, want %d", envOn2.Parent, callerC.ID)
	}
	rootReq := merged.Spans[0].Req
	for _, s := range merged.Spans {
		if s.Link == orphaned || (s.Parent == 0 && s.Stage == obs.StageInvoke) {
			continue
		}
		if s.Req != rootReq {
			t.Fatalf("span %d kept request ID %d after chain resolution, want %d", s.ID, s.Req, rootReq)
		}
	}
	orphanSp := byLink(orphaned, 2)
	if orphanSp.Parent != 0 {
		t.Fatalf("orphan envelope acquired parent %d", orphanSp.Parent)
	}
	if orphanSp.Req == rootReq {
		t.Fatal("orphan envelope absorbed into the root's request")
	}
	if rep := obs.Analyze(merged.Spans, 1); rep.Residual() != 0 {
		t.Fatalf("chained tree residual = %v, want 0", rep.Residual())
	}
}

// TestExemplarsSelection pins the selection rules on a hand-built trace:
// slowest first with request-ID tie-breaks, open/rejected/foreign roots
// excluded, subtree grouping by request ID, and distinct-server counting.
func TestExemplarsSelection(t *testing.T) {
	spans := []obs.Span{
		{ID: 1, Req: 1, Stage: obs.StageRequest, Start: 0, End: 100},
		{ID: 2, Req: 2, Stage: obs.StageRequest, Start: 0, End: 300},
		{ID: 3, Req: 2, Parent: 2, Stage: obs.StageService, Server: 1, Start: 50, End: 250},
		{ID: 4, Req: 3, Stage: obs.StageRequest, Start: 100, End: 400}, // dur 300: ties req 2, loses on Req
		{ID: 5, Req: 4, Stage: obs.StageRequest, Start: 0},             // open: excluded
		{ID: 6, Req: 5, Stage: obs.StageRequest, Start: 0, End: 900, Flags: obs.FlagRejected},
		{ID: 7, Req: 6, Stage: obs.StageInvoke, Link: 9, Start: 0, End: 900}, // unstitched envelope: not a root
	}

	if got := obs.Exemplars(spans, 0); got != nil {
		t.Fatalf("k=0 returned %d exemplars", len(got))
	}
	xs := obs.Exemplars(spans, 2)
	if len(xs) != 2 || xs[0].Req != 2 || xs[1].Req != 3 {
		t.Fatalf("top-2 = %+v, want requests 2 then 3", xs)
	}
	if xs[0].Latency != 300 || xs[0].SvcID != 0 {
		t.Fatalf("exemplar 0 = %+v", xs[0])
	}
	if len(xs[0].Spans) != 2 || xs[0].Spans[1].ID != 3 {
		t.Fatalf("request 2's subtree not grouped: %+v", xs[0].Spans)
	}
	if xs[0].Servers != 2 || xs[1].Servers != 1 {
		t.Fatalf("server counts = %d, %d; want 2, 1", xs[0].Servers, xs[1].Servers)
	}

	// k beyond the clean-root count clamps; excluded roots never appear.
	all := obs.Exemplars(spans, 10)
	if len(all) != 3 {
		t.Fatalf("k=10 returned %d exemplars, want 3 clean roots", len(all))
	}
	if all[2].Req != 1 {
		t.Fatalf("slowest-first order broken: %+v", all)
	}

	if got := len(obs.ExemplarSpans(xs)); got != 3 {
		t.Fatalf("ExemplarSpans flattened %d spans, want 3", got)
	}

	var buf bytes.Buffer
	if err := obs.WriteExemplarsJSON(&buf, xs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		K         int `json:"k"`
		Exemplars []struct {
			Req       uint64  `json:"req"`
			LatencyUS float64 `json:"latency_us"`
			Servers   int     `json:"servers"`
			Spans     []struct {
				Stage string `json:"stage"`
			} `json:"spans"`
		} `json:"exemplars"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exemplar JSON invalid: %v\n%s", err, buf.Bytes())
	}
	if doc.K != 2 || len(doc.Exemplars) != 2 {
		t.Fatalf("JSON k=%d with %d exemplars, want 2", doc.K, len(doc.Exemplars))
	}
	if doc.Exemplars[0].Req != 2 || doc.Exemplars[0].Servers != 2 ||
		len(doc.Exemplars[0].Spans) != 2 || doc.Exemplars[0].Spans[1].Stage != "service" {
		t.Fatalf("JSON exemplar 0 = %+v", doc.Exemplars[0])
	}
}
