// Integration tests for the observability layer against the real machine and
// fleet models: span-tree invariants, exact tail reconciliation, determinism,
// and worker-count-independent merging. External test package so the
// machine -> obs import direction stays acyclic.
package obs_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"umanycore/internal/fleet"
	"umanycore/internal/machine"
	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/workload"
)

func tracedRun(t *testing.T, seed int64) *machine.Result {
	t.Helper()
	apps := workload.SocialNetworkApps()
	res := machine.Run(machine.UManycoreConfig(), machine.RunConfig{
		App:      apps[6], // CPost: deep call tree with storage
		RPS:      20000,
		Duration: 60 * sim.Millisecond,
		Warmup:   10 * sim.Millisecond,
		Seed:     seed,
		Obs:      obs.DefaultOptions(),
	})
	if res.Obs == nil || len(res.Obs.Spans) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	return res
}

// TestSpanTreeContainment checks the structural invariants every recorded
// tree must satisfy: dense IDs, parents recorded before children, children
// contained in their parent's [start, end], and closed envelopes for every
// completed request.
func TestSpanTreeContainment(t *testing.T) {
	res := tracedRun(t, 3)
	spans := res.Obs.Spans
	for i, s := range spans {
		if s.ID != uint64(i)+1 {
			t.Fatalf("span %d has ID %d, want dense IDs", i, s.ID)
		}
		if s.Parent == 0 {
			continue
		}
		if s.Parent >= s.ID {
			t.Fatalf("span %d recorded before its parent %d", s.ID, s.Parent)
		}
		p := &spans[s.Parent-1]
		if s.Req != p.Req {
			t.Fatalf("span %d req %d != parent req %d", s.ID, s.Req, p.Req)
		}
		if s.Start < p.Start {
			t.Fatalf("span %d starts %v before parent start %v", s.ID, s.Start, p.Start)
		}
		// Containment of the end only applies when both spans are closed.
		if s.End > s.Start && p.End > p.Start && s.End > p.End {
			t.Fatalf("span %d (stage %v) ends %v after parent %d end %v",
				s.ID, s.Stage, s.End, p.ID, p.End)
		}
	}
}

// TestCriticalPathEqualsLatency verifies the analyzer's core guarantee on
// every traced request (topFrac = 1): per-stage critical-path times sum to
// the end-to-end latency exactly.
func TestCriticalPathEqualsLatency(t *testing.T) {
	res := tracedRun(t, 4)
	rep := obs.Analyze(res.Obs.Spans, 1)
	if rep.Total == 0 {
		t.Fatal("no clean requests to analyze")
	}
	for _, rb := range rep.Requests {
		var sum sim.Time
		for _, d := range rb.ByStage {
			sum += d
		}
		if sum != rb.Latency {
			t.Fatalf("request %d: stage sum %v != latency %v", rb.Req, sum, rb.Latency)
		}
	}
	if rep.Residual() != 0 {
		t.Fatalf("aggregate residual = %v, want 0", rep.Residual())
	}
}

// TestTracedTailMatchesMeasured cross-checks the two independent measurement
// paths: the P99 computed from span trees must match the latency sample's
// P99 (both use nearest-rank over the same completed requests).
func TestTracedTailMatchesMeasured(t *testing.T) {
	res := tracedRun(t, 5)
	if res.Rejected != 0 || res.Unfinished != 0 {
		t.Fatalf("want a clean run for exact reconciliation, got rejected=%d unfinished=%d",
			res.Rejected, res.Unfinished)
	}
	rep := obs.Analyze(res.Obs.Spans, 0.01)
	if rep.Total != res.Latency.N {
		t.Fatalf("traced %d requests, measured %d", rep.Total, res.Latency.N)
	}
	traced := rep.P99.Micros()
	measured := res.Latency.P99
	diff := traced - measured
	if diff < 0 {
		diff = -diff
	}
	// The sample stores microsecond floats; allow only float rounding slack.
	if diff > 1e-6*measured {
		t.Fatalf("traced p99 %.6f != measured p99 %.6f", traced, measured)
	}
}

// TestTraceDeterminism: identical seeds must produce bit-identical spans and
// metrics.
func TestTraceDeterminism(t *testing.T) {
	a := tracedRun(t, 7)
	b := tracedRun(t, 7)
	if !reflect.DeepEqual(a.Obs.Spans, b.Obs.Spans) {
		t.Fatal("same-seed runs recorded different spans")
	}
	if !reflect.DeepEqual(a.Obs.Metrics, b.Obs.Metrics) {
		t.Fatal("same-seed runs recorded different metrics")
	}
}

// TestFleetMergeWorkerIndependence mirrors experiments/determinism_test.go:
// the merged fleet trace must be identical for any worker count, because
// per-worker collectors are merged on the reassembled server order.
func TestFleetMergeWorkerIndependence(t *testing.T) {
	apps := workload.SocialNetworkApps()
	run := func(parallel int) *fleet.Result {
		fc := fleet.DefaultConfig(machine.UManycoreConfig())
		fc.Servers = 4
		fc.Parallel = parallel
		return fleet.Run(fc, apps[0], 40000, machine.RunConfig{
			Duration: 40 * sim.Millisecond,
			Warmup:   10 * sim.Millisecond,
			Obs:      obs.DefaultOptions(),
		}, 11)
	}
	serial := run(1)
	if serial.Obs == nil || len(serial.Obs.Spans) == 0 {
		t.Fatal("fleet run recorded no spans")
	}
	for _, workers := range []int{2, 4, 0} {
		par := run(workers)
		if !reflect.DeepEqual(serial.Obs.Spans, par.Obs.Spans) {
			t.Fatalf("fleet spans differ between 1 and %d workers", workers)
		}
		if !reflect.DeepEqual(serial.Obs.Metrics, par.Obs.Metrics) {
			t.Fatalf("fleet metrics differ between 1 and %d workers", workers)
		}
	}
	// Merged request IDs must stay unique across servers.
	roots := make(map[uint64]bool)
	for _, s := range serial.Obs.Spans {
		if s.Parent == 0 {
			if roots[s.Req] {
				t.Fatalf("duplicate root request ID %d after merge", s.Req)
			}
			roots[s.Req] = true
		}
	}
}

// TestChromeTraceExport checks the exporter emits valid JSON in the
// trace-event format Perfetto loads.
func TestChromeTraceExport(t *testing.T) {
	res := tracedRun(t, 9)
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, res.Obs.Spans, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want complete events (X)", ev.Ph)
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			t.Fatalf("negative ts/dur in event %+v", ev)
		}
	}
}

func TestSpansCSVExport(t *testing.T) {
	res := tracedRun(t, 10)
	var buf bytes.Buffer
	if err := obs.WriteSpansCSV(&buf, res.Obs.Spans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(res.Obs.Spans)+1 {
		t.Fatalf("CSV has %d lines, want header + %d spans", len(lines), len(res.Obs.Spans))
	}
	wantCols := len(strings.Split(lines[0], ","))
	for i, ln := range lines {
		if got := len(strings.Split(ln, ",")); got != wantCols {
			t.Fatalf("line %d has %d columns, want %d", i, got, wantCols)
		}
	}
}

func TestMetricsPresent(t *testing.T) {
	res := tracedRun(t, 12)
	snap := res.Obs.Metrics
	for _, name := range []string{
		"sim.events", "sim.heap.peak",
		"machine.queue.depth.mean", "machine.queue.depth.max",
		"machine.admit.rq", "machine.submitted", "machine.completed",
		"machine.core.util.mean", "icn.messages",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Fatalf("metric %q missing from snapshot", name)
		}
	}
	if v, _ := snap.Get("sim.events"); uint64(v) != res.Events {
		t.Fatalf("sim.events = %v, Result.Events = %d", v, res.Events)
	}
	if v, _ := snap.Get("machine.submitted"); uint64(v) != res.Submitted {
		t.Fatalf("machine.submitted = %v, Result.Submitted = %d", v, res.Submitted)
	}
}

// TestDisabledRunUnchanged guards the zero-overhead contract's semantic half:
// enabling observability must not change simulation results, and a disabled
// run must carry no obs payload.
func TestDisabledRunUnchanged(t *testing.T) {
	apps := workload.SocialNetworkApps()
	rc := machine.RunConfig{
		App:      apps[6],
		RPS:      20000,
		Duration: 60 * sim.Millisecond,
		Warmup:   10 * sim.Millisecond,
		Seed:     3,
	}
	off := machine.Run(machine.UManycoreConfig(), rc)
	if off.Obs != nil {
		t.Fatal("disabled run has an obs payload")
	}
	on := tracedRun(t, 3)
	if off.Latency != on.Latency || off.Submitted != on.Submitted ||
		off.Completed != on.Completed || off.Events != on.Events {
		t.Fatalf("tracing changed the simulation: off=%+v on=%+v", off.Latency, on.Latency)
	}
}
