// Package control closes the feedback loops the paper's evaluation cluster
// leaves open: what a cloud front-end does when a server answers "queue
// full". The coupled fleet's dispatcher (internal/fleet) owns one Controller
// and routes every client root through it, which adds three deterministic
// control loops over virtual time:
//
//   - Retry with capped exponential backoff + jitter: a root rejected at a
//     server's admission check (§4.3: RQ and NIC buffer both full) is
//     re-dispatched through the balancer after RetryBase·2^(k-1), clamped to
//     RetryCap, minus a uniform jitter slice — until MaxRetries attempts are
//     exhausted and the root is permanently rejected back to the client.
//     RetryCap <= 0 models the classic metastable failure mode: uncapped
//     immediate retries amplify an overload into a self-sustaining storm.
//   - Tail hedging: if a dispatched root has not answered after HedgeAfter,
//     a duplicate ships to a second balancer pick; the first response wins
//     and the loser's response is discarded at the dispatcher (cancellation
//     happens at response time — the duplicate's server-side work is the
//     well-known hedging overhead, surfaced as HedgeWaste).
//   - Load shedding driven by the SLO watchdog: every server runs a
//     dedicated telemetry sampler with a single slo.burn rule; its
//     fire/resolve edges (telemetry.Options.OnAlert, evaluated at tick
//     boundaries) travel to the dispatcher as inter-shard messages, and
//     while any server's budget burns the dispatcher rejects new arrivals
//     with probability ShedProb before they consume a dispatch.
//   - Autoscaling on windowed client p99: the controller re-evaluates the
//     active server set at PDES window barriers (throttled to ScaleWindow).
//     Growth is lagged by ScaleLag — a freshly activated server starts cold
//     (idle, empty queues) and only then joins the routable prefix; shrink
//     is immediate, with in-flight work on a deactivated server left to
//     finish.
//
// Everything the controller does is a pure function of virtual time and a
// dedicated sim.Streams bundle, never of wall clock or worker counts, so a
// controlled fleet keeps the PDES contract: bit-identical results for every
// fleet.Config.ShardWorkers value including the -1 single-engine reference.
package control

import (
	"fmt"
	"math/rand"
	"sort"

	"umanycore/internal/sim"
	"umanycore/internal/stats"
)

// Config enables and tunes the dispatcher's control loops. The zero value
// disables everything (fleet runs are unchanged). Pure data — it embeds in
// fleet.Config and the sweep cache's canonical preimage.
type Config struct {
	// MaxRetries is the retry budget per client root: a rejected (or shed)
	// root is re-dispatched up to MaxRetries times before it is permanently
	// rejected. 0 disables retries.
	MaxRetries int
	// RetryBase is the backoff before retry k: RetryBase * 2^(k-1).
	// 0 with MaxRetries > 0 retries immediately — the storm configuration.
	RetryBase sim.Time
	// RetryCap clamps the exponential backoff. <= 0 leaves it uncapped.
	RetryCap sim.Time
	// RetryJitter in [0,1] subtracts a uniform slice of the backoff:
	// delay -= delay * RetryJitter * U[0,1), drawn from the controller's
	// dedicated "control-backoff" stream.
	RetryJitter float64
	// HedgeAfter, when positive, arms a hedge timer on each primary
	// dispatch: if the root has not answered after HedgeAfter, a duplicate
	// ships to a second balancer pick (steered off the primary server when
	// more than one is active). At most one hedge per root.
	HedgeAfter sim.Time
	// ShedProb in [0,1] is the probability an arriving root is rejected at
	// the dispatcher while any server's slo.burn alert is firing. 0
	// disables shedding.
	ShedProb float64
	// ShedSLOMicros is the per-request P99 objective of the shedding
	// watchdog (the slo.burn rule's SLOMicros; budget 1%, threshold 1).
	// Required when ShedProb > 0.
	ShedSLOMicros float64
	// ShedWindow is the shedding watchdog's tick interval (default 1ms).
	ShedWindow sim.Time
	// ScaleMin, when positive, turns on autoscaling: the run starts with
	// ScaleMin active servers (the rest built but cold) and grows/shrinks
	// the active prefix between ScaleMin and the fleet size. 0 keeps every
	// server active.
	ScaleMin int
	// ScaleP99Micros is the autoscaler's target: scale up when the windowed
	// client p99 exceeds it, down when the window stays below half of it.
	ScaleP99Micros float64
	// ScaleLag delays an activation: a scale-up decided at barrier t routes
	// traffic only from t+ScaleLag — the cold-start lag of real autoscalers.
	ScaleLag sim.Time
	// ScaleWindow is the autoscaler's evaluation window (default 5ms).
	ScaleWindow sim.Time
}

// Enabled reports whether any control loop is configured.
func (c Config) Enabled() bool {
	return c.MaxRetries > 0 || c.HedgeAfter > 0 || c.Sheds() || c.Scales()
}

// Sheds reports whether burn-triggered shedding is configured.
func (c Config) Sheds() bool { return c.ShedProb > 0 }

// Scales reports whether autoscaling is configured.
func (c Config) Scales() bool { return c.ScaleMin > 0 }

// Validate rejects configurations outside the model's domain.
func (c Config) Validate() error {
	switch {
	case c.MaxRetries < 0:
		return fmt.Errorf("control: MaxRetries %d < 0", c.MaxRetries)
	case c.RetryBase < 0 || c.HedgeAfter < 0 || c.ScaleLag < 0 || c.ShedWindow < 0 || c.ScaleWindow < 0:
		return fmt.Errorf("control: negative duration in config")
	case c.RetryJitter < 0 || c.RetryJitter > 1:
		return fmt.Errorf("control: RetryJitter %v outside [0,1]", c.RetryJitter)
	case c.ShedProb < 0 || c.ShedProb > 1:
		return fmt.Errorf("control: ShedProb %v outside [0,1]", c.ShedProb)
	case c.ShedProb > 0 && c.ShedSLOMicros <= 0:
		return fmt.Errorf("control: shedding needs ShedSLOMicros > 0 (got %v)", c.ShedSLOMicros)
	case c.ScaleMin < 0:
		return fmt.Errorf("control: ScaleMin %d < 0", c.ScaleMin)
	case c.ScaleMin > 0 && c.ScaleP99Micros <= 0:
		return fmt.Errorf("control: autoscaling needs ScaleP99Micros > 0 (got %v)", c.ScaleP99Micros)
	}
	return nil
}

// ShedRuleName names the slo.burn watchdog rule the fleet installs on each
// server's shedding sampler (a 1%-budget burn rate against ShedSLOMicros).
// Exported so the fleet and its tests agree on the rule name.
const ShedRuleName = "slo.burn"

// Stats is the controller's client-level accounting — what the fleet's
// clients experienced, as opposed to the per-attempt accounting each server
// keeps. With retries and hedging one client root can cost several server
// attempts; the identity Attempts == Submitted + Retries + Hedges - Shed
// always holds, and when every root terminated inside the horizon
// (Unfinished == 0) Attempts also equals the sum of server-side root
// submissions.
type Stats struct {
	// Submitted counts client roots arriving at the dispatcher.
	Submitted uint64
	// Completed counts client roots answered with a success (first
	// response for hedged roots).
	Completed uint64
	// Rejected counts client roots permanently rejected: the retry budget
	// was exhausted by server rejects and/or dispatcher sheds.
	Rejected uint64
	// Unfinished counts roots still in flight (or waiting out a backoff)
	// when the horizon ended.
	Unfinished int64
	// Retries counts re-dispatches after a reject or shed.
	Retries uint64
	// Shed counts attempts dropped at the dispatcher while slo.burn fired.
	Shed uint64
	// Attempts counts dispatched server attempts (primaries, retries and
	// hedges; shed attempts never dispatch).
	Attempts uint64
	// Hedges counts duplicate dispatches fired by the hedge timer.
	Hedges uint64
	// HedgeWins counts hedged roots whose duplicate responded first.
	HedgeWins uint64
	// HedgeWaste counts responses discarded at the dispatcher because the
	// root had already been answered — the hedging overhead.
	HedgeWaste uint64
	// BurnEdges counts slo.burn fire edges received from server watchdogs.
	BurnEdges uint64
	// ScaleUps / ScaleDowns count autoscaler decisions; ActiveServers is
	// the routable set's final size.
	ScaleUps      uint64
	ScaleDowns    uint64
	ActiveServers int
	// Latency summarizes the client-perceived sample: first submission to
	// first response, backoff waits and hedge races included, for measured
	// (post-warmup) roots that completed.
	Latency   stats.Summary
	TailToAvg float64
	// Sample is the raw client-perceived latency sample (microseconds).
	Sample *stats.Sample
}

// RejectRate is the client-level reject fraction: permanently rejected
// roots over responded roots (completed + rejected).
func (s *Stats) RejectRate() float64 {
	if resp := s.Completed + s.Rejected; resp > 0 {
		return float64(s.Rejected) / float64(resp)
	}
	return 0
}

// root tracks one client request through retries and hedging.
type root struct {
	t0       sim.Time
	attempts int // retries consumed so far
	inflight int // dispatched attempts not yet answered
	primary  int // server of the latest primary dispatch
	done     bool
	hedged   bool
	hedgeOn  bool
	hedge    sim.Handle
}

// Controller is the dispatcher-side control loop. It lives entirely on the
// dispatcher's engine (PDES shard 0); servers talk to it only through
// messages the fleet relays over the coupling fabric, so its state is
// single-shard and the fleet's determinism contract extends to it.
type Controller struct {
	cfg     Config
	eng     *sim.Engine
	servers int
	warmup  sim.Time

	// Dedicated randomness: engine-independent, seeded from the run seed,
	// distinct from every server bundle and dispatcher engine stream.
	backoffRng *rand.Rand
	shedRng    *rand.Rand

	// pick routes one attempt through the balancer over the active set;
	// send dispatches to a server and calls back (on this engine, at the
	// response's dispatcher-arrival time) with the admission outcome.
	pick func() int
	send func(server int, onResp func(rejected bool))

	// burnFiring tracks each server's slo.burn state; shedding counts the
	// firing servers rather than re-deriving the any() predicate per edge.
	burnFiring []bool
	firing     int

	// active is the routable server prefix; target includes activations
	// still waiting out ScaleLag.
	active   int
	target   int
	winLat   []float64
	nextEval sim.Time

	stats Stats
}

// controlSeedIndex derives the controller's stream-bundle seed from the run
// seed, far outside the server-index domain (servers use 0..n-1).
const controlSeedIndex = int64(0x636f6e74726f6c) // "control"

// New builds a controller for a fleet of servers, measuring client latency
// for roots arriving at or after warmup. Bind must be called before load.
func New(eng *sim.Engine, cfg Config, servers int, warmup sim.Time, seed int64) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if servers < 2 {
		panic("control: the control loop needs a coupled fleet of >= 2 servers")
	}
	streams := sim.NewStreams(sim.DeriveSeed(seed, controlSeedIndex))
	c := &Controller{
		cfg:        cfg,
		eng:        eng,
		servers:    servers,
		warmup:     warmup,
		backoffRng: streams.Rand("control-backoff"),
		shedRng:    streams.Rand("control-shed"),
		burnFiring: make([]bool, servers),
		active:     servers,
		target:     servers,
	}
	if cfg.Scales() {
		c.active = min(cfg.ScaleMin, servers)
		c.target = c.active
		c.nextEval = c.scaleWindow()
	}
	return c
}

// Bind installs the fleet's routing hooks: pick chooses a server through
// the balancer (over ActiveServers), send ships one attempt and reports its
// outcome back on the controller's engine.
func (c *Controller) Bind(pick func() int, send func(server int, onResp func(rejected bool))) {
	c.pick, c.send = pick, send
}

// ActiveServers is the routable prefix the balancer may pick from.
func (c *Controller) ActiveServers() int { return c.active }

// AdmitRoot handles one client arrival at the dispatcher's current time.
func (c *Controller) AdmitRoot() {
	c.stats.Submitted++
	r := &root{t0: c.eng.Now(), primary: -1}
	c.try(r)
}

// try runs one admission attempt: the shedding gate, then a dispatch.
func (c *Controller) try(r *root) {
	if c.firing > 0 && c.cfg.Sheds() && c.shedRng.Float64() < c.cfg.ShedProb {
		c.stats.Shed++
		c.handleReject(r)
		return
	}
	c.dispatch(r, false)
}

// dispatch ships one attempt to a balancer pick and arms the hedge timer
// on primaries.
func (c *Controller) dispatch(r *root, hedge bool) {
	s := c.pick()
	if hedge && c.active > 1 && s == r.primary {
		// The hedge exists to escape the primary's queue; steer a same-server
		// pick to the next active peer.
		s = (s + 1) % c.active
	}
	if !hedge {
		r.primary = s
	}
	r.inflight++
	c.stats.Attempts++
	c.send(s, func(rejected bool) { c.onResp(r, rejected, hedge) })
	if !hedge && c.cfg.HedgeAfter > 0 && !r.hedged {
		r.hedgeOn = true
		r.hedge = c.eng.After(c.cfg.HedgeAfter, func() { c.fireHedge(r) })
	}
}

// fireHedge launches the duplicate if the primary is still unanswered.
func (c *Controller) fireHedge(r *root) {
	r.hedgeOn = false
	if r.done || r.inflight == 0 {
		return
	}
	r.hedged = true
	c.stats.Hedges++
	c.dispatch(r, true)
}

// cancelHedge disarms a pending hedge timer.
func (c *Controller) cancelHedge(r *root) {
	if r.hedgeOn {
		r.hedgeOn = false
		c.eng.Cancel(r.hedge)
	}
}

// onResp handles one attempt's outcome arriving back at the dispatcher.
func (c *Controller) onResp(r *root, rejected, hedge bool) {
	r.inflight--
	if r.done {
		// The race was already decided; this is the hedge loser (or a
		// straggling reject) — discard.
		c.stats.HedgeWaste++
		return
	}
	if !rejected {
		r.done = true
		c.cancelHedge(r)
		c.stats.Completed++
		if hedge {
			c.stats.HedgeWins++
		}
		lat := (c.eng.Now() - r.t0).Micros()
		c.winLat = append(c.winLat, lat)
		if r.t0 >= c.warmup {
			if c.stats.Sample == nil {
				c.stats.Sample = &stats.Sample{}
			}
			c.stats.Sample.Add(lat)
		}
		return
	}
	if r.inflight > 0 {
		// A hedged sibling is still racing; it decides the root's fate.
		return
	}
	c.cancelHedge(r)
	c.handleReject(r)
}

// handleReject consumes one retry (or permanently rejects) after every
// outstanding attempt of the root was rejected or shed.
func (c *Controller) handleReject(r *root) {
	if r.attempts >= c.cfg.MaxRetries {
		r.done = true
		c.stats.Rejected++
		return
	}
	r.attempts++
	c.stats.Retries++
	c.eng.After(c.backoff(r.attempts), func() { c.try(r) })
}

// backoff computes the delay before retry k (1-based): capped exponential
// with uniform jitter.
func (c *Controller) backoff(k int) sim.Time {
	d := c.cfg.RetryBase
	for i := 1; i < k; i++ {
		if d > c.cfg.RetryCap && c.cfg.RetryCap > 0 {
			break // already clamped; avoid pointless doubling and overflow
		}
		if next := d * 2; next > d {
			d = next
		}
	}
	if c.cfg.RetryCap > 0 && d > c.cfg.RetryCap {
		d = c.cfg.RetryCap
	}
	if c.cfg.RetryJitter > 0 && d > 0 {
		d -= sim.Time(float64(d) * c.cfg.RetryJitter * c.backoffRng.Float64())
	}
	return d
}

// BurnEdge records one server watchdog's slo.burn transition. The fleet
// relays each fire/resolve edge (evaluated at the server's telemetry tick)
// to the dispatcher shard as a coupling message, so shedding state changes
// at tick boundaries plus one wire delay — deterministically.
func (c *Controller) BurnEdge(server int, firing bool) {
	if c.burnFiring[server] == firing {
		return
	}
	c.burnFiring[server] = firing
	if firing {
		c.firing++
		c.stats.BurnEdges++
	} else {
		c.firing--
	}
}

// AtBarrier runs the autoscaler at a PDES window barrier (every shard
// quiescent at time limit — the fleet calls this from the coupling's post
// hook). Evaluation is throttled to ScaleWindow; barrier times are
// deterministic, so scale decisions are too.
func (c *Controller) AtBarrier(limit sim.Time) {
	if !c.cfg.Scales() || limit < c.nextEval {
		return
	}
	c.nextEval = limit + c.scaleWindow()
	if len(c.winLat) == 0 {
		return
	}
	p99 := windowP99(c.winLat)
	c.winLat = c.winLat[:0]
	switch {
	case p99 > c.cfg.ScaleP99Micros && c.target < c.servers:
		c.target++
		c.stats.ScaleUps++
		// The new server joins the routable prefix after the cold-start
		// lag. Scheduling at limit(+lag) from the post hook is safe: every
		// shard has advanced exactly to limit, so the event is never in any
		// shard's past (see pdes.Net.Run).
		c.eng.At(limit+c.cfg.ScaleLag, func() { c.active++ })
	case p99 <= c.cfg.ScaleP99Micros/2 && c.target > c.cfg.ScaleMin && c.active == c.target:
		c.target--
		c.active--
		c.stats.ScaleDowns++
	}
}

func (c *Controller) scaleWindow() sim.Time {
	if c.cfg.ScaleWindow > 0 {
		return c.cfg.ScaleWindow
	}
	return 5 * sim.Millisecond
}

// windowP99 is the nearest-rank p99 of one evaluation window.
func windowP99(xs []float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	idx := int(float64(len(tmp))*0.99 + 0.5)
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// Peek copies the live counters for barrier-time instrument updates (the
// control.* metrics). Latency and the derived fields are only populated by
// Finish; the raw sample stays private to the controller.
func (c *Controller) Peek() Stats {
	s := c.stats
	s.ActiveServers = c.active
	s.Sample = nil
	return s
}

// Finish closes the accounting and returns the client-level stats.
func (c *Controller) Finish() *Stats {
	s := c.stats
	s.Unfinished = int64(s.Submitted) - int64(s.Completed) - int64(s.Rejected)
	s.ActiveServers = c.active
	if s.Sample != nil && s.Sample.N() > 0 {
		s.Latency = s.Sample.Summarize()
		s.TailToAvg = s.Sample.TailToAvg()
	}
	return &s
}
