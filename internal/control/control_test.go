package control

import (
	"strings"
	"testing"

	"umanycore/internal/sim"
)

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
	for _, c := range []Config{
		{MaxRetries: 3},
		{HedgeAfter: sim.Millisecond},
		{ShedProb: 0.5, ShedSLOMicros: 100},
		{ScaleMin: 2, ScaleP99Micros: 100},
	} {
		if !c.Enabled() {
			t.Fatalf("config %+v should be enabled", c)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("config %+v should validate: %v", c, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{MaxRetries: -1}, "MaxRetries"},
		{Config{RetryBase: -1}, "negative duration"},
		{Config{HedgeAfter: -1}, "negative duration"},
		{Config{ScaleLag: -1}, "negative duration"},
		{Config{RetryJitter: 1.5}, "RetryJitter"},
		{Config{RetryJitter: -0.1}, "RetryJitter"},
		{Config{ShedProb: 2}, "ShedProb"},
		{Config{ShedProb: 0.5}, "ShedSLOMicros"},
		{Config{ScaleMin: -2}, "ScaleMin"},
		{Config{ScaleMin: 2}, "ScaleP99Micros"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("Validate(%+v) = %v, want error mentioning %q", c.cfg, err, c.want)
		}
	}
}

func TestNewPanicsOnTinyFleet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 1 server did not panic")
		}
	}()
	New(sim.NewEngine(1), Config{MaxRetries: 1}, 1, 0, 1)
}

func TestBackoffCappedExponential(t *testing.T) {
	c := New(sim.NewEngine(1), Config{
		MaxRetries: 8, RetryBase: sim.Millisecond, RetryCap: 4 * sim.Millisecond,
	}, 4, 0, 1)
	want := []sim.Time{sim.Millisecond, 2 * sim.Millisecond, 4 * sim.Millisecond, 4 * sim.Millisecond, 4 * sim.Millisecond}
	for i, w := range want {
		if got := c.backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterStaysInRange(t *testing.T) {
	c := New(sim.NewEngine(1), Config{
		MaxRetries: 4, RetryBase: sim.Millisecond, RetryCap: 8 * sim.Millisecond, RetryJitter: 0.5,
	}, 4, 0, 7)
	for k := 1; k <= 4; k++ {
		full := New(sim.NewEngine(1), Config{
			MaxRetries: 4, RetryBase: sim.Millisecond, RetryCap: 8 * sim.Millisecond,
		}, 4, 0, 7).backoff(k)
		for trial := 0; trial < 50; trial++ {
			d := c.backoff(k)
			if d <= full/2 || d > full {
				t.Fatalf("jittered backoff(%d) = %v outside (%v, %v]", k, d, full/2, full)
			}
		}
	}
}

func TestBackoffUncappedDoesNotOverflow(t *testing.T) {
	c := New(sim.NewEngine(1), Config{MaxRetries: 200, RetryBase: sim.Second}, 4, 0, 1)
	d := c.backoff(200)
	if d <= 0 {
		t.Fatalf("uncapped backoff overflowed to %v", d)
	}
}

// bindLoopback wires a controller to a synthetic fleet: server s answers
// after serve(s) with reject(s)'s verdict, round-robin picks.
func bindLoopback(eng *sim.Engine, c *Controller, serve func(s int) sim.Time, rejected func(s int) bool) {
	next := 0
	c.Bind(
		func() int {
			s := next % c.ActiveServers()
			next++
			return s
		},
		func(s int, onResp func(rejected bool)) {
			eng.After(serve(s), func() { onResp(rejected(s)) })
		},
	)
}

func TestRetryExhaustionRejects(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Config{MaxRetries: 3, RetryBase: 10 * sim.Microsecond}, 4, 0, 1)
	bindLoopback(eng, c, func(int) sim.Time { return sim.Microsecond }, func(int) bool { return true })
	eng.At(1, c.AdmitRoot)
	eng.RunUntil(sim.Second)
	s := c.Finish()
	if s.Rejected != 1 || s.Completed != 0 || s.Unfinished != 0 {
		t.Fatalf("stats = %+v, want 1 permanent reject", s)
	}
	if s.Retries != 3 || s.Attempts != 4 {
		t.Fatalf("retries=%d attempts=%d, want 3 and 4", s.Retries, s.Attempts)
	}
	if s.Attempts != s.Submitted+s.Retries+s.Hedges-s.Shed {
		t.Fatalf("attempt identity violated: %+v", s)
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Config{MaxRetries: 5, RetryBase: 10 * sim.Microsecond}, 4, 0, 1)
	fails := 2
	bindLoopback(eng, c, func(int) sim.Time { return sim.Microsecond }, func(int) bool {
		fails--
		return fails >= 0
	})
	eng.At(1, c.AdmitRoot)
	eng.RunUntil(sim.Second)
	s := c.Finish()
	if s.Completed != 1 || s.Rejected != 0 || s.Retries != 2 || s.Attempts != 3 {
		t.Fatalf("stats = %+v, want success after 2 retries", s)
	}
}

func TestHedgeWinsRace(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Config{HedgeAfter: 100 * sim.Microsecond}, 4, 0, 1)
	// Server 0 (the primary pick) is a straggler; everyone else is fast.
	bindLoopback(eng, c, func(s int) sim.Time {
		if s == 0 {
			return 10 * sim.Millisecond
		}
		return 10 * sim.Microsecond
	}, func(int) bool { return false })
	eng.At(1, c.AdmitRoot)
	eng.RunUntil(sim.Second)
	s := c.Finish()
	if s.Hedges != 1 || s.HedgeWins != 1 || s.HedgeWaste != 1 || s.Completed != 1 {
		t.Fatalf("stats = %+v, want hedge fired, won, and wasted the primary", s)
	}
	// Client latency is the hedge path: ~HedgeAfter + fast service, far
	// under the straggler's 10ms.
	if s.Latency.Mean >= (5 * sim.Millisecond).Micros() {
		t.Fatalf("hedge did not cut latency: mean %v us", s.Latency.Mean)
	}
	if s.Attempts != s.Submitted+s.Retries+s.Hedges-s.Shed {
		t.Fatalf("attempt identity violated: %+v", s)
	}
}

func TestFastPrimaryCancelsHedge(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Config{HedgeAfter: sim.Millisecond}, 4, 0, 1)
	bindLoopback(eng, c, func(int) sim.Time { return 10 * sim.Microsecond }, func(int) bool { return false })
	eng.At(1, c.AdmitRoot)
	eng.RunUntil(sim.Second)
	s := c.Finish()
	if s.Hedges != 0 || s.HedgeWaste != 0 || s.Completed != 1 {
		t.Fatalf("stats = %+v, want hedge timer cancelled by fast primary", s)
	}
}

func TestShedGateDropsWhileFiring(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Config{ShedProb: 1, ShedSLOMicros: 100}, 4, 0, 1)
	dispatched := 0
	c.Bind(func() int { return 0 }, func(s int, onResp func(rejected bool)) {
		dispatched++
		eng.After(sim.Microsecond, func() { onResp(false) })
	})
	c.BurnEdge(1, true)
	eng.At(1, c.AdmitRoot)
	eng.At(2, c.AdmitRoot)
	// Resolve the burn; admissions flow again.
	eng.At(3, func() { c.BurnEdge(1, false) })
	eng.At(4, c.AdmitRoot)
	eng.RunUntil(sim.Second)
	s := c.Finish()
	if s.Shed != 2 || s.Rejected != 2 || dispatched != 1 || s.Completed != 1 {
		t.Fatalf("stats = %+v dispatched=%d, want 2 shed + 1 served", s, dispatched)
	}
	if s.BurnEdges != 1 {
		t.Fatalf("burn edges = %d, want 1 fire edge", s.BurnEdges)
	}
}

func TestBurnEdgeDeduplicates(t *testing.T) {
	c := New(sim.NewEngine(1), Config{ShedProb: 0.5, ShedSLOMicros: 100}, 4, 0, 1)
	c.BurnEdge(0, true)
	c.BurnEdge(0, true) // duplicate fire must not double-count
	c.BurnEdge(1, true)
	c.BurnEdge(0, false)
	if c.firing != 1 {
		t.Fatalf("firing = %d, want 1", c.firing)
	}
	if c.stats.BurnEdges != 2 {
		t.Fatalf("burn edges = %d, want 2", c.stats.BurnEdges)
	}
}

func TestAutoscalerGrowsAndShrinks(t *testing.T) {
	eng := sim.NewEngine(1)
	lag := 2 * sim.Millisecond
	c := New(eng, Config{
		ScaleMin: 2, ScaleP99Micros: 100, ScaleLag: lag, ScaleWindow: 5 * sim.Millisecond,
	}, 8, 0, 1)
	if c.ActiveServers() != 2 {
		t.Fatalf("active = %d at start, want ScaleMin", c.ActiveServers())
	}
	// A slow window: p99 over target → scale up, active only after the lag.
	c.winLat = []float64{500, 600, 700}
	c.AtBarrier(5 * sim.Millisecond)
	if c.ActiveServers() != 2 {
		t.Fatal("activation ignored the cold-start lag")
	}
	eng.RunUntil(5*sim.Millisecond + lag)
	if c.ActiveServers() != 3 {
		t.Fatalf("active = %d after lag, want 3", c.ActiveServers())
	}
	// Throttle: a barrier before the next window must not evaluate.
	c.winLat = []float64{500}
	c.AtBarrier(6 * sim.Millisecond)
	if c.stats.ScaleUps != 1 {
		t.Fatal("autoscaler evaluated inside the throttle window")
	}
	// Fast windows: p99 under half the target → shrink back toward ScaleMin.
	c.winLat = []float64{10, 20, 30}
	c.AtBarrier(10 * sim.Millisecond)
	if c.ActiveServers() != 2 || c.stats.ScaleDowns != 1 {
		t.Fatalf("active = %d downs = %d, want immediate shrink", c.ActiveServers(), c.stats.ScaleDowns)
	}
	s := c.Finish()
	if s.ScaleUps != 1 || s.ScaleDowns != 1 || s.ActiveServers != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestControllerDeterministicRepeat(t *testing.T) {
	run := func() Stats {
		eng := sim.NewEngine(1)
		c := New(eng, Config{
			MaxRetries: 3, RetryBase: 20 * sim.Microsecond, RetryCap: 100 * sim.Microsecond,
			RetryJitter: 0.5, HedgeAfter: 300 * sim.Microsecond,
		}, 4, 0, 9)
		rng := sim.NewStreams(99).Rand("load")
		bindLoopback(eng, c, func(s int) sim.Time {
			return sim.Time(1 + rng.Int63n(int64(400*sim.Microsecond))) // deterministic: same stream both runs
		}, func(s int) bool { return s == 1 })
		for i := 0; i < 200; i++ {
			at := sim.Time(1 + i*int(50*sim.Microsecond))
			eng.At(at, c.AdmitRoot)
		}
		eng.RunUntil(sim.Second)
		s := *c.Finish()
		s.Sample = nil
		return s
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("repeat controller runs diverged:\na %+v\nb %+v", a, b)
	}
	if a.Retries == 0 || a.Hedges == 0 {
		t.Fatalf("chaos run exercised nothing: %+v", a)
	}
	if a.Attempts != a.Submitted+a.Retries+a.Hedges-a.Shed {
		t.Fatalf("attempt identity violated: %+v", a)
	}
}
