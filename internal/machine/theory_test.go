package machine

import (
	"math"
	"testing"

	"umanycore/internal/icn"
	"umanycore/internal/queuetheory"
	"umanycore/internal/sched"
	"umanycore/internal/sim"
	"umanycore/internal/workload"
)

// queueOnlyConfig strips the machine down to a bare FCFS service center:
// one domain of c cores, hardware queueing with zero instruction costs, no
// ingress/NIC/ICN latency — so measured sojourn times must match
// closed-form queueing theory. This validates the arrival, dispatch, and
// resource machinery everything else builds on.
func queueOnlyConfig(cores int) Config {
	return Config{
		Name:       "theory",
		Cores:      cores,
		FreqGHz:    2,
		PerfFactor: 1,
		Domains:    1,
		Policy: sched.Policy{
			Name:       "ideal",
			HardwareRQ: true,
			// Zero-cost scheduling: the theoretical server.
		},
		RQCapacity:     1 << 16,
		NICBufCapacity: 1 << 16,
		Topo:           LeafSpineTopo,
		LeafSpineCfg:   icn.LeafSpineConfig{Pods: 1, LeavesPerPod: 1, L2PerPod: 1, L3Count: 1},
		ICNContention:  false,
		LinkParams:     icn.LinkParams{HopLatency: 0, PsPerByte: 0},
		StorageRTT:     0,
	}
}

func runTheory(t *testing.T, cores int, distName string, meanUs, rps float64, seed int64) *Result {
	t.Helper()
	app, err := workload.SyntheticApp(distName, meanUs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Run(queueOnlyConfig(cores), RunConfig{
		App: app, RPS: rps,
		Duration: 4 * sim.Second,
		Warmup:   400 * sim.Millisecond,
		Drain:    4 * sim.Second,
		Seed:     seed,
	})
}

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

// The simulator as an M/M/1 queue: mean sojourn within a few percent of
// theory at moderate and high utilization.
func TestSimMatchesMM1(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation")
	}
	const meanUs = 100.0
	mu := 1e6 / meanUs // services per second
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		lambda := rho * mu
		res := runTheory(t, 1, "exponential", meanUs, lambda, 7)
		_, w, err := queuetheory.MM1(lambda/1e6, mu/1e6) // per-μs rates → W in μs
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(res.Latency.Mean, w); e > 0.08 {
			t.Errorf("M/M/1 rho=%v: sim W=%v theory=%v (err %.1f%%)",
				rho, res.Latency.Mean, w, e*100)
		}
	}
}

// The simulator as an M/M/c queue (one domain, c cores).
func TestSimMatchesMMc(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation")
	}
	const meanUs = 100.0
	mu := 1.0 / meanUs // per μs
	for _, tc := range []struct {
		c   int
		rho float64
	}{
		{2, 0.7}, {8, 0.8}, {16, 0.6},
	} {
		lambda := tc.rho * mu * float64(tc.c)
		res := runTheory(t, tc.c, "exponential", meanUs, lambda*1e6, 11)
		_, w, err := queuetheory.MMc(lambda, mu, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(res.Latency.Mean, w); e > 0.08 {
			t.Errorf("M/M/%d rho=%v: sim W=%v theory=%v (err %.1f%%)",
				tc.c, tc.rho, res.Latency.Mean, w, e*100)
		}
	}
}

// The simulator as an M/G/1 queue: deterministic service (halved waits) and
// heavy-tailed lognormal (inflated waits) both match Pollaczek–Khinchine.
func TestSimMatchesMG1(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation")
	}
	const meanUs = 100.0
	const rho = 0.7
	lambda := rho / meanUs // per μs

	det := runTheory(t, 1, "deterministic", meanUs, lambda*1e6, 13)
	_, wDet, err := queuetheory.MG1(lambda, meanUs, queuetheory.DetSecondMoment(meanUs))
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(det.Latency.Mean, wDet); e > 0.08 {
		t.Errorf("M/D/1: sim W=%v theory=%v (err %.1f%%)", det.Latency.Mean, wDet, e*100)
	}

	lgn := runTheory(t, 1, "lognormal", meanUs, lambda*1e6, 17)
	_, wLgn, err := queuetheory.MG1(lambda, meanUs, queuetheory.LognormalSecondMoment(meanUs, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	// Heavy-tailed service: sampling noise in E[S²] is larger; allow 15%.
	if e := relErr(lgn.Latency.Mean, wLgn); e > 0.15 {
		t.Errorf("M/LN/1: sim W=%v theory=%v (err %.1f%%)", lgn.Latency.Mean, wLgn, e*100)
	}

	// Ordering: deterministic < exponential < lognormal sojourn.
	exp := runTheory(t, 1, "exponential", meanUs, lambda*1e6, 19)
	if !(det.Latency.Mean < exp.Latency.Mean && exp.Latency.Mean < lgn.Latency.Mean) {
		t.Errorf("service-variability ordering violated: det=%v exp=%v lgn=%v",
			det.Latency.Mean, exp.Latency.Mean, lgn.Latency.Mean)
	}
}

// P99 validation: the simulator's tail matches the conditional-exponential
// approximation for M/M/1 at high load.
func TestSimMatchesMM1Tail(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation")
	}
	const meanUs = 100.0
	const rho = 0.8
	lambda := rho / meanUs
	res := runTheory(t, 1, "exponential", meanUs, lambda*1e6, 23)
	// For M/M/1, sojourn is exponential with rate μ−λ: P99 = ln(100)/(μ−λ).
	p99 := math.Log(100) / (1/meanUs - lambda)
	if e := relErr(res.Latency.P99, p99); e > 0.12 {
		t.Errorf("M/M/1 P99: sim=%v theory=%v (err %.1f%%)", res.Latency.P99, p99, e*100)
	}
}
