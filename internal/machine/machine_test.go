package machine

import (
	"testing"

	"umanycore/internal/sched"
	"umanycore/internal/sim"
	"umanycore/internal/workload"
)

func appByName(t testing.TB, name string) *workload.App {
	t.Helper()
	for _, a := range workload.SocialNetworkApps() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no app %q", name)
	return nil
}

func quickRun(t testing.TB, cfg Config, app *workload.App, rps float64) *Result {
	t.Helper()
	return Run(cfg, RunConfig{
		App:      app,
		RPS:      rps,
		Duration: 300 * sim.Millisecond,
		Warmup:   60 * sim.Millisecond,
		Drain:    sim.Second,
		Seed:     11,
	})
}

func TestConfigValidate(t *testing.T) {
	good := UManycoreConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Domains = 0 },
		func(c *Config) { c.Cores = 100; c.Domains = 33 },
		func(c *Config) { c.FreqGHz = 0 },
		func(c *Config) { c.PerfFactor = 0 },
		func(c *Config) { c.Topo = MeshTopo; c.MeshW = 0 },
		func(c *Config) { c.Topo = FatTreeTopo; c.FatTreeLeaves = 0 },
		func(c *Config) { c.Topo = LeafSpineTopo; c.LeafSpineCfg.Pods = 0 },
		func(c *Config) { c.RQCapacity = 0 },
	}
	for i, mutate := range cases {
		c := UManycoreConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestCyclesToTime(t *testing.T) {
	c := UManycoreConfig() // 2GHz: 1 cycle = 500ps
	if got := c.CyclesToTime(2000); got != sim.Microsecond {
		t.Fatalf("2000 cycles @2GHz = %v", got)
	}
	s := ServerClassConfig(40) // 3GHz
	if got := s.CyclesToTime(3000); got != sim.Microsecond {
		t.Fatalf("3000 cycles @3GHz = %v", got)
	}
}

func TestMeshDims(t *testing.T) {
	for _, c := range []struct{ n, w, h int }{
		{40, 8, 5}, {128, 16, 8}, {36, 6, 6}, {7, 7, 1},
	} {
		w, h := meshDims(c.n)
		if w*h != c.n || w != c.w || h != c.h {
			t.Errorf("meshDims(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
	}
}

func TestPresetShapes(t *testing.T) {
	u := UManycoreConfig()
	if u.Cores != 1024 || u.Domains != 128 || !u.Policy.HardwareRQ || u.GlobalCoherence {
		t.Fatalf("uManycore preset = %+v", u)
	}
	if u.Policy.CSCycles != sched.HardwareCSCycles {
		t.Fatal("uManycore CS not hardware")
	}
	so := ScaleOutConfig()
	if so.Cores != 1024 || so.Domains != 32 || so.Policy.HardwareRQ || !so.GlobalCoherence {
		t.Fatalf("ScaleOut preset = %+v", so)
	}
	if so.Topo != FatTreeTopo || so.CentralDispatcher {
		t.Fatal("ScaleOut should use per-cluster dispatchers on a fat-tree")
	}
	sc := ServerClassConfig(40)
	if sc.Cores != 40 || sc.Domains != 1 || !sc.CentralDispatcher || sc.Topo != MeshTopo {
		t.Fatalf("ServerClass preset = %+v", sc)
	}
	if sc.PerfFactor <= 1 || sc.FreqGHz != 3 {
		t.Fatal("ServerClass core spec")
	}
}

func TestTopologySensitivityConfigs(t *testing.T) {
	for _, c := range []struct{ cpv, vpc, cl int }{
		{8, 4, 32}, {32, 1, 32}, {32, 2, 16}, {32, 4, 8},
	} {
		cfg := UManycoreTopologyConfig(c.cpv, c.vpc, c.cl)
		if cfg.Cores != 1024 {
			t.Errorf("%dx%dx%d cores = %d", c.cpv, c.vpc, c.cl, cfg.Cores)
		}
		if cfg.Domains != c.vpc*c.cl {
			t.Errorf("%dx%dx%d domains = %d", c.cpv, c.vpc, c.cl, cfg.Domains)
		}
		if cfg.LeafSpineCfg.Pods*cfg.LeafSpineCfg.LeavesPerPod != c.cl {
			t.Errorf("%dx%dx%d leaves = %d, want %d", c.cpv, c.vpc, c.cl,
				cfg.LeafSpineCfg.Pods*cfg.LeafSpineCfg.LeavesPerPod, c.cl)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%dx%dx%d invalid: %v", c.cpv, c.vpc, c.cl, err)
		}
	}
}

func TestTechniqueLadderConfigs(t *testing.T) {
	s0 := ScaleOutConfig()
	s1 := WithVillages(s0)
	if s1.Domains != 128 || s1.GlobalCoherence || s1.Placement != PinnedPlacement {
		t.Fatalf("villages step = %+v", s1)
	}
	s2 := WithLeafSpine(s1)
	if s2.Topo != LeafSpineTopo {
		t.Fatal("leaf-spine step")
	}
	s3 := WithHWScheduling(s2)
	if !s3.Policy.HardwareRQ || s3.RPCProcCycles != 0 {
		t.Fatal("hw sched step")
	}
	if s3.Policy.CSCycles != sched.SoftwareCSCycles {
		t.Fatal("hw sched step should keep software CS cost")
	}
	s4 := WithHWContextSwitch(s3)
	if s4.Policy.CSCycles != sched.HardwareCSCycles {
		t.Fatal("hw cs step")
	}
	for _, c := range []Config{s1, s2, s3, s4} {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", c.Name, err)
		}
	}
}

func TestPinnedPlacementCoversDomainsAndServices(t *testing.T) {
	eng := sim.NewEngine(1)
	m := New(eng, UManycoreConfig(), appByName(t, "CPost"))
	total := 0
	for svc := 0; svc < workload.NumSocialServices; svc++ {
		n := m.InstanceDomains(svc)
		if n == 0 {
			t.Fatalf("service %d has no instances", svc)
		}
		total += n
	}
	if total != 128 {
		t.Fatalf("allocated domains = %d, want 128", total)
	}
	// Hot services (User appears 5× in the CPost tree) get more villages
	// than cold ones (Text appears once).
	if m.InstanceDomains(workload.SvcUser) <= m.InstanceDomains(workload.SvcText) {
		t.Fatalf("User (%d villages) should out-provision Text (%d)",
			m.InstanceDomains(workload.SvcUser), m.InstanceDomains(workload.SvcText))
	}
}

func TestLeafAppSingleService(t *testing.T) {
	eng := sim.NewEngine(1)
	m := New(eng, UManycoreConfig(), appByName(t, "UrlShort"))
	if m.InstanceDomains(workload.SvcUrlShort) != 128 {
		t.Fatalf("leaf app should own every village, got %d", m.InstanceDomains(workload.SvcUrlShort))
	}
}

func TestRunCompletesAllRequests(t *testing.T) {
	res := quickRun(t, UManycoreConfig(), appByName(t, "CPost"), 2000)
	if res.Submitted == 0 || res.Completed != res.Submitted {
		t.Fatalf("submitted=%d completed=%d", res.Submitted, res.Completed)
	}
	if res.Rejected != 0 || res.Unfinished != 0 {
		t.Fatalf("rejected=%d unfinished=%d", res.Rejected, res.Unfinished)
	}
	if res.Latency.N == 0 || res.Latency.Mean <= 0 {
		t.Fatalf("latency = %+v", res.Latency)
	}
	// A CPost tree has 28 invocations.
	if res.Invocations != 28*res.Completed {
		t.Fatalf("invocations = %d for %d roots", res.Invocations, res.Completed)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := quickRun(t, UManycoreConfig(), appByName(t, "HomeT"), 3000)
	b := quickRun(t, UManycoreConfig(), appByName(t, "HomeT"), 3000)
	if a.Latency != b.Latency || a.Events != b.Events {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Latency, b.Latency)
	}
}

func TestLatencyAboveCriticalPath(t *testing.T) {
	app := appByName(t, "CPost")
	cp := app.Stats().CriticalPathMicros
	res := quickRun(t, UManycoreConfig(), app, 1000)
	if res.Latency.Mean < cp*0.8 {
		t.Fatalf("mean latency %v below critical path %v", res.Latency.Mean, cp)
	}
}

// The headline end-to-end behaviour (Figs 14/16): μManycore's latency stays
// flat from 5K to 15K RPS while ServerClass collapses; at 15K the tail gap
// is large and ScaleOut sits in between.
func TestPaperShapeTailLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("long calibration test")
	}
	app := appByName(t, "CPost")
	run := func(cfg Config, rps float64) *Result {
		return Run(cfg, RunConfig{App: app, Mix: workload.SocialNetworkMix(),
			RPS: rps, Duration: 500 * sim.Millisecond,
			Warmup: 100 * sim.Millisecond, Drain: 1500 * sim.Millisecond, Seed: 5})
	}
	u5, u15 := run(UManycoreConfig(), 5000), run(UManycoreConfig(), 15000)
	so15 := run(ScaleOutConfig(), 15000)
	sc5, sc15 := run(ServerClassConfig(40), 5000), run(ServerClassConfig(40), 15000)

	// μManycore: flat across load.
	if u15.Latency.P99 > 2*u5.Latency.P99 {
		t.Errorf("uManycore tail grew %v -> %v", u5.Latency.P99, u15.Latency.P99)
	}
	// ServerClass: collapses by 15K (paper: 25.7ms at 15K vs 4.0ms at 5K).
	if sc15.Latency.P99 < 4*sc5.Latency.P99 {
		t.Errorf("ServerClass tail should blow up: %v -> %v", sc5.Latency.P99, sc15.Latency.P99)
	}
	// Ordering at 15K: uManycore < ScaleOut < ServerClass.
	if !(u15.Latency.P99 < so15.Latency.P99 && so15.Latency.P99 < sc15.Latency.P99) {
		t.Errorf("tail ordering violated: uMC=%v ScaleOut=%v SC=%v",
			u15.Latency.P99, so15.Latency.P99, sc15.Latency.P99)
	}
	// Large uManycore advantage over ServerClass at 15K (paper: 16.7×).
	if sc15.Latency.P99 < 5*u15.Latency.P99 {
		t.Errorf("uMC advantage at 15K only %vx", sc15.Latency.P99/u15.Latency.P99)
	}
	// ServerClass utilization bands (§5): <30% at 5K, >60% at 15K.
	if sc5.Utilization > 0.35 {
		t.Errorf("ServerClass util at 5K = %v, want <~0.30", sc5.Utilization)
	}
	if sc15.Utilization < 0.55 {
		t.Errorf("ServerClass util at 15K = %v, want >0.60", sc15.Utilization)
	}
}

func TestHardwareRQRejectionUnderOverload(t *testing.T) {
	cfg := UManycoreConfig()
	cfg.Cores = 16
	cfg.Domains = 2
	cfg.RQCapacity = 4
	cfg.NICBufCapacity = 4
	cfg.LeafSpineCfg.Pods = 1
	cfg.LeafSpineCfg.LeavesPerPod = 2
	app, err := workload.SyntheticApp("deterministic", 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(cfg, RunConfig{App: app, RPS: 60000, Duration: 100 * sim.Millisecond,
		Warmup: 10 * sim.Millisecond, Drain: 500 * sim.Millisecond, Seed: 3})
	if res.Rejected == 0 {
		t.Fatal("overloaded tiny RQ should reject")
	}
	if res.Completed == 0 {
		t.Fatal("some requests should still complete")
	}
}

func TestWorkStealingBalancesLoad(t *testing.T) {
	// 1024 queues (per-core) with random placement: stealing should cut the
	// tail versus no stealing (the Fig 3 left edge).
	app, err := workload.SyntheticApp("exponential", 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := ScaleOutConfig()
	base.Domains = 1024
	base.Policy = sched.ZygOSSched()
	base.Policy.WorkStealing = false
	noSteal := quickRun(t, base, app, 40000)
	withSteal := base
	withSteal.Policy.WorkStealing = true
	steal := quickRun(t, withSteal, app, 40000)
	if steal.Latency.P99 >= noSteal.Latency.P99 {
		t.Fatalf("stealing did not reduce per-core-queue tail: %v vs %v",
			steal.Latency.P99, noSteal.Latency.P99)
	}
}

func TestICNContentionKnob(t *testing.T) {
	// Same machine with contention disabled must be at least as fast.
	cfg := ScaleOutConfig()
	app := appByName(t, "Text")
	with := quickRun(t, cfg, app, 20000)
	cfg.ICNContention = false
	without := quickRun(t, cfg, app, 20000)
	if without.Latency.P99 > with.Latency.P99 {
		t.Fatalf("contention-free run slower: %v vs %v", without.Latency.P99, with.Latency.P99)
	}
}

func TestContextSwitchKnob(t *testing.T) {
	// Raising CS cycles on the ServerClass dispatcher (Fig 6's knob) must
	// not improve latency, and large values must hurt clearly at load.
	app := appByName(t, "SGraph")
	lo := ServerClassConfig(40)
	lo.Policy.CSCycles = 128
	hi := ServerClassConfig(40)
	hi.Policy.CSCycles = 8192
	rlo := quickRun(t, lo, app, 12000)
	rhi := quickRun(t, hi, app, 12000)
	if rhi.Latency.P99 <= rlo.Latency.P99 {
		t.Fatalf("8192-cycle CS not worse than 128: %v vs %v", rhi.Latency.P99, rlo.Latency.P99)
	}
}

func TestRemoteCallFraction(t *testing.T) {
	cfg := UManycoreConfig()
	app := appByName(t, "HomeT")
	local := quickRun(t, cfg, app, 2000)
	cfg.RemoteCallFrac = 1.0
	cfg.RemoteRTT = 100 * sim.Microsecond
	remote := quickRun(t, cfg, app, 2000)
	if remote.Latency.Mean <= local.Latency.Mean+40 {
		t.Fatalf("remote RTT not reflected: %v vs %v", remote.Latency.Mean, local.Latency.Mean)
	}
}

func TestMeanHopsReflectTopology(t *testing.T) {
	app := appByName(t, "CPost")
	u := quickRun(t, UManycoreConfig(), app, 2000)
	s := quickRun(t, ScaleOutConfig(), app, 2000)
	if u.MeanHops <= 0 || s.MeanHops <= 0 {
		t.Fatal("no hops observed")
	}
	// Leaf-spine (≤4 hops) vs fat-tree (≤10): the paper's path-length claim.
	if u.MeanHops >= s.MeanHops {
		t.Fatalf("leaf-spine hops %v !< fat-tree hops %v", u.MeanHops, s.MeanHops)
	}
}

func TestContentionFreeAvgAndQoS(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfg := UManycoreConfig()
	app := appByName(t, "UrlShort")
	avg := ContentionFreeAvg(cfg, app, 7)
	if avg <= 0 {
		t.Fatal("no contention-free average")
	}
	thr := MaxQoSThroughput(cfg, app, 5, 1000, 400000, 7)
	if thr < 1000 {
		t.Fatalf("QoS throughput = %v", thr)
	}
	// The QoS-max load must actually satisfy QoS.
	res := Run(cfg, RunConfig{App: app, RPS: thr, Duration: 400 * sim.Millisecond,
		Warmup: 80 * sim.Millisecond, Seed: 7})
	if res.Latency.P99 > 5.5*avg {
		t.Fatalf("QoS violated at reported max: p99 %v vs limit %v", res.Latency.P99, 5*avg)
	}
}

func TestBurstyArrivalsRun(t *testing.T) {
	res := Run(UManycoreConfig(), RunConfig{
		App: appByName(t, "User"), RPS: 5000,
		Duration: 300 * sim.Millisecond, Warmup: 50 * sim.Millisecond,
		Arrivals: BurstyArrivals, Seed: 9,
	})
	if res.Completed == 0 {
		t.Fatal("bursty run completed nothing")
	}
}

func TestTopoKindString(t *testing.T) {
	if MeshTopo.String() != "mesh" || FatTreeTopo.String() != "fat-tree" || LeafSpineTopo.String() != "leaf-spine" {
		t.Fatal("topo names")
	}
	if TopoKind(9).String() == "" {
		t.Fatal("unknown topo")
	}
}

func TestTraceArrivalsRun(t *testing.T) {
	res := Run(UManycoreConfig(), RunConfig{
		App: appByName(t, "User"), RPS: 5000,
		Duration: 300 * sim.Millisecond, Warmup: 50 * sim.Millisecond,
		Arrivals: TraceArrivals, Seed: 12,
	})
	if res.Completed == 0 {
		t.Fatal("trace-driven run completed nothing")
	}
	// The realized load should be in the neighbourhood of the target mean
	// (one 300ms window samples one per-second rate, so tolerance is wide).
	rate := float64(res.Submitted) / 0.3
	if rate < 500 || rate > 30000 {
		t.Fatalf("realized rate = %v for target 5000", rate)
	}
}

func TestBurstierArrivalsWidenTail(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	app := appByName(t, "CPost")
	run := func(kind ArrivalKind) *Result {
		return Run(ServerClassConfig(40), RunConfig{
			App: app, Mix: workload.SocialNetworkMix(),
			RPS: 12000, Duration: 600 * sim.Millisecond,
			Warmup: 100 * sim.Millisecond, Drain: 1500 * sim.Millisecond,
			Arrivals: kind, Seed: 13,
		})
	}
	poisson := run(PoissonArrivals)
	bursty := run(BurstyArrivals)
	// Near saturation, burstiness should not shrink the tail.
	if bursty.Latency.P99 < poisson.Latency.P99*0.8 {
		t.Fatalf("bursty tail (%v) much smaller than Poisson (%v)",
			bursty.Latency.P99, poisson.Latency.P99)
	}
}

func TestLossyStorageNetwork(t *testing.T) {
	app := appByName(t, "PstStr") // storage-heavy leaf
	run := func(loss float64) *Result {
		cfg := UManycoreConfig()
		cfg.StorageLossProb = loss
		return Run(cfg, RunConfig{App: app, RPS: 4000,
			Duration: 200 * sim.Millisecond, Warmup: 40 * sim.Millisecond,
			Drain: sim.Second, Seed: 17})
	}
	clean := run(0)
	lossy := run(0.05)
	if lossy.Completed == 0 {
		t.Fatal("lossy run completed nothing")
	}
	// Retransmissions must lengthen the tail, not the count.
	if lossy.Latency.P99 <= clean.Latency.P99 {
		t.Fatalf("5%% storage loss did not lengthen tail: %v vs %v",
			lossy.Latency.P99, clean.Latency.P99)
	}
	if lossy.Completed != clean.Completed {
		t.Fatalf("loss changed completion count: %d vs %d", lossy.Completed, clean.Completed)
	}
}

func TestMuSuiteRuns(t *testing.T) {
	apps := workload.MuSuiteApps()
	res := Run(UManycoreConfig(), RunConfig{
		App: apps[0], Mix: workload.MuSuiteMix(),
		RPS: 8000, Duration: 150 * sim.Millisecond,
		Warmup: 30 * sim.Millisecond, Drain: 600 * sim.Millisecond, Seed: 21,
	})
	if res.Completed == 0 || res.Unfinished != 0 {
		t.Fatalf("μSuite mixed run: %+v", res.Latency)
	}
	if len(res.PerRoot) != 4 {
		t.Fatalf("per-root types = %d", len(res.PerRoot))
	}
	// μSuite requests are lighter than SocialNetwork's: sub-ms tails on an
	// unloaded μManycore.
	if res.Latency.P99 > 1500 {
		t.Fatalf("μSuite P99 = %vμs", res.Latency.P99)
	}
}
