package machine

import (
	"testing"

	"umanycore/internal/obs"
)

// The observability layer's zero-overhead contract: with RunConfig.Obs nil,
// every instrumentation site reduces to a nil-guarded branch, so a run must
// cost the same time and exactly the same allocations as before the layer
// existed. BENCH_obs.json records the measured numbers next to the
// BENCH_sweep.json baseline.

// BenchmarkMachineRunObsOff is the disabled-instrumentation benchmark —
// compare against BenchmarkMachineRun (identical workload) and the ObsOn
// variant below.
func BenchmarkMachineRunObsOff(b *testing.B) {
	cfg := UManycoreConfig()
	rc := benchRunConfig(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(cfg, rc)
		if res.Obs != nil {
			b.Fatal("obs-off run carried an obs payload")
		}
	}
}

// BenchmarkMachineRunObsOn measures the enabled cost (span recording +
// metrics) for the same workload — the price of a traced profiling run.
func BenchmarkMachineRunObsOn(b *testing.B) {
	cfg := UManycoreConfig()
	rc := benchRunConfig(42)
	rc.Obs = obs.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(cfg, rc)
		if res.Obs == nil || len(res.Obs.Spans) == 0 {
			b.Fatal("obs-on run recorded no spans")
		}
	}
}

// obsOffBaselineAllocs is the allocs/op of BenchmarkMachineRun measured
// BEFORE the observability layer existed (BENCH_sweep.json, recorded again
// in BENCH_obs.json). The simulation is deterministic, so the count is
// stable run to run; update the constant only when a deliberate change to
// the machine model moves it.
const obsOffBaselineAllocs = 68285

// TestObsOffZeroAllocDelta asserts the allocation half of the zero-overhead
// contract: with RunConfig.Obs nil, a run allocates exactly what it did
// before the layer existed. An unguarded instrumentation site that builds a
// span, closure, or string on the disabled path shows up here immediately.
func TestObsOffZeroAllocDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow")
	}
	cfg := UManycoreConfig()
	rc := benchRunConfig(42)
	Run(cfg, rc) // warm the engine pool and workload caches

	got := testing.AllocsPerRun(3, func() {
		Run(cfg, rc)
	})
	// 0.5% headroom absorbs sync.Pool/GC jitter (an emptied pool re-grows
	// the engine heap); the disabled layer itself must contribute nothing.
	tolerance := 0.005 * obsOffBaselineAllocs
	delta := got - obsOffBaselineAllocs
	if delta < 0 {
		delta = -delta
	}
	if delta > tolerance {
		t.Fatalf("obs-off run allocates %.0f/op, baseline %d/op (delta %.0f > tolerance %.0f)",
			got, obsOffBaselineAllocs, delta, tolerance)
	}
}
