package machine

import (
	"testing"

	"umanycore/internal/sim"
	"umanycore/internal/workload"
)

func colocatedConfig(n int) Config {
	cfg := UManycoreConfig()
	cfg.Extensions.ColocatedServices = n
	return cfg
}

func TestExtensionValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative colocation", func(c *Config) { c.Extensions.ColocatedServices = -1 }},
		{"colocation without pinning", func(c *Config) {
			c.Extensions.ColocatedServices = 2
			c.Placement = RandomPlacement
		}},
		{"partition without hw rq", func(c *Config) {
			c.Extensions.ColocatedServices = 2
			c.Extensions.PartitionRQ = true
			c.Policy.HardwareRQ = false
		}},
		{"partition without colocation", func(c *Config) { c.Extensions.PartitionRQ = true }},
		{"big frac out of range", func(c *Config) { c.Extensions.BigVillageFrac = 1.5 }},
		{"big without perf", func(c *Config) { c.Extensions.BigVillageFrac = 0.5 }},
	}
	for _, tc := range cases {
		cfg := UManycoreConfig()
		tc.mutate(&cfg)
		if err := cfg.Extensions.Validate(&cfg); err == nil {
			t.Errorf("%s validated", tc.name)
		}
	}
	good := UManycoreConfig()
	if err := good.Extensions.Validate(&good); err != nil {
		t.Fatalf("default extensions invalid: %v", err)
	}
}

func TestColocationPartitionsCores(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := colocatedConfig(2)
	m := New(eng, cfg, appByName(t, "CPost"))
	// Every domain hosts 2 services; every core has a service register.
	for _, dom := range m.domains {
		seen := map[int]bool{}
		for _, c := range dom.cores {
			if c.svcID < 0 {
				t.Fatal("co-located core without Service ID")
			}
			seen[c.svcID] = true
		}
		if len(seen) < 1 || len(seen) > 2 {
			t.Fatalf("domain hosts %d services, want 1-2", len(seen))
		}
	}
	// Every service in the tree has instances somewhere.
	for svc := 0; svc < workload.NumSocialServices; svc++ {
		if m.InstanceDomains(svc) == 0 {
			t.Fatalf("service %d unplaced", svc)
		}
	}
}

func TestColocatedRunCompletes(t *testing.T) {
	cfg := colocatedConfig(2)
	res := Run(cfg, RunConfig{
		App: appByName(t, "CPost"), Mix: workload.SocialNetworkMix(),
		RPS: 3000, Duration: 150 * sim.Millisecond,
		Warmup: 30 * sim.Millisecond, Drain: 600 * sim.Millisecond, Seed: 4,
	})
	if res.Completed == 0 || res.Unfinished != 0 {
		t.Fatalf("colocated run: completed=%d unfinished=%d", res.Completed, res.Unfinished)
	}
}

func TestCoreStealingHelps(t *testing.T) {
	// Under co-location with skewed load, letting idle cores serve other
	// instances should not hurt and typically trims the tail.
	base := colocatedConfig(2)
	run := func(cfg Config) *Result {
		return Run(cfg, RunConfig{
			App: appByName(t, "CPost"), Mix: workload.SocialNetworkMix(),
			RPS: 20000, Duration: 200 * sim.Millisecond,
			Warmup: 40 * sim.Millisecond, Drain: 800 * sim.Millisecond, Seed: 6,
		})
	}
	noSteal := run(base)
	withSteal := base
	withSteal.Extensions.CoreStealing = true
	steal := run(withSteal)
	if steal.Completed == 0 || noSteal.Completed == 0 {
		t.Fatal("runs incomplete")
	}
	if steal.Latency.P99 > noSteal.Latency.P99*1.25 {
		t.Fatalf("core stealing made the tail much worse: %v vs %v",
			steal.Latency.P99, noSteal.Latency.P99)
	}
}

func TestRQPartitioning(t *testing.T) {
	cfg := colocatedConfig(2)
	cfg.Extensions.PartitionRQ = true
	res := Run(cfg, RunConfig{
		App: appByName(t, "CPost"), Mix: workload.SocialNetworkMix(),
		RPS: 3000, Duration: 150 * sim.Millisecond,
		Warmup: 30 * sim.Millisecond, Drain: 600 * sim.Millisecond, Seed: 4,
	})
	if res.Completed == 0 {
		t.Fatal("partitioned-RQ run completed nothing")
	}
}

func TestHeterogeneousVillages(t *testing.T) {
	cfg := UManycoreConfig()
	cfg.Extensions.BigVillageFrac = 0.25
	cfg.Extensions.BigCorePerf = 1.65
	eng := sim.NewEngine(1)
	m := New(eng, cfg, appByName(t, "CPost"))
	big := 0
	for _, dom := range m.domains {
		if dom.perfMult > 0 {
			big++
		}
	}
	if big != 32 {
		t.Fatalf("big villages = %d, want 32 of 128", big)
	}
	// Faster villages should lower the mean latency versus homogeneous.
	homog := Run(UManycoreConfig(), RunConfig{
		App: appByName(t, "HomeT"), RPS: 3000,
		Duration: 150 * sim.Millisecond, Warmup: 30 * sim.Millisecond,
		Drain: 600 * sim.Millisecond, Seed: 8,
	})
	hetero := Run(cfg, RunConfig{
		App: appByName(t, "HomeT"), RPS: 3000,
		Duration: 150 * sim.Millisecond, Warmup: 30 * sim.Millisecond,
		Drain: 600 * sim.Millisecond, Seed: 8,
	})
	if hetero.Latency.Mean >= homog.Latency.Mean {
		t.Fatalf("heterogeneous villages did not help: %v vs %v",
			hetero.Latency.Mean, homog.Latency.Mean)
	}
}

func TestExtensionsDeterministic(t *testing.T) {
	cfg := colocatedConfig(3)
	cfg.Extensions.CoreStealing = true
	run := func() *Result {
		return Run(cfg, RunConfig{
			App: appByName(t, "CPost"), Mix: workload.SocialNetworkMix(),
			RPS: 5000, Duration: 100 * sim.Millisecond,
			Warmup: 20 * sim.Millisecond, Drain: 400 * sim.Millisecond, Seed: 9,
		})
	}
	a, b := run(), run()
	if a.Latency != b.Latency {
		t.Fatalf("extension run nondeterministic: %+v vs %+v", a.Latency, b.Latency)
	}
}
