package machine

import (
	"fmt"
	"math"
	"math/rand"

	"umanycore/internal/icn"
	"umanycore/internal/obs"
	"umanycore/internal/rpcnet"
	"umanycore/internal/rq"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
	"umanycore/internal/telemetry"
	"umanycore/internal/workload"
)

// Machine simulates one server: a processor built from Config serving one
// application's request trees.
type Machine struct {
	cfg     Config
	eng     *sim.Engine
	catalog *workload.Catalog
	mix     []workload.MixEntry // arrival mixture over root services
	topo    icn.Topology

	domains   []*domain
	instances map[int][]*domain // serviceID -> hosting domains
	// svcmap is the top-level NIC's hardware dispatch table (§4.2); it
	// round-robins requests over a service's hosting domains.
	svcmap *rpcnet.ServiceMap
	// storageNIC, when the storage network is lossy, is the R-NIC pool
	// handling retransmission and congestion control (§4.1).
	storageNIC []*rpcnet.RNIC

	// Measurement.
	measureFrom sim.Time
	Latency     stats.Sample // end-to-end root latency, microseconds
	// LatencyByRoot splits the sample by request type (root service ID) —
	// the per-application series of the mixed-workload figures.
	LatencyByRoot map[int]*stats.Sample
	Submitted     uint64
	Completed     uint64
	Rejected      uint64
	rejectedRoots uint64
	Invocations   uint64
	// RemoteServed counts child RPCs that arrived from peer servers via
	// SubmitRemote (coupled-fleet runs only).
	RemoteServed uint64
	coreBusy     sim.Time
	hopSum       uint64
	msgCount     uint64

	// Observability (nil/zero when disabled — see EnableObs in obs.go).
	trace *obs.Collector
	mx    *machineMetrics
	qlen  int // runnable invocations queued machine-wide (metrics only)
	// tele receives measured end-to-end latencies when streaming telemetry
	// is enabled (see EnableTelemetry in obs.go); nil disables at zero cost.
	tele *telemetry.Sampler
	// teleCtl is the control plane's dedicated sampler (the fleet load
	// shedder's slo.burn watchdog — see EnableControlTelemetry); it sees the
	// same latency stream as tele and is nil outside controlled fleet runs.
	teleCtl *telemetry.Sampler

	// remoteSend, when non-nil, couples this machine to a fleet: child RPCs
	// that draw the RemoteCallFrac lottery are shipped to a peer server
	// through it instead of paying a probabilistic latency add locally.
	remoteSend RemoteSender

	// local, non-nil on a placed machine (NewPlaced — a fleet service-graph
	// server), marks which services are hosted here. A child RPC to a
	// non-local service always ships through remoteSend; the RemoteCallFrac
	// lottery is bypassed entirely.
	local []bool

	// sp holds the effective what-if cost multipliers (all 1 when
	// Config.WhatIf is zero), precomputed at construction.
	sp stageScale

	// rng, when non-nil, replaces the engine's named streams as the source
	// of this machine's randomness. A sharded fleet gives every server its
	// own bundle (seeded from the server index), so the server draws the
	// same sequences whether it runs on a private engine or interleaved
	// with peers on a shared one — the property the PDES byte-identity
	// contract rests on. Nil (the default) keeps the engine streams, so a
	// plain machine.Run is unchanged.
	rng *sim.Streams

	invSeq uint64
}

// SetRNG scopes this machine's randomness to the given stream bundle
// instead of its engine's streams. Call before submitting load.
func (m *Machine) SetRNG(r *sim.Streams) { m.rng = r }

// rand returns the machine's named random stream: the scoped bundle when
// one is set, the engine's stream otherwise.
func (m *Machine) rand(name string) *rand.Rand {
	if m.rng != nil {
		return m.rng.Rand(name)
	}
	return m.eng.Rand(name)
}

// RemoteSender ships one cross-server child RPC into the fleet: svcID is
// the callee service, demand the caller's trace-replay compute-demand
// multiplier (0 = unscaled; the peer applies it to the served subtree),
// depart the virtual time the request has left this server's NIC (half the
// inter-server RTT already paid), and respond must be called exactly once
// with the virtual time the peer's response leaves the peer server. traced
// says the caller recorded an invoke span for this RPC; when set, the
// fleet mints a fleet-unique remote-link ID, hands it to the peer's
// SubmitRemote so the peer traces the served subtree under that link, and
// returns it so the caller can tag its invoke span (obs.Merge stitches the
// two halves). Untraced sends return 0.
type RemoteSender func(svcID int, demand float64, depart sim.Time, traced bool, respond func(done sim.Time)) (link uint64)

type domain struct {
	m        *Machine
	id       int
	endpoint int
	// perfMult scales compute speed for heterogeneous-village extensions
	// (0 means 1.0).
	perfMult float64
	cores    []*core
	idle     []*core
	// sched serializes queue operations: the software queue lock, the
	// (possibly machine-shared) centralized dispatcher core, or the
	// hardware RQ's atomic access port.
	sched  *sim.Resource
	hwq    *rq.RQ
	nicbuf *rq.NICBuffer
	swq    []*invocation // software FIFO of ready invocations
}

type core struct {
	dom  *domain
	id   int
	busy bool
	// busyTime accumulates this core's occupied time, the per-core split of
	// Machine.coreBusy used by the utilization-spread metrics.
	busyTime sim.Time
	// svcID is the core's assigned Service ID register (§4.1); -1 serves
	// any service (the default when a village hosts one instance).
	svcID int
}

// invocation is one service invocation in a request tree.
type invocation struct {
	id      uint64
	svc     *workload.Service
	opIdx   int
	dom     *domain
	parent  *invocation
	pending int // outstanding children
	entry   *rq.Entry
	root    bool
	start   sim.Time
	// lastCore is the global core ID this invocation last ran on, -1 if
	// never scheduled.
	lastCore int
	// resumed marks that processor state was saved and must be restored.
	resumed bool
	// remote marks a child whose caller is on another server.
	remote bool
	// dispatched marks that initial RPC-layer processing already ran.
	dispatched bool
	// measured marks roots that arrived after warmup.
	measured bool
	// span is this invocation's envelope span ID, 0 when untraced.
	span uint64
	// enqAt is when the invocation last became runnable (queue-wait start).
	enqAt sim.Time
	// onDone, when set, marks a parentless invocation serving a peer
	// server's child RPC (coupled fleet): instead of recording end-to-end
	// latency, respond calls it with the response's NIC-egress time.
	onDone func(done sim.Time)
	// demand scales every compute sample of this invocation and is
	// inherited by its children — trace replay's per-record service demand
	// (see svcgraph.Arrival.Demand). Zero means unscaled.
	demand float64
	// onResp, when set on a root, reports the admission outcome to the
	// fleet dispatcher's control loop (SubmitRootCtl): called exactly once
	// with the virtual time the response — completion or admission reject —
	// leaves this server's NIC, so the front end can retry, hedge, and
	// account for rejections instead of the machine dropping them silently.
	onResp func(done sim.Time, rejected bool)
}

// New builds a machine on the given engine serving a single request type.
func New(eng *sim.Engine, cfg Config, app *workload.App) *Machine {
	return NewMix(eng, cfg, app.Catalog, []workload.MixEntry{{Root: app.Root, Weight: 1}})
}

// NewMix builds a machine serving a weighted mixture of request types from
// one catalog (§5: the server receives the full application mix; figures
// report per-type latencies).
func NewMix(eng *sim.Engine, cfg Config, catalog *workload.Catalog, mix []workload.MixEntry) *Machine {
	return newMachine(eng, cfg, catalog, mix, nil)
}

// NewPlaced builds a machine hosting only the given services of the
// catalog — one server of a fleet service-graph deployment (see
// fleet.Config.Graph and internal/svcgraph). The hosted services share the
// machine's villages by equal-weight largest-remainder allocation: the
// fleet-level placement, not a local request mix, decides who lives here.
// Child RPCs to services outside local always ship through the
// RemoteSender. The request mix defaults to the first hosted service so an
// untyped SubmitRoot still resolves; graph fleets submit typed roots via
// SubmitRootAs.
func NewPlaced(eng *sim.Engine, cfg Config, catalog *workload.Catalog, local []int) *Machine {
	if len(local) == 0 {
		panic("machine: NewPlaced needs at least one local service")
	}
	return newMachine(eng, cfg, catalog, []workload.MixEntry{{Root: local[0], Weight: 1}}, local)
}

func newMachine(eng *sim.Engine, cfg Config, catalog *workload.Catalog, mix []workload.MixEntry, local []int) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(mix) == 0 {
		panic("machine: empty mix")
	}
	m := &Machine{
		cfg:           cfg,
		eng:           eng,
		catalog:       catalog,
		mix:           mix,
		instances:     make(map[int][]*domain),
		svcmap:        rpcnet.NewServiceMap(),
		LatencyByRoot: make(map[int]*stats.Sample),
		sp:            cfg.WhatIf.scales(),
	}
	switch cfg.Topo {
	case MeshTopo:
		m.topo = icn.NewMesh(cfg.MeshW, cfg.MeshH, cfg.LinkParams)
	case FatTreeTopo:
		m.topo = icn.NewFatTree(cfg.FatTreeLeaves, cfg.LinkParams)
	case LeafSpineTopo:
		m.topo = icn.NewLeafSpine(cfg.LeafSpineCfg, cfg.LinkParams)
	}
	endpoints := m.topo.NumEndpoints()
	coresPer := cfg.Cores / cfg.Domains
	coreID := 0
	var central *sim.Resource
	if cfg.CentralDispatcher && cfg.Policy.Centralized {
		central = &sim.Resource{}
	}
	for d := 0; d < cfg.Domains; d++ {
		dom := &domain{m: m, id: d, endpoint: d * endpoints / cfg.Domains}
		if central != nil {
			dom.sched = central
		} else {
			dom.sched = &sim.Resource{}
		}
		if cfg.Policy.HardwareRQ {
			dom.hwq = rq.New(cfg.RQCapacity)
			dom.nicbuf = rq.NewNICBuffer(cfg.NICBufCapacity)
		}
		for i := 0; i < coresPer; i++ {
			c := &core{dom: dom, id: coreID, svcID: -1}
			coreID++
			dom.cores = append(dom.cores, c)
			dom.idle = append(dom.idle, c)
		}
		m.domains = append(m.domains, dom)
	}
	if err := cfg.Extensions.Validate(&cfg); err != nil {
		panic(err)
	}
	m.applyHeterogeneity()
	if local != nil {
		m.local = make([]bool, len(catalog.Services))
		for _, svc := range local {
			if svc < 0 || svc >= len(catalog.Services) {
				panic(fmt.Sprintf("machine: local service %d outside catalog of %d", svc, len(catalog.Services)))
			}
			m.local[svc] = true
		}
	}
	switch {
	case local != nil:
		m.placeLocal(local)
	case cfg.Extensions.ColocatedServices > 1:
		m.placeColocated()
	default:
		m.placeInstances()
	}
	// Populate the top-level NIC's ServiceMap from the placement (§4.2:
	// "populated by the system software every time a new service instance
	// is initialized").
	for svc, doms := range m.instances {
		for _, dom := range doms {
			m.svcmap.Register(uint16(svc), uint16(dom.id))
		}
	}
	if cfg.StorageLossProb > 0 {
		// One R-NIC per cluster endpoint (villages share their cluster's
		// remote port budget).
		n := m.topo.NumEndpoints()
		for i := 0; i < n; i++ {
			nic := rpcnet.NewRNIC(40, cfg.StorageRTT, cfg.StorageLossProb)
			// Real transports set the retransmission timeout far above the
			// RTT (loss detection needs a conservative timer); 50× the 1μs
			// base RTT is an optimistic datacenter RTO.
			nic.RTOMultiple = 50
			m.storageNIC = append(m.storageNIC, nic)
		}
	}
	return m
}

// placeInstances builds the ServiceMap. Pinned placement allocates domains
// to services proportionally to their expected invocation load (§4.1: one
// instance per village, more villages for hotter services); random placement
// hosts every service everywhere.
func (m *Machine) placeInstances() {
	services := m.servicesInTree()
	if m.cfg.Placement == RandomPlacement {
		for svc := range services {
			m.instances[svc] = m.domains
		}
		return
	}
	// Weights = expected invocations of each service per arriving request,
	// weighted by the mixture.
	weights := make(map[int]float64)
	var walk func(id int, mult float64)
	walk = func(id int, mult float64) {
		weights[id] += mult
		for _, op := range m.catalog.Service(id).Ops {
			if op.Kind != workload.OpCall {
				continue
			}
			for _, callee := range op.Callees {
				walk(callee, mult)
			}
		}
	}
	for _, e := range m.mix {
		walk(e.Root, e.Weight)
	}
	m.allocateDomains(weights)
}

// placeLocal allocates domains across an explicitly hosted service set with
// equal weights: the fleet-level placement spec already decided which
// services live on this server, so each gets an equal share of villages
// (same largest-remainder scheme as placeInstances).
func (m *Machine) placeLocal(local []int) {
	if m.cfg.Placement == RandomPlacement {
		for _, svc := range local {
			m.instances[svc] = m.domains
		}
		return
	}
	weights := make(map[int]float64, len(local))
	for _, svc := range local {
		weights[svc] = 1
	}
	m.allocateDomains(weights)
}

// allocateDomains assigns hosting domains proportionally to per-service
// weights: largest-remainder with a minimum of one domain each.
func (m *Machine) allocateDomains(weights map[int]float64) {
	var total float64
	for _, w := range weights {
		total += w
	}
	// Largest-remainder allocation with a minimum of one domain each.
	type alloc struct {
		svc  int
		n    int
		frac float64
	}
	var allocs []alloc
	used := 0
	for svc := 0; svc < len(m.catalog.Services); svc++ {
		w, ok := weights[svc]
		if !ok {
			continue
		}
		exact := w / total * float64(len(m.domains))
		n := int(exact)
		if n < 1 {
			n = 1
		}
		allocs = append(allocs, alloc{svc: svc, n: n, frac: exact - float64(int(exact))})
		used += n
	}
	for i := 0; used < len(m.domains); i, used = i+1, used+1 {
		// Distribute leftovers round-robin biased by fractional part order
		// (allocs is small; a simple pass by descending frac each round).
		best := 0
		for j := range allocs {
			if allocs[j].frac > allocs[best].frac {
				best = j
			}
		}
		allocs[best].n++
		allocs[best].frac = 0
		_ = i
	}
	for used > len(m.domains) {
		// Shrink the largest allocation above 1.
		best := -1
		for j := range allocs {
			if allocs[j].n > 1 && (best < 0 || allocs[j].n > allocs[best].n) {
				best = j
			}
		}
		if best < 0 {
			break
		}
		allocs[best].n--
		used--
	}
	next := 0
	for _, a := range allocs {
		for i := 0; i < a.n && next < len(m.domains); i++ {
			m.instances[a.svc] = append(m.instances[a.svc], m.domains[next])
			next++
		}
	}
	// Any unassigned tail domains (rounding) reinforce the heaviest service.
	if next < len(m.domains) {
		heaviest := allocs[0].svc
		for _, a := range allocs {
			if weights[a.svc] > weights[heaviest] {
				heaviest = a.svc
			}
		}
		for ; next < len(m.domains); next++ {
			m.instances[heaviest] = append(m.instances[heaviest], m.domains[next])
		}
	}
}

func (m *Machine) servicesInTree() map[int]bool {
	out := make(map[int]bool)
	var walk func(id int)
	walk = func(id int) {
		if out[id] {
			return
		}
		out[id] = true
		for _, op := range m.catalog.Service(id).Ops {
			if op.Kind != workload.OpCall {
				continue
			}
			for _, callee := range op.Callees {
				walk(callee)
			}
		}
	}
	for _, e := range m.mix {
		walk(e.Root)
	}
	return out
}

// InstanceDomains exposes the ServiceMap for tests.
func (m *Machine) InstanceDomains(svc int) int { return len(m.instances[svc]) }

// SetMeasureFrom discards roots arriving before t from the latency sample.
func (m *Machine) SetMeasureFrom(t sim.Time) { m.measureFrom = t }

// pickInstance round-robins over the service's hosting domains (§4.2).
func (m *Machine) pickInstance(svc int) *domain {
	doms := m.instances[svc]
	if len(doms) == 0 {
		panic(fmt.Sprintf("machine: no instances for service %d", svc))
	}
	if m.cfg.Placement == RandomPlacement {
		return doms[m.rand("route").Intn(len(doms))]
	}
	// Hardware round-robin dispatch via the ServiceMap (§4.2).
	village, ok := m.svcmap.Dispatch(uint16(svc))
	if !ok {
		panic(fmt.Sprintf("machine: ServiceMap has no instances for service %d", svc))
	}
	return m.domains[village]
}

// SubmitRoot injects one external request for the app's root service at the
// current time. The request passes the top-level NIC and the ICN before
// reaching its village.
func (m *Machine) SubmitRoot() { m.submitRoot(nil) }

// SubmitRootCtl injects a root like SubmitRoot and additionally reports its
// admission outcome: onResp is called exactly once, with the virtual time
// the response (completion, or a §4.3 admission reject) leaves this
// server's NIC, and whether it was a reject. The coupled fleet's control
// loop dispatches through this so rejected roots come back to the front end
// for retry/hedging accounting instead of vanishing into rejectedRoots.
// Server-side accounting (Submitted, Completed, rejection counters, the
// per-attempt latency sample) is unchanged.
func (m *Machine) SubmitRootCtl(onResp func(done sim.Time, rejected bool)) {
	m.submitRoot(onResp)
}

// SubmitRootAs injects one external root request of an explicit service
// type with a compute-demand multiplier (0 = unscaled) — the trace-replay
// and fleet service-graph entry point. Ingress path and root accounting
// match SubmitRoot exactly; only the mixture draw is bypassed.
func (m *Machine) SubmitRootAs(svcID int, demand float64) {
	m.submitRootSvc(svcID, demand, nil)
}

func (m *Machine) submitRoot(onResp func(done sim.Time, rejected bool)) {
	m.submitRootSvc(m.pickRoot(), 0, onResp)
}

func (m *Machine) submitRootSvc(svcID int, demand float64, onResp func(done sim.Time, rejected bool)) {
	m.Submitted++
	now := m.eng.Now()
	inv := &invocation{
		id:       m.nextInv(),
		svc:      m.catalog.Service(svcID),
		root:     true,
		start:    now,
		lastCore: -1,
		measured: now >= m.measureFrom,
		demand:   demand,
		onResp:   onResp,
	}
	dom := m.pickInstance(inv.svc.ID)
	inv.dom = dom
	// Top-level NIC → village. Conventional designs carry external traffic
	// across the on-package fabric from the I/O corner; μManycore delivers
	// via the leaf NH's direct port.
	at := now + m.cfg.IngressLatency + m.cfg.NICHWDelay
	if m.cfg.IOViaICN {
		at, _ = m.ioDeliverIn(at, dom.endpoint, m.cfg.ReqMsgBytes)
	}
	if m.trace != nil && inv.measured {
		inv.span = m.trace.StartRoot(inv.id, int16(inv.svc.ID), now)
		if at > now {
			m.trace.Add(inv.span, obs.StageIngress, now, at)
		}
	}
	m.eng.At(at, func() { m.enqueue(inv) })
}

// SetRemoteSender couples this machine to a fleet: child RPCs drawing the
// RemoteCallFrac lottery are routed through f to a peer server instead of
// being approximated by a local latency add. Call before submitting load.
func (m *Machine) SetRemoteSender(f RemoteSender) { m.remoteSend = f }

// SubmitRemote injects a child RPC arriving from a peer server at the
// current time: it passes the top-level NIC and the ICN like an external
// request, runs svcID's full invocation subtree on this machine (compute
// samples scaled by the caller's demand multiplier, 0 = unscaled), and
// calls onDone with the virtual time the response leaves this server's
// NIC. Remote invocations never enter the latency sample or the Submitted
// / Completed root accounting; they are extra offered load. A nonzero link
// (caller traced, tracing on here) opens a link-tagged envelope span so the
// served subtree is recorded in this machine's collector and stitched under
// the caller's invoke span by obs.Merge.
func (m *Machine) SubmitRemote(svcID int, demand float64, link uint64, onDone func(done sim.Time)) {
	m.RemoteServed++
	now := m.eng.Now()
	inv := &invocation{
		id:       m.nextInv(),
		svc:      m.catalog.Service(svcID),
		start:    now,
		lastCore: -1,
		demand:   demand,
		onDone:   onDone,
	}
	dom := m.pickInstance(svcID)
	inv.dom = dom
	if m.trace != nil && link != 0 {
		inv.span = m.trace.StartRemote(inv.id, link, int16(svcID), now)
	}
	at := now + m.cfg.IngressLatency + m.cfg.NICHWDelay
	if m.cfg.IOViaICN {
		at, _ = m.ioDeliverIn(at, dom.endpoint, m.cfg.ReqMsgBytes)
	}
	if inv.span != 0 && at > now {
		m.trace.Add(inv.span, obs.StageIngress, now, at)
	}
	m.eng.At(at, func() { m.enqueue(inv) })
}

// OutstandingRoots reports accepted root requests not yet completed or
// rejected — the per-server outstanding counter a load balancer tracks
// (requests it sent minus responses it saw). Peer-served child RPCs are
// server-to-server traffic invisible to the balancer and are excluded.
func (m *Machine) OutstandingRoots() int {
	return int(m.Submitted - m.Completed - m.rejectedRoots)
}

// RespondedRoots reports the root requests this server has answered —
// completions plus admission rejections. It is the quantity a front-end
// eventually learns about a server: the sharded fleet's dispatcher
// subtracts a barrier-time snapshot of it from its own sent counter to
// form the (deliberately stale) outstanding view its balancer policies
// route on.
func (m *Machine) RespondedRoots() uint64 { return m.Completed + m.rejectedRoots }

// QueueDepth reports the runnable invocations currently queued machine-wide
// (hardware RQ ready entries, NIC overflow buffers, and software FIFOs) —
// the instantaneous-queue-length signal for shortest-queue routing studies.
func (m *Machine) QueueDepth() int {
	depth := 0
	for _, dom := range m.domains {
		if dom.hwq != nil {
			depth += dom.hwq.ReadyCount() + dom.nicbuf.Len()
		} else {
			depth += len(dom.swq)
		}
	}
	return depth
}

// pickRoot draws a request type from the arrival mixture.
func (m *Machine) pickRoot() int {
	if len(m.mix) == 1 {
		return m.mix[0].Root
	}
	var total float64
	for _, e := range m.mix {
		total += e.Weight
	}
	x := m.rand("mix").Float64() * total
	for _, e := range m.mix {
		x -= e.Weight
		if x < 0 {
			return e.Root
		}
	}
	return m.mix[len(m.mix)-1].Root
}

func (m *Machine) nextInv() uint64 {
	m.invSeq++
	return m.invSeq
}

// enqueue deposits a ready invocation in its domain's queue.
func (m *Machine) enqueue(inv *invocation) {
	dom := inv.dom
	if inv.span != 0 {
		inv.enqAt = m.eng.Now()
	}
	if dom.hwq != nil {
		e := dom.hwq.Enqueue(inv.svc.ID, &rq.Context{RequestID: inv.id, UserData: inv})
		if e == nil {
			if !dom.nicbuf.Offer(inv.svc.ID, &rq.Context{RequestID: inv.id, UserData: inv}) {
				m.reject(inv)
				return
			}
			if m.mx != nil {
				m.mx.admitNICBuf.Inc()
				m.observeQueueDepth(1)
			}
		} else {
			inv.entry = e
			if m.mx != nil {
				m.mx.admitRQ.Inc()
				m.observeQueueDepth(1)
			}
		}
		m.kick(dom)
		return
	}
	// Software queue: the enqueue critical section serializes on the
	// domain's scheduler resource; the work becomes visible when it
	// completes.
	enqCost := shrink(0, sim.Time(float64(m.cfg.CyclesToTime(m.cfg.Policy.EnqueueCycles))*m.lockFactor(dom)), m.sp.sched)
	grant := dom.sched.Acquire(m.eng.Now(), enqCost)
	m.eng.At(grant, func() {
		dom.swq = append(dom.swq, inv)
		if m.mx != nil {
			m.mx.admitSWQ.Inc()
			m.observeQueueDepth(1)
		}
		m.kick(dom)
	})
}

// reject drops a request that found both the RQ and the NIC buffer full
// (§4.3). A rejected child still answers its parent so the tree terminates.
func (m *Machine) reject(inv *invocation) {
	m.Rejected++
	if m.mx != nil {
		m.mx.admitReject.Inc()
	}
	if inv.span != 0 {
		// The flag excludes the request tree from tail analysis; a rejected
		// child's span still closes in respond so containment holds.
		m.trace.Flag(inv.span, obs.FlagRejected)
		if inv.parent == nil {
			m.trace.End(inv.span, m.eng.Now())
		}
	}
	if inv.parent != nil || inv.onDone != nil {
		// Children (local or peer-served) still answer their caller so the
		// request tree terminates.
		m.respond(inv)
	} else {
		m.rejectedRoots++
		if inv.onResp != nil {
			// Control-dispatched root: instead of a silent drop, the
			// rejection answers the front end. It turns around at the NIC
			// boundary where the admission check lives (§4.3) — one ingress
			// latency, no ICN crossing.
			inv.onResp(m.eng.Now()+m.cfg.IngressLatency, true)
		}
	}
}

// perfOf returns the effective compute-speed divisor of a domain.
func (m *Machine) perfOf(dom *domain) float64 {
	if dom.perfMult > 0 {
		return m.cfg.PerfFactor * dom.perfMult
	}
	return m.cfg.PerfFactor
}

// workFor reports whether a specific core has dispatchable work, honoring
// its Service ID register and the core-stealing extension.
func (m *Machine) workFor(c *core) bool {
	dom := c.dom
	if dom.hwq != nil {
		if dom.hwq.HasReady(c.svcID) {
			return true
		}
		if c.svcID >= 0 && m.cfg.Extensions.CoreStealing {
			return dom.hwq.HasReady(-1)
		}
		return false
	}
	return len(dom.swq) > 0
}

// kick wakes idle cores while runnable work remains. Under work stealing,
// leftover work with no local idle core wakes an idle core elsewhere, which
// steals it (ZygOS-style idle polling).
func (m *Machine) kick(dom *domain) {
	for len(dom.idle) > 0 && m.hasWork(dom) {
		// Wake the most recently idled core whose Service ID matches the
		// ready work; without co-location every core matches.
		woke := false
		for i := len(dom.idle) - 1; i >= 0; i-- {
			c := dom.idle[i]
			if !m.workFor(c) {
				continue
			}
			dom.idle = append(dom.idle[:i], dom.idle[i+1:]...)
			c.busy = true
			m.dispatch(c)
			woke = true
			break
		}
		if !woke {
			break
		}
	}
	if m.cfg.Policy.WorkStealing && m.hasWork(dom) {
		for _, other := range m.domains {
			if other == dom || len(other.idle) == 0 {
				continue
			}
			c := other.idle[len(other.idle)-1]
			other.idle = other.idle[:len(other.idle)-1]
			c.busy = true
			m.dispatch(c)
			return
		}
	}
}

func (m *Machine) hasWork(dom *domain) bool {
	if dom.hwq != nil {
		return dom.hwq.HasReady(-1)
	}
	return len(dom.swq) > 0
}

// lockFactor scales software-lock critical sections with the number of
// cores sharing the queue: cache-line ping-pong makes a contended lock
// acquisition several times more expensive than an uncontended one (§3.2's
// "high synchronization overheads" of centralized queues). Centralized
// dispatchers and the hardware RQ are unaffected.
func (m *Machine) lockFactor(dom *domain) float64 {
	if m.cfg.Policy.Centralized || m.cfg.Policy.HardwareRQ {
		return 1
	}
	f := math.Sqrt(float64(len(dom.cores))) / 12
	if f < 1 {
		return 1
	}
	return f
}

// pop removes the next runnable invocation, charging queue-access costs,
// and returns it with the time the pop completes. Returns nil when no work
// exists (after a failed steal attempt, if enabled).
func (m *Machine) pop(c *core) (*invocation, sim.Time) {
	now := m.eng.Now()
	dom := c.dom
	cost := shrink(0, sim.Time(float64(m.cfg.CyclesToTime(m.cfg.Policy.DequeueCycles))*m.lockFactor(dom)), m.sp.sched)
	if dom.hwq != nil {
		e := dom.hwq.Dequeue(c.svcID, c.id)
		if e == nil && c.svcID >= 0 && m.cfg.Extensions.CoreStealing {
			// §8 extension: an idle core temporarily serves a co-located
			// instance when its own service has no ready work.
			e = dom.hwq.Dequeue(-1, c.id)
		}
		if e != nil {
			if m.mx != nil {
				m.observeQueueDepth(-1)
			}
			grant := dom.sched.Acquire(now, cost)
			return e.Ctx.UserData.(*invocation), grant
		}
		return nil, now
	}
	if len(dom.swq) > 0 {
		inv := dom.swq[0]
		dom.swq = dom.swq[1:]
		if m.mx != nil {
			m.observeQueueDepth(-1)
		}
		grant := dom.sched.Acquire(now, cost)
		return inv, grant
	}
	if m.cfg.Policy.WorkStealing {
		// Steal from the longest software queue in the machine.
		var victim *domain
		best := 0
		for _, d := range m.domains {
			if d != dom && len(d.swq) > best {
				best = len(d.swq)
				victim = d
			}
		}
		if victim != nil {
			inv := victim.swq[0]
			victim.swq = victim.swq[1:]
			if m.mx != nil {
				m.observeQueueDepth(-1)
			}
			steal := m.scaledCycles(m.cfg.Policy.StealCycles, m.sp.sched)
			grant := victim.sched.Acquire(now, cost+steal)
			// The stolen invocation migrates to this core's domain.
			inv.dom = dom
			return inv, grant
		}
	}
	return nil, now
}

// dispatch runs on a woken core: pop work, charge restore costs, execute the
// next compute segment.
//
// Cost placement follows §4.4: with a centralized software scheduler
// (Shinjuku/Shenango), the *dispatcher* performs the state restore, so the
// context-switch cycles occupy the domain's dispatcher resource and
// serialize across cores — the scalability ceiling the paper measures. With
// distributed software scheduling or the hardware engine, the restore runs
// on the dispatching core itself.
func (m *Machine) dispatch(c *core) {
	inv, readyAt := m.pop(c)
	if inv == nil {
		c.busy = false
		c.dom.idle = append(c.dom.idle, c)
		return
	}
	if inv.entry != nil && inv.entry.Status != rq.Running {
		// Defensive: hardware dequeue marks Running atomically; software
		// path has no entry.
		panic("machine: dequeued entry not running")
	}
	popAt := m.eng.Now()
	start := readyAt
	csEnd, memEnd := start, start
	// Restore saved state (hardware or software context switch).
	if inv.resumed {
		cs := m.scaledCycles(m.cfg.Policy.CSCycles, m.sp.cs)
		if m.cfg.Policy.Centralized {
			start = c.dom.sched.Acquire(start, cs)
		} else {
			start += cs
		}
		csEnd = start
		// Migration/coherence penalty when resuming on a different core.
		if inv.lastCore >= 0 && inv.lastCore != c.id {
			if m.cfg.GlobalCoherence {
				start += m.scaledCycles(m.cfg.CoherencePenaltyCycles, m.sp.mem)
				m.injectCoherenceTraffic(c.dom)
			} else {
				start += m.scaledCycles(m.cfg.VillageResumePenaltyCycles, m.sp.mem)
			}
		}
		memEnd = start
	}
	// RPC-layer processing on first dispatch (software stacks only; the
	// hardware NIC did it off-core).
	if !inv.dispatched {
		inv.dispatched = true
		start += m.scaledCycles(m.cfg.RPCProcCycles, m.sp.rpc)
	} else if inv.resumed {
		// Response deserialization on resume.
		start += m.scaledCycles(m.cfg.ResumeProcCycles, m.sp.rpc)
	}
	inv.resumed = false
	inv.lastCore = c.id

	op := inv.svc.Ops[inv.opIdx]
	if op.Kind != workload.OpCompute {
		panic(fmt.Sprintf("machine: dispatch at non-compute op %v", op.Kind))
	}
	dur := m.computeDur(inv, op, c)
	end := start + dur
	if inv.span != 0 {
		if popAt > inv.enqAt {
			m.trace.Add(inv.span, obs.StageQueue, inv.enqAt, popAt)
		}
		if readyAt > popAt {
			m.trace.Add(inv.span, obs.StageSched, popAt, readyAt)
		}
		if csEnd > readyAt {
			m.trace.Add(inv.span, obs.StageCS, readyAt, csEnd)
		}
		if memEnd > csEnd {
			m.trace.Add(inv.span, obs.StageMem, csEnd, memEnd)
		}
		if start > memEnd {
			m.trace.Add(inv.span, obs.StageRPC, memEnd, start)
		}
		m.trace.AddOnCore(inv.span, obs.StageService, c.id, start, end)
	}
	busy := end - popAt
	m.coreBusy += busy
	c.busyTime += busy
	m.eng.At(end, func() { m.segmentEnd(c, inv) })
}

// computeDur samples one compute stage's duration: the service-time draw,
// scaled by the invocation's replay demand multiplier when one is set, over
// the hosting domain's performance factor. The demand branch keeps
// unscaled runs bit-identical to the pre-replay code path.
func (m *Machine) computeDur(inv *invocation, op workload.Op, c *core) sim.Time {
	us := op.Time.Sample(m.rand("service"))
	if inv.demand > 0 {
		us *= inv.demand
	}
	return sim.FromMicros(us / m.perfOf(c.dom))
}

// injectCoherenceTraffic models directory/remote-cache messages under global
// coherence: two 64B messages to the home directory's cluster.
func (m *Machine) injectCoherenceTraffic(dom *domain) {
	rng := m.rand("coherence")
	dst := rng.Intn(m.topo.NumEndpoints())
	icn.Deliver(m.topo, m.eng.Now(), dom.endpoint, dst, 64, rng, m.cfg.ICNContention)
	icn.Deliver(m.topo, m.eng.Now(), dst, dom.endpoint, 64, rng, m.cfg.ICNContention)
}

// segmentEnd advances past the finished compute op and performs the next
// blocking op (or completes the invocation).
func (m *Machine) segmentEnd(c *core, inv *invocation) {
	inv.opIdx++
	if inv.opIdx >= len(inv.svc.Ops) {
		m.complete(c, inv)
		return
	}
	op := inv.svc.Ops[inv.opIdx]
	switch op.Kind {
	case workload.OpCompute:
		// Back-to-back compute (no blocking op between): keep running.
		dur := m.computeDur(inv, op, c)
		if inv.span != 0 {
			now := m.eng.Now()
			m.trace.AddOnCore(inv.span, obs.StageService, c.id, now, now+dur)
		}
		m.coreBusy += dur
		c.busyTime += dur
		m.eng.After(dur, func() { m.segmentEnd(c, inv) })
	case workload.OpStorage:
		inv.opIdx++
		saved := m.block(c, inv, 1)
		var lat sim.Time
		var retries uint32
		if len(m.storageNIC) > 0 {
			// Lossy external storage network: the R-NIC handles pacing,
			// retransmission, and congestion control; its delivery time
			// already includes the base RTT.
			nic := m.storageNIC[inv.dom.endpoint]
			rng := m.rand("storage-loss")
			before := nic.Retransmit
			delivered := nic.Send(saved, m.cfg.StorageReqBytes, rng.Float64)
			retries = uint32(nic.Retransmit - before)
			lat = delivered - saved + sim.FromMicros(op.Time.Sample(m.rand("storage")))
		} else {
			lat = m.cfg.StorageRTT + sim.FromMicros(op.Time.Sample(m.rand("storage")))
		}
		lat = shrink(0, lat, m.sp.storage)
		if m.cfg.IOViaICN {
			// Storage messages cross the on-package ICN to the package I/O
			// point and back — the funnel traffic of Fig 7.
			out, hops1 := m.ioDeliverOut(saved, inv.dom.endpoint, m.cfg.StorageReqBytes)
			out = shrink(saved, out, m.sp.net)
			back, hops2 := m.ioDeliverIn(out+lat, inv.dom.endpoint, m.cfg.StorageRespBytes)
			back = shrink(out+lat, back, m.sp.net)
			m.hopSum += uint64(hops1 + hops2)
			m.msgCount += 2
			if inv.span != 0 {
				if out > saved {
					m.trace.Add(inv.span, obs.StageNet, saved, out)
				}
				sid := m.trace.Add(inv.span, obs.StageStorage, out, out+lat)
				m.trace.AddRetries(sid, retries)
				if back > out+lat {
					m.trace.Add(inv.span, obs.StageNet, out+lat, back)
				}
			}
			m.eng.At(back, func() { m.resolveChild(inv) })
		} else {
			if inv.span != 0 {
				sid := m.trace.Add(inv.span, obs.StageStorage, saved, saved+lat)
				m.trace.AddRetries(sid, retries)
			}
			m.eng.At(saved+lat, func() { m.resolveChild(inv) })
		}
	case workload.OpCall:
		inv.opIdx++
		callees := op.Callees
		saved := m.block(c, inv, len(callees))
		if inv.span != 0 && len(callees) > 0 {
			// One send-processing span for the batch: every child departs
			// after the same per-call tax, so per-child copies would only
			// duplicate the interval.
			if dep := saved + m.scaledCycles(m.cfg.SendProcCycles, m.sp.rpc); dep > saved {
				m.trace.Add(inv.span, obs.StageRPC, saved, dep)
			}
		}
		for _, svcID := range callees {
			m.sendChild(c, inv, svcID, saved)
		}
	}
}

// block saves the invocation's state (a context switch), marks it blocked
// on n outstanding responses, and frees the core. It returns the time the
// save completes — outgoing RPCs depart only then, so responses can never
// race an unsaved context. With a centralized scheduler the save occupies
// the dispatcher (§4.4); otherwise it runs on the core.
func (m *Machine) block(c *core, inv *invocation, n int) sim.Time {
	inv.pending = n
	inv.resumed = true
	now := m.eng.Now()
	cs := m.scaledCycles(m.cfg.Policy.CSCycles, m.sp.cs)
	var saved sim.Time
	if m.cfg.Policy.Centralized {
		saved = c.dom.sched.Acquire(now, cs)
	} else {
		saved = now + cs
	}
	if inv.entry != nil {
		c.dom.hwq.ContextSwitch(inv.entry, 320)
	}
	if inv.span != 0 && saved > now {
		m.trace.Add(inv.span, obs.StageCS, now, saved)
	}
	m.coreBusy += saved - now
	c.busyTime += saved - now
	m.eng.At(saved, func() { m.release(c) })
	return saved
}

// release frees the core and immediately looks for more work.
func (m *Machine) release(c *core) {
	c.busy = false
	c.dom.idle = append(c.dom.idle, c)
	m.kick(c.dom)
}

// sendChild issues a synchronous child RPC: sender-side processing, ICN
// traversal, then enqueue at the callee instance's domain. The message
// departs no earlier than the parent's state save completed.
func (m *Machine) sendChild(c *core, parent *invocation, svcID int, saved sim.Time) {
	rng := m.rand("icn")
	if m.local != nil {
		// Placed machine: routing is the placement map, not a lottery — a
		// call to a service not hosted here always ships to a hosting peer.
		if !m.local[svcID] {
			m.sendChildRemote(c, parent, svcID, saved)
			return
		}
	} else if m.remoteSend != nil && m.cfg.RemoteCallFrac > 0 && rng.Float64() < m.cfg.RemoteCallFrac {
		m.sendChildRemote(c, parent, svcID, saved)
		return
	}
	child := &invocation{
		id:       m.nextInv(),
		svc:      m.catalog.Service(svcID),
		parent:   parent,
		lastCore: -1,
		demand:   parent.demand,
	}
	if m.cfg.TreeAffinity {
		child.dom = parent.dom
	} else {
		child.dom = m.pickInstance(svcID)
	}
	dep := saved + m.scaledCycles(m.cfg.SendProcCycles, m.sp.rpc)
	src := m.srcEndpoint(c)
	dst := m.dstEndpoint(child.dom, rng)
	at, hops := icn.Deliver(m.topo, dep, src, dst, m.cfg.ReqMsgBytes, rng, m.cfg.ICNContention)
	m.hopSum += uint64(hops)
	m.msgCount++
	at += m.cfg.NICHWDelay
	at = shrink(dep, at, m.sp.net)
	if m.remoteSend == nil && m.cfg.RemoteCallFrac > 0 && rng.Float64() < m.cfg.RemoteCallFrac {
		// Uncoupled (symmetric-server) approximation: the child still runs
		// locally; the inter-server wire time is a probabilistic latency add.
		child.remote = true
		at += m.cfg.RemoteRTT / 2
	}
	if parent.span != 0 {
		child.span = m.trace.Start(parent.span, obs.StageInvoke, int16(svcID), dep)
		if at > dep {
			m.trace.Add(child.span, obs.StageNet, dep, at)
		}
	}
	m.eng.At(at, func() { m.enqueue(child) })
}

// sendChildRemote ships a child RPC to a peer server through the fleet
// coupling: sender-side processing, egress across the on-package ICN (when
// I/O is routed through it), half the inter-server RTT, then the fleet
// delivers it to a peer machine's ingress. The response retraces the same
// path. On this machine's trace the round trip is one invoke span whose
// wire legs are StageNet; when traced, the fleet mints a remote-link ID so
// the peer records the served subtree in its own collector under the same
// link, and obs.Merge stitches that subtree between the wire legs — tail
// blame then charges the remote middle to the peer server's stages instead
// of an opaque StageOther blob.
func (m *Machine) sendChildRemote(c *core, parent *invocation, svcID int, saved sim.Time) {
	dep := saved + m.scaledCycles(m.cfg.SendProcCycles, m.sp.rpc)
	out := dep
	if m.cfg.IOViaICN {
		var hops int
		out, hops = m.ioDeliverOut(dep, m.srcEndpoint(c), m.cfg.ReqMsgBytes)
		m.hopSum += uint64(hops)
		m.msgCount++
		out = shrink(dep, out, m.sp.net)
	}
	// The inter-server half-RTT is never what-if-scaled: it is the PDES
	// coupling's conservative lookahead floor (see StageSpeedups.Net).
	depart := out + m.cfg.RemoteRTT/2
	var span uint64
	if parent.span != 0 {
		span = m.trace.Start(parent.span, obs.StageInvoke, int16(svcID), dep)
		if depart > dep {
			m.trace.Add(span, obs.StageNet, dep, depart)
		}
	}
	home := parent.dom
	link := m.remoteSend(svcID, parent.demand, depart, span != 0, func(done sim.Time) {
		back := done + m.cfg.RemoteRTT/2
		at := back
		if m.cfg.IOViaICN {
			var hops int
			at, hops = m.ioDeliverIn(back, home.endpoint, m.cfg.RespMsgBytes)
			m.hopSum += uint64(hops)
			m.msgCount++
		}
		at += m.cfg.NICHWDelay
		at = shrink(back, at, m.sp.net)
		if span != 0 {
			if at > done {
				m.trace.Add(span, obs.StageNet, done, at)
			}
			m.trace.End(span, at)
		}
		m.eng.At(at, func() { m.resolveChild(parent) })
	})
	if span != 0 {
		m.trace.SetLink(span, link)
	}
}

// ioEndpoint is the topology endpoint adjacent to the package's top-level
// NIC and memory controllers for topologies whose I/O attaches at an
// endpoint (the mesh corner). Fat-trees attach I/O at the root instead —
// see ioDeliverOut/ioDeliverIn.
func (m *Machine) ioEndpoint() int { return 0 }

// ioDeliverOut routes an outbound (storage/external) message from a domain
// endpoint to the package I/O attach point.
func (m *Machine) ioDeliverOut(dep sim.Time, from, size int) (sim.Time, int) {
	if ft, ok := m.topo.(*icn.FatTree); ok {
		path := ft.PathToRoot(from)
		at := dep
		for _, l := range path {
			at = l.Traverse(at, size, m.cfg.ICNContention)
		}
		return at, len(path)
	}
	return icn.Deliver(m.topo, dep, from, m.ioEndpoint(), size, m.rand("icn"), m.cfg.ICNContention)
}

// ioDeliverIn routes an inbound message from the package I/O attach point
// to a domain endpoint.
func (m *Machine) ioDeliverIn(dep sim.Time, to, size int) (sim.Time, int) {
	if ft, ok := m.topo.(*icn.FatTree); ok {
		path := ft.PathFromRoot(to)
		at := dep
		for _, l := range path {
			at = l.Traverse(at, size, m.cfg.ICNContention)
		}
		return at, len(path)
	}
	return icn.Deliver(m.topo, dep, m.ioEndpoint(), to, size, m.rand("icn"), m.cfg.ICNContention)
}

// srcEndpoint maps a sending core to its topology endpoint.
func (m *Machine) srcEndpoint(c *core) int {
	if m.cfg.Topo == MeshTopo && m.cfg.Domains == 1 {
		return c.id % m.topo.NumEndpoints()
	}
	return c.dom.endpoint
}

// dstEndpoint maps a destination domain to its endpoint.
func (m *Machine) dstEndpoint(dom *domain, rng *rand.Rand) int {
	if m.cfg.Topo == MeshTopo && m.cfg.Domains == 1 {
		return rng.Intn(m.topo.NumEndpoints())
	}
	return dom.endpoint
}

// resolveChild delivers one response to a blocked parent; the last response
// unblocks it.
func (m *Machine) resolveChild(parent *invocation) {
	parent.pending--
	if parent.pending > 0 {
		return
	}
	m.unblock(parent)
}

// unblock makes a blocked invocation runnable again in its domain.
func (m *Machine) unblock(inv *invocation) {
	dom := inv.dom
	if inv.span != 0 {
		inv.enqAt = m.eng.Now()
	}
	if inv.entry != nil {
		dom.hwq.Unblock(inv.entry)
		if m.mx != nil {
			m.observeQueueDepth(1)
		}
		m.kick(dom)
		return
	}
	// Software: re-enqueued at the tail (arrival priority lost).
	enqCost := shrink(0, sim.Time(float64(m.cfg.CyclesToTime(m.cfg.Policy.EnqueueCycles))*m.lockFactor(dom)), m.sp.sched)
	grant := dom.sched.Acquire(m.eng.Now(), enqCost)
	m.eng.At(grant, func() {
		dom.swq = append(dom.swq, inv)
		if m.mx != nil {
			m.observeQueueDepth(1)
		}
		m.kick(dom)
	})
}

// complete finishes an invocation: the Complete instruction, the response
// message, and statistics.
func (m *Machine) complete(c *core, inv *invocation) {
	m.Invocations++
	if inv.entry != nil {
		c.dom.hwq.Complete(inv.entry)
		// Freed RQ slots admit NIC-buffered requests.
		for _, e := range c.dom.nicbuf.Drain(c.dom.hwq) {
			e.Ctx.UserData.(*invocation).entry = e
		}
	}
	m.respond(inv)
	m.release(c)
}

// respond routes an invocation's result to its parent or, for roots, out of
// the package, recording end-to-end latency.
func (m *Machine) respond(inv *invocation) {
	rng := m.rand("icn")
	if inv.parent == nil {
		now := m.eng.Now()
		at := now + m.cfg.IngressLatency
		if m.cfg.IOViaICN {
			at, _ = m.ioDeliverOut(now, inv.dom.endpoint, m.cfg.RespMsgBytes)
			at += m.cfg.IngressLatency
		}
		if inv.onDone != nil {
			// Peer-served child RPC (coupled fleet): the response leaves via
			// the top-level NIC like a root's, but the caller lives on
			// another server — hand the egress time back to the fleet.
			if inv.span != 0 {
				if at > now {
					m.trace.Add(inv.span, obs.StageIngress, now, at)
				}
				m.trace.End(inv.span, at)
			}
			inv.onDone(at)
			return
		}
		if inv.span != 0 {
			if at > now {
				m.trace.Add(inv.span, obs.StageIngress, now, at)
			}
			m.trace.End(inv.span, at)
		}
		if inv.onResp != nil {
			inv.onResp(at, false)
		}
		if inv.measured {
			done := at
			lat := (done - inv.start).Micros()
			root := inv.svc.ID
			m.eng.At(at, func() {
				m.Latency.Add(lat)
				if m.tele != nil {
					m.tele.ObserveLatency(lat)
				}
				if m.teleCtl != nil {
					m.teleCtl.ObserveLatency(lat)
				}
				byRoot := m.LatencyByRoot[root]
				if byRoot == nil {
					byRoot = &stats.Sample{}
					m.LatencyByRoot[root] = byRoot
				}
				byRoot.Add(lat)
				m.Completed++
			})
		} else {
			m.eng.At(at, func() { m.Completed++ })
		}
		return
	}
	parent := inv.parent
	src := inv.dom.endpoint
	dst := parent.dom.endpoint
	at, hops := icn.Deliver(m.topo, m.eng.Now(), src, dst, m.cfg.RespMsgBytes, rng, m.cfg.ICNContention)
	m.hopSum += uint64(hops)
	m.msgCount++
	at += m.cfg.NICHWDelay
	at = shrink(m.eng.Now(), at, m.sp.net)
	if inv.remote {
		at += m.cfg.RemoteRTT / 2
	}
	if inv.span != 0 {
		if at > m.eng.Now() {
			m.trace.Add(inv.span, obs.StageNet, m.eng.Now(), at)
		}
		m.trace.End(inv.span, at)
	}
	m.eng.At(at, func() { m.resolveChild(parent) })
}

// Utilization reports aggregate core busy time over the window.
func (m *Machine) Utilization(window sim.Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(m.coreBusy) / float64(sim.Time(m.cfg.Cores)*window)
}

// MeanHops reports the average ICN path length observed.
func (m *Machine) MeanHops() float64 {
	if m.msgCount == 0 {
		return 0
	}
	return float64(m.hopSum) / float64(m.msgCount)
}

// Topology exposes the ICN for utilization reporting.
func (m *Machine) Topology() icn.Topology { return m.topo }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }
