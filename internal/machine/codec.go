package machine

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"umanycore/internal/stats"
)

// The result codec carries a *Result through the sweep cell cache. Encode
// is deterministic down to the byte — fixed field order via stats.JSONObject,
// shortest-exact floats, per-root summaries in sorted key order — so a
// verify-mode recomputation that byte-equals the cached payload proves the
// cell reproduced exactly. Decode inverts Encode field-for-field (including
// the raw latency sample and its insertion-order sum), so a warm cell feeds
// every figure table the same values a cold run would.

// errUncacheableResult marks results carrying observability attachments:
// spans and telemetry series are big, run-scoped, and never read by figure
// drivers, so cells that enable them simply bypass the cache.
var errUncacheableResult = errors.New("machine: result with obs/telemetry attached is not cacheable")

// EncodeResult serializes a Result to the cache payload encoding.
func EncodeResult(r *Result) ([]byte, error) {
	if r == nil {
		return nil, errors.New("machine: nil result")
	}
	if r.Obs != nil || r.Telemetry != nil {
		return nil, errUncacheableResult
	}
	var o stats.JSONObject
	o.Str("machine", r.Machine).
		Str("app", r.App).
		Float("rps", r.RPS)
	lat, _ := r.Latency.MarshalJSON()
	o.Raw("latency", lat)
	if r.Sample != nil {
		o.Obj("sample", func(s *stats.JSONObject) {
			s.Float("sum", r.Sample.Sum()).
				FloatArr("values", r.Sample.UnsafeValues())
		})
	}
	roots := make([]int, 0, len(r.PerRoot))
	for root := range r.PerRoot {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	o.Obj("per_root", func(p *stats.JSONObject) {
		for _, root := range roots {
			sum, _ := r.PerRoot[root].MarshalJSON()
			p.Raw(strconv.Itoa(root), sum)
		}
	})
	o.Float("tail_to_avg", r.TailToAvg).
		Int("submitted", int64(r.Submitted)).
		Int("completed", int64(r.Completed)).
		Int("rejected", int64(r.Rejected)).
		Int("unfinished", r.Unfinished).
		Int("invocations", int64(r.Invocations)).
		Float("utilization", r.Utilization).
		Float("mean_hops", r.MeanHops).
		Float("max_link_util", r.MaxLinkUtil).
		Int("events", int64(r.Events))
	return o.Bytes(), nil
}

// resultJSON mirrors the EncodeResult layout for decoding.
type resultJSON struct {
	Machine string        `json:"machine"`
	App     string        `json:"app"`
	RPS     float64       `json:"rps"`
	Latency stats.Summary `json:"latency"`
	Sample  *struct {
		Sum    float64   `json:"sum"`
		Values []float64 `json:"values"`
	} `json:"sample"`
	PerRoot     map[string]stats.Summary `json:"per_root"`
	TailToAvg   float64                  `json:"tail_to_avg"`
	Submitted   uint64                   `json:"submitted"`
	Completed   uint64                   `json:"completed"`
	Rejected    uint64                   `json:"rejected"`
	Unfinished  int64                    `json:"unfinished"`
	Invocations uint64                   `json:"invocations"`
	Utilization float64                  `json:"utilization"`
	MeanHops    float64                  `json:"mean_hops"`
	MaxLinkUtil float64                  `json:"max_link_util"`
	Events      uint64                   `json:"events"`
}

// DecodeResult inverts EncodeResult.
func DecodeResult(b []byte) (*Result, error) {
	var m resultJSON
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("machine: decoding cached result: %w", err)
	}
	r := &Result{
		Machine:     m.Machine,
		App:         m.App,
		RPS:         m.RPS,
		Latency:     m.Latency,
		TailToAvg:   m.TailToAvg,
		Submitted:   m.Submitted,
		Completed:   m.Completed,
		Rejected:    m.Rejected,
		Unfinished:  m.Unfinished,
		Invocations: m.Invocations,
		Utilization: m.Utilization,
		MeanHops:    m.MeanHops,
		MaxLinkUtil: m.MaxLinkUtil,
		Events:      m.Events,
	}
	if m.Sample != nil {
		r.Sample = stats.RestoreSample(m.Sample.Values, m.Sample.Sum)
	}
	if m.PerRoot != nil {
		r.PerRoot = make(map[int]stats.Summary, len(m.PerRoot))
		for k, v := range m.PerRoot {
			root, err := strconv.Atoi(k)
			if err != nil {
				return nil, fmt.Errorf("machine: bad per_root key %q", k)
			}
			r.PerRoot[root] = v
		}
	}
	return r, nil
}
