// Package machine is the end-to-end server model: cores organized into
// scheduling domains (villages / clusters / one big multicore), an
// on-package ICN, per-domain request queues (hardware RQ or software
// queues), context-switch engines, NIC/RPC processing, and the request
// lifecycle of microservice invocations (compute segments separated by
// blocking storage accesses and synchronous child RPCs).
//
// One parametric Machine covers all three processors of the paper —
// μManycore, ScaleOut and ServerClass — plus every intermediate design point
// the evaluation needs: the Fig 3 queue-count sweep, the Fig 6
// context-switch-overhead sweep, the Fig 7 topology/contention study, the
// Fig 15 cumulative technique breakdown, and the Fig 19 topology
// sensitivity sweep.
package machine

import (
	"fmt"

	"umanycore/internal/icn"
	"umanycore/internal/sched"
	"umanycore/internal/sim"
)

// TopoKind selects the on-package interconnect.
type TopoKind int

// Topology kinds.
const (
	MeshTopo TopoKind = iota
	FatTreeTopo
	LeafSpineTopo
)

func (t TopoKind) String() string {
	switch t {
	case MeshTopo:
		return "mesh"
	case FatTreeTopo:
		return "fat-tree"
	case LeafSpineTopo:
		return "leaf-spine"
	default:
		return fmt.Sprintf("topo(%d)", int(t))
	}
}

// Placement selects how incoming service requests map to domains.
type Placement int

// Placement policies.
const (
	// PinnedPlacement routes each service to the domains hosting its
	// instances via the ServiceMap (μManycore §4.2).
	PinnedPlacement Placement = iota
	// RandomPlacement routes each request to a uniformly random domain
	// (the ScaleOut/ServerClass baselines; global coherence lets any core
	// run anything).
	RandomPlacement
)

// Config parameterizes a Machine.
type Config struct {
	Name string

	// Cores and clocking.
	Cores   int
	FreqGHz float64
	// PerfFactor divides workload compute time: 1.0 for the small A15-like
	// core, ≈2.2 for the 6-issue 3GHz ServerClass core (frequency × IPC).
	PerfFactor float64

	// Scheduling organization: Cores are split evenly across Domains; each
	// domain has one queue and requests migrate freely only within their
	// domain.
	Domains   int
	Policy    sched.Policy
	Placement Placement
	// CentralDispatcher serializes every scheduling operation of a
	// Centralized policy through ONE machine-wide dispatcher core (faithful
	// Shinjuku, §4.4: "this centralized software easily becomes a
	// bottleneck"). When false, each domain has its own dispatcher.
	CentralDispatcher bool
	// TreeAffinity pins a request's entire invocation tree to the domain
	// its root was assigned (the Fig 3 semantic: "requests are assigned to
	// queues randomly" — whole requests, with migration only via work
	// stealing). Without it, each invocation routes through the ServiceMap
	// or random placement independently.
	TreeAffinity bool
	// RQCapacity is the hardware RQ size (paper: 64); software queues are
	// unbounded (kernel run queues don't reject).
	RQCapacity int
	// NICBufCapacity is the per-domain NIC overflow buffer (hardware RQ
	// path only).
	NICBufCapacity int

	// Interconnect.
	Topo TopoKind
	// ICNEndpoints is the number of topology endpoints; domains map onto
	// endpoints evenly. For meshes it is WxH (set MeshW/MeshH); for trees it
	// is the leaf count.
	MeshW, MeshH  int
	LeafSpineCfg  icn.LeafSpineConfig
	FatTreeLeaves int
	ICNContention bool
	LinkParams    icn.LinkParams

	// Coherence. GlobalCoherence charges a directory/remote-cache penalty
	// when a blocked request resumes on a different core and injects
	// coherence traffic into the ICN; village-scale coherence pays only a
	// small local penalty.
	GlobalCoherence bool
	// CoherencePenaltyCycles on cross-core resume under global coherence.
	CoherencePenaltyCycles int
	// VillageResumePenaltyCycles on cross-core resume within a village.
	VillageResumePenaltyCycles int

	// RPC/NIC processing.
	// RPCProcCycles runs on the receiving core before a handler starts
	// (software RPC stacks); zero when the NIC does RPC processing in
	// hardware (§4.3).
	RPCProcCycles int
	// SendProcCycles runs on the sending core per outgoing RPC (software).
	SendProcCycles int
	// ResumeProcCycles runs on the core when a blocked request's response
	// is processed (software deserialization); hardware NICs deposit the
	// response directly in the Request Context Memory (§4.4).
	ResumeProcCycles int
	// NICHWDelay is the hardware NIC's per-message processing latency
	// (off-core).
	NICHWDelay sim.Time
	// IngressLatency is top-level-NIC-to-leaf delivery for external
	// requests (and the reverse for responses).
	IngressLatency sim.Time

	// Storage.
	// StorageRTT is the network round trip to remote storage (Table 2:
	// 1μs inter-server).
	StorageRTT sim.Time
	// StorageLossProb, when positive, makes the external storage network
	// lossy: storage requests go through a per-cluster R-NIC with
	// retransmission and AIMD congestion control (§4.1). Zero keeps the
	// lossless fixed-RTT model.
	StorageLossProb float64
	// IOViaICN routes storage and external (client) messages across the
	// on-package ICN to the package I/O endpoint (endpoint 0) — the
	// mesh-corner / tree-root funnel of conventional designs. μManycore's
	// village R-ports connect through their cluster NH's inter-package port
	// directly to the top-level NIC (Fig 12), bypassing the spine, so it
	// sets this false.
	IOViaICN bool
	// StorageReqBytes / StorageRespBytes size storage messages on the ICN.
	StorageReqBytes, StorageRespBytes int

	// Fleet coupling: fraction of child RPCs that target another server,
	// paying RemoteRTT extra each way. Zero for single-server studies.
	RemoteCallFrac float64
	RemoteRTT      sim.Time

	// Request/response message sizes on the ICN.
	ReqMsgBytes, RespMsgBytes int

	// WhatIf virtually accelerates pipeline stages for causal profiling:
	// each field removes that fraction of the stage's configured cost (0 =
	// unchanged, 1 = eliminated). The zero value changes nothing. See
	// StageSpeedups and internal/whatif.
	WhatIf StageSpeedups

	// Extensions enables the optional features beyond the paper's evaluated
	// design (co-location, RQ partitioning, core stealing, heterogeneous
	// villages); see ExtensionConfig.
	Extensions ExtensionConfig
}

// CyclesToTime converts core cycles at this machine's frequency to sim time.
func (c *Config) CyclesToTime(cycles int) sim.Time {
	return sim.Time(float64(cycles) * 1000.0 / c.FreqGHz)
}

// Validate checks structural consistency.
func (c *Config) Validate() error {
	if c.Cores <= 0 || c.Domains <= 0 || c.Cores < c.Domains {
		return fmt.Errorf("machine: bad cores/domains %d/%d", c.Cores, c.Domains)
	}
	if c.Cores%c.Domains != 0 {
		return fmt.Errorf("machine: cores %d not divisible by domains %d", c.Cores, c.Domains)
	}
	if c.FreqGHz <= 0 || c.PerfFactor <= 0 {
		return fmt.Errorf("machine: bad freq/perf %v/%v", c.FreqGHz, c.PerfFactor)
	}
	switch c.Topo {
	case MeshTopo:
		if c.MeshW*c.MeshH <= 0 {
			return fmt.Errorf("machine: mesh dims unset")
		}
	case FatTreeTopo:
		if c.FatTreeLeaves < 2 {
			return fmt.Errorf("machine: fat-tree leaves unset")
		}
	case LeafSpineTopo:
		if c.LeafSpineCfg.Pods <= 0 {
			return fmt.Errorf("machine: leaf-spine config unset")
		}
	}
	if c.Policy.HardwareRQ && c.RQCapacity <= 0 {
		return fmt.Errorf("machine: hardware RQ needs capacity")
	}
	if err := c.WhatIf.Validate(); err != nil {
		return err
	}
	return nil
}

// Defaults shared by the presets.
const (
	defaultRQCapacity = 64
	defaultNICBufCap  = 256
	// RPC request/response sizes: requests carry arguments (~1KB);
	// responses carry payloads (timelines, posts — ~4KB). Storage accesses
	// write small keys and read ~2KB objects.
	defaultReqBytes         = 1024
	defaultRespBytes        = 4096
	defaultStorageReqBytes  = 128
	defaultStorageRespBytes = 1024
	smallCorePerf           = 1.0

	// The software "RPC tax" (Cerebros, MICRO'21): cycles a software stack
	// spends per received RPC (header parsing, deserialization, dispatch),
	// per sent RPC, and per processed response. μManycore's NIC performs
	// all of this in hardware (§4.3), so it pays none of it on cores.
	softwareReceiveTax = 48000 // 16μs @3GHz, 24μs @2GHz
	softwareSendTax    = 15000
	softwareResumeTax  = 15000
)

// chipletLinkParams returns the on-package D2D link timing used by the
// machine models: 5 cycles/hop (Table 2) and ~1.7GB/s per serial chiplet
// link — beachfront-limited PHYs, the regime where Fig 7's contention
// effects appear.
func chipletLinkParams() icn.LinkParams {
	return icn.LinkParams{
		HopLatency: 2500 * sim.Picosecond,
		PsPerByte:  600,
	}
}

const (
	// serverClassPerf is the big core's speedup on *microservice* code:
	// 1.5× frequency and a modest 1.1× IPC gain — per the paper's Fig 1,
	// big-core microarchitecture barely helps these workloads.
	serverClassPerf = 1.65
)

// UManycoreConfig returns the paper's default μManycore: 1024 cores, 128
// villages of 8 cores, 32 clusters, hierarchical leaf-spine, hardware
// request queues and hardware context switching, no global coherence.
func UManycoreConfig() Config {
	return Config{
		Name:       "uManycore",
		Cores:      1024,
		FreqGHz:    2,
		PerfFactor: smallCorePerf,

		Domains:        128, // villages
		Policy:         sched.HardwareSched(),
		Placement:      PinnedPlacement,
		RQCapacity:     defaultRQCapacity,
		NICBufCapacity: defaultNICBufCap,

		Topo:          LeafSpineTopo,
		LeafSpineCfg:  icn.PaperLeafSpine(),
		ICNContention: true,
		LinkParams:    chipletLinkParams(),

		GlobalCoherence:            false,
		CoherencePenaltyCycles:     600,
		VillageResumePenaltyCycles: 100,

		RPCProcCycles:  0,
		SendProcCycles: 0,
		NICHWDelay:     200 * sim.Nanosecond,
		IngressLatency: 500 * sim.Nanosecond,

		StorageRTT:      1 * sim.Microsecond,
		IOViaICN:        false,
		StorageReqBytes: defaultStorageReqBytes, StorageRespBytes: defaultStorageRespBytes,
		ReqMsgBytes:  defaultReqBytes,
		RespMsgBytes: defaultRespBytes,
	}
}

// ScaleOutConfig returns the ScaleOut baseline: the same 1024 small cores
// and cache hierarchy, but global coherence, a fat-tree ICN (32 leaves → 63
// NHs), one software queue per 32-core cluster (the favored baseline of
// §6.2), Shinjuku-style software scheduling and context switching.
func ScaleOutConfig() Config {
	return Config{
		Name:       "ScaleOut",
		Cores:      1024,
		FreqGHz:    2,
		PerfFactor: smallCorePerf,

		// One queue per 32-core cluster with a per-cluster dispatcher — the
		// favored baseline of §6.2 (a single central dispatcher would
		// collapse outright at these loads; see Fig 3/Fig 6 experiments).
		Domains:   32,
		Policy:    sched.ShinjukuSched(),
		Placement: RandomPlacement,

		Topo:          FatTreeTopo,
		FatTreeLeaves: 32,
		ICNContention: true,
		LinkParams:    chipletLinkParams(),

		GlobalCoherence:            true,
		CoherencePenaltyCycles:     600,
		VillageResumePenaltyCycles: 100,

		RPCProcCycles:    softwareReceiveTax,
		SendProcCycles:   softwareSendTax,
		ResumeProcCycles: softwareResumeTax,
		NICHWDelay:       0,
		IngressLatency:   500 * sim.Nanosecond,

		StorageRTT:      1 * sim.Microsecond,
		IOViaICN:        true,
		StorageReqBytes: defaultStorageReqBytes, StorageRespBytes: defaultStorageRespBytes,
		ReqMsgBytes:  defaultReqBytes,
		RespMsgBytes: defaultRespBytes,
	}
}

// ServerClassConfig returns the ServerClass baseline with n cores (40
// iso-power, 128 iso-area): big 6-issue 3GHz cores, a single scheduling
// domain with a centralized software scheduler, and a 2D-mesh ICN.
func ServerClassConfig(n int) Config {
	w, h := meshDims(n)
	return Config{
		Name:       fmt.Sprintf("ServerClass-%d", n),
		Cores:      n,
		FreqGHz:    3,
		PerfFactor: serverClassPerf,

		Domains:           1,
		Policy:            sched.ShinjukuSched(),
		Placement:         RandomPlacement,
		CentralDispatcher: true,

		Topo:          MeshTopo,
		MeshW:         w,
		MeshH:         h,
		ICNContention: true,
		LinkParams:    chipletLinkParams(),

		GlobalCoherence:            true,
		CoherencePenaltyCycles:     600,
		VillageResumePenaltyCycles: 100,

		RPCProcCycles:    softwareReceiveTax,
		SendProcCycles:   softwareSendTax,
		ResumeProcCycles: softwareResumeTax,
		NICHWDelay:       0,
		IngressLatency:   500 * sim.Nanosecond,

		StorageRTT:      1 * sim.Microsecond,
		IOViaICN:        true,
		StorageReqBytes: defaultStorageReqBytes, StorageRespBytes: defaultStorageRespBytes,
		ReqMsgBytes:  defaultReqBytes,
		RespMsgBytes: defaultRespBytes,
	}
}

// meshDims factors n into the most square WxH grid.
func meshDims(n int) (int, int) {
	bestW, bestH := 1, n
	for w := 1; w*w <= n; w++ {
		if n%w == 0 {
			bestW, bestH = w, n/w
		}
	}
	return bestH, bestW
}

// UManycoreTopologyConfig returns the Fig 19 variants: coresPerVillage ×
// villagesPerCluster × clusters (the default is 8×4×32). Total cores stay
// 1024; the leaf-spine is resized so each cluster remains one leaf.
func UManycoreTopologyConfig(coresPerVillage, villagesPerCluster, clusters int) Config {
	cfg := UManycoreConfig()
	cfg.Name = fmt.Sprintf("uManycore-%dx%dx%d", coresPerVillage, villagesPerCluster, clusters)
	cfg.Cores = coresPerVillage * villagesPerCluster * clusters
	cfg.Domains = villagesPerCluster * clusters
	ls := icn.LeafSpineConfig{L2PerPod: 4, L3Count: 8}
	switch {
	case clusters >= 32:
		ls.Pods, ls.LeavesPerPod = 4, clusters/4
	case clusters >= 16:
		ls.Pods, ls.LeavesPerPod = 4, clusters/4
	case clusters >= 8:
		ls.Pods, ls.LeavesPerPod = 2, clusters/2
	default:
		ls.Pods, ls.LeavesPerPod = 1, clusters
	}
	cfg.LeafSpineCfg = ls
	return cfg
}

// Fig 15's cumulative technique ladder, starting from ScaleOut:
// +Villages, +Leaf-spine ICN, +HW scheduling, +HW context switch (the final
// rung is μManycore). Each step returns a new Config.

// WithVillages replaces global coherence and 32-core cluster queues with
// 8-core villages, pinned service placement, and village-scale coherence.
func WithVillages(c Config) Config {
	c.Name = c.Name + "+villages"
	c.Domains = c.Cores / 8
	c.Placement = PinnedPlacement
	c.GlobalCoherence = false
	return c
}

// WithLeafSpine replaces the ICN with the hierarchical leaf-spine.
func WithLeafSpine(c Config) Config {
	c.Name = c.Name + "+leafspine"
	c.Topo = LeafSpineTopo
	c.LeafSpineCfg = icn.PaperLeafSpine()
	// The leaf-spine design also gives every leaf NH a direct inter-package
	// port to the top-level NIC (Fig 12): storage and external traffic no
	// longer funnels through the on-package fabric.
	c.IOViaICN = false
	return c
}

// WithHWScheduling replaces software queues with the hardware RQ (keeping
// the software context-switch cost).
func WithHWScheduling(c Config) Config {
	c.Name = c.Name + "+hwsched"
	cs := c.Policy.CSCycles
	c.Policy = sched.HardwareSched()
	c.Policy.CSCycles = cs
	c.RQCapacity = defaultRQCapacity
	c.NICBufCapacity = defaultNICBufCap
	c.RPCProcCycles = 0
	c.SendProcCycles = 0
	c.ResumeProcCycles = 0
	c.NICHWDelay = 200 * sim.Nanosecond
	return c
}

// WithHWContextSwitch lowers the context-switch cost to the hardware
// engine's.
func WithHWContextSwitch(c Config) Config {
	c.Name = c.Name + "+hwcs"
	c.Policy.CSCycles = sched.HardwareCSCycles
	return c
}
