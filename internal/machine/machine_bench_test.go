package machine

import (
	"testing"

	"umanycore/internal/sim"
	"umanycore/internal/workload"
)

// benchRunConfig is a short but representative mixed run.
func benchRunConfig(seed int64) RunConfig {
	return RunConfig{
		App:      workload.SocialNetworkApps()[0],
		Mix:      workload.SocialNetworkMix(),
		RPS:      10000,
		Duration: 30 * sim.Millisecond,
		Warmup:   5 * sim.Millisecond,
		Drain:    120 * sim.Millisecond,
		Seed:     seed,
	}
}

// BenchmarkMachineRun measures one full machine simulation — the unit of
// work the sweep runner fans out — with allocation reporting so the engine
// reuse and event free-list wins are visible.
func BenchmarkMachineRun(b *testing.B) {
	cfg := UManycoreConfig()
	rc := benchRunConfig(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(cfg, rc)
		if res.Completed == 0 {
			b.Fatal("benchmark run completed no requests")
		}
	}
}

// BenchmarkMachineRunScaleOut exercises the software-scheduler path, whose
// per-event overhead profile differs from the hardware-RQ path.
func BenchmarkMachineRunScaleOut(b *testing.B) {
	cfg := ScaleOutConfig()
	rc := benchRunConfig(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(cfg, rc)
		if res.Completed == 0 {
			b.Fatal("benchmark run completed no requests")
		}
	}
}
