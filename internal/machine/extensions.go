package machine

import (
	"fmt"
	"sort"

	"umanycore/internal/workload"
)

// Extensions beyond the paper's evaluated design:
//
//   - Service co-location (§4.1): several service instances share a village,
//     with the village's cores partitioned across them by load and each core
//     holding a Service ID register that gates its Dequeue instruction.
//   - RQ partitioning (§4.3's "more advanced design"): the hardware request
//     queue is partitioned per co-located service via the RQ_Map, removing
//     cross-service contention for RQ entries.
//   - Core stealing (§8 future work): a core whose assigned service has no
//     ready work may temporarily serve a co-located instance's requests.
//   - Heterogeneous villages (§8 future work): a fraction of villages get
//     faster cores, and the heaviest services are placed there.
//
// All are off by default and exercised by the ablation benchmarks.

// ExtensionConfig gathers the optional features.
type ExtensionConfig struct {
	// ColocatedServices is how many service instances share one village
	// under pinned placement (0 or 1 disables co-location).
	ColocatedServices int
	// PartitionRQ splits each co-located village's RQ per service in
	// proportion to its core share (requires the hardware RQ).
	PartitionRQ bool
	// CoreStealing lets an idle core serve other services hosted in its
	// village when its own has no ready work.
	CoreStealing bool
	// BigVillageFrac is the fraction of villages built from faster cores.
	BigVillageFrac float64
	// BigCorePerf multiplies PerfFactor in big villages (e.g. 1.65).
	BigCorePerf float64
}

// Validate checks extension consistency against the base config.
func (e ExtensionConfig) Validate(c *Config) error {
	if e.ColocatedServices < 0 {
		return fmt.Errorf("machine: negative co-location factor")
	}
	if e.ColocatedServices > 1 && c.Placement != PinnedPlacement {
		return fmt.Errorf("machine: co-location requires pinned placement")
	}
	if e.PartitionRQ && !c.Policy.HardwareRQ {
		return fmt.Errorf("machine: RQ partitioning requires the hardware RQ")
	}
	if e.PartitionRQ && e.ColocatedServices <= 1 {
		return fmt.Errorf("machine: RQ partitioning only applies to co-located villages")
	}
	if e.BigVillageFrac < 0 || e.BigVillageFrac > 1 {
		return fmt.Errorf("machine: big-village fraction out of range")
	}
	if e.BigVillageFrac > 0 && e.BigCorePerf <= 0 {
		return fmt.Errorf("machine: big villages need a positive perf multiplier")
	}
	return nil
}

// placeColocated assigns services to domains with e.ColocatedServices
// instances per village, partitions cores by load share, and optionally
// partitions the RQ the same way. Heavy services land in big villages
// first when heterogeneity is enabled.
func (m *Machine) placeColocated() {
	e := m.cfg.Extensions
	weights := m.serviceWeights()
	type svcWeight struct {
		svc int
		w   float64
	}
	var order []svcWeight
	for svc, w := range weights {
		order = append(order, svcWeight{svc, w})
	}
	// Heaviest services first: they get the big villages (if any) and the
	// largest core shares.
	sort.Slice(order, func(i, j int) bool {
		if order[i].w != order[j].w {
			return order[i].w > order[j].w
		}
		return order[i].svc < order[j].svc
	})

	group := e.ColocatedServices
	if group > len(order) {
		group = len(order)
	}
	di := 0
	for di < len(m.domains) {
		dom := m.domains[di]
		// Pick the group of services for this village, cycling through the
		// weighted order so every service keeps getting instances.
		members := make([]svcWeight, 0, group)
		for g := 0; g < group; g++ {
			members = append(members, order[(di*group+g)%len(order)])
		}
		var total float64
		for _, mbr := range members {
			total += mbr.w
		}
		// Partition cores proportionally, at least one per member.
		cores := len(dom.cores)
		next := 0
		partition := make(map[int]int, len(members))
		for gi, mbr := range members {
			share := int(float64(cores) * mbr.w / total)
			if share < 1 {
				share = 1
			}
			if gi == len(members)-1 {
				share = cores - next
			}
			if next+share > cores {
				share = cores - next
			}
			for k := 0; k < share; k++ {
				dom.cores[next].svcID = mbr.svc
				next++
			}
			m.instances[mbr.svc] = append(m.instances[mbr.svc], dom)
			partition[mbr.svc] = share
		}
		for ; next < cores; next++ {
			dom.cores[next].svcID = members[0].svc
		}
		if e.PartitionRQ && dom.hwq != nil {
			// RQ entries proportional to core shares.
			rqPart := make(map[int]int, len(partition))
			total := 0
			for svc, share := range partition {
				n := m.cfg.RQCapacity * share / cores
				if n < 1 {
					n = 1
				}
				rqPart[svc] = n
				total += n
			}
			for svc := range rqPart {
				if total <= m.cfg.RQCapacity {
					break
				}
				if rqPart[svc] > 1 {
					rqPart[svc]--
					total--
				}
			}
			dom.hwq.SetPartition(rqPart)
		}
		di++
	}
}

// serviceWeights returns the expected invocations per arriving request for
// every service in the mix's trees.
func (m *Machine) serviceWeights() map[int]float64 {
	weights := make(map[int]float64)
	var walk func(id int, mult float64)
	walk = func(id int, mult float64) {
		weights[id] += mult
		for _, op := range m.catalog.Service(id).Ops {
			if op.Kind != workload.OpCall {
				continue
			}
			for _, callee := range op.Callees {
				walk(callee, mult)
			}
		}
	}
	for _, e := range m.mix {
		walk(e.Root, e.Weight)
	}
	return weights
}

// applyHeterogeneity marks the first BigVillageFrac of domains as big-core
// villages. placeColocated (and placeInstances) allocate heavy services
// from domain 0 upward, so the heaviest land on big cores.
func (m *Machine) applyHeterogeneity() {
	e := m.cfg.Extensions
	if e.BigVillageFrac <= 0 {
		return
	}
	n := int(float64(len(m.domains)) * e.BigVillageFrac)
	for i := 0; i < n && i < len(m.domains); i++ {
		m.domains[i].perfMult = e.BigCorePerf
	}
}
