package machine

import (
	"bytes"
	"reflect"
	"testing"

	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/workload"
)

// codecRun produces a small but fully populated result (mixed load, so
// PerRoot and the sample are non-trivial).
func codecRun(t *testing.T) *Result {
	t.Helper()
	app := workload.SocialNetworkApps()[0]
	return Run(UManycoreConfig(), RunConfig{
		App:      app,
		Mix:      workload.SocialNetworkMix(),
		RPS:      4000,
		Duration: 100 * sim.Millisecond,
		Warmup:   20 * sim.Millisecond,
		Drain:    sim.Second,
		Seed:     11,
	})
}

func TestResultCodecRoundTrip(t *testing.T) {
	r := codecRun(t)
	b, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded result must be indistinguishable from the computed one —
	// warm figure tables read the same numbers as cold ones.
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip changed the result:\n cold: %+v\n warm: %+v", r, got)
	}
	// And re-encoding must reproduce the exact bytes (the verify-mode
	// contract): shortest round-trip floats are canonical.
	b2, err := EncodeResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("re-encode of decoded result changed bytes")
	}
}

func TestResultCodecPreservesSampleSum(t *testing.T) {
	r := codecRun(t)
	if r.Sample == nil || r.Sample.N() == 0 {
		t.Skip("run produced no sample")
	}
	b, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(b)
	if err != nil {
		t.Fatal(err)
	}
	// Sum is stored verbatim, not recomputed: float addition is not
	// associative, and the figure pipelines divide by it.
	if got.Sample.Sum() != r.Sample.Sum() {
		t.Fatalf("sample sum drifted: %v vs %v", got.Sample.Sum(), r.Sample.Sum())
	}
	if got.Sample.N() != r.Sample.N() {
		t.Fatalf("sample size changed: %d vs %d", got.Sample.N(), r.Sample.N())
	}
	if got.Latency.P99 != r.Latency.P99 {
		t.Fatalf("p99 drifted: %v vs %v", got.Latency.P99, r.Latency.P99)
	}
}

func TestResultCodecRefusesObsAttachments(t *testing.T) {
	if _, err := EncodeResult(nil); err == nil {
		t.Fatal("nil result encoded")
	}
	r := codecRun(t)
	r.Obs = &obs.Run{}
	if _, err := EncodeResult(r); err == nil {
		t.Fatal("result with obs attachment encoded; it must be uncacheable")
	}
}

func TestResultCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeResult([]byte("not json")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeResult([]byte(`{"per_root":{"not-a-number":{}}}`)); err == nil {
		t.Fatal("bad per_root key decoded")
	}
}
