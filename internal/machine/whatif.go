package machine

import (
	"fmt"
	"math"

	"umanycore/internal/obs"
	"umanycore/internal/sim"
)

// StageSpeedups virtually accelerates pipeline stages for causal profiling
// (Config.WhatIf): each field removes that fraction of the stage's simulated
// cost, the virtual-speedup experiment of Coz-style what-if profiling. 0
// (the zero value) leaves the stage untouched, 0.25 runs it at 75% of its
// configured cost, 1 eliminates it entirely; negative values model
// slowdowns. Values above 1 (negative cost) are rejected by Validate.
//
// The speedups scale the *cost parameters* a stage charges — queue-lock
// critical sections, context save/restore cycles, RPC taxes, storage round
// trips, ICN/NIC wire legs — not the emergent waiting they cause, so
// queueing feedback (shorter occupancy → shorter queues → smaller tail)
// plays out for real in the simulation. That is the entire point: the p99
// payoff of a speedup routinely differs from the stage's blame share, and
// only re-running the world reveals by how much.
type StageSpeedups struct {
	// Sched scales queue-operation critical sections: enqueue, dequeue and
	// steal costs (including the software lock-contention factor).
	Sched float64
	// CS scales context save/restore (Policy.CSCycles) on block and resume.
	CS float64
	// Mem scales the cross-core resume penalties (global-coherence
	// directory misses, village-local resume).
	Mem float64
	// RPC scales the software RPC taxes: receive, send and response-resume
	// processing cycles.
	RPC float64
	// Storage scales the full storage access latency (network round trip
	// plus device service time, lossy or lossless path).
	Storage float64
	// Net scales the on-package wire legs: ICN traversals and NIC hardware
	// delay for child RPCs, responses and I/O funnel traffic. The
	// inter-server RTT legs of a coupled fleet are deliberately NOT scaled:
	// the PDES coupling's conservative lookahead is InterServerRTT/2, and
	// keeping those legs intact preserves the byte-identity contract for
	// every ShardWorkers value.
	Net float64
}

// IsZero reports whether no virtual speedup is requested (the baseline).
func (s StageSpeedups) IsZero() bool { return s == StageSpeedups{} }

// Validate rejects speedups that would make a stage cost negative (or are
// not finite numbers).
func (s StageSpeedups) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Sched", s.Sched}, {"CS", s.CS}, {"Mem", s.Mem},
		{"RPC", s.RPC}, {"Storage", s.Storage}, {"Net", s.Net},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v > 1 {
			return fmt.Errorf("machine: what-if speedup %s = %v outside (-inf, 1]", f.name, f.v)
		}
	}
	return nil
}

// SpeedupStages returns the stages a StageSpeedups can virtually
// accelerate, in pipeline order. Queue wait and service time are absent by
// design: queueing is emergent (it shrinks as a consequence of other
// speedups), and service time is the workload's own compute, not a tax.
func SpeedupStages() []obs.Stage {
	return []obs.Stage{
		obs.StageSched, obs.StageCS, obs.StageMem,
		obs.StageRPC, obs.StageStorage, obs.StageNet,
	}
}

// SetStage sets the speedup for one accelerable stage, reporting false for
// stages what-if cannot accelerate.
func (s *StageSpeedups) SetStage(st obs.Stage, speedup float64) bool {
	switch st {
	case obs.StageSched:
		s.Sched = speedup
	case obs.StageCS:
		s.CS = speedup
	case obs.StageMem:
		s.Mem = speedup
	case obs.StageRPC:
		s.RPC = speedup
	case obs.StageStorage:
		s.Storage = speedup
	case obs.StageNet:
		s.Net = speedup
	default:
		return false
	}
	return true
}

// stageScale is StageSpeedups converted to cost multipliers (factor =
// 1 - speedup), the form the hot paths consume. The zero Config yields all
// ones, and shrink is exact at factor 1, so baseline runs are bit-identical
// to builds without the what-if layer.
type stageScale struct {
	sched, cs, mem, rpc, storage, net float64
}

// scales converts fraction-removed speedups to cost multipliers.
func (s StageSpeedups) scales() stageScale {
	return stageScale{
		sched:   1 - s.Sched,
		cs:      1 - s.CS,
		mem:     1 - s.Mem,
		rpc:     1 - s.RPC,
		storage: 1 - s.Storage,
		net:     1 - s.Net,
	}
}

// shrink applies a what-if cost multiplier to the interval [from, to]: it
// returns from + f*(to-from). At f == 1 it returns to exactly (no float
// round trip), so unscaled stages cost precisely what they always did.
func shrink(from, to sim.Time, f float64) sim.Time {
	if f == 1 || to <= from {
		return to
	}
	return from + sim.Time(f*float64(to-from))
}

// scaledCycles converts core cycles to time and applies a what-if
// multiplier.
func (m *Machine) scaledCycles(cycles int, f float64) sim.Time {
	return shrink(0, m.cfg.CyclesToTime(cycles), f)
}
