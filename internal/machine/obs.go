package machine

import (
	"sync/atomic"

	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/telemetry"
)

// machineMetrics caches resolved instruments so the event hot paths never
// perform registry map lookups. A nil *machineMetrics (the default) disables
// metric collection entirely.
type machineMetrics struct {
	reg *obs.Registry
	// queueDepth tracks the aggregate number of runnable invocations queued
	// across all domains, time-weighted.
	queueDepth *obs.TimeHist
	// Admission counters: requests admitted straight into a hardware RQ,
	// spilled to the NIC overflow buffer, enqueued in a software queue, or
	// rejected outright (§4.3).
	admitRQ     *obs.Counter
	admitNICBuf *obs.Counter
	admitSWQ    *obs.Counter
	admitReject *obs.Counter
}

// EnableObs attaches the observability layer to this machine: col records
// per-request span trees (nil disables tracing) and reg receives the machine
// instruments (nil disables metrics). Call before submitting load. With both
// nil the machine behaves exactly as if EnableObs was never called — every
// instrumentation site is a nil-guarded branch with no allocation.
func (m *Machine) EnableObs(col *obs.Collector, reg *obs.Registry) {
	m.trace = col
	if reg == nil {
		m.mx = nil
		return
	}
	m.mx = &machineMetrics{
		reg:         reg,
		queueDepth:  reg.TimeHist("machine.queue.depth"),
		admitRQ:     reg.Counter("machine.admit.rq"),
		admitNICBuf: reg.Counter("machine.admit.nicbuf"),
		admitSWQ:    reg.Counter("machine.admit.swq"),
		admitReject: reg.Counter("machine.admit.reject"),
	}
}

// EnableTelemetry attaches a streaming-telemetry sampler: measured
// end-to-end latencies feed it at completion time. Nil detaches the layer
// at zero cost.
func (m *Machine) EnableTelemetry(s *telemetry.Sampler) { m.tele = s }

// EnableControlTelemetry attaches a second, control-plane sampler fed by
// the same completion-time latency stream. The coupled fleet's load shedder
// runs its slo.burn watchdog here, on a dedicated sampler with a private
// registry, so it never perturbs (and never depends on) whatever telemetry
// the run's user configured. Nil detaches at zero cost.
func (m *Machine) EnableControlTelemetry(s *telemetry.Sampler) { m.teleCtl = s }

// observeQueueDepth applies a queued-invocation delta and records the new
// aggregate depth. Only called when m.mx != nil.
func (m *Machine) observeQueueDepth(d int) {
	m.qlen += d
	m.mx.queueDepth.Observe(m.eng.Now(), float64(m.qlen))
}

// finishMetrics records the end-of-run instruments for a machine that owns
// its engine: the machine-level instruments plus the simulation kernel's.
func (m *Machine) finishMetrics(eng *sim.Engine, window sim.Time) {
	if m.mx == nil {
		return
	}
	m.FinishMachineMetrics(window)
	RecordEngineMetrics(m.mx.reg, eng)
}

// RecordEngineMetrics records the simulation kernel's statistics into reg.
// It is separate from FinishMachineMetrics so a coupled fleet (N machines
// sharing one engine) records the engine exactly once instead of once per
// server, keeping merged sim.* counters meaningful.
func RecordEngineMetrics(reg *obs.Registry, eng *sim.Engine) {
	reg.Counter("sim.events").Add(float64(eng.Fired()))
	reg.Gauge("sim.heap.peak").Set(float64(eng.MaxPending()))
}

// FinishMachineMetrics records the end-of-run machine instruments that need
// no hot-path hooks: per-core utilization spread, admission totals, ICN
// path statistics, and the storage R-NIC transport counters. window is the
// arrival window used for utilization normalization. No-op without a
// registry.
func (m *Machine) FinishMachineMetrics(window sim.Time) {
	if m.mx == nil {
		return
	}
	reg := m.mx.reg

	if window > 0 {
		lo, hi, sum := -1.0, 0.0, 0.0
		n := 0
		for _, dom := range m.domains {
			for _, c := range dom.cores {
				u := float64(c.busyTime) / float64(window)
				if lo < 0 || u < lo {
					lo = u
				}
				if u > hi {
					hi = u
				}
				sum += u
				n++
			}
		}
		if lo < 0 {
			lo = 0
		}
		reg.Gauge("machine.core.util.mean").Set(sum / float64(n))
		reg.Gauge("machine.core.util.min").Set(lo)
		reg.Gauge("machine.core.util.max").Set(hi)
	}
	reg.Counter("machine.submitted").Add(float64(m.Submitted))
	reg.Counter("machine.completed").Add(float64(m.Completed))
	reg.Counter("machine.rejected").Add(float64(m.Rejected))
	reg.Counter("machine.invocations").Add(float64(m.Invocations))

	reg.Counter("icn.messages").Add(float64(m.msgCount))
	reg.Gauge("icn.hops.mean").Set(m.MeanHops())

	if len(m.storageNIC) > 0 {
		var sent, retx, bytes, cwnd float64
		for _, nic := range m.storageNIC {
			sent += float64(nic.Sent)
			retx += float64(nic.Retransmit)
			bytes += float64(nic.Bytes)
			cwnd += nic.Cwnd()
		}
		reg.Counter("rpcnet.storage.sent").Add(sent)
		reg.Counter("rpcnet.storage.retransmits").Add(retx)
		reg.Counter("rpcnet.storage.wire_bytes").Add(bytes)
		reg.Gauge("rpcnet.storage.cwnd.mean").Set(cwnd / float64(len(m.storageNIC)))
	}
}

// engineReuse counts Run invocations that drew an already-used engine from
// the pool. It is process-global and scheduling-dependent (sync.Pool decides
// reuse), so it is deliberately NOT part of a run's deterministic metrics
// snapshot — see OBSERVABILITY.md.
var engineReuse atomic.Uint64

// EngineReuses reports how many Run calls reused a pooled engine since
// process start — the observable effect of the engine pool.
func EngineReuses() uint64 { return engineReuse.Load() }
