package machine

import (
	"math/rand"
	"testing"

	"umanycore/internal/sched"
	"umanycore/internal/sim"
	"umanycore/internal/workload"
)

// TestChaosConservation drives randomized machine configurations and checks
// the accounting invariants that must hold regardless of parameters: every
// submitted root is eventually completed, rejected, or still in flight;
// completed trees produce exactly their tree's invocation count; latency
// samples are positive and at least the ingress+egress floor.
func TestChaosConservation(t *testing.T) {
	apps := workload.SocialNetworkApps()
	r := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 12; trial++ {
		var cfg Config
		switch trial % 3 {
		case 0:
			cfg = UManycoreConfig()
		case 1:
			cfg = ScaleOutConfig()
		case 2:
			cfg = ServerClassConfig(40)
		}
		// Randomize the knobs that interact with accounting.
		switch r.Intn(4) {
		case 0:
			cfg.Policy.WorkStealing = !cfg.Policy.HardwareRQ
			cfg.Policy.StealCycles = 500 + r.Intn(2000)
		case 1:
			if cfg.Policy.HardwareRQ {
				cfg.RQCapacity = 2 + r.Intn(8)
				cfg.NICBufCapacity = r.Intn(8)
			}
		case 2:
			cfg.ICNContention = r.Intn(2) == 0
			cfg.Policy.CSCycles = r.Intn(6000)
		case 3:
			cfg.TreeAffinity = cfg.Placement == RandomPlacement
			cfg.RemoteCallFrac = r.Float64() * 0.8
			cfg.RemoteRTT = sim.Time(r.Intn(50)) * sim.Microsecond
		}
		app := apps[r.Intn(len(apps))]
		rps := float64(1000 + r.Intn(20000))
		res := Run(cfg, RunConfig{
			App: app, RPS: rps,
			Duration: 60 * sim.Millisecond,
			Warmup:   10 * sim.Millisecond,
			Drain:    2 * sim.Second,
			Seed:     int64(trial + 1),
		})
		total := int64(res.Completed) + res.Unfinished
		if rejRoots := int64(res.Submitted) - total; rejRoots < 0 {
			t.Fatalf("trial %d (%s/%s@%v): negative rejected roots: %+v",
				trial, cfg.Name, app.Name, rps, res)
		}
		if res.Unfinished < 0 {
			t.Fatalf("trial %d: negative unfinished: %+v", trial, res)
		}
		if res.Completed > 0 && res.Latency.N > 0 {
			floor := 2 * cfg.IngressLatency.Micros()
			if res.Latency.Mean < floor {
				t.Fatalf("trial %d: mean latency %v below physical floor %v",
					trial, res.Latency.Mean, floor)
			}
		}
		// Without rejections, invocation counts are exact multiples.
		if res.Rejected == 0 && res.Unfinished == 0 {
			per := uint64(app.Stats().Invocations)
			if res.Invocations != per*res.Completed {
				t.Fatalf("trial %d (%s/%s): invocations %d != %d × %d",
					trial, cfg.Name, app.Name, res.Invocations, per, res.Completed)
			}
		}
	}
}

// TestChaosDrainCompletes verifies that with a long enough drain every
// non-rejected request finishes — no invocation is ever lost or deadlocked —
// across policies.
func TestChaosDrainCompletes(t *testing.T) {
	apps := workload.SocialNetworkApps()
	policies := []sched.Policy{
		sched.HardwareSched(),
		sched.ShinjukuSched(),
		sched.ZygOSSched(),
		sched.LinuxSched(),
	}
	for i, pol := range policies {
		cfg := ScaleOutConfig()
		cfg.Policy = pol
		if pol.HardwareRQ {
			cfg.RQCapacity = 64
			cfg.NICBufCapacity = 256
		}
		res := Run(cfg, RunConfig{
			App: apps[i%len(apps)], RPS: 4000,
			Duration: 80 * sim.Millisecond,
			Warmup:   10 * sim.Millisecond,
			Drain:    3 * sim.Second,
			Seed:     int64(100 + i),
		})
		if res.Unfinished != 0 {
			t.Fatalf("policy %s left %d unfinished requests", pol.Name, res.Unfinished)
		}
		if res.Completed+res.Rejected == 0 {
			t.Fatalf("policy %s completed nothing", pol.Name)
		}
	}
}

// TestSeedsChangeOutcomes guards against accidentally shared RNG state:
// different seeds must produce different samples (while the same seed is
// bit-identical — covered by TestRunDeterministic).
func TestSeedsChangeOutcomes(t *testing.T) {
	app := appByName(t, "SGraph")
	a := Run(UManycoreConfig(), RunConfig{App: app, RPS: 4000,
		Duration: 100 * sim.Millisecond, Warmup: 20 * sim.Millisecond, Seed: 1})
	b := Run(UManycoreConfig(), RunConfig{App: app, RPS: 4000,
		Duration: 100 * sim.Millisecond, Warmup: 20 * sim.Millisecond, Seed: 2})
	if a.Latency == b.Latency && a.Submitted == b.Submitted {
		t.Fatal("different seeds produced identical runs")
	}
}
