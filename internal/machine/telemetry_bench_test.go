package machine

import (
	"testing"

	"umanycore/internal/telemetry"
)

// The streaming telemetry layer inherits the observability layer's
// zero-overhead contract: with RunConfig.Telemetry nil, the only new code
// on a run's path is one nil-guarded branch in the completion event, so a
// run must allocate exactly what it did before the layer existed.
// BENCH_telemetry.json records the measured numbers.

// BenchmarkMachineRunTelemetryOff is the disabled-sampler benchmark —
// compare against BenchmarkMachineRunObsOff (identical workload).
func BenchmarkMachineRunTelemetryOff(b *testing.B) {
	cfg := UManycoreConfig()
	rc := benchRunConfig(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(cfg, rc)
		if res.Telemetry != nil {
			b.Fatal("telemetry-off run carried a telemetry payload")
		}
	}
}

// BenchmarkMachineRunTelemetryOn measures the enabled cost: per-interval
// snapshots of every instrument, the latency sketch, and the watchdog.
func BenchmarkMachineRunTelemetryOn(b *testing.B) {
	cfg := UManycoreConfig()
	rc := benchRunConfig(42)
	rc.Telemetry = &telemetry.Options{Rules: telemetry.DefaultRules(500)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(cfg, rc)
		if res.Telemetry == nil || res.Telemetry.Sketch.N() == 0 {
			b.Fatal("telemetry-on run recorded nothing")
		}
	}
}

// TestTelemetryOffZeroAllocDelta asserts the allocation half of the
// contract against the same baseline as TestObsOffZeroAllocDelta: a
// telemetry-off run allocates exactly what it did before the layer
// existed.
func TestTelemetryOffZeroAllocDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow")
	}
	cfg := UManycoreConfig()
	rc := benchRunConfig(42)
	rc.Telemetry = nil
	Run(cfg, rc) // warm the engine pool and workload caches

	got := testing.AllocsPerRun(3, func() {
		res := Run(cfg, rc)
		if res.Telemetry != nil {
			t.Fatal("telemetry-off run carried a telemetry payload")
		}
	})
	tolerance := 0.005 * obsOffBaselineAllocs
	delta := got - obsOffBaselineAllocs
	if delta < 0 {
		delta = -delta
	}
	if delta > tolerance {
		t.Fatalf("telemetry-off run allocates %.0f/op, baseline %d/op (delta %.0f > tolerance %.0f)",
			got, obsOffBaselineAllocs, delta, tolerance)
	}
}
