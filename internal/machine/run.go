package machine

import (
	"sync"

	"umanycore/internal/dist"
	"umanycore/internal/icn"
	"umanycore/internal/obs"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
	"umanycore/internal/svcgraph"
	"umanycore/internal/telemetry"
	"umanycore/internal/workload"
)

// ArrivalKind selects the open-loop arrival process.
type ArrivalKind int

// Arrival processes.
const (
	// PoissonArrivals is the paper's default (§5).
	PoissonArrivals ArrivalKind = iota
	// BurstyArrivals uses the Alibaba-like MMPP of §3.2.
	BurstyArrivals
	// TraceArrivals replays the Alibaba-like per-second load series
	// (Fig 2's marginal), scaled so its long-run mean matches RunConfig.RPS.
	TraceArrivals
)

// RunConfig drives one experiment on one machine.
type RunConfig struct {
	App *workload.App
	// Mix, when non-empty, replaces App's root with a weighted mixture of
	// request types from App's catalog (the §5 mixed-arrival methodology);
	// per-type latencies land in Result.PerRoot.
	Mix []workload.MixEntry
	// RPS is the offered load in requests per second.
	RPS float64
	// Duration is the arrival window.
	Duration sim.Time
	// Warmup discards requests arriving before this offset.
	Warmup sim.Time
	// Drain bounds how long after the arrival window the simulation keeps
	// running to let in-flight requests finish.
	Drain sim.Time
	// Arrivals selects the arrival process.
	Arrivals ArrivalKind
	// Replay, when non-nil, replaces the synthetic arrival process with an
	// external trace (see svcgraph.Trace.Bind): requests arrive at the
	// bound trace's virtual times inside the Duration window, each typed by
	// its record's root service and compute-scaled by its per-record
	// demand. RPS and Arrivals are ignored. Normalized defaults an empty
	// Mix to Replay.Mix() so the machine hosts every root the trace
	// submits.
	Replay *svcgraph.Replay
	// Seed drives all randomness.
	Seed int64
	// Obs, when non-nil, enables the observability layer for this run; the
	// recorded spans and metrics land in Result.Obs. Nil keeps every
	// instrumentation site on its zero-cost disabled path.
	Obs *obs.Options
	// Telemetry, when non-nil, attaches the streaming telemetry sampler:
	// periodic virtual-time snapshots of every metric, a mergeable latency
	// sketch, and the SLO watchdog. Implies the metrics registry (created if
	// Obs didn't request one). Nil costs nothing.
	Telemetry *telemetry.Options
}

// Normalized returns rc with zero-valued Duration/Warmup/Drain filled with
// their defaults. Run applies it internally; the coupled fleet runner calls
// it so both paths agree on the effective window.
func (rc RunConfig) Normalized() RunConfig {
	if rc.Duration == 0 {
		rc.Duration = sim.Second
	}
	if rc.Warmup == 0 {
		rc.Warmup = rc.Duration / 10
	}
	if rc.Drain == 0 {
		rc.Drain = 2 * sim.Second
	}
	if rc.Replay != nil && len(rc.Mix) == 0 {
		rc.Mix = rc.Replay.Mix()
	}
	return rc
}

// Result summarizes one run.
type Result struct {
	Machine string
	App     string
	RPS     float64
	// Latency is the end-to-end latency distribution in microseconds
	// (measured requests only).
	Latency stats.Summary
	// Sample is the raw latency sample behind Latency (microseconds); fleet
	// aggregation merges these.
	Sample *stats.Sample
	// PerRoot summarizes latency per request type (root service ID) for
	// mixed runs.
	PerRoot map[int]stats.Summary
	// TailToAvg is P99/mean.
	TailToAvg float64
	// Submitted/Completed/Rejected/Unfinished account for every root.
	Submitted  uint64
	Completed  uint64
	Rejected   uint64
	Unfinished int64
	// Invocations counts finished service invocations.
	Invocations uint64
	// Utilization is aggregate core busy time over the arrival window.
	Utilization float64
	// MeanHops is the observed mean ICN path length.
	MeanHops float64
	// MaxLinkUtil is the hottest ICN link's utilization.
	MaxLinkUtil float64
	// Events is the simulation event count (performance reporting).
	Events uint64
	// Obs carries the run's spans and metrics snapshot when RunConfig.Obs
	// enabled the observability layer; nil otherwise.
	Obs *obs.Run
	// Telemetry carries the run's time series, latency sketch and watchdog
	// alerts when RunConfig.Telemetry enabled the sampler; nil otherwise.
	Telemetry *telemetry.Run
}

// enginePool recycles simulation engines across runs: replicate loops (grid
// sweeps, binary searches, fleet servers) reuse heap storage, event free
// lists and random streams instead of re-growing them every run. Engines are
// handed out per Run call, so concurrent sweep workers each get their own.
var enginePool = sync.Pool{
	New: func() any { return sim.NewEngineCap(0, 4096) },
}

// Run executes one machine under open-loop load and returns the results.
func Run(cfg Config, rc RunConfig) *Result {
	rc = rc.Normalized()
	eng := enginePool.Get().(*sim.Engine)
	if eng.Resets() > 0 || eng.Fired() > 0 {
		engineReuse.Add(1)
	}
	eng.Reset(rc.Seed)
	defer enginePool.Put(eng)
	var m *Machine
	if len(rc.Mix) > 0 {
		m = NewMix(eng, cfg, rc.App.Catalog, rc.Mix)
	} else {
		m = New(eng, cfg, rc.App)
	}
	m.SetMeasureFrom(rc.Warmup)

	var col *obs.Collector
	var reg *obs.Registry
	if rc.Obs != nil {
		if rc.Obs.Trace {
			col = obs.NewCollector()
		}
		if rc.Obs.Metrics {
			reg = obs.NewRegistry()
		}
	}
	var tele *telemetry.Sampler
	if rc.Telemetry != nil {
		// The sampler snapshots the metrics registry, so telemetry implies
		// one even when Obs didn't ask for it.
		if reg == nil {
			reg = obs.NewRegistry()
		}
		tele = telemetry.Start(eng, reg, rc.Duration+rc.Drain, *rc.Telemetry)
	}
	if col != nil || reg != nil {
		m.EnableObs(col, reg)
		m.EnableTelemetry(tele)
	}

	if rc.Replay != nil {
		rc.Replay.Schedule(eng, rc.Duration, m.SubmitRootAs)
	} else {
		arrivalGap := ArrivalGap(eng, rc, rc.RPS)
		var schedule func()
		schedule = func() {
			if eng.Now() >= rc.Duration {
				return
			}
			m.SubmitRoot()
			eng.After(arrivalGap(), schedule)
		}
		eng.At(arrivalGap(), schedule)
	}
	eng.RunUntil(rc.Duration + rc.Drain)

	res := BuildResult(m, eng, rc)
	if reg != nil {
		m.finishMetrics(eng, rc.Duration)
	}
	if rc.Obs != nil {
		res.Obs = &obs.Run{}
		if col != nil {
			res.Obs.Spans = col.Spans()
		}
		if reg != nil {
			res.Obs.Metrics = reg.Snapshot(eng.Now())
		}
	}
	if tele != nil {
		res.Telemetry = tele.Finish(eng.Now())
	}
	return res
}

// ArrivalGap returns the open-loop inter-arrival sampler for rc's arrival
// process at rate rps, drawing from eng's "arrivals" stream. Run uses it
// with rc.RPS on a per-server engine; the coupled fleet runner uses it with
// the fleet's total RPS on the shared engine, so a one-server fleet draws
// the exact same gap sequence as a plain Run.
func ArrivalGap(eng *sim.Engine, rc RunConfig, rps float64) func() sim.Time {
	switch rc.Arrivals {
	case BurstyArrivals:
		mmpp := workload.BurstyArrivals(rps)
		return func() sim.Time {
			return sim.FromSeconds(mmpp.NextGap(eng.Rand("arrivals")))
		}
	case TraceArrivals:
		// Per-second rates drawn from the production-trace marginal
		// (median 500 RPS, heavy upper tail), rescaled to the target mean.
		g := workload.NewTraceGen(sim.DeriveSeed(rc.Seed, 104729))
		loads := g.ServerLoad(1024)
		var sum float64
		for _, l := range loads {
			sum += float64(l)
		}
		scale := rps / (sum / float64(len(loads)))
		return func() sim.Time {
			r := eng.Rand("arrivals")
			sec := int(eng.Now() / sim.Second)
			rate := float64(loads[sec%len(loads)]) * scale
			if rate <= 0 {
				rate = 1
			}
			return sim.FromSeconds(dist.Poisson{Rate: rate}.NextGap(r))
		}
	default:
		return func() sim.Time {
			return sim.FromSeconds(dist.Poisson{Rate: rps}.NextGap(eng.Rand("arrivals")))
		}
	}
}

// BuildResult assembles the plain-statistics Result of a finished machine —
// the shared tail of Run and the coupled fleet runner (which drives several
// machines on one engine and assembles one Result per server). Observability
// output (Result.Obs / Result.Telemetry) is attached by the caller. Events
// reports the engine's fired-event count: per-run for Run, shared across
// servers for a coupled fleet.
func BuildResult(m *Machine, eng *sim.Engine, rc RunConfig) *Result {
	return &Result{
		Machine:     m.cfg.Name,
		App:         rc.App.Name,
		RPS:         rc.RPS,
		Latency:     m.Latency.Summarize(),
		Sample:      &m.Latency,
		PerRoot:     perRootSummaries(m),
		TailToAvg:   m.Latency.TailToAvg(),
		Submitted:   m.Submitted,
		Completed:   m.Completed,
		Rejected:    m.Rejected,
		Unfinished:  int64(m.Submitted) - int64(m.Completed) - int64(m.rejectedRoots),
		Invocations: m.Invocations,
		Utilization: m.Utilization(rc.Duration),
		MeanHops:    m.MeanHops(),
		MaxLinkUtil: icn.MaxUtilization(m.topo, rc.Duration),
		Events:      eng.Fired(),
	}
}

func perRootSummaries(m *Machine) map[int]stats.Summary {
	out := make(map[int]stats.Summary, len(m.LatencyByRoot))
	for root, s := range m.LatencyByRoot {
		out[root] = s.Summarize()
	}
	return out
}

// ContentionFreeAvg measures the average end-to-end latency at near-zero
// load — the QoS reference of §6.5 ("5× the contention-free average").
func ContentionFreeAvg(cfg Config, app *workload.App, seed int64) float64 {
	res := Run(cfg, RunConfig{
		App:      app,
		RPS:      50, // sparse enough that requests never overlap
		Duration: 2 * sim.Second,
		Warmup:   200 * sim.Millisecond,
		Seed:     seed,
	})
	return res.Latency.Mean
}

// MaxQoSThroughput binary-searches the largest offered load whose P99 stays
// within qosFactor× the contention-free average and whose rejections remain
// negligible (Fig 18). Returns the throughput in RPS.
func MaxQoSThroughput(cfg Config, app *workload.App, qosFactor float64, loRPS, hiRPS float64, seed int64) float64 {
	limit := qosFactor * ContentionFreeAvg(cfg, app, seed)
	ok := func(rps float64) bool {
		res := Run(cfg, RunConfig{
			App:      app,
			RPS:      rps,
			Duration: 500 * sim.Millisecond,
			Warmup:   100 * sim.Millisecond,
			Drain:    sim.Second,
			Seed:     seed,
		})
		if res.Completed == 0 {
			return false
		}
		bad := float64(res.Rejected) + float64(res.Unfinished)
		if bad > 0.01*float64(res.Submitted) {
			return false
		}
		return res.Latency.P99 <= limit
	}
	if !ok(loRPS) {
		return loRPS
	}
	lo, hi := loRPS, hiRPS
	for hi-lo > 0.05*lo {
		mid := (lo + hi) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
