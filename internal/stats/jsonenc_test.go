package stats

import (
	"encoding/json"
	"math"
	"testing"
)

func TestJSONObjectFieldOrderAndFormat(t *testing.T) {
	var o JSONObject
	o.Str("machine", "uManycore").
		Float("rps", 15000).
		Int("n", 42).
		Float("nan", math.NaN()).
		Obj("nested", func(n *JSONObject) { n.Float("x", 0.5) }).
		Raw("raw", []byte(`[1,2]`))
	got := string(o.Bytes())
	want := `{"machine":"uManycore","rps":15000,"n":42,"nan":0,"nested":{"x":0.5},"raw":[1,2]}`
	if got != want {
		t.Fatalf("got %s\nwant %s", got, want)
	}
	if !json.Valid([]byte(got)) {
		t.Fatal("invalid JSON")
	}
}

func TestJSONObjectEmpty(t *testing.T) {
	var o JSONObject
	if got := string(o.Bytes()); got != "{}" {
		t.Fatalf("empty = %s", got)
	}
}

// TestSummaryJSONUsesSharedEncoder pins the wire layout every tool shares.
func TestSummaryJSONUsesSharedEncoder(t *testing.T) {
	s := Summary{N: 3, Mean: 1.5, Median: 1, P99: math.Inf(1), Max: 2.25}
	b, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"n":3,"mean":1.5,"p50":1,"p99":0,"max":2.25}`
	if string(b) != want {
		t.Fatalf("got %s want %s", b, want)
	}
	var back Summary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != 3 || back.Mean != 1.5 || back.Max != 2.25 {
		t.Fatalf("round trip = %+v", back)
	}
}
