package stats

import "math"

// Sketch is a mergeable quantile sketch with a bounded *relative* error —
// the streaming alternative to Sample for runs too long to keep every
// latency in memory. It is a DDSketch-style structure: positive values map
// to logarithmic buckets k = ceil(log_gamma(x)) with gamma = (1+alpha)/
// (1-alpha), so every value in bucket k lies within a factor gamma of its
// neighbors and the bucket midpoint estimate 2*gamma^k/(gamma+1) is within
// alpha*x of any x the bucket holds.
//
// Guarantee: for any quantile q, Quantile(q) is within relative error alpha
// of the exact nearest-rank sample quantile (the value Sample.Quantile
// returns for the same stream), clamped into [Min, Max] which are tracked
// exactly. Memory is O(log(max/min)/alpha) buckets — a few KB for
// microsecond-scale latencies at alpha = 0.01 — independent of the number
// of observations, versus 8 bytes per observation for Sample.
//
// Sketches with the same alpha merge exactly (bucket-wise addition):
// Merge(a, b) over two streams equals a sketch fed the concatenation, which
// is what lets fleet servers and sweep workers each keep a local sketch and
// reassemble deterministically. The zero value is not usable; construct
// with NewSketch.
type Sketch struct {
	alpha       float64
	gamma       float64
	invLogGamma float64
	// bins[i] counts values in bucket (base + i); the slice grows toward
	// both ends as the observed dynamic range widens.
	bins []uint64
	base int
	// zeros counts non-positive and sub-resolution (< minIndexable) values,
	// which all report as 0 from quantile queries.
	zeros    uint64
	n        uint64
	sum      float64
	min, max float64
}

// minIndexable bounds the log-bucket index range: values below it (1e-9 in
// the caller's unit — sub-femtosecond for microsecond latencies) land in
// the zeros bucket. It keeps indices small without affecting any real
// measurement.
const minIndexable = 1e-9

// DefaultSketchAlpha is the relative-error bound used across the telemetry
// layer: quantile estimates within 1% of the exact sample quantile.
const DefaultSketchAlpha = 0.01

// NewSketch returns an empty sketch with the given relative-error bound
// (0 < alpha < 1). Use DefaultSketchAlpha unless a test needs otherwise.
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 || alpha >= 1 {
		panic("stats: sketch alpha must be in (0, 1)")
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:       alpha,
		gamma:       gamma,
		invLogGamma: 1 / math.Log(gamma),
	}
}

// Alpha returns the sketch's relative-error bound.
func (s *Sketch) Alpha() float64 { return s.alpha }

// key maps a positive value to its bucket index.
func (s *Sketch) key(x float64) int {
	return int(math.Ceil(math.Log(x) * s.invLogGamma))
}

// Add records one observation.
func (s *Sketch) Add(x float64) {
	s.n++
	s.sum += x
	if s.n == 1 || x < s.min {
		s.min = x
	}
	if s.n == 1 || x > s.max {
		s.max = x
	}
	if x < minIndexable {
		s.zeros++
		return
	}
	s.bump(s.key(x), 1)
}

// bump adds c to bucket k, growing the bin slice as needed.
func (s *Sketch) bump(k int, c uint64) {
	if len(s.bins) == 0 {
		s.bins = append(s.bins, c)
		s.base = k
		return
	}
	if k < s.base {
		grown := make([]uint64, s.base-k+len(s.bins))
		copy(grown[s.base-k:], s.bins)
		s.bins = grown
		s.base = k
	} else if k >= s.base+len(s.bins) {
		for k >= s.base+len(s.bins) {
			s.bins = append(s.bins, 0)
		}
	}
	s.bins[k-s.base] += c
}

// N returns the number of observations.
func (s *Sketch) N() uint64 { return s.n }

// Sum returns the sum of observations.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the average, or 0 for an empty sketch (exact, not
// bucket-estimated: the sum is tracked directly).
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation (exact), or 0 if empty.
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (exact), or 0 if empty.
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Quantile returns an estimate of the q-quantile within relative error
// Alpha of the exact nearest-rank sample quantile, or 0 for an empty
// sketch. Quantile(0.99) is the tail metric of every figure.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Same nearest-rank convention as Sample.Quantile: 1-based rank
	// ceil(q*n), clamped to [1, n].
	rank := uint64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank <= s.zeros {
		return 0
	}
	seen := s.zeros
	for i, c := range s.bins {
		seen += c
		if seen >= rank {
			k := float64(s.base + i)
			est := 2 * math.Pow(s.gamma, k) / (s.gamma + 1)
			// Min/Max are exact; clamping never hurts the bound and makes
			// Quantile(0) == Min, Quantile(1) == Max.
			if est < s.min {
				est = s.min
			}
			if est > s.max {
				est = s.max
			}
			return est
		}
	}
	return s.max
}

// P99 is shorthand for Quantile(0.99).
func (s *Sketch) P99() float64 { return s.Quantile(0.99) }

// FracAbove estimates the fraction of observations strictly greater than x
// up to the bucket resolution: observations within a factor gamma of x may
// count on either side. It is the SLO-violation-rate primitive of the
// telemetry watchdog.
func (s *Sketch) FracAbove(x float64) float64 {
	if s.n == 0 {
		return 0
	}
	if x < minIndexable {
		return float64(s.n-s.zeros) / float64(s.n)
	}
	kx := s.key(x)
	var above uint64
	for i, c := range s.bins {
		if s.base+i > kx {
			above += c
		}
	}
	return float64(above) / float64(s.n)
}

// Merge folds o into s bucket-wise. Both sketches must share the same
// alpha; merging is exact (equal to a sketch fed both streams) and
// order-independent up to internal storage layout.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	if o.alpha != s.alpha {
		panic("stats: merging sketches with different alpha")
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.n == 0 || o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
	s.zeros += o.zeros
	for i, c := range o.bins {
		if c != 0 {
			s.bump(o.base+i, c)
		}
	}
}

// Reset clears the sketch for reuse, keeping its bucket storage.
func (s *Sketch) Reset() {
	for i := range s.bins {
		s.bins[i] = 0
	}
	s.zeros, s.n = 0, 0
	s.sum, s.min, s.max = 0, 0, 0
}

// Buckets returns the number of allocated buckets — the memory-footprint
// statistic reported in BENCH_telemetry.json.
func (s *Sketch) Buckets() int { return len(s.bins) }

// MemoryBytes estimates the sketch's heap footprint (bucket storage plus
// the fixed header), for comparison against Sample's 8 bytes/observation.
func (s *Sketch) MemoryBytes() int { return 8*len(s.bins) + 96 }
