package stats

import (
	"math"
	"strconv"
	"strings"
)

// JSONObject builds a JSON object with the exact field order of the calls
// that produced it and shortest-exact float formatting — the one encoder
// behind every machine-readable report in this repository (stats.Summary,
// umprof -json, umsim -metrics, umbench -json), so the report schemas
// cannot drift between tools and identical results serialize to identical
// bytes.
//
// Floats encode with strconv 'g'/-1 (shortest round-trip form); NaN and
// ±Inf — which JSON cannot represent — encode as 0, matching the historic
// Summary behaviour for empty samples. The zero value is ready to use:
//
//	var o JSONObject
//	o.Str("machine", name).Float("rps", rps).Raw("latency", lat)
//	w.Write(o.Bytes())
type JSONObject struct {
	b strings.Builder
	n int
}

// key writes the separator and quoted key for the next field.
func (o *JSONObject) key(k string) {
	if o.n == 0 {
		o.b.WriteByte('{')
	} else {
		o.b.WriteByte(',')
	}
	o.n++
	o.b.WriteString(strconv.Quote(k))
	o.b.WriteByte(':')
}

// Str appends a string field.
func (o *JSONObject) Str(k, v string) *JSONObject {
	o.key(k)
	o.b.WriteString(strconv.Quote(v))
	return o
}

// Int appends an integer field.
func (o *JSONObject) Int(k string, v int64) *JSONObject {
	o.key(k)
	o.b.WriteString(strconv.FormatInt(v, 10))
	return o
}

// Float appends a float field in shortest-exact form (NaN/Inf become 0).
func (o *JSONObject) Float(k string, v float64) *JSONObject {
	o.key(k)
	o.b.WriteString(FormatFloat(v))
	return o
}

// FloatFixed appends a float field with fixed decimal places (NaN/Inf
// become 0) — for fields where a stable column width beats full precision.
func (o *JSONObject) FloatFixed(k string, v float64, prec int) *JSONObject {
	o.key(k)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	o.b.WriteString(strconv.FormatFloat(v, 'f', prec, 64))
	return o
}

// Raw appends a pre-encoded JSON value verbatim (e.g. Summary.MarshalJSON
// output or a nested JSONObject's Bytes).
func (o *JSONObject) Raw(k string, v []byte) *JSONObject {
	o.key(k)
	o.b.Write(v)
	return o
}

// FloatArr appends an array of floats, each in shortest-exact form — the
// encoding the sweep cache uses for raw latency samples, so decode followed
// by re-encode reproduces the bytes exactly.
func (o *JSONObject) FloatArr(k string, vs []float64) *JSONObject {
	o.key(k)
	o.b.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			o.b.WriteByte(',')
		}
		o.b.WriteString(FormatFloat(v))
	}
	o.b.WriteByte(']')
	return o
}

// RawArr appends an array of pre-encoded JSON values verbatim.
func (o *JSONObject) RawArr(k string, vs [][]byte) *JSONObject {
	o.key(k)
	o.b.WriteByte('[')
	for i, v := range vs {
		if i > 0 {
			o.b.WriteByte(',')
		}
		o.b.Write(v)
	}
	o.b.WriteByte(']')
	return o
}

// Obj appends a nested object built by fn.
func (o *JSONObject) Obj(k string, fn func(*JSONObject)) *JSONObject {
	var nested JSONObject
	fn(&nested)
	return o.Raw(k, nested.Bytes())
}

// Bytes closes and returns the encoded object. An empty object encodes as
// {}. The builder must not be reused after Bytes.
func (o *JSONObject) Bytes() []byte {
	if o.n == 0 {
		return []byte("{}")
	}
	o.b.WriteByte('}')
	return []byte(o.b.String())
}

// FormatFloat is the repository's canonical JSON float form: shortest
// round-trip 'g' formatting, with NaN/Inf mapped to 0.
func FormatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
