package stats

import (
	"math"
	"math/rand"
	"testing"
)

// checkBound asserts the sketch quantile is within the documented relative
// error of the exact sample quantile.
func checkBound(t *testing.T, s *Sample, sk *Sketch, q float64) {
	t.Helper()
	exact := s.Quantile(q)
	est := sk.Quantile(q)
	tol := sk.Alpha()*math.Abs(exact) + 1e-12
	if math.Abs(est-exact) > tol {
		t.Fatalf("q=%.3f: sketch %.6g vs exact %.6g (tol %.3g)", q, est, exact, tol)
	}
}

func feedBoth(xs []float64, alpha float64) (*Sample, *Sketch) {
	s := &Sample{}
	sk := NewSketch(alpha)
	for _, x := range xs {
		s.Add(x)
		sk.Add(x)
	}
	return s, sk
}

func TestSketchBoundAcrossDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() float64{
		"exponential": func() float64 { return 40 * rng.ExpFloat64() },
		"lognormal":   func() float64 { return math.Exp(3 + 1.2*rng.NormFloat64()) },
		"bimodal": func() float64 {
			if rng.Float64() < 0.9 {
				return 10 + rng.Float64()
			}
			return 500 + 100*rng.Float64()
		},
		"uniform-wide": func() float64 { return 1e-3 + 1e6*rng.Float64() },
	}
	for name, draw := range dists {
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = draw()
		}
		s, sk := feedBoth(xs, DefaultSketchAlpha)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			checkBound(t, s, sk, q)
		}
		if sk.Min() != s.Min() || sk.Max() != s.Max() {
			t.Fatalf("%s: min/max not exact: %v/%v vs %v/%v",
				name, sk.Min(), sk.Max(), s.Min(), s.Max())
		}
		if math.Abs(sk.Mean()-s.Mean()) > 1e-9*math.Abs(s.Mean()) {
			t.Fatalf("%s: mean not exact: %v vs %v", name, sk.Mean(), s.Mean())
		}
	}
}

func TestSketchEmptyAndSingle(t *testing.T) {
	sk := NewSketch(0.01)
	if sk.Quantile(0.5) != 0 || sk.N() != 0 || sk.Max() != 0 {
		t.Fatal("empty sketch not zero-valued")
	}
	sk.Add(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := sk.Quantile(q); math.Abs(got-42) > 0.01*42 {
			t.Fatalf("single value q=%v: %v", q, got)
		}
	}
}

func TestSketchZerosAndNegatives(t *testing.T) {
	sk := NewSketch(0.01)
	s := &Sample{}
	for _, x := range []float64{0, 0, 0, 1, 2, 3, 4, 5, 6, 7} {
		sk.Add(x)
		s.Add(x)
	}
	if got := sk.Quantile(0.2); got != 0 {
		t.Fatalf("q in zeros bucket = %v, want 0", got)
	}
	checkBound(t, s, sk, 0.9)
}

// TestSketchMergeExact: merging per-shard sketches equals one sketch fed
// the concatenated stream — the fleet/sweep reassembly contract.
func TestSketchMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	whole := NewSketch(0.01)
	shards := make([]*Sketch, 4)
	for i := range shards {
		shards[i] = NewSketch(0.01)
	}
	for i := 0; i < 40000; i++ {
		x := 25 * rng.ExpFloat64()
		whole.Add(x)
		shards[i%len(shards)].Add(x)
	}
	merged := NewSketch(0.01)
	for _, sh := range shards {
		merged.Merge(sh)
	}
	if merged.N() != whole.N() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merge header mismatch: n=%d/%d min=%v/%v max=%v/%v",
			merged.N(), whole.N(), merged.Min(), whole.Min(), merged.Max(), whole.Max())
	}
	// Sums accumulate in different orders, so they agree only to rounding.
	if math.Abs(merged.Sum()-whole.Sum()) > 1e-9*whole.Sum() {
		t.Fatalf("merge sum mismatch: %v vs %v", merged.Sum(), whole.Sum())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		a, b := merged.Quantile(q), whole.Quantile(q)
		if a != b {
			t.Fatalf("q=%v: merged %v != whole %v", q, a, b)
		}
	}
}

func TestSketchMergeAlphaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a, b := NewSketch(0.01), NewSketch(0.02)
	b.Add(1)
	a.Merge(b)
}

func TestSketchReset(t *testing.T) {
	sk := NewSketch(0.01)
	for i := 1; i <= 100; i++ {
		sk.Add(float64(i))
	}
	sk.Reset()
	if sk.N() != 0 || sk.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear")
	}
	sk.Add(9)
	if got := sk.Quantile(1); math.Abs(got-9) > 0.09 {
		t.Fatalf("post-reset add: %v", got)
	}
}

func TestSketchFracAbove(t *testing.T) {
	sk := NewSketch(0.01)
	for i := 1; i <= 1000; i++ {
		sk.Add(float64(i))
	}
	got := sk.FracAbove(900)
	if math.Abs(got-0.1) > 0.02 {
		t.Fatalf("FracAbove(900) = %v, want ~0.1", got)
	}
	if sk.FracAbove(2000) != 0 {
		t.Fatal("FracAbove beyond max should be 0")
	}
}

// TestSketchMemoryBound pins the scalability claim: 1M observations spanning
// five orders of magnitude stay within a few thousand buckets, versus 8 MB
// for the exact sample (see BENCH_telemetry.json).
func TestSketchMemoryBound(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-sample feed is slow")
	}
	rng := rand.New(rand.NewSource(3))
	s := &Sample{}
	sk := NewSketch(DefaultSketchAlpha)
	for i := 0; i < 1_000_000; i++ {
		x := math.Exp(3 + 1.5*rng.NormFloat64()) // ~1e-1 .. 1e4 us
		s.Add(x)
		sk.Add(x)
	}
	if sk.Buckets() > 4096 {
		t.Fatalf("sketch grew to %d buckets", sk.Buckets())
	}
	if sk.MemoryBytes() >= 8*s.N()/100 {
		t.Fatalf("sketch footprint %dB not <1%% of exact %dB", sk.MemoryBytes(), 8*s.N())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		checkBound(t, s, sk, q)
	}
}
