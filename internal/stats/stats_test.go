package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.P99() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	for _, x := range []float64{5, 1, 3, 2, 4} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 3 {
		t.Fatalf("Median = %v", s.Median())
	}
	if s.Sum() != 15 {
		t.Fatalf("Sum = %v", s.Sum())
	}
}

func TestQuantileNearestRank(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Quantile(0.99); got != 99 {
		t.Fatalf("P99 of 1..100 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("P100 = %v", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := s.Quantile(-0.5); got != 1 {
		t.Fatalf("clamped low quantile = %v", got)
	}
	if got := s.Quantile(1.5); got != 100 {
		t.Fatalf("clamped high quantile = %v", got)
	}
}

func TestAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Median()
	s.Add(1) // must re-sort
	if s.Min() != 1 {
		t.Fatal("sample did not re-sort after Add")
	}
}

func TestStdDev(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if !approx(s.StdDev(), 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", s.StdDev())
	}
}

func TestTailToAvg(t *testing.T) {
	var s Sample
	for i := 0; i < 99; i++ {
		s.Add(1)
	}
	s.Add(101) // mean 2, p99 = 101 (nearest rank over 100 samples -> idx 98)
	ta := s.TailToAvg()
	if ta <= 0 {
		t.Fatalf("TailToAvg = %v", ta)
	}
	var e Sample
	if e.TailToAvg() != 0 {
		t.Fatal("empty TailToAvg should be 0")
	}
}

func TestFracAtLeastAndCDFAt(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got := s.FracAtLeast(8); got != 0.3 {
		t.Fatalf("FracAtLeast(8) = %v", got)
	}
	if got := s.FracAtLeast(11); got != 0 {
		t.Fatalf("FracAtLeast(11) = %v", got)
	}
	if got := s.CDFAt(5); got != 0.5 {
		t.Fatalf("CDFAt(5) = %v", got)
	}
	if got := s.CDFAt(0); got != 0 {
		t.Fatalf("CDFAt(0) = %v", got)
	}
	if got := s.CDFAt(100); got != 1 {
		t.Fatalf("CDFAt(100) = %v", got)
	}
}

func TestCDFPoints(t *testing.T) {
	var s Sample
	for i := 0; i <= 100; i++ {
		s.Add(float64(i))
	}
	pts := s.CDF(11)
	if len(pts) != 11 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 0 || pts[10].X != 100 {
		t.Fatalf("range = [%v, %v]", pts[0].X, pts[10].X)
	}
	if pts[10].P != 1 {
		t.Fatalf("final P = %v", pts[10].P)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P {
			t.Fatal("CDF not monotone")
		}
	}
	if s.CDF(0) != nil {
		t.Fatal("CDF(0) should be nil")
	}
}

func TestSummary(t *testing.T) {
	var s Sample
	for i := 1; i <= 4; i++ {
		s.Add(float64(i))
	}
	sum := s.Summarize()
	if sum.N != 4 || sum.Mean != 2.5 || sum.Max != 4 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.String() == "" {
		t.Fatal("empty String")
	}
}

func TestReset(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Reset()
	if s.N() != 0 || s.Sum() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0.5)
	h.Add(9.5)
	h.Add(-5)  // clamps to bucket 0
	h.Add(100) // clamps to last bucket
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Buckets[0] != 2 {
		t.Fatalf("bucket0 = %d", h.Buckets[0])
	}
	if h.Buckets[9] != 2 {
		t.Fatalf("bucket9 = %d", h.Buckets[9])
	}
	if got := h.BucketCenter(0); got != 0.5 {
		t.Fatalf("BucketCenter(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestRatio(t *testing.T) {
	if Ratio(10, 2) != 5 {
		t.Fatal("Ratio(10,2)")
	}
	if Ratio(10, 0) != 0 {
		t.Fatal("Ratio(10,0)")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !approx(got, 10, 1e-9) {
		t.Fatalf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Fatalf("GeoMean of nonpositive = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean([1,2,3])")
	}
}

// Property: Quantile matches direct computation on the sorted slice.
func TestQuantileProperty(t *testing.T) {
	f := func(raw []float64, qi uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(qi%101) / 100
		var s Sample
		for _, x := range xs {
			s.Add(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		rank := int(math.Ceil(q*float64(len(sorted)))) - 1
		if rank < 0 {
			rank = 0
		}
		return s.Quantile(q) == sorted[rank]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CDFAt is a nondecreasing function bounded by [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(r.NormFloat64() * 10)
	}
	prev := -1.0
	for x := -40.0; x <= 40; x += 0.5 {
		p := s.CDFAt(x)
		if p < prev || p < 0 || p > 1 {
			t.Fatalf("CDF violated at %v: %v (prev %v)", x, p, prev)
		}
		prev = p
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		return s.Mean() >= s.Min()-1e-6 && s.Mean() <= s.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryJSONStableOrder(t *testing.T) {
	s := Summary{N: 3, Mean: 1.5, Median: 1, P99: 2.25, Max: 2.25}
	got, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"n":3,"mean":1.5,"p50":1,"p99":2.25,"max":2.25}`
	if string(got) != want {
		t.Fatalf("Marshal = %s, want %s", got, want)
	}
	// Round trip.
	var back Summary
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip = %+v, want %+v", back, s)
	}
	// Identical summaries serialize byte-identically (the contract umprof,
	// umsim -metrics and umbench share).
	again, _ := json.Marshal(s)
	if string(again) != string(got) {
		t.Fatalf("marshal not stable: %s vs %s", again, got)
	}
}

func TestSummaryJSONEmptyAndSpecial(t *testing.T) {
	got, err := json.Marshal(Summary{})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"n":0,"mean":0,"p50":0,"p99":0,"max":0}`
	if string(got) != want {
		t.Fatalf("empty Marshal = %s, want %s", got, want)
	}
	// NaN/Inf must not produce invalid JSON.
	b, err := json.Marshal(Summary{N: 1, Mean: math.NaN(), P99: math.Inf(1)})
	if err != nil {
		t.Fatalf("NaN/Inf marshal failed: %v", err)
	}
	var back Summary
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("NaN/Inf output not parseable: %v", err)
	}
}

// TestEmptySampleSafe pins the N=0 contract: every summary statistic on an
// empty sample returns a finite zero — never a panic, never a NaN — and the
// JSON encoding of an empty-summary record contains no NaN/Inf tokens (which
// would make the output unparseable).
func TestEmptySampleSafe(t *testing.T) {
	var s Sample
	for name, v := range map[string]float64{
		"Mean":      s.Mean(),
		"Quantile":  s.Quantile(0.5),
		"P99":       s.P99(),
		"Median":    s.Median(),
		"Min":       s.Min(),
		"Max":       s.Max(),
		"StdDev":    s.StdDev(),
		"TailToAvg": s.TailToAvg(),
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s on empty sample = %v", name, v)
		}
		if v != 0 {
			t.Fatalf("%s on empty sample = %v, want 0", name, v)
		}
	}

	sum := s.Summarize()
	if sum.N != 0 || sum.Mean != 0 || sum.P99 != 0 {
		t.Fatalf("empty Summarize = %+v", sum)
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatalf("marshal empty summary: %v", err)
	}
	for _, bad := range []string{"NaN", "Inf", "null"} {
		if strings.Contains(string(data), bad) {
			t.Fatalf("empty summary JSON contains %q: %s", bad, data)
		}
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip empty summary: %v", err)
	}
}
