// Package stats provides the measurement pipeline shared by every experiment:
// latency recorders with exact percentiles, CDFs, histograms, and summary
// helpers matching the metrics the paper reports (average, P99 tail,
// tail-to-average ratio, QoS-safe throughput).
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations and answers exact order statistics.
// It keeps all observations; experiment sizes in this repository (≤ a few
// million samples) make that the simplest correct choice.
type Sample struct {
	xs     []float64
	sorted bool
	sum    float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.sum += x
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Sum returns the sum of observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the average, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.sum / float64(len(s.xs))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method, or 0 for an empty sample. Quantile(0.99) is the paper's P99.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s.sort()
	rank := int(math.Ceil(q*float64(len(s.xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.xs[rank]
}

// Min returns the smallest observation, or 0 if empty.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation, or 0 if empty.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// P99 is shorthand for Quantile(0.99), the paper's tail-latency metric.
func (s *Sample) P99() float64 { return s.Quantile(0.99) }

// Median is shorthand for Quantile(0.5).
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// TailToAvg returns P99/mean — the predictability metric of paper §6.4.
func (s *Sample) TailToAvg() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.P99() / m
}

// FracAtLeast returns the fraction of observations >= x.
func (s *Sample) FracAtLeast(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	i := sort.SearchFloat64s(s.xs, x)
	return float64(len(s.xs)-i) / float64(len(s.xs))
}

// CDFAt returns the empirical CDF evaluated at x: P(X <= x).
func (s *Sample) CDFAt(x float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	// Index of first element > x.
	i := sort.Search(len(s.xs), func(j int) bool { return s.xs[j] > x })
	return float64(i) / float64(len(s.xs))
}

// CDFPoint is one (x, P(X<=x)) pair of an empirical CDF.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns the empirical CDF evaluated at n evenly spaced points across
// [min, max], suitable for plotting (the paper's Figs 2, 4, 5).
func (s *Sample) CDF(n int) []CDFPoint {
	if len(s.xs) == 0 || n <= 0 {
		return nil
	}
	s.sort()
	lo, hi := s.xs[0], s.xs[len(s.xs)-1]
	pts := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		x := lo
		if n > 1 {
			x = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		pts = append(pts, CDFPoint{X: x, P: s.CDFAt(x)})
	}
	return pts
}

// Summary is a compact result record used across experiment tables.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P99    float64
	Max    float64
}

// Summarize extracts a Summary from the sample.
func (s *Sample) Summarize() Summary {
	return Summary{N: s.N(), Mean: s.Mean(), Median: s.Median(), P99: s.P99(), Max: s.Max()}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f", s.N, s.Mean, s.Median, s.P99, s.Max)
}

// MarshalJSON emits the summary with a fixed field order and shortest-exact
// float formatting (via JSONObject), so every tool serializing summaries
// (umprof, umbench, umsim -metrics) produces byte-identical records for
// identical results.
func (s Summary) MarshalJSON() ([]byte, error) {
	var o JSONObject
	o.Int("n", int64(s.N)).
		Float("mean", s.Mean).
		Float("p50", s.Median).
		Float("p99", s.P99).
		Float("max", s.Max)
	return o.Bytes(), nil
}

// UnmarshalJSON accepts the MarshalJSON layout (and any key order).
func (s *Summary) UnmarshalJSON(data []byte) error {
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	s.N = int(m["n"])
	s.Mean = m["mean"]
	s.Median = m["p50"]
	s.P99 = m["p99"]
	s.Max = m["max"]
	return nil
}

// Values returns a copy of the raw observations (sorted if a quantile was
// taken since the last Add). It exists so samples from independent
// simulations (e.g. fleet servers) can be merged exactly. The copy protects
// the sample's internals: Quantile and friends sort the backing slice in
// place, so handing it out would let callers corrupt the sample (and let the
// sample reorder a caller's view under its feet).
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// UnsafeValues exposes the internal observation slice without copying — the
// escape hatch for hot read-only merge loops. The slice aliases the sample:
// callers must not mutate it, must not hold it across Add, and must tolerate
// it being re-sorted by any quantile query.
func (s *Sample) UnsafeValues() []float64 { return s.xs }

// RestoreSample rebuilds a Sample from a previously captured observation
// slice and its running sum — the sweep-cache decode path. The sum is taken
// verbatim rather than recomputed because float addition is not associative:
// the original sum was accumulated in insertion order, and quantile queries
// may have re-sorted xs since, so re-adding would drift in the last bits and
// break the cache's bit-identical warm-run contract. The slice is owned by
// the returned sample afterwards.
func RestoreSample(xs []float64, sum float64) *Sample {
	return &Sample{xs: xs, sum: sum, sorted: sort.Float64sAreSorted(xs)}
}

// Reset clears the sample for reuse.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = false
	s.sum = 0
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi); observations
// outside the range land in the first/last bucket.
type Histogram struct {
	Lo, Hi  float64
	Buckets []uint64
	total   uint64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]uint64, n)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Buckets)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Buckets[i]++
	h.total++
}

// Total returns the observation count.
func (h *Histogram) Total() uint64 { return h.total }

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + w*(float64(i)+0.5)
}

// Ratio divides a by b, returning 0 when b is 0. It is the helper used to
// compute all the paper's "X× lower/higher" numbers.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// GeoMean returns the geometric mean of positive values (the paper's
// cross-application averages); non-positive values are skipped.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
