package pdes

import (
	"math/rand"
	"reflect"
	"testing"

	"umanycore/internal/sim"
)

// --- canonical-order property test -----------------------------------------
//
// Satellite of the determinism contract: barrier delivery is a total order
// in (at, src, seq) no matter what order messages reached the inbox. The
// quick-check style mirrors the DeriveSeed avalanche tests: many random
// trials, each comparing a shuffled insertion against the canonical result.

func TestMailboxDeliveryTotalOrderUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		msgs := make([]message, n)
		// Small timestamp range forces heavy (at) ties so the (src, seq)
		// legs of the order actually get exercised.
		for i := range msgs {
			msgs[i] = message{
				at:  sim.Time(1 + rng.Intn(4)),
				src: int32(rng.Intn(3)),
			}
		}
		// Per-source seq in send order, like Fabric.Send assigns them.
		seqs := map[int32]uint64{}
		for i := range msgs {
			msgs[i].seq = seqs[msgs[i].src]
			seqs[msgs[i].src]++
		}
		fire := func(insertion []int) []message {
			s := &shard{eng: sim.NewEngine(0), inboxMin: maxTime}
			for _, idx := range insertion {
				m := msgs[idx]
				got := m // capture
				m.fn = func() { firedAppend(s.eng, &orderLog, got) }
				s.inbox = append(s.inbox, m)
				if m.at < s.inboxMin {
					s.inboxMin = m.at
				}
			}
			orderLog = orderLog[:0]
			s.deliver(maxTime - 1)
			s.eng.Run()
			out := make([]message, len(orderLog))
			copy(out, orderLog)
			return out
		}
		identity := make([]int, n)
		for i := range identity {
			identity[i] = i
		}
		want := fire(identity)
		for k := 0; k < 4; k++ {
			perm := rng.Perm(n)
			got := fire(perm)
			if !sameOrder(want, got) {
				t.Fatalf("trial %d: permuted insertion changed delivery order", trial)
			}
		}
		// And the order is the canonical sort, not merely stable.
		for i := 1; i < len(want); i++ {
			a, b := want[i-1], want[i]
			if a.at > b.at || (a.at == b.at && (a.src > b.src || (a.src == b.src && a.seq > b.seq))) {
				t.Fatalf("trial %d: delivery order violates (at, src, seq) at %d", trial, i)
			}
		}
	}
}

// orderLog records message firing order for the property test.
var orderLog []message

func firedAppend(_ *sim.Engine, log *[]message, m message) { *log = append(*log, m) }

func sameOrder(a, b []message) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].at != b[i].at || a[i].src != b[i].src || a[i].seq != b[i].seq {
			return false
		}
	}
	return true
}

// --- causality and construction guards --------------------------------------

func TestSendBelowLookaheadPanics(t *testing.T) {
	f := NewFabric(100, 1)
	f.AddShard(sim.NewEngine(1))
	f.AddShard(sim.NewEngine(2))
	defer func() {
		if recover() == nil {
			t.Fatal("Send below now+lookahead did not panic")
		}
	}()
	f.Send(0, 1, 99, func() {})
}

func TestSingleEngineSendBelowLookaheadPanics(t *testing.T) {
	se := NewSingleEngine(100, sim.NewEngine(1), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Send below now+lookahead did not panic")
		}
	}()
	se.Send(0, 1, 50, func() {})
}

func TestZeroLookaheadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero lookahead did not panic")
		}
	}()
	NewFabric(0, 1)
}

func TestDuplicateEnginePanics(t *testing.T) {
	f := NewFabric(1, 1)
	eng := sim.NewEngine(1)
	f.AddShard(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate engine did not panic")
		}
	}()
	f.AddShard(eng)
}

// --- adaptive windows --------------------------------------------------------

// TestWindowsJumpSparsePhases: with activity every millisecond and a 1ns
// lookahead, a fixed-width scheme would need ~10^6 windows; the adaptive
// bound must take one window per activity cluster instead.
func TestWindowsJumpSparsePhases(t *testing.T) {
	f := NewFabric(sim.Nanosecond, 1)
	e0 := sim.NewEngine(1)
	e1 := sim.NewEngine(2)
	f.AddShard(e0)
	f.AddShard(e1)
	ticks := 0
	for i := 1; i <= 10; i++ {
		at := sim.Time(i) * sim.Millisecond
		e0.At(at, func() { ticks++ })
	}
	f.Run(20*sim.Millisecond, nil)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if f.Rounds() > 25 {
		t.Fatalf("rounds = %d; adaptive windows should jump sparse gaps", f.Rounds())
	}
	if e0.Now() != 20*sim.Millisecond || e1.Now() != 20*sim.Millisecond {
		t.Fatalf("engines did not land on horizon: %v, %v", e0.Now(), e1.Now())
	}
}

// --- cross-mode / cross-worker equivalence -----------------------------------
//
// A toy coupled model exercising everything the fleet needs: per-node
// Streams randomness, self-scheduled local events, random cross-shard
// messages at random lookahead-respecting offsets, and an order-sensitive
// state hash that detects any delivery reordering.

type toyNode struct {
	id    int
	n     int
	eng   *sim.Engine
	rng   *sim.Streams
	net   Net
	peers []*toyNode
	L     sim.Time

	hash uint64
	recv int
	sent int
}

func mixHash(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	return h
}

func (nd *toyNode) step(activeUntil sim.Time) {
	now := nd.eng.Now()
	nd.hash = mixHash(nd.hash, uint64(now))
	if nd.n > 1 && nd.rng.Rand("send").Float64() < 0.5 {
		dst := nd.rng.Rand("peer").Intn(nd.n - 1)
		if dst >= nd.id {
			dst++
		}
		at := now + nd.L + sim.Time(nd.rng.Rand("lat").Int63n(int64(3*nd.L)))
		src, peer := nd.id, nd.peers[dst]
		nd.sent++
		nd.net.Send(src, dst, at, func() { peer.receive(src) })
	}
	if now >= activeUntil {
		return
	}
	gap := 1 + sim.Time(nd.rng.Rand("gap").Int63n(int64(2*nd.L)))
	nd.eng.After(gap, func() { nd.step(activeUntil) })
}

func (nd *toyNode) receive(src int) {
	nd.recv++
	nd.hash = mixHash(nd.hash, uint64(nd.eng.Now())*31+uint64(src))
}

type toyState struct {
	Hash       uint64
	Recv, Sent int
	Now        sim.Time
}

// runToy drives n coupled nodes to horizon. workers < 0 selects the
// SingleEngine reference; otherwise a Fabric with that worker count.
func runToy(t *testing.T, n, workers int, seed int64) []toyState {
	t.Helper()
	const L = 500 * sim.Nanosecond
	const activeUntil = 40 * sim.Microsecond
	const horizon = 60 * sim.Microsecond
	nodes := make([]*toyNode, n)
	var net Net
	var engs []*sim.Engine
	if workers < 0 {
		shared := sim.NewEngine(seed)
		net = NewSingleEngine(L, shared, n)
		for i := 0; i < n; i++ {
			engs = append(engs, shared)
		}
	} else {
		f := NewFabric(L, workers)
		for i := 0; i < n; i++ {
			eng := sim.NewEngine(sim.DeriveSeed(seed, int64(i)))
			f.AddShard(eng)
			engs = append(engs, eng)
		}
		net = f
	}
	for i := range nodes {
		nodes[i] = &toyNode{
			id: i, n: n, eng: engs[i], net: net, L: L,
			rng:   sim.NewStreams(sim.DeriveSeed(seed, int64(i))),
			peers: nodes,
		}
	}
	for _, nd := range nodes {
		nd := nd
		nd.eng.At(sim.Time(1+nd.id), func() { nd.step(activeUntil) })
	}
	net.Run(horizon, nil)
	out := make([]toyState, n)
	for i, nd := range nodes {
		out[i] = toyState{Hash: nd.hash, Recv: nd.recv, Sent: nd.sent, Now: nd.eng.Now()}
	}
	return out
}

func TestFabricWorkerInvariance(t *testing.T) {
	const n, seed = 6, 42
	want := runToy(t, n, 1, seed)
	sent := 0
	for _, s := range want {
		sent += s.Sent
	}
	if sent == 0 {
		t.Fatal("toy model sent no cross-shard messages; test is vacuous")
	}
	for _, w := range []int{2, 3, 8} {
		if got := runToy(t, n, w, seed); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d diverged from sequential:\nwant %+v\ngot  %+v", w, want, got)
		}
	}
	if got := runToy(t, n, 1, seed); !reflect.DeepEqual(want, got) {
		t.Fatal("repeat run diverged — fabric is not deterministic")
	}
}

func TestFabricMatchesSingleEngineReference(t *testing.T) {
	for _, n := range []int{2, 3, 6} {
		want := runToy(t, n, -1, 99)
		got := runToy(t, n, 4, 99)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("n=%d: sharded fabric diverged from single-engine reference:\nref %+v\ngot %+v", n, want, got)
		}
	}
}

// TestPostHookScheduling pins the barrier-safe membership-change contract
// documented on Net.Run: the post hook may schedule events on any shard's
// engine at times >= barrier, those events fire exactly when scheduled, and
// because barrier times are mode-invariant the resulting activation schedule
// is identical across worker counts and the SingleEngine reference. This is
// the mechanism the fleet autoscaler uses to activate cold servers.
func TestPostHookScheduling(t *testing.T) {
	const L = 500 * sim.Nanosecond
	const lag = 3 * L
	type fired struct {
		Barrier sim.Time
		At      sim.Time
	}
	run := func(workers int) []fired {
		// Reuse the toy model for background traffic so barriers are driven
		// by real cross-shard activity, not a synthetic tick.
		const n, seed = 4, 7
		nodes := make([]*toyNode, n)
		var net Net
		var engs []*sim.Engine
		if workers < 0 {
			shared := sim.NewEngine(seed)
			net = NewSingleEngine(L, shared, n)
			for i := 0; i < n; i++ {
				engs = append(engs, shared)
			}
		} else {
			f := NewFabric(L, workers)
			for i := 0; i < n; i++ {
				eng := sim.NewEngine(sim.DeriveSeed(seed, int64(i)))
				f.AddShard(eng)
				engs = append(engs, eng)
			}
			net = f
		}
		for i := range nodes {
			nodes[i] = &toyNode{
				id: i, n: n, eng: engs[i], net: net, L: L,
				rng:   sim.NewStreams(sim.DeriveSeed(seed, int64(i))),
				peers: nodes,
			}
		}
		for _, nd := range nodes {
			nd := nd
			nd.eng.At(sim.Time(1+nd.id), func() { nd.step(30 * sim.Microsecond) })
		}
		var log []fired
		var next sim.Time
		net.Run(40*sim.Microsecond, func(barrier sim.Time) {
			if barrier < next {
				return
			}
			next = barrier + 10*L
			// Membership change: decide at the barrier, take effect lag later
			// on a shard chosen deterministically from the barrier time.
			target := engs[int(barrier/L)%n]
			b := barrier
			target.At(barrier+lag, func() {
				log = append(log, fired{Barrier: b, At: target.Now()})
			})
		})
		return log
	}
	want := run(-1)
	if len(want) == 0 {
		t.Fatal("post hook never scheduled; test is vacuous")
	}
	for _, f := range want {
		if f.At != f.Barrier+lag {
			t.Fatalf("event scheduled at barrier %v fired at %v, want %v", f.Barrier, f.At, f.Barrier+lag)
		}
	}
	for _, w := range []int{1, 2, 4} {
		if got := run(w); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d activation schedule diverged from reference:\nref %+v\ngot %+v", w, want, got)
		}
	}
}

// TestMessagesNeverInPast drives the toy model while asserting, via a
// wrapper net, that every delivered message executes at exactly its
// timestamp — the "no shard receives an event in its past" guarantee.
func TestMessagesNeverInPast(t *testing.T) {
	const L = 500 * sim.Nanosecond
	f := NewFabric(L, 2)
	engs := []*sim.Engine{sim.NewEngine(1), sim.NewEngine(2)}
	f.AddShard(engs[0])
	f.AddShard(engs[1])
	checked := 0
	var ping func(src int, count int)
	ping = func(src, count int) {
		if count == 0 {
			return
		}
		dst := 1 - src
		at := engs[src].Now() + L
		f.Send(src, dst, at, func() {
			if engs[dst].Now() != at {
				t.Errorf("message for %v delivered at %v", at, engs[dst].Now())
			}
			checked++
			ping(dst, count-1)
		})
	}
	engs[0].At(1, func() { ping(0, 50) })
	f.Run(sim.Millisecond, nil)
	if checked != 50 {
		t.Fatalf("delivered %d of 50 messages", checked)
	}
}
