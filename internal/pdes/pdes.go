// Package pdes implements conservative-lookahead parallel discrete-event
// simulation: a set of shards, each owning one sim.Engine, advance
// concurrently through synchronized time windows and exchange timestamped
// messages that are only delivered at window barriers.
//
// The synchronization rule is the classic conservative one. Every
// cross-shard interaction carries a minimum latency L (the lookahead; for a
// server fleet, half the inter-server RTT — one wire direction). A message
// sent at virtual time t therefore arrives no earlier than t+L. Each round,
// the coordinator computes
//
//	M = min over shards of (earliest pending event, earliest undelivered
//	    message timestamp)
//	T = min(M + L, horizon)
//
// and lets every shard run to T. Causality cannot be violated: the first
// event anywhere in the round executes at some t >= M, so any message it
// sends arrives at t+L >= M+L >= T — at or after the barrier the round ends
// on, where it is delivered before any shard advances past it. No shard
// ever receives an event in its past. Taking T from the global minimum also
// makes sparse phases (drain tails, idle gaps) cheap: windows jump straight
// to the next activity instead of ticking every L.
//
// Determinism is a hard contract, matching the rest of the repository:
// results are bit-identical across shard-worker counts. Shards share no
// state (each owns its engine; entity randomness comes from sim.Streams
// bundles, not shared engine streams), message sequence numbers are
// assigned per sender in send order, and barrier delivery sorts each
// shard's due messages by (time, source shard, sequence) — a total order
// independent of which worker produced them first. SingleEngine runs the
// identical window/mailbox semantics on one shared engine; it is the
// validation reference the sharded fabric is byte-compared against.
package pdes

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"umanycore/internal/sim"
)

// maxTime is the "no activity" sentinel: later than any real timestamp.
const maxTime = sim.Time(math.MaxInt64)

// Net is the coupling surface a simulation builds against: it can send
// timestamped cross-shard messages and drive all shards to a horizon. Both
// the sharded Fabric and the SingleEngine reference implement it, so the
// same model wiring runs — and must produce bit-identical results — on
// either.
type Net interface {
	// Send ships fn to shard dst for execution at virtual time at. It must
	// be called from code executing on shard src, and at must respect the
	// lookahead: at >= src's current time + Lookahead. Violations panic —
	// they are model bugs that would let a shard receive an event in its
	// past.
	Send(src, dst int, at sim.Time, fn func())
	// Run drives every shard to horizon in conservative windows. post, when
	// non-nil, runs after each window on the coordinator with all shards
	// quiescent — the hook for cross-shard state snapshots (e.g. a load
	// balancer's stale queue views).
	//
	// Barrier-safe membership change: because every shard has finished its
	// window when post runs, post may schedule new events on any shard's
	// engine at times >= barrier (eng.At(barrier+d, ...)) without violating
	// the no-event-in-the-past invariant, and barrier times themselves are a
	// deterministic function of the lookahead alone — identical for every
	// worker count and for the SingleEngine reference. This is the mechanism
	// a model uses to change its own topology mid-run (e.g. an autoscaler
	// activating a cold server): decide at the barrier, take effect at
	// barrier + lag. TestPostHookScheduling pins the contract.
	Run(horizon sim.Time, post func(barrier sim.Time))
	// Stats reports the fabric's self-observability counters accumulated so
	// far. Safe to call between windows (from a Run post hook) and after Run.
	Stats() Stats
}

// Stats is the fabric's self-observability: how the conservative-window
// machinery behaved during Run. Every field except the two wall-clock ones
// is a deterministic function of the model — identical across shard-worker
// counts and, for the scalar aggregates, identical between Fabric and the
// SingleEngine reference. The per-shard slices are nil on SingleEngine
// (logical shards share one heap; per-shard execution is not meaningful).
type Stats struct {
	// Shards is the number of (logical) shards coupled.
	Shards int
	// Lookahead is the conservative window bound L.
	Lookahead sim.Time
	// Rounds counts synchronization windows executed.
	Rounds uint64
	// MessagesSent counts cross-shard sends.
	MessagesSent uint64
	// MessagesDelivered counts messages handed to destination engines at
	// barriers (== MessagesSent once Run drains the mailboxes).
	MessagesDelivered uint64
	// WindowEvents counts engine events fired inside windows.
	WindowEvents uint64
	// AdvanceSum accumulates each window's virtual width (limit - M). With
	// Rounds and Lookahead it yields the lookahead utilization: how much of
	// the permitted L each window actually used.
	AdvanceSum sim.Time
	// ShardWindows[i] counts windows in which shard i had events to run
	// (it was "active"); skipped windows cost a shard nothing.
	ShardWindows []uint64
	// ShardEvents[i] counts events shard i fired inside windows.
	ShardEvents []uint64
	// BarrierWaitSeconds is coordinator wall time spent inside parallel
	// window execution — the barrier the slowest shard sets. Wall clock:
	// excluded from the determinism contract, 0 without a worker pool.
	BarrierWaitSeconds float64
	// WorkerBusySeconds is total wall time pool workers spent running
	// shards. Wall clock: excluded from the determinism contract, 0 without
	// a worker pool.
	WorkerBusySeconds float64
}

// EventsPerWindow is the mean number of events a window executed.
func (st *Stats) EventsPerWindow() float64 {
	if st.Rounds == 0 {
		return 0
	}
	return float64(st.WindowEvents) / float64(st.Rounds)
}

// LookaheadUtilization is the mean fraction of the permitted lookahead L
// that windows actually advanced — 1.0 means every window spanned the full
// L; lower values mean horizon clamping or sparse activity jumps.
func (st *Stats) LookaheadUtilization() float64 {
	if st.Rounds == 0 || st.Lookahead <= 0 {
		return 0
	}
	return float64(st.AdvanceSum) / (float64(st.Rounds) * float64(st.Lookahead))
}

// BusyFraction is the fraction of parallel-execution wall time that workers
// spent running shards, given the pool size: 1.0 means perfectly balanced
// windows, low values mean workers idling at barriers. 0 without a pool.
func (st *Stats) BusyFraction(workers int) float64 {
	if workers <= 0 || st.BarrierWaitSeconds <= 0 {
		return 0
	}
	return st.WorkerBusySeconds / (float64(workers) * st.BarrierWaitSeconds)
}

// message is one cross-shard event: fn runs on the destination shard at
// virtual time at. src and seq (per-source send order) complete the
// (at, src, seq) canonical delivery order.
type message struct {
	at  sim.Time
	src int32
	dst int32
	seq uint64
	fn  func()
}

// byCanonicalOrder sorts messages by (at, src, seq) — the deterministic
// total order barrier delivery uses regardless of arrival order.
func byCanonicalOrder(ms []message) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
}

// shard is one partition of the simulation: an engine, an inbox of
// undelivered messages, and an outbox filled while the shard runs.
type shard struct {
	id  int
	eng *sim.Engine
	// inbox holds messages not yet delivered; inboxMin caches the earliest
	// timestamp in it (maxTime when empty) so the per-round minimum scan is
	// O(1) per shard.
	inbox    []message
	inboxMin sim.Time
	// out collects messages sent during the current window. Only the worker
	// running this shard touches it; the coordinator routes and clears it
	// between windows.
	out []message
	// seq numbers this shard's sends, giving same-timestamp messages from
	// one sender a deterministic relative order (and, as a side effect,
	// counting them for Stats).
	seq uint64
	// firedBase snapshots the engine's fired-event counter when a window
	// starts, so the coordinator can charge the delta to this shard.
	firedBase uint64
}

// nextActivity is the earliest thing this shard could do: its engine's next
// event or its earliest undelivered message.
func (s *shard) nextActivity() sim.Time {
	n := s.inboxMin
	if at, ok := s.eng.NextEventAt(); ok && at < n {
		n = at
	}
	return n
}

// deliver schedules every inbox message with at <= limit onto the engine in
// canonical (at, src, seq) order and retains the rest, returning how many
// it delivered.
func (s *shard) deliver(limit sim.Time) uint64 {
	var due []message
	kept := s.inbox[:0]
	min := maxTime
	for _, m := range s.inbox {
		if m.at <= limit {
			due = append(due, m)
		} else {
			kept = append(kept, m)
			if m.at < min {
				min = m.at
			}
		}
	}
	s.inbox, s.inboxMin = kept, min
	byCanonicalOrder(due)
	for _, m := range due {
		s.eng.At(m.at, m.fn)
	}
	return uint64(len(due))
}

// Fabric couples shards that each own a distinct engine and advances them
// concurrently on a worker pool. Create with NewFabric, add shards, wire
// the model, then Run.
type Fabric struct {
	lookahead sim.Time
	workers   int
	shards    []*shard
	rounds    uint64
	// Self-observability accumulators; the coordinator owns all of them
	// (workers report busy time through the pool's atomic, folded in after
	// each window), so no synchronization beyond the pool's is needed.
	delivered     uint64
	windowEvents  uint64
	advanceSum    sim.Time
	shardWindows  []uint64
	shardEvents   []uint64
	barrierWaitNS int64
	workerBusyNS  int64
}

// NewFabric returns a fabric with the given lookahead (the minimum
// cross-shard latency; must be positive) and worker count (values < 2 mean
// sequential window execution; results are identical for every value).
func NewFabric(lookahead sim.Time, workers int) *Fabric {
	if lookahead <= 0 {
		panic("pdes: lookahead must be positive — zero-latency coupling admits no conservative window")
	}
	return &Fabric{lookahead: lookahead, workers: workers}
}

// AddShard registers eng as the next shard and returns its id. Engines must
// be distinct — shards run concurrently.
func (f *Fabric) AddShard(eng *sim.Engine) int {
	for _, s := range f.shards {
		if s.eng == eng {
			panic("pdes: engine added to fabric twice; shards must own distinct engines")
		}
	}
	f.shards = append(f.shards, &shard{id: len(f.shards), eng: eng, inboxMin: maxTime})
	f.shardWindows = append(f.shardWindows, 0)
	f.shardEvents = append(f.shardEvents, 0)
	return len(f.shards) - 1
}

// Lookahead reports the fabric's minimum cross-shard latency.
func (f *Fabric) Lookahead() sim.Time { return f.lookahead }

// Rounds reports how many synchronization windows Run has executed.
func (f *Fabric) Rounds() uint64 { return f.rounds }

// Stats implements Net. The per-shard slices are snapshots (safe to retain).
func (f *Fabric) Stats() Stats {
	st := Stats{
		Shards:             len(f.shards),
		Lookahead:          f.lookahead,
		Rounds:             f.rounds,
		MessagesDelivered:  f.delivered,
		WindowEvents:       f.windowEvents,
		AdvanceSum:         f.advanceSum,
		ShardWindows:       append([]uint64(nil), f.shardWindows...),
		ShardEvents:        append([]uint64(nil), f.shardEvents...),
		BarrierWaitSeconds: float64(f.barrierWaitNS) / 1e9,
		WorkerBusySeconds:  float64(f.workerBusyNS) / 1e9,
	}
	for _, s := range f.shards {
		st.MessagesSent += s.seq
	}
	return st
}

// Send implements Net. Called from model code running on shard src.
func (f *Fabric) Send(src, dst int, at sim.Time, fn func()) {
	s := f.shards[src]
	if min := s.eng.Now() + f.lookahead; at < min {
		panic(fmt.Sprintf("pdes: shard %d sends at %v < now %v + lookahead %v — causality violation",
			src, at, s.eng.Now(), f.lookahead))
	}
	s.out = append(s.out, message{at: at, src: int32(src), dst: int32(dst), seq: s.seq, fn: fn})
	s.seq++
}

// Run implements Net: conservative windows to horizon, then every engine
// clock lands exactly on horizon (like sim.Engine.RunUntil).
func (f *Fabric) Run(horizon sim.Time, post func(barrier sim.Time)) {
	var pool *workerPool
	if f.workers > 1 && len(f.shards) > 1 {
		w := f.workers
		if w > len(f.shards) {
			w = len(f.shards)
		}
		pool = startPool(w)
		defer pool.stop()
	}
	active := make([]*shard, 0, len(f.shards))
	for {
		// Route outboxes into inboxes in shard order — part of the canonical
		// order (per-source seq is already send-ordered; the sort at
		// delivery does the rest). Routing opens the round so freshly sent
		// messages bound the very next window.
		for _, s := range f.shards {
			for _, msg := range s.out {
				d := f.shards[msg.dst]
				d.inbox = append(d.inbox, msg)
				if msg.at < d.inboxMin {
					d.inboxMin = msg.at
				}
			}
			s.out = s.out[:0]
		}
		m := maxTime
		for _, s := range f.shards {
			if n := s.nextActivity(); n < m {
				m = n
			}
		}
		if m > horizon {
			break
		}
		limit := m + f.lookahead
		if limit > horizon || limit < m {
			limit = horizon
		}
		// Deliver due messages, then collect the shards with work this
		// window. A shard whose next activity lies beyond the window is
		// skipped entirely; its clock catches up when it next runs.
		active = active[:0]
		for _, s := range f.shards {
			if s.inboxMin <= limit {
				f.delivered += s.deliver(limit)
			}
			if at, ok := s.eng.NextEventAt(); ok && at <= limit {
				active = append(active, s)
				s.firedBase = s.eng.Fired()
			}
		}
		if pool == nil || len(active) <= 1 {
			for _, s := range active {
				s.eng.RunUntil(limit)
			}
		} else {
			t0 := time.Now()
			busy0 := pool.busyNS.Load()
			pool.run(active, limit)
			f.barrierWaitNS += time.Since(t0).Nanoseconds()
			f.workerBusyNS += pool.busyNS.Load() - busy0
		}
		for _, s := range active {
			fired := s.eng.Fired() - s.firedBase
			f.windowEvents += fired
			f.shardEvents[s.id] += fired
			f.shardWindows[s.id]++
		}
		f.rounds++
		f.advanceSum += limit - m
		if post != nil {
			post(limit)
		}
	}
	for _, s := range f.shards {
		s.eng.RunUntil(horizon)
	}
}

// workerPool is a persistent pool of goroutines that execute one window's
// active shards. Shards share no state, so any work distribution yields the
// same result; the atomic index is only load balancing.
type workerPool struct {
	wake   []chan struct{}
	wg     sync.WaitGroup
	idx    atomic.Int64
	active []*shard
	limit  sim.Time
	// busyNS accumulates wall time workers spent inside RunUntil — the
	// numerator of the pool's busy fraction. Wall clock only; never feeds
	// back into the simulation.
	busyNS atomic.Int64
}

func startPool(n int) *workerPool {
	p := &workerPool{wake: make([]chan struct{}, n)}
	for i := range p.wake {
		ch := make(chan struct{}, 1)
		p.wake[i] = ch
		go func() {
			for range ch {
				t0 := time.Now()
				for {
					j := int(p.idx.Add(1)) - 1
					if j >= len(p.active) {
						break
					}
					p.active[j].eng.RunUntil(p.limit)
				}
				p.busyNS.Add(time.Since(t0).Nanoseconds())
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes one window: workers drain the active list, and the call
// returns only when every shard has reached limit.
func (p *workerPool) run(active []*shard, limit sim.Time) {
	p.active, p.limit = active, limit
	p.idx.Store(0)
	n := len(p.wake)
	if n > len(active) {
		n = len(active)
	}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		p.wake[i] <- struct{}{}
	}
	p.wg.Wait()
}

func (p *workerPool) stop() {
	for _, ch := range p.wake {
		close(ch)
	}
}

// SingleEngine runs the identical window/mailbox semantics on one shared
// engine: shards are logical (per-source sequence counters and the shared
// mailbox), events from all shards interleave in one heap, and messages are
// still held back until the barrier that covers them. It exists as the
// validation reference for Fabric — the sharded fleet is byte-compared
// against it — and as a debugging mode where a single event loop is easier
// to step through.
type SingleEngine struct {
	eng       *sim.Engine
	lookahead sim.Time
	seqs      []uint64
	inbox     []message
	inboxMin  sim.Time
	rounds    uint64
	// Self-observability mirrors of Fabric's scalar aggregates — the same
	// windows, deliveries, and event counts by construction, so Stats()
	// matches the sharded fabric's deterministic fields exactly.
	delivered    uint64
	windowEvents uint64
	advanceSum   sim.Time
}

// NewSingleEngine returns the reference coupling over eng with nshards
// logical shards.
func NewSingleEngine(lookahead sim.Time, eng *sim.Engine, nshards int) *SingleEngine {
	if lookahead <= 0 {
		panic("pdes: lookahead must be positive — zero-latency coupling admits no conservative window")
	}
	return &SingleEngine{eng: eng, lookahead: lookahead, seqs: make([]uint64, nshards), inboxMin: maxTime}
}

// Rounds reports how many synchronization windows Run has executed.
func (se *SingleEngine) Rounds() uint64 { return se.rounds }

// Stats implements Net. Per-shard execution slices are nil: logical shards
// share one event heap, so "which shard ran this window" is not meaningful.
func (se *SingleEngine) Stats() Stats {
	st := Stats{
		Shards:            len(se.seqs),
		Lookahead:         se.lookahead,
		Rounds:            se.rounds,
		MessagesDelivered: se.delivered,
		WindowEvents:      se.windowEvents,
		AdvanceSum:        se.advanceSum,
	}
	for _, n := range se.seqs {
		st.MessagesSent += n
	}
	return st
}

// Send implements Net with the same causality guard as Fabric.
func (se *SingleEngine) Send(src, dst int, at sim.Time, fn func()) {
	if min := se.eng.Now() + se.lookahead; at < min {
		panic(fmt.Sprintf("pdes: shard %d sends at %v < now %v + lookahead %v — causality violation",
			src, at, se.eng.Now(), se.lookahead))
	}
	se.inbox = append(se.inbox, message{at: at, src: int32(src), dst: int32(dst), seq: se.seqs[src], fn: fn})
	se.seqs[src]++
	if at < se.inboxMin {
		se.inboxMin = at
	}
}

// Run implements Net: the same round structure as Fabric.Run — compute the
// bound, deliver due messages in canonical order, run the window, snapshot —
// with the one shared engine playing every shard.
func (se *SingleEngine) Run(horizon sim.Time, post func(barrier sim.Time)) {
	for {
		m := se.inboxMin
		if at, ok := se.eng.NextEventAt(); ok && at < m {
			m = at
		}
		if m > horizon {
			break
		}
		limit := m + se.lookahead
		if limit > horizon || limit < m {
			limit = horizon
		}
		se.delivered += se.deliver(limit)
		firedBase := se.eng.Fired()
		se.eng.RunUntil(limit)
		se.windowEvents += se.eng.Fired() - firedBase
		se.rounds++
		se.advanceSum += limit - m
		if post != nil {
			post(limit)
		}
	}
	se.eng.RunUntil(horizon)
}

// deliver mirrors shard.deliver on the shared mailbox: the global canonical
// sort keeps each destination's subsequence in (at, src, seq) order, which
// is all the per-engine semantics require.
func (se *SingleEngine) deliver(limit sim.Time) uint64 {
	var due []message
	kept := se.inbox[:0]
	min := maxTime
	for _, m := range se.inbox {
		if m.at <= limit {
			due = append(due, m)
		} else {
			kept = append(kept, m)
			if m.at < min {
				min = m.at
			}
		}
	}
	se.inbox, se.inboxMin = kept, min
	byCanonicalOrder(due)
	for _, m := range due {
		se.eng.At(m.at, m.fn)
	}
	return uint64(len(due))
}
