package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleMean(d Dist, n int, seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{V: 42}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 42 {
			t.Fatal("deterministic varied")
		}
	}
	if d.Mean() != 42 || d.Name() != "deterministic" {
		t.Fatal("metadata wrong")
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{MeanV: 120}
	got := sampleMean(d, 200000, 1)
	if math.Abs(got-120)/120 > 0.02 {
		t.Fatalf("exp sample mean = %v, want ~120", got)
	}
	if d.Mean() != 120 {
		t.Fatal("Mean()")
	}
}

func TestLognormalMean(t *testing.T) {
	d := Lognormal{MeanV: 100, Sigma: 1.0}
	got := sampleMean(d, 400000, 2)
	if math.Abs(got-100)/100 > 0.05 {
		t.Fatalf("lognormal sample mean = %v, want ~100", got)
	}
	// Lognormal should have a heavy right tail: P99 >> mean.
	r := rand.New(rand.NewSource(3))
	var over int
	for i := 0; i < 100000; i++ {
		if d.Sample(r) > 300 {
			over++
		}
	}
	if over == 0 {
		t.Fatal("lognormal has no tail")
	}
}

func TestBimodal(t *testing.T) {
	d := Bimodal{Lo: 10, Hi: 100, PLo: 0.9}
	if want := 0.9*10 + 0.1*100; d.Mean() != want {
		t.Fatalf("Mean = %v, want %v", d.Mean(), want)
	}
	r := rand.New(rand.NewSource(4))
	lo, hi := 0, 0
	for i := 0; i < 100000; i++ {
		switch d.Sample(r) {
		case 10:
			lo++
		case 100:
			hi++
		default:
			t.Fatal("bimodal produced a third value")
		}
	}
	frac := float64(lo) / float64(lo+hi)
	if math.Abs(frac-0.9) > 0.01 {
		t.Fatalf("lo fraction = %v", frac)
	}
}

func TestUniform(t *testing.T) {
	d := Uniform{Lo: 5, Hi: 15}
	if d.Mean() != 10 {
		t.Fatal("Mean")
	}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		x := d.Sample(r)
		if x < 5 || x >= 15 {
			t.Fatalf("uniform out of range: %v", x)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"exponential", "exp", "lognormal", "lgn", "bimodal", "bim", "deterministic", "det"} {
		d, err := ByName(name, 50)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if math.Abs(d.Mean()-50)/50 > 1e-9 {
			t.Fatalf("ByName(%q).Mean() = %v, want 50", name, d.Mean())
		}
	}
	if _, err := ByName("cauchy", 1); err == nil {
		t.Fatal("unknown name did not error")
	}
}

func TestBimodalByNameShape(t *testing.T) {
	d, _ := ByName("bimodal", 100)
	b := d.(Bimodal)
	if b.Hi != 10*b.Lo {
		t.Fatalf("Hi = %v, Lo = %v", b.Hi, b.Lo)
	}
	if b.PLo != 0.995 {
		t.Fatalf("PLo = %v", b.PLo)
	}
}

func TestPoissonGapMean(t *testing.T) {
	p := Poisson{Rate: 1000}
	r := rand.New(rand.NewSource(6))
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += p.NextGap(r)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.001)/0.001 > 0.02 {
		t.Fatalf("gap mean = %v, want ~0.001", mean)
	}
	if g := (Poisson{Rate: 0}).NextGap(r); !math.IsInf(g, 1) {
		t.Fatalf("zero-rate gap = %v", g)
	}
}

func TestPoissonCount(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, mean := range []float64{0.5, 3, 50, 800} {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += float64(PoissonCount(r, mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("PoissonCount mean for %v = %v", mean, got)
		}
	}
	if PoissonCount(r, 0) != 0 || PoissonCount(r, -1) != 0 {
		t.Fatal("nonpositive mean should give 0")
	}
}

func TestMMPP2MeanRate(t *testing.T) {
	m := &MMPP2{RateLo: 400, RateHi: 2000, MeanDwellLo: 0.9, MeanDwellHi: 0.1}
	want := (400*0.9 + 2000*0.1) / 1.0
	if math.Abs(m.MeanRate()-want) > 1e-9 {
		t.Fatalf("MeanRate = %v, want %v", m.MeanRate(), want)
	}
	// Empirical rate over simulated time should approach MeanRate.
	r := rand.New(rand.NewSource(8))
	var elapsed float64
	n := 200000
	for i := 0; i < n; i++ {
		elapsed += m.NextGap(r)
	}
	got := float64(n) / elapsed
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("empirical rate = %v, want ~%v", got, want)
	}
}

func TestMMPP2Burstiness(t *testing.T) {
	// Count arrivals per 1-second window; the MMPP should show much higher
	// variance across windows than a Poisson of the same mean rate.
	m := &MMPP2{RateLo: 300, RateHi: 1800, MeanDwellLo: 2.0, MeanDwellHi: 0.4}
	r := rand.New(rand.NewSource(9))
	counts := windowCounts(func() float64 { return m.NextGap(r) }, 200)
	p := Poisson{Rate: m.MeanRate()}
	r2 := rand.New(rand.NewSource(9))
	pcounts := windowCounts(func() float64 { return p.NextGap(r2) }, 200)
	if varOf(counts) < 3*varOf(pcounts) {
		t.Fatalf("MMPP not bursty: var %v vs poisson var %v", varOf(counts), varOf(pcounts))
	}
}

func windowCounts(next func() float64, windows int) []float64 {
	counts := make([]float64, windows)
	t := 0.0
	for {
		t += next()
		w := int(t)
		if w >= windows {
			return counts
		}
		counts[w]++
	}
}

func varOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return v / float64(len(xs))
}

func TestZipfSkew(t *testing.T) {
	z := Zipf{N: 100, S: 1.2}
	r := rand.New(rand.NewSource(10))
	s := z.Sampler(r)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[s.Uint64()]++
	}
	if counts[0] <= counts[50] {
		t.Fatal("zipf not skewed toward low ranks")
	}
	// s <= 1 falls back to a legal exponent rather than panicking.
	z2 := Zipf{N: 10, S: 0.5}
	if z2.Sampler(r) == nil {
		t.Fatal("fallback sampler nil")
	}
}

// Property: all distributions produce nonnegative samples.
func TestNonnegativeProperty(t *testing.T) {
	dists := []Dist{
		Exponential{MeanV: 10},
		Lognormal{MeanV: 10, Sigma: 1.5},
		Bimodal{Lo: 1, Hi: 100, PLo: 0.99},
		Uniform{Lo: 0, Hi: 5},
		Deterministic{V: 3},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, d := range dists {
			for i := 0; i < 100; i++ {
				if d.Sample(r) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
