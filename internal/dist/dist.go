// Package dist provides the random-variate generators used by the workload
// models: service-time distributions (exponential, lognormal, bimodal,
// deterministic — paper §5 and §6.7), arrival processes (Poisson open-loop
// clients, and a two-state MMPP for the bursty Alibaba-like traces of §3.2),
// and a Zipf sampler for skewed service popularity.
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist draws nonnegative values (our service times are durations).
type Dist interface {
	Sample(r *rand.Rand) float64
	// Mean returns the distribution's analytic mean.
	Mean() float64
	// Name identifies the distribution in reports.
	Name() string
}

// Deterministic always returns V.
type Deterministic struct{ V float64 }

// Sample implements Dist.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.V }

// Mean implements Dist.
func (d Deterministic) Mean() float64 { return d.V }

// Name implements Dist.
func (d Deterministic) Name() string { return "deterministic" }

// Exponential has rate 1/MeanV.
type Exponential struct{ MeanV float64 }

// Sample implements Dist.
func (d Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() * d.MeanV }

// Mean implements Dist.
func (d Exponential) Mean() float64 { return d.MeanV }

// Name implements Dist.
func (d Exponential) Name() string { return "exponential" }

// Lognormal is parameterized by its *target* mean and the sigma of the
// underlying normal, matching how scheduling papers (e.g. Shinjuku) specify
// "lognormal service times with mean m": mu is derived so E[X] = MeanV.
type Lognormal struct {
	MeanV float64
	Sigma float64
}

// Sample implements Dist.
func (d Lognormal) Sample(r *rand.Rand) float64 {
	mu := math.Log(d.MeanV) - d.Sigma*d.Sigma/2
	return math.Exp(mu + d.Sigma*r.NormFloat64())
}

// Mean implements Dist.
func (d Lognormal) Mean() float64 { return d.MeanV }

// Name implements Dist.
func (d Lognormal) Name() string { return "lognormal" }

// Bimodal returns Lo with probability PLo, otherwise Hi. This is the classic
// heavy-tail stressor: mostly-short requests with occasional long ones.
type Bimodal struct {
	Lo, Hi float64
	PLo    float64
}

// Sample implements Dist.
func (d Bimodal) Sample(r *rand.Rand) float64 {
	if r.Float64() < d.PLo {
		return d.Lo
	}
	return d.Hi
}

// Mean implements Dist.
func (d Bimodal) Mean() float64 { return d.PLo*d.Lo + (1-d.PLo)*d.Hi }

// Name implements Dist.
func (d Bimodal) Name() string { return "bimodal" }

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (d Uniform) Sample(r *rand.Rand) float64 { return d.Lo + (d.Hi-d.Lo)*r.Float64() }

// Mean implements Dist.
func (d Uniform) Mean() float64 { return (d.Lo + d.Hi) / 2 }

// Name implements Dist.
func (d Uniform) Name() string { return "uniform" }

// ByName constructs one of the three synthetic distributions of paper §6.7
// with the given mean: "exponential", "lognormal" (sigma 1.0, matching a
// high-variance tail), or "bimodal" (99.5% short, 0.5% 10×-long, as in the
// Shinjuku methodology the paper cites).
func ByName(name string, mean float64) (Dist, error) {
	switch name {
	case "exponential", "exp":
		return Exponential{MeanV: mean}, nil
	case "lognormal", "lgn":
		return Lognormal{MeanV: mean, Sigma: 1.0}, nil
	case "bimodal", "bim":
		// Solve lo from mean = p*lo + (1-p)*10*lo with p = 0.995.
		p := 0.995
		lo := mean / (p + (1-p)*10)
		return Bimodal{Lo: lo, Hi: 10 * lo, PLo: p}, nil
	case "deterministic", "det":
		return Deterministic{V: mean}, nil
	default:
		return nil, fmt.Errorf("dist: unknown distribution %q", name)
	}
}

// Poisson is an open-loop Poisson arrival process: NextGap returns the gap
// to the next arrival for rate events/second, in seconds.
type Poisson struct{ Rate float64 }

// NextGap draws the next interarrival gap in seconds.
func (p Poisson) NextGap(r *rand.Rand) float64 {
	if p.Rate <= 0 {
		return math.Inf(1)
	}
	return r.ExpFloat64() / p.Rate
}

// PoissonCount draws a Poisson-distributed count with the given mean using
// inversion for small means and the normal approximation above 500 (counts
// that large only occur in the trace generator where ±1 is irrelevant).
func PoissonCount(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		n := int(mean + math.Sqrt(mean)*r.NormFloat64() + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// MMPP2 is a two-state Markov-modulated Poisson process: a LOW state with
// RateLo and a burst state with RateHi; dwell times in each state are
// exponential with the given means (seconds). It is the arrival model for
// the bursty per-server load of paper §3.2 (Fig 2).
type MMPP2 struct {
	RateLo, RateHi     float64
	MeanDwellLo        float64
	MeanDwellHi        float64
	inBurst            bool
	stateTimeRemaining float64
}

// NextGap returns the next interarrival gap in seconds, advancing the
// modulating chain as virtual time passes.
func (m *MMPP2) NextGap(r *rand.Rand) float64 {
	total := 0.0
	for {
		if m.stateTimeRemaining <= 0 {
			m.inBurst = !m.inBurst
			if m.inBurst {
				m.stateTimeRemaining = r.ExpFloat64() * m.MeanDwellHi
			} else {
				m.stateTimeRemaining = r.ExpFloat64() * m.MeanDwellLo
			}
		}
		rate := m.RateLo
		if m.inBurst {
			rate = m.RateHi
		}
		gap := r.ExpFloat64() / rate
		if gap <= m.stateTimeRemaining {
			m.stateTimeRemaining -= gap
			return total + gap
		}
		// The state flips before the putative arrival: consume the dwell
		// remainder and redraw in the new state (memorylessness makes this
		// exact).
		total += m.stateTimeRemaining
		m.stateTimeRemaining = 0
	}
}

// MeanRate returns the long-run average arrival rate.
func (m *MMPP2) MeanRate() float64 {
	wLo, wHi := m.MeanDwellLo, m.MeanDwellHi
	return (m.RateLo*wLo + m.RateHi*wHi) / (wLo + wHi)
}

// Zipf draws values in [0, N) with P(k) proportional to 1/(k+1)^S.
// It wraps math/rand's sampler with a friendlier constructor.
type Zipf struct {
	N int
	S float64
}

// Sampler materializes the sampler against a specific stream.
func (z Zipf) Sampler(r *rand.Rand) *rand.Zipf {
	s := z.S
	if s <= 1 {
		s = 1.01 // rand.NewZipf requires s > 1
	}
	return rand.NewZipf(r, s, 1, uint64(z.N-1))
}
