package umanycore

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (DESIGN.md §3 maps each to its experiment). Each
// benchmark regenerates its figure at reduced fidelity and reports the
// figure's headline number as a custom metric, so `go test -bench=.`
// doubles as a quick reproduction check. cmd/umbench runs the same
// experiments at full fidelity.

import (
	"fmt"
	"testing"

	"umanycore/internal/experiments"
	"umanycore/internal/icn"
	"umanycore/internal/power"
	"umanycore/internal/stats"
	"umanycore/internal/uarch"
	"umanycore/internal/workload"
)

// benchOptions returns fast experiment settings for benchmarking.
func benchOptions() ExperimentOptions {
	o := experiments.DefaultOptions()
	o.Duration = 80 * Millisecond
	o.Warmup = 15 * Millisecond
	o.Drain = 300 * Millisecond
	return o
}

// BenchmarkFig01MicroarchOptimizations regenerates Figure 1 and reports the
// monolithic-vs-microservice speedup gap of the data prefetcher.
func BenchmarkFig01MicroarchOptimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := uarch.RunFig1(60000, 42)
		var mono, micro float64
		for _, r := range rows {
			if r.Optimization == "D-Prefetcher" {
				if r.Class == uarch.Monolithic {
					mono = r.Speedup
				} else {
					micro = r.Speedup
				}
			}
		}
		b.ReportMetric(mono, "mono-speedup")
		b.ReportMetric(micro, "micro-speedup")
	}
}

// BenchmarkFig02ServerLoadCDF regenerates Figure 2 and reports the fraction
// of seconds at ≥1000 RPS (paper: ≈20%).
func BenchmarkFig02ServerLoadCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := Fig2(benchOptions())
		for _, p := range pts {
			if p.X == 1000 {
				b.ReportMetric(1-p.P, "frac>=1000rps")
			}
		}
	}
}

// BenchmarkFig03QueueCount regenerates Figure 3 and reports the
// per-core-queue tail inflation over the 32-queue sweet spot (paper: 4.1×).
func BenchmarkFig03QueueCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3(benchOptions())
		var q1024, q32 float64
		for _, r := range rows {
			switch r.Queues {
			case 1024:
				q1024 = r.TailMicros
			case 32:
				q32 = r.TailMicros
			}
		}
		b.ReportMetric(stats.Ratio(q1024, q32), "percore-tail-inflation")
	}
}

// BenchmarkFig04CPUUtilCDF regenerates Figure 4 and reports the median
// per-request CPU utilization (paper: ≈0.14).
func BenchmarkFig04CPUUtilCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := workload.NewTraceGen(42)
		var s stats.Sample
		for _, r := range g.Requests(50000) {
			s.Add(r.CPUUtil)
		}
		b.ReportMetric(s.Median(), "median-cpu-util")
	}
}

// BenchmarkFig05RPCCDF regenerates Figure 5 and reports the median RPC
// count per request (paper: ≈4.2).
func BenchmarkFig05RPCCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := workload.NewTraceGen(43)
		var s stats.Sample
		for _, r := range g.Requests(50000) {
			s.Add(float64(r.RPCs))
		}
		b.ReportMetric(s.Median(), "median-rpcs")
	}
}

// BenchmarkFig06ContextSwitch regenerates Figure 6 and reports the
// 8192-cycle tail inflation at 50K RPS (paper: 26–38× for Linux-scale CS).
func BenchmarkFig06ContextSwitch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(benchOptions())
		for _, r := range rows {
			if r.CSCycles == 8192 {
				b.ReportMetric(r.NormTail[50000], "linux-cs-inflation-50k")
			}
		}
	}
}

// BenchmarkFig07ICNContention regenerates Figure 7 and reports the mesh
// tail inflation at 50K RPS (paper: 14.7×).
func BenchmarkFig07ICNContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7(benchOptions())
		last := rows[len(rows)-1]
		b.ReportMetric(last.MeshNorm, "mesh-inflation-50k")
		b.ReportMetric(last.FatTreeNorm, "fattree-inflation-50k")
	}
}

// BenchmarkFig08FootprintSharing regenerates Figure 8 and reports the
// handler-handler data-page sharing fraction (paper: 78–99%).
func BenchmarkFig08FootprintSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Fig8(benchOptions())
		b.ReportMetric(rows[0].DPage, "hh-dpage-shared")
	}
}

// BenchmarkFig09CacheHitRates regenerates Figure 9 and reports the data L1
// cache hit rate (paper: >95%).
func BenchmarkFig09CacheHitRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range Fig9(benchOptions()) {
			if r.Class == "Data" && r.Structure == "L1Cache" {
				b.ReportMetric(r.HitRate, "data-l1-hit-rate")
			}
		}
	}
}

// BenchmarkFig14TailLatency regenerates the Figure 14 grid and reports the
// mean tail reduction over ServerClass at 15K RPS (paper: 16.7×).
func BenchmarkFig14TailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := EndToEnd(benchOptions())
		for _, red := range Reductions(rows, "tail") {
			if red.Baseline == "ServerClass-40" {
				b.ReportMetric(red.ByLoad[15000], "tail-reduction-15k")
			}
		}
	}
}

// BenchmarkFig15Breakdown regenerates Figure 15 and reports the full-ladder
// tail reduction over ScaleOut (paper: 7.4×).
func BenchmarkFig15Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Fig15(benchOptions())
		_, _, _, hwcs := Fig15Average(rows)
		b.ReportMetric(hwcs, "ladder-reduction")
	}
}

// BenchmarkFig16AvgLatency regenerates the Figure 16 series and reports the
// mean average-latency reduction over ScaleOut at 15K (paper: 3.2×).
func BenchmarkFig16AvgLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := EndToEnd(benchOptions())
		for _, red := range Reductions(rows, "avg") {
			if red.Baseline == "ScaleOut" {
				b.ReportMetric(red.ByLoad[15000], "avg-reduction-15k")
			}
		}
	}
}

// BenchmarkFig17TailToAvg regenerates the Figure 17 metric and reports
// μManycore's mean tail-to-average ratio across apps at 15K.
func BenchmarkFig17TailToAvg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := EndToEnd(benchOptions())
		var umc, sc []float64
		for _, r := range rows {
			if r.RPS != 15000 {
				continue
			}
			switch r.Arch {
			case "uManycore":
				umc = append(umc, r.TailToAvg)
			case "ServerClass-40":
				sc = append(sc, r.TailToAvg)
			}
		}
		b.ReportMetric(stats.Mean(umc), "umc-tail-to-avg")
		b.ReportMetric(stats.Mean(sc), "sc-tail-to-avg")
	}
}

// BenchmarkFig18Throughput regenerates Figure 18 on a two-app subset and
// reports μManycore's QoS-safe throughput advantage (paper: 15.5× over
// ServerClass).
func BenchmarkFig18Throughput(b *testing.B) {
	o := benchOptions()
	o.Apps = o.Apps[:0]
	for _, a := range workload.SocialNetworkApps() {
		if a.Name == "HomeT" || a.Name == "UrlShort" {
			o.Apps = append(o.Apps, a)
		}
	}
	for i := 0; i < b.N; i++ {
		rows := Fig18(o)
		perArch := map[string][]float64{}
		for _, r := range rows {
			perArch[r.Arch] = append(perArch[r.Arch], r.MaxRPS)
		}
		umc := stats.Mean(perArch["uManycore"])
		sc := stats.Mean(perArch["ServerClass-40"])
		b.ReportMetric(umc, "umc-max-rps")
		b.ReportMetric(stats.Ratio(umc, sc), "throughput-advantage")
	}
}

// BenchmarkFig19Sensitivity regenerates Figure 19 and reports the widest
// per-config deviation from the default topology (paper: within ~15%).
func BenchmarkFig19Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Fig19(benchOptions())
		var worst float64 = 1
		for _, r := range rows {
			for _, v := range r.NormTail {
				if v > worst {
					worst = v
				}
			}
		}
		b.ReportMetric(worst, "worst-config-norm-tail")
	}
}

// BenchmarkFig20Synthetic regenerates Figure 20 and reports μManycore's
// mean tail reduction over ServerClass across distributions and loads
// (paper: 9.1×).
func BenchmarkFig20Synthetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Fig20(benchOptions())
		var ratios []float64
		for _, r := range rows {
			if r.UManycoreTail > 0 {
				ratios = append(ratios, r.ServerClassTail/r.UManycoreTail)
			}
		}
		b.ReportMetric(stats.Mean(ratios), "synthetic-tail-reduction")
	}
}

// BenchmarkSec68IsoArea regenerates §6.8 and reports the iso-area tail and
// power ratios (paper: 7.3× and 3.2×).
func BenchmarkSec68IsoArea(b *testing.B) {
	o := benchOptions()
	o.Loads = []float64{15000}
	for i := 0; i < b.N; i++ {
		res := Sec68(o)
		b.ReportMetric(res.MeanTailRatio, "iso-area-tail-ratio")
		b.ReportMetric(res.PowerRatio, "iso-area-power-ratio")
	}
}

// BenchmarkPowerModel evaluates the CACTI/McPAT stand-in and reports the
// anchored per-core powers (§5).
func BenchmarkPowerModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := power.CorePower(power.ServerClassCore())
		umc := power.CorePower(power.UManycoreCore())
		b.ReportMetric(sc, "serverclass-core-w")
		b.ReportMetric(umc, "umanycore-core-w")
	}
}

// BenchmarkEndToEndGridWorkers times the Figures 14/16/17 grid at several
// sweep worker counts. The ns/op ratio between workers=1 and workers=8 is
// the sweep runner's wall-clock speedup; the rows are bit-identical across
// entries (TestEndToEndParallelDeterminism), so only the timing differs.
func BenchmarkEndToEndGridWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := benchOptions()
			o.Parallel = workers
			for i := 0; i < b.N; i++ {
				if rows := EndToEnd(o); len(rows) == 0 {
					b.Fatal("empty grid")
				}
			}
		})
	}
}

// BenchmarkFleetShardWorkers times one coupled 16-server fleet simulation
// at several PDES shard worker counts and reports events/second — the
// within-simulation parallelism counterpart of BenchmarkEndToEndGridWorkers
// (which parallelizes across independent simulations). Results are
// bit-identical across entries (fleet's TestShardWorkerInvariance), so only
// the timing differs; on a single-CPU host the curve shows pool overhead,
// not speedup.
func BenchmarkFleetShardWorkers(b *testing.B) {
	app := SocialNetworkApps()[0]
	// -1 is the single-engine reference execution: its gap to workers=1
	// is the cost of the fabric's window machinery itself.
	for _, workers := range []int{-1, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			fc := DefaultFleet(UManycore())
			fc.Servers = 16
			fc.CrossServerFrac = 0.1
			fc.LB = "p2c"
			fc.ShardWorkers = workers
			var events uint64
			for i := 0; i < b.N; i++ {
				res := RunFleet(fc, app, 16*8000, RunConfig{
					RPS: 16 * 8000, Duration: 60 * Millisecond,
					Warmup: 10 * Millisecond, Drain: 300 * Millisecond,
					Seed: int64(i + 1),
				}, int64(i+1))
				events += res.EventsProcessed
				b.ReportMetric(float64(res.EventsProcessed)/res.WallSeconds, "events/sec")
			}
			if events == 0 {
				b.Fatal("no events processed")
			}
		})
	}
}

// BenchmarkFig3Workers times the Figure 3 queue sweep (22 cells) at 1 vs all
// workers — the Map2 counterpart of BenchmarkEndToEndGridWorkers.
func BenchmarkFig3Workers(b *testing.B) {
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := benchOptions()
			o.Parallel = workers
			for i := 0; i < b.N; i++ {
				if rows := experiments.Fig3(o); len(rows) == 0 {
					b.Fatal("empty sweep")
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: events per
// second for a mixed 15K-RPS μManycore run (a performance, not a
// reproduction, benchmark).
func BenchmarkSimulatorThroughput(b *testing.B) {
	apps := SocialNetworkApps()
	var events uint64
	for i := 0; i < b.N; i++ {
		res := Run(UManycore(), RunConfig{
			App: apps[0], Mix: SocialNetworkMix(),
			RPS: 15000, Duration: 100 * Millisecond,
			Warmup: 20 * Millisecond, Drain: 300 * Millisecond,
			Seed: int64(i + 1),
		})
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// --- Ablation benchmarks for the design options DESIGN.md calls out ---

// BenchmarkAblationRQPartition compares co-located villages with a shared
// RQ against the §4.3 partitioned-RQ design (RQ_Map) and reports both
// tails.
func BenchmarkAblationRQPartition(b *testing.B) {
	apps := SocialNetworkApps()
	run := func(partition bool, seed int64) float64 {
		cfg := UManycore()
		cfg.Extensions.ColocatedServices = 2
		cfg.Extensions.PartitionRQ = partition
		res := Run(cfg, RunConfig{
			App: apps[0], Mix: SocialNetworkMix(),
			RPS: 20000, Duration: 120 * Millisecond,
			Warmup: 20 * Millisecond, Drain: 400 * Millisecond, Seed: seed,
		})
		return res.Latency.P99
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false, int64(i+1)), "shared-rq-p99-us")
		b.ReportMetric(run(true, int64(i+1)), "partitioned-rq-p99-us")
	}
}

// BenchmarkAblationCoreStealing measures the §8 core-stealing extension
// under co-location.
func BenchmarkAblationCoreStealing(b *testing.B) {
	apps := SocialNetworkApps()
	run := func(steal bool, seed int64) float64 {
		cfg := UManycore()
		cfg.Extensions.ColocatedServices = 2
		cfg.Extensions.CoreStealing = steal
		res := Run(cfg, RunConfig{
			App: apps[0], Mix: SocialNetworkMix(),
			RPS: 20000, Duration: 120 * Millisecond,
			Warmup: 20 * Millisecond, Drain: 400 * Millisecond, Seed: seed,
		})
		return res.Latency.P99
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false, int64(i+1)), "no-steal-p99-us")
		b.ReportMetric(run(true, int64(i+1)), "steal-p99-us")
	}
}

// BenchmarkAblationHeterogeneousVillages measures the §8 heterogeneous
// village extension (a quarter of villages with ServerClass-speed cores).
func BenchmarkAblationHeterogeneousVillages(b *testing.B) {
	apps := SocialNetworkApps()
	run := func(hetero bool, seed int64) float64 {
		cfg := UManycore()
		if hetero {
			cfg.Extensions.BigVillageFrac = 0.25
			cfg.Extensions.BigCorePerf = 1.65
		}
		res := Run(cfg, RunConfig{
			App: apps[0], Mix: SocialNetworkMix(),
			RPS: 15000, Duration: 120 * Millisecond,
			Warmup: 20 * Millisecond, Drain: 400 * Millisecond, Seed: seed,
		})
		return res.Latency.P99
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false, int64(i+1)), "homogeneous-p99-us")
		b.ReportMetric(run(true, int64(i+1)), "heterogeneous-p99-us")
	}
}

// BenchmarkAblationWorkStealingQueues measures Fig 3's work-stealing rescue
// of per-core queues.
func BenchmarkAblationWorkStealingQueues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3(benchOptions())
		for _, r := range rows {
			if r.Queues == 1024 {
				b.ReportMetric(r.TailMicros, "percore-p99-us")
				b.ReportMetric(r.TailStealMicros, "percore-steal-p99-us")
			}
		}
	}
}

// BenchmarkAblationECMPPolicy compares random vs least-loaded spine
// selection in the leaf-spine ICN.
func BenchmarkAblationECMPPolicy(b *testing.B) {
	apps := SocialNetworkApps()
	run := func(leastLoaded bool, seed int64) float64 {
		cfg := UManycore()
		if leastLoaded {
			cfg.LeafSpineCfg.Select = icn.LeastLoadedSpine
		}
		res := Run(cfg, RunConfig{
			App: apps[0], Mix: SocialNetworkMix(),
			RPS: 50000, Duration: 120 * Millisecond,
			Warmup: 20 * Millisecond, Drain: 400 * Millisecond, Seed: seed,
		})
		return res.Latency.P99
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false, int64(i+1)), "random-ecmp-p99-us")
		b.ReportMetric(run(true, int64(i+1)), "leastloaded-ecmp-p99-us")
	}
}

// BenchmarkAblationLossyStorage measures tail sensitivity to storage-network
// loss through the R-NIC's retransmission path (§4.1's lossy-transport
// model).
func BenchmarkAblationLossyStorage(b *testing.B) {
	apps := SocialNetworkApps()
	run := func(loss float64, seed int64) float64 {
		cfg := UManycore()
		cfg.StorageLossProb = loss
		res := Run(cfg, RunConfig{
			App: apps[0], Mix: SocialNetworkMix(),
			RPS: 15000, Duration: 120 * Millisecond,
			Warmup: 20 * Millisecond, Drain: 400 * Millisecond, Seed: seed,
		})
		return res.Latency.P99
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(0, int64(i+1)), "lossless-p99-us")
		b.ReportMetric(run(0.02, int64(i+1)), "loss2pct-p99-us")
	}
}

// BenchmarkMuSuite runs the μSuite mix (the paper's second benchmark suite)
// across the three architectures at 15K RPS and reports P99s.
func BenchmarkMuSuite(b *testing.B) {
	apps := MuSuiteApps()
	run := func(cfg Config, seed int64) float64 {
		res := Run(cfg, RunConfig{
			App: apps[0], Mix: MuSuiteMix(),
			RPS: 15000, Duration: 120 * Millisecond,
			Warmup: 20 * Millisecond, Drain: 400 * Millisecond, Seed: seed,
		})
		return res.Latency.P99
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(ServerClass(40), int64(i+1)), "serverclass-p99-us")
		b.ReportMetric(run(ScaleOut(), int64(i+1)), "scaleout-p99-us")
		b.ReportMetric(run(UManycore(), int64(i+1)), "umanycore-p99-us")
	}
}
