// Package umanycore is a from-scratch reproduction of "μManycore: A
// Cloud-Native CPU for Tail at Scale" (Stojkovic, Liu, Shahbaz, Torrellas —
// ISCA 2023): a discrete-event architectural simulator for the 1024-core
// μManycore processor (hardware cache-coherent villages, a hierarchical
// leaf-spine on-package interconnect, hardware request queuing/scheduling,
// and hardware context switching), its two baselines (the 40/128-core
// ServerClass multicore and the 1024-core ScaleOut manycore), and the full
// microservice workload and measurement methodology of the paper's
// evaluation.
//
// # Quick start
//
//	cfg := umanycore.UManycore()
//	apps := umanycore.SocialNetworkApps()
//	res := umanycore.Run(cfg, umanycore.RunConfig{
//		App: apps[0], RPS: 15000,
//	})
//	fmt.Printf("p99 = %.0fµs\n", res.Latency.P99)
//
// # Reproducing the paper
//
// Every table and figure of the evaluation has a regeneration function
// (Fig1 … Fig20, EndToEnd, Sec68) driven by ExperimentOptions; cmd/umbench
// prints them all as text tables, and bench_test.go exposes each as a Go
// benchmark. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// measured-vs-paper results.
package umanycore

import (
	"io"

	"umanycore/internal/control"
	"umanycore/internal/experiments"
	"umanycore/internal/fleet"
	"umanycore/internal/machine"
	"umanycore/internal/obs"
	"umanycore/internal/pdes"
	"umanycore/internal/power"
	"umanycore/internal/sim"
	"umanycore/internal/stats"
	"umanycore/internal/svcgraph"
	"umanycore/internal/telemetry"
	"umanycore/internal/whatif"
	"umanycore/internal/workload"
)

// Version identifies this reproduction release.
const Version = "1.0.0"

// Core simulation types.
type (
	// Time is the simulation clock in picoseconds.
	Time = sim.Time
	// Config parameterizes a simulated server (cores, domains, scheduling
	// policy, interconnect, coherence, NIC/RPC costs).
	Config = machine.Config
	// RunConfig drives one open-loop experiment.
	RunConfig = machine.RunConfig
	// Result summarizes one run: latency distribution, per-request-type
	// summaries, utilization, ICN statistics.
	Result = machine.Result
	// Summary is a compact latency record (mean / median / P99 / max).
	Summary = stats.Summary
	// ExtensionConfig enables the optional features beyond the paper's
	// evaluated design: service co-location, RQ partitioning, core
	// stealing, heterogeneous villages (set on Config.Extensions).
	ExtensionConfig = machine.ExtensionConfig
	// Sample is a raw latency sample with exact quantiles.
	Sample = stats.Sample
)

// Observability types (see OBSERVABILITY.md).
type (
	// ObsOptions selects which observability components a run enables
	// (set on RunConfig.Obs; nil disables the layer at zero cost).
	ObsOptions = obs.Options
	// ObsRun bundles a run's recorded spans and metrics snapshot.
	ObsRun = obs.Run
	// Span is one recorded interval of a request's trace tree.
	Span = obs.Span
	// BlameReport is the tail-blame breakdown over traced requests.
	BlameReport = obs.Report
	// BlameSummary is a BlameReport's cacheable aggregate core.
	BlameSummary = obs.BlameSummary
	// BlameDiff is a differential blame report: how critical-path
	// attribution migrates between two analyses of the same workload.
	BlameDiff = obs.ReportDiff
	// StageSpeedups virtually accelerates pipeline stages for causal
	// profiling (set on Config.WhatIf or FleetConfig.WhatIf; each field
	// removes that fraction of the stage's configured cost).
	StageSpeedups = machine.StageSpeedups
	// WhatIfTarget selects the system a causal-profiling grid studies.
	WhatIfTarget = whatif.Target
	// WhatIfOptions tunes the causal-profiling grid.
	WhatIfOptions = whatif.Options
	// WhatIfReport is the full what-if sensitivity study.
	WhatIfReport = whatif.Report
)

// DefaultObs enables both tracing and metrics for a run:
//
//	rc.Obs = umanycore.DefaultObs()
func DefaultObs() *ObsOptions { return obs.DefaultOptions() }

// Streaming telemetry types (see OBSERVABILITY.md).
type (
	// TelemetryOptions configures the streaming telemetry sampler (set on
	// RunConfig.Telemetry; nil disables the layer at zero cost).
	TelemetryOptions = telemetry.Options
	// TelemetryRun bundles a run's time series, latency sketch and
	// watchdog alerts.
	TelemetryRun = telemetry.Run
	// SLORule is one windowed watchdog condition.
	SLORule = telemetry.Rule
	// SLOAlert is one watchdog fire/resolve transition at virtual time.
	SLOAlert = telemetry.Alert
	// Sketch is a mergeable relative-error quantile sketch.
	Sketch = stats.Sketch
)

// DefaultTelemetry enables the streaming sampler with its defaults (1ms
// interval, 4096-point rings, 1% sketch error) and the standard SLO
// watchdog against a P99 objective in microseconds:
//
//	rc.Telemetry = umanycore.DefaultTelemetry(500)
func DefaultTelemetry(p99TargetMicros float64) *TelemetryOptions {
	o := telemetry.DefaultOptions()
	o.Rules = telemetry.DefaultRules(p99TargetMicros)
	return o
}

// AnalyzeTail extracts the per-stage tail-blame report for the slowest
// topFrac of traced requests (0.01 = the paper-style slowest 1%).
func AnalyzeTail(spans []Span, topFrac float64) *BlameReport {
	return obs.Analyze(spans, topFrac)
}

// DiffBlame builds the differential blame report between two tail analyses
// of the same workload (base first, variant second): per-stage and
// per-server critical-path attribution before and after, telescoping to
// the end-to-end mean change (see OBSERVABILITY.md).
func DiffBlame(base, variant *BlameReport) *BlameDiff {
	return obs.DiffReports(base, variant)
}

// RunWhatIf executes a paired-seed causal-profiling grid: the target
// re-simulated under virtual per-stage speedups, each row reporting the
// stage's blame share next to the tail improvement actually bought.
func RunWhatIf(t WhatIfTarget, o WhatIfOptions) (*WhatIfReport, error) {
	return whatif.Run(t, o)
}

// Workload types.
type (
	// App is a benchmark application: a root service in a catalog.
	App = workload.App
	// Catalog is a closed set of services forming a call DAG.
	Catalog = workload.Catalog
	// Service describes one microservice's behaviour.
	Service = workload.Service
	// MixEntry weights one request type in a mixed arrival stream.
	MixEntry = workload.MixEntry
	// TraceRecord is one request of an Alibaba-like production trace.
	TraceRecord = workload.TraceRecord
)

// Service-graph workload types (see internal/svcgraph): explicit service
// placement across a fleet and external trace replay.
type (
	// GraphSpec maps every service of a catalog to the servers hosting it
	// (set on FleetConfig.Graph; each cross-edge RPC then ships to a real
	// host of its callee instead of a coin-flip peer).
	GraphSpec = svcgraph.Spec
	// ExternalTrace is a parsed replayable trace (the umtrace -csv wire
	// format).
	ExternalTrace = svcgraph.Trace
	// TraceReplay is a trace bound to an application's service names, ready
	// to drive arrivals (set on RunConfig.Replay).
	TraceReplay = svcgraph.Replay
)

// ParseTrace reads the replayable CSV wire format
// (arrival_us,service,duration_us,cpu_util,rpcs — or the legacy 3-column
// form) with strict, line-numbered validation.
func ParseTrace(r io.Reader) (*ExternalTrace, error) { return svcgraph.ParseTrace(r) }

// LayeredApp builds a layered service DAG — levels tiers, each non-leaf
// calling fanout children in one parallel stage — for placement studies
// (FleetConfig.Graph + GraphColocated/GraphSpread/GraphRandom).
func LayeredApp(levels, fanout int, meanComputeMicros float64) *App {
	return svcgraph.Layered(levels, fanout, meanComputeMicros)
}

// GraphColocated places every service on every server (no cross-server
// edges; the regression anchor).
func GraphColocated(services, servers int) *GraphSpec {
	return svcgraph.Colocated(services, servers)
}

// GraphSpread stripes services round-robin, one host each — nearly every
// call edge crosses servers.
func GraphSpread(services, servers int) *GraphSpec { return svcgraph.Spread(services, servers) }

// GraphRandom places each service on `replicas` servers drawn
// deterministically from seed.
func GraphRandom(services, servers, replicas int, seed int64) *GraphSpec {
	return svcgraph.Random(services, servers, replicas, seed)
}

// Fleet types.
type (
	// FleetConfig describes a multi-server cluster (the paper evaluates 10
	// servers per cluster).
	FleetConfig = fleet.Config
	// FleetResult aggregates per-server results.
	FleetResult = fleet.Result
	// Balancer routes fleet arrivals to servers (see fleet.ParseLB for the
	// built-in policies: rr, rand, least, p2c).
	Balancer = fleet.Balancer
	// FabricStats is the PDES coupling's self-observability (windows,
	// messages, lookahead utilization; FleetResult.Fabric on coupled runs).
	FabricStats = pdes.Stats
	// ControlConfig enables the front-end feedback loops on a coupled fleet
	// (set on FleetConfig.Control): retry with capped exponential backoff,
	// tail hedging, burn-triggered load shedding, and windowed-p99
	// autoscaling — all deterministic over virtual time.
	ControlConfig = control.Config
	// ControlStats is the client-level accounting of a controlled run
	// (FleetResult.Control): one root can cost several server attempts, so
	// these counters — not the per-server sums — are what the client saw.
	ControlStats = control.Stats
)

// Experiment types.
type (
	// ExperimentOptions tunes figure-regeneration fidelity vs runtime.
	ExperimentOptions = experiments.Options
)

// Common durations re-exported for RunConfig fields.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// UManycore returns the paper's default 1024-core μManycore configuration:
// 128 villages of 8 cores in 32 clusters, hierarchical leaf-spine ICN,
// hardware request queues, hardware context switching (Table 2, §4).
func UManycore() Config { return machine.UManycoreConfig() }

// UManycoreTopology returns a μManycore with the Fig 19 topology knobs:
// cores per village × villages per cluster × clusters (default 8×4×32).
func UManycoreTopology(coresPerVillage, villagesPerCluster, clusters int) Config {
	return machine.UManycoreTopologyConfig(coresPerVillage, villagesPerCluster, clusters)
}

// ScaleOut returns the 1024-core ScaleOut baseline: same cores as
// μManycore, global hardware coherence, fat-tree ICN, software scheduling
// and context switching (§5).
func ScaleOut() Config { return machine.ScaleOutConfig() }

// ServerClass returns the IceLake-like big-core baseline with n cores
// (40 = iso-power with μManycore, 128 = iso-area; §5, §6.8).
func ServerClass(n int) Config { return machine.ServerClassConfig(n) }

// SocialNetworkApps returns the eight DeathStarBench-style applications in
// the paper's figure order: Text, SGraph, User, PstStr, UsrMnt, HomeT,
// CPost, UrlShort.
func SocialNetworkApps() []*App { return workload.SocialNetworkApps() }

// SocialNetworkMix returns the default mixed arrival stream over the eight
// request types (§5 methodology; pass as RunConfig.Mix).
func SocialNetworkMix() []MixEntry { return workload.SocialNetworkMix() }

// MuSuiteApps returns the four μSuite-style benchmarks (HDSearch, Router,
// SetAlgebra, Recommend) — the paper's second open-source suite: mid-tier
// services fanning out to leaf pools.
func MuSuiteApps() []*App { return workload.MuSuiteApps() }

// MuSuiteMix returns a balanced arrival mixture over the μSuite benchmarks.
func MuSuiteMix() []MixEntry { return workload.MuSuiteMix() }

// SyntheticApp builds a §6.7 synthetic benchmark: total service time drawn
// from "exponential", "lognormal", or "bimodal" with the given mean in
// microseconds, split across blockingCalls+1 compute segments separated by
// blocking storage accesses.
func SyntheticApp(dist string, meanMicros float64, blockingCalls int) (*App, error) {
	return workload.SyntheticApp(dist, meanMicros, blockingCalls)
}

// Run executes one server under open-loop load and returns its results.
func Run(cfg Config, rc RunConfig) *Result { return machine.Run(cfg, rc) }

// RunFleet executes the paper's multi-server cluster as one coupled
// simulation: arrivals routed by fc's balancer policy, cross-server child
// RPCs executed on the peer server they target, the inter-server round
// trip paid on the wire legs.
func RunFleet(fc FleetConfig, app *App, totalRPS float64, rc RunConfig, seed int64) *FleetResult {
	return fleet.Run(fc, app, totalRPS, rc, seed)
}

// RunFleetIndependent executes the cluster with the symmetric-server
// approximation — each server simulated alone with its load share, fanned
// out across fc.Parallel workers. Cheaper than RunFleet but approximate:
// see the internal/fleet package comment.
func RunFleetIndependent(fc FleetConfig, app *App, totalRPS float64, rc RunConfig, seed int64) *FleetResult {
	return fleet.RunIndependent(fc, app, totalRPS, rc, seed)
}

// DefaultFleet wraps a machine config in the paper's 10-server cluster.
func DefaultFleet(m Config) FleetConfig { return fleet.DefaultConfig(m) }

// ContentionFreeAvg measures an architecture's average end-to-end latency
// at near-zero load — the QoS reference of §6.5.
func ContentionFreeAvg(cfg Config, app *App, seed int64) float64 {
	return machine.ContentionFreeAvg(cfg, app, seed)
}

// MaxQoSThroughput binary-searches the largest load whose P99 stays within
// qosFactor× the contention-free average (Fig 18's metric) for a
// single-request-type workload.
func MaxQoSThroughput(cfg Config, app *App, qosFactor, loRPS, hiRPS float64, seed int64) float64 {
	return machine.MaxQoSThroughput(cfg, app, qosFactor, loRPS, hiRPS, seed)
}

// PackagePower returns the total package power in watts for the three §5
// designs ("uManycore", "ScaleOut", "ServerClass-40", "ServerClass-128") —
// the CACTI/McPAT stand-in.
func PackagePower(name string) float64 {
	switch name {
	case "uManycore":
		return power.UManycoreChip().TotalPower()
	case "ScaleOut":
		return power.ScaleOutChip().TotalPower()
	case "ServerClass-40":
		return power.ServerClassChip(40).TotalPower()
	case "ServerClass-128":
		return power.ServerClassChip(128).TotalPower()
	default:
		return 0
	}
}

// PackageArea returns the package area in mm² for the same designs.
func PackageArea(name string) float64 {
	switch name {
	case "uManycore":
		return power.UManycoreChip().TotalArea()
	case "ScaleOut":
		return power.ScaleOutChip().TotalArea()
	case "ServerClass-40":
		return power.ServerClassChip(40).TotalArea()
	case "ServerClass-128":
		return power.ServerClassChip(128).TotalArea()
	default:
		return 0
	}
}

// DefaultExperimentOptions returns full-fidelity experiment settings (the
// EXPERIMENTS.md configuration).
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }
