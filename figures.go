package umanycore

import (
	"umanycore/internal/experiments"
	"umanycore/internal/stats"
	"umanycore/internal/uarch"
	"umanycore/internal/workload"
)

// Figure-regeneration API: one function per table/figure of the paper's
// evaluation, mirrored from internal/experiments. All functions take
// ExperimentOptions (zero value = full fidelity) and return the same
// rows/series the paper plots.

// Result row types.
type (
	// Fig1Result is one bar pair of Figure 1 (microarchitectural
	// optimization speedups, monolithic vs microservice).
	Fig1Result = uarch.Fig1Result
	// CDFPoint is one point of an empirical CDF (Figures 2, 4, 5).
	CDFPoint = stats.CDFPoint
	// Fig3Row is one queue-count point of Figure 3.
	Fig3Row = experiments.Fig3Row
	// Fig6Row is one context-switch-overhead point of Figure 6.
	Fig6Row = experiments.Fig6Row
	// Fig7Row is one load level of Figure 7 (ICN contention).
	Fig7Row = experiments.Fig7Row
	// Fig8Row is one sharing-bar group of Figure 8.
	Fig8Row = workload.Fig8Row
	// Fig9Row is one hit-rate bar of Figure 9.
	Fig9Row = experiments.Fig9Row
	// E2ERow is one cell of the Figures 14/16/17 grid.
	E2ERow = experiments.E2ERow
	// Reduction is a Figures 14/16 headline ratio series.
	Reduction = experiments.Reduction
	// Fig15Row is one application's technique-breakdown ladder (Figure 15).
	Fig15Row = experiments.Fig15Row
	// Fig18Row is one QoS-throughput cell of Figure 18.
	Fig18Row = experiments.Fig18Row
	// Fig19Row is one application's topology-sensitivity row (Figure 19).
	Fig19Row = experiments.Fig19Row
	// Fig20Row is one synthetic-benchmark bar group of Figure 20.
	Fig20Row = experiments.Fig20Row
	// Sec68Result is the §6.8 iso-area study.
	Sec68Result = experiments.Sec68Result
	// FleetLBRow is one (policy, load) point of the coupled-fleet
	// load-balancer study.
	FleetLBRow = experiments.FleetLBRow
	// FleetGraphRow is one (placement, DAG shape) point of the coupled-fleet
	// service-graph study.
	FleetGraphRow = experiments.FleetGraphRow
	// FleetScaleRow is one (policy, fleet size) point of the coupled-fleet
	// scale study.
	FleetScaleRow = experiments.FleetScaleRow
	// FleetControlRow is one (scenario, variant, load) point of the
	// closed-loop fleet-control study.
	FleetControlRow = experiments.FleetControlRow
	// WhatIfRow is one (arch, stage, factor) point of the causal-profiling
	// study: blame share vs actual tail payoff under a virtual speedup.
	WhatIfRow = experiments.WhatIfRow
)

// Fig1 regenerates Figure 1: four published microarchitectural
// optimizations speed up monolithic applications 14–19% but microservices
// barely at all.
func Fig1(o ExperimentOptions) []Fig1Result { return experiments.Fig1(o) }

// Fig2 regenerates Figure 2: the CDF of per-server requests/second in the
// Alibaba-like production trace.
func Fig2(o ExperimentOptions) []CDFPoint { return experiments.Fig2(o) }

// Fig3 regenerates Figure 3: average and tail response time vs the number
// of scheduling queues on the 1024-core ScaleOut at 50K RPS, with and
// without work stealing.
func Fig3(o ExperimentOptions) []Fig3Row { return experiments.Fig3(o) }

// Fig4 regenerates Figure 4: the CDF of per-request CPU utilization.
func Fig4(o ExperimentOptions) []CDFPoint { return experiments.Fig4(o) }

// Fig5 regenerates Figure 5: the CDF of RPC invocations per request.
func Fig5(o ExperimentOptions) []CDFPoint { return experiments.Fig5(o) }

// Fig6 regenerates Figure 6: tail latency vs context-switch overhead
// (0–8192 cycles) at 5K/10K/50K RPS under a centralized software scheduler.
func Fig6(o ExperimentOptions) []Fig6Row { return experiments.Fig6(o) }

// Fig7 regenerates Figure 7: tail-latency inflation from ICN contention on
// 2D-mesh and fat-tree interconnects.
func Fig7(o ExperimentOptions) []Fig7Row { return experiments.Fig7(o) }

// Fig8 regenerates Figure 8: handler-handler and handler-init footprint
// sharing at page and line granularity.
func Fig8(o ExperimentOptions) []Fig8Row { return experiments.Fig8(o) }

// Fig9 regenerates Figure 9: L1/L2 TLB and cache hit rates for handler
// access streams.
func Fig9(o ExperimentOptions) []Fig9Row { return experiments.Fig9(o) }

// EndToEnd regenerates the Figures 14/16/17 grid: per-request-type average
// and tail latency on all three architectures at 5/10/15K RPS under the
// mixed SocialNetwork load.
func EndToEnd(o ExperimentOptions) []E2ERow { return experiments.EndToEnd(o) }

// Reductions computes the Figures 14/16 headline ratios (baseline /
// μManycore, averaged over apps per load) from an EndToEnd grid; metric is
// "tail" or "avg".
func Reductions(rows []E2ERow, metric string) []Reduction {
	return experiments.Reductions(rows, metric)
}

// Fig15 regenerates Figure 15: the cumulative tail-latency reductions of
// the four μManycore techniques over ScaleOut at 15K RPS.
func Fig15(o ExperimentOptions) []Fig15Row { return experiments.Fig15(o) }

// Fig15Average returns the cross-application mean reductions of a Fig15
// run (the paper's 1.1×/2.3×/3.9×/7.4× series).
func Fig15Average(rows []Fig15Row) (villages, leafspine, hwsched, hwcs float64) {
	return experiments.Fig15Average(rows)
}

// Fig18 regenerates Figure 18: the maximum QoS-safe throughput per request
// type and architecture.
func Fig18(o ExperimentOptions) []Fig18Row { return experiments.Fig18(o) }

// Fig19 regenerates Figure 19: μManycore topology sensitivity (8×4×32,
// 32×1×32, 32×2×16, 32×4×8) at 15K RPS.
func Fig19(o ExperimentOptions) []Fig19Row { return experiments.Fig19(o) }

// Fig20 regenerates Figure 20: synthetic exponential/lognormal/bimodal
// benchmarks across the three architectures.
func Fig20(o ExperimentOptions) []Fig20Row { return experiments.Fig20(o) }

// Sec68 regenerates §6.8: the iso-area 128-core ServerClass comparison,
// including the power and area ratios from the CACTI/McPAT stand-in.
func Sec68(o ExperimentOptions) Sec68Result { return experiments.Sec68(o) }

// FleetLB compares load-balancer routing policies (round-robin, uniform
// random, least-outstanding, power-of-two-choices) on a coupled fleet with
// one 3×-slower straggler: P99 vs offered load per policy.
func FleetLB(o ExperimentOptions) []FleetLBRow { return experiments.FleetLB(o) }

// FleetGraph compares service-placement policies (colocated, spread,
// random) for explicit layered service DAGs on a coupled fleet: each
// cross-edge RPC ships through the PDES fabric to wherever its callee
// actually runs, so placement — not a coin-flip fraction — sets the
// cross-server traffic on the tail's critical path.
func FleetGraph(o ExperimentOptions) []FleetGraphRow { return experiments.FleetGraph(o) }

// FleetScale sweeps the coupled fleet across o.FleetSizes (one 3× straggler
// per four servers, per-server load held fixed) for every balancer policy:
// the tail-at-scale figure, each cell one sharded PDES simulation.
func FleetScale(o ExperimentOptions) []FleetScaleRow { return experiments.FleetScale(o) }

// FleetControl runs the closed-loop control study on the coupled fleet:
// retry-storm churn vs capped backoff + burn-triggered shedding at the
// saturation knee, the hedge-deadline win/waste curve on a straggler fleet,
// and autoscaler cold-start lag under bursty arrivals.
func FleetControl(o ExperimentOptions) []FleetControlRow { return experiments.FleetControl(o) }

// WhatIf runs the causal-profiling grid on coupled ScaleOut and uManycore
// machines at the top per-server load: every accelerable stage virtually
// scaled to {0.9, 0.75, 0.5, 0} of its cost under paired seeds, each row
// reporting the stage's descriptive blame share next to the p99 reduction
// the speedup actually bought (see internal/whatif and OBSERVABILITY.md).
func WhatIf(o ExperimentOptions) []WhatIfRow { return experiments.WhatIf(o) }
