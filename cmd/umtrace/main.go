// Command umtrace generates and analyzes Alibaba-like production traces —
// the §3 characterization inputs (Figs 2, 4, 5). It can emit raw records as
// CSV or print the marginal statistics the paper reports.
//
// -csv emits the replayable wire format (see internal/svcgraph):
//
//	arrival_us,service,duration_us,cpu_util,rpcs
//
// with arrivals from a load-marginal-modulated Poisson process and root
// services from the SocialNetwork request mix, so
// `umtrace -csv > t.csv && umprof -trace t.csv` replays a synthesized
// production trace through any simulated architecture.
//
// Data outputs (-csv, -load-cdf) go to stdout; the statistics report goes to
// stderr, so `umtrace -csv > trace.csv` never mixes the two. A data flag
// implies -stats=false unless -stats is given explicitly, in which case both
// are emitted (CSV on stdout, stats on stderr) from the same record draw.
//
// Examples:
//
//	umtrace -requests 100000
//	umtrace -requests 10000 -csv > trace.csv
//	umtrace -requests 10000 -csv -stats > trace.csv   # stats on stderr too
//	umtrace -servers 1000 -seconds 60 -load-cdf
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"umanycore/internal/stats"
	"umanycore/internal/svcgraph"
	"umanycore/internal/workload"
)

func main() {
	n := flag.Int("requests", 50000, "number of request records to draw")
	servers := flag.Int("servers", 100, "servers for the load CDF")
	seconds := flag.Int("seconds", 100, "seconds of load per server")
	seed := flag.Int64("seed", 1, "generator seed")
	csv := flag.Bool("csv", false, "emit request records as CSV on stdout")
	loadCDF := flag.Bool("load-cdf", false, "emit the per-second RPS CDF (Fig 2) on stdout")
	showStats := flag.Bool("stats", true, "print marginal statistics on stderr")
	flag.Parse()

	// Data outputs default the stats report off; an explicit -stats keeps it.
	statsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "stats" {
			statsSet = true
		}
	})
	if (*csv || *loadCDF) && !statsSet {
		*showStats = false
	}

	g := workload.NewTraceGen(*seed)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	// One draw feeds both the CSV and the stats, so adding -stats to a -csv
	// invocation reports on exactly the emitted records. The marginal
	// columns (duration/cpu_util/rpcs) are the historical Requests stream;
	// arrivals and services come from their own derived-seed streams (see
	// svcgraph.Synthesize), so the reported marginals are unchanged.
	var recs []svcgraph.Record
	if *csv || *showStats {
		recs = svcgraph.Synthesize(*seed, *n)
	}

	if *csv {
		if err := svcgraph.WriteTrace(w, recs); err != nil {
			fmt.Fprintln(os.Stderr, "umtrace:", err)
			os.Exit(1)
		}
	}

	if *loadCDF {
		var s stats.Sample
		for i := 0; i < *servers; i++ {
			for _, c := range g.ServerLoad(*seconds) {
				s.Add(float64(c))
			}
		}
		fmt.Fprintln(w, "rps,cdf")
		for x := 0.0; x <= 2000; x += 50 {
			fmt.Fprintf(w, "%.0f,%.4f\n", x, s.CDFAt(x))
		}
	}

	if *showStats {
		e := bufio.NewWriter(os.Stderr)
		defer e.Flush()
		var dur, util, rpcs stats.Sample
		short := 0
		var longDur []float64
		for _, r := range recs {
			dur.Add(r.DurationMicros)
			util.Add(r.CPUUtil)
			rpcs.Add(float64(r.RPCs))
			if r.DurationMicros < 1000 {
				short++
			} else {
				longDur = append(longDur, r.DurationMicros)
			}
		}
		fmt.Fprintf(e, "records                 : %d\n", *n)
		fmt.Fprintf(e, "duration <1ms           : %.1f%% (paper: 36.7%%)\n", 100*float64(short)/float64(*n))
		fmt.Fprintf(e, "geomean long duration   : %.2fms (paper: 2.8ms)\n", stats.GeoMean(longDur)/1000)
		fmt.Fprintf(e, "median CPU utilization  : %.3f (paper: ~0.14)\n", util.Median())
		fmt.Fprintf(e, "P99 CPU utilization     : %.3f (paper: <0.60)\n", util.P99())
		fmt.Fprintf(e, "median RPCs per request : %.1f (paper: ~4.2)\n", rpcs.Median())
		fmt.Fprintf(e, "frac with >=16 RPCs     : %.1f%% (paper: ~5%%)\n", 100*rpcs.FracAtLeast(16))

		var load stats.Sample
		for i := 0; i < *servers; i++ {
			for _, c := range g.ServerLoad(*seconds) {
				load.Add(float64(c))
			}
		}
		fmt.Fprintf(e, "median server RPS       : %.0f (paper: ~500)\n", load.Median())
		fmt.Fprintf(e, "frac seconds >=1000 RPS : %.1f%% (paper: ~20%%)\n", 100*load.FracAtLeast(1000))
		fmt.Fprintf(e, "frac seconds >=1500 RPS : %.1f%% (paper: ~5%%)\n", 100*load.FracAtLeast(1500))
	}
}
