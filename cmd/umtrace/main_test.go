package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

func TestMain(m *testing.M) {
	if os.Getenv("UMTRACE_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runMain(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "UMTRACE_RUN_MAIN=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		return out.String(), errb.String(), ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running %v: %v", args, err)
	}
	return out.String(), errb.String(), 0
}

// TestCSVGolden pins the deterministic record draw at seed 1.
func TestCSVGolden(t *testing.T) {
	stdout, stderr, code := runMain(t, "-requests", "5", "-csv")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	// The marginal columns (duration_us,cpu_util,rpcs) are the same stream
	// the pre-replay 3-column format drew; arrivals and services come from
	// derived-seed streams (svcgraph.Synthesize).
	want := "arrival_us,service,duration_us,cpu_util,rpcs\n" +
		"276.455,CPost,1785.0,0.1051,27\n" +
		"2121.529,HomeT,1324.6,0.1672,7\n" +
		"2576.845,HomeT,123.2,0.0936,7\n" +
		"4045.106,HomeT,4252.6,0.2860,6\n" +
		"6023.192,Text,382.4,0.2058,6\n"
	if stdout != want {
		t.Fatalf("csv drifted:\ngot:\n%swant:\n%s", stdout, want)
	}
	// A data flag defaults the stats report off.
	if strings.Contains(stderr, "marginal") {
		t.Fatalf("stats leaked to stderr: %q", stderr)
	}
}

func TestStatsReport(t *testing.T) {
	stdout, stderr, code := runMain(t, "-requests", "200")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if stdout != "" {
		t.Fatalf("stats run wrote to stdout: %q", stdout)
	}
	if stderr == "" {
		t.Fatal("no stats report on stderr")
	}
}

func TestLoadCDF(t *testing.T) {
	stdout, _, code := runMain(t, "-servers", "20", "-seconds", "5", "-load-cdf")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) < 2 {
		t.Fatalf("cdf too short: %q", stdout)
	}
}
